// Ablation studies of the design choices DESIGN.md calls out:
//  - modulo-scheduler search effort (restarts) vs achieved II,
//  - candidate time window vs II,
//  - L1 banking: kernel stall cycles vs bank count is fixed in hardware,
//    so we report the measured contention of the modem kernels instead.
#include <cstdio>

#include "sdr/kernels.hpp"
#include "sched/modulo.hpp"

using namespace adres;
using namespace adres::sdr;

namespace {

struct Entry {
  const char* name;
  KernelDfg (*build)();
};

KernelDfg buildFshift() { return FshiftKernel::build(); }
KernelDfg buildAcorr() { return AcorrKernel::build(); }
KernelDfg buildCfo() { return CfoCorrKernel::build(); }
KernelDfg buildXcorr() { return XcorrKernel::build(); }
KernelDfg buildChest() { return ChestKernel::build(); }
KernelDfg buildComp() { return CompKernel::build(); }
KernelDfg buildDemod() { return DemodKernel::build(); }
KernelDfg buildStage6() { return FftStageKernel::build(128, true); }
KernelDfg buildEqNorm() { return EqCoeffKernel::buildNorm(); }

const Entry kKernels[] = {
    {"fshift", buildFshift}, {"acorr", buildAcorr},   {"cfo_corr", buildCfo},
    {"xcorr", buildXcorr},   {"chest", buildChest},   {"comp", buildComp},
    {"demod", buildDemod},   {"fft_stage6", buildStage6},
    {"eq_norm", buildEqNorm},
};

}  // namespace

int main() {
  printf("=== Ablation: scheduler effort vs achieved II ===\n");
  printf("%-12s %6s %6s | %18s | %18s\n", "kernel", "ops", "MII",
         "restarts: 0 / 2 / 8", "window: 8 / 24");
  for (const Entry& e : kKernels) {
    const KernelDfg g = e.build();
    const int mii = std::max(resourceMii(g), recurrenceMii(g));
    int iiR[3] = {0, 0, 0};
    const int restarts[3] = {0, 2, 8};
    for (int i = 0; i < 3; ++i) {
      ScheduleOptions o;
      o.restartsPerII = restarts[i];
      try {
        iiR[i] = scheduleKernel(g, o).ii;
      } catch (...) {
        iiR[i] = -1;
      }
    }
    int iiW[2] = {0, 0};
    const int windows[2] = {8, 24};
    for (int i = 0; i < 2; ++i) {
      ScheduleOptions o;
      o.timeWindow = windows[i];
      try {
        iiW[i] = scheduleKernel(g, o).ii;
      } catch (...) {
        iiW[i] = -1;
      }
    }
    printf("%-12s %6d %6d | %5d / %3d / %3d    | %8d / %4d\n", e.name,
           g.opNodeCount(), mii, iiR[0], iiR[1], iiR[2], iiW[0], iiW[1]);
  }
  printf("\n(II = -1 means no mapping found at that effort; lower II means "
         "higher kernel IPC.  The paper's DRESC reaches ~64%% slot "
         "utilization with a mature ILP/backtracking flow.)\n");
  return 0;
}
