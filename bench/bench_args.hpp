// Shared bench CLI handling: one tiny declarative parser so every bench
// agrees on flag syntax (`--flag value` / `--flag=value`), keeps its legacy
// positional arguments, and gets a generated `--help`.  Header-only, used
// by bench_farm / bench_simspeed / bench_throughput.
//
//   adres::bench::Args args("bench_farm", "packet-farm throughput sweep");
//   int packets = 24;
//   args.positional("numPackets", "packets to decode", &packets);
//   int port = -1;
//   args.flag("live-metrics", "PORT", "serve /metrics on PORT (0=ephemeral)",
//             &port);
//   if (!args.parse(argc, argv)) return args.parseError() ? 1 : 0;
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cga/exec_tier.hpp"

namespace adres::bench {

/// Host milliseconds elapsed since `t0` (the latency-summary helper the
/// benches previously each carried a private copy of).
inline double msSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

class Args {
 public:
  Args(std::string prog, std::string description)
      : prog_(std::move(prog)), description_(std::move(description)) {}

  /// Declares the next positional argument (optional, keeps `*out` when
  /// absent).  Declaration order is binding order.
  void positional(const std::string& name, const std::string& help,
                  int* out) {
    positionals_.push_back({name, help, out, nullptr, nullptr});
  }
  void positional(const std::string& name, const std::string& help,
                  double* out) {
    positionals_.push_back({name, help, nullptr, out, nullptr});
  }
  void positional(const std::string& name, const std::string& help,
                  std::string* out) {
    positionals_.push_back({name, help, nullptr, nullptr, out});
  }

  /// Declares a value-taking flag `--name VALUE` (or `--name=VALUE`).
  void flag(const std::string& name, const std::string& valueName,
            const std::string& help, int* out) {
    flags_.push_back({name, valueName, help, out, nullptr, nullptr, nullptr});
  }
  void flag(const std::string& name, const std::string& valueName,
            const std::string& help, double* out) {
    flags_.push_back({name, valueName, help, nullptr, out, nullptr, nullptr});
  }
  void flag(const std::string& name, const std::string& valueName,
            const std::string& help, std::string* out) {
    flags_.push_back({name, valueName, help, nullptr, nullptr, out, nullptr});
  }
  /// Declares a boolean flag `--name` (sets `*out` to true).
  void flag(const std::string& name, const std::string& help, bool* out) {
    flags_.push_back({name, "", help, nullptr, nullptr, nullptr, out});
  }

  /// Returns false when the program should exit: after printing --help
  /// (parseError() == false) or on a bad argument (parseError() == true, a
  /// one-line error + `--help` hint printed to stderr; callers exit 1).
  /// Strict by construction: unknown flags (single- or double-dash) and
  /// non-numeric values for numeric bindings all fail loudly — a typo'd
  /// sweep axis must never silently benchmark the defaults.
  bool parse(int argc, char** argv) {
    std::size_t nextPositional = 0;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        usage(stdout);
        return false;
      }
      if (arg.rfind("--", 0) == 0 && arg.size() > 2) {
        std::string name = arg.substr(2);
        std::string value;
        bool hasValue = false;
        const std::size_t eq = name.find('=');
        if (eq != std::string::npos) {
          value = name.substr(eq + 1);
          name = name.substr(0, eq);
          hasValue = true;
        }
        Flag* f = findFlag(name);
        if (f == nullptr) return fail("unknown flag --" + name);
        if (f->outBool != nullptr) {
          *f->outBool = hasValue ? (value != "0" && value != "false") : true;
          continue;
        }
        if (!hasValue) {
          if (i + 1 >= argc) return fail("--" + name + " needs a value");
          value = argv[++i];
        }
        if (!bind(*f, value))
          return fail("--" + name + " expects a number, got '" + value + "'");
        continue;
      }
      // A single-dash token is a flag typo ("-foo" for "--foo"), not a
      // positional — unless it parses as a (negative) number.
      if (arg.size() > 1 && arg[0] == '-' && !isNumber(arg))
        return fail("unknown flag " + arg + " (flags take two dashes)");
      if (nextPositional >= positionals_.size())
        return fail("unexpected argument '" + arg + "'");
      const Binding& b = positionals_[nextPositional++];
      if (!bind(b, arg))
        return fail(b.name + " expects a number, got '" + arg + "'");
    }
    return true;
  }

  bool parseError() const { return error_; }

  void usage(std::FILE* out) const {
    std::fprintf(out, "%s — %s\n\nusage: %s", prog_.c_str(),
                 description_.c_str(), prog_.c_str());
    for (const Binding& p : positionals_)
      std::fprintf(out, " [%s]", p.name.c_str());
    std::fprintf(out, " [flags]\n");
    if (!positionals_.empty()) {
      std::fprintf(out, "\npositional arguments (all optional):\n");
      for (const Binding& p : positionals_)
        std::fprintf(out, "  %-22s %s\n", p.name.c_str(), p.help.c_str());
    }
    std::fprintf(out, "\nflags:\n");
    for (const Flag& f : flags_) {
      const std::string head =
          "--" + f.name + (f.valueName.empty() ? "" : " " + f.valueName);
      std::fprintf(out, "  %-22s %s\n", head.c_str(), f.help.c_str());
    }
    std::fprintf(out, "  %-22s %s\n", "--help", "show this message");
  }

 private:
  struct Binding {
    std::string name, help;
    int* outInt = nullptr;
    double* outDouble = nullptr;
    std::string* outString = nullptr;
  };
  struct Flag : Binding {
    Flag(std::string n, std::string v, std::string h, int* i, double* d,
         std::string* s, bool* b)
        : Binding{std::move(n), std::move(h), i, d, s},
          valueName(std::move(v)),
          outBool(b) {}
    std::string valueName;
    bool* outBool = nullptr;
  };

  Flag* findFlag(const std::string& name) {
    for (Flag& f : flags_)
      if (f.name == name) return &f;
    return nullptr;
  }

  /// One-line error + `--help` hint; sets the exit-1 state.  Returns false
  /// so `parse` can `return fail(...)`.
  bool fail(const std::string& msg) {
    std::fprintf(stderr, "%s: %s (try '%s --help')\n", prog_.c_str(),
                 msg.c_str(), prog_.c_str());
    error_ = true;
    return false;
  }

  static bool isNumber(const std::string& value) {
    char* end = nullptr;
    (void)std::strtod(value.c_str(), &end);
    return end != value.c_str() && *end == '\0';
  }

  /// Binds a value; false when a numeric binding got a non-number (atoi's
  /// silent garbage-to-0 was how a typo'd value used to vanish).
  static bool bind(const Binding& b, const std::string& value) {
    if (b.outInt != nullptr) {
      char* end = nullptr;
      const long v = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') return false;
      *b.outInt = static_cast<int>(v);
    }
    if (b.outDouble != nullptr) {
      char* end = nullptr;
      const double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') return false;
      *b.outDouble = v;
    }
    if (b.outString != nullptr) *b.outString = value;
    return true;
  }

  std::string prog_, description_;
  std::vector<Binding> positionals_;
  std::vector<Flag> flags_;
  bool error_ = false;
};

/// The shared `--exec-tier` flag (DESIGN.md §14): declares
/// `--exec-tier TIER` on `args`, defaulting to defaultExecTier() (the
/// ADRES_EXEC_TIER environment override, else native).  resolve() parses
/// the chosen name and throws SimError on an unknown tier, so a typo fails
/// loudly instead of silently benchmarking the wrong loop.
class ExecTierFlag {
 public:
  explicit ExecTierFlag(Args& args)
      : name_(execTierName(defaultExecTier())) {
    args.flag("exec-tier", "TIER",
              "execution tier: reference | interpreted | native", &name_);
  }
  ExecTier resolve() const { return parseExecTier(name_); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

}  // namespace adres::bench
