// Cell capacity sweep: how many users can one cell sustain at a deadline-
// miss target?  Sweeps the simulated baseband-processor pool size
// (CellScenario::numServers, 400 MHz each) against offered load (users per
// cell), drives every scenario through the packet farm + CellScheduler DES
// (src/cell), and reports per-config miss rate, goodput and simulated
// latency tails plus the headline "sustained users/cell" per pool size —
// the largest user count whose deadline-miss rate stays within
// --target-miss.  Emits a machine-readable BENCH_cell.json
// (adres.bench_cell.v1).
//
//   $ ./bench_cell [maxServers] [numSymbols] [jsonPath]
//         [--exec-tier TIER] [--users-list "2,4,8,12"] [--rate PPS]
//         [--duration-ms MS] [--deadline-us US] [--target-miss RATE]
//         [--host-workers N] [--seed S] [--skip-determinism-check]
//
// jsonPath defaults to BENCH_cell.json; pass "-" to skip the dump.
//
// Self-checks (CI gates; any failure exits nonzero):
//   * miss accounting — CellScheduler::selfCheck() after every config:
//     offered == delivered + errors + late + expired + overrun, per flow
//     and cell-wide, histogram count == offered.  Violation exits 1.
//   * determinism — one scenario re-run with 1 and with --host-workers
//     farm threads; the adres.cell.v1 summaries must be byte-identical
//     (the DES lives on simulated servers, host threads only parallelize
//     the cycle-accurate decodes).  Mismatch exits 2.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_args.hpp"
#include "cell/scheduler.hpp"
#include "platform/packet_farm.hpp"

using namespace adres;

namespace {

struct Row {
  int servers = 0;
  int users = 0;
  u64 offered = 0, delivered = 0, errors = 0;
  u64 missedLate = 0, missedExpired = 0, missedOverrun = 0;
  double missRate = 0, goodputMbps = 0, utilization = 0;
  double latP50Us = 0, latP99Us = 0;
  double wallMs = 0;  ///< host wall time of the config (informational)
};

std::vector<int> parseIntList(const std::string& text, bool* ok) {
  std::vector<int> out;
  *ok = true;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    char* end = nullptr;
    const long v = std::strtol(item.c_str(), &end, 10);
    if (end == item.c_str() || *end != '\0' || v < 1) {
      *ok = false;
      return out;
    }
    out.push_back(static_cast<int>(v));
  }
  if (out.empty()) *ok = false;
  return out;
}

platform::FarmConfig farmConfigFor(const cell::CellScenario& sc, int workers,
                                   ExecTier tier) {
  platform::FarmConfig fc;
  fc.modem = sc.modem;
  fc.numWorkers = workers;
  fc.queueCapacity = static_cast<std::size_t>(2 * workers);
  fc.ordered = true;  // required: the DES folds outcomes in schedule order
  fc.run.exec.tier = tier;
  return fc;
}

/// One scenario end-to-end: fresh farm, scheduler run, accounting
/// self-check (aborts the bench on violation).  Returns the summary bytes
/// via `summaryOut` when non-null (the determinism check compares them).
Row runConfig(const cell::CellScenario& sc, int hostWorkers, ExecTier tier,
              std::string* summaryOut) {
  const auto t0 = std::chrono::steady_clock::now();
  platform::PacketFarm farm(farmConfigFor(sc, hostWorkers, tier));
  cell::CellScheduler sched(sc);
  const cell::CellTotals totals = sched.run(farm);
  (void)farm.finish();

  std::string why;
  if (!sched.selfCheck(&why)) {
    std::fprintf(stderr,
                 "bench_cell: MISS-ACCOUNTING SELF-CHECK FAILED "
                 "(servers=%d users=%d): %s\n",
                 sc.numServers, sc.classes[0].users, why.c_str());
    std::exit(1);
  }
  if (summaryOut != nullptr) {
    std::ostringstream os;
    sched.writeSummary(os);
    *summaryOut = os.str();
  }

  Row r;
  r.servers = sc.numServers;
  r.users = sc.classes[0].users;
  r.offered = totals.offered;
  r.delivered = totals.delivered;
  r.errors = totals.errors;
  r.missedLate = totals.missedLate;
  r.missedExpired = totals.missedExpired;
  r.missedOverrun = totals.missedOverrun;
  r.missRate = totals.missRate();
  r.goodputMbps = totals.goodputMbps(sc, sched.goodputBits());
  r.utilization = totals.utilization;
  const obs::HistogramSnapshot lat = sched.latencySnapshot();
  r.latP50Us = lat.quantile(0.5) * 1e-3;
  r.latP99Us = lat.quantile(0.99) * 1e-3;
  r.wallMs = bench::msSince(t0);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  int maxServers = 4;
  int numSymbols = 2;
  std::string jsonPath = "BENCH_cell.json";
  // At the QAM16/2-symbol nominal service time (~142 us -> ~7k pkt/s per
  // server) and 200 pkt/s/user, one server's knee sits near 35 users —
  // the default sweep straddles it so the sustained-users report is
  // non-trivial out of the box.
  std::string usersListText = "8,16,32,48,64";
  double ratePps = 200.0;
  double durationMs = 50.0;
  double deadlineUs = 4000.0;
  double targetMiss = 0.05;
  int hostWorkers = std::max(1, std::min(8, hw));
  int seed = 1;
  bool skipDeterminism = false;

  bench::Args args("bench_cell", "multi-user cell capacity sweep");
  args.positional("maxServers", "largest simulated 400 MHz pool in the sweep",
                  &maxServers);
  args.positional("numSymbols", "OFDM symbols per packet (even)", &numSymbols);
  args.positional("jsonPath", "BENCH_cell.json path ('-' = skip)", &jsonPath);
  args.flag("users-list", "LIST",
            "comma-separated users/cell values to sweep (offered-load axis)",
            &usersListText);
  args.flag("rate", "PPS", "offered packets/sec per user (simulated time)",
            &ratePps);
  args.flag("duration-ms", "MS", "simulated arrival horizon per config",
            &durationMs);
  args.flag("deadline-us", "US", "frame budget (simulated µs)", &deadlineUs);
  args.flag("target-miss", "RATE",
            "deadline-miss-rate target defining 'sustained' users/cell",
            &targetMiss);
  args.flag("host-workers", "N",
            "host farm threads (wall-clock only; results are identical for "
            "any value)",
            &hostWorkers);
  args.flag("seed", "S", "scenario master seed", &seed);
  args.flag("skip-determinism-check",
            "skip the 1-vs-N host-worker byte-identity re-run",
            &skipDeterminism);
  bench::ExecTierFlag tierFlag(args);
  if (!args.parse(argc, argv)) return args.parseError() ? 1 : 0;
  ExecTier tier;
  try {
    tier = tierFlag.resolve();
  } catch (const SimError& e) {
    std::fprintf(stderr, "bench_cell: %s\n", e.what());
    return 1;
  }
  bool listOk = false;
  const std::vector<int> usersList = parseIntList(usersListText, &listOk);
  if (!listOk) {
    std::fprintf(stderr,
                 "bench_cell: --users-list expects comma-separated positive "
                 "integers, got '%s' (try 'bench_cell --help')\n",
                 usersListText.c_str());
    return 1;
  }
  if (numSymbols < 2) numSymbols = 2;
  numSymbols &= ~1;
  if (maxServers < 1) maxServers = 1;
  if (hostWorkers < 1) hostWorkers = 1;

  cell::CellScenario base;
  base.seed = static_cast<u64>(seed);
  base.modem.mod = dsp::Modulation::kQam16;
  base.modem.numSymbols = numSymbols;
  base.durationUs = durationMs * 1000.0;
  base.classes[0].packetsPerSec = ratePps;
  base.classes[0].deadlineUs = deadlineUs;

  // Pay the one-time program build before anything timed or compared.
  (void)platform::modemProgramFor(base.modem);

  // Calibration: one clean-channel decode pins the nominal service time a
  // packet occupies a simulated server — per-server capacity follows.
  double serviceUs = 0.0;
  {
    platform::PacketFarm farm(farmConfigFor(base, 1, tier));
    Rng rng(cell::packetSeed(base, 0, 0, cell::kTxStream));
    const dsp::TxPacket pkt = dsp::transmit(base.modem, rng);
    dsp::ChannelConfig cc;
    cc.taps = 1;
    cc.snrDb = 40;
    cc.seed = 1;
    dsp::MimoChannel ch(cc);
    (void)farm.submit(ch.run(pkt.waveform));
    const std::vector<platform::RxOutcome> outs = farm.finish();
    serviceUs = cell::cyclesToUs(outs.at(0).result.cycles);
  }
  const double capacityPps = serviceUs > 0 ? 1e6 / serviceUs : 0.0;

  std::printf(
      "=== cell capacity: QAM16 x %d symbols, deadline %.0f us, "
      "%.0f pkt/s/user over %.0f ms simulated (%s tier, %d host workers) "
      "===\n",
      numSymbols, deadlineUs, ratePps, durationMs, execTierName(tier),
      hostWorkers);
  std::printf(
      "calibration: one decode = %.1f us simulated -> %.0f pkt/s per "
      "400 MHz server\n",
      serviceUs, capacityPps);

  std::vector<int> serverSweep;
  for (int s = 1; s < maxServers; s *= 2) serverSweep.push_back(s);
  serverSweep.push_back(maxServers);

  std::vector<Row> rows;
  std::vector<std::pair<int, int>> sustained;  // servers -> users at target
  for (const int servers : serverSweep) {
    int best = 0;
    for (const int users : usersList) {
      cell::CellScenario sc = base;
      sc.numServers = servers;
      sc.classes[0].users = users;
      const Row r = runConfig(sc, hostWorkers, tier, nullptr);
      rows.push_back(r);
      if (r.missRate <= targetMiss) best = std::max(best, users);
      std::printf(
          "%2d server%s %3d users: %5llu pkts  miss %5.1f%% "
          "(late %llu, expired %llu, overrun %llu)  err %llu  "
          "goodput %6.2f Mbps  util %3.0f%%  lat p50 %7.0f / p99 %7.0f us  "
          "[%.0f ms host]\n",
          servers, servers == 1 ? ", " : "s,", users,
          static_cast<unsigned long long>(r.offered), 100.0 * r.missRate,
          static_cast<unsigned long long>(r.missedLate),
          static_cast<unsigned long long>(r.missedExpired),
          static_cast<unsigned long long>(r.missedOverrun),
          static_cast<unsigned long long>(r.errors), r.goodputMbps,
          100.0 * r.utilization, r.latP50Us, r.latP99Us, r.wallMs);
    }
    sustained.push_back({servers, best});
    std::printf("%2d server%s sustained users/cell at <=%.1f%% miss: %d\n",
                servers, servers == 1 ? " " : "s", 100.0 * targetMiss, best);
  }

  // Determinism self-check: the same scenario folded with 1 and with N
  // host farm threads must produce byte-identical adres.cell.v1 summaries.
  bool deterministic = true;
  if (!skipDeterminism) {
    cell::CellScenario sc = base;
    sc.numServers = serverSweep.front();
    sc.classes[0].users = usersList.front();
    const int altWorkers = hostWorkers > 1 ? hostWorkers : 2;
    std::string sumA, sumB;
    (void)runConfig(sc, 1, tier, &sumA);
    (void)runConfig(sc, altWorkers, tier, &sumB);
    deterministic = sumA == sumB;
    std::printf("determinism: 1-vs-%d host workers summaries %s\n",
                altWorkers,
                deterministic ? "byte-identical" : "DIFFER (FAIL)");
  }

  if (jsonPath != "-") {
    std::ofstream os(jsonPath);
    os << "{\n  \"schema\": \"adres.bench_cell.v1\",\n"
       << "  \"exec_tier\": \"" << execTierName(tier) << "\",\n"
       << "  \"num_symbols\": " << numSymbols << ",\n"
       << "  \"rate_pps\": " << ratePps << ",\n"
       << "  \"duration_ms\": " << durationMs << ",\n"
       << "  \"deadline_us\": " << deadlineUs << ",\n"
       << "  \"target_miss\": " << targetMiss << ",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"host_workers\": " << hostWorkers << ",\n"
       << "  \"service_us\": " << serviceUs << ",\n"
       << "  \"server_capacity_pps\": " << capacityPps << ",\n"
       << "  \"deterministic\": " << (deterministic ? "true" : "false")
       << ",\n  \"rows\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      os << (i ? ",\n" : "\n")
         << "    {\"servers\": " << r.servers << ", \"users\": " << r.users
         << ", \"offered\": " << r.offered
         << ", \"delivered\": " << r.delivered << ", \"errors\": " << r.errors
         << ", \"missed_late\": " << r.missedLate
         << ", \"missed_expired\": " << r.missedExpired
         << ", \"missed_overrun\": " << r.missedOverrun
         << ", \"miss_rate\": " << r.missRate
         << ", \"goodput_mbps\": " << r.goodputMbps
         << ", \"utilization\": " << r.utilization
         << ", \"lat_p50_us\": " << r.latP50Us
         << ", \"lat_p99_us\": " << r.latP99Us
         << ", \"wall_ms\": " << r.wallMs << "}";
    }
    os << "\n  ],\n  \"sustained\": [";
    for (std::size_t i = 0; i < sustained.size(); ++i)
      os << (i ? ",\n" : "\n") << "    {\"servers\": " << sustained[i].first
         << ", \"users\": " << sustained[i].second << "}";
    os << "\n  ]\n}\n";
    std::printf("wrote %s\n", jsonPath.c_str());
  }

  if (!deterministic) {
    std::printf("FAILED: summaries differ across host worker counts\n");
    return 2;
  }
  return 0;
}
