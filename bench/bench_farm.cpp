// Packet-farm throughput: N simulated ADRES processors decoding a stream
// of MIMO-OFDM packets in parallel (src/platform).  Reports packets/sec,
// aggregate decoded Mbps, scaling efficiency vs worker count and p50/p99
// per-packet host latency (histogram-derived — no samples are stored),
// verifying every run is bit-exact with the 1-worker baseline.  Emits a
// machine-readable BENCH_farm.json.
//
//   $ ./bench_farm [numPackets] [numSymbols] [maxWorkers] [jsonPath] \
//         [--exec-tier TIER] [--live-metrics PORT] [--linger-ms N] \
//         [--metrics-json PATH] [--sentinel RATE] [--sentinel-tier TIER] \
//         [--slo SPECS] [--postmortem-dir DIR] \
//         [--sentinel-overhead-max-pct PCT]
//
// jsonPath defaults to BENCH_farm.json; pass "-" to skip the dump.  With
// --live-metrics the bench embeds a MetricsServer: while the sweep runs,
// `curl localhost:PORT/metrics` returns the live Prometheus exposition of
// the active farm (PORT 0 picks an ephemeral port, printed at startup);
// --linger-ms keeps serving the final farm's metrics after the sweep so
// scrapers and the farm_dashboard example can attach.
//
// Self-auditing (DESIGN.md §16): --sentinel enables the divergence sentinel
// at the given sample rate (any divergence makes the bench exit 2); --slo
// evaluates an SLO spec list against the live registry (served on /slo with
// --live-metrics; a breach captures a postmortem bundle when
// --postmortem-dir is set).  --sentinel-overhead-max-pct runs a paired
// with/without-sentinel comparison at the largest worker count and fails
// (exit 1) when the sentinel costs more throughput than the given percent.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_args.hpp"
#include "dsp/channel.hpp"
#include "obs/metrics_server.hpp"
#include "obs/slo.hpp"
#include "platform/packet_farm.hpp"

using namespace adres;

namespace {

struct Row {
  int workers = 0;
  double wallMs = 0, pps = 0, mbps = 0, speedup = 0, efficiency = 0;
  double p50Us = 0, p99Us = 0, avgPowerMw = 0, ber = 0;
  double queueWaitP50Us = 0, queueWaitP99Us = 0;
  double queueWaitShare = 0;  ///< queue wait / (queue wait + decode time)
  u64 sentinelSampled = 0;  ///< packets shadow-decoded by the sentinel
  u64 divergences = 0;      ///< sentinel divergences (must be 0)
  // Producer/consumer split: the submit side timed separately from the
  // decode side, plus how long submitters sat blocked on a full queue.
  double submitMs = 0;             ///< wall time of the submit loop alone
  double submitPps = 0;            ///< submit-side throughput (jobs/s)
  double backpressureMs = 0;       ///< submitter time blocked, queue full
  double backpressureShare = 0;    ///< blocked time / submit wall time
  bool bitExact = true;  ///< per-packet results identical to the 1-worker run
};

}  // namespace

int main(int argc, char** argv) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  int numPackets = 24;
  int numSymbols = 4;
  int maxWorkers = std::max(1, std::min(8, hw));
  std::string jsonPath = "BENCH_farm.json";
  int metricsPort = -1;
  int lingerMs = 0;
  std::string metricsJsonPath;
  double sentinelRate = -1.0;  // <0 = sentinel off
  std::string sentinelTierName = "interpreted";
  std::string sloSpecsText;
  std::string postmortemDir;
  double overheadMaxPct = -1.0;  // <0 = no overhead gate

  bench::Args args("bench_farm", "packet-farm throughput sweep");
  args.positional("numPackets", "packets to decode per row", &numPackets);
  args.positional("numSymbols", "OFDM symbols per packet (even)", &numSymbols);
  args.positional("maxWorkers", "largest worker count in the sweep",
                  &maxWorkers);
  args.positional("jsonPath", "BENCH_farm.json path ('-' = skip)", &jsonPath);
  args.flag("live-metrics", "PORT",
            "serve Prometheus /metrics + /metrics.json on PORT (0=ephemeral)",
            &metricsPort);
  args.flag("linger-ms", "MS", "keep serving metrics MS ms after the sweep",
            &lingerMs);
  args.flag("metrics-json", "PATH", "write the final adres.metrics.v1 snapshot",
            &metricsJsonPath);
  args.flag("sentinel", "RATE",
            "divergence-sentinel sample rate in [0,1] (1 audits everything)",
            &sentinelRate);
  args.flag("sentinel-tier", "TIER",
            "held-back shadow tier: reference | interpreted | native",
            &sentinelTierName);
  args.flag("slo", "SPECS",
            "SLO spec list, e.g. 'p99: p99_latency_us < 50000; "
            "integrity: divergences < 1'",
            &sloSpecsText);
  args.flag("postmortem-dir", "DIR",
            "write adres.postmortem.v1 bundles (SLO breaches, divergences, "
            "watchdog failures) under DIR",
            &postmortemDir);
  args.flag("sentinel-overhead-max-pct", "PCT",
            "paired-run overhead gate: fail when the sentinel costs more "
            "than PCT percent packet throughput",
            &overheadMaxPct);
  bench::ExecTierFlag tierFlag(args);
  if (!args.parse(argc, argv)) return args.parseError() ? 1 : 0;
  ExecTier tier;
  ExecTier sentinelTier;
  std::vector<obs::SloSpec> sloSpecs;
  try {
    tier = tierFlag.resolve();
    sentinelTier = parseExecTier(sentinelTierName);
    if (!sloSpecsText.empty()) sloSpecs = obs::parseSloSpecList(sloSpecsText);
  } catch (const SimError& e) {
    fprintf(stderr, "bench_farm: %s\n", e.what());
    return 1;
  }

  if (numSymbols < 2) numSymbols = 2;
  numSymbols &= ~1;
  if (maxWorkers < 1) maxWorkers = 1;

  dsp::ModemConfig cfg;
  cfg.mod = dsp::Modulation::kQam64;
  cfg.numSymbols = numSymbols;

  printf("=== packet farm: %d packets x %d symbols, up to %d workers "
         "(%d hw threads, %s tier) ===\n",
         numPackets, numSymbols, maxWorkers, hw, execTierName(tier));

  obs::MetricsRegistry metrics;
  std::unique_ptr<obs::MetricsServer> server;
  if (metricsPort >= 0) {
    server = std::make_unique<obs::MetricsServer>(metrics, metricsPort);
    printf("live metrics: http://127.0.0.1:%d/metrics (and /metrics.json)\n",
           server->port());
  }

  // Traffic: packets through a 2-tap channel, varied seeds, golden bits kept.
  std::vector<std::array<std::vector<cint16>, 2>> waves;
  std::vector<std::vector<u8>> golden;
  long totalBits = 0;
  for (int i = 0; i < numPackets; ++i) {
    Rng rng(1000 + static_cast<u64>(i));
    const dsp::TxPacket pkt = dsp::transmit(cfg, rng);
    dsp::ChannelConfig cc;
    cc.taps = 2;
    cc.snrDb = 38;
    cc.cfoPpm = 5;
    cc.seed = static_cast<u64>(i + 1);
    dsp::MimoChannel ch(cc);
    waves.push_back(ch.run(pkt.waveform));
    golden.push_back(pkt.bits);
    totalBits += static_cast<long>(pkt.bits.size());
  }

  // Pay the one-time program build before any timed run.
  (void)platform::modemProgramFor(cfg);

  std::vector<int> sweep;
  for (int w = 1; w < maxWorkers; w *= 2) sweep.push_back(w);
  sweep.push_back(maxWorkers);

  std::vector<Row> rows;
  std::vector<std::vector<u8>> baselineBits;
  std::vector<u64> baselineCycles;
  std::unique_ptr<platform::PacketFarm> farm;  // survives the loop for linger
  std::unique_ptr<obs::SloEngine> slo;
  u64 totalDivergences = 0;
  const auto farmConfigFor = [&](int w, double auditRate) {
    platform::FarmConfig fc;
    fc.modem = cfg;
    fc.numWorkers = w;
    fc.queueCapacity = static_cast<std::size_t>(2 * w);
    fc.ordered = true;
    fc.spans = true;  // per-packet span trees (region log, fast path kept)
    fc.run.exec.tier = tier;
    if (auditRate >= 0) {
      fc.sentinel.enabled = true;
      fc.sentinel.sampleRate = auditRate;
      fc.sentinel.shadowTier = sentinelTier;
      fc.sentinel.bundleOnDivergence = !postmortemDir.empty();
    }
    if (!postmortemDir.empty()) {
      fc.postmortem.enabled = true;
      fc.postmortem.dir = postmortemDir;
      fc.postmortem.metrics = &metrics;
    }
    return fc;
  };
  for (const int w : sweep) {
    // Swap the scrape target: clear() is the teardown barrier for the
    // getters capturing the previous farm and SLO engine.
    if (server) {
      server->setSloEngine(nullptr);
      server->setReadiness({});
    }
    metrics.clear();
    slo.reset();
    farm = std::make_unique<platform::PacketFarm>(farmConfigFor(w, sentinelRate));
    farm->registerMetrics(metrics);
    if (server) server->registerSelfMetrics(metrics);
    if (!sloSpecs.empty()) {
      slo = std::make_unique<obs::SloEngine>(metrics, sloSpecs);
      slo->registerMetrics(metrics);
      slo->setBreachHook([&](const obs::SloStatus& st) {
        const std::string path = farm->capturePostmortem(
            "slo_breach", st.spec.name + ": " + obs::sloSpecToString(st.spec));
        printf("   SLO BREACH [%s]: value %.3f vs threshold %.3f%s%s\n",
               st.spec.name.c_str(), st.value, st.spec.threshold,
               path.empty() ? "" : " -> ", path.c_str());
      });
      slo->startPeriodic(100);
    }
    if (server) {
      server->setReadiness(
          [&farm](std::string* reason) { return farm->ready(reason); });
      if (slo) server->setSloEngine(slo.get());
    }

    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < numPackets; ++i)
      (void)farm->submit(waves[static_cast<std::size_t>(i)]);
    const double submitUs = bench::msSince(t0) * 1000.0;
    const std::vector<platform::RxOutcome> outs = farm->finish();
    const double wallUs = bench::msSince(t0) * 1000.0;

    Row r;
    r.workers = w;
    r.wallMs = wallUs / 1000.0;
    // Submit-side throughput vs decode-side throughput: when the submitter
    // outruns the workers it blocks on the bounded queue, and that blocked
    // time is the backpressure term — decode-limited when the share is
    // high, producer-limited when ~0.
    r.submitMs = submitUs / 1000.0;
    r.submitPps = static_cast<double>(numPackets) / (submitUs / 1e6);
    r.backpressureMs =
        static_cast<double>(farm->stats().submitBackpressureNs) / 1e6;
    r.backpressureShare = submitUs > 0 ? r.backpressureMs / r.submitMs : 0;
    r.pps = static_cast<double>(numPackets) / (wallUs / 1e6);
    r.mbps = static_cast<double>(totalBits) / wallUs;  // bits/us == Mbps
    long errBits = 0;
    for (const auto& o : outs) {
      r.avgPowerMw += o.avgPowerMw;
      const auto& exp = golden[static_cast<std::size_t>(o.id)];
      errBits += o.result.bits.size() == exp.size()
                     ? dsp::bitErrors(o.result.bits, exp)
                     : static_cast<int>(exp.size());
    }
    r.ber = static_cast<double>(errBits) / static_cast<double>(totalBits);
    r.avgPowerMw /= static_cast<double>(outs.size() ? outs.size() : 1);
    // Histogram-derived quantiles from the farm's merged per-worker
    // latency histograms — no per-sample storage, same values the live
    // /metrics endpoint exposes.
    const obs::HistogramSnapshot lat = farm->stats().latencyNs;
    r.p50Us = lat.quantile(0.5) / 1000.0;
    r.p99Us = lat.quantile(0.99) / 1000.0;
    // Queue-wait vs decode-time split, from the per-packet span machinery.
    const obs::HistogramSnapshot wait = farm->stats().queueWaitNs;
    r.queueWaitP50Us = wait.quantile(0.5) / 1000.0;
    r.queueWaitP99Us = wait.quantile(0.99) / 1000.0;
    const double busyNs = static_cast<double>(wait.sum + lat.sum);
    r.queueWaitShare = busyNs > 0 ? static_cast<double>(wait.sum) / busyNs : 0;
    if (w == 1) {
      for (const auto& o : outs) {
        baselineBits.push_back(o.result.bits);
        baselineCycles.push_back(o.result.cycles);
      }
      r.speedup = 1.0;
    } else {
      r.speedup = rows.front().wallMs / r.wallMs;
      for (const auto& o : outs) {
        if (o.result.bits != baselineBits[static_cast<std::size_t>(o.id)] ||
            o.result.cycles != baselineCycles[static_cast<std::size_t>(o.id)])
          r.bitExact = false;
      }
    }
    r.efficiency = r.speedup / static_cast<double>(w);
    if (const obs::DivergenceSentinel* s = farm->sentinel()) {
      r.sentinelSampled = s->sampled();
      r.divergences = s->divergences();
      totalDivergences += r.divergences;
    }
    rows.push_back(r);

    printf("%2d worker%s: %8.1f ms  %7.2f pkt/s  %7.2f Mbps  speedup %5.2fx "
           "(eff %3.0f%%)  p50 %.0f us  p99 %.0f us  qwait p50 %.0f / p99 %.0f "
           "us (%.0f%%)  BER %.1e  %s\n",
           w, w == 1 ? " " : "s", r.wallMs, r.pps, r.mbps, r.speedup,
           100.0 * r.efficiency, r.p50Us, r.p99Us, r.queueWaitP50Us,
           r.queueWaitP99Us, 100.0 * r.queueWaitShare, r.ber,
           r.bitExact ? "bit-exact" : "MISMATCH vs 1-worker baseline");
    printf("            submit %8.1f ms  %7.0f jobs/s  backpressure %.1f ms "
           "(%.0f%% of submit)\n",
           r.submitMs, r.submitPps, r.backpressureMs,
           100.0 * r.backpressureShare);
    if (farm->sentinel()) {
      printf("            sentinel: %llu/%d packets audited, %llu divergence%s\n",
             static_cast<unsigned long long>(r.sentinelSampled), numPackets,
             static_cast<unsigned long long>(r.divergences),
             r.divergences == 1 ? "" : "s");
      for (const obs::IntegrityEvent& ev : farm->integrityEvents())
        printf("   DIVERGENCE [%s] job %llu worker %d: %s%s%s\n",
               obs::integrityEventKindName(ev.kind),
               static_cast<unsigned long long>(ev.jobId), ev.worker,
               ev.detail.c_str(), ev.bundlePath.empty() ? "" : " -> ",
               ev.bundlePath.c_str());
    }
    if (slo) {
      for (const obs::SloStatus& st : slo->evaluate())
        printf("            slo[%s]: %s = %.3f vs %s %.3f  burn %.2f  %s\n",
               st.spec.name.c_str(), obs::sloKindName(st.spec.kind), st.value,
               st.spec.strict ? "<" : "<=", st.spec.threshold, st.burnRate,
               st.fired ? "BREACHING" : (st.haveValue ? "ok" : "no data"));
    }
    for (const obs::HealthEvent& ev : farm->healthEvents())
      printf("   health[%s]: %s\n", obs::healthEventKindName(ev.kind),
             ev.detail.c_str());
  }

  if (!metricsJsonPath.empty()) {
    std::ofstream os(metricsJsonPath);
    metrics.writeJson(os);
    printf("wrote %s\n", metricsJsonPath.c_str());
  }

  if (jsonPath != "-") {
    std::ofstream os(jsonPath);
    os << "{\n  \"schema\": \"adres.bench_farm.v1\",\n"
       << "  \"exec_tier\": \"" << execTierName(tier) << "\",\n"
       << "  \"sentinel_rate\": " << (sentinelRate >= 0 ? sentinelRate : 0.0)
       << ",\n"
       << "  \"packets\": " << numPackets << ",\n"
       << "  \"num_symbols\": " << numSymbols << ",\n"
       << "  \"total_bits\": " << totalBits << ",\n"
       << "  \"hardware_threads\": " << hw << ",\n  \"rows\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      os << (i ? ",\n" : "\n")
         << "    {\"workers\": " << r.workers << ", \"wall_ms\": " << r.wallMs
         << ", \"packets_per_sec\": " << r.pps << ", \"mbps\": " << r.mbps
         << ", \"speedup\": " << r.speedup
         << ", \"efficiency\": " << r.efficiency
         << ", \"p50_us\": " << r.p50Us << ", \"p99_us\": " << r.p99Us
         << ", \"queue_wait_p50_us\": " << r.queueWaitP50Us
         << ", \"queue_wait_p99_us\": " << r.queueWaitP99Us
         << ", \"queue_wait_share\": " << r.queueWaitShare
         << ", \"submit_ms\": " << r.submitMs
         << ", \"submit_jobs_per_sec\": " << r.submitPps
         << ", \"submit_backpressure_ms\": " << r.backpressureMs
         << ", \"submit_backpressure_share\": " << r.backpressureShare
         << ", \"avg_power_mw\": " << r.avgPowerMw << ", \"ber\": " << r.ber
         << ", \"sentinel_sampled\": " << r.sentinelSampled
         << ", \"divergences\": " << r.divergences
         << ", \"bit_exact\": " << (r.bitExact ? "true" : "false") << "}";
    }
    os << "\n  ]\n}\n";
    printf("wrote %s\n", jsonPath.c_str());
  }

  // Paired overhead gate: same traffic, same worker count, sentinel off vs
  // on.  Best-of-two per side to damp host noise; postmortem capture and
  // bundling are disabled so the comparison isolates the sentinel itself.
  bool overheadGateFailed = false;
  if (overheadMaxPct > 0) {
    const double rate = sentinelRate >= 0 ? sentinelRate : 0.01;
    const auto timedRun = [&](double auditRate) {
      platform::FarmConfig fc = farmConfigFor(maxWorkers, auditRate);
      fc.postmortem = obs::PostmortemConfig{};
      fc.sentinel.bundleOnDivergence = false;
      platform::PacketFarm f(fc);
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < numPackets; ++i)
        (void)f.submit(waves[static_cast<std::size_t>(i)]);
      (void)f.finish();
      const double wallUs = bench::msSince(t0) * 1000.0;
      totalDivergences += f.divergences();
      return static_cast<double>(numPackets) / (wallUs / 1e6);
    };
    const double basePps = std::max(timedRun(-1.0), timedRun(-1.0));
    const double sentPps = std::max(timedRun(rate), timedRun(rate));
    const double overheadPct =
        basePps > 0 ? 100.0 * (1.0 - sentPps / basePps) : 0.0;
    overheadGateFailed = overheadPct > overheadMaxPct;
    printf("sentinel overhead @ %d workers, rate %.3f: %.1f%% "
           "(%.1f -> %.1f pkt/s, budget %.1f%%) %s\n",
           maxWorkers, rate, overheadPct, basePps, sentPps, overheadMaxPct,
           overheadGateFailed ? "FAIL" : "ok");
  }

  if (server && lingerMs > 0) {
    printf("serving metrics for another %d ms ...\n", lingerMs);
    std::this_thread::sleep_for(std::chrono::milliseconds(lingerMs));
  }
  if (server) {
    server->setSloEngine(nullptr);
    server->setReadiness({});
    server->stop();
    printf("metrics server: %llu scrapes\n",
           static_cast<unsigned long long>(server->requests()));
  }
  if (slo) slo->stop();
  metrics.clear();
  slo.reset();

  if (totalDivergences > 0) {
    printf("FAILED: %llu sentinel divergence%s detected\n",
           static_cast<unsigned long long>(totalDivergences),
           totalDivergences == 1 ? "" : "s");
    return 2;
  }
  for (const Row& r : rows)
    if (!r.bitExact) return 1;
  return overheadGateFailed ? 1 : 0;
}
