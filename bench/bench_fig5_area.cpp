// Reproduces Fig 5: processor area breakdown (parametric model calibrated
// to the published 5.79 mm^2 in TSMC 90G).
#include <cstdio>

#include "power/area_model.hpp"

using namespace adres::power;

int main() {
  const AreaReport r = analyzeArea();
  printf("=== Fig 5: processor area breakdown (TSMC 90G) ===\n");
  printf("%-32s %10s %8s %10s\n", "block", "mm^2", "share", "paper");
  struct Ref { const char* block; const char* paper; };
  const Ref refs[] = {
      {"memories (L1 + I$ + config)", "~50%"},
      {"CGA FUs", "29%"},
      {"VLIW FUs", "8%"},
      {"global RF", "5%"},
      {"distributed RFs", "3%"},
      {"control + other", "~5%"},
  };
  for (const Ref& ref : refs) {
    printf("%-32s %10.3f %7.1f%% %10s\n", ref.block,
           r.blocksMm2.at(ref.block), 100.0 * r.shares.at(ref.block),
           ref.paper);
  }
  printf("%-32s %10.3f %8s %10s\n", "TOTAL", r.totalMm2, "", "5.79 mm^2");

  // Design-space sanity: doubling local-RF ports must grow the distributed
  // RF area accordingly (the asymmetry §2.B argues for).
  AreaParams fat;
  fat.lrfReadPorts = 6;
  fat.lrfWritePorts = 3;
  fat.localRfMm2PerBitPort = AreaParams{}.sharedRfMm2PerBitPort;
  const AreaReport r2 = analyzeArea(fat);
  printf("\nwhat-if: local RFs with shared-RF porting/cells -> distributed"
         " RFs grow from %.3f to %.3f mm^2 (%.1fx)\n",
         r.blocksMm2.at("distributed RFs"), r2.blocksMm2.at("distributed RFs"),
         r2.blocksMm2.at("distributed RFs") / r.blocksMm2.at("distributed RFs"));
  return 0;
}
