// Reproduces Figs 6a/6b: active-power breakdown in VLIW mode and in CGA
// mode, from the activity-based energy model over the reference run.
#include <cstdio>
#include <vector>

#include "dsp/channel.hpp"
#include "power/energy_model.hpp"
#include "sdr/modem_program.hpp"

using namespace adres;

int main() {
  dsp::ModemConfig cfg;
  cfg.numSymbols = 16;
  Rng rng(5);
  const dsp::TxPacket pkt = dsp::transmit(cfg, rng);
  dsp::ChannelConfig cc;
  cc.flat = true;
  cc.snrDb = 40;
  cc.cfoPpm = 6;
  dsp::MimoChannel ch(cc);
  const auto rx = ch.run(pkt.waveform);
  const sdr::ModemOnProcessor m = sdr::buildModemProgram(cfg);
  Processor proc;
  (void)sdr::runModemOnProcessor(proc, m, rx);
  const power::PowerReport r = power::analyze(proc);

  printf("=== Fig 6a: power breakdown, non-kernel (VLIW) mode ===\n");
  struct Ref { const char* cat; const char* paper; };
  const std::vector<Ref> refsA = {
      {"interconnect", "28%"}, {"vliw FUs", "22%"},  {"global RF", "21%"},
      {"L1", "13%"},           {"I$", "10%"},        {"idle CGA + clock", "~6%"},
  };
  for (const auto& ref : refsA)
    printf("  %-18s %6.1f%%   (paper %s)\n", ref.cat,
           100.0 * r.vliwBreakdown.at(ref.cat), ref.paper);

  printf("\n=== Fig 6b: power breakdown, kernel (CGA) mode ===\n");
  const std::vector<Ref> refsB = {
      {"interconnect", "38%"},   {"CGA FUs", "25%"},
      {"config memories", "13%"},{"L1", "10%"},
      {"global RF", "8%"},       {"distributed RF", "2%"},
      {"idle VLIW + I$", "5%"},
  };
  for (const auto& ref : refsB)
    printf("  %-18s %6.1f%%   (paper %s)\n", ref.cat,
           100.0 * r.cgaBreakdown.at(ref.cat), ref.paper);

  // Shape checks the paper's discussion relies on.
  const bool interTopCga =
      r.cgaBreakdown.at("interconnect") >= r.cgaBreakdown.at("CGA FUs");
  const auto c = power::EnergyCoefficients::defaultCalibration();
  printf("\nshape: interconnect dominates CGA mode: %s; local-RF access "
         "energy %.1f pJ vs shared-RF %.1f pJ (the 2R/1W files are %.1fx "
         "cheaper per access, as SS2.B argues)\n",
         interTopCga ? "yes" : "NO", c.lrfAccessPj, c.cdrfAccessPj,
         c.cdrfAccessPj / c.lrfAccessPj);
  return 0;
}
