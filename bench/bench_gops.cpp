// Reproduces the §3 headline: 16 FUs x 4-way SIMD x 400 MHz = 25.6 GOPS
// (16-bit).  A hand-packed configuration keeps all 16 FUs issuing SIMD
// ops every cycle; sustained GOPS is measured from the activity counters.
// google-benchmark times the simulator itself as a side report.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "cga/array.hpp"
#include "common/activity.hpp"
#include "dsp/lanes.hpp"

using namespace adres;

namespace {

/// All 16 FUs run C4ADD on their own local registers every cycle.
KernelConfig saturatingKernel() {
  KernelConfig k;
  k.name = "gops_saturate";
  k.ii = 1;
  k.schedLength = 1;
  k.contexts.resize(1);
  for (int fu = 0; fu < kCgaFus; ++fu) {
    FuOp& f = k.contexts[0].fu[fu];
    f.op = Opcode::C4ADD;
    f.src1 = SrcSel::localRf(0);
    f.src2 = SrcSel::localRf(1);
    f.dst.toLocalRf = true;
    f.dst.localAddr = 0;
  }
  return k;
}

struct Fabric {
  CentralRegFile crf;
  Scratchpad l1;
  ConfigMemory cfg;
  ActivityCounters act;
  CgaArray array{crf, l1, cfg, act};
};

double measureGops(u32 trips) {
  Fabric f;
  const CgaRunResult r = f.array.run(saturatingKernel(), trips);
  // ops16 16-bit operations over r.cycles at 400 MHz.
  const double opsPerCycle =
      static_cast<double>(f.act.ops16) / static_cast<double>(r.cycles);
  return opsPerCycle * 400e6 / 1e9;
}

void BM_SaturatedArray(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(measureGops(1000));
  }
}
BENCHMARK(BM_SaturatedArray);

}  // namespace

int main(int argc, char** argv) {
  printf("=== Peak arithmetic throughput (paper SS3: 25.6 GOPS 16-bit) ===\n");
  for (u32 trips : {100u, 1000u, 10000u}) {
    printf("  %6u iterations: sustained %.2f GOPS (peak 25.6)\n", trips,
           measureGops(trips));
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
