// Host wall-clock simulation speed of the cycle-accurate model: simulated
// Mcycles/s per Table 2 kernel (standalone CgaArray launches), for the full
// 2x2 modem program, and decoded packets/s through the packet farm.  The
// committed BENCH_simspeed.json at the repo root tracks these numbers
// across PRs (a baseline/after pair per optimization).
//
//   $ ./bench_simspeed [jsonPath] [minMsPerCase] [--exec-tier TIER] \
//         [--profile-json PATH] [--profile-folded PATH] \
//         [--overhead-max-pct PCT]
//
// jsonPath defaults to BENCH_simspeed.json; pass "-" to skip the dump.
// --profile-json / --profile-folded dump the cycle-attribution profiler
// output (adres.profile.v1 JSON / flamegraph folded stacks) of the modem
// phase; --overhead-max-pct makes the run fail (exit 1) when enabling
// spans + profiler costs more than PCT percent host time vs tracing off
// (the CI tracing-overhead smoke).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_args.hpp"
#include "dsp/channel.hpp"
#include "platform/packet_farm.hpp"
#include "support/kernel_fixture.hpp"
#include "trace/profile.hpp"

using namespace adres;
using namespace adres::testsupport;
using adres::bench::msSince;

namespace {

struct Measure {
  std::string name;
  u64 simCycles = 0;  ///< simulated cycles covered by the timed loop
  u64 runs = 0;
  double hostMs = 0;
  double mcyclesPerSec() const {
    return hostMs > 0 ? static_cast<double>(simCycles) / (hostMs * 1e3) : 0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath = "BENCH_simspeed.json";
  double minMs = 150.0;
  std::string profileJsonPath;
  std::string profileFoldedPath;
  double overheadMaxPct = -1.0;
  bench::Args args("bench_simspeed", "host simulation-speed benchmark");
  args.positional("jsonPath", "BENCH_simspeed.json path ('-' = skip)",
                  &jsonPath);
  args.positional("minMsPerCase", "minimum timed ms per kernel case", &minMs);
  args.flag("profile-json", "PATH", "write adres.profile.v1 of the modem phase",
            &profileJsonPath);
  args.flag("profile-folded", "PATH", "write flamegraph folded stacks",
            &profileFoldedPath);
  args.flag("overhead-max-pct", "PCT",
            "fail if spans+profiler cost more than PCT% vs tracing off",
            &overheadMaxPct);
  bench::ExecTierFlag tierFlag(args);
  if (!args.parse(argc, argv)) return args.parseError() ? 1 : 0;
  ExecTier tier;
  try {
    tier = tierFlag.resolve();
  } catch (const SimError& e) {
    fprintf(stderr, "bench_simspeed: %s\n", e.what());
    return 1;
  }
  printf("exec tier: %s\n", execTierName(tier));

  // -- Per-kernel: standalone launches on a private fabric ------------------
  std::vector<Measure> kernels;
  for (const KernelCase& c : tableTwoKernelCases()) {
    Fabric f;
    prepareFabric(f);
    c.setup(f);
    (void)f.array.run(c.config, c.trips, tier);  // warm-up (and plan build)
    Measure m;
    m.name = c.name;
    const auto t0 = std::chrono::steady_clock::now();
    do {
      // Re-seed the live-ins every launch so pointers/indices the kernel
      // writes back never walk out of the fixture's address plan.
      c.setup(f);
      const CgaRunResult r = f.array.run(c.config, c.trips, tier);
      m.simCycles += r.cycles;
      ++m.runs;
      m.hostMs = msSince(t0);
    } while (m.hostMs < minMs);
    kernels.push_back(m);
    printf("kernel %-12s %8.2f Mcycles/s  (%llu runs, %llu sim cycles, %.0f ms)\n",
           m.name.c_str(), m.mcyclesPerSec(),
           static_cast<unsigned long long>(m.runs),
           static_cast<unsigned long long>(m.simCycles), m.hostMs);
  }

  // -- Full modem: the Table 2 scenario -------------------------------------
  dsp::ModemConfig cfg;
  cfg.mod = dsp::Modulation::kQam64;
  cfg.numSymbols = 16;
  Rng rng(5);
  const dsp::TxPacket pkt = dsp::transmit(cfg, rng);
  dsp::ChannelConfig cc;
  cc.flat = true;
  cc.snrDb = 40;
  cc.cfoPpm = 6;
  dsp::MimoChannel ch(cc);
  const auto rx = ch.run(pkt.waveform);
  const sdr::ModemOnProcessor modem = sdr::buildModemProgram(cfg);

  sdr::RxRunOptions tierOpts;
  tierOpts.exec.tier = tier;

  Measure mm;
  mm.name = "modem";
  {
    Processor proc;
    const sdr::ProcessorRxResult warm =
        sdr::runModemOnProcessor(proc, modem, rx, tierOpts);
    if (!warm.detected || dsp::bitErrors(warm.bits, pkt.bits) != 0) {
      fprintf(stderr, "modem warm-up run did not decode cleanly\n");
      return 1;
    }
    const auto t0 = std::chrono::steady_clock::now();
    do {
      const sdr::ProcessorRxResult r =
          sdr::runModemOnProcessor(proc, modem, rx, tierOpts);
      mm.simCycles += r.cycles;
      ++mm.runs;
      mm.hostMs = msSince(t0);
    } while (mm.hostMs < 2 * minMs);
  }
  printf("modem (16 sym)      %8.2f Mcycles/s  (%llu runs, %.2f ms/run)\n",
         mm.mcyclesPerSec(), static_cast<unsigned long long>(mm.runs),
         mm.hostMs / static_cast<double>(mm.runs));

  // -- Observability: span/profiler overhead + cycle attribution ------------
  // Paired baseline/instrumented modem runs.  The instrumented side enables
  // the per-launch profiler and the region-span log (the farm's span
  // machinery) — both must keep the decode bit- and cycle-exact and cost
  // only a few percent of host time.
  trace::ProfileSummary profile;
  double obsOffMs = 0, obsOnMs = 0, overheadPct = 0;
  u64 obsRuns = 0;
  {
    Processor proc;
    sdr::RxRunOptions off = tierOpts;
    sdr::RxRunOptions on = tierOpts;
    on.profile = true;
    std::vector<RegionSpan> regionLog;
    on.regionLog = &regionLog;
    const sdr::ProcessorRxResult refRun = sdr::runModemOnProcessor(proc, modem, rx, off);
    for (int attempt = 0; attempt < 2; ++attempt) {
      // One retry at a doubled budget if the first measurement lands over
      // the threshold (noise on a loaded host).
      const double target = minMs * (attempt ? 2.0 : 1.0);
      obsOffMs = obsOnMs = 0;
      obsRuns = 0;
      while (obsOffMs < target) {
        auto t0 = std::chrono::steady_clock::now();
        const sdr::ProcessorRxResult a = sdr::runModemOnProcessor(proc, modem, rx, off);
        obsOffMs += msSince(t0);
        regionLog.clear();
        t0 = std::chrono::steady_clock::now();
        const sdr::ProcessorRxResult b = sdr::runModemOnProcessor(proc, modem, rx, on);
        obsOnMs += msSince(t0);
        profile.addProcessor(proc);
        ++obsRuns;
        if (a.cycles != refRun.cycles || b.cycles != refRun.cycles ||
            a.bits != refRun.bits || b.bits != refRun.bits) {
          fprintf(stderr, "observability run diverged from the baseline\n");
          return 1;
        }
      }
      overheadPct = obsOffMs > 0 ? 100.0 * (obsOnMs - obsOffMs) / obsOffMs : 0;
      if (overheadMaxPct < 0 || overheadPct <= overheadMaxPct) break;
    }
    printf("observability       %+7.2f%% host overhead (spans+profiler, "
           "%llu paired runs)\n",
           overheadPct, static_cast<unsigned long long>(obsRuns));
    for (const trace::CycleSink& s : profile.topSinks(3))
      printf("  cycle sink %-28s %10llu cycles  (%.1f%%)\n", s.name.c_str(),
             static_cast<unsigned long long>(s.cycles), 100.0 * s.share);
  }
  if (!profileJsonPath.empty()) {
    std::ofstream os(profileJsonPath);
    profile.writeJson(os);
    printf("wrote %s\n", profileJsonPath.c_str());
  }
  if (!profileFoldedPath.empty()) {
    std::ofstream os(profileFoldedPath);
    profile.writeFolded(os);
    printf("wrote %s\n", profileFoldedPath.c_str());
  }

  // -- Packet farm: decoded packets per host second -------------------------
  const int farmPackets = 32;
  dsp::ModemConfig fcfg;
  fcfg.mod = dsp::Modulation::kQam64;
  fcfg.numSymbols = 4;
  std::vector<std::array<std::vector<cint16>, 2>> waves;
  for (int i = 0; i < farmPackets; ++i) {
    Rng prng(1000 + static_cast<u64>(i));
    const dsp::TxPacket p = dsp::transmit(fcfg, prng);
    dsp::ChannelConfig pcc;
    pcc.taps = 2;
    pcc.snrDb = 38;
    pcc.cfoPpm = 5;
    pcc.seed = static_cast<u64>(i + 1);
    dsp::MimoChannel pch(pcc);
    waves.push_back(pch.run(p.waveform));
  }
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int workers = std::max(1, std::min(4, hw));
  (void)platform::modemProgramFor(fcfg);  // pay the program build up front
  platform::FarmConfig fc;
  fc.modem = fcfg;
  fc.numWorkers = workers;
  fc.run.exec.tier = tier;
  double farmMs = 0;
  {
    platform::PacketFarm farm(fc);
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& w : waves) farm.submit(w);
    const auto outcomes = farm.finish();
    farmMs = msSince(t0);
    if (static_cast<int>(outcomes.size()) != farmPackets) {
      fprintf(stderr, "farm dropped packets\n");
      return 1;
    }
  }
  const double pps = static_cast<double>(farmPackets) / (farmMs * 1e-3);
  printf("farm                %8.1f packets/s  (%d packets x %d sym, %d workers)\n",
         pps, farmPackets, fcfg.numSymbols, workers);

  if (jsonPath != "-") {
    std::ofstream os(jsonPath);
    os << "{\n  \"schema\": \"adres.bench_simspeed.v1\",\n  \"execTier\": \""
       << execTierName(tier) << "\",\n  \"kernels\": [\n";
    for (std::size_t i = 0; i < kernels.size(); ++i) {
      const Measure& m = kernels[i];
      char buf[256];
      snprintf(buf, sizeof buf,
               "    {\"name\": \"%s\", \"simCycles\": %llu, \"runs\": %llu, "
               "\"hostMs\": %.1f, \"mcyclesPerSec\": %.3f}%s\n",
               m.name.c_str(), static_cast<unsigned long long>(m.simCycles),
               static_cast<unsigned long long>(m.runs), m.hostMs,
               m.mcyclesPerSec(), i + 1 < kernels.size() ? "," : "");
      os << buf;
    }
    os << "  ],\n";
    char buf[512];
    snprintf(buf, sizeof buf,
             "  \"modem\": {\"numSymbols\": %d, \"simCycles\": %llu, "
             "\"runs\": %llu, \"hostMs\": %.1f, \"mcyclesPerSec\": %.3f, "
             "\"msPerPacket\": %.3f},\n",
             cfg.numSymbols, static_cast<unsigned long long>(mm.simCycles),
             static_cast<unsigned long long>(mm.runs), mm.hostMs,
             mm.mcyclesPerSec(), mm.hostMs / static_cast<double>(mm.runs));
    os << buf;
    snprintf(buf, sizeof buf,
             "  \"farm\": {\"packets\": %d, \"numSymbols\": %d, "
             "\"workers\": %d, \"wallMs\": %.1f, \"packetsPerSec\": %.1f},\n",
             farmPackets, fcfg.numSymbols, workers, farmMs, pps);
    os << buf;
    snprintf(buf, sizeof buf,
             "  \"observability\": {\"offMs\": %.1f, \"onMs\": %.1f, "
             "\"overheadPct\": %.2f, \"pairedRuns\": %llu}\n}\n",
             obsOffMs, obsOnMs, overheadPct,
             static_cast<unsigned long long>(obsRuns));
    os << buf;
    printf("wrote %s\n", jsonPath.c_str());
  }
  if (overheadMaxPct >= 0 && overheadPct > overheadMaxPct) {
    fprintf(stderr,
            "tracing overhead %.2f%% exceeds the --overhead-max-pct %.2f%% "
            "budget\n",
            overheadPct, overheadMaxPct);
    return 1;
  }
  return 0;
}
