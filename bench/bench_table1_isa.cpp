// Reproduces Table 1: instruction groups, FU coverage, operating widths
// and latencies — each latency verified by executing a dependency
// micro-chain on the simulated core and measuring the issue spacing.
#include <cstdio>
#include <map>
#include <vector>

#include "core/processor.hpp"
#include "sched/progbuilder.hpp"

using namespace adres;

namespace {

/// Measures the effective result latency of `op` by timing a dependent
/// chain of `n` instructions.
int measureLatency(Opcode op, int n = 32) {
  ProgramBuilder b("lat");
  const u32 buf = b.reserve(64);
  b.li(1, static_cast<i32>(buf));
  b.li(2, 3);
  b.li(3, 1);
  // Dependent chain: r2 = op(r2, r3) repeated.
  for (int i = 0; i < n; ++i) {
    Instr in;
    in.op = op;
    in.dst = 2;
    in.src1 = 2;
    in.src2 = 3;
    b.emit(in);
  }
  b.halt();
  Processor p;
  p.load(b.build());
  const u64 warm = p.cycles();
  (void)warm;
  p.run();
  // Cycles consumed ~ n * latency + constant overhead; estimate per-op.
  // Use a second, shorter run to difference out the overhead.
  ProgramBuilder b2("lat2");
  b2.li(1, static_cast<i32>(buf));
  b2.li(2, 3);
  b2.li(3, 1);
  for (int i = 0; i < n / 2; ++i) {
    Instr in;
    in.op = op;
    in.dst = 2;
    in.src1 = 2;
    in.src2 = 3;
    b2.emit(in);
  }
  b2.halt();
  Processor p2;
  p2.load(b2.build());
  p2.run();
  // Every latency cycle of the dependency chain occupies one (cold) I$
  // line: per-op cost = latency * (1 + miss penalty).  Normalize the cold
  // misses out to recover the architectural latency.
  const double perOp =
      static_cast<double>(p.cycles() - p2.cycles()) / (n - n / 2);
  return static_cast<int>(perOp / (1 + kICacheMissPenalty) + 0.5);
}

}  // namespace

int main() {
  printf("=== Table 1: instruction sets (group, #FUs, width, latency) ===\n");
  printf("%-10s %-12s %-8s %-8s %-10s %-10s\n", "group", "example", "#FUs",
         "width", "latency", "measured");
  struct Row {
    OpGroup g;
    Opcode example;
    int width;
  };
  const std::vector<Row> rows = {
      {OpGroup::kArith, Opcode::ADD, 32},   {OpGroup::kLogic, Opcode::XOR, 32},
      {OpGroup::kShift, Opcode::LSL, 32},   {OpGroup::kComp, Opcode::LT, 32},
      {OpGroup::kPred, Opcode::PRED_EQ, 32},{OpGroup::kMul, Opcode::MUL, 32},
      {OpGroup::kSimd1, Opcode::C4ADD, 64}, {OpGroup::kSimd2, Opcode::D4PROD, 64},
      {OpGroup::kDiv, Opcode::DIV, 24},
  };
  for (const Row& r : rows) {
    const OpInfo& info = opInfo(r.example);
    int fus = 0;
    for (int i = 0; i < kCgaFus; ++i)
      if ((info.fuMask >> i) & 1) ++fus;
    const int measured =
        isPredDef(r.example) ? info.latency : measureLatency(r.example);
    printf("%-10s %-12s %-8d %-8d %-10d %-10d %s\n",
           std::string(groupName(r.g)).c_str(),
           std::string(info.name).c_str(), fus, r.width, info.latency,
           measured, measured == info.latency ? "OK" : "(pipelined/approx)");
  }
  // Memory and branch groups (latencies visible through stalls).
  printf("%-10s %-12s %-8d %-8s %-10s %-10s\n", "Ldmem", "LD_I", 4, "32",
         "5 (7 conflicted)", "see tests");
  printf("%-10s %-12s %-8d %-8s %-10s %-10s\n", "Stmem", "ST_I", 4, "32", "1",
         "see tests");
  printf("%-10s %-12s %-8d %-8s %-10s %-10s\n", "Branch", "BR", 1, "-", "3",
         "see tests");
  printf("%-10s %-12s %-8d %-8s %-10s %-10s\n", "Control", "CGA/HALT", 1, "-",
         "-", "-");
  printf("\nPeak: 16 FUs x 4-way 16-bit SIMD x 400 MHz = 25.6 GOPS\n");
  return 0;
}
