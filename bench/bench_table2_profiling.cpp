// Reproduces Table 2: per-kernel mode / IPC / cycles of the 20 MHz 2x2
// MIMO-OFDM modem running on the simulated processor, plus the preamble /
// data-phase totals and the real-time analysis of §4.
//
//   $ ./bench_table2_profiling [countersJsonPath]
//
// When a path is given, the run's adres.counters.v1 dump is written there.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "dsp/channel.hpp"
#include "sdr/modem_program.hpp"

using namespace adres;
using namespace adres::sdr;

namespace {

struct PaperRow {
  const char* name;
  const char* mode;
  double ipc;
  int cycles;
  bool preamble;
};

// Paper Table 2 reference values (preamble rows aggregated per kernel name
// where the paper lists several instances).
const std::vector<PaperRow> kPaper = {
    {"acorr", "mixed", 3.47, 122 + 194, true},
    {"fshift", "CGA", 12.16, 211 + 678, true},
    {"xcorr", "CGA", 9.15, 280, true},
    {"fft", "CGA (2x)", 10.36, 712, true},
    {"remove zero carriers", "VLIW", 1.10, 76, true},
    {"freq offset estimation", "CGA", 6.32, 314, true},
    {"freq offset compensation", "mixed", 4.48, 424, true},
    {"sample ordering", "VLIW", 1.61, 210, true},
    {"SDM processing", "CGA (2x)", 9.90, 1540, true},
    {"sample reordering", "VLIW", 2.69, 256, true},
    {"equalize coeff. calc.", "CGA", 8.38, 636, true},
    {"non-kernel code", "VLIW", 1.69, 452, true},
    {"fshift (data)", "CGA", 13.33, 378, false},
    {"fft (data)", "CGA (2x)", 11.46, 493, false},
    {"data shuffle", "VLIW", 2.60, 100, false},
    {"tracking", "VLIW", 1.83, 117, false},
    {"comp", "CGA", 9.00, 219, false},
    {"demod QAM64", "CGA", 12.04, 224, false},
};

}  // namespace

int main(int argc, char** argv) {
  const char* countersPath = argc > 1 ? argv[1] : nullptr;
  const int numSymbols = 16;  // amortizes cold I$ over the pair loop
  dsp::ModemConfig cfg;
  cfg.mod = dsp::Modulation::kQam64;
  cfg.numSymbols = numSymbols;
  Rng rng(5);
  const dsp::TxPacket pkt = dsp::transmit(cfg, rng);
  dsp::ChannelConfig cc;
  cc.flat = true;
  cc.snrDb = 40;
  cc.cfoPpm = 6;
  dsp::MimoChannel ch(cc);
  const auto rx = ch.run(pkt.waveform);

  const ModemOnProcessor m = buildModemProgram(cfg);
  Processor proc;
  RxRunOptions opts;
  if (countersPath) opts.countersJsonPath = countersPath;
  const ProcessorRxResult res = runModemOnProcessor(proc, m, rx, opts);
  const int errs = dsp::bitErrors(res.bits, pkt.bits);

  printf("=== Table 2: profiling of the SDM-OFDM code ===\n");
  printf("(this toolchain vs. paper; %d data symbols, packet decoded with %d"
         " bit errors)\n\n", numSymbols, errs);
  printf("%-26s | %-6s %7s %9s | %-9s %6s %7s\n", "kernel", "mode", "IPC",
         "cycles", "paperMode", "pIPC", "pCycles");
  printf("---------------------------------------------------------------"
         "---------------\n");

  const auto& profs = proc.profiles();
  u64 preambleCycles = 0, dataCycles = 0;
  const int pairs = numSymbols / 2;
  for (const PaperRow& pr : kPaper) {
    std::string region = pr.name;
    if (region == "fshift (data)") region = "fshift";
    if (region == "fft (data)") region = "fft";
    const int id = m.program.regionId(region);
    const RegionProfile& p = profs.at(id);
    // Regions shared between preamble and data phases are split by entry
    // counts (preamble entries happen once; data entries scale with pairs).
    u64 cycles = p.cycles;
    double ipc = p.ipc();
    if (region == "fshift" || region == "fft") {
      // entries: preamble uses 1 (fshift coarse) or 1 (fft); the rest are
      // per-pair.  Approximate the split proportionally per entry.
      const u64 perEntry = p.cycles / (p.entries ? p.entries : 1);
      if (pr.preamble) {
        cycles = perEntry;  // one preamble entry
      } else {
        cycles = (p.cycles - perEntry) / static_cast<u64>(pairs);
      }
    } else if (!pr.preamble || region == "non-kernel code") {
      // Data-phase rows are per 2 merged symbols (paper convention).
      if (p.entries > 1 && !pr.preamble)
        cycles = p.cycles / static_cast<u64>(pairs);
    }
    if (pr.preamble)
      preambleCycles += cycles;
    else
      dataCycles += cycles;
    printf("%-26s | %-6s %7.2f %9llu | %-9s %6.2f %7d\n", pr.name,
           p.mode().c_str(), ipc, static_cast<unsigned long long>(cycles),
           pr.mode, pr.ipc, pr.cycles);
  }

  printf("\n=== Totals ===\n");
  printf("preamble processing: %llu cycles = %.1f us   (paper: 6105 = 15.3 us;"
         " air time 24 us incl. MIMO LTFs)\n",
         static_cast<unsigned long long>(preambleCycles),
         static_cast<double>(preambleCycles) / 400.0);
  printf("data processing (2 symbols): %llu cycles = %.1f us  (paper: 1531 ="
         " 3.8 us; air time 8 us)\n",
         static_cast<unsigned long long>(dataCycles),
         static_cast<double>(dataCycles) / 400.0);
  printf("real-time margin (data): %.2fx %s\n",
         8.0 / (static_cast<double>(dataCycles) / 400.0),
         dataCycles < 3200 ? "(real-time at 400 MHz)"
                           : "(needs the paper's tuned DRESC schedules "
                             "for real-time; see EXPERIMENTS.md)");

  const auto& act = proc.activity();
  printf("\nCGA-mode share of active cycles: %.1f%% (paper: 60-72%%)\n",
         100.0 * static_cast<double>(act.cgaCycles) /
             static_cast<double>(act.cgaCycles + act.vliwCycles));
  printf("total run: %llu cycles (%.1f us)\n",
         static_cast<unsigned long long>(res.cycles), res.elapsedUs);

  if (countersPath)
    printf("wrote %s (schema adres.counters.v1)\n", countersPath);
  return 0;
}
