// Reproduces Table 3: processor power consumption (active VLIW / active
// CGA / program average, plus leakage corners) from the activity-based
// energy model over the reference MIMO-OFDM run.
#include <cstdio>

#include "dsp/channel.hpp"
#include "power/energy_model.hpp"
#include "sdr/modem_program.hpp"

using namespace adres;

int main() {
  dsp::ModemConfig cfg;
  cfg.numSymbols = 16;
  Rng rng(5);
  const dsp::TxPacket pkt = dsp::transmit(cfg, rng);
  dsp::ChannelConfig cc;
  cc.flat = true;
  cc.snrDb = 40;
  cc.cfoPpm = 6;
  dsp::MimoChannel ch(cc);
  const auto rx = ch.run(pkt.waveform);

  const sdr::ModemOnProcessor m = sdr::buildModemProgram(cfg);
  Processor proc;
  (void)sdr::runModemOnProcessor(proc, m, rx);
  const power::PowerReport r = power::analyze(proc);

  printf("=== Table 3: processor power consumption (typical corner, 1 V) ===\n");
  printf("%-10s %-18s %-18s %-14s\n", "", "active (typical)",
         "leakage (typ 25C)", "leakage (65C)");
  printf("%-10s %-18s %-18s %-14s\n", "", "model | paper", "model | paper",
         "model | paper");
  printf("%-10s %5.0f mW | 75 mW   %6.1f mW | 12.5    %4.0f mW | 25\n",
         "VLIW", r.vliwActiveMw, r.leakage25Mw, r.leakage65Mw);
  printf("%-10s %5.0f mW | 310 mW  %6.1f mW | 12.5    %4.0f mW | 25\n",
         "CGA", r.cgaActiveMw, r.leakage25Mw, r.leakage65Mw);
  printf("%-10s %5.0f mW | 220 mW  %6.1f mW | 12.5    %4.0f mW | 25\n",
         "Average", r.averageActiveMw, r.leakage25Mw, r.leakage65Mw);
  printf("\nmode occupancy: VLIW %llu cycles, CGA %llu cycles\n",
         static_cast<unsigned long long>(r.vliwCycles),
         static_cast<unsigned long long>(r.cgaCycles));
  printf("shape check: CGA-mode power / VLIW-mode power = %.1fx "
         "(paper: 4.1x)\n", r.cgaActiveMw / r.vliwActiveMw);
  return 0;
}
