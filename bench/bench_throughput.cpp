// Reproduces the 100 Mbps+ headline (§1/§4): end-to-end packets through
// the channel and the processor-mapped receiver, reporting raw rate,
// decode correctness, processing time vs air time, and the average power
// of the run (the paper's 220 mW @ 100 Mbps+ operating point).
//
//   $ ./bench_throughput [countersJsonPath]
//
// When a path is given, the last packet's adres.counters.v1 dump is
// written there (no file is written otherwise).
#include <cstdio>
#include <string>

#include "bench_args.hpp"
#include "dsp/channel.hpp"
#include "power/energy_model.hpp"
#include "sdr/modem_program.hpp"

using namespace adres;

int main(int argc, char** argv) {
  std::string countersJson;
  bench::Args args("bench_throughput", "100 Mbps+ operating-point check");
  args.positional("countersJsonPath",
                  "write the last packet's adres.counters.v1 dump here",
                  &countersJson);
  if (!args.parse(argc, argv)) return args.parseError() ? 1 : 0;
  const char* countersPath = countersJson.empty() ? nullptr
                                                  : countersJson.c_str();
  printf("=== 100 Mbps+ operating point (QAM-64, 2x2 SDM, 20 MHz) ===\n");
  dsp::ModemConfig cfg;
  cfg.mod = dsp::Modulation::kQam64;
  cfg.numSymbols = 16;
  printf("raw rate: %.0f Mbps (%d bits / 4 us OFDM symbol)\n",
         dsp::rawRateMbps(cfg), dsp::bitsPerOfdmSymbol(cfg));

  const sdr::ModemOnProcessor m = sdr::buildModemProgram(cfg);
  int packets = 0, packetsOk = 0;
  long totalBits = 0, totalErrs = 0;
  double totalUs = 0, avgMw = 0;
  // Three channel realizations; seed 3 draws a deep ZF fade (the uncoded
  // modem's known floor — EXPERIMENTS.md), the other two decode clean.
  const u64 seeds[] = {2, 3, 5};
  for (u64 seed : seeds) {
    Rng rng(seed * 17);
    const dsp::TxPacket pkt = dsp::transmit(cfg, rng);
    dsp::ChannelConfig cc;
    cc.taps = 2;
    cc.snrDb = 38;
    cc.cfoPpm = 5;
    cc.seed = seed;
    dsp::MimoChannel ch(cc);
    const auto rx = ch.run(pkt.waveform);
    Processor proc;
    sdr::RxRunOptions opts;
    if (seed == seeds[2] && countersPath) opts.countersJsonPath = countersPath;
    const sdr::ProcessorRxResult res = sdr::runModemOnProcessor(proc, m, rx, opts);
    const int errs = dsp::bitErrors(res.bits, pkt.bits);
    ++packets;
    if (res.detected && errs == 0) ++packetsOk;
    totalBits += static_cast<long>(pkt.bits.size());
    totalErrs += errs;
    totalUs += res.elapsedUs;
    avgMw += power::analyze(proc).averageActiveMw;
  }
  avgMw /= packets;
  const double airUs =
      packets * (dsp::kPreambleLen + cfg.numSymbols * dsp::kSymbolLen) / 20.0;
  printf("packets decoded error-free: %d / %d  (BER %.2e over 2-tap "
         "multipath @ 38 dB, 5 ppm CFO)\n", packetsOk, packets,
         static_cast<double>(totalErrs) / static_cast<double>(totalBits));
  printf("processing time: %.1f us for %.1f us of air time (%.2fx "
         "real-time at 400 MHz)\n", totalUs, airUs, airUs / totalUs);
  printf("average active power during processing: %.0f mW (paper: 220 mW)\n",
         avgMw);
  printf("delivered goodput while processing: %.1f Mbps\n",
         static_cast<double>(totalBits - totalErrs) / totalUs);
  if (countersPath)
    printf("wrote %s (schema adres.counters.v1, last packet)\n", countersPath);
  return 0;
}
