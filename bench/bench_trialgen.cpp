// Trial-generation pipeline: scalar reference vs the vectorized SoA
// frontend (src/dsp/frontend, DESIGN.md §15), per stage and end-to-end.
//
// Stage rows time the TX synthesis (transmit vs transmitInto), the channel
// (MimoChannel::run vs runInto) and the full generateTrial loop over the
// same counter-derived seeds, verifying the vectorized bytes match the
// scalar reference as they go.  The e2e rows run a fixed-trial QAM-64
// waterfall cell through the whole campaign engine (producer -> farm ->
// fold) once per frontend and report campaign trials/s — the number the
// PR-8 ">= 1.5x" acceptance target is stated against.  Emits a
// machine-readable BENCH_trialgen.json.
//
//   $ ./bench_trialgen [stageTrials] [e2eTrials] [workers] [jsonPath] \
//         [--producers N] [--snr DB]
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_args.hpp"
#include "campaign/runner.hpp"
#include "dsp/frontend.hpp"
#include "platform/rx_session.hpp"

using namespace adres;

namespace {

struct StageRow {
  const char* stage;
  double scalarUs = 0, vectorUs = 0;  ///< per trial
  double speedup = 0;
  bool identical = true;  ///< vectorized bytes == scalar reference
};

struct E2eRow {
  const char* label;
  const char* frontend;
  bool coldReload = false;
  int producers = 0;
  double wallMs = 0, trialsPerSec = 0;
};

double msSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// The committed waterfall cell: QAM-64, 4 OFDM symbols, 3-tap channel,
/// 10 ppm CFO, mid-waterfall SNR.
campaign::SweepSpec waterfallCell(double snrDb, u64 trials, u64 batch) {
  campaign::SweepSpec s;
  s.mods = {dsp::Modulation::kQam64};
  s.snrDb = {snrDb};
  s.cfoPpm = {10};
  s.taps = {3};
  s.numSymbols = {4};
  s.seed = 1;
  s.batchSize = batch;
  s.stop.minTrials = trials;
  s.stop.maxTrials = trials;  // fixed workload: stop rule can't fire early
  s.stop.errorBudget = trials + 1;
  s.stop.ciHalfWidth = 0.0;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  int stageTrials = 512;
  int e2eTrials = 128;
  int workers = 1;
  std::string jsonPath = "BENCH_trialgen.json";
  int producers = 1;
  double snrDb = 26;

  bench::Args args("bench_trialgen",
                   "scalar vs vectorized trial-generation pipeline");
  args.positional("stageTrials", "trials per stage microbench", &stageTrials);
  args.positional("e2eTrials", "trials in the e2e campaign cell", &e2eTrials);
  args.positional("workers", "farm workers for the e2e rows", &workers);
  args.positional("jsonPath", "BENCH_trialgen.json path ('-' = skip)",
                  &jsonPath);
  args.flag("producers", "N", "producer shards for the vectorized e2e row",
            &producers);
  args.flag("snr", "DB", "waterfall-cell SNR", &snrDb);
  if (!args.parse(argc, argv)) return args.parseError() ? 1 : 0;

  dsp::ModemConfig modem;
  modem.mod = dsp::Modulation::kQam64;
  modem.numSymbols = 4;
  dsp::ChannelConfig chBase;
  chBase.taps = 3;
  chBase.snrDb = snrDb;
  chBase.cfoPpm = 10;

  printf("=== trial generation: %d stage trials, %d-trial e2e cell "
         "(qam64 s4 t3 cfo10 snr%g), %d worker(s) ===\n",
         stageTrials, e2eTrials, snrDb, workers);

  std::vector<StageRow> stages;

  // --- TX synthesis -------------------------------------------------------
  {
    StageRow r{"tx"};
    dsp::TxScratch scratch;
    std::vector<u8> bits;
    std::array<std::vector<cint16>, dsp::kNumTx> wave;
    auto t0 = std::chrono::steady_clock::now();
    for (int t = 0; t < stageTrials; ++t) {
      Rng rng(100 + static_cast<u64>(t));
      const dsp::TxPacket pkt = dsp::transmit(modem, rng);
      (void)pkt;
    }
    r.scalarUs = msSince(t0) * 1000.0 / stageTrials;
    t0 = std::chrono::steady_clock::now();
    for (int t = 0; t < stageTrials; ++t) {
      Rng rng(100 + static_cast<u64>(t));
      dsp::transmitInto(modem, rng, bits, wave, scratch);
    }
    r.vectorUs = msSince(t0) * 1000.0 / stageTrials;
    {  // byte identity, outside the timed loops
      Rng ra(7), rb(7);
      const dsp::TxPacket pkt = dsp::transmit(modem, ra);
      dsp::transmitInto(modem, rb, bits, wave, scratch);
      r.identical = pkt.bits == bits && pkt.waveform == wave;
    }
    stages.push_back(r);
  }

  // --- Channel (taps + CFO + AWGN) ---------------------------------------
  {
    StageRow r{"channel"};
    Rng rng(42);
    const dsp::TxPacket pkt = dsp::transmit(modem, rng);
    dsp::ChannelScratch scratch;
    std::array<std::vector<cint16>, dsp::kNumRx> rx;
    auto t0 = std::chrono::steady_clock::now();
    for (int t = 0; t < stageTrials; ++t) {
      dsp::ChannelConfig cc = chBase;
      cc.seed = 1000 + static_cast<u64>(t);
      dsp::MimoChannel ch(cc);
      (void)ch.run(pkt.waveform);
    }
    r.scalarUs = msSince(t0) * 1000.0 / stageTrials;
    t0 = std::chrono::steady_clock::now();
    for (int t = 0; t < stageTrials; ++t) {
      dsp::ChannelConfig cc = chBase;
      cc.seed = 1000 + static_cast<u64>(t);
      dsp::MimoChannel ch(cc);
      ch.runInto(pkt.waveform, rx, scratch);
    }
    r.vectorUs = msSince(t0) * 1000.0 / stageTrials;
    {
      dsp::ChannelConfig cc = chBase;
      cc.seed = 77;
      dsp::MimoChannel a(cc), b(cc);
      r.identical = a.run(pkt.waveform) == (b.runInto(pkt.waveform, rx, scratch), rx);
    }
    stages.push_back(r);
  }

  // --- Full trial (TX + channel, the producer's unit of work) -------------
  {
    StageRow r{"trial"};
    dsp::TrialScratch scratch;
    std::vector<u8> bits;
    std::array<std::vector<cint16>, dsp::kNumRx> rx;
    for (const dsp::FrontendKind kind :
         {dsp::FrontendKind::kScalar, dsp::FrontendKind::kVectorized}) {
      dsp::FrontendConfig fe;
      fe.kind = kind;
      const auto t0 = std::chrono::steady_clock::now();
      for (int t = 0; t < stageTrials; ++t) {
        Rng txRng(500 + static_cast<u64>(t));
        dsp::ChannelConfig cc = chBase;
        cc.seed = 9000 + static_cast<u64>(t);
        dsp::generateTrial(modem, cc, txRng, bits, rx, scratch, fe);
      }
      const double us = msSince(t0) * 1000.0 / stageTrials;
      (kind == dsp::FrontendKind::kScalar ? r.scalarUs : r.vectorUs) = us;
    }
    {
      std::vector<u8> bitsB;
      std::array<std::vector<cint16>, dsp::kNumRx> rxB;
      Rng ra(31), rb(31);
      dsp::ChannelConfig cc = chBase;
      cc.seed = 13;
      dsp::FrontendConfig feS, feV;
      feS.kind = dsp::FrontendKind::kScalar;
      dsp::generateTrial(modem, cc, ra, bits, rx, scratch, feS);
      dsp::generateTrial(modem, cc, rb, bitsB, rxB, scratch, feV);
      r.identical = bits == bitsB && rx == rxB;
    }
    stages.push_back(r);
  }

  bool allIdentical = true;
  for (StageRow& r : stages) {
    r.speedup = r.vectorUs > 0 ? r.scalarUs / r.vectorUs : 0;
    allIdentical = allIdentical && r.identical;
    printf("stage %-8s scalar %8.2f us/trial   vectorized %8.2f us/trial   "
           "%.2fx  %s\n",
           r.stage, r.scalarUs, r.vectorUs, r.speedup,
           r.identical ? "bit-identical" : "MISMATCH");
  }

  // --- End-to-end: the campaign engine on the waterfall cell --------------
  // Pay the one-time program build AND the exec-tier plan build before any
  // timed row: a short untimed campaign warms every shared cache.
  (void)platform::modemProgramFor(modem);
  {
    campaign::CampaignConfig cfg;
    cfg.sweep = waterfallCell(snrDb, 8, 8);
    campaign::CampaignRunner(cfg).run();
  }
  // Row 0 reproduces the pre-PR-8 baseline inside this binary: the scalar
  // per-trial frontend and the cold full program load per decode.  The
  // last row is the shipped configuration.  All rows decode identical
  // trials (same counter-derived seeds), so trials/s is the only delta.
  struct E2eCfg {
    const char* label;
    dsp::FrontendKind kind;
    bool coldReload;
    int producers;
  };
  const E2eCfg cfgs[] = {
      {"before (scalar + cold reload)", dsp::FrontendKind::kScalar, true, 1},
      {"scalar + warm reload", dsp::FrontendKind::kScalar, false, 1},
      {"after (vectorized + warm reload)", dsp::FrontendKind::kVectorized,
       false, producers},
  };
  std::vector<E2eRow> e2e;
  for (const E2eCfg& ec : cfgs) {
    campaign::CampaignConfig cfg;
    cfg.sweep = waterfallCell(snrDb, static_cast<u64>(e2eTrials), 16);
    cfg.workers = workers;
    cfg.producers = ec.producers;
    cfg.frontend.kind = ec.kind;
    cfg.run.coldReload = ec.coldReload;
    campaign::CampaignRunner runner(cfg);
    const auto t0 = std::chrono::steady_clock::now();
    const campaign::CampaignResult res = runner.run();
    E2eRow r;
    r.label = ec.label;
    r.frontend = dsp::frontendKindName(ec.kind);
    r.coldReload = ec.coldReload;
    r.producers = ec.producers;
    r.wallMs = msSince(t0);
    r.trialsPerSec = static_cast<double>(res.trialsRun) / (r.wallMs / 1000.0);
    e2e.push_back(r);
    printf("e2e %-34s producers %d: %8.1f ms  %7.1f trials/s\n", r.label,
           r.producers, r.wallMs, r.trialsPerSec);
  }
  const double e2eSpeedup = e2e.front().trialsPerSec > 0
                                ? e2e.back().trialsPerSec /
                                      e2e.front().trialsPerSec
                                : 0;
  printf("e2e after/before: %.2fx (target >= 1.5x)\n", e2eSpeedup);

  if (jsonPath != "-") {
    std::ofstream os(jsonPath);
    os << "{\n  \"schema\": \"adres.bench_trialgen.v1\",\n"
       << "  \"cell\": \"qam64 s4 t3 cfo10 snr" << snrDb << "\",\n"
       << "  \"stage_trials\": " << stageTrials << ",\n"
       << "  \"e2e_trials\": " << e2eTrials << ",\n"
       << "  \"workers\": " << workers << ",\n  \"stages\": [";
    for (std::size_t i = 0; i < stages.size(); ++i) {
      const StageRow& r = stages[i];
      os << (i ? ",\n" : "\n") << "    {\"stage\": \"" << r.stage
         << "\", \"scalar_us_per_trial\": " << r.scalarUs
         << ", \"vectorized_us_per_trial\": " << r.vectorUs
         << ", \"speedup\": " << r.speedup
         << ", \"bit_identical\": " << (r.identical ? "true" : "false") << "}";
    }
    os << "\n  ],\n  \"e2e\": [";
    for (std::size_t i = 0; i < e2e.size(); ++i) {
      const E2eRow& r = e2e[i];
      os << (i ? ",\n" : "\n") << "    {\"label\": \"" << r.label
         << "\", \"frontend\": \"" << r.frontend
         << "\", \"cold_reload\": " << (r.coldReload ? "true" : "false")
         << ", \"producers\": " << r.producers
         << ", \"wall_ms\": " << r.wallMs
         << ", \"trials_per_sec\": " << r.trialsPerSec << "}";
    }
    os << "\n  ],\n  \"e2e_speedup\": " << e2eSpeedup << "\n}\n";
    printf("wrote %s\n", jsonPath.c_str());
  }

  return allIdentical ? 0 : 1;
}
