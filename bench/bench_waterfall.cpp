// PER-vs-SNR waterfall for the mapped QAM-16/QAM-64 modem, regenerating
// the committed EXPERIMENTS.md "Waterfall" table via the campaign engine
// (src/campaign).
//
//   $ ./bench_waterfall [--workers N] [--md PATH] [--json PATH] \
//         [--fading] [--max-trials N] [--live-metrics PORT]
//
// The primary grid is the flat (identity-gain) channel — AWGN + 10 ppm CFO
// — where the waterfall is sharp and a zero-error operating point exists;
// --fading adds a 3-tap sweep documenting the fade-induced PER floor of
// the uncoded modem.  The bench checks that each modulation's PER is
// monotone non-increasing in SNR (within the Wilson CI: a cell may not
// exceed the previous cell's upper bound) and reports the minimum SNR at
// which the 144 Mbps QAM-64 configuration decoded every trial error-free —
// the paper's "100 Mbps+" operating point.  Exit code 1 on a monotonicity
// violation.
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_args.hpp"
#include "campaign/runner.hpp"
#include "obs/metrics_server.hpp"

using namespace adres;

namespace {

struct ModRows {
  dsp::Modulation mod;
  std::vector<std::size_t> cellIdx;  ///< into result arrays, ascending SNR
};

std::string fmtG(double v, int prec = 4) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  int workers = 1;
  int maxTrials = 256;
  int seed = 1;
  bool fading = false;
  std::string mdPath;
  std::string jsonPath = "BENCH_waterfall.json";
  int metricsPort = -1;

  bench::Args args("bench_waterfall",
                   "QAM-16/64 PER-vs-SNR waterfall (campaign engine)");
  args.flag("workers", "N", "farm worker threads", &workers);
  args.flag("max-trials", "N", "trial ceiling per cell", &maxTrials);
  args.flag("seed", "N", "campaign master seed", &seed);
  args.flag("fading", "add the 3-tap multipath sweep (PER floor)", &fading);
  args.flag("md", "PATH", "write the markdown table to PATH", &mdPath);
  args.flag("json", "PATH", "BENCH_waterfall.json path ('-' = skip)",
            &jsonPath);
  args.flag("live-metrics", "PORT",
            "serve campaign progress on PORT (0=ephemeral)", &metricsPort);
  if (!args.parse(argc, argv)) return args.parseError() ? 1 : 0;

  campaign::CampaignConfig cfg;
  cfg.sweep.seed = static_cast<u64>(seed);
  cfg.sweep.mods = {dsp::Modulation::kQam16, dsp::Modulation::kQam64};
  cfg.sweep.numSymbols = {4};
  cfg.sweep.taps = {1};
  cfg.sweep.cfoPpm = {10.0};
  cfg.sweep.snrDb = {14, 16, 18, 20, 22, 24, 26, 28, 30, 32, 34};
  cfg.sweep.flat = true;
  cfg.sweep.batchSize = 16;
  cfg.sweep.stop.minTrials = 16;
  cfg.sweep.stop.maxTrials = static_cast<u64>(maxTrials);
  cfg.sweep.stop.errorBudget = 30;
  cfg.sweep.stop.ciHalfWidth = 0.06;
  cfg.workers = workers;
  cfg.log = [](const std::string& line) {
    std::printf("# %s\n", line.c_str());
    std::fflush(stdout);
  };

  campaign::CampaignRunner runner(cfg);
  obs::MetricsRegistry metrics;
  std::unique_ptr<obs::MetricsServer> server;
  if (metricsPort >= 0) {
    runner.registerMetrics(metrics);
    server = std::make_unique<obs::MetricsServer>(metrics, metricsPort);
    std::printf("# live metrics on http://localhost:%d/metrics\n",
                server->port());
  }
  const auto t0 = std::chrono::steady_clock::now();
  const campaign::CampaignResult flat = runner.run();
  const double flatMs = bench::msSince(t0);

  // Optional fading sweep (separate runner: different spec).
  campaign::CampaignResult faded;
  if (fading) {
    campaign::CampaignConfig fc = cfg;
    fc.sweep.flat = false;
    fc.sweep.taps = {3};
    fc.sweep.snrDb = {22, 26, 30, 34, 38};
    fc.sweep.stop.maxTrials = std::min<u64>(96, fc.sweep.stop.maxTrials);
    campaign::CampaignRunner fr(fc);
    faded = fr.run();
  }

  // Group flat cells by modulation, ascending SNR (expansion order).
  std::vector<ModRows> groups;
  for (dsp::Modulation m : cfg.sweep.mods) {
    ModRows g;
    g.mod = m;
    for (std::size_t i = 0; i < flat.cells.size(); ++i)
      if (flat.cells[i].modem.mod == m) g.cellIdx.push_back(i);
    groups.push_back(g);
  }

  // Monotonicity: PER may not exceed the previous (lower-SNR) cell's
  // Wilson upper bound.
  bool monotone = true;
  for (const ModRows& g : groups) {
    for (std::size_t k = 1; k < g.cellIdx.size(); ++k) {
      const campaign::CellResult& prev = flat.results[g.cellIdx[k - 1]];
      const campaign::CellResult& cur = flat.results[g.cellIdx[k]];
      const campaign::Interval prevCi = campaign::wilson(
          prev.packetErrors, prev.trials, cfg.sweep.stop.confidence);
      if (cur.per() > prevCi.hi) {
        monotone = false;
        std::printf("# MONOTONICITY VIOLATION: %s per=%g > prev upper %g\n",
                    campaign::cellLabel(flat.cells[g.cellIdx[k]]).c_str(),
                    cur.per(), prevCi.hi);
      }
    }
  }

  // Minimum SNR with zero packet errors at 100 Mbps+ (QAM-64, 144 Mbps raw):
  // smallest grid SNR from which every cell upward decoded error-free.
  double minSnr100 = -1.0;
  for (const ModRows& g : groups) {
    if (dsp::rawRateMbps({g.mod, cfg.sweep.numSymbols[0]}) < 100.0) continue;
    for (std::size_t k = g.cellIdx.size(); k-- > 0;) {
      const campaign::CellResult& r = flat.results[g.cellIdx[k]];
      if (r.packetErrors != 0) break;
      minSnr100 = flat.cells[g.cellIdx[k]].channel.snrDb;
    }
  }

  // Markdown table (stdout + optional file): the committed experiment.
  std::ostringstream md;
  md << "| modulation | SNR (dB) | trials | PER | PER 95% CI | BER | "
        "cycles/packet | energy (nJ/bit) | goodput (Mbps) |\n";
  md << "|---|---|---|---|---|---|---|---|---|\n";
  auto emitRows = [&md, &cfg](const campaign::CampaignResult& res,
                              dsp::Modulation mod) {
    for (std::size_t i = 0; i < res.cells.size(); ++i) {
      const campaign::CellSpec& c = res.cells[i];
      if (c.modem.mod != mod) continue;
      const campaign::CellResult& r = res.results[i];
      if (!r.done) continue;
      const campaign::Interval ci = campaign::wilson(
          r.packetErrors, r.trials, cfg.sweep.stop.confidence);
      const char* name = mod == dsp::Modulation::kQam16 ? "QAM-16" : "QAM-64";
      md << "| " << name << (c.channel.flat ? "" : " (3-tap)") << " | "
         << fmtG(c.channel.snrDb) << " | " << r.trials << " | "
         << fmtG(r.per()) << " | [" << fmtG(ci.lo) << ", " << fmtG(ci.hi)
         << "] | " << fmtG(r.ber(), 3) << " | "
         << fmtG(r.avgCyclesPerPacket(), 6) << " | "
         << fmtG(r.energyPerBitNj(), 3) << " | "
         << fmtG(dsp::rawRateMbps(c.modem) * (1.0 - r.per()), 4) << " |\n";
    }
  };
  for (const ModRows& g : groups) emitRows(flat, g.mod);
  if (fading) {
    for (dsp::Modulation m :
         {dsp::Modulation::kQam16, dsp::Modulation::kQam64})
      emitRows(faded, m);
  }
  std::printf("\n%s\n", md.str().c_str());
  if (minSnr100 >= 0) {
    std::printf("minimum SNR for zero-error 100 Mbps+ operation (QAM-64, "
                "144 Mbps raw): %.4g dB\n", minSnr100);
  } else {
    std::printf("no zero-error 100 Mbps+ operating point on this grid\n");
  }
  std::printf("monotone waterfall: %s   (%llu trials, %.0f ms)\n",
              monotone ? "yes" : "NO",
              static_cast<unsigned long long>(flat.trialsRun), flatMs);

  if (!mdPath.empty()) {
    std::ofstream os(mdPath);
    os << md.str();
    std::printf("wrote %s\n", mdPath.c_str());
  }
  if (jsonPath != "-") {
    std::ofstream os(jsonPath);
    os << "{\n  \"schema\": \"adres.bench_waterfall.v1\",\n"
       << "  \"monotone\": " << (monotone ? "true" : "false") << ",\n"
       << "  \"min_snr_zero_error_100mbps_db\": " << minSnr100 << ",\n"
       << "  \"trials\": " << flat.trialsRun << ",\n"
       << "  \"wall_ms\": " << flatMs << ",\n  \"cells\": [";
    bool first = true;
    auto emitJson = [&os, &first, &cfg](const campaign::CampaignResult& res) {
      for (std::size_t i = 0; i < res.cells.size(); ++i) {
        const campaign::CellResult& r = res.results[i];
        if (!r.done) continue;
        const campaign::Interval ci = campaign::wilson(
            r.packetErrors, r.trials, cfg.sweep.stop.confidence);
        os << (first ? "\n" : ",\n") << "    {\"cell\": \""
           << campaign::cellLabel(res.cells[i]) << "\", \"trials\": "
           << r.trials << ", \"per\": " << r.per() << ", \"per_ci_lo\": "
           << ci.lo << ", \"per_ci_hi\": " << ci.hi << ", \"ber\": " << r.ber()
           << ", \"energy_nj_per_bit\": " << r.energyPerBitNj() << "}";
        first = false;
      }
    };
    emitJson(flat);
    if (fading) emitJson(faded);
    os << "\n  ]\n}\n";
    std::printf("wrote %s\n", jsonPath.c_str());
  }
  if (server) server->stop();
  metrics.clear();
  return monotone ? 0 : 1;
}
