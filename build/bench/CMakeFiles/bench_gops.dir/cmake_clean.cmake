file(REMOVE_RECURSE
  "CMakeFiles/bench_gops.dir/bench_gops.cpp.o"
  "CMakeFiles/bench_gops.dir/bench_gops.cpp.o.d"
  "bench_gops"
  "bench_gops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
