file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_isa.dir/bench_table1_isa.cpp.o"
  "CMakeFiles/bench_table1_isa.dir/bench_table1_isa.cpp.o.d"
  "bench_table1_isa"
  "bench_table1_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
