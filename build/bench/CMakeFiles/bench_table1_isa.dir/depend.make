# Empty dependencies file for bench_table1_isa.
# This may be replaced when dependencies are built.
