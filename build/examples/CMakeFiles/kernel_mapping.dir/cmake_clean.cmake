file(REMOVE_RECURSE
  "CMakeFiles/kernel_mapping.dir/kernel_mapping.cpp.o"
  "CMakeFiles/kernel_mapping.dir/kernel_mapping.cpp.o.d"
  "kernel_mapping"
  "kernel_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
