# Empty compiler generated dependencies file for kernel_mapping.
# This may be replaced when dependencies are built.
