file(REMOVE_RECURSE
  "CMakeFiles/mimo_ofdm_rx.dir/mimo_ofdm_rx.cpp.o"
  "CMakeFiles/mimo_ofdm_rx.dir/mimo_ofdm_rx.cpp.o.d"
  "mimo_ofdm_rx"
  "mimo_ofdm_rx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimo_ofdm_rx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
