# Empty dependencies file for mimo_ofdm_rx.
# This may be replaced when dependencies are built.
