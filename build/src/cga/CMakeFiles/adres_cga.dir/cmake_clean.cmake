file(REMOVE_RECURSE
  "CMakeFiles/adres_cga.dir/array.cpp.o"
  "CMakeFiles/adres_cga.dir/array.cpp.o.d"
  "CMakeFiles/adres_cga.dir/context.cpp.o"
  "CMakeFiles/adres_cga.dir/context.cpp.o.d"
  "libadres_cga.a"
  "libadres_cga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adres_cga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
