file(REMOVE_RECURSE
  "libadres_cga.a"
)
