# Empty compiler generated dependencies file for adres_cga.
# This may be replaced when dependencies are built.
