file(REMOVE_RECURSE
  "CMakeFiles/adres_core.dir/processor.cpp.o"
  "CMakeFiles/adres_core.dir/processor.cpp.o.d"
  "CMakeFiles/adres_core.dir/program.cpp.o"
  "CMakeFiles/adres_core.dir/program.cpp.o.d"
  "libadres_core.a"
  "libadres_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adres_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
