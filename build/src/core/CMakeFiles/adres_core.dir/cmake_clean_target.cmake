file(REMOVE_RECURSE
  "libadres_core.a"
)
