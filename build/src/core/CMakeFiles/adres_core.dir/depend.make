# Empty dependencies file for adres_core.
# This may be replaced when dependencies are built.
