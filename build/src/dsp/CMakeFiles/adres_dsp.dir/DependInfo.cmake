
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/channel.cpp" "src/dsp/CMakeFiles/adres_dsp.dir/channel.cpp.o" "gcc" "src/dsp/CMakeFiles/adres_dsp.dir/channel.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/adres_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/adres_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/mimo.cpp" "src/dsp/CMakeFiles/adres_dsp.dir/mimo.cpp.o" "gcc" "src/dsp/CMakeFiles/adres_dsp.dir/mimo.cpp.o.d"
  "/root/repo/src/dsp/modem.cpp" "src/dsp/CMakeFiles/adres_dsp.dir/modem.cpp.o" "gcc" "src/dsp/CMakeFiles/adres_dsp.dir/modem.cpp.o.d"
  "/root/repo/src/dsp/ofdm.cpp" "src/dsp/CMakeFiles/adres_dsp.dir/ofdm.cpp.o" "gcc" "src/dsp/CMakeFiles/adres_dsp.dir/ofdm.cpp.o.d"
  "/root/repo/src/dsp/preamble.cpp" "src/dsp/CMakeFiles/adres_dsp.dir/preamble.cpp.o" "gcc" "src/dsp/CMakeFiles/adres_dsp.dir/preamble.cpp.o.d"
  "/root/repo/src/dsp/qam.cpp" "src/dsp/CMakeFiles/adres_dsp.dir/qam.cpp.o" "gcc" "src/dsp/CMakeFiles/adres_dsp.dir/qam.cpp.o.d"
  "/root/repo/src/dsp/sync.cpp" "src/dsp/CMakeFiles/adres_dsp.dir/sync.cpp.o" "gcc" "src/dsp/CMakeFiles/adres_dsp.dir/sync.cpp.o.d"
  "/root/repo/src/dsp/trig.cpp" "src/dsp/CMakeFiles/adres_dsp.dir/trig.cpp.o" "gcc" "src/dsp/CMakeFiles/adres_dsp.dir/trig.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/adres_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
