file(REMOVE_RECURSE
  "CMakeFiles/adres_dsp.dir/channel.cpp.o"
  "CMakeFiles/adres_dsp.dir/channel.cpp.o.d"
  "CMakeFiles/adres_dsp.dir/fft.cpp.o"
  "CMakeFiles/adres_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/adres_dsp.dir/mimo.cpp.o"
  "CMakeFiles/adres_dsp.dir/mimo.cpp.o.d"
  "CMakeFiles/adres_dsp.dir/modem.cpp.o"
  "CMakeFiles/adres_dsp.dir/modem.cpp.o.d"
  "CMakeFiles/adres_dsp.dir/ofdm.cpp.o"
  "CMakeFiles/adres_dsp.dir/ofdm.cpp.o.d"
  "CMakeFiles/adres_dsp.dir/preamble.cpp.o"
  "CMakeFiles/adres_dsp.dir/preamble.cpp.o.d"
  "CMakeFiles/adres_dsp.dir/qam.cpp.o"
  "CMakeFiles/adres_dsp.dir/qam.cpp.o.d"
  "CMakeFiles/adres_dsp.dir/sync.cpp.o"
  "CMakeFiles/adres_dsp.dir/sync.cpp.o.d"
  "CMakeFiles/adres_dsp.dir/trig.cpp.o"
  "CMakeFiles/adres_dsp.dir/trig.cpp.o.d"
  "libadres_dsp.a"
  "libadres_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adres_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
