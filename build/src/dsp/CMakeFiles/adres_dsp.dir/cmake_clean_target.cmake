file(REMOVE_RECURSE
  "libadres_dsp.a"
)
