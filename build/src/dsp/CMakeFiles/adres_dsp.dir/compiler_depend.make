# Empty compiler generated dependencies file for adres_dsp.
# This may be replaced when dependencies are built.
