
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/encoding.cpp" "src/isa/CMakeFiles/adres_isa.dir/encoding.cpp.o" "gcc" "src/isa/CMakeFiles/adres_isa.dir/encoding.cpp.o.d"
  "/root/repo/src/isa/instruction.cpp" "src/isa/CMakeFiles/adres_isa.dir/instruction.cpp.o" "gcc" "src/isa/CMakeFiles/adres_isa.dir/instruction.cpp.o.d"
  "/root/repo/src/isa/opcodes.cpp" "src/isa/CMakeFiles/adres_isa.dir/opcodes.cpp.o" "gcc" "src/isa/CMakeFiles/adres_isa.dir/opcodes.cpp.o.d"
  "/root/repo/src/isa/semantics.cpp" "src/isa/CMakeFiles/adres_isa.dir/semantics.cpp.o" "gcc" "src/isa/CMakeFiles/adres_isa.dir/semantics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
