file(REMOVE_RECURSE
  "CMakeFiles/adres_isa.dir/encoding.cpp.o"
  "CMakeFiles/adres_isa.dir/encoding.cpp.o.d"
  "CMakeFiles/adres_isa.dir/instruction.cpp.o"
  "CMakeFiles/adres_isa.dir/instruction.cpp.o.d"
  "CMakeFiles/adres_isa.dir/opcodes.cpp.o"
  "CMakeFiles/adres_isa.dir/opcodes.cpp.o.d"
  "CMakeFiles/adres_isa.dir/semantics.cpp.o"
  "CMakeFiles/adres_isa.dir/semantics.cpp.o.d"
  "libadres_isa.a"
  "libadres_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adres_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
