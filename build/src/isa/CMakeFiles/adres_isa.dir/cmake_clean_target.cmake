file(REMOVE_RECURSE
  "libadres_isa.a"
)
