# Empty compiler generated dependencies file for adres_isa.
# This may be replaced when dependencies are built.
