file(REMOVE_RECURSE
  "CMakeFiles/adres_power.dir/area_model.cpp.o"
  "CMakeFiles/adres_power.dir/area_model.cpp.o.d"
  "CMakeFiles/adres_power.dir/energy_model.cpp.o"
  "CMakeFiles/adres_power.dir/energy_model.cpp.o.d"
  "libadres_power.a"
  "libadres_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adres_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
