file(REMOVE_RECURSE
  "libadres_power.a"
)
