# Empty compiler generated dependencies file for adres_power.
# This may be replaced when dependencies are built.
