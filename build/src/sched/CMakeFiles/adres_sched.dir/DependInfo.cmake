
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/dfg.cpp" "src/sched/CMakeFiles/adres_sched.dir/dfg.cpp.o" "gcc" "src/sched/CMakeFiles/adres_sched.dir/dfg.cpp.o.d"
  "/root/repo/src/sched/listsched.cpp" "src/sched/CMakeFiles/adres_sched.dir/listsched.cpp.o" "gcc" "src/sched/CMakeFiles/adres_sched.dir/listsched.cpp.o.d"
  "/root/repo/src/sched/modulo.cpp" "src/sched/CMakeFiles/adres_sched.dir/modulo.cpp.o" "gcc" "src/sched/CMakeFiles/adres_sched.dir/modulo.cpp.o.d"
  "/root/repo/src/sched/progbuilder.cpp" "src/sched/CMakeFiles/adres_sched.dir/progbuilder.cpp.o" "gcc" "src/sched/CMakeFiles/adres_sched.dir/progbuilder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/adres_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cga/CMakeFiles/adres_cga.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/adres_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
