file(REMOVE_RECURSE
  "CMakeFiles/adres_sched.dir/dfg.cpp.o"
  "CMakeFiles/adres_sched.dir/dfg.cpp.o.d"
  "CMakeFiles/adres_sched.dir/listsched.cpp.o"
  "CMakeFiles/adres_sched.dir/listsched.cpp.o.d"
  "CMakeFiles/adres_sched.dir/modulo.cpp.o"
  "CMakeFiles/adres_sched.dir/modulo.cpp.o.d"
  "CMakeFiles/adres_sched.dir/progbuilder.cpp.o"
  "CMakeFiles/adres_sched.dir/progbuilder.cpp.o.d"
  "libadres_sched.a"
  "libadres_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adres_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
