file(REMOVE_RECURSE
  "libadres_sched.a"
)
