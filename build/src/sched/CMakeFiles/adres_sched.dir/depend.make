# Empty dependencies file for adres_sched.
# This may be replaced when dependencies are built.
