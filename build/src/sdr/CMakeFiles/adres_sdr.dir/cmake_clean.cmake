file(REMOVE_RECURSE
  "CMakeFiles/adres_sdr.dir/glue.cpp.o"
  "CMakeFiles/adres_sdr.dir/glue.cpp.o.d"
  "CMakeFiles/adres_sdr.dir/kernels.cpp.o"
  "CMakeFiles/adres_sdr.dir/kernels.cpp.o.d"
  "CMakeFiles/adres_sdr.dir/modem_program.cpp.o"
  "CMakeFiles/adres_sdr.dir/modem_program.cpp.o.d"
  "CMakeFiles/adres_sdr.dir/tables.cpp.o"
  "CMakeFiles/adres_sdr.dir/tables.cpp.o.d"
  "libadres_sdr.a"
  "libadres_sdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adres_sdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
