file(REMOVE_RECURSE
  "libadres_sdr.a"
)
