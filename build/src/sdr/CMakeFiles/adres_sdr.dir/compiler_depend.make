# Empty compiler generated dependencies file for adres_sdr.
# This may be replaced when dependencies are built.
