file(REMOVE_RECURSE
  "CMakeFiles/dma_ahb_test.dir/mem/dma_ahb_test.cpp.o"
  "CMakeFiles/dma_ahb_test.dir/mem/dma_ahb_test.cpp.o.d"
  "dma_ahb_test"
  "dma_ahb_test.pdb"
  "dma_ahb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dma_ahb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
