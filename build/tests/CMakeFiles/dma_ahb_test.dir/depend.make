# Empty dependencies file for dma_ahb_test.
# This may be replaced when dependencies are built.
