file(REMOVE_RECURSE
  "CMakeFiles/listsched_test.dir/sched/listsched_test.cpp.o"
  "CMakeFiles/listsched_test.dir/sched/listsched_test.cpp.o.d"
  "listsched_test"
  "listsched_test.pdb"
  "listsched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/listsched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
