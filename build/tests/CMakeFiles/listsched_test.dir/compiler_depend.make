# Empty compiler generated dependencies file for listsched_test.
# This may be replaced when dependencies are built.
