file(REMOVE_RECURSE
  "CMakeFiles/mimo_modem_test.dir/dsp/mimo_modem_test.cpp.o"
  "CMakeFiles/mimo_modem_test.dir/dsp/mimo_modem_test.cpp.o.d"
  "mimo_modem_test"
  "mimo_modem_test.pdb"
  "mimo_modem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimo_modem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
