# Empty compiler generated dependencies file for mimo_modem_test.
# This may be replaced when dependencies are built.
