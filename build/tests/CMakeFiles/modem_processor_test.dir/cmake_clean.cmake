file(REMOVE_RECURSE
  "CMakeFiles/modem_processor_test.dir/sdr/modem_processor_test.cpp.o"
  "CMakeFiles/modem_processor_test.dir/sdr/modem_processor_test.cpp.o.d"
  "modem_processor_test"
  "modem_processor_test.pdb"
  "modem_processor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modem_processor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
