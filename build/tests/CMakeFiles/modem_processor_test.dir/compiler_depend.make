# Empty compiler generated dependencies file for modem_processor_test.
# This may be replaced when dependencies are built.
