file(REMOVE_RECURSE
  "CMakeFiles/modulo_test.dir/sched/modulo_test.cpp.o"
  "CMakeFiles/modulo_test.dir/sched/modulo_test.cpp.o.d"
  "modulo_test"
  "modulo_test.pdb"
  "modulo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modulo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
