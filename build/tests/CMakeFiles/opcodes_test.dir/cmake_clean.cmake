file(REMOVE_RECURSE
  "CMakeFiles/opcodes_test.dir/isa/opcodes_test.cpp.o"
  "CMakeFiles/opcodes_test.dir/isa/opcodes_test.cpp.o.d"
  "opcodes_test"
  "opcodes_test.pdb"
  "opcodes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opcodes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
