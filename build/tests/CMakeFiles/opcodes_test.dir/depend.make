# Empty dependencies file for opcodes_test.
# This may be replaced when dependencies are built.
