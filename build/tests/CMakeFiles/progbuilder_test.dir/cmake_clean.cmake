file(REMOVE_RECURSE
  "CMakeFiles/progbuilder_test.dir/sched/progbuilder_test.cpp.o"
  "CMakeFiles/progbuilder_test.dir/sched/progbuilder_test.cpp.o.d"
  "progbuilder_test"
  "progbuilder_test.pdb"
  "progbuilder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/progbuilder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
