# Empty dependencies file for progbuilder_test.
# This may be replaced when dependencies are built.
