file(REMOVE_RECURSE
  "CMakeFiles/qam_ofdm_test.dir/dsp/qam_ofdm_test.cpp.o"
  "CMakeFiles/qam_ofdm_test.dir/dsp/qam_ofdm_test.cpp.o.d"
  "qam_ofdm_test"
  "qam_ofdm_test.pdb"
  "qam_ofdm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qam_ofdm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
