# Empty dependencies file for qam_ofdm_test.
# This may be replaced when dependencies are built.
