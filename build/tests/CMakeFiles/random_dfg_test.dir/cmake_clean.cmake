file(REMOVE_RECURSE
  "CMakeFiles/random_dfg_test.dir/sched/random_dfg_test.cpp.o"
  "CMakeFiles/random_dfg_test.dir/sched/random_dfg_test.cpp.o.d"
  "random_dfg_test"
  "random_dfg_test.pdb"
  "random_dfg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_dfg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
