# Empty compiler generated dependencies file for random_dfg_test.
# This may be replaced when dependencies are built.
