# Empty dependencies file for regfile_test.
# This may be replaced when dependencies are built.
