
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sdr/fft_kernel_test.cpp" "tests/CMakeFiles/sdr_fft_kernel_test.dir/sdr/fft_kernel_test.cpp.o" "gcc" "tests/CMakeFiles/sdr_fft_kernel_test.dir/sdr/fft_kernel_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/adres_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cga/CMakeFiles/adres_cga.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/adres_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/adres_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/adres_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/sdr/CMakeFiles/adres_sdr.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/adres_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
