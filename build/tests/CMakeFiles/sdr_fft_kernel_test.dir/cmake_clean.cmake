file(REMOVE_RECURSE
  "CMakeFiles/sdr_fft_kernel_test.dir/sdr/fft_kernel_test.cpp.o"
  "CMakeFiles/sdr_fft_kernel_test.dir/sdr/fft_kernel_test.cpp.o.d"
  "sdr_fft_kernel_test"
  "sdr_fft_kernel_test.pdb"
  "sdr_fft_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdr_fft_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
