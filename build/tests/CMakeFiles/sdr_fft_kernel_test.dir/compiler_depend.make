# Empty compiler generated dependencies file for sdr_fft_kernel_test.
# This may be replaced when dependencies are built.
