file(REMOVE_RECURSE
  "CMakeFiles/sdr_glue_test.dir/sdr/glue_test.cpp.o"
  "CMakeFiles/sdr_glue_test.dir/sdr/glue_test.cpp.o.d"
  "sdr_glue_test"
  "sdr_glue_test.pdb"
  "sdr_glue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdr_glue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
