# Empty dependencies file for sdr_glue_test.
# This may be replaced when dependencies are built.
