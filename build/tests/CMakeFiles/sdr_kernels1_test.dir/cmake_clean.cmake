file(REMOVE_RECURSE
  "CMakeFiles/sdr_kernels1_test.dir/sdr/kernels1_test.cpp.o"
  "CMakeFiles/sdr_kernels1_test.dir/sdr/kernels1_test.cpp.o.d"
  "sdr_kernels1_test"
  "sdr_kernels1_test.pdb"
  "sdr_kernels1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdr_kernels1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
