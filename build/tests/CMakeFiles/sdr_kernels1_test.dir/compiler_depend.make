# Empty compiler generated dependencies file for sdr_kernels1_test.
# This may be replaced when dependencies are built.
