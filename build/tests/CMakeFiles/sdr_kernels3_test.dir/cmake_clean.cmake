file(REMOVE_RECURSE
  "CMakeFiles/sdr_kernels3_test.dir/sdr/kernels3_test.cpp.o"
  "CMakeFiles/sdr_kernels3_test.dir/sdr/kernels3_test.cpp.o.d"
  "sdr_kernels3_test"
  "sdr_kernels3_test.pdb"
  "sdr_kernels3_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdr_kernels3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
