file(REMOVE_RECURSE
  "CMakeFiles/trig_fft_test.dir/dsp/trig_fft_test.cpp.o"
  "CMakeFiles/trig_fft_test.dir/dsp/trig_fft_test.cpp.o.d"
  "trig_fft_test"
  "trig_fft_test.pdb"
  "trig_fft_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trig_fft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
