# Empty compiler generated dependencies file for trig_fft_test.
# This may be replaced when dependencies are built.
