# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for trig_fft_test.
