file(REMOVE_RECURSE
  "CMakeFiles/vliw_test.dir/core/vliw_test.cpp.o"
  "CMakeFiles/vliw_test.dir/core/vliw_test.cpp.o.d"
  "vliw_test"
  "vliw_test.pdb"
  "vliw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vliw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
