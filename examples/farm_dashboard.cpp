// farm_dashboard: a terminal dashboard for a live packet farm.
//
// Scrapes the Prometheus text endpoint a running `bench_farm --live-metrics`
// (or any MetricsServer) exposes and redraws an ANSI view of it: queue
// depth, per-worker state / throughput / utilization / IPC, decode-latency
// quantiles and watchdog health counters.  Everything shown comes off the
// wire — the dashboard is also an end-to-end exerciser of the scrape path.
//
//   $ ./farm_dashboard --port 9464            # attach to a live bench_farm
//   $ ./farm_dashboard --demo                 # self-hosted: own farm+server
//   $ ./farm_dashboard --demo --frames 3      # finite frames (CI-friendly)
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_args.hpp"
#include "cell/scheduler.hpp"
#include "dsp/channel.hpp"
#include "obs/metrics_server.hpp"
#include "obs/slo.hpp"
#include "platform/packet_farm.hpp"

using namespace adres;

namespace {

/// One parsed sample line: metric name, label map, value.
struct Sample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0;
};

/// Minimal Prometheus text-exposition parser: enough for our own exporter's
/// output (`name{k="v",...} value`), comments skipped.
std::vector<Sample> parsePrometheus(const std::string& text) {
  std::vector<Sample> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    Sample s;
    std::size_t i = line.find_first_of("{ ");
    if (i == std::string::npos) continue;
    s.name = line.substr(0, i);
    if (line[i] == '{') {
      const std::size_t close = line.find('}', i);
      if (close == std::string::npos) continue;
      std::size_t p = i + 1;
      while (p < close) {
        const std::size_t eq = line.find('=', p);
        if (eq == std::string::npos || eq > close) break;
        const std::string key = line.substr(p, eq - p);
        std::size_t vStart = eq + 2;  // skip ="
        std::size_t vEnd = line.find('"', vStart);
        if (vEnd == std::string::npos) break;
        s.labels[key] = line.substr(vStart, vEnd - vStart);
        p = vEnd + 1;
        if (p < close && line[p] == ',') ++p;
      }
      i = close + 1;
    }
    s.value = std::atof(line.c_str() + i);
    out.push_back(std::move(s));
  }
  return out;
}

double value(const std::vector<Sample>& samples, const std::string& name,
             const std::string& labelKey = "", const std::string& labelVal = "") {
  for (const Sample& s : samples) {
    if (s.name != name) continue;
    if (!labelKey.empty()) {
      const auto it = s.labels.find(labelKey);
      if (it == s.labels.end() || it->second != labelVal) continue;
    }
    return s.value;
  }
  return 0;
}

std::string bar(double frac, int width) {
  if (frac < 0) frac = 0;
  if (frac > 1) frac = 1;
  const int fill = static_cast<int>(frac * width + 0.5);
  std::string out;
  for (int i = 0; i < width; ++i) out += i < fill ? '#' : '.';
  return out;
}

void drawFrame(const std::vector<Sample>& samples, int frame, bool ansi) {
  if (ansi) printf("\x1b[H\x1b[2J");
  const double workers = value(samples, "adres_farm_workers");
  const double depth = value(samples, "adres_farm_queue_depth");
  const double cap = value(samples, "adres_farm_queue_capacity");
  const double submitted = value(samples, "adres_farm_packets_submitted_total");
  const double done = value(samples, "adres_farm_packets_done_total");
  const double health = value(samples, "adres_farm_health_events_total");
  const double up = value(samples, "adres_farm_uptime_seconds");

  printf("ADRES packet-farm dashboard  (frame %d, uptime %.1f s)\n", frame, up);
  printf("packets  %5.0f done / %5.0f submitted    queue %2.0f/%2.0f [%s]    "
         "health events %.0f\n\n",
         done, submitted, depth, cap, bar(cap > 0 ? depth / cap : 0, 16).c_str(),
         health);
  printf("worker  state  packets   sim Mcycles   util                ipc   "
         "heartbeat\n");
  for (int w = 0; w < static_cast<int>(workers); ++w) {
    const std::string ws = std::to_string(w);
    const double st = value(samples, "adres_farm_worker_state", "worker", ws);
    const double pk =
        value(samples, "adres_farm_worker_packets_total", "worker", ws);
    const double cy =
        value(samples, "adres_farm_worker_sim_cycles_total", "worker", ws);
    const double ut =
        value(samples, "adres_farm_worker_utilization", "worker", ws);
    const double ipc = value(samples, "adres_farm_worker_ipc", "worker", ws);
    const double hb =
        value(samples, "adres_farm_worker_heartbeat_cycles", "worker", ws);
    const char* stName = st == 0 ? "idle" : st == 1 ? "BUSY" : "done";
    printf("  %3d   %-5s  %7.0f   %11.2f   [%s] %3.0f%%  %5.2f  %9.0f\n", w,
           stName, pk, cy / 1e6, bar(ut, 12).c_str(), 100 * ut, ipc, hb);
  }
  printf("\ndecode latency (host us):  p50 %.0f   p90 %.0f   p99 %.0f   "
         "p999 %.0f   (n=%0.f)\n",
         value(samples, "adres_farm_latency_host_us", "quantile", "0.5"),
         value(samples, "adres_farm_latency_host_us", "quantile", "0.9"),
         value(samples, "adres_farm_latency_host_us", "quantile", "0.99"),
         value(samples, "adres_farm_latency_host_us", "quantile", "0.999"),
         value(samples, "adres_farm_latency_host_us_count"));
  printf("packet cycles (sim):       p50 %.0f   p99 %.0f\n",
         value(samples, "adres_farm_packet_cycles", "quantile", "0.5"),
         value(samples, "adres_farm_packet_cycles", "quantile", "0.99"));
  printf("queue wait (host us):      p50 %.0f   p99 %.0f\n",
         value(samples, "adres_farm_queue_wait_us", "quantile", "0.5"),
         value(samples, "adres_farm_queue_wait_us", "quantile", "0.99"));

  // Self-auditing panel (DESIGN.md §16): readiness, sentinel audit counts
  // and per-SLO burn rates — all off the same scrape.
  const double ready = value(samples, "adres_farm_ready");
  const double audited = value(samples, "adres_farm_sentinel_sampled_total");
  const double diverged = value(samples, "adres_farm_divergences_total");
  const double bundles = value(samples, "adres_farm_postmortem_bundles_total");
  printf("\nself-audit:  %s   sentinel %.0f audited / %.0f diverged   "
         "postmortems %.0f\n",
         ready >= 1 ? "READY" : "warming", audited, diverged, bundles);
  bool anySlo = false;
  for (const Sample& s : samples) {
    if (s.name != "adres_slo_burn_rate") continue;
    const auto it = s.labels.find("slo");
    const std::string name = it != s.labels.end() ? it->second : "?";
    const double breaching =
        value(samples, "adres_slo_breaching", "slo", name);
    const double val = value(samples, "adres_slo_value", "slo", name);
    const double total = value(samples, "adres_slo_breaches_total", "slo", name);
    printf("  slo %-16s value %10.2f  burn [%s] %5.2f  breaches %.0f  %s\n",
           name.c_str(), val, bar(s.value, 12).c_str(), s.value, total,
           breaching >= 1 ? "BREACHING" : "ok");
    anySlo = true;
  }
  if (!anySlo)
    printf("  (no SLO engine attached — run bench_farm --slo '...')\n");

  // Per-flow QoS panel (cell simulation layer): shown whenever a
  // CellScheduler has registered its series on the scraped registry.
  const double cellFlows = value(samples, "adres_cell_flows");
  if (cellFlows > 0) {
    const double servers = value(samples, "adres_cell_servers");
    const double offered = value(samples, "adres_cell_packets_total");
    const double delivered = value(samples, "adres_cell_delivered_total");
    const double errors = value(samples, "adres_cell_errors_total");
    const double missed = value(samples, "adres_cell_deadline_miss_total");
    const double missRate = value(samples, "adres_cell_deadline_miss_rate");
    const double goodput = value(samples, "adres_cell_goodput_mbps");
    const double simT = value(samples, "adres_cell_sim_time_us");
    printf("\ncell: %.0f flows on %.0f sim processors (400 MHz)   "
           "sim t %.0f us\n",
           cellFlows, servers, simT);
    printf("  packets %5.0f offered  %5.0f delivered  %4.0f errors  "
           "%4.0f missed   miss [%s] %5.1f%%   goodput %.1f Mbps\n",
           offered, delivered, errors, missed, bar(missRate, 12).c_str(),
           100 * missRate, goodput);
    printf("  sim latency (us):  p50 %.0f   p90 %.0f   p99 %.0f\n",
           value(samples, "adres_cell_latency_us", "quantile", "0.5"),
           value(samples, "adres_cell_latency_us", "quantile", "0.9"),
           value(samples, "adres_cell_latency_us", "quantile", "0.99"));
    printf("  flow  class         snr dB   offered   missed  miss%%         "
           "goodput kbps\n");
    for (const Sample& s : samples) {
      if (s.name != "adres_cell_flow_offered") continue;
      const auto fit = s.labels.find("flow");
      const auto cit = s.labels.find("class");
      const std::string flow = fit != s.labels.end() ? fit->second : "?";
      const double fm = value(samples, "adres_cell_flow_missed", "flow", flow);
      const double fr =
          value(samples, "adres_cell_flow_miss_rate", "flow", flow);
      const double fg =
          value(samples, "adres_cell_flow_goodput_kbps", "flow", flow);
      const double fsnr = value(samples, "adres_cell_flow_snr_db", "flow", flow);
      printf("  %4s  %-12s  %5.1f   %7.0f  %7.0f  [%s] %3.0f%%  %10.1f\n",
             flow.c_str(),
             cit != s.labels.end() ? cit->second.c_str() : "?", fsnr, s.value,
             fm, bar(fr, 8).c_str(), 100 * fr, fg);
    }
  }

  // Slowest-packet breakdown: which packet hit the tail, where it waited,
  // and (when span recording is on) which modem regions its decode spent
  // simulated cycles in.
  const double slowLat = value(samples, "adres_farm_slowest_packet_latency_us");
  if (slowLat > 0) {
    printf("\nslowest packet: job %.0f on worker %.0f   latency %.0f us   "
           "queue wait %.0f us   %.0f sim cycles\n",
           value(samples, "adres_farm_slowest_packet_id"),
           value(samples, "adres_farm_slowest_packet_worker"), slowLat,
           value(samples, "adres_farm_slowest_packet_queue_wait_us"),
           value(samples, "adres_farm_slowest_packet_cycles"));
    double totalRegion = 0;
    for (const Sample& s : samples)
      if (s.name == "adres_farm_slowest_packet_region_cycles")
        totalRegion += s.value;
    for (const Sample& s : samples) {
      if (s.name != "adres_farm_slowest_packet_region_cycles") continue;
      const auto it = s.labels.find("region");
      const double frac = totalRegion > 0 ? s.value / totalRegion : 0;
      printf("  %-24s %10.0f cycles  [%s] %3.0f%%\n",
             it != s.labels.end() ? it->second.c_str() : "?", s.value,
             bar(frac, 12).c_str(), 100 * frac);
    }
  }
  fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 9464;
  int intervalMs = 500;
  int frames = 0;  // 0 = until the endpoint goes away
  bool demo = false;
  bool noAnsi = false;
  bench::Args args("farm_dashboard",
                   "terminal dashboard for a live packet farm");
  args.flag("host", "H", "metrics host to scrape", &host);
  args.flag("port", "P", "metrics port to scrape", &port);
  args.flag("interval-ms", "N", "redraw interval", &intervalMs);
  args.flag("frames", "N", "exit after N redraws (0 = until scrape fails)",
            &frames);
  args.flag("demo", "run a self-hosted farm + metrics server and watch it",
            &demo);
  bool demoCell = false;
  args.flag("demo-cell",
            "self-hosted multi-user cell scenario (flows, deadlines, per-flow "
            "QoS panel)",
            &demoCell);
  args.flag("no-ansi", "plain append-only output (no cursor control)",
            &noAnsi);
  if (!args.parse(argc, argv)) return args.parseError() ? 1 : 0;

  // Demo mode: a self-hosted farm decodes a packet stream while the
  // dashboard scrapes it over real HTTP.
  std::unique_ptr<obs::MetricsRegistry> reg;
  std::unique_ptr<obs::MetricsServer> server;
  std::unique_ptr<platform::PacketFarm> farm;
  std::unique_ptr<cell::CellScheduler> scheduler;
  std::unique_ptr<obs::SloEngine> slo;
  std::thread feeder;
  std::atomic<bool> feederDone{false};
  if (demo && demoCell) {
    fprintf(stderr, "farm_dashboard: pick one of --demo / --demo-cell\n");
    return 1;
  }
  if (demo || demoCell) {
    dsp::ModemConfig cfg;
    cfg.mod = demoCell ? dsp::Modulation::kQam16 : dsp::Modulation::kQam64;
    cfg.numSymbols = demoCell ? 2 : 4;
    platform::FarmConfig fc;
    fc.modem = cfg;
    fc.numWorkers = std::max(
        1, std::min(4, static_cast<int>(std::thread::hardware_concurrency())));
    fc.spans = true;  // feeds the slowest-packet region breakdown panel
    // Exercise the self-audit panel: shadow-decode a quarter of the demo
    // traffic and track two permissive SLOs live.
    fc.sentinel.enabled = true;
    fc.sentinel.sampleRate = 0.25;
    reg = std::make_unique<obs::MetricsRegistry>();
    farm = std::make_unique<platform::PacketFarm>(fc);
    farm->registerMetrics(*reg);
    std::string sloSpec =
        "p99: p99_latency_us < 1000000; integrity: divergences < 1";
    if (demoCell) {
      // A small cell: four users on two simulated processors, generous
      // frame budget — the per-flow QoS panel fills as the DES folds.
      cell::CellScenario sc;
      sc.seed = 42;
      sc.modem = cfg;
      sc.numServers = 2;
      sc.durationUs = 100'000.0;
      sc.classes[0].users = 4;
      sc.classes[0].packetsPerSec = 120.0;
      sc.classes[0].deadlineUs = 20'000.0;
      scheduler = std::make_unique<cell::CellScheduler>(std::move(sc));
      scheduler->registerMetrics(*reg);
      sloSpec = "miss: deadline_miss_rate(20000) <= 0.9; integrity: "
                "divergences < 1";
    }
    slo = std::make_unique<obs::SloEngine>(*reg,
                                           obs::parseSloSpecList(sloSpec));
    slo->registerMetrics(*reg);
    slo->startPeriodic(250);
    server = std::make_unique<obs::MetricsServer>(*reg, 0);
    server->registerSelfMetrics(*reg);
    server->setReadiness(
        [&farm](std::string* reason) { return farm->ready(reason); });
    server->setSloEngine(slo.get());
    port = server->port();
    host = "127.0.0.1";
    if (frames == 0) frames = 6;
    if (demoCell) {
      // The scheduler drives the whole scenario (one-shot, blocking): the
      // dashboard scrapes the per-flow series live while the DES folds.
      feeder = std::thread([&farm, &scheduler, &feederDone] {
        (void)scheduler->run(*farm);
        feederDone.store(true);
      });
      printf("demo cell up: %zu flows on %d sim servers, %d host workers, "
             "metrics on http://127.0.0.1:%d/metrics\n",
             scheduler->flows().size(), scheduler->scenario().numServers,
             fc.numWorkers, port);
    } else {
      // cfg dies with this block — the thread must copy it, not reference it.
      feeder = std::thread([&farm, &feederDone, cfg] {
        for (int i = 0; i < 48 && !feederDone.load(); ++i) {
          Rng rng(1000 + static_cast<u64>(i));
          const dsp::TxPacket pkt = dsp::transmit(cfg, rng);
          dsp::ChannelConfig cc;
          cc.taps = 2;
          cc.snrDb = 38;
          cc.seed = static_cast<u64>(i + 1);
          dsp::MimoChannel ch(cc);
          farm->submit(ch.run(pkt.waveform));
        }
        feederDone.store(true);
      });
      printf("demo farm up: %d workers, metrics on "
             "http://127.0.0.1:%d/metrics\n",
             fc.numWorkers, port);
    }
  }

  int misses = 0;
  for (int frame = 1; frames == 0 || frame <= frames; ++frame) {
    const std::string body = obs::httpGet(host, port, "/metrics");
    if (body.empty()) {
      if (++misses >= 3) {
        fprintf(stderr, "farm_dashboard: no metrics at %s:%d — giving up\n",
                host.c_str(), port);
        break;
      }
    } else {
      misses = 0;
      drawFrame(parsePrometheus(body), frame, !noAnsi);
    }
    if (frames == 0 || frame < frames)
      std::this_thread::sleep_for(std::chrono::milliseconds(intervalMs));
  }

  if (demo || demoCell) {
    feederDone.store(true);
    feeder.join();
    (void)farm->finish();
    server->stop();
    slo->stop();
    reg->clear();
  }
  return misses >= 3 ? 1 : 0;
}
