// Kernel-mapping example: explores how the DRESC-style modulo scheduler
// maps a dataflow loop onto the 4x4 array — II lower bounds, routing
// moves, live-in preloads, and the generated configuration contexts.
//
//   $ ./examples/kernel_mapping
#include <cstdio>

#include "cga/topology.hpp"
#include "sched/modulo.hpp"

using namespace adres;

namespace {

/// A complex dot-product kernel: acc += x[i] * conj(y[i]) on packed pairs.
KernelDfg cdotKernel() {
  KernelBuilder b("cdot");
  auto acc = b.carried(1);
  auto xPtr = b.carried(2);
  auto yPtr = b.carried(3);
  auto splat = b.liveIn(4);  // [8192 x4] rounding multiplier
  auto xlo = b.loadImm(Opcode::LD_I, xPtr, 0);
  auto x = b.loadHighImm(xlo, xPtr, 1);
  auto ylo = b.loadImm(Opcode::LD_I, yPtr, 0);
  auto y = b.loadHighImm(ylo, yPtr, 1);
  auto yn = b.op(Opcode::C4NEG, y);
  auto yc = b.op(Opcode::C4MIX, y, yn);           // conj
  auto d = b.op(Opcode::D4PROD, x, yc);
  auto c = b.op(Opcode::C4PROD, x, yc);
  auto re = b.op(Opcode::C4PSUB, d);
  auto im = b.op(Opcode::C4PADD, c);
  auto p = b.op(Opcode::C4MIX, re, im);
  auto pr = b.op(Opcode::D4PROD, p, splat);       // rounded >> 2
  b.defineCarried(acc, b.op(Opcode::C4ADD, acc, pr));
  b.defineCarried(xPtr, b.opImm(Opcode::ADD, xPtr, 8));
  b.defineCarried(yPtr, b.opImm(Opcode::ADD, yPtr, 8));
  b.liveOut(16, acc);
  return b.build();
}

}  // namespace

int main() {
  const KernelDfg g = cdotKernel();
  printf("dataflow graph: %d machine ops\n", g.opNodeCount());
  printf("lower bounds: ResMII=%d (memory ports / FU count), RecMII=%d "
         "(loop-carried chains)\n", resourceMii(g), recurrenceMii(g));

  ScheduleDiagnostics diag;
  ScheduleOptions opts;
  opts.diag = &diag;
  const ScheduledKernel sk = scheduleKernel(g, opts);
  printf("\nmapping: II=%d, schedule length %d, %d routing moves, "
         "%.0f%% slot utilization\n", sk.ii, sk.schedLength, sk.routeMoves,
         100.0 * sk.slotUtilization());
  printf("\nscheduler diagnostics (%d attempt(s)):\n%s", diag.totalAttempts(),
         diag.summary().c_str());
  printf("live-in preloads: %zu, live-out writebacks: %zu\n",
         sk.config.preloads.size(), sk.config.writebacks.size());

  printf("\nconfiguration contexts (one row per cycle slot, '.' = idle):\n");
  printf("         ");
  for (int fu = 0; fu < kCgaFus; ++fu) printf("FU%-8d", fu);
  printf("\n");
  for (int s = 0; s < sk.ii; ++s) {
    printf("cycle %2d ", s);
    for (int fu = 0; fu < kCgaFus; ++fu) {
      const FuOp& f = sk.config.contexts[static_cast<std::size_t>(s)].fu[fu];
      printf("%-10s", f.isNop() ? "." : std::string(opInfo(f.op).name).c_str());
    }
    printf("\n");
  }
  const std::vector<u8> image = encodeKernel(sk.config);
  printf("\nconfiguration image: %zu bytes (%d-bit ultra-wide word per "
         "context)\n", image.size(), contextWordBits());
  return 0;
}
