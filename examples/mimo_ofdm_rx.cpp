// End-to-end example: a 2x2 MIMO-OFDM packet (QAM-64, 20 MHz — the
// paper's 100 Mbps+ operating point) is generated, passed through a
// multipath channel with CFO and noise, and decoded by the full receiver
// program running on the simulated CGA-SIMD processor.
//
//   $ ./examples/mimo_ofdm_rx [numSymbols] [snrDb] [cfoPpm]
#include <cstdio>
#include <cstdlib>

#include "dsp/channel.hpp"
#include "power/energy_model.hpp"
#include "sdr/modem_program.hpp"

using namespace adres;

int main(int argc, char** argv) {
  int numSymbols = argc > 1 ? std::atoi(argv[1]) : 8;
  if (numSymbols < 2) numSymbols = 2;
  numSymbols &= ~1;  // the receiver merges symbol pairs
  const double snr = argc > 2 ? std::atof(argv[2]) : 35.0;
  const double ppm = argc > 3 ? std::atof(argv[3]) : 8.0;

  dsp::ModemConfig cfg;
  cfg.mod = dsp::Modulation::kQam64;
  cfg.numSymbols = numSymbols;
  printf("TX: %d OFDM symbols, %d payload bits, raw %.0f Mbps\n", numSymbols,
         numSymbols * dsp::bitsPerOfdmSymbol(cfg), dsp::rawRateMbps(cfg));

  Rng rng(2026);
  const dsp::TxPacket pkt = dsp::transmit(cfg, rng);

  dsp::ChannelConfig cc;
  cc.taps = 2;
  cc.snrDb = snr;
  cc.cfoPpm = ppm;
  cc.seed = 7;
  dsp::MimoChannel ch(cc);
  const auto rx = ch.run(pkt.waveform);
  printf("channel: 2-tap Rayleigh, %.0f dB SNR, %.0f ppm CFO "
         "(%.1f kHz at 2.4 GHz)\n", snr, ppm, ppm * 2.4e3 / 1000.0);

  const sdr::ModemOnProcessor m = sdr::buildModemProgram(cfg);
  printf("receiver program: %zu bundles, %zu mapped kernels\n",
         m.program.bundles.size(), m.program.kernels.size());

  Processor proc;
  const sdr::ProcessorRxResult res = sdr::runModemOnProcessor(proc, m, rx);
  const int errs = dsp::bitErrors(res.bits, pkt.bits);
  printf("RX: detected=%s, timing at sample %u, %d bit errors / %zu bits\n",
         res.detected ? "yes" : "NO", res.ltfStart, errs, pkt.bits.size());
  printf("processing: %llu cycles = %.1f us (air time %.1f us)\n",
         static_cast<unsigned long long>(res.cycles), res.elapsedUs,
         (dsp::kPreambleLen + numSymbols * dsp::kSymbolLen) / 20.0);

  const power::PowerReport pw = power::analyze(proc);
  printf("power model: VLIW %.0f mW / CGA %.0f mW / average %.0f mW active, "
         "+%.1f mW leakage (65C)\n", pw.vliwActiveMw, pw.cgaActiveMw,
         pw.averageActiveMw, pw.leakage65Mw);
  return errs == 0 ? 0 : 1;
}
