// Design-space example around Fig 5 / Table 3: how area and power move
// with the architecture knobs (array size, memory sizes, register-file
// porting) — the trade-offs §2/§3 of the paper argue about.
//
//   $ ./examples/power_explorer [--trips N]
#include <cstdio>

#include "bench/bench_args.hpp"
#include "power/area_model.hpp"
#include "power/energy_model.hpp"
#include "sched/progbuilder.hpp"

using namespace adres;
using namespace adres::power;

int main(int argc, char** argv) {
  int trips = 2000;
  bench::Args args("power_explorer",
                   "area / power design-space walk (Fig 5, Table 3)");
  args.flag("trips", "N", "kernel loop trip count for the power sweep",
            &trips);
  if (!args.parse(argc, argv)) return args.parseError() ? 1 : 0;

  printf("=== Area design space (baseline: the paper's 5.79 mm^2) ===\n");
  printf("%-34s %10s %12s\n", "configuration", "total mm2", "CGA FU share");
  struct Case {
    const char* name;
    AreaParams p;
  };
  AreaParams base;
  AreaParams small8;
  small8.cgaFus = 8;
  AreaParams big32;
  big32.cgaFus = 32;
  AreaParams halfMem;
  halfMem.l1KB = 128;
  AreaParams fatRf;
  fatRf.lrfReadPorts = 4;
  fatRf.lrfWritePorts = 2;
  const Case cases[] = {
      {"baseline (16 FUs, 256K L1)", base},
      {"8-FU array", small8},
      {"32-FU array", big32},
      {"128K L1", halfMem},
      {"4R/2W local RFs", fatRf},
  };
  for (const Case& c : cases) {
    const AreaReport r = analyzeArea(c.p);
    printf("%-34s %10.2f %11.1f%%\n", c.name, r.totalMm2,
           100.0 * r.shares.at("CGA FUs"));
  }

  printf("\n=== Power vs workload density (activity-based model) ===\n");
  // Same kernel at three utilization levels: vary how many FUs are busy.
  for (int busyFus : {4, 8, 16}) {
    KernelConfig k;
    k.name = "load";
    k.ii = 1;
    k.schedLength = 1;
    k.contexts.resize(1);
    for (int fu = 0; fu < busyFus; ++fu) {
      FuOp& f = k.contexts[0].fu[fu];
      f.op = Opcode::C4ADD;
      f.src1 = SrcSel::localRf(0);
      f.src2 = SrcSel::localRf(1);
      f.dst.toLocalRf = true;
      f.dst.localAddr = 0;
    }
    ProgramBuilder pb("p");
    const int kid = pb.addKernel(k);
    pb.li(1, trips);
    pb.cga(kid, 1);
    pb.halt();
    Processor proc;
    proc.load(pb.build());
    proc.run();
    const PowerReport r = analyze(proc);
    printf("  %2d/16 FUs busy: CGA-mode %.0f mW "
           "(IPC %d, %.1f GOPS16)\n", busyFus, r.cgaActiveMw, busyFus,
           busyFus * 4 * 0.4);
  }
  printf("\n(paper: 310 mW at ~64%% utilization; idle fabric still clocks "
         "at the kernel-mode floor)\n");
  return 0;
}
