// Quickstart: build a program with the toolchain, run it on the simulated
// hybrid CGA-SIMD processor, and read results back.
//
//   $ ./examples/quickstart
//
// Demonstrates the three layers a user touches:
//   1. ProgramBuilder — VLIW glue code, data placement, control flow.
//   2. KernelBuilder + scheduleKernel — a C-like dataflow loop mapped onto
//      the 16-FU array by the DRESC-style modulo scheduler.
//   3. Processor — cycle-accurate execution with profiling.
#include <cstdio>

#include "core/processor.hpp"
#include "sched/modulo.hpp"
#include "sched/progbuilder.hpp"

using namespace adres;

int main() {
  // --- 1. A kernel: out[i] = (a[i] + b[i]) saturating, 4x16-bit SIMD ----
  KernelBuilder kb("vadd16x4");
  auto i = kb.carried(/*seed CDRF reg*/ 1);
  auto aBase = kb.liveIn(2);
  auto bBase = kb.liveIn(3);
  auto oBase = kb.liveIn(4);
  auto aAddr = kb.op(Opcode::ADD, aBase, i);
  auto bAddr = kb.op(Opcode::ADD, bBase, i);
  auto oAddr = kb.op(Opcode::ADD, oBase, i);
  auto aLo = kb.loadImm(Opcode::LD_I, aAddr, 0);
  auto aV = kb.loadHighImm(aLo, aAddr, 1);  // 64-bit value = 2 x 32-bit loads
  auto bLo = kb.loadImm(Opcode::LD_I, bAddr, 0);
  auto bV = kb.loadHighImm(bLo, bAddr, 1);
  auto sum = kb.op(Opcode::C4ADD, aV, bV);  // 4 lanes, saturating
  kb.storeImm(Opcode::ST_I, oAddr, 0, sum);
  kb.storeImm(Opcode::ST_IH, oAddr, 1, sum);
  kb.defineCarried(i, kb.opImm(Opcode::ADD, i, 8));

  const ScheduledKernel sk = scheduleKernel(kb.build());
  printf("kernel mapped: II=%d, %d ops + %d routing moves, %.0f%% slot "
         "utilization\n", sk.ii, sk.opNodes, sk.routeMoves,
         100.0 * sk.slotUtilization());

  // --- 2. The program: data, glue, kernel launch ------------------------
  ProgramBuilder pb("quickstart");
  const int kid = pb.addKernel(sk);
  std::vector<i16> a, b;
  for (int n = 0; n < 64; ++n) {
    a.push_back(static_cast<i16>(100 * n));
    b.push_back(static_cast<i16>(1000 - n));
  }
  const u32 aAddr2 = pb.dataI16(a);
  const u32 bAddr2 = pb.dataI16(b);
  const u32 oAddr2 = pb.reserve(128);
  pb.marker("setup");
  pb.li(1, 0);                          // loop byte index seed
  pb.li(2, static_cast<i32>(aAddr2));
  pb.li(3, static_cast<i32>(bAddr2));
  pb.li(4, static_cast<i32>(oAddr2));
  pb.li(5, 16);                         // trips: 64 lanes / 4 per word
  pb.marker("kernel");
  pb.cga(kid, 5);
  pb.markerEnd();
  pb.halt();

  // --- 3. Run and inspect ------------------------------------------------
  Processor proc;
  const Program prog = pb.build();
  proc.load(prog);
  proc.run();
  printf("ran %llu cycles (%.2f us at 400 MHz)\n",
         static_cast<unsigned long long>(proc.cycles()), proc.elapsedUs());
  for (const auto& [id, p] : proc.profiles()) {
    printf("  region %-8s: %llu cycles, IPC %.2f, mode %s\n",
           prog.regionNames[static_cast<std::size_t>(id)].c_str(),
           static_cast<unsigned long long>(p.cycles), p.ipc(),
           p.mode().c_str());
  }
  bool ok = true;
  for (int n = 0; n < 64; ++n) {
    const i16 lane =
        static_cast<i16>(proc.l1().read16(oAddr2 + 2 * static_cast<u32>(n)));
    const i16 expect = sat16(i32{a[static_cast<std::size_t>(n)]} +
                             b[static_cast<std::size_t>(n)]);
    if (lane != expect) ok = false;
  }
  printf("result check: %s\n", ok ? "all 64 lanes correct" : "MISMATCH");
  return ok ? 0 : 1;
}
