// Observability example: runs the 2x2 MIMO-OFDM receiver on the simulated
// processor with cycle-level tracing attached, then writes
//   modem.trace.json — Chrome trace-event JSON; open in chrome://tracing or
//                      https://ui.perfetto.dev (one track per VLIW slot and
//                      per CGA FU, so kernel occupancy renders as a heatmap)
//   modem.counters.json — the stable-schema counter dump
// and prints the per-region summary table.
//
//   $ ./examples/trace_modem [numSymbols] [traceCapacity]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "dsp/channel.hpp"
#include "sdr/modem_program.hpp"
#include "trace/export.hpp"
#include "trace/telemetry.hpp"

using namespace adres;

int main(int argc, char** argv) {
  int numSymbols = argc > 1 ? std::atoi(argv[1]) : 8;
  if (numSymbols < 2) numSymbols = 2;
  numSymbols &= ~1;  // the receiver merges symbol pairs
  const std::size_t capacity =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2]))
               : RingBufferSink::kDefaultCapacity;

  dsp::ModemConfig cfg;
  cfg.mod = dsp::Modulation::kQam64;
  cfg.numSymbols = numSymbols;
  Rng rng(2026);
  const dsp::TxPacket pkt = dsp::transmit(cfg, rng);
  dsp::ChannelConfig cc;
  cc.taps = 2;
  cc.snrDb = 35;
  cc.cfoPpm = 8;
  cc.seed = 7;
  dsp::MimoChannel ch(cc);
  const auto rx = ch.run(pkt.waveform);

  const sdr::ModemOnProcessor m = sdr::buildModemProgram(cfg);
  Processor proc;
  RingBufferSink ring(capacity);

  sdr::RxRunOptions opts;
  opts.trace = &ring;
  const sdr::ProcessorRxResult res = sdr::runModemOnProcessor(proc, m, rx, opts);
  const int errs = dsp::bitErrors(res.bits, pkt.bits);
  printf("decoded %d OFDM symbols in %llu cycles (%.1f us), %d bit errors\n",
         numSymbols, static_cast<unsigned long long>(res.cycles),
         res.elapsedUs, errs);
  printf("trace: %llu events emitted, %zu retained, %llu dropped "
         "(capacity %zu)\n",
         static_cast<unsigned long long>(ring.accepted()), ring.size(),
         static_cast<unsigned long long>(ring.dropped()), ring.capacity());

  trace::TraceNames names;
  for (const KernelConfig& k : proc.program().kernels)
    names.kernels.push_back(k.name);
  names.regions = proc.program().regionNames;

  {
    std::ofstream os("modem.trace.json");
    trace::writeChromeTrace(ring.events(), os, names);
    printf("wrote modem.trace.json (open in chrome://tracing or "
           "ui.perfetto.dev)\n");
  }
  {
    std::ofstream os("modem.counters.json");
    trace::writeCountersJson(proc, os);
    printf("wrote modem.counters.json\n");
  }

  printf("\nper-region profile:\n");
  trace::printRegionTable(proc);
  return errs == 0 ? 0 : 1;
}
