// AMBA2 AHB-lite slave port and internal address decode (paper §2.A).
//
// The processor is a slave in a multi-core SDR platform: the L1 scratchpad,
// the CGA configuration memories and the special-register bank are mapped
// behind a single AHB slave interface (config/special regs via the internal
// 32-bit bus).  The bus clock is half the core clock; a single transfer
// costs one address + one data bus cycle = 4 core cycles.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "trace/trace.hpp"

namespace adres {

/// Memory map of the slave interface (byte addresses, word aligned).
namespace mmap {
inline constexpr u32 kL1Base = 0x0000'0000;
inline constexpr u32 kL1Size = 0x0004'0000;  // 256 KiB
inline constexpr u32 kConfigBase = 0x0010'0000;
inline constexpr u32 kConfigSize = 0x0001'0000;  // 64 KiB
inline constexpr u32 kSpecialBase = 0x0020'0000;
inline constexpr u32 kSpecialSize = 0x0000'1000;
}  // namespace mmap

/// Special-register word offsets inside the special-register bank.
namespace sreg {
inline constexpr u32 kStatus = 0x00;     ///< RO: {1:sleeping, 0:running}
inline constexpr u32 kCycleLo = 0x04;    ///< RO: core cycle counter
inline constexpr u32 kCycleHi = 0x08;
inline constexpr u32 kEndianness = 0x0C; ///< RW: 0 little (only mode modelled)
inline constexpr u32 kAhbPriority = 0x10;///< RW: 1 = bus wins L1 conflicts
inline constexpr u32 kException = 0x14;  ///< RO: sticky exception flags
inline constexpr u32 kDebugData = 0x18;  ///< RW: debug data interface window
inline constexpr u32 kDebugAddr = 0x1C;
}  // namespace sreg

struct AhbStats {
  u64 reads = 0;
  u64 writes = 0;
  u64 busCycles = 0;  ///< in bus-clock cycles (half core clock)
};

/// Address-decoding AHB slave.  Regions register word-granular handlers.
class AhbSlave {
 public:
  using Read32 = std::function<u32(u32 offset)>;
  using Write32 = std::function<void(u32 offset, u32 value)>;

  void addRegion(std::string name, u32 base, u32 size, Read32 rd, Write32 wr) {
    ADRES_CHECK(size > 0 && base % 4 == 0 && size % 4 == 0,
                "region " << name << " must be word aligned");
    for (const auto& r : regions_) {
      const bool overlap = base < r.base + r.size && r.base < base + size;
      ADRES_CHECK(!overlap, "region " << name << " overlaps " << r.name);
    }
    regions_.push_back({std::move(name), base, size, std::move(rd), std::move(wr)});
  }

  u32 read32(u32 addr) {
    const Region& r = decode(addr);
    ++stats_.reads;
    // Traced on the bus's own timeline in core cycles (bus clock = core/2).
    if (trace_)
      trace_->event({stats_.busCycles * 2, 4, TraceEventKind::kAhbRead, 0,
                     addr, 0});
    stats_.busCycles += 2;  // address + data phase
    return r.rd(addr - r.base);
  }

  void write32(u32 addr, u32 value) {
    const Region& r = decode(addr);
    ++stats_.writes;
    if (trace_)
      trace_->event({stats_.busCycles * 2, 4, TraceEventKind::kAhbWrite, 0,
                     addr, value});
    stats_.busCycles += 2;
    r.wr(addr - r.base, value);
  }

  /// Burst helpers (INCR bursts: 1 address phase + n data phases).
  std::vector<u32> readBurst(u32 addr, u32 nWords) {
    std::vector<u32> out;
    out.reserve(nWords);
    for (u32 i = 0; i < nWords; ++i) out.push_back(read32(addr + 4 * i));
    stats_.busCycles -= nWords > 1 ? (nWords - 1) : 0;  // pipelined addresses
    return out;
  }

  void writeBurst(u32 addr, const std::vector<u32>& words) {
    for (u32 i = 0; i < words.size(); ++i) write32(addr + 4 * i, words[i]);
    stats_.busCycles -= words.size() > 1 ? (words.size() - 1) : 0;
  }

  const AhbStats& stats() const { return stats_; }
  void setTrace(TraceSink* t) { trace_ = t; }

 private:
  struct Region {
    std::string name;
    u32 base;
    u32 size;
    Read32 rd;
    Write32 wr;
  };

  const Region& decode(u32 addr) const {
    ADRES_CHECK(addr % 4 == 0, "unaligned AHB access 0x" << std::hex << addr);
    for (const auto& r : regions_) {
      if (addr >= r.base && addr < r.base + r.size) return r;
    }
    throw SimError("AHB decode error (no slave region at given address)");
  }

  std::vector<Region> regions_;
  AhbStats stats_;
  TraceSink* trace_ = nullptr;
};

}  // namespace adres
