#include "campaign/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/json_min.hpp"

namespace adres::campaign {
namespace {

std::string hex64(u64 v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string fmtDouble(double d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return buf;
}

u64 asU64(const json::JsonValue& v) {
  // Counters stay below 2^53, so the double round-trip is exact.
  return static_cast<u64>(v.number);
}

}  // namespace

void writeCheckpoint(std::ostream& os, const SweepSpec& spec,
                     const std::vector<CellSpec>& cells,
                     const std::vector<CellResult>& results) {
  ADRES_CHECK(cells.size() == results.size(), "cells/results size mismatch");
  os << "{\n";
  os << "  \"schema\": \"" << kCheckpointSchema << "\",\n";
  os << "  \"specHash\": \"" << hex64(stableHash(spec)) << "\",\n";
  os << "  \"cells\": [";
  bool first = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellSpec& c = cells[i];
    const CellResult& r = results[i];
    if (!r.done) continue;
    if (!first) os << ",";
    first = false;
    const Interval ci = wilson(r.packetErrors, r.trials, spec.stop.confidence);
    os << "\n    {\"key\": \"" << hex64(c.key()) << "\""
       << ", \"label\": \"" << cellLabel(c) << "\""
       << ", \"mod\": " << static_cast<int>(c.modem.mod)
       << ", \"numSymbols\": " << c.modem.numSymbols
       << ", \"taps\": " << c.channel.taps
       << ", \"delaySpread\": " << fmtDouble(c.channel.delaySpread)
       << ", \"cfoPpm\": " << fmtDouble(c.channel.cfoPpm)
       << ", \"snrDb\": " << fmtDouble(c.channel.snrDb) << ",\n"
       << "     \"trials\": " << r.trials << ", \"bits\": " << r.bits
       << ", \"bitErrors\": " << r.bitErrors
       << ", \"packetErrors\": " << r.packetErrors
       << ", \"lostPackets\": " << r.lostPackets
       << ", \"cycles\": " << r.cycles
       << ", \"discardedTrials\": " << r.discardedTrials
       << ", \"stopReason\": \"" << r.stopReason << "\",\n"
       << "     \"energyNj\": " << fmtDouble(r.energyNj)
       << ", \"per\": " << fmtDouble(r.per())
       << ", \"ber\": " << fmtDouble(r.ber())
       << ", \"perCiLo\": " << fmtDouble(ci.lo)
       << ", \"perCiHi\": " << fmtDouble(ci.hi)
       << ", \"energyPerBitNj\": " << fmtDouble(r.energyPerBitNj()) << "}";
  }
  os << "\n  ]\n}\n";
}

void writeCheckpointFile(const std::string& path, const SweepSpec& spec,
                         const std::vector<CellSpec>& cells,
                         const std::vector<CellResult>& results) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    ADRES_CHECK(os.good(), "cannot open checkpoint tmp file");
    writeCheckpoint(os, spec, cells, results);
    ADRES_CHECK(os.good(), "checkpoint write failed");
  }
  ADRES_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
              "checkpoint rename failed");
}

std::map<u64, CellResult> loadCheckpoint(std::istream& is,
                                         const SweepSpec& spec) {
  std::ostringstream buf;
  buf << is.rdbuf();
  json::JsonValue root = json::JsonParser(buf.str()).parse();
  ADRES_CHECK(root.type == json::JsonValue::kObject, "checkpoint not an object");
  ADRES_CHECK(root.at("schema").str == kCheckpointSchema,
              "unknown checkpoint schema");
  ADRES_CHECK(root.at("specHash").str == hex64(stableHash(spec)),
              "checkpoint was written by a different sweep spec");
  std::map<u64, CellResult> out;
  for (const json::JsonValue& cell : root.at("cells").array) {
    const u64 key = std::stoull(cell.at("key").str, nullptr, 16);
    CellResult r;
    r.trials = asU64(cell.at("trials"));
    r.bits = asU64(cell.at("bits"));
    r.bitErrors = asU64(cell.at("bitErrors"));
    r.packetErrors = asU64(cell.at("packetErrors"));
    r.lostPackets = asU64(cell.at("lostPackets"));
    r.cycles = asU64(cell.at("cycles"));
    r.discardedTrials = asU64(cell.at("discardedTrials"));
    r.stopReason = cell.at("stopReason").str;
    r.energyNj = cell.at("energyNj").number;
    r.done = true;
    out.emplace(key, std::move(r));
  }
  return out;
}

std::map<u64, CellResult> loadCheckpointFile(const std::string& path,
                                             const SweepSpec& spec) {
  std::ifstream is(path);
  if (!is.good()) return {};
  return loadCheckpoint(is, spec);
}

}  // namespace adres::campaign
