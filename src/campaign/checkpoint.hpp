// Resumable campaign checkpoints: the adres.campaign.v1 JSON schema.
//
// The file is a pure function of (spec, completed cells): cells are written
// in expansion order, integer accumulators as decimal, doubles as %.17g
// (lossless round-trip through std::stod), 64-bit keys as fixed-width hex
// strings.  Rewriting it after every completed cell via tmp+rename keeps
// the on-disk file atomic — a killed campaign resumes from the last
// completed cell, and a resumed run's final checkpoint is byte-identical
// to an uninterrupted one.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "campaign/stats.hpp"

namespace adres::campaign {

inline constexpr const char* kCheckpointSchema = "adres.campaign.v1";

/// Writes the checkpoint for `spec` with the completed subset of `cells`
/// (parallel to `results`; entries with !done are skipped).
void writeCheckpoint(std::ostream& os, const SweepSpec& spec,
                     const std::vector<CellSpec>& cells,
                     const std::vector<CellResult>& results);

/// Atomic file write: path.tmp then rename.
void writeCheckpointFile(const std::string& path, const SweepSpec& spec,
                         const std::vector<CellSpec>& cells,
                         const std::vector<CellResult>& results);

/// Parses a checkpoint and returns completed cells keyed by CellSpec::key().
/// ADRES_CHECKs the schema string and that specHash matches `spec` — a
/// checkpoint never silently resumes a different sweep.
std::map<u64, CellResult> loadCheckpoint(std::istream& is,
                                         const SweepSpec& spec);

/// File variant; a missing file yields an empty map (fresh start).
std::map<u64, CellResult> loadCheckpointFile(const std::string& path,
                                             const SweepSpec& spec);

}  // namespace adres::campaign
