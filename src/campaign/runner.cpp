#include "campaign/runner.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "platform/packet_farm.hpp"

namespace adres::campaign {
namespace {

/// Decode energy in nanojoules: avg power (mW) x cycles / 400 MHz clock.
double decodeEnergyNj(double avgPowerMw, u64 cycles) {
  return avgPowerMw * static_cast<double>(cycles) / 400.0;
}

}  // namespace

CampaignRunner::CampaignRunner(CampaignConfig cfg)
    : cfg_(std::move(cfg)),
      producer_(TrialProducerConfig{cfg_.producers, cfg_.frontend}) {
  ADRES_CHECK(cfg_.workers >= 1, "campaign needs at least one worker");
  cells_ = expand(cfg_.sweep);
  results_.resize(cells_.size());
}

CampaignResult CampaignRunner::run() {
  // Resume: completed cells come back from the checkpoint verbatim.
  std::map<u64, CellResult> resumed;
  if (cfg_.resume && !cfg_.checkpointPath.empty())
    resumed = loadCheckpointFile(cfg_.checkpointPath, cfg_.sweep);

  int completedThisRun = 0;
  bool stoppedEarly = false;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const CellSpec& cell = cells_[i];
    currentCell_.store(i, std::memory_order_relaxed);
    if (auto it = resumed.find(cell.key()); it != resumed.end()) {
      std::lock_guard<std::mutex> lk(mu_);
      results_[i] = it->second;
      if (cfg_.log) cfg_.log("cell " + cellLabel(cell) + ": resumed from checkpoint");
      continue;
    }
    if (cfg_.stopAfterCells >= 0 && completedThisRun >= cfg_.stopAfterCells) {
      stoppedEarly = true;
      break;
    }
    CellResult r;
    runCell(cell, r);
    {
      std::lock_guard<std::mutex> lk(mu_);
      results_[i] = r;
    }
    ++completedThisRun;
    cellsDone_.fetch_add(1, std::memory_order_relaxed);
    if (!cfg_.checkpointPath.empty())
      writeCheckpointFile(cfg_.checkpointPath, cfg_.sweep, cells_, results_);
    if (cfg_.log) {
      const Interval ci =
          wilson(r.packetErrors, r.trials, cfg_.sweep.stop.confidence);
      std::ostringstream os;
      os << "cell " << cellLabel(cell) << ": trials=" << r.trials
         << " per=" << r.per() << " [" << ci.lo << ", " << ci.hi << "]"
         << " ber=" << r.ber() << " stop=" << r.stopReason;
      if (r.discardedTrials)
        os << " (truncated: " << r.discardedTrials
           << " in-flight trials past the stop point were discarded)";
      cfg_.log(os.str());
    }
  }

  CampaignResult out;
  out.cells = cells_;
  {
    std::lock_guard<std::mutex> lk(mu_);
    out.results = results_;
  }
  out.completed = !stoppedEarly &&
                  std::all_of(out.results.begin(), out.results.end(),
                              [](const CellResult& r) { return r.done; });
  out.trialsRun = trialsRun_.load(std::memory_order_relaxed);
  for (const CellResult& r : out.results) out.trialsDiscarded += r.discardedTrials;
  return out;
}

void CampaignRunner::runCell(const CellSpec& cell, CellResult& result) {
  const StoppingRule& stop = cfg_.sweep.stop;
  cellTrials_.store(0, std::memory_order_relaxed);
  cellErrors_.store(0, std::memory_order_relaxed);

  platform::FarmConfig fc;
  fc.modem = cell.modem;
  fc.numWorkers = cfg_.workers;
  fc.queueCapacity = cfg_.queueCapacity;
  fc.run = cfg_.run;
  fc.ordered = true;  // trial-order folding requires id-sorted outcomes
  platform::PacketFarm farm(fc);

  u64 nextTrial = 0;
  while (!result.done) {
    const u64 batch =
        std::min(cfg_.sweep.batchSize, stop.maxTrials - nextTrial);
    ADRES_CHECK(batch >= 1, "stopping rule failed to fire by maxTrials");
    // Generate + submit the batch (sharded across the producer threads);
    // payload bits land in txBits_ keyed by trial index.  Jobs are
    // cell-tagged so per-packet trace ids and spans name their campaign
    // cell even when several cells share one metrics endpoint.
    producer_.produceBatch(
        cell, static_cast<u32>(currentCell_.load(std::memory_order_relaxed)),
        nextTrial, batch, farm, txBits_);
    // Fold ordered outcomes in trial order; stop checks after each trial.
    // collectInto + recycleOutcomes cycle the outcome storage and decoded-bit
    // buffers between the runner and the farm's pools (no per-batch heap).
    farm.collectInto(outcomes_);
    ADRES_CHECK(outcomes_.size() == batch, "farm lost a batch outcome");
    for (std::size_t k = 0; k < outcomes_.size(); ++k) {
      const platform::RxOutcome& o = outcomes_[k];
      if (result.done) {
        // Decoded past the stop point: report, never fold.
        result.discardedTrials += outcomes_.size() - k;
        break;
      }
      const std::vector<u8>& bits = txBits_[o.id - nextTrial];
      const u64 nBits = bits.size();
      const bool lost = !o.result.detected || o.result.bits.size() != nBits;
      const u64 errs = lost ? nBits
                            : static_cast<u64>(dsp::bitErrors(o.result.bits, bits));
      result.trials += 1;
      result.bits += nBits;
      result.bitErrors += errs;
      result.packetErrors += errs > 0 ? 1 : 0;
      result.lostPackets += lost ? 1 : 0;
      result.cycles += o.result.cycles;
      result.energyNj += decodeEnergyNj(o.avgPowerMw, o.result.cycles);
      trialsRun_.fetch_add(1, std::memory_order_relaxed);
      cellTrials_.store(result.trials, std::memory_order_relaxed);
      cellErrors_.store(result.packetErrors, std::memory_order_relaxed);

      if (result.trials < stop.minTrials) continue;
      if (result.packetErrors >= stop.errorBudget) {
        result.done = true;
        result.stopReason = "errorBudget";
      } else if (wilson(result.packetErrors, result.trials, stop.confidence)
                     .halfWidth() <= stop.ciHalfWidth) {
        result.done = true;
        result.stopReason = "ci";
      } else if (result.trials >= stop.maxTrials) {
        result.done = true;
        result.stopReason = "maxTrials";
      }
    }
    farm.recycleOutcomes(outcomes_);
    nextTrial += batch;
  }
  (void)farm.finish();
}

void CampaignRunner::registerMetrics(obs::MetricsRegistry& reg) const {
  reg.addGauge("adres_campaign_cells_total", "grid cells in the sweep",
               [this] { return static_cast<double>(cells_.size()); });
  reg.addGauge("adres_campaign_cells_done", "cells completed (incl. resumed)",
               [this] {
                 std::lock_guard<std::mutex> lk(mu_);
                 std::size_t n = 0;
                 for (const CellResult& r : results_) n += r.done ? 1 : 0;
                 return static_cast<double>(n);
               });
  reg.addGauge("adres_campaign_current_cell", "index of the in-flight cell",
               [this] {
                 return static_cast<double>(
                     currentCell_.load(std::memory_order_relaxed));
               });
  reg.addCounter("adres_campaign_trials_total", "trials decoded this run",
                 [this] {
                   return static_cast<double>(
                       trialsRun_.load(std::memory_order_relaxed));
                 });
  reg.addGauge("adres_campaign_cell_trials",
               "trials folded into the in-flight cell",
               [this] {
                 return static_cast<double>(
                     cellTrials_.load(std::memory_order_relaxed));
               });
  reg.addGauge("adres_campaign_cell_packet_errors",
               "packet errors folded into the in-flight cell",
               [this] {
                 return static_cast<double>(
                     cellErrors_.load(std::memory_order_relaxed));
               });
  // Completed-cell summary series, labelled by cell.
  reg.addGaugeFamily(
      "adres_campaign_cell_per", "packet error rate of completed cells",
      [this] {
        std::vector<std::pair<obs::Labels, double>> out;
        std::lock_guard<std::mutex> lk(mu_);
        for (std::size_t i = 0; i < cells_.size(); ++i)
          if (results_[i].done)
            out.push_back({obs::Labels{{"cell", cellLabel(cells_[i])}},
                           results_[i].per()});
        return out;
      });
  reg.addGaugeFamily(
      "adres_campaign_cell_energy_per_bit_nj",
      "decode energy per payload bit (nJ) of completed cells", [this] {
        std::vector<std::pair<obs::Labels, double>> out;
        std::lock_guard<std::mutex> lk(mu_);
        for (std::size_t i = 0; i < cells_.size(); ++i)
          if (results_[i].done)
            out.push_back({obs::Labels{{"cell", cellLabel(cells_[i])}},
                           results_[i].energyPerBitNj()});
        return out;
      });
}

}  // namespace adres::campaign
