// CampaignRunner: executes a SweepSpec cell-by-cell on a PacketFarm
// (DESIGN.md §11).
//
// Per cell the runner generates trials in counter order — TX payload from
// the trial's kTxStream seed, channel from its kChannelStream seed —
// shards them onto the farm in fixed-size batches, folds the ordered
// outcomes back in trial order, and applies the sequential stopping rule
// after every folded trial.  Because the fold order, the batch size and
// every seed are functions of the spec alone, the accumulated CellResult
// is bit-identical across worker counts and across kill/resume boundaries.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/checkpoint.hpp"
#include "campaign/spec.hpp"
#include "campaign/stats.hpp"
#include "campaign/trial_producer.hpp"
#include "obs/metrics.hpp"
#include "platform/packet_farm.hpp"

namespace adres::campaign {

struct CampaignConfig {
  SweepSpec sweep;
  int workers = 1;
  std::size_t queueCapacity = 32;
  /// Trial-generation shards feeding the farm concurrently (1 generates
  /// inline on the runner thread).  Counter-based per-trial seeding plus
  /// trial-order folding make results — and checkpoint bytes — identical
  /// for any producer count.
  int producers = 1;
  /// TX + channel frontend implementation (scalar reference or the
  /// vectorized default); bit-identical either way.
  dsp::FrontendConfig frontend;
  /// Per-decode run options forwarded to every cell's farm (exec tier,
  /// coldReload A/B switch, cycle budget).  All settings keep results
  /// bit-exact; they steer host speed and observability only.
  sdr::RxRunOptions run;
  /// Checkpoint file rewritten (atomically) after every completed cell;
  /// empty disables checkpointing.
  std::string checkpointPath;
  /// Load an existing checkpoint and skip its completed cells.
  bool resume = true;
  /// Stop after this many cells have completed in THIS run (ignoring
  /// resumed cells); < 0 runs the full grid.  Exercises the kill/resume
  /// path deterministically in tests and CI.
  int stopAfterCells = -1;
  /// Progress sink (cell completions, truncation reports); null = silent.
  std::function<void(const std::string&)> log;
};

struct CampaignResult {
  std::vector<CellSpec> cells;
  std::vector<CellResult> results;  ///< parallel to cells
  bool completed = false;           ///< every cell done (no early stop)
  u64 trialsRun = 0;                ///< decoded this run (excludes resumed)
  u64 trialsDiscarded = 0;          ///< decoded past stop points this run
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignConfig cfg);

  /// Runs (or resumes) the campaign; returns per-cell accumulators for the
  /// whole grid.  Call once.
  CampaignResult run();

  /// Live progress series: cells total/done, trials decoded, current-cell
  /// trial count and packet errors, plus per-completed-cell PER/BER gauge
  /// families.  The runner must outlive `reg` (or reg.clear() first).
  void registerMetrics(obs::MetricsRegistry& reg) const;

 private:
  void runCell(const CellSpec& cell, CellResult& result);

  CampaignConfig cfg_;
  std::vector<CellSpec> cells_;
  std::vector<CellResult> results_;
  TrialProducer producer_;  ///< persistent generator shards, reused per cell
  std::vector<std::vector<u8>> txBits_;  ///< batch payloads, capacity reused
  std::vector<platform::RxOutcome> outcomes_;  ///< batch fold buffer, reused
  mutable std::mutex mu_;  ///< guards results_ against metric scrapes

  std::atomic<u64> cellsDone_{0};
  std::atomic<u64> trialsRun_{0};
  std::atomic<u64> cellTrials_{0};
  std::atomic<u64> cellErrors_{0};
  std::atomic<u64> currentCell_{0};
};

}  // namespace adres::campaign
