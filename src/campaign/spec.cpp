#include "campaign/spec.hpp"

#include <set>
#include <sstream>

#include "common/check.hpp"
#include "common/hash.hpp"

namespace adres::campaign {

u64 CellSpec::key() const {
  u64 h = 0x61647265735F6365ull;  // "adres_ce"
  h = hashCombine(h, dsp::stableHash(modem));
  h = hashCombine(h, dsp::stableHash(channel));
  return h;
}

u64 CellSpec::trialSeed(u64 trial, u64 stream) const {
  u64 h = hashCombine(mix64(campaignSeed ^ 0x63616D706169676Eull), key());
  h = hashCombine(h, trial);
  return hashCombine(h, stream);
}

u64 stableHash(const SweepSpec& spec) {
  u64 h = 0x61647265735F7377ull;  // "adres_sw"
  h = hashCombine(h, spec.seed);
  h = hashCombine(h, spec.mods.size());
  for (dsp::Modulation m : spec.mods) h = hashCombine(h, static_cast<u64>(m));
  h = hashCombine(h, spec.numSymbols.size());
  for (int n : spec.numSymbols) h = hashCombine(h, static_cast<u64>(n));
  h = hashCombine(h, spec.taps.size());
  for (int t : spec.taps) h = hashCombine(h, static_cast<u64>(t));
  h = hashCombine(h, spec.cfoPpm.size());
  for (double c : spec.cfoPpm) h = hashCombine(h, doubleBits(c));
  h = hashCombine(h, spec.snrDb.size());
  for (double s : spec.snrDb) h = hashCombine(h, doubleBits(s));
  h = hashCombine(h, doubleBits(spec.delaySpread));
  h = hashCombine(h, spec.flat ? 1 : 0);
  h = hashCombine(h, spec.batchSize);
  h = hashCombine(h, spec.stop.minTrials);
  h = hashCombine(h, spec.stop.maxTrials);
  h = hashCombine(h, spec.stop.errorBudget);
  h = hashCombine(h, doubleBits(spec.stop.ciHalfWidth));
  h = hashCombine(h, doubleBits(spec.stop.confidence));
  return h;
}

std::vector<CellSpec> expand(const SweepSpec& spec) {
  ADRES_CHECK(!spec.mods.empty() && !spec.numSymbols.empty() &&
                  !spec.taps.empty() && !spec.cfoPpm.empty() &&
                  !spec.snrDb.empty(),
              "empty sweep axis");
  ADRES_CHECK(spec.batchSize >= 1, "batchSize must be >= 1");
  ADRES_CHECK(spec.stop.minTrials >= 1 &&
                  spec.stop.maxTrials >= spec.stop.minTrials,
              "stopping rule trial bounds");
  std::vector<CellSpec> cells;
  std::set<u64> seen;
  for (dsp::Modulation m : spec.mods) {
    for (int n : spec.numSymbols) {
      for (int t : spec.taps) {
        for (double cfo : spec.cfoPpm) {
          for (double snr : spec.snrDb) {
            CellSpec c;
            c.modem.mod = m;
            c.modem.numSymbols = n;
            c.channel.taps = t;
            c.channel.delaySpread = spec.delaySpread;
            c.channel.snrDb = snr;
            c.channel.cfoPpm = cfo;
            c.channel.seed = 0;
            c.channel.flat = spec.flat;
            c.campaignSeed = spec.seed;
            ADRES_CHECK(seen.insert(c.key()).second,
                        "sweep cells alias (duplicate grid point?)");
            cells.push_back(c);
          }
        }
      }
    }
  }
  return cells;
}

std::string cellLabel(const CellSpec& cell) {
  std::ostringstream os;
  switch (cell.modem.mod) {
    case dsp::Modulation::kBpsk: os << "bpsk"; break;
    case dsp::Modulation::kQpsk: os << "qpsk"; break;
    case dsp::Modulation::kQam16: os << "qam16"; break;
    case dsp::Modulation::kQam64: os << "qam64"; break;
  }
  os << " s" << cell.modem.numSymbols << " t" << cell.channel.taps << " cfo"
     << cell.channel.cfoPpm << " snr" << cell.channel.snrDb;
  if (cell.channel.flat) os << " flat";
  return os.str();
}

}  // namespace adres::campaign
