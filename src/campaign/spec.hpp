// Declarative Monte-Carlo sweep specification (DESIGN.md §11).
//
// A SweepSpec is a grid over channel operating points (SNR, CFO, taps) and
// modem configurations (modulation, symbols); expand() flattens it into
// CellSpecs in a fixed, documented order.  Per-trial randomness is
// counter-based: trial t of a cell derives its TX-payload seed and its
// channel seed purely from (campaign seed, cell key, t), so any single
// cell — or any single trial — is reproducible in isolation, and results
// cannot depend on worker count or execution order.
#pragma once

#include <string>
#include <vector>

#include "dsp/channel.hpp"
#include "dsp/modem.hpp"

namespace adres::campaign {

/// Sequential early-stopping policy for one cell, evaluated after every
/// trial in trial order (so the stop point is a pure function of the spec).
struct StoppingRule {
  u64 minTrials = 16;    ///< never stop before this many trials
  u64 maxTrials = 1024;  ///< hard trial ceiling per cell
  /// Stop once this many packet errors have been observed (the error
  /// budget: beyond it the PER estimate is already well resolved).
  u64 errorBudget = 50;
  /// Stop once the Wilson confidence interval on PER is narrower than
  /// this absolute half-width.
  double ciHalfWidth = 0.05;
  double confidence = 0.95;  ///< CI coverage for the width test

  bool operator==(const StoppingRule&) const = default;
};

/// The sweep grid.  Cells expand in row-major order over
/// (mod, numSymbols, taps, cfoPpm, snrDb) — snrDb fastest.
struct SweepSpec {
  u64 seed = 1;  ///< campaign master seed (one number reproduces everything)
  std::vector<dsp::Modulation> mods{dsp::Modulation::kQam64};
  std::vector<int> numSymbols{4};
  std::vector<int> taps{3};
  std::vector<double> cfoPpm{10.0};
  std::vector<double> snrDb{30.0};
  double delaySpread = 0.45;
  /// Identity-gain channel (no fading): isolates the AWGN+CFO waterfall.
  /// Uncoded QAM over random multipath has a fade-induced PER floor, so
  /// zero-error operating points are measured on the flat channel.
  bool flat = false;
  /// Trials submitted to the farm per submit/collect round.  Part of the
  /// spec (and the spec hash) because the discarded-trial accounting after
  /// an early stop depends on it.
  u64 batchSize = 16;
  StoppingRule stop;

  bool operator==(const SweepSpec&) const = default;
};

/// One grid cell: a fully specified operating point.
struct CellSpec {
  dsp::ModemConfig modem;
  /// Channel template for the cell; the `seed` field is zero — each trial
  /// substitutes its own derived seed.
  dsp::ChannelConfig channel;
  u64 campaignSeed = 1;

  /// Stable identity of the operating point (independent of the campaign
  /// seed): checkpoint records are keyed by this.
  u64 key() const;

  /// Counter-based per-trial seed derivation; `stream` separates the
  /// independent consumers within one trial (TX payload vs channel).
  static constexpr u64 kTxStream = 0;
  static constexpr u64 kChannelStream = 1;
  u64 trialSeed(u64 trial, u64 stream) const;
};

/// Stable hash of the whole spec (grid + stopping rule + seed + batch);
/// a checkpoint only resumes against the spec that wrote it.
u64 stableHash(const SweepSpec& spec);

/// Flattens the grid; ADRES_CHECKs that no two cells share a key.
std::vector<CellSpec> expand(const SweepSpec& spec);

/// Short human-readable cell label, e.g. "qam64 s4 t3 cfo10 snr22.5".
std::string cellLabel(const CellSpec& cell);

}  // namespace adres::campaign
