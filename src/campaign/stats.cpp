#include "campaign/stats.hpp"

#include <cmath>

#include "common/check.hpp"

namespace adres::campaign {

double normalQuantile(double p) {
  ADRES_CHECK(p > 0.0 && p < 1.0, "normalQuantile domain");
  // Acklam's rational approximation with one Halley refinement step.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double pLow = 0.02425;
  double x;
  if (p < pLow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - pLow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // Halley step against erfc for full double accuracy.
  const double e = 0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
  const double u = e * std::sqrt(2.0 * 3.14159265358979323846) *
                   std::exp(x * x / 2.0);
  return x - u / (1.0 + x * u / 2.0);
}

Interval wilson(u64 errors, u64 trials, double confidence) {
  if (trials == 0) return {0.0, 1.0};
  const double z = normalQuantile(1.0 - (1.0 - confidence) / 2.0);
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(errors) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  Interval iv;
  iv.lo = center - half;
  iv.hi = center + half;
  // Pin the boundary cases exactly: at 0 (or n) errors the algebraic bound
  // is exactly 0 (or 1) but center - half leaves rounding residue, which
  // would leak into the %.17g checkpoint encoding.
  if (errors == 0) iv.lo = 0.0;
  if (errors == trials) iv.hi = 1.0;
  if (iv.lo < 0.0) iv.lo = 0.0;
  if (iv.hi > 1.0) iv.hi = 1.0;
  return iv;
}

double CellResult::per() const {
  return trials ? static_cast<double>(packetErrors) / static_cast<double>(trials)
                : 0.0;
}

double CellResult::ber() const {
  return bits ? static_cast<double>(bitErrors) / static_cast<double>(bits)
              : 0.0;
}

double CellResult::energyPerBitNj() const {
  return bits ? energyNj / static_cast<double>(bits) : 0.0;
}

double CellResult::avgCyclesPerPacket() const {
  return trials ? static_cast<double>(cycles) / static_cast<double>(trials)
                : 0.0;
}

}  // namespace adres::campaign
