// Sequential statistics for campaign cells: Wilson score confidence
// intervals on the packet error rate and the per-cell accumulator record.
#pragma once

#include <string>

#include "common/types.hpp"

namespace adres::campaign {

/// Inverse standard-normal CDF (Acklam's rational approximation, relative
/// error < 1.15e-9 — far below any Monte-Carlo resolution here).
double normalQuantile(double p);

struct Interval {
  double lo = 0.0;
  double hi = 1.0;
  double halfWidth() const { return (hi - lo) / 2.0; }
};

/// Wilson score interval for a binomial proportion: well-behaved at
/// 0 and n successes (unlike the Wald interval), which is exactly the
/// regime a low-PER waterfall cell lives in.
Interval wilson(u64 errors, u64 trials, double confidence);

/// Integer-first accumulator for one cell.  Everything the stopping rule
/// and the checkpoint need is either an integer or a sum of per-trial
/// doubles folded in trial order — both bit-reproducible across runs,
/// worker counts and resume boundaries.
struct CellResult {
  u64 trials = 0;
  u64 bits = 0;
  u64 bitErrors = 0;
  u64 packetErrors = 0;  ///< packets with any bit error or lost
  u64 lostPackets = 0;   ///< detection failures (subset of packetErrors)
  u64 cycles = 0;        ///< summed simulated decode cycles
  double energyNj = 0.0; ///< summed per-trial decode energy (activity model)
  u64 discardedTrials = 0;  ///< decoded past the stop point and dropped
  std::string stopReason;   ///< "ci" | "errorBudget" | "maxTrials"
  bool done = false;

  bool operator==(const CellResult&) const = default;

  // Derived statistics — recomputed on demand (never accumulated), so a
  // checkpoint round-trip cannot drift them.
  double per() const;
  double ber() const;
  double energyPerBitNj() const;
  double avgCyclesPerPacket() const;
};

}  // namespace adres::campaign
