#include "campaign/trial_producer.hpp"

#include "common/check.hpp"

namespace adres::campaign {

TrialProducer::TrialProducer(TrialProducerConfig cfg) : cfg_(std::move(cfg)) {
  ADRES_CHECK(cfg_.producers >= 1, "need at least one trial producer");
  if (cfg_.producers > 1) {
    shards_.reserve(static_cast<std::size_t>(cfg_.producers));
    for (int i = 0; i < cfg_.producers; ++i)
      shards_.emplace_back([this] { shardMain(); });
  }
}

TrialProducer::~TrialProducer() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_.notify_all();
  for (std::thread& t : shards_) t.join();
}

void TrialProducer::generateOne(const CellSpec& cell, u32 cellTag, u64 trial,
                                platform::PacketFarm& farm,
                                std::vector<u8>& bits,
                                dsp::TrialScratch& scratch) {
  Rng txRng(cell.trialSeed(trial, CellSpec::kTxStream));
  dsp::ChannelConfig cc = cell.channel;
  cc.seed = cell.trialSeed(trial, CellSpec::kChannelStream);
  platform::RxJob job;
  job.id = trial;
  job.tag = cellTag;
  // Recycled waveform storage: the vectorized frontend writes in place, so
  // once the pool is warm the generate->submit->decode loop is closed.
  job.rx[0] = farm.acquireSampleBuffer();
  job.rx[1] = farm.acquireSampleBuffer();
  dsp::generateTrial(cell.modem, cc, txRng, bits, job.rx, scratch,
                     cfg_.frontend);
  farm.submit(std::move(job));
}

void TrialProducer::produceBatch(const CellSpec& cell, u32 cellTag,
                                 u64 firstTrial, u64 count,
                                 platform::PacketFarm& farm,
                                 std::vector<std::vector<u8>>& txBits) {
  txBits.resize(count);  // shrink keeps inner buffers; grow adds empties
  if (shards_.empty()) {
    for (u64 i = 0; i < count; ++i)
      generateOne(cell, cellTag, firstTrial + i, farm, txBits[i],
                  inlineScratch_);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    cell_ = &cell;
    tag_ = cellTag;
    first_ = firstTrial;
    count_ = count;
    farm_ = &farm;
    txBits_ = &txBits;
    nextIdx_.store(0, std::memory_order_relaxed);
    remaining_.store(count, std::memory_order_relaxed);
    ++batchGen_;
  }
  work_.notify_all();
  std::unique_lock<std::mutex> lk(mu_);
  // remaining_ == 0 alone is not enough: a shard may still sit between its
  // last generate and its final (over-)claim of nextIdx_, and the next
  // batch must not reset the claim counter under it — wait for every shard
  // to leave its claim loop.
  done_.wait(lk, [&] {
    return remaining_.load(std::memory_order_acquire) == 0 && inFlight_ == 0;
  });
}

void TrialProducer::shardMain() {
  dsp::TrialScratch scratch;  // per-shard working set, reused across trials
  u64 seenGen = 0;
  for (;;) {
    std::unique_lock<std::mutex> lk(mu_);
    work_.wait(lk, [&] { return shutdown_ || batchGen_ != seenGen; });
    if (shutdown_) return;
    seenGen = batchGen_;
    const CellSpec* cell = cell_;
    const u32 tag = tag_;
    const u64 first = first_;
    const u64 count = count_;
    platform::PacketFarm* farm = farm_;
    std::vector<std::vector<u8>>* txBits = txBits_;
    ++inFlight_;
    lk.unlock();
    for (;;) {
      const u64 i = nextIdx_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      generateOne(*cell, tag, first + i, *farm, (*txBits)[i], scratch);
      remaining_.fetch_sub(1, std::memory_order_acq_rel);
    }
    lk.lock();
    if (--inFlight_ == 0 &&
        remaining_.load(std::memory_order_acquire) == 0) {
      done_.notify_all();
    }
  }
}

}  // namespace adres::campaign
