// TrialProducer: sharded, counter-seeded trial generation feeding a
// PacketFarm (DESIGN.md §15).
//
// One cell batch used to be generated serially on the runner thread —
// at high worker counts the decode farm drained its queue faster than one
// thread could synthesize TX waveforms and push them through the channel,
// so workers idled between batches.  The producer shards a batch's trial
// indices over N persistent generator threads.  Because trial t's payload
// and channel seeds are pure functions of (spec, cell, t) and the farm
// folds outcomes in trial order, the shard assignment — which trials land
// on which producer, in which interleaving — cannot affect a single folded
// bit: campaign results and checkpoint bytes are identical for any
// producer count (tests/campaign/campaign_runner_test).
//
// Each shard owns a dsp::TrialScratch, so with the vectorized frontend the
// whole generation side is allocation-free in steady state; rx payload
// buffers come from the farm's recycling pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "campaign/spec.hpp"
#include "dsp/frontend.hpp"
#include "platform/packet_farm.hpp"

namespace adres::campaign {

struct TrialProducerConfig {
  /// Generator shards; 1 generates inline on the calling thread (no
  /// threads are spawned).
  int producers = 1;
  dsp::FrontendConfig frontend;
};

class TrialProducer {
 public:
  explicit TrialProducer(TrialProducerConfig cfg);
  ~TrialProducer();

  TrialProducer(const TrialProducer&) = delete;
  TrialProducer& operator=(const TrialProducer&) = delete;

  /// Generates trials [firstTrial, firstTrial + count) of `cell` and
  /// submits each as an RxJob (id = trial index, tag = cellTag) to `farm`;
  /// txBits is resized to `count` and slot i receives trial
  /// firstTrial + i's transmitted payload (inner capacity reused).  Blocks
  /// until the whole batch has been submitted.  Not reentrant: one batch
  /// at a time, from one calling thread.
  void produceBatch(const CellSpec& cell, u32 cellTag, u64 firstTrial,
                    u64 count, platform::PacketFarm& farm,
                    std::vector<std::vector<u8>>& txBits);

 private:
  void shardMain();
  void generateOne(const CellSpec& cell, u32 cellTag, u64 trial,
                   platform::PacketFarm& farm, std::vector<u8>& bits,
                   dsp::TrialScratch& scratch);

  TrialProducerConfig cfg_;
  dsp::TrialScratch inlineScratch_;  ///< the producers == 1 path

  std::mutex mu_;  ///< guards the batch descriptor, batchGen_, inFlight_
  std::condition_variable work_;  ///< produceBatch -> shards: new batch
  std::condition_variable done_;  ///< shards -> produceBatch: batch drained
  u64 batchGen_ = 0;              ///< bumped per batch; shards wake on change
  u64 inFlight_ = 0;  ///< shards currently inside the claim loop
  bool shutdown_ = false;
  const CellSpec* cell_ = nullptr;
  u32 tag_ = 0;
  u64 first_ = 0;
  u64 count_ = 0;
  platform::PacketFarm* farm_ = nullptr;
  std::vector<std::vector<u8>>* txBits_ = nullptr;
  /// Dynamic sharding: each shard claims the next unclaimed batch index.
  /// Reset only between batches, when inFlight_ == 0 guarantees no shard
  /// still holds a stale claim loop.
  std::atomic<u64> nextIdx_{0};
  std::atomic<u64> remaining_{0};  ///< trials not yet generated+submitted
  std::vector<std::thread> shards_;
};

}  // namespace adres::campaign
