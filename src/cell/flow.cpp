#include "cell/flow.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/hash.hpp"

namespace adres::cell {

const char* arrivalKindName(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kCbr:
      return "cbr";
  }
  return "?";
}

namespace {

u64 stableHash(const FlowClass& c) {
  u64 h = 0x61647265735F6663ull;  // "adres_fc"
  h = hashCombine(h, c.name.size());
  for (char ch : c.name) h = hashCombine(h, static_cast<u8>(ch));
  h = hashCombine(h, static_cast<u64>(c.users));
  h = hashCombine(h, static_cast<u64>(c.arrival));
  h = hashCombine(h, doubleBits(c.packetsPerSec));
  h = hashCombine(h, doubleBits(c.nearM));
  h = hashCombine(h, doubleBits(c.farM));
  h = hashCombine(h, doubleBits(c.speedMps));
  h = hashCombine(h, static_cast<u64>(c.taps));
  h = hashCombine(h, doubleBits(c.delaySpread));
  h = hashCombine(h, doubleBits(c.cfoPpm));
  h = hashCombine(h, doubleBits(c.deadlineUs));
  return h;
}

/// Independent per-flow streams derived from the scenario seed (kTxStream /
/// kChannelStream are per-packet; these label whole-flow draws).
constexpr u64 kArrivalStream = 0x10;
constexpr u64 kMobilityStream = 0x11;

Rng flowRng(const CellScenario& scenario, u32 flowId, u64 stream) {
  u64 h = mix64(scenario.seed ^ 0x63656C6C5F666C6Full);  // "cell_flo"
  h = hashCombine(h, flowId);
  h = hashCombine(h, stream);
  return Rng(h);
}

void validate(const CellScenario& scenario) {
  ADRES_CHECK(scenario.numServers >= 1, "cell: numServers must be >= 1");
  ADRES_CHECK(scenario.durationUs > 0, "cell: durationUs must be > 0");
  ADRES_CHECK(!scenario.classes.empty(), "cell: no flow classes");
  ADRES_CHECK(scenario.submitBatch >= 1, "cell: submitBatch must be >= 1");
  for (const FlowClass& c : scenario.classes) {
    ADRES_CHECK(c.users >= 1, "cell: class must have >= 1 user");
    ADRES_CHECK(c.packetsPerSec > 0, "cell: packetsPerSec must be > 0");
    ADRES_CHECK(c.nearM > 0 && c.farM >= c.nearM, "cell: bad near/far radii");
    ADRES_CHECK(c.deadlineUs > 0, "cell: deadlineUs must be > 0");
  }
}

}  // namespace

u64 stableHash(const CellScenario& scenario) {
  u64 h = 0x61647265735F636Cull;  // "adres_cl"
  h = hashCombine(h, scenario.seed);
  h = hashCombine(h, dsp::stableHash(scenario.modem));
  h = hashCombine(h, static_cast<u64>(scenario.numServers));
  h = hashCombine(h, doubleBits(scenario.durationUs));
  h = hashCombine(h, scenario.classes.size());
  for (const FlowClass& c : scenario.classes) h = hashCombine(h, stableHash(c));
  h = hashCombine(h, doubleBits(scenario.refDistanceM));
  h = hashCombine(h, doubleBits(scenario.snrAtRefDb));
  h = hashCombine(h, doubleBits(scenario.pathLossExp));
  h = hashCombine(h, doubleBits(scenario.minSnrDb));
  return h;
}

u64 packetSeed(const CellScenario& scenario, u32 flowId, u32 seq, u64 stream) {
  u64 h = mix64(scenario.seed ^ 0x63656C6C5F706B74ull);  // "cell_pkt"
  h = hashCombine(h, flowId);
  h = hashCombine(h, seq);
  return hashCombine(h, stream);
}

std::vector<UserFlow> expandFlows(const CellScenario& scenario) {
  validate(scenario);
  std::vector<UserFlow> flows;
  u32 id = 0;
  for (size_t ci = 0; ci < scenario.classes.size(); ++ci) {
    const FlowClass& c = scenario.classes[ci];
    for (int u = 0; u < c.users; ++u, ++id) {
      UserFlow f;
      f.id = id;
      f.classIdx = static_cast<int>(ci);
      // Log-spaced radii: equal multiplicative steps cover the near/far
      // band evenly in dB, so a class's users span the SNR range instead of
      // clustering at the cell edge (area-uniform placement would).
      const double frac = (u + 0.5) / c.users;
      f.distanceM = c.nearM * std::pow(c.farM / c.nearM, frac);
      if (c.speedMps != 0.0) {
        Rng rng = flowRng(scenario, id, kMobilityStream);
        f.driftMps = rng.bit() ? std::abs(c.speedMps) : -std::abs(c.speedMps);
      }
      f.deadlineUs = c.deadlineUs;
      flows.push_back(f);
    }
  }
  return flows;
}

double flowDistanceAt(const CellScenario& scenario, const UserFlow& flow,
                      double atUs) {
  const FlowClass& c = scenario.classes[static_cast<size_t>(flow.classIdx)];
  const double d = flow.distanceM + flow.driftMps * (atUs * 1e-6);
  return std::clamp(d, c.nearM * 0.5, c.farM * 2.0);
}

double flowSnrDbAt(const CellScenario& scenario, const UserFlow& flow,
                   double atUs) {
  const double d = flowDistanceAt(scenario, flow, atUs);
  const double snr = scenario.snrAtRefDb -
                     10.0 * scenario.pathLossExp *
                         std::log10(d / scenario.refDistanceM);
  return std::clamp(snr, scenario.minSnrDb, scenario.snrAtRefDb);
}

std::vector<PacketEvent> buildFlowSchedule(const CellScenario& scenario,
                                           const UserFlow& flow) {
  const FlowClass& c = scenario.classes[static_cast<size_t>(flow.classIdx)];
  const double meanGapUs = 1e6 / c.packetsPerSec;
  Rng rng = flowRng(scenario, flow.id, kArrivalStream);
  std::vector<PacketEvent> events;
  u32 seq = 0;
  if (c.arrival == ArrivalKind::kPoisson) {
    double t = 0.0;
    for (;;) {
      // Exponential gap: -mean * ln(U), U in (0, 1].
      double u = 1.0 - rng.uniform();
      t += -meanGapUs * std::log(u);
      if (t >= scenario.durationUs) break;
      events.push_back({flow.id, seq++, t});
    }
  } else {
    // CBR: fixed period with a random phase so same-rate flows don't all
    // fire at t=0 in lockstep.
    const double phase = rng.uniform() * meanGapUs;
    for (double t = phase; t < scenario.durationUs; t += meanGapUs) {
      events.push_back({flow.id, seq++, t});
    }
  }
  return events;
}

std::vector<PacketEvent> buildSchedule(const CellScenario& scenario,
                                       const std::vector<UserFlow>& flows) {
  std::vector<PacketEvent> all;
  for (const UserFlow& f : flows) {
    std::vector<PacketEvent> ev = buildFlowSchedule(scenario, f);
    all.insert(all.end(), ev.begin(), ev.end());
  }
  std::sort(all.begin(), all.end(),
            [](const PacketEvent& a, const PacketEvent& b) {
              if (a.arrivalUs != b.arrivalUs) return a.arrivalUs < b.arrivalUs;
              if (a.flowId != b.flowId) return a.flowId < b.flowId;
              return a.seq < b.seq;
            });
  return all;
}

dsp::ChannelConfig packetChannel(const CellScenario& scenario,
                                 const UserFlow& flow, const PacketEvent& ev) {
  const FlowClass& c = scenario.classes[static_cast<size_t>(flow.classIdx)];
  dsp::ChannelConfig cfg;
  cfg.taps = c.taps;
  cfg.delaySpread = c.delaySpread;
  cfg.cfoPpm = c.cfoPpm;
  cfg.snrDb = flowSnrDbAt(scenario, flow, ev.arrivalUs);
  cfg.seed = packetSeed(scenario, ev.flowId, ev.seq, kChannelStream);
  cfg.flat = false;
  return cfg;
}

}  // namespace adres::cell
