// Multi-user cell traffic model (DESIGN.md §17): the scenario layer that
// turns the packet farm from "decode N independent packets" into "serve a
// cell of users", the axis the many-core SDR-RAN and vRAN platform papers
// evaluate basestations on (sustained users/cell at a deadline-miss target,
// not single-packet throughput).
//
// A CellScenario is a declarative description: user classes (count, arrival
// process, offered rate, geometry, mobility, frame deadline) over one modem
// configuration and a simulated pool of `numServers` baseband processors at
// the paper's 400 MHz clock.  expandFlows() instantiates per-user flows
// with distance-derived ChannelConfigs; buildSchedule() generates the full
// packet arrival timeline.  All randomness is counter-seeded with the
// campaign engine's SplitMix64 / Rng::fork discipline: flow f's arrival
// stream and packet n's payload/channel seeds are pure functions of
// (scenario seed, flow id, n, stream), so a scenario is bit-reproducible
// across farm worker counts, host machines and runs.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/processor.hpp"
#include "dsp/channel.hpp"
#include "dsp/modem.hpp"

namespace adres::cell {

/// Simulated microseconds one decode occupies a baseband processor at the
/// paper's clock (core/processor.hpp kClockMHz, 400 MHz worst case).
inline constexpr double cyclesToUs(u64 cycles) {
  return static_cast<double>(cycles) / kClockMHz;
}

/// Simulated-cycle budget equivalent of a time budget at the paper's clock.
inline constexpr u64 usToCycles(double us) {
  return static_cast<u64>(us * kClockMHz) + 1;  // round up: never under-budget
}

enum class ArrivalKind : u8 {
  kPoisson,  ///< exponential inter-arrival gaps at `packetsPerSec`
  kCbr,      ///< constant bit rate: fixed period, per-flow random phase
};

const char* arrivalKindName(ArrivalKind k);

/// One user class: a population of statistically identical flows.
struct FlowClass {
  std::string name = "ue";
  int users = 1;  ///< flows instantiated from this class
  ArrivalKind arrival = ArrivalKind::kPoisson;
  double packetsPerSec = 200.0;  ///< offered rate per user, simulated time
  /// Users are placed on log-spaced radii in [nearM, farM] (user u of n at
  /// nearM * (farM/nearM)^((u+0.5)/n)); the path-loss map in the scenario
  /// turns radius into per-user SNR.
  double nearM = 10.0;
  double farM = 120.0;
  /// Radial mobility: |speedMps| meters/second of drift; each flow draws an
  /// inward/outward direction from its mobility stream, so a long scenario
  /// sees per-user SNR walk between the near and far edges.
  double speedMps = 0.0;
  /// Channel impairments shared by the class (per-packet realizations come
  /// from the packet's channel seed).  Defaults are mild (short multipath,
  /// moderate CFO) so an unloaded cell mostly delivers; crank them to trade
  /// channel errors against deadline misses.
  int taps = 2;
  double delaySpread = 0.3;
  double cfoPpm = 6.0;
  /// Frame budget: a packet whose enqueue-to-decode-complete latency on the
  /// simulated 400 MHz pool exceeds this is a deadline miss and is dropped.
  double deadlineUs = 4000.0;

  bool operator==(const FlowClass&) const = default;
};

/// A cell full of users sharing one modem configuration and a simulated
/// pool of baseband processors.
struct CellScenario {
  u64 seed = 1;  ///< master seed: one number reproduces the whole scenario
  dsp::ModemConfig modem;
  /// Simulated 400 MHz baseband processors serving the cell (the axis
  /// bench_cell sweeps).  Independent of the host farm's worker count,
  /// which only parallelizes the cycle-accurate decodes.
  int numServers = 1;
  double durationUs = 50'000.0;  ///< arrival horizon (simulated µs)
  std::vector<FlowClass> classes{FlowClass{}};
  /// Log-distance path loss: snrDb(d) = snrAtRefDb - 10*pathLossExp*
  /// log10(d / refDistanceM), clamped to [minSnrDb, snrAtRefDb].
  double refDistanceM = 10.0;
  double snrAtRefDb = 38.0;
  double pathLossExp = 2.2;
  double minSnrDb = 4.0;
  /// Packets submitted to the farm per submit/collect round (bounds host
  /// memory; no effect on results).
  int submitBatch = 32;

  bool operator==(const CellScenario&) const = default;
};

/// Stable (cross-run, cross-platform) hash over every scenario field —
/// the adres.cell.v1 summary is keyed by it, so two distinct scenarios
/// must not silently alias.
u64 stableHash(const CellScenario& scenario);

/// One instantiated user flow.
struct UserFlow {
  u32 id = 0;        ///< dense flow index; RxJob::tag carries it
  int classIdx = 0;  ///< index into CellScenario::classes
  double distanceM = 0.0;   ///< initial radius
  double driftMps = 0.0;    ///< signed radial speed (sign from mobility rng)
  double deadlineUs = 0.0;  ///< frame budget (copied from the class)
};

/// Distance of `flow` at simulated time `atUs` (drift clamped to the
/// class's [nearM/2, 2*farM] band so SNR never walks off to +-inf).
double flowDistanceAt(const CellScenario& scenario, const UserFlow& flow,
                      double atUs);

/// Per-packet SNR of `flow` at simulated time `atUs` through the scenario's
/// path-loss map.  Strictly decreasing in distance.
double flowSnrDbAt(const CellScenario& scenario, const UserFlow& flow,
                   double atUs);

/// One scheduled packet arrival.
struct PacketEvent {
  u32 flowId = 0;
  u32 seq = 0;           ///< per-flow packet ordinal
  double arrivalUs = 0;  ///< simulated enqueue time
};

/// The independent per-packet seed streams (campaign CellSpec::trialSeed
/// discipline: consumers within one packet never share a stream).
inline constexpr u64 kTxStream = 0;
inline constexpr u64 kChannelStream = 1;

/// Counter-based per-packet seed: a pure function of (scenario seed, flow,
/// seq, stream) — no draw ordering anywhere can shift it.
u64 packetSeed(const CellScenario& scenario, u32 flowId, u32 seq, u64 stream);

/// Instantiates every class's users as flows (dense ids in class order).
std::vector<UserFlow> expandFlows(const CellScenario& scenario);

/// Generates every flow's arrivals over [0, durationUs) and merges them
/// sorted by (arrivalUs, flowId, seq) — a deterministic total order, so the
/// submit sequence (and thus job ids) is a pure function of the scenario.
/// Each flow's arrival stream is forked off the scenario seed by flow id,
/// independent of every other flow's.
std::vector<PacketEvent> buildSchedule(const CellScenario& scenario,
                                       const std::vector<UserFlow>& flows);

/// Arrivals of a single flow over [0, durationUs) (buildSchedule merges
/// these; exposed so tests can pin per-flow independence).
std::vector<PacketEvent> buildFlowSchedule(const CellScenario& scenario,
                                           const UserFlow& flow);

/// Per-packet ChannelConfig for `ev`: class impairments, the flow's SNR at
/// the arrival instant, and the packet's counter-derived channel seed.
dsp::ChannelConfig packetChannel(const CellScenario& scenario,
                                 const UserFlow& flow, const PacketEvent& ev);

}  // namespace adres::cell
