#include "cell/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/check.hpp"

namespace adres::cell {
namespace {

std::string hex64(u64 v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string fmtDouble(double d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return buf;
}

u64 relaxed(const std::atomic<u64>& a) {
  return a.load(std::memory_order_relaxed);
}

}  // namespace

CellScheduler::CellScheduler(CellScenario scenario)
    : scenario_(std::move(scenario)) {
  flows_ = expandFlows(scenario_);
  schedule_ = buildSchedule(scenario_, flows_);
  flowStats_.reserve(flows_.size());
  flowSnr0Db_.reserve(flows_.size());
  for (const UserFlow& f : flows_) {
    flowStats_.push_back(std::make_unique<FlowStats>());
    flowSnr0Db_.push_back(flowSnrDbAt(scenario_, f, 0.0));
  }
  classLatencyNs_.reserve(scenario_.classes.size());
  for (std::size_t i = 0; i < scenario_.classes.size(); ++i)
    classLatencyNs_.push_back(std::make_unique<obs::LogLinearHistogram>());
  serverFreeUs_.assign(static_cast<std::size_t>(scenario_.numServers), 0.0);
  serverBusyUs_.assign(static_cast<std::size_t>(scenario_.numServers), 0.0);
}

CellTotals CellScheduler::run(platform::PacketFarm& farm) {
  ADRES_CHECK(!ran_, "CellScheduler::run is one-shot");
  ran_ = true;
  ADRES_CHECK(farm.config().ordered,
              "cell scheduler needs an ordered farm (DES folds in id order)");
  ADRES_CHECK(farm.config().modem == scenario_.modem,
              "farm modem != scenario modem");

  const std::size_t batch = static_cast<std::size_t>(scenario_.submitBatch);
  std::vector<std::vector<u8>> golden(batch);
  std::vector<platform::RxOutcome> outs;
  std::size_t next = 0;
  while (next < schedule_.size()) {
    const std::size_t n = std::min(batch, schedule_.size() - next);
    for (std::size_t i = 0; i < n; ++i) {
      const PacketEvent& ev = schedule_[next + i];
      const UserFlow& flow = flows_[ev.flowId];
      // Independent counter-derived streams: the payload and the channel
      // realization are pure functions of (seed, flow, seq) — no draw
      // anywhere (including other flows') can shift them.
      Rng txRng(packetSeed(scenario_, ev.flowId, ev.seq, kTxStream));
      dsp::TxPacket pkt = dsp::transmit(scenario_.modem, txRng);
      dsp::MimoChannel chan(packetChannel(scenario_, flow, ev));
      platform::RxJob job;
      job.id = next + i;  // schedule index: ordered collect == fold order
      job.tag = ev.flowId;
      job.rx = chan.run(pkt.waveform);
      // The deadline in cycles: a decode that alone would blow the frame
      // budget stops at kMaxCycles instead of simulating on — the watchdog
      // budget path enforces the deadline inside the decode.
      job.maxCycles = usToCycles(flow.deadlineUs);
      golden[i] = std::move(pkt.bits);
      farm.submit(std::move(job));
    }
    farm.collectInto(outs);
    ADRES_CHECK(outs.size() == n, "cell: short collect");
    for (std::size_t i = 0; i < n; ++i) {
      ADRES_CHECK(outs[i].id == next + i, "cell: outcome out of order");
      fold(schedule_[next + i], golden[i], outs[i]);
    }
    farm.recycleOutcomes(outs);
    next += n;
  }

  totals_.makespanUs = 0.0;
  double busy = 0.0;
  for (std::size_t s = 0; s < serverFreeUs_.size(); ++s) {
    totals_.makespanUs = std::max(totals_.makespanUs, serverFreeUs_[s]);
    busy += serverBusyUs_[s];
  }
  const double span =
      std::max(totals_.makespanUs, scenario_.durationUs) *
      static_cast<double>(scenario_.numServers);
  totals_.utilization = span > 0 ? busy / span : 0.0;
  return totals_;
}

void CellScheduler::fold(const PacketEvent& ev, const std::vector<u8>& golden,
                         const platform::RxOutcome& out) {
  const UserFlow& flow = flows_[ev.flowId];
  FlowStats& fs = *flowStats_[ev.flowId];
  obs::LogLinearHistogram& classHist =
      *classLatencyNs_[static_cast<std::size_t>(flow.classIdx)];
  const double arrival = ev.arrivalUs;
  const double deadline = arrival + flow.deadlineUs;

  // Earliest-free simulated server, lowest index on ties (deterministic).
  std::size_t s = 0;
  for (std::size_t i = 1; i < serverFreeUs_.size(); ++i)
    if (serverFreeUs_[i] < serverFreeUs_[s]) s = i;
  const double start = std::max(arrival, serverFreeUs_[s]);

  fs.offered.fetch_add(1, std::memory_order_relaxed);
  ++totals_.offered;

  double latencyUs = 0.0;
  if (start >= deadline) {
    // Every server is busy past the frame budget: drop without service.
    // The recorded sample is the give-up wait (>= deadline), so the
    // latency histogram's countAbove(deadline) sees the drop too.
    latencyUs = start - arrival;
    fs.missedExpired.fetch_add(1, std::memory_order_relaxed);
    ++totals_.missedExpired;
  } else {
    const double serviceUs = cyclesToUs(out.result.cycles);
    const double completion = start + serviceUs;
    serverFreeUs_[s] = completion;
    serverBusyUs_[s] += serviceUs;
    latencyUs = completion - arrival;
    if (out.result.stop == StopReason::kMaxCycles) {
      // The per-job cycle budget fired: by construction service alone
      // >= the frame budget, so this is a miss however long the wait was.
      fs.missedOverrun.fetch_add(1, std::memory_order_relaxed);
      ++totals_.missedOverrun;
    } else if (completion > deadline) {
      fs.missedLate.fetch_add(1, std::memory_order_relaxed);
      ++totals_.missedLate;
    } else if (!out.result.halted() || !out.result.detected ||
               out.result.bits.size() != golden.size()) {
      fs.errors.fetch_add(1, std::memory_order_relaxed);
      ++totals_.errors;
    } else {
      const int be = dsp::bitErrors(out.result.bits, golden);
      fs.bitErrors.fetch_add(static_cast<u64>(be), std::memory_order_relaxed);
      if (be != 0) {
        fs.errors.fetch_add(1, std::memory_order_relaxed);
        ++totals_.errors;
      } else {
        fs.delivered.fetch_add(1, std::memory_order_relaxed);
        fs.goodputBits.fetch_add(golden.size(), std::memory_order_relaxed);
        goodputBits_.fetch_add(golden.size(), std::memory_order_relaxed);
        ++totals_.delivered;
      }
    }
  }

  const u64 latencyNs = static_cast<u64>(std::llround(latencyUs * 1000.0));
  fs.latencySumNs.fetch_add(latencyNs, std::memory_order_relaxed);
  fs.latencyNs.record(latencyNs);
  classHist.record(latencyNs);
  folded_.fetch_add(1, std::memory_order_relaxed);
  simTimeNs_.store(static_cast<u64>(std::llround(arrival * 1000.0)),
                   std::memory_order_relaxed);
}

obs::HistogramSnapshot CellScheduler::latencySnapshot() const {
  obs::HistogramSnapshot merged;
  for (const auto& fs : flowStats_) merged.merge(fs->latencyNs.snapshot());
  return merged;
}

obs::HistogramSnapshot CellScheduler::classLatencySnapshot(int classIdx) const {
  return classLatencyNs_[static_cast<std::size_t>(classIdx)]->snapshot();
}

void CellScheduler::registerMetrics(obs::MetricsRegistry& reg) const {
  reg.addGauge("adres_cell_servers", "simulated 400 MHz baseband processors",
               [this] { return static_cast<double>(scenario_.numServers); });
  reg.addGauge("adres_cell_flows", "instantiated user flows",
               [this] { return static_cast<double>(flows_.size()); });
  reg.addGauge("adres_cell_sim_time_us",
               "simulated time reached by the DES fold",
               [this] { return simTimeUs(); });
  reg.addCounter("adres_cell_packets_total", "packets folded through the DES",
                 [this] { return static_cast<double>(packetsFolded()); });
  reg.addCounter("adres_cell_delivered_total",
                 "packets decoded bit-exact within their frame budget",
                 [this] {
                   u64 n = 0;
                   for (const auto& fs : flowStats_) n += relaxed(fs->delivered);
                   return static_cast<double>(n);
                 });
  reg.addCounter("adres_cell_errors_total",
                 "packets on time but decode-failed (channel errors)",
                 [this] {
                   u64 n = 0;
                   for (const auto& fs : flowStats_) n += relaxed(fs->errors);
                   return static_cast<double>(n);
                 });
  reg.addCounter("adres_cell_deadline_miss_total",
                 "packets dropped for missing their frame budget "
                 "(late + expired + budget overruns)",
                 [this] {
                   u64 n = 0;
                   for (const auto& fs : flowStats_) n += fs->missed();
                   return static_cast<double>(n);
                 });
  reg.addGauge("adres_cell_deadline_miss_rate",
               "deadline misses / offered packets",
               [this] {
                 u64 off = 0, miss = 0;
                 for (const auto& fs : flowStats_) {
                   off += relaxed(fs->offered);
                   miss += fs->missed();
                 }
                 return off ? static_cast<double>(miss) /
                                  static_cast<double>(off)
                            : 0.0;
               });
  reg.addGauge("adres_cell_goodput_mbps",
               "delivered payload bits / scenario duration",
               [this] {
                 return scenario_.durationUs > 0
                            ? static_cast<double>(goodputBits()) /
                                  scenario_.durationUs
                            : 0.0;
               });
  // The SLO engine's deadline_miss_rate(us) source: simulated latency in
  // ns, scaled to µs at export — preferred over the farm's host-latency
  // summary whenever cell packets have been recorded (obs/slo.cpp).
  reg.addSummary("adres_cell_latency_us",
                 "simulated enqueue-to-decode-complete latency",
                 1e-3 /* ns -> us */, [this] { return latencySnapshot(); });
  for (std::size_t c = 0; c < scenario_.classes.size(); ++c) {
    reg.addSummary("adres_cell_class_latency_us",
                   "simulated latency by flow class", 1e-3,
                   [this, c] { return classLatencySnapshot(static_cast<int>(c)); },
                   obs::Labels{{"class", scenario_.classes[c].name}});
  }
  // Per-flow QoS families: the key set is the (runtime-sized) flow table.
  const auto flowLabels = [this](u32 id) {
    return obs::Labels{
        {"flow", std::to_string(id)},
        {"class", scenario_.classes[static_cast<std::size_t>(
                                        flows_[id].classIdx)]
                      .name}};
  };
  reg.addCounterFamily(
      "adres_cell_flow_offered", "packets offered by flow", [this, flowLabels] {
        std::vector<std::pair<obs::Labels, double>> out;
        for (const UserFlow& f : flows_)
          out.push_back({flowLabels(f.id),
                         static_cast<double>(relaxed(flowStats_[f.id]->offered))});
        return out;
      });
  reg.addCounterFamily(
      "adres_cell_flow_missed", "deadline misses by flow", [this, flowLabels] {
        std::vector<std::pair<obs::Labels, double>> out;
        for (const UserFlow& f : flows_)
          out.push_back({flowLabels(f.id),
                         static_cast<double>(flowStats_[f.id]->missed())});
        return out;
      });
  reg.addGaugeFamily(
      "adres_cell_flow_miss_rate", "deadline-miss fraction by flow",
      [this, flowLabels] {
        std::vector<std::pair<obs::Labels, double>> out;
        for (const UserFlow& f : flows_)
          out.push_back({flowLabels(f.id), flowStats_[f.id]->missRate()});
        return out;
      });
  reg.addGaugeFamily(
      "adres_cell_flow_goodput_kbps", "delivered payload rate by flow",
      [this, flowLabels] {
        std::vector<std::pair<obs::Labels, double>> out;
        for (const UserFlow& f : flows_)
          out.push_back(
              {flowLabels(f.id),
               scenario_.durationUs > 0
                   ? static_cast<double>(
                         relaxed(flowStats_[f.id]->goodputBits)) *
                         1e3 / scenario_.durationUs
                   : 0.0});
        return out;
      });
  reg.addGaugeFamily(
      "adres_cell_flow_snr_db", "per-flow SNR at scenario start",
      [this, flowLabels] {
        std::vector<std::pair<obs::Labels, double>> out;
        for (const UserFlow& f : flows_)
          out.push_back({flowLabels(f.id), flowSnr0Db_[f.id]});
        return out;
      });
}

void CellScheduler::writeSummary(std::ostream& os) const {
  const obs::HistogramSnapshot cellLat = latencySnapshot();
  os << "{\n";
  os << "  \"schema\": \"adres.cell.v1\",\n";
  os << "  \"scenarioHash\": \"" << hex64(stableHash(scenario_)) << "\",\n";
  os << "  \"seed\": " << scenario_.seed << ",\n";
  os << "  \"servers\": " << scenario_.numServers << ",\n";
  os << "  \"durationUs\": " << fmtDouble(scenario_.durationUs) << ",\n";
  os << "  \"mod\": " << static_cast<int>(scenario_.modem.mod)
     << ", \"numSymbols\": " << scenario_.modem.numSymbols << ",\n";
  os << "  \"flows\": " << flows_.size()
     << ", \"packets\": " << schedule_.size() << ",\n";
  os << "  \"offered\": " << totals_.offered
     << ", \"delivered\": " << totals_.delivered
     << ", \"errors\": " << totals_.errors
     << ", \"missedLate\": " << totals_.missedLate
     << ", \"missedExpired\": " << totals_.missedExpired
     << ", \"missedOverrun\": " << totals_.missedOverrun << ",\n";
  os << "  \"missRate\": " << fmtDouble(totals_.missRate())
     << ", \"goodputMbps\": "
     << fmtDouble(totals_.goodputMbps(scenario_, goodputBits()))
     << ", \"makespanUs\": " << fmtDouble(totals_.makespanUs)
     << ", \"utilization\": " << fmtDouble(totals_.utilization) << ",\n";
  os << "  \"latencyP50Us\": " << fmtDouble(cellLat.quantile(0.5) * 1e-3)
     << ", \"latencyP99Us\": " << fmtDouble(cellLat.quantile(0.99) * 1e-3)
     << ",\n";
  os << "  \"perFlow\": [";
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const UserFlow& f = flows_[i];
    const FlowStats& fs = *flowStats_[i];
    const obs::HistogramSnapshot lat = fs.latencyNs.snapshot();
    if (i) os << ",";
    os << "\n    {\"flow\": " << f.id << ", \"class\": \""
       << scenario_.classes[static_cast<std::size_t>(f.classIdx)].name
       << "\", \"distanceM\": " << fmtDouble(f.distanceM)
       << ", \"snrDb\": " << fmtDouble(flowSnr0Db_[i])
       << ", \"deadlineUs\": " << fmtDouble(f.deadlineUs) << ",\n"
       << "     \"offered\": " << relaxed(fs.offered)
       << ", \"delivered\": " << relaxed(fs.delivered)
       << ", \"errors\": " << relaxed(fs.errors)
       << ", \"missedLate\": " << relaxed(fs.missedLate)
       << ", \"missedExpired\": " << relaxed(fs.missedExpired)
       << ", \"missedOverrun\": " << relaxed(fs.missedOverrun)
       << ", \"bitErrors\": " << relaxed(fs.bitErrors) << ",\n"
       << "     \"missRate\": " << fmtDouble(fs.missRate())
       << ", \"goodputBits\": " << relaxed(fs.goodputBits)
       << ", \"latencySumNs\": " << relaxed(fs.latencySumNs)
       << ", \"latencyP50Us\": " << fmtDouble(lat.quantile(0.5) * 1e-3)
       << ", \"latencyP99Us\": " << fmtDouble(lat.quantile(0.99) * 1e-3)
       << "}";
  }
  os << "\n  ]\n}\n";
}

void CellScheduler::writeSummaryFile(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    ADRES_CHECK(os.good(), "cannot open cell summary tmp file");
    writeSummary(os);
    ADRES_CHECK(os.good(), "cell summary write failed");
  }
  ADRES_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
              "cell summary rename failed");
}

bool CellScheduler::selfCheck(std::string* why) const {
  const auto fail = [&](const std::string& reason) {
    if (why) *why = reason;
    return false;
  };
  u64 offered = 0, delivered = 0, errors = 0;
  u64 late = 0, expired = 0, overrun = 0, histCount = 0;
  for (std::size_t i = 0; i < flowStats_.size(); ++i) {
    const FlowStats& fs = *flowStats_[i];
    const u64 off = relaxed(fs.offered);
    const u64 parts = relaxed(fs.delivered) + relaxed(fs.errors) +
                      relaxed(fs.missedLate) + relaxed(fs.missedExpired) +
                      relaxed(fs.missedOverrun);
    if (off != parts)
      return fail("flow " + std::to_string(i) +
                  ": offered != delivered+errors+missed (" +
                  std::to_string(off) + " vs " + std::to_string(parts) + ")");
    if (fs.latencyNs.count() != off)
      return fail("flow " + std::to_string(i) +
                  ": latency samples != offered");
    offered += off;
    delivered += relaxed(fs.delivered);
    errors += relaxed(fs.errors);
    late += relaxed(fs.missedLate);
    expired += relaxed(fs.missedExpired);
    overrun += relaxed(fs.missedOverrun);
    histCount += fs.latencyNs.count();
  }
  if (offered != totals_.offered || delivered != totals_.delivered ||
      errors != totals_.errors || late != totals_.missedLate ||
      expired != totals_.missedExpired || overrun != totals_.missedOverrun)
    return fail("flow table does not sum to cell totals");
  if (ran_ && offered != schedule_.size())
    return fail("offered != schedule size");
  if (histCount != offered) return fail("latency samples != offered");
  return true;
}

}  // namespace adres::cell
