// CellScheduler: dispatches a CellScenario's packet schedule onto a
// PacketFarm and folds the outcomes through a deterministic discrete-event
// simulation of `numServers` baseband processors at the paper's 400 MHz
// clock — turning cycle-accurate per-packet decodes into cell-level QoS:
// per-flow latency distributions, goodput, and deadline-miss rates.
//
// Two distinct "worker" notions, deliberately decoupled:
//   * scenario.numServers — SIMULATED processors.  Queueing, service times
//     (decode cycles / 400 MHz), deadlines and every reported statistic
//     live on this axis; bench_cell sweeps it.
//   * farm numWorkers — HOST threads that parallelize the cycle-accurate
//     decodes.  Affects wall-clock only: with the farm in ordered mode each
//     decode is a deterministic function of the waveform, so the DES fold
//     (job-id order) produces byte-identical summaries for any worker
//     count — the property the determinism self-checks assert.
//
// Deadline semantics: packet latency is enqueue-to-decode-complete in
// simulated time (queue wait for a free server + decode cycles at 400 MHz).
//   expired — every server stays busy past the deadline: dropped without
//             service (the admission-control drop).
//   overrun — the decode's own cycle budget (deadline in cycles, carried
//             per-job via RxJob::maxCycles) is exhausted: the decode stops
//             with StopReason::kMaxCycles and flows through the watchdog's
//             budget path (kBudgetExhausted health events) — the cell layer
//             reuses the farm's cancel machinery instead of inventing one.
//   late    — served to completion, but past the deadline.
// All three are misses and drops.  On-time packets split into delivered
// (bit-exact payload) and errors (channel defeated the decoder).  Every
// packet records one latency sample (give-up wait for expired packets), so
// histogram count == offered — the accounting identity selfCheck() asserts
// and Histogram::countAbove-based SLO miss rates approximate.
#pragma once

#include <atomic>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "cell/flow.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "platform/packet_farm.hpp"

namespace adres::cell {

/// Per-flow QoS accounting.  Counters are atomics: the collector thread
/// folds, metrics scrapes read concurrently.
struct FlowStats {
  std::atomic<u64> offered{0};
  std::atomic<u64> delivered{0};  ///< on time, payload bit-exact
  std::atomic<u64> errors{0};     ///< on time, decode failed / bits wrong
  std::atomic<u64> missedLate{0};
  std::atomic<u64> missedExpired{0};
  std::atomic<u64> missedOverrun{0};
  std::atomic<u64> bitErrors{0};   ///< across comparable decodes
  std::atomic<u64> goodputBits{0};  ///< delivered payload bits
  std::atomic<u64> latencySumNs{0};
  obs::LogLinearHistogram latencyNs;  ///< simulated latency, ns

  u64 missed() const {
    return missedLate.load(std::memory_order_relaxed) +
           missedExpired.load(std::memory_order_relaxed) +
           missedOverrun.load(std::memory_order_relaxed);
  }
  double missRate() const {
    const u64 off = offered.load(std::memory_order_relaxed);
    return off ? static_cast<double>(missed()) / static_cast<double>(off) : 0.0;
  }
};

/// Cell-wide totals returned by run() (simulated quantities only — host
/// timing stays out so summaries are byte-stable).
struct CellTotals {
  u64 offered = 0;
  u64 delivered = 0;
  u64 errors = 0;
  u64 missedLate = 0;
  u64 missedExpired = 0;
  u64 missedOverrun = 0;
  double makespanUs = 0.0;     ///< last simulated service completion
  double utilization = 0.0;    ///< mean server busy fraction over makespan

  u64 missed() const { return missedLate + missedExpired + missedOverrun; }
  double missRate() const {
    return offered ? static_cast<double>(missed()) / static_cast<double>(offered)
                   : 0.0;
  }
  double goodputMbps(const CellScenario& s, u64 goodputBits) const {
    return s.durationUs > 0
               ? static_cast<double>(goodputBits) / s.durationUs  // bits/µs
               : 0.0;
  }
};

class CellScheduler {
 public:
  explicit CellScheduler(CellScenario scenario);

  /// Drives the full schedule through `farm` (which must be in ordered mode
  /// with the scenario's modem) and folds outcomes through the server DES.
  /// Callable once per scheduler.  The farm is left running (caller owns
  /// finish()); a farm may serve several schedulers sequentially.
  CellTotals run(platform::PacketFarm& farm);

  const CellScenario& scenario() const { return scenario_; }
  const std::vector<UserFlow>& flows() const { return flows_; }
  const std::vector<PacketEvent>& schedule() const { return schedule_; }
  const FlowStats& flowStats(u32 flowId) const { return *flowStats_[flowId]; }
  const CellTotals& totals() const { return totals_; }
  u64 goodputBits() const { return goodputBits_.load(std::memory_order_relaxed); }

  /// Merged simulated-latency histogram across every flow (the
  /// adres_cell_latency_us summary source; ns raw, 1e-3 scale to µs).
  obs::HistogramSnapshot latencySnapshot() const;
  /// Simulated latency histogram of one class.
  obs::HistogramSnapshot classLatencySnapshot(int classIdx) const;

  /// Live progress: packets folded / simulated time reached (µs).
  u64 packetsFolded() const { return folded_.load(std::memory_order_relaxed); }
  double simTimeUs() const {
    return static_cast<double>(simTimeNs_.load(std::memory_order_relaxed)) *
           1e-3;
  }

  /// Registers every cell series on `reg`: the adres_cell_latency_us
  /// summary the SLO engine's deadline_miss_rate(us) prefers, per-class
  /// latency summaries, cell counters/gauges, and the per-flow QoS families
  /// (offered/missed/miss-rate/goodput/SNR by flow label).  The scheduler
  /// must outlive `reg`, or reg.clear() must run first.
  void registerMetrics(obs::MetricsRegistry& reg) const;

  /// The adres.cell.v1 summary: scenario echo + hash, cell totals, and the
  /// full per-flow QoS table.  Simulated quantities only, %.17g doubles —
  /// two runs of the same scenario must produce identical bytes whatever
  /// the farm's worker count (the determinism self-checks byte-compare it).
  void writeSummary(std::ostream& os) const;
  /// writeSummary to `path` atomically (tmp + rename).
  void writeSummaryFile(const std::string& path) const;

  /// The accounting identities every run must satisfy: per flow and
  /// cell-wide, offered == delivered + errors + late + expired + overrun,
  /// histogram count == offered, and the flow table sums to the totals.
  /// Returns false (with a reason on `why`) on any violation — the
  /// miss-accounting self-check CI runs.
  bool selfCheck(std::string* why = nullptr) const;

 private:
  void fold(const PacketEvent& ev, const std::vector<u8>& golden,
            const platform::RxOutcome& out);

  CellScenario scenario_;
  std::vector<UserFlow> flows_;
  std::vector<PacketEvent> schedule_;
  std::vector<std::unique_ptr<FlowStats>> flowStats_;
  std::vector<std::unique_ptr<obs::LogLinearHistogram>> classLatencyNs_;
  std::vector<double> flowSnr0Db_;  ///< per-flow SNR at t=0 (for metrics)

  // DES state (collector thread only).
  std::vector<double> serverFreeUs_;
  std::vector<double> serverBusyUs_;

  std::atomic<u64> folded_{0};
  std::atomic<u64> simTimeNs_{0};
  std::atomic<u64> goodputBits_{0};
  CellTotals totals_;
  bool ran_ = false;
};

}  // namespace adres::cell
