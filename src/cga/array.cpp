#include "cga/array.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "isa/semantics.hpp"

namespace adres {

void CgaArray::clearState() {
  for (auto& rf : localRfs_) rf.clear();
  outRegs_.fill(0);
}

RegFileStats CgaArray::localRfTotals() const {
  RegFileStats t;
  for (const auto& rf : localRfs_) {
    t.reads += rf.stats().reads;
    t.writes += rf.stats().writes;
  }
  return t;
}

Word CgaArray::currentDst(int fu, const DstSel& dst) const {
  if (dst.toLocalRf) return localRfs_[static_cast<std::size_t>(fu)].peek(dst.localAddr);
  if (dst.toGlobalRf) return crf_.peek(dst.globalAddr);
  return outRegs_[static_cast<std::size_t>(fu)];
}

void CgaArray::commitWrite(const PendingWrite& pw) {
  Word v = pw.value;
  if (pw.mergeHigh) v |= currentDst(pw.fu, pw.dst) & 0xFFFFFFFFull;
  outRegs_[pw.fu] = v;
  ++act_.transports;  // result transport into the output register
  if (pw.dst.toLocalRf) localRfs_[pw.fu].write(pw.dst.localAddr, v);
  if (pw.dst.toGlobalRf) {
    ++act_.cdrfCgaAccesses;
    crf_.write(pw.dst.globalAddr, v);
  }
}

Word CgaArray::readSrc(int fu, const SrcSel& s, i32 imm) {
  switch (s.kind) {
    case SrcKind::kNone:
      return 0;
    case SrcKind::kOutput:
      ++act_.transports;  // mesh mux traversal
      return outRegs_[s.index];
    case SrcKind::kLocalRf:
      return localRfs_[static_cast<std::size_t>(fu)].read(s.index);
    case SrcKind::kGlobalRf:
      ++act_.cdrfCgaAccesses;
      return crf_.read(s.index);
    case SrcKind::kImm:
      return fromScalar(imm);
  }
  return 0;
}

CgaRunResult CgaArray::run(const KernelConfig& k, u32 trips, u64 traceBase,
                           u32 kernelId) {
  return run(buildKernelPlan(k, defaultExecTier()), trips, traceBase, kernelId);
}

CgaRunResult CgaArray::run(const KernelConfig& k, u32 trips, ExecTier tier,
                           u64 traceBase, u32 kernelId) {
  return run(buildKernelPlan(k, tier), trips, traceBase, kernelId);
}

CgaRunResult CgaArray::run(const KernelPlan& plan, u32 trips, u64 traceBase,
                           u32 kernelId) {
  switch (plan.tier) {
    case ExecTier::kReference:
      return runReferenceLoop(plan.source, trips, traceBase, kernelId);
    case ExecTier::kInterpreted:
      return runInterpreted(plan, trips, traceBase, kernelId);
    case ExecTier::kNative:
      ADRES_CHECK(plan.native != nullptr,
                  "kNative plan '" << plan.name << "' has no native section");
      // Tracing needs per-op event emission; the interpreted loop produces
      // the identical stream, results and counters.
      if (trace_) return runInterpreted(plan, trips, traceBase, kernelId);
      return runNative(plan, trips, traceBase);
  }
  ADRES_CHECK(false, "unknown exec tier "
                         << static_cast<int>(plan.tier) << " for kernel '"
                         << plan.name << "'");
  return {};
}

CgaRunResult CgaArray::runInterpreted(const KernelPlan& plan, u32 trips,
                                      u64 traceBase, u32 kernelId) {
  CgaRunResult res;
  std::array<u32, kCgaFus> fuOps = {};  // per-FU trace occupancy
  // Each kernel launch runs on its own local timeline; clear the bank-port
  // bookings left by previous launches or VLIW-mode accesses.
  l1_.arbiter().reset();

  for (const Preload& p : plan.preloads) {
    ++act_.cdrfCgaAccesses;
    localRfs_[p.fu].write(p.localReg, crf_.read(p.globalReg));
  }
  const u64 preCycles = (plan.preloads.size() + 2) / 3;

  const u64 ii = static_cast<u64>(plan.ii);
  const u64 totalLogical =
      trips == 0 ? 0
                 : (static_cast<u64>(trips) - 1) * ii +
                       static_cast<u64>(plan.schedLength);
  // One ultra-wide configuration word per logical cycle, booked up front.
  cfg_.noteContextFetches(totalLogical);

  u64 wall = 0;  // wall cycles elapsed in the array (logical + stalls)

  // Commits due at cycle `g` (before reads), in issue order.
  auto commitSlot = [&](u64 g) {
    auto& slot = wheel_[g & kCgaWheelMask];
    for (const PendingWrite& pw : slot) commitWrite(pw);
    slot.clear();
  };

  // Functional dispatch of one active op at logical cycle `g`.
  auto execOp = [&](const PlanOp& op, u64 g, int& stallThisCycle) {
    if (op.kind == PlanOpKind::kCompute) {
      const Word a = readSrc(op.fu, op.src1, op.imm);
      const Word b = op.src2.kind == SrcKind::kImm
                         ? op.immOperand
                         : readSrc(op.fu, op.src2, op.imm);
      PendingWrite pw;
      pw.commitCycle = g + static_cast<u64>(op.lat);
      pw.fu = op.fu;
      pw.dst = op.dst;
      pw.value = evalOp(op.op, a, b, op.imm);
      wheel_[pw.commitCycle & kCgaWheelMask].push_back(pw);
      return;
    }
    const Word base = readSrc(op.fu, op.src1, op.imm);
    const Word off = op.src2.kind == SrcKind::kImm
                         ? op.immOperand
                         : readSrc(op.fu, op.src2, op.imm);
    const u32 addr = lo32u(base) + lo32u(off);
    ++act_.l1CgaAccesses;
    stallThisCycle =
        std::max(stallThisCycle, l1_.requestPort(traceBase + wall, addr));
    if (op.kind == PlanOpKind::kStore) {
      const Word data = readSrc(op.fu, op.src3, op.imm);
      const u32 v = op.storeHigh ? static_cast<u32>(data >> 32) : lo32u(data);
      switch (op.memBytes) {
        case 1: l1_.write8(addr, v & 0xFFu); break;
        case 2: l1_.write16(addr, v & 0xFFFFu); break;
        default: l1_.write32(addr, v); break;
      }
      return;
    }
    u32 raw = 0;
    switch (op.memBytes) {
      case 1: raw = l1_.read8(addr); break;
      case 2: raw = l1_.read16(addr); break;
      default: raw = l1_.read32(addr); break;
    }
    PendingWrite pw;
    pw.commitCycle = g + static_cast<u64>(op.lat);
    pw.fu = op.fu;
    pw.dst = op.dst;
    switch (op.loadMode) {
      case LoadMode::kZext:
        pw.value = static_cast<Word>(raw);
        break;
      case LoadMode::kSext8:
        pw.value = static_cast<Word>(
            static_cast<u32>(static_cast<i32>(static_cast<i8>(raw))));
        break;
      case LoadMode::kSext16:
        pw.value = static_cast<Word>(
            static_cast<u32>(static_cast<i32>(static_cast<i16>(raw))));
        break;
      case LoadMode::kHigh:
        pw.value = static_cast<u64>(raw) << 32;
        pw.mergeHigh = true;  // low half merged at commit
        break;
    }
    wheel_[pw.commitCycle & kCgaWheelMask].push_back(pw);
  };

  auto endCycle = [&](int stallThisCycle) {
    if (stallThisCycle > 0 && trace_)
      trace_->event({traceBase + wall, static_cast<u64>(stallThisCycle),
                     TraceEventKind::kCgaStall, 0,
                     static_cast<u32>(StallCause::kL1Contention), 0});
    wall += 1 + static_cast<u64>(stallThisCycle);
    res.stallCycles += static_cast<u64>(stallThisCycle);
  };

  // Fully-guarded execution of [from, to): per-op squash checks and per-op
  // activity accounting, exactly like the reference loop.
  auto runGuarded = [&](u64 from, u64 to) {
    for (u64 g = from; g < to; ++g) {
      commitSlot(g);
      const ContextPlan& ctx = plan.contexts[static_cast<std::size_t>(g % ii)];
      int stallThisCycle = 0;
      bool issued = false;
      for (const PlanOp& op : ctx.ops) {
        if (g < op.schedTime) continue;  // prologue squash
        if ((g - op.schedTime) / ii >= trips) continue;  // epilogue squash
        issued = true;
        ++res.ops;
        ++act_.cgaOps;
        if (trace_) ++fuOps[op.fu];
        if (op.isMov) {
          ++res.routeMoves;
          ++act_.cgaRouteMoves;
        }
        if (op.isSimdOp) ++act_.simdOps;
        act_.ops16 += op.ops16;
        execOp(op, g, stallThisCycle);
      }
      if (issued) ++res.issueCycles;
      endCycle(stallThisCycle);
    }
  };

  // Steady-state window: every op of every context is active, so squash
  // checks vanish and activity increments batch per context.  Tracing falls
  // back to the guarded loop (it needs per-FU op counts but nothing else —
  // both loops emit the identical event stream).
  u64 steadyBegin = totalLogical;
  u64 steadyEnd = totalLogical;
  if (!trace_ && totalLogical > 0) {
    steadyBegin = std::min(totalLogical, static_cast<u64>(plan.maxSchedTime));
    steadyEnd = std::min(totalLogical,
                         static_cast<u64>(plan.minSchedTime) +
                             static_cast<u64>(trips) * ii);
    if (steadyEnd < steadyBegin) steadyEnd = steadyBegin;
  }

  runGuarded(0, steadyBegin);
  for (u64 g = steadyBegin; g < steadyEnd; ++g) {
    commitSlot(g);
    const ContextPlan& ctx = plan.contexts[static_cast<std::size_t>(g % ii)];
    if (ctx.opCount) ++res.issueCycles;
    res.ops += ctx.opCount;
    act_.cgaOps += ctx.opCount;
    res.routeMoves += ctx.movCount;
    act_.cgaRouteMoves += ctx.movCount;
    act_.simdOps += ctx.simdCount;
    act_.ops16 += ctx.ops16Sum;
    int stallThisCycle = 0;
    for (const PlanOp& op : ctx.ops) execOp(op, g, stallThisCycle);
    endCycle(stallThisCycle);
  }
  runGuarded(steadyEnd, totalLogical);

  // Drain writes still pending past the last logical cycle, in cycle order.
  // Latencies are wheel-bounded, so scanning one wheel turn covers them all.
  u64 tail = totalLogical;
  for (u64 c = totalLogical; c < totalLogical + kCgaWheelSlots; ++c) {
    auto& slot = wheel_[c & kCgaWheelMask];
    if (slot.empty()) continue;
    for (const PendingWrite& pw : slot) commitWrite(pw);
    slot.clear();
    tail = c;
  }
  const u64 drainExtra = tail - totalLogical;

  for (const Writeback& wb : plan.writebacks) {
    ++act_.cdrfCgaAccesses;
    crf_.write(wb.globalReg, localRfs_[wb.fu].peek(wb.localReg));
  }
  const u64 wbCycles = (plan.writebacks.size() + 2) / 3;

  res.arrayCycles = totalLogical;
  res.cycles = preCycles + wall + drainExtra + wbCycles;
  act_.cgaCycles += res.cycles;
  act_.cgaStallCycles += res.stallCycles;
  if (trace_) {
    for (int fu = 0; fu < kCgaFus; ++fu) {
      if (fuOps[static_cast<std::size_t>(fu)] == 0) continue;
      trace_->event({traceBase, res.cycles, TraceEventKind::kFuActive,
                     static_cast<u8>(fu), kernelId,
                     fuOps[static_cast<std::size_t>(fu)]});
    }
  }
  return res;
}

CgaRunResult CgaArray::runReferenceLoop(const KernelConfig& k, u32 trips,
                                        u64 traceBase, u32 kernelId) {
  k.validate();
  CgaRunResult res;
  std::array<u32, kCgaFus> fuOps = {};  // per-FU trace occupancy
  // Each kernel launch runs on its own local timeline; clear the bank-port
  // bookings left by previous launches or VLIW-mode accesses.
  l1_.arbiter().reset();

  // Live-in preloads: DRESC's loop-setup copies, 3 per cycle through the
  // central file's read ports.
  for (const Preload& p : k.preloads) {
    ++act_.cdrfCgaAccesses;
    localRfs_[p.fu].write(p.localReg, crf_.read(p.globalReg));
  }
  const u64 preCycles = (k.preloads.size() + 2) / 3;

  // Main modulo-scheduled execution.
  const u64 totalLogical =
      trips == 0 ? 0
                 : (static_cast<u64>(trips) - 1) * static_cast<u64>(k.ii) +
                       static_cast<u64>(k.schedLength);
  std::vector<PendingWrite> pending;
  u64 wall = 0;  // wall cycles elapsed in the array (logical + stalls)

  for (u64 g = 0; g < totalLogical; ++g) {
    // Commit results due at this logical cycle (before reads); commit in
    // cycle order so LD_I / LD_IH halves merge deterministically.
    std::sort(pending.begin(), pending.end(),
              [](const PendingWrite& x, const PendingWrite& y) {
                return x.commitCycle < y.commitCycle;
              });
    for (auto it = pending.begin(); it != pending.end();) {
      if (it->commitCycle <= g) {
        commitWrite(*it);
        it = pending.erase(it);
      } else {
        ++it;
      }
    }

    cfg_.noteContextFetch();  // the ultra-wide configuration word read
    const Context& ctx = k.contexts[static_cast<std::size_t>(g % static_cast<u64>(k.ii))];
    int stallThisCycle = 0;
    bool issued = false;

    for (int fu = 0; fu < kCgaFus; ++fu) {
      const FuOp& f = ctx.fu[fu];
      if (f.isNop()) continue;
      if (g < f.schedTime) continue;  // prologue squash
      const u64 iter = (g - f.schedTime) / static_cast<u64>(k.ii);
      if (iter >= trips) continue;  // epilogue squash

      issued = true;
      ++res.ops;
      ++act_.cgaOps;
      if (trace_) ++fuOps[static_cast<std::size_t>(fu)];
      if (f.op == Opcode::MOV) {
        ++res.routeMoves;
        ++act_.cgaRouteMoves;
      }
      if (isSimd(f.op)) ++act_.simdOps;
      act_.ops16 += static_cast<u64>(ops16PerInstr(f.op));

      const int lat = opInfo(f.op).latency;

      if (isStore(f.op)) {
        const Word base = readSrc(fu, f.src1, f.imm);
        const Word off = f.src2.kind == SrcKind::kImm
                             ? fromScalar(f.imm << memImmScale(f.op))
                             : readSrc(fu, f.src2, f.imm);
        const Word data = readSrc(fu, f.src3, f.imm);
        const u32 addr = lo32u(base) + lo32u(off);
        ++act_.l1CgaAccesses;
        stallThisCycle = std::max(
            stallThisCycle, l1_.requestPort(traceBase + wall, addr));
        const u32 v = storeData(f.op, data);
        switch (memAccessBytes(f.op)) {
          case 1: l1_.write8(addr, v); break;
          case 2: l1_.write16(addr, v); break;
          default: l1_.write32(addr, v); break;
        }
        continue;
      }

      if (isLoad(f.op)) {
        const Word base = readSrc(fu, f.src1, f.imm);
        const Word off = f.src2.kind == SrcKind::kImm
                             ? fromScalar(f.imm << memImmScale(f.op))
                             : readSrc(fu, f.src2, f.imm);
        const u32 addr = lo32u(base) + lo32u(off);
        ++act_.l1CgaAccesses;
        stallThisCycle = std::max(
            stallThisCycle, l1_.requestPort(traceBase + wall, addr));
        u32 raw = 0;
        switch (memAccessBytes(f.op)) {
          case 1: raw = l1_.read8(addr); break;
          case 2: raw = l1_.read16(addr); break;
          default: raw = l1_.read32(addr); break;
        }
        PendingWrite pw;
        pw.commitCycle = g + static_cast<u64>(lat);
        pw.fu = static_cast<u8>(fu);
        pw.dst = f.dst;
        if (f.op == Opcode::LD_IH) {
          pw.value = static_cast<u64>(raw) << 32;
          pw.mergeHigh = true;  // low half merged at commit
        } else {
          pw.value = applyLoadResult(f.op, 0, raw);
        }
        pending.push_back(pw);
        continue;
      }

      // Compute op.
      const Word a = readSrc(fu, f.src1, f.imm);
      const Word b = f.src2.kind == SrcKind::kImm ? fromScalar(f.imm)
                                                  : readSrc(fu, f.src2, f.imm);
      const Word v = evalOp(f.op, a, b, f.imm);
      PendingWrite pw;
      pw.commitCycle = g + static_cast<u64>(lat);
      pw.fu = static_cast<u8>(fu);
      pw.dst = f.dst;
      pw.value = v;
      pending.push_back(pw);
    }

    if (issued) ++res.issueCycles;
    if (stallThisCycle > 0 && trace_)
      trace_->event({traceBase + wall, static_cast<u64>(stallThisCycle),
                     TraceEventKind::kCgaStall, 0,
                     static_cast<u32>(StallCause::kL1Contention), 0});
    wall += 1 + static_cast<u64>(stallThisCycle);
    res.stallCycles += static_cast<u64>(stallThisCycle);
  }

  // Drain any writes still pending past the last logical cycle (schedLength
  // already bounds them, but be safe for latency tails).
  std::sort(pending.begin(), pending.end(),
            [](const PendingWrite& x, const PendingWrite& y) {
              return x.commitCycle < y.commitCycle;
            });
  u64 tail = totalLogical;
  for (const PendingWrite& pw : pending) {
    tail = std::max(tail, pw.commitCycle);
    commitWrite(pw);
  }
  const u64 drainExtra = tail - totalLogical;

  // Live-out writebacks through the central file's write ports.
  for (const Writeback& wb : k.writebacks) {
    ++act_.cdrfCgaAccesses;
    crf_.write(wb.globalReg, localRfs_[wb.fu].peek(wb.localReg));
  }
  const u64 wbCycles = (k.writebacks.size() + 2) / 3;

  res.arrayCycles = totalLogical;
  res.cycles = preCycles + wall + drainExtra + wbCycles;
  act_.cgaCycles += res.cycles;
  act_.cgaStallCycles += res.stallCycles;
  if (trace_) {
    // One occupancy span per active FU: the kernel renders as a per-FU
    // heatmap on the cga.fuNN tracks.
    for (int fu = 0; fu < kCgaFus; ++fu) {
      if (fuOps[static_cast<std::size_t>(fu)] == 0) continue;
      trace_->event({traceBase, res.cycles, TraceEventKind::kFuActive,
                     static_cast<u8>(fu), kernelId,
                     fuOps[static_cast<std::size_t>(fu)]});
    }
  }
  return res;
}

}  // namespace adres
