// CGA array execution engine.
//
// Runs a mapped loop (KernelConfig) for a given trip count, cycle by cycle:
// context slot = cycle mod II, software-pipeline prologue/epilogue squashing
// via each op's schedTime, registered FU outputs, local/central RF traffic,
// L1 bank arbitration with whole-array stall on contention (the paper's
// transparent queuing), and activity accounting for the power model.
//
// Timing convention: an op issued at logical cycle g commits its results
// (output register, RF writes) at the start of cycle g+latency — commits
// happen before operand reads within a cycle, so a consumer scheduled
// exactly latency cycles later reads the fresh value.
#pragma once

#include <array>

#include <vector>

#include "common/activity.hpp"
#include "common/types.hpp"
#include "cga/context.hpp"
#include "cga/native.hpp"
#include "cga/plan.hpp"
#include "mem/config_mem.hpp"
#include "mem/scratchpad.hpp"
#include "regfile/regfiles.hpp"
#include "trace/trace.hpp"

namespace adres {

/// Cycle cost of switching VLIW->CGA or CGA->VLIW (pipeline drain + context
/// pointer setup; DESIGN.md §3).
inline constexpr int kModeSwitchCycles = 4;

struct CgaRunResult {
  u64 cycles = 0;       ///< total CGA-mode cycles (preloads + array + writebacks)
  u64 arrayCycles = 0;  ///< logical context cycles executed
  u64 stallCycles = 0;  ///< extra wall cycles from L1 contention
  u64 issueCycles = 0;  ///< logical cycles on which at least one op issued
  u64 ops = 0;          ///< non-squashed, non-nop ops executed
  u64 routeMoves = 0;   ///< subset of ops that are routing MOVs

  double ipc() const { return cycles ? static_cast<double>(ops) / static_cast<double>(cycles) : 0.0; }
};

class CgaArray {
 public:
  CgaArray(CentralRegFile& crf, Scratchpad& l1, ConfigMemory& cfg,
           ActivityCounters& act)
      : crf_(crf), l1_(l1), cfg_(cfg), act_(act) {}

  /// Executes `k` for `trips` iterations at the session's default tier
  /// (defaultExecTier()).  The caller (core) accounts the mode-switch
  /// overhead; this returns the in-mode cycle cost.  `traceBase` anchors
  /// the kernel-local timeline on the core's absolute cycle counter and
  /// `kernelId` labels trace events; both are trace-only.  Pre-decodes the
  /// kernel and delegates to the plan overload.
  CgaRunResult run(const KernelConfig& k, u32 trips, u64 traceBase = 0,
                   u32 kernelId = 0);

  /// Same, at an explicit execution tier.
  CgaRunResult run(const KernelConfig& k, u32 trips, ExecTier tier,
                   u64 traceBase = 0, u32 kernelId = 0);

  /// Executes a pre-decoded plan, dispatching on the tier it was built for
  /// (DESIGN.md §14): kReference replays the original per-cycle loop over
  /// the plan's source config, kInterpreted runs the dense-op-list loop,
  /// kNative runs the template-specialized loop with whole-launch batched
  /// statistics and no-retire cycle skipping.  All tiers are bit- and
  /// cycle-exact with each other (tests/cga/fastpath_ab_test); a kNative
  /// plan with a trace sink attached runs the interpreted loop, which
  /// emits the identical event stream.
  CgaRunResult run(const KernelPlan& plan, u32 trips, u64 traceBase = 0,
                   u32 kernelId = 0);

  /// Test access to the fabric state.
  Word outputReg(int fu) const { return outRegs_[static_cast<std::size_t>(fu)]; }
  const LocalRegFile& localRf(int fu) const { return localRfs_[static_cast<std::size_t>(fu)]; }
  LocalRegFile& localRf(int fu) { return localRfs_[static_cast<std::size_t>(fu)]; }

  /// Aggregate local-RF traffic (for the power model).
  RegFileStats localRfTotals() const;

  void clearState();

  void setTrace(TraceSink* t) { trace_ = t; }

 private:
  struct PendingWrite {
    u64 commitCycle = 0;
    u8 fu = 0;
    DstSel dst;
    Word value = 0;
    /// LD_IH: merge `value` (high 32 bits) with the destination's low half
    /// at commit time — the paired LD_I may itself still be in flight.
    bool mergeHigh = false;
  };

  Word currentDst(int fu, const DstSel& dst) const;
  void commitWrite(const PendingWrite& pw);

  Word readSrc(int fu, const SrcSel& s, i32 imm);

  /// kInterpreted tier: the dense-op-list loop (guarded edges, batched
  /// steady window, commit wheel).
  CgaRunResult runInterpreted(const KernelPlan& plan, u32 trips, u64 traceBase,
                              u32 kernelId);

  /// kReference tier: the original per-cycle re-classification loop with a
  /// sorted pending queue — the equivalence oracle for the A/B/C tests.
  CgaRunResult runReferenceLoop(const KernelConfig& k, u32 trips,
                                u64 traceBase, u32 kernelId);

  /// kNative tier (cga/native.cpp): resolves the plan's op specs to raw
  /// pointers once per launch, then runs the template-specialized loop.
  CgaRunResult runNative(const KernelPlan& plan, u32 trips, u64 traceBase);
  void resolveNative(const KernelPlan& plan);

  /// Commit wheel: slot g & kCgaWheelMask holds the writes due at logical
  /// cycle g, in issue order (the deterministic commit order of the sorted
  /// reference queue).  Member state so slot capacity persists across
  /// launches; every run leaves all slots empty.
  std::array<std::vector<PendingWrite>, kCgaWheelSlots> wheel_;

  /// Native-tier launch scratch: resolved ops and the flat commit wheel
  /// (kCgaWheelSlots x maxCommitDepth, slot-major).  Member state so the
  /// allocations persist across launches.
  std::vector<NativeResolvedOp> nativeOps_;
  std::vector<NativePending> nativeWheel_;
  std::array<u32, kCgaWheelSlots> nativeWheelCounts_ = {};

  CentralRegFile& crf_;
  Scratchpad& l1_;
  ConfigMemory& cfg_;
  ActivityCounters& act_;

  std::array<LocalRegFile, kCgaFus> localRfs_;
  std::array<Word, kCgaFus> outRegs_ = {};
  TraceSink* trace_ = nullptr;
};

}  // namespace adres
