#include "cga/context.hpp"

#include "common/bitfield.hpp"
#include "common/check.hpp"
#include "cga/topology.hpp"

namespace adres {
namespace {

// Field widths of the packed context encoding.
constexpr int kOpBits = 8;
constexpr int kSrcKindBits = 3;
constexpr int kSrcIdxBits = 6;
constexpr int kImmBitsCga = 16;
constexpr int kLocalAddrBits = 4;
constexpr int kGlobalAddrBits = 6;
constexpr int kTimeBits = 12;

constexpr int kSrcBits = kSrcKindBits + kSrcIdxBits;
constexpr int kDstBits = 1 + kLocalAddrBits + 1 + kGlobalAddrBits;
constexpr int kFuOpBits = kOpBits + 3 * kSrcBits + kImmBitsCga + kDstBits + kTimeBits;

void encodeSrc(BitWriter& w, const SrcSel& s) {
  w.put(static_cast<u64>(s.kind), kSrcKindBits);
  w.put(s.index, kSrcIdxBits);
}

SrcSel decodeSrc(BitReader& r) {
  SrcSel s;
  const u64 kind = r.get(kSrcKindBits);
  ADRES_CHECK(kind <= static_cast<u64>(SrcKind::kImm), "bad SrcKind field");
  s.kind = static_cast<SrcKind>(kind);
  s.index = static_cast<u8>(r.get(kSrcIdxBits));
  return s;
}

void encodeFuOp(BitWriter& w, const FuOp& f) {
  w.put(static_cast<u64>(f.op), kOpBits);
  encodeSrc(w, f.src1);
  encodeSrc(w, f.src2);
  encodeSrc(w, f.src3);
  w.put(static_cast<u32>(f.imm) & 0xFFFFu, kImmBitsCga);
  w.put(f.dst.toLocalRf ? 1 : 0, 1);
  w.put(f.dst.localAddr, kLocalAddrBits);
  w.put(f.dst.toGlobalRf ? 1 : 0, 1);
  w.put(f.dst.globalAddr, kGlobalAddrBits);
  w.put(f.schedTime, kTimeBits);
}

FuOp decodeFuOp(BitReader& r) {
  FuOp f;
  const u64 op = r.get(kOpBits);
  ADRES_CHECK(op < static_cast<u64>(kOpcodeCount), "bad opcode in context");
  f.op = static_cast<Opcode>(op);
  f.src1 = decodeSrc(r);
  f.src2 = decodeSrc(r);
  f.src3 = decodeSrc(r);
  const u32 rawImm = static_cast<u32>(r.get(kImmBitsCga));
  f.imm = (static_cast<i32>(rawImm << 16)) >> 16;  // sign-extend 16
  f.dst.toLocalRf = r.get(1) != 0;
  f.dst.localAddr = static_cast<u8>(r.get(kLocalAddrBits));
  f.dst.toGlobalRf = r.get(1) != 0;
  f.dst.globalAddr = static_cast<u8>(r.get(kGlobalAddrBits));
  f.schedTime = static_cast<u16>(r.get(kTimeBits));
  return f;
}

void validateSrc(const SrcSel& s, int fu, const char* what) {
  switch (s.kind) {
    case SrcKind::kNone:
    case SrcKind::kImm:
      break;
    case SrcKind::kOutput:
      ADRES_CHECK(canRead(fu, s.index),
                  "FU" << fu << ' ' << what << " reads FU" << int{s.index}
                       << " output, not mesh-reachable");
      break;
    case SrcKind::kLocalRf:
      ADRES_CHECK(s.index < 16, "local RF index " << int{s.index});
      break;
    case SrcKind::kGlobalRf:
      ADRES_CHECK(hasGlobalPort(fu),
                  "FU" << fu << " has no central-RF port (" << what << ')');
      ADRES_CHECK(s.index < kCdrfRegs, "CDRF index " << int{s.index});
      break;
  }
}

}  // namespace

void KernelConfig::validate() const {
  ADRES_CHECK(ii >= 1, "kernel '" << name << "': II must be >= 1");
  ADRES_CHECK(static_cast<int>(contexts.size()) == ii,
              "kernel '" << name << "': " << contexts.size()
                         << " contexts but II=" << ii);
  ADRES_CHECK(schedLength >= ii, "kernel '" << name << "': schedule shorter than II");
  for (int s = 0; s < ii; ++s) {
    for (int fu = 0; fu < kCgaFus; ++fu) {
      const FuOp& f = contexts[static_cast<std::size_t>(s)].fu[fu];
      if (f.isNop()) continue;
      const OpInfo& info = opInfo(f.op);
      ADRES_CHECK((info.fuMask >> fu) & 1,
                  "kernel '" << name << "': " << info.name << " on FU" << fu);
      ADRES_CHECK(!isBranch(f.op) && !isControl(f.op),
                  "kernel '" << name << "': control op in array context");
      ADRES_CHECK(f.schedTime % static_cast<u16>(ii) == static_cast<u16>(s),
                  "kernel '" << name << "': op schedTime " << f.schedTime
                             << " placed in context " << s);
      validateSrc(f.src1, fu, "src1");
      validateSrc(f.src2, fu, "src2");
      validateSrc(f.src3, fu, "src3");
      if (f.dst.toGlobalRf) {
        ADRES_CHECK(hasGlobalPort(fu),
                    "kernel '" << name << "': FU" << fu << " writes CDRF");
        ADRES_CHECK(f.dst.globalAddr < kCdrfRegs, "CDRF dst index");
      }
      if (f.dst.toLocalRf)
        ADRES_CHECK(f.dst.localAddr < 16, "local RF dst index");
    }
  }
  for (const Preload& p : preloads) {
    ADRES_CHECK(p.fu < kCgaFus && p.localReg < 16 && p.globalReg < kCdrfRegs,
                "kernel '" << name << "': bad preload");
  }
  for (const Writeback& wb : writebacks) {
    ADRES_CHECK(wb.fu < kCgaFus && wb.localReg < 16 && wb.globalReg < kCdrfRegs,
                "kernel '" << name << "': bad writeback");
  }
}

int KernelConfig::opCount() const {
  int n = 0;
  for (const Context& c : contexts)
    for (const FuOp& f : c.fu)
      if (!f.isNop()) ++n;
  return n;
}

int contextWordBits() { return kFuOpBits * kCgaFus; }

std::vector<u8> encodeKernel(const KernelConfig& k) {
  k.validate();
  BitWriter w;
  w.put(static_cast<u64>(k.ii), 16);
  w.put(static_cast<u64>(k.schedLength), 16);
  w.put(k.preloads.size(), 16);
  w.put(k.writebacks.size(), 16);
  w.put(k.name.size(), 16);
  for (char ch : k.name) w.put(static_cast<u8>(ch), 8);
  for (const Preload& p : k.preloads) {
    w.put(p.fu, 8);
    w.put(p.localReg, 8);
    w.put(p.globalReg, 8);
  }
  for (const Writeback& wb : k.writebacks) {
    w.put(wb.globalReg, 8);
    w.put(wb.fu, 8);
    w.put(wb.localReg, 8);
  }
  for (const Context& c : k.contexts)
    for (const FuOp& f : c.fu) encodeFuOp(w, f);
  w.alignTo(32);
  return w.bytes();
}

KernelConfig decodeKernel(const std::vector<u8>& bytes) {
  BitReader r(bytes);
  KernelConfig k;
  k.ii = static_cast<int>(r.get(16));
  k.schedLength = static_cast<int>(r.get(16));
  const auto nPre = r.get(16);
  const auto nWb = r.get(16);
  const auto nName = r.get(16);
  k.name.reserve(nName);
  for (u64 i = 0; i < nName; ++i) k.name.push_back(static_cast<char>(r.get(8)));
  for (u64 i = 0; i < nPre; ++i) {
    Preload p;
    p.fu = static_cast<u8>(r.get(8));
    p.localReg = static_cast<u8>(r.get(8));
    p.globalReg = static_cast<u8>(r.get(8));
    k.preloads.push_back(p);
  }
  for (u64 i = 0; i < nWb; ++i) {
    Writeback wb;
    wb.globalReg = static_cast<u8>(r.get(8));
    wb.fu = static_cast<u8>(r.get(8));
    wb.localReg = static_cast<u8>(r.get(8));
    k.writebacks.push_back(wb);
  }
  k.contexts.resize(static_cast<std::size_t>(k.ii));
  for (Context& c : k.contexts)
    for (FuOp& f : c.fu) f = decodeFuOp(r);
  k.validate();
  return k;
}

}  // namespace adres
