// CGA configuration contexts (paper §2.B).
//
// One Context = the ultra-wide configuration word steering all 16 FUs for
// one scheduled loop cycle.  A KernelConfig holds II contexts (one per
// scheduled loop cycle, cycled modulo II), the live-in preloads and
// live-out writebacks the DRESC-style toolchain emits around the loop, and
// the schedule metadata the sequencer needs for prologue/epilogue squashing.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "isa/instruction.hpp"
#include "isa/opcodes.hpp"

namespace adres {

/// Operand source selection of a CGA FU port.
enum class SrcKind : u8 {
  kNone,      ///< port unused
  kOutput,    ///< output register of FU `index` (self or mesh neighbour)
  kLocalRf,   ///< own local RF entry `index`
  kGlobalRf,  ///< CDRF entry `index` (FUs 0-2 only)
  kImm,       ///< the context immediate
};

struct SrcSel {
  SrcKind kind = SrcKind::kNone;
  u8 index = 0;

  static SrcSel none() { return {}; }
  static SrcSel output(int fu) { return {SrcKind::kOutput, static_cast<u8>(fu)}; }
  static SrcSel localRf(int r) { return {SrcKind::kLocalRf, static_cast<u8>(r)}; }
  static SrcSel globalRf(int r) { return {SrcKind::kGlobalRf, static_cast<u8>(r)}; }
  static SrcSel imm() { return {SrcKind::kImm, 0}; }

  friend bool operator==(const SrcSel&, const SrcSel&) = default;
};

/// Result destination: besides always landing in the FU output register, a
/// result may be written to the FU's local RF and/or (FUs 0-2) the CDRF.
struct DstSel {
  bool toLocalRf = false;
  u8 localAddr = 0;
  bool toGlobalRf = false;
  u8 globalAddr = 0;

  friend bool operator==(const DstSel&, const DstSel&) = default;
};

/// One FU's operation in one context.
struct FuOp {
  Opcode op = Opcode::NOP;
  SrcSel src1;
  SrcSel src2;
  SrcSel src3;  ///< store data
  i32 imm = 0;
  DstSel dst;
  /// Absolute schedule time of this op within one iteration's schedule.
  /// The sequencer executes the op at global cycle g iff
  /// (g - schedTime) is a non-negative multiple of II below trips*II
  /// (software-pipeline prologue/epilogue squashing via predication).
  u16 schedTime = 0;

  bool isNop() const { return op == Opcode::NOP; }
};

/// All 16 FU operations of one scheduled loop cycle.
struct Context {
  FuOp fu[kCgaFus];
};

/// Live-in copy: CDRF[globalReg] -> localRf[fu][localReg] at kernel entry.
struct Preload {
  u8 fu = 0;
  u8 localReg = 0;
  u8 globalReg = 0;
};

/// Live-out copy: localRf[fu][localReg] -> CDRF[globalReg] at kernel exit.
struct Writeback {
  u8 globalReg = 0;
  u8 fu = 0;
  u8 localReg = 0;
};

/// A complete mapped loop: what the `cga` instruction launches.
struct KernelConfig {
  std::string name;
  int ii = 1;           ///< initiation interval = number of contexts
  int schedLength = 1;  ///< max schedTime + latency over all ops (drain bound)
  std::vector<Context> contexts;  ///< size == ii
  std::vector<Preload> preloads;
  std::vector<Writeback> writebacks;

  /// Static well-formedness (port legality, index ranges).  Throws SimError.
  void validate() const;

  /// Number of non-nop ops across the II contexts (for IPC reporting).
  int opCount() const;
};

/// Serializes a KernelConfig into the byte image stored in configuration
/// memory, and back.  The image size drives the config-DMA cost and the
/// configuration-memory share of the power model.
std::vector<u8> encodeKernel(const KernelConfig& k);
KernelConfig decodeKernel(const std::vector<u8>& bytes);

/// Bits per ultra-wide context word in the encoded image (constant).
int contextWordBits();

}  // namespace adres
