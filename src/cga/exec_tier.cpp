#include "cga/exec_tier.hpp"

#include <cstdlib>
#include <string>

#include "common/check.hpp"

namespace adres {

const char* execTierName(ExecTier t) {
  switch (t) {
    case ExecTier::kReference: return "reference";
    case ExecTier::kInterpreted: return "interpreted";
    case ExecTier::kNative: return "native";
  }
  return "unknown";
}

ExecTier parseExecTier(std::string_view s) {
  if (s == "reference") return ExecTier::kReference;
  if (s == "interpreted") return ExecTier::kInterpreted;
  if (s == "native") return ExecTier::kNative;
  throw SimError("unknown exec tier '" + std::string(s) +
                 "' (expected reference, interpreted or native)");
}

ExecTier defaultExecTier() {
  static const ExecTier tier = [] {
    if (const char* env = std::getenv("ADRES_EXEC_TIER"); env && *env)
      return parseExecTier(env);
    return ExecTier::kNative;
  }();
  return tier;
}

}  // namespace adres
