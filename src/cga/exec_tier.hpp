// Execution tiers of the kernel engine (DESIGN.md §14).
//
// A kernel plan is built FOR a tier; CgaArray::run dispatches on the plan's
// tier.  All three tiers are bit- and cycle-exact with each other — they
// differ only in host speed and in how much work is hoisted out of the
// per-cycle loop:
//  - kReference: the original per-cycle re-classification loop with a
//    sorted pending queue.  Slowest; the equivalence oracle.
//  - kInterpreted: the decoded-plan loop (PR 3): dense per-context op
//    lists, squash-free steady state, commit wheel.
//  - kNative: template-instantiated per-(dispatch kind, latency class)
//    steady-loop bodies over launch-resolved operand pointers, whole-launch
//    batched statistics and no-retire cycle skipping.
#pragma once

#include <string_view>

#include "common/types.hpp"

namespace adres {

enum class ExecTier : u8 {
  kReference = 0,
  kInterpreted = 1,
  kNative = 2,
};

inline constexpr int kExecTierCount = 3;

/// Stable lower-case label ("reference" / "interpreted" / "native").
const char* execTierName(ExecTier t);

/// Parses a tier label; throws SimError on anything unknown (no silent
/// fallback — tier selection fails loudly).
ExecTier parseExecTier(std::string_view s);

/// The process-wide default tier: ADRES_EXEC_TIER in the environment
/// ("reference" / "interpreted" / "native", read once and cached; an
/// invalid value throws SimError), else kNative.  CI sweeps the whole test
/// suite across tiers through this hook.
ExecTier defaultExecTier();

}  // namespace adres
