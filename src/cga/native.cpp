// Native execution tier: plan specialization (buildNativePlan) and the
// specialized launch loop (CgaArray::runNative).  See cga/native.hpp for
// the tier's design and DESIGN.md §14 for the exactness contract.
#include "cga/native.hpp"

#include <algorithm>

#include "cga/array.hpp"
#include "common/check.hpp"
#include "isa/semantics.hpp"
#include "mem/scratchpad.hpp"

namespace adres {
namespace {

// Pushes one result onto the flat commit wheel.  The slot holds only
// commits due at a single cycle (every processed cycle drains its slot and
// 2 * maxLatency <= kCgaWheelSlots forbids wrap-around), and the per-cycle
// landing count is bounded by the plan's maxCommitDepth.
inline void pushCommit(const NativeResolvedOp& op, NativeEngine& e, Word v) {
  const u32 slot = static_cast<u32>((e.g + op.lat) & kCgaWheelMask);
  ADRES_DCHECK(e.wheelCount[slot] < e.depth, "commit wheel overflow");
  e.wheel[slot * e.depth + e.wheelCount[slot]++] = NativePending{&op, v};
}

// Compute body, one instantiation per opcode: evalOpInline's switch
// constant-folds away, leaving the opcode's straight-line semantics.
template <Opcode Op>
void execCompute(const NativeResolvedOp& op, NativeEngine& e) {
  pushCommit(op, e, evalOpInline(Op, *op.a, *op.b, op.imm));
}

// L1 bank arbitration stays per-access: stalls and conflicts are the only
// genuinely dynamic statistics of a launch.
inline u32 bookPort(const NativeResolvedOp& op, NativeEngine& e) {
  const u32 addr = lo32u(*op.a) + lo32u(*op.b);
  const int extra = e.l1->requestPort(e.traceBase + e.wall, addr);
  if (extra > e.stall) e.stall = extra;
  return addr;
}

template <int Bytes, LoadMode Mode>
void execLoad(const NativeResolvedOp& op, NativeEngine& e) {
  const u32 addr = bookPort(op, e);
  u32 raw;
  if constexpr (Bytes == 1) {
    raw = e.l1->peek8(addr);
  } else if constexpr (Bytes == 2) {
    raw = e.l1->peek16(addr);
  } else {
    raw = e.l1->peek32(addr);
  }
  Word v;
  if constexpr (Mode == LoadMode::kZext) {
    v = static_cast<Word>(raw);
  } else if constexpr (Mode == LoadMode::kSext8) {
    v = static_cast<Word>(static_cast<u32>(static_cast<i32>(static_cast<i8>(raw))));
  } else if constexpr (Mode == LoadMode::kSext16) {
    v = static_cast<Word>(static_cast<u32>(static_cast<i32>(static_cast<i16>(raw))));
  } else {
    v = static_cast<u64>(raw) << 32;  // kHigh: low half merged at commit
  }
  pushCommit(op, e, v);
}

template <int Bytes, bool High>
void execStore(const NativeResolvedOp& op, NativeEngine& e) {
  const u32 addr = bookPort(op, e);
  const Word data = *op.c;
  const u32 v = High ? static_cast<u32>(data >> 32) : lo32u(data);
  if constexpr (Bytes == 1) {
    e.l1->poke8(addr, v & 0xFFu);
  } else if constexpr (Bytes == 2) {
    e.l1->poke16(addr, v & 0xFFFFu);
  } else {
    e.l1->poke32(addr, v);
  }
}

NativeExecFn computeFn(Opcode op) {
  switch (op) {
#define ADRES_NATIVE_COMPUTE(name, group, lat, mask) \
  case Opcode::name:                                 \
    return &execCompute<Opcode::name>;
    ADRES_OPCODE_LIST(ADRES_NATIVE_COMPUTE)
#undef ADRES_NATIVE_COMPUTE
  }
  return nullptr;
}

NativeExecFn loadFn(const PlanOp& op) {
  switch (op.memBytes) {
    case 1:
      return op.loadMode == LoadMode::kSext8 ? &execLoad<1, LoadMode::kSext8>
                                             : &execLoad<1, LoadMode::kZext>;
    case 2:
      return op.loadMode == LoadMode::kSext16 ? &execLoad<2, LoadMode::kSext16>
                                              : &execLoad<2, LoadMode::kZext>;
    default:
      return op.loadMode == LoadMode::kHigh ? &execLoad<4, LoadMode::kHigh>
                                            : &execLoad<4, LoadMode::kZext>;
  }
}

NativeExecFn storeFn(const PlanOp& op) {
  switch (op.memBytes) {
    case 1: return &execStore<1, false>;
    case 2: return &execStore<2, false>;
    default: return op.storeHigh ? &execStore<4, true> : &execStore<4, false>;
  }
}

}  // namespace

std::shared_ptr<const NativePlan> buildNativePlan(const KernelPlan& plan) {
  auto np = std::make_shared<NativePlan>();
  const std::size_t ii = plan.contexts.size();
  np->contexts.resize(ii);
  NativeIterStats& it = np->perIter;

  // Commits landing at each residue per steady-state iteration.  Guarded
  // prologue/epilogue cycles issue subsets of the steady pattern, so these
  // depths bound every cycle of a launch.
  std::vector<u32> depth(ii, 0);

  // Operand-read accounting, mirroring CgaArray::readSrc: kOutput bumps
  // transports (mesh mux traversal), kLocalRf reads the consuming FU's
  // file, kGlobalRf is a CDRF access + central-file read; immediates and
  // kNone are free.
  auto noteRead = [&](const SrcSel& s, u8 fu) {
    switch (s.kind) {
      case SrcKind::kOutput: ++it.transports; break;
      case SrcKind::kLocalRf: ++it.lrfReads[fu]; break;
      case SrcKind::kGlobalRf: ++it.cdrf; ++it.crfReads; break;
      default: break;
    }
  };

  for (std::size_t c = 0; c < ii; ++c) {
    NativeContextInfo& ci = np->contexts[c];
    ci.begin = static_cast<u32>(np->ops.size());
    for (const PlanOp& op : plan.contexts[c].ops) {
      NativeOpSpec s;
      s.fu = op.fu;
      s.lat = op.lat;
      s.schedTime = op.schedTime;
      s.src1 = op.src1;
      s.src2 = op.src2;
      s.src3 = op.src3;
      s.dst = op.dst;
      s.imm = op.imm;
      s.mergeHigh =
          op.kind == PlanOpKind::kLoad && op.loadMode == LoadMode::kHigh;
      // src1/src3 immediates are the raw control field; only src2 carries
      // the pre-scaled memory immediate.
      if (s.src1.kind == SrcKind::kImm) s.imm1 = fromScalar(op.imm);
      if (s.src2.kind == SrcKind::kImm) s.imm2 = op.immOperand;
      if (s.src3.kind == SrcKind::kImm) s.imm3 = fromScalar(op.imm);

      ++it.ops;
      if (op.isMov) ++it.movs;
      if (op.isSimdOp) ++it.simd;
      it.ops16 += op.ops16;
      noteRead(op.src1, op.fu);
      noteRead(op.src2, op.fu);
      switch (op.kind) {
        case PlanOpKind::kCompute:
          s.fn = computeFn(op.op);
          break;
        case PlanOpKind::kLoad:
          s.fn = loadFn(op);
          ++it.l1Reads;
          ++it.l1Accesses;
          break;
        case PlanOpKind::kStore:
          s.fn = storeFn(op);
          noteRead(op.src3, op.fu);
          ++it.l1Writes;
          ++it.l1Accesses;
          break;
      }
      ADRES_CHECK(s.fn != nullptr, "no native body for opcode "
                                       << opInfo(op.op).name << " in kernel '"
                                       << plan.name << "'");
      if (op.kind != PlanOpKind::kStore) {
        // Commit-side accounting: one result transport into the output
        // register, plus the selected RF writes (commitWrite's pattern).
        ++it.transports;
        if (op.dst.toLocalRf) ++it.lrfWrites[op.fu];
        if (op.dst.toGlobalRf) {
          ++it.cdrf;
          ++it.crfWrites;
        }
        ++depth[(c + op.lat) % ii];
      }
      np->ops.push_back(s);
    }
    ci.end = static_cast<u32>(np->ops.size());
    ci.opCount = ci.end - ci.begin;
  }

  np->maxCommitDepth = 1;
  for (u32 d : depth) np->maxCommitDepth = std::max(np->maxCommitDepth, d);

  // No-retire skip runs: a residue is idle iff it issues no op and no
  // commit ever lands on it in steady state.  Consecutive idle residues
  // collapse into one cycle-counter jump.
  std::vector<bool> idle(ii);
  for (std::size_t r = 0; r < ii; ++r)
    idle[r] = np->contexts[r].opCount == 0 && depth[r] == 0;
  for (std::size_t r = 0; r < ii; ++r) {
    if (!idle[r]) continue;
    u32 run = 0;
    while (run < ii && idle[(r + run) % ii]) ++run;
    np->contexts[r].skipRun = run;
  }
  return np;
}

void CgaArray::resolveNative(const KernelPlan& plan) {
  const NativePlan& np = *plan.native;

  // Operand pointer: FU output register, RF slot, or the spec's immediate
  // storage (which also serves kNone as a zero).  Plans are immutable and
  // outlive the launch, so aliasing their immediates is safe.
  auto srcPtr = [&](const SrcSel& s, const Word* immSlot,
                    std::size_t fu) -> const Word* {
    switch (s.kind) {
      case SrcKind::kOutput: return &outRegs_[s.index];
      case SrcKind::kLocalRf: return localRfs_[fu].slotPtr(s.index);
      case SrcKind::kGlobalRf: return crf_.slotPtr(s.index);
      default: return immSlot;
    }
  };

  nativeOps_.resize(np.ops.size());
  for (std::size_t i = 0; i < np.ops.size(); ++i) {
    const NativeOpSpec& s = np.ops[i];
    NativeResolvedOp& r = nativeOps_[i];
    const std::size_t fu = s.fu;
    r.fn = s.fn;
    r.lat = s.lat;
    r.schedTime = s.schedTime;
    r.imm = s.imm;
    r.mergeHigh = s.mergeHigh;
    r.a = srcPtr(s.src1, &s.imm1, fu);
    r.b = srcPtr(s.src2, &s.imm2, fu);
    r.c = srcPtr(s.src3, &s.imm3, fu);
    r.out = &outRegs_[fu];
    r.lrfDst = s.dst.toLocalRf ? localRfs_[fu].slotPtr(s.dst.localAddr) : nullptr;
    r.crfDst = s.dst.toGlobalRf ? crf_.slotPtr(s.dst.globalAddr) : nullptr;
    // LD_IH merges the current destination's low half (currentDst order:
    // local RF, then CDRF, then the output register).
    r.mergeSrc = r.lrfDst ? r.lrfDst
                          : (r.crfDst ? static_cast<const Word*>(r.crfDst)
                                      : static_cast<const Word*>(r.out));
  }

  const std::size_t need = kCgaWheelSlots * np.maxCommitDepth;
  if (nativeWheel_.size() < need) nativeWheel_.resize(need);
  nativeWheelCounts_.fill(0);
}

CgaRunResult CgaArray::runNative(const KernelPlan& plan, u32 trips,
                                 u64 traceBase) {
  const NativePlan& np = *plan.native;
  CgaRunResult res;
  // Each kernel launch runs on its own local timeline; clear the bank-port
  // bookings left by previous launches or VLIW-mode accesses.
  l1_.arbiter().reset();

  for (const Preload& p : plan.preloads)
    localRfs_[p.fu].poke(p.localReg, crf_.peek(p.globalReg));
  const u64 preCycles = (plan.preloads.size() + 2) / 3;

  const u64 ii = static_cast<u64>(plan.ii);
  const u64 totalLogical =
      trips == 0 ? 0
                 : (static_cast<u64>(trips) - 1) * ii +
                       static_cast<u64>(plan.schedLength);
  cfg_.noteContextFetches(totalLogical);

  resolveNative(plan);
  NativeEngine e;
  e.l1 = &l1_;
  e.wheel = nativeWheel_.data();
  e.wheelCount = nativeWheelCounts_.data();
  e.depth = np.maxCommitDepth;
  e.traceBase = traceBase;

  // Commits due at cycle `g` (before reads), in issue order.
  auto drainSlot = [&](u64 g) {
    const u32 slot = static_cast<u32>(g & kCgaWheelMask);
    const u32 n = e.wheelCount[slot];
    if (n == 0) return;
    NativePending* p = e.wheel + slot * e.depth;
    for (u32 i = 0; i < n; ++i) {
      const NativeResolvedOp& o = *p[i].op;
      Word v = p[i].value;
      if (o.mergeHigh) v |= *o.mergeSrc & 0xFFFFFFFFull;
      *o.out = v;
      if (o.lrfDst) *o.lrfDst = v;
      if (o.crfDst) *o.crfDst = v;
    }
    e.wheelCount[slot] = 0;
  };

  // Guarded prologue/epilogue: per-op squash checks; all op-derived
  // statistics are already covered by the whole-launch batch below (every
  // op issues exactly `trips` times across the launch).
  auto runGuarded = [&](u64 from, u64 to) {
    for (u64 g = from; g < to; ++g) {
      drainSlot(g);
      const NativeContextInfo& ctx = np.contexts[g % ii];
      e.g = g;
      e.stall = 0;
      bool issued = false;
      for (u32 i = ctx.begin; i < ctx.end; ++i) {
        const NativeResolvedOp& o = nativeOps_[i];
        if (g < o.schedTime) continue;  // prologue squash
        if ((g - o.schedTime) / ii >= trips) continue;  // epilogue squash
        issued = true;
        o.fn(o, e);
      }
      if (issued) ++res.issueCycles;
      e.wall += 1 + static_cast<u64>(e.stall);
      res.stallCycles += static_cast<u64>(e.stall);
    }
  };

  u64 steadyBegin = totalLogical;
  u64 steadyEnd = totalLogical;
  if (totalLogical > 0) {
    steadyBegin = std::min(totalLogical, static_cast<u64>(plan.maxSchedTime));
    steadyEnd = std::min(totalLogical,
                         static_cast<u64>(plan.minSchedTime) +
                             static_cast<u64>(trips) * ii);
    if (steadyEnd < steadyBegin) steadyEnd = steadyBegin;
  }

  runGuarded(0, steadyBegin);

  // Cycle-skip warm-up bound: commits pushed by guarded prologue cycles
  // (g < steadyBegin, latency <= kCgaWheelSlots/2) all retire before
  // steadyBegin + kCgaWheelSlots.  Past that, a pending commit can only
  // come from a steady-state cycle, whose landing residue has depth > 0 —
  // so an idle residue provably has an empty slot and no issue, and the
  // loop may jump the cycle counter across the whole idle run.
  const u64 skipSafe = steadyBegin + kCgaWheelSlots;
  u64 g = steadyBegin;
  while (g < steadyEnd) {
    drainSlot(g);
    const NativeContextInfo& ctx = np.contexts[g % ii];
    if (ctx.skipRun != 0 && g >= skipSafe) {
      const u64 run = std::min<u64>(ctx.skipRun, steadyEnd - g);
      g += run;
      e.wall += run;
      continue;
    }
    e.g = g;
    e.stall = 0;
    for (u32 i = ctx.begin; i < ctx.end; ++i) {
      const NativeResolvedOp& o = nativeOps_[i];
      o.fn(o, e);
    }
    if (ctx.opCount != 0) ++res.issueCycles;
    e.wall += 1 + static_cast<u64>(e.stall);
    res.stallCycles += static_cast<u64>(e.stall);
    ++g;
  }

  runGuarded(steadyEnd, totalLogical);

  // Drain writes still pending past the last logical cycle, in cycle order.
  u64 tail = totalLogical;
  for (u64 c = totalLogical; c < totalLogical + kCgaWheelSlots; ++c) {
    if (e.wheelCount[c & kCgaWheelMask] == 0) continue;
    drainSlot(c);
    tail = c;
  }
  const u64 drainExtra = tail - totalLogical;

  for (const Writeback& wb : plan.writebacks)
    crf_.poke(wb.globalReg, localRfs_[wb.fu].peek(wb.localReg));
  const u64 wbCycles = (plan.writebacks.size() + 2) / 3;

  // Whole-launch batched statistics: every scheduled op issues exactly
  // `trips` times, so op-derived counters are perIter * trips plus the
  // preload/writeback constants.  Only issue/stall/conflict counts (booked
  // live above) and the wall clock are dynamic.
  const u64 t = trips;
  const NativeIterStats& it = np.perIter;
  const u64 nPre = plan.preloads.size();
  const u64 nWb = plan.writebacks.size();

  res.ops = it.ops * t;
  res.routeMoves = it.movs * t;
  res.arrayCycles = totalLogical;
  res.cycles = preCycles + e.wall + drainExtra + wbCycles;

  act_.cgaOps += res.ops;
  act_.cgaRouteMoves += res.routeMoves;
  act_.simdOps += it.simd * t;
  act_.ops16 += it.ops16 * t;
  act_.transports += it.transports * t;
  act_.cdrfCgaAccesses += it.cdrf * t + nPre + nWb;
  act_.l1CgaAccesses += it.l1Accesses * t;
  act_.cgaCycles += res.cycles;
  act_.cgaStallCycles += res.stallCycles;

  ScratchpadStats& l1s = l1_.mutableStats();
  l1s.reads += it.l1Reads * t;
  l1s.writes += it.l1Writes * t;

  RegFileStats& cs = crf_.mutableStats();
  cs.reads += it.crfReads * t + nPre;
  cs.writes += it.crfWrites * t + nWb;

  for (std::size_t fu = 0; fu < static_cast<std::size_t>(kCgaFus); ++fu) {
    RegFileStats& rs = localRfs_[fu].mutableStats();
    rs.reads += it.lrfReads[fu] * t;
    rs.writes += it.lrfWrites[fu] * t;
  }
  for (const Preload& p : plan.preloads) ++localRfs_[p.fu].mutableStats().writes;

  return res;
}

}  // namespace adres
