// Native execution tier (DESIGN.md §14): the plan-to-native lowering
// behind ExecTier::kNative.
//
// buildNativePlan specializes a decoded KernelPlan at plan-build time:
//  - every op gets a function pointer to a template-instantiated loop body
//    specialized per (dispatch kind, latency class) — realized per opcode,
//    so evalOp's switch constant-folds into the body (compute), and the
//    memory width / extension mode / half-select collapse to straight-line
//    code (loads, stores);
//  - per-iteration statistics (op counts, operand transports, RF and L1
//    traffic, down to per-FU local-RF reads/writes) are pre-summed once.
//    Every scheduled op issues exactly `trips` times per launch, so every
//    op-derived counter of a launch is `perIter * trips` plus the
//    preload/writeback constants — the executing loop touches no counter;
//  - per-residue commit landing depths bound the flat commit wheel, and
//    residues on which no op issues and no result retires are folded into
//    no-retire skip runs the steady loop jumps over in one step.
//
// At launch, CgaArray resolves each op's operand/destination selectors
// into raw pointers (FU output registers, local/central RF slots, plan
// immediates) once; the steady loop then runs pointer-to-pointer.  Only
// genuinely dynamic quantities remain per-cycle: L1 bank arbitration
// (stalls, conflicts) and the issue-cycle count.  The tier is bit- and
// cycle-exact with the reference loop (tests/cga/fastpath_ab_test).
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "cga/plan.hpp"

namespace adres {

class Scratchpad;

struct NativeResolvedOp;
struct NativeEngine;

/// A specialized steady-loop body: executes one op at the engine's current
/// cycle (reads through resolved pointers, pushes its commit, books L1
/// ports).  Instantiated from templates over (dispatch kind, latency
/// class) — per opcode for compute ops, per (width, mode) for memory ops.
using NativeExecFn = void (*)(const NativeResolvedOp&, NativeEngine&);

/// One op with every operand resolved to a raw pointer for one CgaArray
/// instance (filled per launch from the plan's NativeOpSpec).
struct NativeResolvedOp {
  NativeExecFn fn = nullptr;
  const Word* a = nullptr;        ///< src1
  const Word* b = nullptr;        ///< src2 (plan immediate when kImm)
  const Word* c = nullptr;        ///< src3 (store data)
  Word* out = nullptr;            ///< the FU's output register
  Word* lrfDst = nullptr;         ///< optional local-RF slot
  Word* crfDst = nullptr;         ///< optional CDRF slot
  const Word* mergeSrc = nullptr; ///< LD_IH: current-dst low half at commit
  u32 lat = 1;
  u32 schedTime = 0;              ///< guarded prologue/epilogue squashing
  i32 imm = 0;                    ///< control-field immediate (C4SHUF, MOVI*)
  bool mergeHigh = false;         ///< LD_IH commit merge
};

/// One pending commit: the resolved op carries the destination pointers.
struct NativePending {
  const NativeResolvedOp* op = nullptr;
  Word value = 0;
};

/// Mutable per-launch execution state handed to every NativeExecFn.
struct NativeEngine {
  Scratchpad* l1 = nullptr;
  NativePending* wheel = nullptr;  ///< kCgaWheelSlots x depth, slot-major
  u32* wheelCount = nullptr;       ///< per-slot fill counts
  u32 depth = 1;                   ///< plan's maxCommitDepth
  u64 g = 0;                       ///< current logical cycle
  u64 wall = 0;                    ///< wall cycles elapsed (logical + stalls)
  u64 traceBase = 0;               ///< L1 arbitration timeline anchor
  int stall = 0;                   ///< max port wait this cycle
};

/// Build-time form of one op: everything resolution needs, plus the stable
/// storage the resolved immediate pointers alias (plans are immutable and
/// outlive every launch).
struct NativeOpSpec {
  NativeExecFn fn = nullptr;
  u8 fu = 0;
  u8 lat = 1;
  u16 schedTime = 0;
  SrcSel src1, src2, src3;
  DstSel dst;
  i32 imm = 0;
  /// Operand values when the corresponding src is kImm (0 for kNone);
  /// imm2 is the pre-scaled memory immediate for memory ops.
  Word imm1 = 0, imm2 = 0, imm3 = 0;
  bool mergeHigh = false;
};

struct NativeContextInfo {
  u32 begin = 0;  ///< flat [begin, end) op range of this context slot
  u32 end = 0;
  u32 opCount = 0;
  /// No-retire cycle skip: the number of consecutive steady-state cycles,
  /// starting at this residue, on which no op issues AND no commit retires
  /// (0 when this residue is active).  The steady loop advances the cycle
  /// counter across the whole run in one step.
  u32 skipRun = 0;
};

/// Per-iteration statically-known statistics.  Every scheduled op issues
/// exactly `trips` times per launch, so a launch adds `perIter * trips`
/// (plus the preload/writeback constants) to each counter.
struct NativeIterStats {
  u64 ops = 0;
  u64 movs = 0;
  u64 simd = 0;
  u64 ops16 = 0;
  u64 transports = 0;   ///< kOutput operand reads + one per committed result
  u64 cdrf = 0;         ///< CDRF accesses (kGlobalRf reads + toGlobalRf commits)
  u64 crfReads = 0;
  u64 crfWrites = 0;
  u64 l1Reads = 0;
  u64 l1Writes = 0;
  u64 l1Accesses = 0;
  std::array<u64, kCgaFus> lrfReads = {};
  std::array<u64, kCgaFus> lrfWrites = {};
};

/// The native specialization of one kernel, shared read-only like the plan
/// that owns it.
struct NativePlan {
  std::vector<NativeOpSpec> ops;  ///< contexts concatenated, FU-ascending
  std::vector<NativeContextInfo> contexts;  ///< size == ii
  NativeIterStats perIter;
  /// Max commits retiring on any single cycle (sizes the flat wheel).
  u32 maxCommitDepth = 1;
};

/// Specializes `plan` (built with all common sections filled) for the
/// native tier.  Called by buildKernelPlan when tier == kNative.
std::shared_ptr<const NativePlan> buildNativePlan(const KernelPlan& plan);

}  // namespace adres
