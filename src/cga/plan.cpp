#include "cga/plan.hpp"

#include <algorithm>

#include "cga/native.hpp"
#include "common/check.hpp"
#include "isa/semantics.hpp"

namespace adres {

KernelPlan buildKernelPlan(const KernelConfig& k, ExecTier tier) {
  ADRES_CHECK(tier == ExecTier::kReference || tier == ExecTier::kInterpreted ||
                  tier == ExecTier::kNative,
              "unknown exec tier " << static_cast<int>(tier)
                                   << " for kernel '" << k.name << "'");
  k.validate();
  KernelPlan p;
  p.name = k.name;
  p.tier = tier;
  p.source = k;
  p.ii = k.ii;
  p.schedLength = k.schedLength;
  p.preloads = k.preloads;
  p.writebacks = k.writebacks;
  p.contexts.resize(k.contexts.size());

  u32 minSched = ~0u;
  u32 maxSched = 0;
  for (std::size_t c = 0; c < k.contexts.size(); ++c) {
    ContextPlan& cp = p.contexts[c];
    for (int fu = 0; fu < kCgaFus; ++fu) {
      const FuOp& f = k.contexts[c].fu[fu];
      if (f.isNop()) continue;
      PlanOp op;
      op.op = f.op;
      op.fu = static_cast<u8>(fu);
      op.lat = static_cast<u8>(opInfo(f.op).latency);
      ADRES_CHECK(2 * static_cast<u64>(op.lat) <= kCgaWheelSlots,
                  "op latency " << static_cast<int>(op.lat)
                                << " exceeds the commit-wheel bound");
      op.isMov = f.op == Opcode::MOV;
      op.isSimdOp = isSimd(f.op);
      op.ops16 = static_cast<u8>(ops16PerInstr(f.op));
      op.schedTime = f.schedTime;
      op.src1 = f.src1;
      op.src2 = f.src2;
      op.src3 = f.src3;
      op.dst = f.dst;
      op.imm = f.imm;
      if (isStore(f.op) || isLoad(f.op)) {
        op.kind = isStore(f.op) ? PlanOpKind::kStore : PlanOpKind::kLoad;
        op.memBytes = static_cast<u8>(memAccessBytes(f.op));
        op.immOperand = fromScalar(f.imm << memImmScale(f.op));
        op.storeHigh = f.op == Opcode::ST_IH;
        switch (f.op) {
          case Opcode::LD_C: op.loadMode = LoadMode::kSext8; break;
          case Opcode::LD_C2: op.loadMode = LoadMode::kSext16; break;
          case Opcode::LD_IH: op.loadMode = LoadMode::kHigh; break;
          default: op.loadMode = LoadMode::kZext; break;
        }
      } else {
        op.kind = PlanOpKind::kCompute;
        op.immOperand = fromScalar(f.imm);
      }
      minSched = std::min(minSched, static_cast<u32>(f.schedTime));
      maxSched = std::max(maxSched, static_cast<u32>(f.schedTime));
      ++cp.opCount;
      if (op.isMov) ++cp.movCount;
      if (op.isSimdOp) ++cp.simdCount;
      cp.ops16Sum += op.ops16;
      cp.ops.push_back(op);
    }
  }
  p.minSchedTime = minSched == ~0u ? 0 : minSched;
  p.maxSchedTime = maxSched;

  // Per-iteration (kind, latency) class counts for the cycle-attribution
  // profiler: every scheduled op fires exactly `trips` times per launch.
  for (const ContextPlan& cp : p.contexts) {
    for (const PlanOp& op : cp.ops) {
      auto it = std::find_if(p.classes.begin(), p.classes.end(),
                             [&](const PlanClassCount& c) {
                               return c.kind == op.kind && c.lat == op.lat;
                             });
      if (it == p.classes.end()) {
        p.classes.push_back({op.kind, op.lat, 1});
      } else {
        ++it->ops;
      }
    }
  }
  std::sort(p.classes.begin(), p.classes.end(),
            [](const PlanClassCount& a, const PlanClassCount& b) {
              return a.kind != b.kind ? a.kind < b.kind : a.lat < b.lat;
            });
  if (tier == ExecTier::kNative) p.native = buildNativePlan(p);
  return p;
}

std::shared_ptr<const ProgramPlans> buildProgramPlans(
    const std::vector<KernelConfig>& kernels, ExecTier tier) {
  auto plans = std::make_shared<ProgramPlans>();
  plans->tier = tier;
  plans->kernels.reserve(kernels.size());
  for (const KernelConfig& k : kernels)
    plans->kernels.push_back(
        buildKernelPlan(decodeKernel(encodeKernel(k)), tier));
  return plans;
}

}  // namespace adres
