// Decoded kernel plans: the per-KernelConfig pre-decode behind the
// simulator's steady-state fast path.
//
// The cycle-accurate array loop used to re-classify every FU op on every
// logical cycle (isNop / opInfo / memImmScale / ops16PerInstr switch chains
// across translation units) and re-test the software-pipeline squash
// predicates per op.  A KernelPlan resolves all of that once per kernel:
// per-context dense lists of the active ops with pre-decoded dispatch kind,
// latency, memory width, load extension mode and immediate operands, plus
// pre-summed per-context activity increments for the steady-state window
// in which no op can be squashed.  Executing a plan is cycle-exact and
// bit-exact with executing its KernelConfig (tests/cga/fastpath_ab_test).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cga/context.hpp"
#include "cga/exec_tier.hpp"

namespace adres {

struct NativePlan;  // cga/native.hpp: the native tier's specialized form

/// Dispatch class of an active FU op, resolved at plan-build time.
enum class PlanOpKind : u8 { kCompute, kLoad, kStore };

/// How a load's raw memory word becomes the committed register value
/// (pre-decoded applyLoadResult).
enum class LoadMode : u8 {
  kZext,   ///< LD_UC / LD_UC2 / LD_I: width-masked raw, high half cleared
  kSext8,  ///< LD_C
  kSext16, ///< LD_C2
  kHigh,   ///< LD_IH: raw << 32, low half merged at commit
};

/// One active (non-nop) FU op with every per-cycle classification resolved.
struct PlanOp {
  Opcode op = Opcode::NOP;
  u8 fu = 0;
  PlanOpKind kind = PlanOpKind::kCompute;
  u8 lat = 1;             ///< opInfo(op).latency
  u8 memBytes = 0;        ///< 1/2/4 for loads and stores
  LoadMode loadMode = LoadMode::kZext;
  bool storeHigh = false; ///< ST_IH: store src3's high half
  bool isMov = false;
  bool isSimdOp = false;
  u8 ops16 = 0;           ///< ops16PerInstr(op)
  u16 schedTime = 0;
  SrcSel src1, src2, src3;
  DstSel dst;
  i32 imm = 0;
  /// Pre-resolved src2 immediate operand: fromScalar(imm) for compute ops,
  /// fromScalar(imm << memImmScale(op)) for memory ops.
  Word immOperand = 0;
};

/// The active ops of one context slot plus the batched activity increments
/// the steady-state loop applies per cycle instead of per op.
struct ContextPlan {
  std::vector<PlanOp> ops;  ///< FU-ascending (the reference execution order)
  u32 opCount = 0;
  u32 movCount = 0;
  u32 simdCount = 0;
  u64 ops16Sum = 0;
};

/// Commit-wheel geometry of the array fast path.  Correctness needs
/// 2 * maxLatency <= kCgaWheelSlots (a slot is always drained before any
/// push can wrap onto it); buildKernelPlan checks every op against it.
inline constexpr u64 kCgaWheelSlots = 16;
inline constexpr u64 kCgaWheelMask = kCgaWheelSlots - 1;

/// Per-iteration op count of one (dispatch kind, latency) class across the
/// whole kernel.  Every scheduled op executes exactly once per trip, so a
/// launch's per-class op totals are `ops * trips` — the profiler attributes
/// steady-state work without touching the hot loop.
struct PlanClassCount {
  PlanOpKind kind = PlanOpKind::kCompute;
  u8 lat = 1;
  u32 ops = 0;  ///< scheduled ops of this class per iteration
};

/// A fully pre-decoded kernel: everything CgaArray::run needs, in dense
/// per-context form.  A plan is built FOR an execution tier (DESIGN.md
/// §14); CgaArray::run dispatches on it.  All tiers carry the decoded
/// sections below; kNative plans additionally carry the specialized
/// NativePlan, and the source KernelConfig is retained so the kReference
/// tier runs the original per-cycle loop through the same entry point.
struct KernelPlan {
  std::string name;
  ExecTier tier = ExecTier::kInterpreted;
  int ii = 1;
  int schedLength = 1;
  /// Steady-state window: logical cycle g has no squashed op iff
  /// g >= maxSchedTime and g < minSchedTime + trips * ii.
  u32 maxSchedTime = 0;
  u32 minSchedTime = 0;
  std::vector<ContextPlan> contexts;  ///< size == ii
  std::vector<Preload> preloads;
  std::vector<Writeback> writebacks;
  std::vector<PlanClassCount> classes;  ///< (kind, lat)-ascending
  KernelConfig source;  ///< the validated decode the plan was built from
  /// Specialized native form; non-null iff tier == kNative.
  std::shared_ptr<const NativePlan> native;
};

/// Pre-decodes `k` for `tier` (validating it, as the reference path does).
/// An out-of-range tier throws SimError — tier selection fails loudly at
/// plan build, never silently at launch.
KernelPlan buildKernelPlan(const KernelConfig& k,
                           ExecTier tier = ExecTier::kInterpreted);

/// Decoded plans of a whole program's kernel table, shared read-only
/// between processors (the packet farm's workers share one instance the
/// same way they share the mapped program).
struct ProgramPlans {
  ExecTier tier = ExecTier::kInterpreted;  ///< tier every plan was built for
  std::vector<KernelPlan> kernels;
};

/// Builds plans for a kernel table.  Each kernel is first round-tripped
/// through encodeKernel/decodeKernel so the plan describes exactly what the
/// sequencer reads back out of configuration memory after Processor::load
/// (idempotent for kernels that already went through the binary path).
std::shared_ptr<const ProgramPlans> buildProgramPlans(
    const std::vector<KernelConfig>& kernels,
    ExecTier tier = ExecTier::kInterpreted);

/// How a processor executes kernel launches: the tier plus an optional
/// pre-built plan-cache handle (the packet farm shares one read-only
/// ProgramPlans across workers).  Owned by sdr::RxRunOptions and passed to
/// Processor::load — this replaces the former ad-hoc plan threading
/// through ModemOnProcessor.  When `plans` is set its tier must equal
/// `tier`; when null, the loader builds plans at `tier`.
struct ExecPolicy {
  ExecTier tier = defaultExecTier();
  std::shared_ptr<const ProgramPlans> plans;
  /// Allow the warm-reload fast path: when the SAME Program object (by
  /// address) is re-loaded with the same shared plans and tier, the loader
  /// skips re-validating and re-encoding the unchanged image and only
  /// replays the load-time DMA transfers (identical bookings, identical
  /// memory bytes) and the state reset.  Callers must guarantee the Program
  /// is immutable between loads — RxSession's resident modem program is;
  /// default off for ad-hoc loads where the object may have been edited.
  bool warmReload = false;
};

}  // namespace adres
