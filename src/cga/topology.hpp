// CGA interconnect topology (paper Fig 3; DESIGN.md §3 normative choice).
//
// The 16 units form a 4x4 torus: every FU's registered output feeds its
// four mesh neighbours (wrap-around) and itself.  FUs 0..2 additionally own
// 2-read/1-write ports into the central register files (they are the same
// units the VLIW slots use); all 16 FUs carry a local 2R/1W register file.
#pragma once

#include <array>

#include "common/check.hpp"
#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace adres {

inline constexpr int kCgaRows = 4;
inline constexpr int kCgaCols = 4;
static_assert(kCgaRows * kCgaCols == kCgaFus);

/// Number of FUs with central-register-file ports (= VLIW issue slots).
inline constexpr int kGlobalPortFus = kVliwSlots;

/// True if `fu` may read/write the central register files.
constexpr bool hasGlobalPort(int fu) { return fu >= 0 && fu < kGlobalPortFus; }

enum class Dir : u8 { kNorth, kSouth, kEast, kWest };

/// Mesh neighbour of `fu` in direction `d` (torus wrap-around).
constexpr int neighbour(int fu, Dir d) {
  const int r = fu / kCgaCols;
  const int c = fu % kCgaCols;
  switch (d) {
    case Dir::kNorth: return ((r + kCgaRows - 1) % kCgaRows) * kCgaCols + c;
    case Dir::kSouth: return ((r + 1) % kCgaRows) * kCgaCols + c;
    case Dir::kEast: return r * kCgaCols + (c + 1) % kCgaCols;
    case Dir::kWest: return r * kCgaCols + (c + kCgaCols - 1) % kCgaCols;
  }
  return fu;
}

/// All FUs whose output register FU `fu` can read (self + 4 neighbours).
inline std::array<int, 5> readableFrom(int fu) {
  return {fu, neighbour(fu, Dir::kNorth), neighbour(fu, Dir::kSouth),
          neighbour(fu, Dir::kEast), neighbour(fu, Dir::kWest)};
}

/// True if FU `reader` can source an operand from FU `producer`'s output
/// register through the mesh (one mux hop).
inline bool canRead(int reader, int producer) {
  for (int f : readableFrom(reader))
    if (f == producer) return true;
  return false;
}

/// Manhattan-style hop distance on the torus (lower bound on routing moves).
constexpr int torusHops(int a, int b) {
  const int ra = a / kCgaCols, ca = a % kCgaCols;
  const int rb = b / kCgaCols, cb = b % kCgaCols;
  const int dr = ra > rb ? ra - rb : rb - ra;
  const int dc = ca > cb ? ca - cb : cb - ca;
  const int wr = dr < kCgaRows - dr ? dr : kCgaRows - dr;
  const int wc = dc < kCgaCols - dc ? dc : kCgaCols - dc;
  return wr + wc;
}

}  // namespace adres
