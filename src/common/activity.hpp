// Architecture activity counters.
//
// The simulator books micro-architectural events here while executing; the
// power model (src/power) converts events to energy with per-event
// coefficients (DESIGN.md §6).  Component-local stats (RF ports, L1, I$,
// config memory) live with their components; this struct holds the
// cross-cutting counts that have no single owner.
#pragma once

#include "common/types.hpp"

namespace adres {

struct ActivityCounters {
  // Mode occupancy (core cycles).
  u64 vliwCycles = 0;      ///< cycles in non-kernel (VLIW) mode
  u64 cgaCycles = 0;       ///< cycles in kernel (CGA) mode
  u64 vliwStallCycles = 0; ///< VLIW-mode stalls (I$ miss, hazards) — subset of vliwCycles
  u64 cgaStallCycles = 0;  ///< CGA-mode stalls (L1 contention) — subset of cgaCycles
  u64 sleepCycles = 0;     ///< halt-until-resume cycles
  u64 modeSwitches = 0;    ///< VLIW <-> CGA transitions

  // Operation issue.
  u64 vliwOps = 0;         ///< non-nop ops issued by the VLIW slots
  u64 cgaOps = 0;          ///< non-nop ops executed by array FUs
  u64 cgaRouteMoves = 0;   ///< subset of cgaOps that are routing MOVs
  u64 simdOps = 0;         ///< SIMD1/SIMD2 ops (both modes), for GOPS
  u64 ops16 = 0;           ///< total 16-bit-equivalent operations, for GOPS

  // Interconnect transports: operand fetches through the inter-FU muxing
  // network (neighbor reads, column-bus reads) and result transports into
  // pipeline registers.  Dominant power contributor per Fig 6.
  u64 transports = 0;

  // Mode attribution for shared components (the power model splits the
  // global L1/CDRF statistics into per-mode portions with these).
  u64 l1CgaAccesses = 0;    ///< L1 accesses issued by array FUs
  u64 cdrfCgaAccesses = 0;  ///< central-RF port events during kernel mode

  void reset() { *this = ActivityCounters{}; }

  u64 totalCycles() const { return vliwCycles + cgaCycles + sleepCycles; }
  u64 totalOps() const { return vliwOps + cgaOps; }
};

}  // namespace adres
