// Bit-level pack/unpack helpers used by the instruction encoder and the
// configuration-memory image builder.
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace adres {

/// Writes `nbits` of `value` into `bits` starting at bit `pos` (LSB-first),
/// growing the vector as needed.  Used to assemble 128-bit VLIW bundles and
/// ultra-wide CGA configuration words.
class BitWriter {
 public:
  void put(u64 value, int nbits) {
    ADRES_CHECK(nbits >= 0 && nbits <= 64, "field width " << nbits);
    ADRES_CHECK(nbits == 64 || (value >> nbits) == 0,
                "value 0x" << std::hex << value << " overflows " << std::dec
                           << nbits << "-bit field");
    for (int i = 0; i < nbits; ++i) {
      const std::size_t bit = pos_ + static_cast<std::size_t>(i);
      const std::size_t byte = bit / 8;
      if (byte >= bytes_.size()) bytes_.resize(byte + 1, 0);
      if ((value >> i) & 1) bytes_[byte] |= static_cast<u8>(1u << (bit % 8));
    }
    pos_ += static_cast<std::size_t>(nbits);
  }

  std::size_t bitCount() const { return pos_; }
  const std::vector<u8>& bytes() const { return bytes_; }

  /// Pads with zero bits up to a multiple of `align` bits.
  void alignTo(std::size_t align) {
    while (pos_ % align != 0) put(0, 1);
  }

 private:
  std::vector<u8> bytes_;
  std::size_t pos_ = 0;
};

/// Sequential reader matching BitWriter's layout.
class BitReader {
 public:
  explicit BitReader(const std::vector<u8>& bytes) : bytes_(bytes) {}

  u64 get(int nbits) {
    ADRES_CHECK(nbits >= 0 && nbits <= 64, "field width " << nbits);
    u64 v = 0;
    for (int i = 0; i < nbits; ++i) {
      const std::size_t bit = pos_ + static_cast<std::size_t>(i);
      const std::size_t byte = bit / 8;
      ADRES_CHECK(byte < bytes_.size(), "read past end of bitstream");
      if ((bytes_[byte] >> (bit % 8)) & 1) v |= u64{1} << i;
    }
    pos_ += static_cast<std::size_t>(nbits);
    return v;
  }

  std::size_t bitPos() const { return pos_; }
  void alignTo(std::size_t align) {
    while (pos_ % align != 0) (void)get(1);
  }

 private:
  const std::vector<u8>& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace adres
