// Error-reporting helpers.
//
// Simulator-internal invariant violations and ill-formed inputs (bad programs,
// out-of-range configuration) throw SimError with a formatted message.  Hot
// datapath code uses ADRES_DCHECK, compiled out in release-with-assert-off
// builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace adres {

/// Exception thrown on simulator invariant violations or invalid inputs.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void failCheck(const char* cond, const char* file, int line,
                                   const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw SimError(os.str());
}
}  // namespace detail

}  // namespace adres

/// Always-on invariant check; throws adres::SimError on failure.
#define ADRES_CHECK(cond, msg)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::adres::detail::failCheck(#cond, __FILE__, __LINE__,           \
                                 (std::ostringstream{} << msg).str()); \
    }                                                                 \
  } while (0)

/// Debug-only check for hot paths.
#ifndef NDEBUG
#define ADRES_DCHECK(cond, msg) ADRES_CHECK(cond, msg)
#else
#define ADRES_DCHECK(cond, msg) \
  do {                          \
  } while (0)
#endif
