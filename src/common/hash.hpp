// Stable 64-bit hashing for configuration keys.
//
// Campaign cells and checkpoint records are keyed by hashes of config
// structs; these helpers are fixed-width, endian-independent arithmetic
// (SplitMix64 finalizer based), so a hash written into a checkpoint on one
// machine matches the hash recomputed on any other — unlike std::hash,
// which is implementation-defined.
#pragma once

#include <bit>
#include <cstdint>

#include "common/types.hpp"

namespace adres {

/// SplitMix64 finalizer: the avalanche mix used for seeding and hashing.
constexpr u64 mix64(u64 x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

/// Folds `v` into hash `h` (order-sensitive).
constexpr u64 hashCombine(u64 h, u64 v) {
  return mix64(h ^ (v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2)));
}

/// The IEEE-754 bit pattern of a double, with -0.0 canonicalized to +0.0 so
/// equal values always hash equally.
inline u64 doubleBits(double d) {
  return std::bit_cast<u64>(d == 0.0 ? 0.0 : d);
}

}  // namespace adres
