// Minimal self-contained JSON parser — no external dependency.  Used to
// validate the repo's JSON exporters in tests (Chrome trace,
// adres.counters.v1, adres.metrics.v1, bench dumps) and to load
// adres.campaign.v1 checkpoints for resumable campaigns.  Not a
// general-purpose parser (\uXXXX escapes are accepted but collapsed
// to '?').
#pragma once

#include <cctype>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace adres::json {

struct JsonValue {
  enum Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool hasKey(const std::string& k) const { return object.count(k) != 0; }
  const JsonValue& at(const std::string& k) const {
    auto it = object.find(k);
    if (it == object.end()) throw std::runtime_error("missing key " + k);
    return it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = parseValue();
    skipWs();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw std::runtime_error("JSON error at offset " + std::to_string(pos_) +
                             ": " + why);
  }
  void skipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  char get() {
    char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (get() != c) fail(std::string("expected '") + c + "'");
  }

  JsonValue parseValue() {
    skipWs();
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return parseString();
      case 't': case 'f': return parseBool();
      case 'n': return parseNull();
      default: return parseNumber();
    }
  }
  JsonValue parseObject() {
    JsonValue v;
    v.type = JsonValue::kObject;
    expect('{');
    skipWs();
    if (peek() == '}') { ++pos_; return v; }
    while (true) {
      skipWs();
      JsonValue key = parseString();
      skipWs();
      expect(':');
      v.object[key.str] = parseValue();
      skipWs();
      char c = get();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return v;
  }
  JsonValue parseArray() {
    JsonValue v;
    v.type = JsonValue::kArray;
    expect('[');
    skipWs();
    if (peek() == ']') { ++pos_; return v; }
    while (true) {
      v.array.push_back(parseValue());
      skipWs();
      char c = get();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return v;
  }
  JsonValue parseString() {
    JsonValue v;
    v.type = JsonValue::kString;
    expect('"');
    while (true) {
      char c = get();
      if (c == '"') break;
      if (c == '\\') {
        char e = get();
        switch (e) {
          case '"': v.str += '"'; break;
          case '\\': v.str += '\\'; break;
          case '/': v.str += '/'; break;
          case 'b': v.str += '\b'; break;
          case 'f': v.str += '\f'; break;
          case 'n': v.str += '\n'; break;
          case 'r': v.str += '\r'; break;
          case 't': v.str += '\t'; break;
          case 'u': {
            for (int i = 0; i < 4; ++i)
              if (!std::isxdigit(static_cast<unsigned char>(get())))
                fail("bad \\u escape");
            v.str += '?';  // codepoint value irrelevant for these tests
            break;
          }
          default: fail("bad escape");
        }
      } else {
        v.str += c;
      }
    }
    return v;
  }
  JsonValue parseBool() {
    JsonValue v;
    v.type = JsonValue::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }
  JsonValue parseNull() {
    if (s_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    return {};
  }
  JsonValue parseNumber() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("bad number");
    JsonValue v;
    v.type = JsonValue::kNumber;
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  std::string s_;
  std::size_t pos_ = 0;
};

}  // namespace adres::json
