// Deterministic pseudo-random generation for tests, workloads and channels.
//
// xoshiro256** — fast, reproducible across platforms, good statistical
// quality; all stochastic inputs in the repo (payload bits, noise, channel
// taps) derive from this so experiments are exactly repeatable.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/hash.hpp"
#include "common/types.hpp"

namespace adres {

/// Deterministic 64-bit PRNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(u64 seed = 0x9E3779B97F4A7C15ull) : seed_(seed) {
    // SplitMix64 seeding.
    u64 z = seed;
    for (auto& s : state_) {
      z += 0x9E3779B97F4A7C15ull;
      u64 x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      s = x ^ (x >> 31);
    }
  }

  /// Derives an independent labelled stream (SplitMix-style mixing).  The
  /// child is a pure function of the *construction seed* and `label` —
  /// draws already taken from this generator do not shift it — so consumers
  /// holding different labels stay reproducible independently of the order
  /// (or count) of each other's draws.
  Rng fork(u64 label) const {
    return Rng(hashCombine(mix64(seed_ ^ 0x5851F42D4C957F2Dull), label));
  }

  u64 next() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n).
  u64 below(u64 n) { return n ? next() % n : 0; }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Standard normal via Box-Muller (one value per call; caches the pair).
  double gaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double th = 6.283185307179586 * u2;
    cached_ = r * std::sin(th);
    has_cached_ = true;
    return r * std::cos(th);
  }

  bool bit() { return (next() & 1) != 0; }

 private:
  static constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
  u64 seed_ = 0;  ///< construction seed, kept so fork() is draw-independent
  u64 state_[4] = {};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace adres
