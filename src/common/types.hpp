// Fundamental datapath types for the ADRES-SDR simulator.
//
// The processor's datapaths and registers are 64 bits wide (paper §2.B).
// Basic instruction groups operate on the 32 LSBs only; the SIMD groups
// operate on a 4 x 16-bit lane alignment.  These helpers implement the lane
// view plus the fixed-point (Q15) arithmetic the SIMD units provide.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace adres {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// A 64-bit datapath word.
using Word = u64;

inline constexpr int kLanes = 4;           ///< SIMD lanes per 64-bit word.
inline constexpr int kLaneBits = 16;       ///< Bits per SIMD lane.
inline constexpr int kScalarBits = 32;     ///< Width of the basic-group ALU.

/// Extracts lane `i` (0 = least significant 16 bits) as a signed value.
constexpr i16 lane(Word w, int i) {
  return static_cast<i16>(static_cast<u16>(w >> (16 * i)));
}

/// Extracts lane `i` as an unsigned value.
constexpr u16 laneU(Word w, int i) {
  return static_cast<u16>(w >> (16 * i));
}

/// Replaces lane `i` of `w` with `v`.
constexpr Word withLane(Word w, int i, i16 v) {
  const int sh = 16 * i;
  return (w & ~(u64{0xFFFF} << sh)) |
         (static_cast<u64>(static_cast<u16>(v)) << sh);
}

/// Builds a word from four signed lanes (lane 0 in the LSBs).
constexpr Word packLanes(i16 a, i16 b, i16 c, i16 d) {
  return static_cast<u64>(static_cast<u16>(a)) |
         (static_cast<u64>(static_cast<u16>(b)) << 16) |
         (static_cast<u64>(static_cast<u16>(c)) << 32) |
         (static_cast<u64>(static_cast<u16>(d)) << 48);
}

/// Splits a word into four signed lanes.
constexpr std::array<i16, 4> unpackLanes(Word w) {
  return {lane(w, 0), lane(w, 1), lane(w, 2), lane(w, 3)};
}

/// Low 32 bits as signed scalar (the basic-group operand view).
constexpr i32 lo32(Word w) { return static_cast<i32>(static_cast<u32>(w)); }

/// Low 32 bits as unsigned scalar.
constexpr u32 lo32u(Word w) { return static_cast<u32>(w); }

/// Makes a word from a 32-bit scalar result; high half is cleared, matching
/// the documented convention that basic-group ops define only the 32 LSBs.
constexpr Word fromScalar(i32 v) { return static_cast<u32>(v); }
constexpr Word fromScalar(u32 v) { return v; }

// ---------------------------------------------------------------------------
// Saturating 16-bit / Q15 arithmetic used by the SIMD units.
// ---------------------------------------------------------------------------

/// Clamps a wide intermediate into the i16 range.
constexpr i16 sat16(i32 v) {
  if (v > std::numeric_limits<i16>::max()) return std::numeric_limits<i16>::max();
  if (v < std::numeric_limits<i16>::min()) return std::numeric_limits<i16>::min();
  return static_cast<i16>(v);
}

constexpr i16 satAdd16(i16 a, i16 b) { return sat16(i32{a} + i32{b}); }
constexpr i16 satSub16(i16 a, i16 b) { return sat16(i32{a} - i32{b}); }

/// Q15 multiply with rounding: (a*b + 2^14) >> 15, saturated.
/// -1.0 * -1.0 saturates to +0.999969 as in every fixed-point DSP.
constexpr i16 mulQ15(i16 a, i16 b) {
  const i32 p = (i32{a} * i32{b} + (1 << 14)) >> 15;
  return sat16(p);
}

constexpr i16 satNeg16(i16 a) { return a == std::numeric_limits<i16>::min()
                                           ? std::numeric_limits<i16>::max()
                                           : static_cast<i16>(-a); }

constexpr i16 satAbs16(i16 a) { return a < 0 ? satNeg16(a) : a; }

// ---------------------------------------------------------------------------
// Complex fixed-point sample type used throughout the DSP/golden models.
// One 64-bit word carries two cint16 samples: [re0, im0, re1, im1].
// ---------------------------------------------------------------------------

/// A complex sample with Q15 real/imaginary parts.
struct cint16 {
  i16 re = 0;
  i16 im = 0;

  friend constexpr bool operator==(cint16 a, cint16 b) = default;

  friend constexpr cint16 operator+(cint16 a, cint16 b) {
    return {satAdd16(a.re, b.re), satAdd16(a.im, b.im)};
  }
  friend constexpr cint16 operator-(cint16 a, cint16 b) {
    return {satSub16(a.re, b.re), satSub16(a.im, b.im)};
  }
  /// Q15 complex product.
  friend constexpr cint16 operator*(cint16 a, cint16 b) {
    const i16 rr = mulQ15(a.re, b.re);
    const i16 ii = mulQ15(a.im, b.im);
    const i16 ri = mulQ15(a.re, b.im);
    const i16 ir = mulQ15(a.im, b.re);
    return {satSub16(rr, ii), satAdd16(ri, ir)};
  }
  constexpr cint16 conj() const { return {re, satNeg16(im)}; }

  /// |x|^2 in Q15 (saturating).
  constexpr i16 norm2() const {
    return satAdd16(mulQ15(re, re), mulQ15(im, im));
  }
};

/// Packs two complex samples into one 64-bit datapath word.
constexpr Word packC2(cint16 s0, cint16 s1) {
  return packLanes(s0.re, s0.im, s1.re, s1.im);
}

/// Unpacks complex sample `i` (0 or 1) from a datapath word.
constexpr cint16 unpackC(Word w, int i) {
  return {lane(w, 2 * i), lane(w, 2 * i + 1)};
}

}  // namespace adres
