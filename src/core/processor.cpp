#include "core/processor.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "isa/encoding.hpp"
#include "isa/semantics.hpp"

namespace adres {

const char* stopReasonName(StopReason r) {
  switch (r) {
    case StopReason::kHalt: return "halt";
    case StopReason::kMaxCycles: return "max_cycles";
    case StopReason::kExternalStall: return "external_stall";
    case StopReason::kOffEnd: return "off_end";
    case StopReason::kCancelled: return "cancelled";
  }
  return "unknown";
}

std::string RegionProfile::mode() const {
  if (cycles == 0) return "-";
  const double cgaShare = static_cast<double>(cgaCycles) / static_cast<double>(cycles);
  if (cgaShare > 0.8) return "CGA";
  if (cgaShare < 0.1) return "VLIW";
  return "mixed";
}

Processor::Processor() : cga_(crf_, l1_, cfgMem_, act_), dma_(l1_, cfgMem_) {}

void Processor::load(const Program& prog,
                     std::shared_ptr<const ProgramPlans> plans) {
  ExecPolicy policy;
  if (plans) policy.tier = plans->tier;
  policy.plans = std::move(plans);
  load(prog, std::move(policy));
}

void Processor::load(const Program& prog, ExecPolicy policy) {
  // Warm-reload fast path (ExecPolicy::warmReload): the same immutable
  // Program with the same shared plans was loaded before, so the expensive
  // validate/encode/decode image work would reproduce byte-identical state.
  // Only the load-time DMA transfers are replayed — same addresses, same
  // bytes, same bookings — so DMA stats, power accounting, and post-load
  // memory contents are exactly those of a cold load.
  if (policy.warmReload && warmProg_ == &prog && policy.plans != nullptr &&
      warmPlans_ == policy.plans) {
    for (const DataSegment& seg : prog_.data) dma_.toL1(seg.addr, seg.bytes);
    for (std::size_t i = 0; i < warmKernelImages_.size(); ++i)
      dma_.toConfig(warmKernelOffsets_[i], warmKernelImages_[i]);
    resetLoadedState();
    return;
  }
  warmProg_ = nullptr;
  warmPlans_.reset();
  warmKernelImages_.clear();
  warmKernelOffsets_.clear();

  prog.validate();
  prog_ = prog;

  // Exercise the binary text path: encode to the 128-bit-line image the
  // external instruction memory holds, then decode back.
  textImage_ = encodeProgram(prog.bundles);
  prog_.bundles = decodeProgram(textImage_);

  // Data segments into L1 and kernels into configuration memory over DMA,
  // as the platform host would.
  for (const DataSegment& seg : prog.data) dma_.toL1(seg.addr, seg.bytes);
  u32 cfgOffset = 0;
  std::vector<std::pair<u32, u32>> spans;
  for (const KernelConfig& k : prog.kernels) {
    std::vector<u8> img = encodeKernel(k);
    const std::size_t imgSize = img.size();
    dma_.toConfig(cfgOffset, img);
    spans.emplace_back(cfgOffset, static_cast<u32>(imgSize));
    if (policy.warmReload) {
      warmKernelOffsets_.push_back(cfgOffset);
      warmKernelImages_.push_back(std::move(img));
    }
    cfgOffset += static_cast<u32>((imgSize + 3) & ~std::size_t{3});
  }
  // Round-trip kernels out of configuration memory (what the sequencer sees).
  for (std::size_t i = 0; i < prog_.kernels.size(); ++i) {
    prog_.kernels[i] =
        decodeKernel(cfgMem_.readBytes(spans[i].first, spans[i].second));
  }

  // Decoded kernel plans: adopt the policy's shared set when provided
  // (buildProgramPlans round-trips through the binary path, so shared plans
  // describe exactly the kernels decoded above), else build our own at the
  // policy's tier.
  if (policy.plans) {
    ADRES_CHECK(policy.plans->kernels.size() == prog_.kernels.size(),
                "kernel plans do not match the program's kernel table");
    ADRES_CHECK(policy.plans->tier == policy.tier,
                "ExecPolicy tier " << execTierName(policy.tier)
                                   << " does not match the supplied plans ("
                                   << execTierName(policy.plans->tier) << ")");
    plans_ = std::move(policy.plans);
  } else {
    plans_ = buildProgramPlans(prog_.kernels, policy.tier);
  }

  // Arm the warm-reload identity only when the caller vouched for the
  // Program's immutability AND shared plans pin the decoded kernels.
  if (policy.warmReload && plans_ != nullptr && !plans_->kernels.empty()) {
    warmProg_ = &prog;
    warmPlans_ = plans_;
  }

  resetLoadedState();
}

void Processor::resetLoadedState() {
  // Reset architectural and pipeline state.
  crf_.clear();
  cga_.clearState();
  icache_.reset();
  wheelClear();
  regReady_.fill(0);
  predReady_.fill(0);
  divBusyUntil_.fill(0);
  pc_ = prog_.entry;
  cycle_ = 0;
  sleeping_ = false;
  exc_ = {};
  resetStats();
}

void Processor::setTrace(TraceSink* t) {
  trace_ = t;
  cga_.setTrace(t);
  l1_.setTrace(t);
  icache_.setTrace(t);
  dma_.setTrace(t);
}

void Processor::resetStats() {
  act_.reset();
  l1_.resetStats();
  l1_.arbiter().reset();
  icache_.resetStats();
  // dma_ stats survive on purpose: they account the program-load transfers
  // issued by load() *before* its trailing resetStats() (the power model
  // charges configuration-load energy from them).
  cfgMem_.resetStats();
  crf_.resetStats();
  for (int f = 0; f < kCgaFus; ++f) cga_.localRf(f).resetStats();
  // Extract (don't free) the region-profile nodes: the next decode of the
  // same program revisits the same region ids, so regionProfile() recycles
  // these and the per-packet stats reset allocates nothing.
  while (!profiles_.empty())
    profileNodePool_.push_back(profiles_.extract(profiles_.begin()));
  kernelProfiles_.clear();
  currentRegion_ = -1;
  regionStartCycle_ = cycle_;
  regionStartAct_ = act_;
}

void Processor::wheelClear() {
  for (auto& slot : wheel_) slot.clear();
  wheelBase_ = 0;
  wheelCount_ = 0;
}

void Processor::wheelGrow(u64 needSlots) {
  u64 size = wheel_.size();
  while (size < needSlots) size *= 2;
  std::vector<std::vector<PendingWrite>> grown(size);
  for (auto& slot : wheel_)
    for (const PendingWrite& pw : slot)
      grown[pw.commitCycle & (size - 1)].push_back(pw);
  // Re-bucketing keeps per-slot issue order: old slots are scanned in index
  // order, and two writes for the same cycle always share an old slot.
  wheel_ = std::move(grown);
}

void Processor::wheelPush(const PendingWrite& pw) {
  // Pushes happen at cycle_ with commitDue(cycle_) already run, so
  // commitCycle > cycle_ >= wheelBase_ - 1 and the slot is vacant up to
  // one wheel turn ahead; bank-conflict tails can exceed that, so grow.
  if (pw.commitCycle - wheelBase_ >= wheel_.size())
    wheelGrow(pw.commitCycle - wheelBase_ + 1);
  wheel_[pw.commitCycle & (wheel_.size() - 1)].push_back(pw);
  ++wheelCount_;
}

void Processor::commitDue(u64 upTo) {
  while (wheelBase_ <= upTo) {
    if (wheelCount_ == 0) {
      wheelBase_ = upTo + 1;
      return;
    }
    auto& slot = wheel_[wheelBase_ & (wheel_.size() - 1)];
    for (const PendingWrite& pw : slot) {
      if (pw.toPred) {
        crf_.writePred(pw.reg, pw.value != 0);
      } else {
        Word v = pw.value;
        if (pw.mergeHigh) v |= crf_.peek(pw.reg) & 0xFFFFFFFFull;
        crf_.write(pw.reg, v);
      }
    }
    wheelCount_ -= slot.size();
    slot.clear();
    ++wheelBase_;
  }
}

void Processor::drainPipeline() {
  u64 latest = cycle_;
  if (wheelCount_ > 0) {
    for (u64 c = wheelBase_; c < wheelBase_ + wheel_.size(); ++c)
      if (!wheel_[c & (wheel_.size() - 1)].empty()) latest = std::max(latest, c);
  }
  if (latest > cycle_) {
    if (trace_)
      trace_->event({cycle_, latest - cycle_, TraceEventKind::kVliwStall, 0,
                     static_cast<u32>(StallCause::kDrain), 0});
    act_.vliwStallCycles += latest - cycle_;
    act_.vliwCycles += latest - cycle_;
    cycle_ = latest;
  }
  commitDue(cycle_);
}

namespace {

bool usesSrc1(const Instr& in) {
  switch (in.op) {
    case Opcode::NOP:
    case Opcode::MOVI:
    case Opcode::PRED_SET:
    case Opcode::PRED_CLEAR:
    case Opcode::JMP:
    case Opcode::JMPL:
    case Opcode::BR:
    case Opcode::BRL:
    case Opcode::HALT:
      return false;
    default:
      return true;
  }
}

bool usesSrc2(const Instr& in) {
  if (in.useImm) return false;
  switch (in.op) {
    case Opcode::NOP:
    case Opcode::MOV:
    case Opcode::MOVI:
    case Opcode::MOVIH:
    case Opcode::PRED_SET:
    case Opcode::PRED_CLEAR:
    case Opcode::HALT:
    case Opcode::CGA:
    case Opcode::C4ABS:
    case Opcode::C4NEG:
    case Opcode::C4SHUF:
      return false;
    case Opcode::BR:
    case Opcode::BRL:
      return false;  // immediate-relative only
    default:
      return true;
  }
}

}  // namespace

u64 Processor::operandReadyCycle(const Instr& in) const {
  u64 ready = cycle_;
  if (in.isNop()) return ready;
  if (in.guard != 0) ready = std::max(ready, predReady_[in.guard]);
  if (usesSrc1(in)) ready = std::max(ready, regReady_[in.src1]);
  if (usesSrc2(in)) ready = std::max(ready, regReady_[in.src2]);
  if (isStore(in.op)) ready = std::max(ready, regReady_[in.src3]);
  if (isPredDef(in.op)) {
    ready = std::max(ready, predReady_[in.dst]);
  } else if (writesDataReg(in.op)) {
    const int d = (in.op == Opcode::JMPL || in.op == Opcode::BRL) ? kLinkReg
                                                                  : in.dst;
    ready = std::max(ready, regReady_[static_cast<std::size_t>(d)]);
  }
  return ready;
}

RegionProfile& Processor::regionProfile(int id) {
  auto it = profiles_.lower_bound(id);
  if (it == profiles_.end() || it->first != id) {
    if (!profileNodePool_.empty()) {
      auto node = std::move(profileNodePool_.back());
      profileNodePool_.pop_back();
      node.key() = id;
      node.mapped() = RegionProfile{};
      it = profiles_.insert(it, std::move(node));
    } else {
      it = profiles_.emplace_hint(it, id, RegionProfile{});
    }
  }
  return it->second;
}

void Processor::switchRegion(int id) {
  if (currentRegion_ >= 0) {
    RegionProfile& p = regionProfile(currentRegion_);
    p.cycles += cycle_ - regionStartCycle_;
    p.vliwCycles += act_.vliwCycles - regionStartAct_.vliwCycles;
    p.cgaCycles += act_.cgaCycles - regionStartAct_.cgaCycles;
    p.vliwOps += act_.vliwOps - regionStartAct_.vliwOps;
    p.cgaOps += act_.cgaOps - regionStartAct_.cgaOps;
    p.ops = p.vliwOps + p.cgaOps;
    if (regionLog_) {
      regionLog_->push_back(
          {currentRegion_, regionStartCycle_, cycle_,
           (act_.vliwOps - regionStartAct_.vliwOps) +
               (act_.cgaOps - regionStartAct_.cgaOps)});
    }
    if (trace_) {
      const u64 ops = (act_.vliwOps - regionStartAct_.vliwOps) +
                      (act_.cgaOps - regionStartAct_.cgaOps);
      trace_->event({regionStartCycle_, cycle_ - regionStartCycle_,
                     TraceEventKind::kRegionExit, 0,
                     static_cast<u32>(currentRegion_),
                     static_cast<u32>(ops)});
    }
  }
  currentRegion_ = id;
  regionStartCycle_ = cycle_;
  regionStartAct_ = act_;
  if (id >= 0) {
    ++regionProfile(id).entries;
    if (trace_)
      trace_->event({cycle_, 0, TraceEventKind::kRegionEnter, 0,
                     static_cast<u32>(id), 0});
  }
}

StopReason Processor::run(u64 maxCycles) {
  ADRES_CHECK(!prog_.bundles.empty(), "no program loaded");
  const u64 budgetEnd =
      maxCycles == ~0ull ? ~0ull : cycle_ + maxCycles;

  while (true) {
    if (sleeping_) return StopReason::kHalt;
    if (externalStall_) return StopReason::kExternalStall;
    if (cycle_ >= budgetEnd) return StopReason::kMaxCycles;
    if (pc_ >= prog_.bundles.size()) return StopReason::kOffEnd;

    const Bundle& b = prog_.bundles[pc_];

    // Region markers are a zero-cost profiling artifact.
    int regionId = 0;
    if (isRegionMarker(b, regionId)) {
      switchRegion(regionId);
      ++pc_;
      continue;
    }

    const u64 iterStart = cycle_;

    // Fetch through the I$.
    const int missPenalty = icache_.fetch(pc_ * kBundleBytes, cycle_);
    if (missPenalty > 0) {
      if (trace_)
        trace_->event({cycle_, static_cast<u64>(missPenalty),
                       TraceEventKind::kVliwStall, 0,
                       static_cast<u32>(StallCause::kICacheMiss), 0});
      act_.vliwStallCycles += static_cast<u64>(missPenalty);
      cycle_ += static_cast<u64>(missPenalty);
    }

    // Whole-bundle mode/control ops.
    if (b.slot[0].op == Opcode::CGA) {
      ADRES_CHECK(b.slot[1].isNop() && b.slot[2].isNop(),
                  "cga must be alone in its bundle");
      const Instr& in = b.slot[0];
      // Wait for the guard predicate and trip-count register, then decide.
      const u64 ready = std::max(operandReadyCycle(in), cycle_);
      if (ready > cycle_ && trace_)
        trace_->event({cycle_, ready - cycle_, TraceEventKind::kVliwStall, 0,
                       static_cast<u32>(StallCause::kHazard), 0});
      act_.vliwStallCycles += ready - cycle_;
      cycle_ = ready;
      commitDue(cycle_);
      if (in.guard == 0 || crf_.peekPred(in.guard)) {
        // Drain: VLIW and CGA operate the shared register file in mutual
        // exclusion.
        drainPipeline();
        act_.vliwCycles += cycle_ - iterStart;
        ++act_.vliwOps;

        const u32 trips = lo32u(crf_.read(in.src1));
        const KernelPlan& plan =
            plans_->kernels[static_cast<std::size_t>(in.imm)];
        act_.modeSwitches += 2;
        const u64 launchCycle = cycle_;
        if (trace_)
          trace_->event({launchCycle, 0, TraceEventKind::kModeSwitch, 0, 0, 0});
        const CgaRunResult r =
            cga_.run(plan, trips, launchCycle + kModeSwitchCycles,
                     static_cast<u32>(in.imm));
        cycle_ += 2 * kModeSwitchCycles + r.cycles;
        act_.cgaCycles += 2 * kModeSwitchCycles;  // switches booked as kernel overhead
        if (kernelProfiling_) {
          KernelLaunchProfile& kp =
              kernelProfiles_[{currentRegion_, static_cast<u32>(in.imm)}];
          ++kp.launches;
          kp.trips += trips;
          kp.cycles += 2 * kModeSwitchCycles + r.cycles;
          kp.issueCycles += r.issueCycles;
          kp.idleCycles += r.arrayCycles - r.issueCycles;
          kp.stallCycles += r.stallCycles;
          kp.overheadCycles +=
              2 * kModeSwitchCycles + r.cycles - r.arrayCycles - r.stallCycles;
          kp.ops += r.ops;
          kp.routeMoves += r.routeMoves;
          for (const PlanClassCount& c : plan.classes)
            kp.opsByClass[{static_cast<u8>(c.kind), c.lat}] +=
                static_cast<u64>(c.ops) * trips;
        }
        if (trace_) {
          trace_->event({launchCycle, cycle_ - launchCycle,
                         TraceEventKind::kKernel, 0,
                         static_cast<u32>(in.imm),
                         static_cast<u32>(r.ops)});
          trace_->event({cycle_, 0, TraceEventKind::kModeSwitch, 0, 1, 0});
        }
      } else {
        act_.vliwCycles += (cycle_ - iterStart) + 1;
        cycle_ += 1;
      }
      ++pc_;
      continue;
    }

    if (b.slot[0].op == Opcode::HALT) {
      drainPipeline();
      act_.vliwCycles += (cycle_ - iterStart) + 1;
      cycle_ += 1;
      ++act_.vliwOps;
      ++pc_;
      sleeping_ = true;
      switchRegion(-1);
      if (trace_) trace_->event({cycle_, 0, TraceEventKind::kHalt, 0, 0, 0});
      return StopReason::kHalt;
    }

    // Hazard resolution: issue when every needed operand/dest is ready.
    u64 ready = cycle_;
    for (const Instr& in : b.slot) ready = std::max(ready, operandReadyCycle(in));
    for (int s = 0; s < kVliwSlots; ++s) {
      if (b.slot[s].op == Opcode::DIV || b.slot[s].op == Opcode::DIV_U)
        ready = std::max(ready, divBusyUntil_[static_cast<std::size_t>(s)]);
    }
    if (ready > cycle_) {
      if (trace_)
        trace_->event({cycle_, ready - cycle_, TraceEventKind::kVliwStall, 0,
                       static_cast<u32>(StallCause::kHazard), 0});
      act_.vliwStallCycles += ready - cycle_;
      cycle_ = ready;
    }
    commitDue(cycle_);

    bool branched = false;
    u32 nextPc = pc_ + 1;
    int advance = 1;

    for (int s = 0; s < kVliwSlots; ++s) {
      const Instr& in = b.slot[s];
      if (in.isNop()) continue;
      if (in.guard != 0 && !crf_.readPred(in.guard)) continue;  // squashed

      ++act_.vliwOps;
      if (trace_)
        trace_->event({cycle_, 1, TraceEventKind::kVliwOp,
                       static_cast<u8>(s), static_cast<u32>(in.op), 0});
      if (isSimd(in.op)) ++act_.simdOps;
      act_.ops16 += static_cast<u64>(ops16PerInstr(in.op));
      const int lat = opInfo(in.op).latency;

      if (isBranch(in.op)) {
        branched = true;
        advance = lat;  // fetch bubble until the branch resolves
        switch (in.op) {
          case Opcode::JMP:
            nextPc = lo32u(crf_.read(in.src2));
            break;
          case Opcode::JMPL:
            nextPc = lo32u(crf_.read(in.src2));
            wheelPush({cycle_ + 1, false, kLinkReg, pc_ + 1, false});
            regReady_[kLinkReg] = cycle_ + 1;
            break;
          case Opcode::BR:
            nextPc = static_cast<u32>(static_cast<i64>(pc_) + in.imm);
            break;
          default:  // BRL
            nextPc = static_cast<u32>(static_cast<i64>(pc_) + in.imm);
            wheelPush({cycle_ + 1, false, kLinkReg, pc_ + 1, false});
            regReady_[kLinkReg] = cycle_ + 1;
            break;
        }
        continue;
      }

      if (isStore(in.op)) {
        const u32 base = lo32u(crf_.read(in.src1));
        const u32 off = in.useImm
                            ? static_cast<u32>(in.imm << memImmScale(in.op))
                            : lo32u(crf_.read(in.src2));
        const u32 addr = base + off;
        l1_.requestPort(cycle_, addr);
        const u32 v = storeData(in.op, crf_.read(in.src3));
        switch (memAccessBytes(in.op)) {
          case 1: l1_.write8(addr, v); break;
          case 2: l1_.write16(addr, v); break;
          default: l1_.write32(addr, v); break;
        }
        continue;
      }

      if (isLoad(in.op)) {
        const u32 base = lo32u(crf_.read(in.src1));
        const u32 off = in.useImm
                            ? static_cast<u32>(in.imm << memImmScale(in.op))
                            : lo32u(crf_.read(in.src2));
        const u32 addr = base + off;
        const int extra = l1_.requestPort(cycle_, addr);
        u32 raw = 0;
        switch (memAccessBytes(in.op)) {
          case 1: raw = l1_.read8(addr); break;
          case 2: raw = l1_.read16(addr); break;
          default: raw = l1_.read32(addr); break;
        }
        const u64 commit = cycle_ + static_cast<u64>(lat + extra);
        PendingWrite pw{commit, false, in.dst, 0, false};
        if (in.op == Opcode::LD_IH) {
          pw.value = static_cast<u64>(raw) << 32;
          pw.mergeHigh = true;
        } else {
          pw.value = applyLoadResult(in.op, 0, raw);
        }
        wheelPush(pw);
        regReady_[in.dst] = commit;
        continue;
      }

      // Compute / predicate-define ops.
      const Word a = crf_.read(in.src1);
      const Word bop = in.useImm ? fromScalar(in.imm) : crf_.read(in.src2);
      if ((in.op == Opcode::DIV || in.op == Opcode::DIV_U) && lo32(bop) == 0)
        exc_.divByZero = true;
      const Word v = evalOp(in.op, a, bop, in.imm);
      if (in.op == Opcode::DIV || in.op == Opcode::DIV_U)
        divBusyUntil_[static_cast<std::size_t>(s)] = cycle_ + static_cast<u64>(lat);
      const u64 commit = cycle_ + static_cast<u64>(lat);
      if (isPredDef(in.op)) {
        wheelPush({commit, true, in.dst, v, false});
        predReady_[in.dst] = commit;
      } else {
        wheelPush({commit, false, in.dst, v, false});
        regReady_[in.dst] = commit;
      }
    }

    cycle_ += static_cast<u64>(advance);
    act_.vliwCycles += cycle_ - iterStart;
    pc_ = branched ? nextPc : pc_ + 1;
  }
}

void Processor::resume() {
  if (sleeping_ && trace_)
    trace_->event({cycle_, 0, TraceEventKind::kResume, 0, 0, 0});
  sleeping_ = false;
}

void Processor::attachBus(AhbSlave& bus) {
  bus.addRegion(
      "l1", mmap::kL1Base, mmap::kL1Size,
      [this](u32 off) { return l1_.read32(off); },
      [this](u32 off, u32 v) { l1_.write32(off, v); });
  bus.addRegion(
      "config", mmap::kConfigBase, mmap::kConfigSize,
      [this](u32 off) { return cfgMem_.read32(off); },
      [this](u32 off, u32 v) { cfgMem_.write32(off, v); });
  bus.addRegion(
      "special", mmap::kSpecialBase, mmap::kSpecialSize,
      [this](u32 off) -> u32 {
        switch (off) {
          case sreg::kStatus: return sleeping_ ? 1u : 0u;
          case sreg::kCycleLo: return static_cast<u32>(cycle_);
          case sreg::kCycleHi: return static_cast<u32>(cycle_ >> 32);
          case sreg::kEndianness: return 0;  // little-endian modelled
          case sreg::kAhbPriority: return ahbPriority_ ? 1u : 0u;
          case sreg::kException: return exc_.word();
          case sreg::kDebugData: return l1_.read32(debugAddr_);
          case sreg::kDebugAddr: return debugAddr_;
          default:
            throw SimError("read of unmapped special register");
        }
      },
      [this](u32 off, u32 v) {
        switch (off) {
          case sreg::kAhbPriority: ahbPriority_ = v & 1u; break;
          case sreg::kDebugAddr: debugAddr_ = v; break;
          case sreg::kDebugData: l1_.write32(debugAddr_, v); break;
          case sreg::kEndianness: break;  // accepted, single mode modelled
          default:
            throw SimError("write to read-only/unmapped special register");
        }
      });
}

}  // namespace adres
