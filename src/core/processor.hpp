// The hybrid CGA-SIMD processor (paper Figs 1-2).
//
// Harvard architecture: VLIW bundles fetched through the direct-mapped I$,
// data in the 4-bank L1 scratchpad.  Three predicated VLIW FUs share the
// central register files with the 16-FU CGA; the `cga` instruction switches
// to kernel mode (array executes a mapped loop), `halt` drops to sleep until
// `resume`.  The external-stall input, the AHB slave port (L1 + config +
// special registers) and the debug data interface are modelled as in §2.A.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bus/ahb.hpp"
#include "cga/array.hpp"
#include "common/activity.hpp"
#include "core/program.hpp"
#include "mem/dma.hpp"
#include "mem/icache.hpp"
#include "trace/trace.hpp"

namespace adres {

inline constexpr double kClockMHz = 400.0;  ///< worst-case achieved clock
inline constexpr double kCyclePeriodUs = 1.0 / kClockMHz;

/// Why a run() call returned.
enum class StopReason {
  kHalt,           ///< executed `halt`, now sleeping (resume() to continue)
  kMaxCycles,      ///< cycle budget exhausted
  kExternalStall,  ///< external stall asserted
  kOffEnd,         ///< fetched past the last bundle (missing halt)
  kCancelled,      ///< aborted by a supervisor (watchdog cancel request)
};

/// Stable lower_snake label for a stop reason (health events, metrics).
const char* stopReasonName(StopReason r);

/// Sticky exception flags (special register sreg::kException).
struct ExceptionFlags {
  bool divByZero = false;
  u32 word() const { return divByZero ? 1u : 0u; }
};

/// Aggregated per-region profile (between region markers).
struct RegionProfile {
  u64 cycles = 0;
  u64 vliwCycles = 0;
  u64 cgaCycles = 0;
  u64 ops = 0;
  u64 vliwOps = 0;
  u64 cgaOps = 0;
  u64 entries = 0;  ///< times the region was entered

  double ipc() const { return cycles ? static_cast<double>(ops) / static_cast<double>(cycles) : 0.0; }
  /// Dominant mode string as in Table 2 ("CGA", "VLIW", "mixed").
  std::string mode() const;
};

/// One closed region occupancy, appended to an attached region log — the
/// per-packet span source (trace/span.hpp) without a TraceSink (which would
/// disable the CGA steady-state fast path).
struct RegionSpan {
  int region = -1;
  u64 startCycle = 0;
  u64 endCycle = 0;
  u64 ops = 0;  ///< VLIW + CGA ops retired inside the region
};

/// Cycle attribution of every CGA launch of one (region, kernel) pair,
/// accumulated when kernel profiling is enabled.  All five cycle components
/// partition the booked kernel cost exactly:
///   cycles == issueCycles + idleCycles + stallCycles + overheadCycles.
struct KernelLaunchProfile {
  u64 launches = 0;
  u64 trips = 0;           ///< summed trip counts
  u64 cycles = 0;          ///< booked cost incl. the two mode switches
  u64 issueCycles = 0;     ///< logical cycles with at least one op issued
  u64 idleCycles = 0;      ///< logical cycles with every op squashed
  u64 stallCycles = 0;     ///< L1 bank-contention stalls
  u64 overheadCycles = 0;  ///< preloads + writebacks + drain + mode switches
  u64 ops = 0;
  u64 routeMoves = 0;
  /// Ops per (PlanOpKind, latency) dispatch class, from the plan's
  /// per-iteration class counts times the launch trip count.
  std::map<std::pair<u8, u8>, u64> opsByClass;
};

class Processor {
 public:
  Processor();

  // -- Program load ----------------------------------------------------------

  /// Loads a program: validates it, encodes+decodes the text (exercising the
  /// binary path), places data segments in L1 via DMA, encodes kernels into
  /// configuration memory via DMA, resets the pipeline.  `policy` selects
  /// how kernel launches execute (DESIGN.md §14): its tier picks the plan
  /// flavour, and its optional pre-built plan set is adopted when supplied
  /// (the packet farm shares one read-only set across workers; it must have
  /// been built at the policy's tier).  When no plans are supplied they are
  /// built here from the loaded kernels.
  void load(const Program& prog, ExecPolicy policy = {});

  /// Transitional shim for the pre-ExecTier API, which threaded bare plan
  /// sets through load.  The plans' embedded tier governs execution.
  [[deprecated("pass an ExecPolicy instead of a bare plan set")]]
  void load(const Program& prog, std::shared_ptr<const ProgramPlans> plans);

  // -- Execution -------------------------------------------------------------

  /// Runs until halt / stall / budget exhaustion.
  StopReason run(u64 maxCycles = ~0ull);

  /// Wakes the core from the sleep state (the `resume` input signal).
  void resume();

  /// Asserts/deasserts the external stall input; when asserted, run()
  /// returns immediately and the state is held.
  void setExternalStall(bool s) { externalStall_ = s; }
  bool sleeping() const { return sleeping_; }

  // -- Observation ------------------------------------------------------------

  u64 cycles() const { return cycle_; }
  double elapsedUs() const { return static_cast<double>(cycle_) * kCyclePeriodUs; }
  u32 pc() const { return pc_; }

  CentralRegFile& regs() { return crf_; }
  const CentralRegFile& regs() const { return crf_; }
  Scratchpad& l1() { return l1_; }
  const Scratchpad& l1() const { return l1_; }
  ConfigMemory& configMem() { return cfgMem_; }
  const ConfigMemory& configMem() const { return cfgMem_; }
  ICache& icache() { return icache_; }
  const ICache& icache() const { return icache_; }
  CgaArray& cga() { return cga_; }
  const CgaArray& cga() const { return cga_; }
  DmaEngine& dma() { return dma_; }
  const ActivityCounters& activity() const { return act_; }
  ActivityCounters& activity() { return act_; }
  const ExceptionFlags& exceptions() const { return exc_; }

  const std::map<int, RegionProfile>& profiles() const { return profiles_; }
  /// Per-(region id, kernel id) launch attribution; empty unless
  /// setKernelProfiling(true).  Cleared by resetStats().
  const std::map<std::pair<int, u32>, KernelLaunchProfile>& kernelProfiles()
      const {
    return kernelProfiles_;
  }
  /// Enables the per-launch cycle-attribution profiler (one map update per
  /// CGA launch; the array hot loop is untouched).
  void setKernelProfiling(bool on) { kernelProfiling_ = on; }
  /// Attaches (or detaches, with nullptr) a region-span log: every closed
  /// region appends one RegionSpan.  Costs one branch per region marker;
  /// unlike a TraceSink it keeps the CGA steady-state fast path.
  void setRegionLog(std::vector<RegionSpan>* log) { regionLog_ = log; }
  const Program& program() const { return prog_; }
  /// The decoded kernel plans the sequencer launches from.
  const std::shared_ptr<const ProgramPlans>& kernelPlans() const {
    return plans_;
  }

  /// Wires the slave memory map (L1, config memory, special registers)
  /// onto an AHB bus instance.
  void attachBus(AhbSlave& bus);

  /// Clears cycle counters, activity and profiles, keeping memory and
  /// register state (used between measured phases).
  void resetStats();

  /// Attaches (or detaches, with nullptr) a trace sink to the core and every
  /// sub-component (CGA array, L1, I$, DMA).  A null sink costs one untaken
  /// branch per event site.
  void setTrace(TraceSink* t);
  TraceSink* trace() const { return trace_; }

 private:
  struct PendingWrite {
    u64 commitCycle = 0;
    bool toPred = false;
    u8 reg = 0;
    Word value = 0;
    bool mergeHigh = false;
  };

  void commitDue(u64 upTo);
  void drainPipeline();
  u64 operandReadyCycle(const Instr& in) const;
  void switchRegion(int id);

  void wheelPush(const PendingWrite& pw);
  void wheelClear();
  void wheelGrow(u64 needSlots);

  Program prog_;
  std::shared_ptr<const ProgramPlans> plans_;
  std::vector<u8> textImage_;

  CentralRegFile crf_;
  Scratchpad l1_;
  ICache icache_;
  ConfigMemory cfgMem_;
  ActivityCounters act_;
  CgaArray cga_;
  DmaEngine dma_;
  ExceptionFlags exc_;

  u64 cycle_ = 0;
  u32 pc_ = 0;
  bool sleeping_ = false;
  bool externalStall_ = false;
  bool ahbPriority_ = false;
  u32 debugAddr_ = 0;

  /// VLIW commit wheel: slot (cycle & mask) holds the register writes due
  /// at that cycle, in issue order (the deterministic order of the former
  /// sorted pending queue).  `wheelBase_` is the first uncommitted cycle;
  /// commitDue advances it.  Load bank-conflict penalties stretch commit
  /// distances, so the wheel grows (rarely) instead of capping them.
  std::vector<std::vector<PendingWrite>> wheel_ =
      std::vector<std::vector<PendingWrite>>(64);
  u64 wheelBase_ = 0;
  u64 wheelCount_ = 0;
  std::array<u64, kCdrfRegs> regReady_ = {};
  std::array<u64, kCprfRegs> predReady_ = {};
  std::array<u64, kVliwSlots> divBusyUntil_ = {};

  /// Returns the profile slot for a region, recycling extracted map nodes
  /// (profileNodePool_) so steady-state re-entry allocates nothing.
  RegionProfile& regionProfile(int id);

  /// The architectural/pipeline reset shared by cold and warm loads.
  void resetLoadedState();

  std::map<int, RegionProfile> profiles_;
  /// Nodes extracted (not freed) by resetStats(): every decode of the same
  /// program revisits the same region ids, so recycling the nodes makes the
  /// per-packet stats reset allocation-free.
  std::vector<std::map<int, RegionProfile>::node_type> profileNodePool_;
  /// Warm-reload identity of the last cold load (ExecPolicy::warmReload).
  const Program* warmProg_ = nullptr;
  std::shared_ptr<const ProgramPlans> warmPlans_;
  std::vector<std::vector<u8>> warmKernelImages_;  ///< encoded per kernel
  std::vector<u32> warmKernelOffsets_;             ///< config-mem placement
  std::map<std::pair<int, u32>, KernelLaunchProfile> kernelProfiles_;
  bool kernelProfiling_ = false;
  std::vector<RegionSpan>* regionLog_ = nullptr;
  int currentRegion_ = -1;
  u64 regionStartCycle_ = 0;
  ActivityCounters regionStartAct_;
  TraceSink* trace_ = nullptr;
};

}  // namespace adres
