#include "core/program.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "mem/scratchpad.hpp"

namespace adres {

Bundle regionMarker(int id) {
  Bundle b;
  b.slot[0].op = Opcode::NOP;
  b.slot[0].useImm = true;
  b.slot[0].imm = id >= 0 ? id + 1 : -1;
  return b;
}

bool isRegionMarker(const Bundle& b, int& id) {
  const Instr& s0 = b.slot[0];
  if (s0.op != Opcode::NOP || !s0.useImm || s0.imm == kRegionMarkerNone)
    return false;
  if (!b.slot[1].isNop() || !b.slot[2].isNop()) return false;
  id = s0.imm > 0 ? s0.imm - 1 : -1;
  return true;
}

int Program::regionId(const std::string& n) const {
  const auto it = std::find(regionNames.begin(), regionNames.end(), n);
  ADRES_CHECK(it != regionNames.end(), "unknown region '" << n << '\'');
  return static_cast<int>(it - regionNames.begin());
}

void Program::validate() const {
  ADRES_CHECK(!bundles.empty(), "program '" << name << "' has no text");
  ADRES_CHECK(entry < bundles.size(), "entry point out of range");
  for (std::size_t i = 0; i < bundles.size(); ++i) {
    const Bundle& b = bundles[i];
    bool wroteReg[kCdrfRegs] = {};
    bool wrotePred[kCprfRegs] = {};
    for (int s = 0; s < kVliwSlots; ++s) {
      const Instr& in = b.slot[s];
      adres::validate(in, s);
      if (in.op == Opcode::CGA) {
        ADRES_CHECK(in.imm >= 0 &&
                        static_cast<std::size_t>(in.imm) < kernels.size(),
                    "bundle " << i << ": cga kernel #" << in.imm
                              << " not in program");
      }
      if (isBranch(in.op) && in.useImm) {
        const i64 target = static_cast<i64>(i) + in.imm;
        ADRES_CHECK(target >= 0 && target < static_cast<i64>(bundles.size()),
                    "bundle " << i << ": branch target " << target
                              << " out of range");
      }
      if (in.isNop()) continue;
      if (isPredDef(in.op)) {
        ADRES_CHECK(!wrotePred[in.dst],
                    "bundle " << i << ": two writes to p" << int{in.dst});
        wrotePred[in.dst] = true;
      } else if (writesDataReg(in.op)) {
        const int d = (in.op == Opcode::JMPL || in.op == Opcode::BRL)
                          ? kLinkReg
                          : in.dst;
        ADRES_CHECK(!wroteReg[d],
                    "bundle " << i << ": two writes to r" << d);
        wroteReg[d] = true;
      }
    }
  }
  for (const KernelConfig& k : kernels) k.validate();
  // Data segments: inside L1 and pairwise disjoint.
  for (std::size_t a = 0; a < data.size(); ++a) {
    ADRES_CHECK(static_cast<u64>(data[a].addr) + data[a].bytes.size() <=
                    kL1Bytes,
                "data segment " << a << " exceeds L1");
    for (std::size_t b2 = a + 1; b2 < data.size(); ++b2) {
      const bool overlap =
          data[a].addr < data[b2].addr + data[b2].bytes.size() &&
          data[b2].addr < data[a].addr + data[a].bytes.size();
      ADRES_CHECK(!overlap, "data segments " << a << " and " << b2
                                             << " overlap");
    }
  }
}

}  // namespace adres
