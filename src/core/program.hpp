// Executable program container: VLIW text, mapped CGA kernels, and initial
// L1 data segments.  Produced by the sched/ toolchain (or hand-written in
// tests), loaded into the processor through the DMA/bus models.
#pragma once

#include <string>
#include <vector>

#include "cga/context.hpp"
#include "isa/instruction.hpp"

namespace adres {

/// Region markers let profiling attribute cycles/ops to named program
/// phases (the simulator's stand-in for PC-range profiling):
/// a NOP in slot 0 with useImm and imm = region id + 1 opens a region,
/// imm = 0 would be a plain nop — see kRegionMarkerNone.
inline constexpr i32 kRegionMarkerNone = 0;

/// Builds the marker bundle that switches profiling to region `id`
/// (id >= 0), or closes the current region (id < 0).
Bundle regionMarker(int id);

/// True if the bundle is a region marker; `id` receives the region
/// (-1 = close).
bool isRegionMarker(const Bundle& b, int& id);

struct DataSegment {
  u32 addr = 0;           ///< L1 byte address
  std::vector<u8> bytes;  ///< initial contents
};

struct Program {
  std::string name;
  std::vector<Bundle> bundles;
  std::vector<KernelConfig> kernels;  ///< indexed by the CGA op's imm
  std::vector<DataSegment> data;
  u32 entry = 0;  ///< bundle index where fetch starts after reset

  /// Static checks: slot legality (branch only slot 0, div slots 0-1,
  /// mem slots 0-2 in VLIW mode), register ranges, branch targets, kernel
  /// ids, no dual writes to one register within a bundle.
  void validate() const;

  /// Named region ids for profiling reports.
  std::vector<std::string> regionNames;
  int regionId(const std::string& n) const;
};

}  // namespace adres
