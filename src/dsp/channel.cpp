#include "dsp/channel.hpp"

#include <cmath>
#include <complex>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "dsp/ofdm.hpp"

namespace adres::dsp {
namespace {

// Rng::fork labels of the channel's independent streams: one tap stream per
// antenna pair, one noise stream per receive antenna.
constexpr u64 kTapStream = 0x100;
constexpr u64 kNoiseStream = 0x200;

}  // namespace

double cfoTurnsPerSample(const ChannelConfig& cfg) {
  // f_carrier = 2.4 GHz, f_sample = 20 MHz: offset per sample in turns.
  const double offsetHz = cfg.cfoPpm * 1e-6 * 2.4e9;
  return offsetHz / 20e6;
}

u64 stableHash(const ChannelConfig& cfg) {
  u64 h = 0x61647265735F6368ull;  // "adres_ch"
  h = hashCombine(h, static_cast<u64>(cfg.taps));
  h = hashCombine(h, doubleBits(cfg.delaySpread));
  h = hashCombine(h, doubleBits(cfg.snrDb));
  h = hashCombine(h, doubleBits(cfg.cfoPpm));
  h = hashCombine(h, cfg.seed);
  h = hashCombine(h, cfg.flat ? 1 : 0);
  return h;
}

MimoChannel::MimoChannel(const ChannelConfig& cfg) : cfg_(cfg) {
  ADRES_CHECK(cfg.taps >= 1 && cfg.taps <= 16, "channel taps");
  const Rng base(cfg.seed);
  for (int rx = 0; rx < kNumRx; ++rx)
    noiseRng_[static_cast<std::size_t>(rx)] =
        base.fork(kNoiseStream + static_cast<u64>(rx));
  for (int rx = 0; rx < kNumRx; ++rx) {
    for (int tx = 0; tx < kNumTx; ++tx) {
      auto& t = taps_[static_cast<std::size_t>(rx)][static_cast<std::size_t>(tx)];
      t.fill({0.0, 0.0});
      if (cfg.flat) {
        t[0] = rx == tx ? std::complex<double>{1.0, 0.0}
                        : std::complex<double>{0.0, 0.0};
        continue;
      }
      Rng tapRng = base.fork(kTapStream + static_cast<u64>(rx * kNumTx + tx));
      double power = 0.0;
      for (int k = 0; k < cfg.taps; ++k) {
        const double p = std::pow(cfg.delaySpread, k);
        t[static_cast<std::size_t>(k)] = {tapRng.gaussian() * std::sqrt(p / 2.0),
                                          tapRng.gaussian() * std::sqrt(p / 2.0)};
        power += p;
      }
      // Normalize each pair to unit average energy.
      const double norm = 1.0 / std::sqrt(power);
      for (auto& c : t) c *= norm;
    }
  }
}

std::array<std::array<std::complex<double>, kNumTx>, kNumRx>
MimoChannel::gainAt(int k) const {
  std::array<std::array<std::complex<double>, kNumTx>, kNumRx> h{};
  for (int rx = 0; rx < kNumRx; ++rx) {
    for (int tx = 0; tx < kNumTx; ++tx) {
      std::complex<double> g{0.0, 0.0};
      const auto& t = taps_[static_cast<std::size_t>(rx)][static_cast<std::size_t>(tx)];
      for (std::size_t tap = 0; tap < static_cast<std::size_t>(cfg_.taps); ++tap) {
        const double ang = -2.0 * 3.14159265358979323846 * k *
                           static_cast<double>(tap) / kNfft;
        g += t[tap] * std::complex<double>{std::cos(ang), std::sin(ang)};
      }
      h[static_cast<std::size_t>(rx)][static_cast<std::size_t>(tx)] = g;
    }
  }
  return h;
}

std::array<std::vector<cint16>, kNumRx> MimoChannel::run(
    const std::array<std::vector<cint16>, kNumTx>& tx) {
  const std::size_t n = tx[0].size();
  for (const auto& w : tx) ADRES_CHECK(w.size() == n, "tx length mismatch");

  // Reference signal power for the noise scaling: average over inputs.
  double sigPower = 0.0;
  std::size_t cnt = 0;
  for (const auto& w : tx) {
    for (const cint16& s : w) {
      sigPower += (double(s.re) * s.re + double(s.im) * s.im) / (32768.0 * 32768.0);
      ++cnt;
    }
  }
  sigPower = cnt ? sigPower / static_cast<double>(cnt) : 0.0;
  const double noiseStd =
      std::sqrt(sigPower / std::pow(10.0, cfg_.snrDb / 10.0) / 2.0);

  const double cfoStep = cfoTurnsPerSample(cfg_) * 2.0 * 3.14159265358979323846;

  std::array<std::vector<cint16>, kNumRx> out;
  for (int rx = 0; rx < kNumRx; ++rx) {
    auto& o = out[static_cast<std::size_t>(rx)];
    Rng& noise = noiseRng_[static_cast<std::size_t>(rx)];
    o.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::complex<double> acc{0.0, 0.0};
      for (int txa = 0; txa < kNumTx; ++txa) {
        const auto& taps = taps_[static_cast<std::size_t>(rx)][static_cast<std::size_t>(txa)];
        for (std::size_t tap = 0; tap < static_cast<std::size_t>(cfg_.taps); ++tap) {
          if (i < tap) break;
          const cint16 s = tx[static_cast<std::size_t>(txa)][i - tap];
          acc += taps[tap] *
                 std::complex<double>{s.re / 32768.0, s.im / 32768.0};
        }
      }
      // CFO rotation (common oscillator) and AWGN.
      const double ang = cfoStep * static_cast<double>(i);
      acc *= std::complex<double>{std::cos(ang), std::sin(ang)};
      acc += std::complex<double>{noise.gaussian() * noiseStd,
                                  noise.gaussian() * noiseStd};
      o[i] = {sat16(static_cast<i32>(std::lround(acc.real() * 32768.0))),
              sat16(static_cast<i32>(std::lround(acc.imag() * 32768.0)))};
    }
  }
  return out;
}

void MimoChannel::runInto(const std::array<std::vector<cint16>, kNumTx>& tx,
                          std::array<std::vector<cint16>, kNumRx>& out,
                          ChannelScratch& scratch, int lanes) {
  ADRES_CHECK(lanes >= 1, "channel lane width must be >= 1");
  const std::size_t n = tx[0].size();
  for (const auto& w : tx) ADRES_CHECK(w.size() == n, "tx length mismatch");
  const std::size_t L = static_cast<std::size_t>(lanes);

  // Reference signal power — the accumulation order matches run() exactly
  // (antenna-major, sample-minor), so the noise scaling is the same double.
  double sigPower = 0.0;
  std::size_t cnt = 0;
  for (const auto& w : tx) {
    for (const cint16& s : w) {
      sigPower += (double(s.re) * s.re + double(s.im) * s.im) / (32768.0 * 32768.0);
      ++cnt;
    }
  }
  sigPower = cnt ? sigPower / static_cast<double>(cnt) : 0.0;
  const double noiseStd =
      std::sqrt(sigPower / std::pow(10.0, cfg_.snrDb / 10.0) / 2.0);

  const double cfoStep = cfoTurnsPerSample(cfg_) * 2.0 * 3.14159265358979323846;

  // Structure-of-arrays conversion: each tx sample becomes a double complex
  // once, instead of once per (rx, tap) in the scalar MAC.  Q15 -> double is
  // exact, so the converted values are the ones run() computes inline.
  for (int txa = 0; txa < kNumTx; ++txa) {
    auto& xw = scratch.txWave[static_cast<std::size_t>(txa)];
    const auto& w = tx[static_cast<std::size_t>(txa)];
    xw.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      xw[i] = {w[i].re / 32768.0, w[i].im / 32768.0};
  }

  // CFO phasor table: rot[i] = cis(cfoStep * i), the exact pair of libm
  // values run() evaluates per (rx, sample).  The table is shared across
  // both receive antennas and cached across trials with the same step —
  // every trial of a campaign cell — so in steady state the sincos cost
  // per trial is zero.
  if (!scratch.rotValid || scratch.rotStep != cfoStep) {
    scratch.rot.clear();
    scratch.rotStep = cfoStep;
    scratch.rotValid = true;
  }
  if (scratch.rot.size() < n) {
    const std::size_t from = scratch.rot.size();
    scratch.rot.resize(n);
    for (std::size_t i = from; i < n; ++i) {
      const double ang = cfoStep * static_cast<double>(i);
      scratch.rot[i] = {std::cos(ang), std::sin(ang)};
    }
  }

  for (int rx = 0; rx < kNumRx; ++rx) {
    auto& o = out[static_cast<std::size_t>(rx)];
    o.resize(n);

    // Lane-parallel AWGN: the whole antenna's noise realization is drawn
    // up front from its independent sub-stream (forked off the seed in the
    // constructor), in the same sample-major re-then-im order the scalar
    // path consumes — one Box-Muller pair per sample, identical doubles.
    Rng& noise = noiseRng_[static_cast<std::size_t>(rx)];
    scratch.noiseRe.resize(n);
    scratch.noiseIm.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      scratch.noiseRe[i] = noise.gaussian();
      scratch.noiseIm[i] = noise.gaussian();
    }

    // Lane-batched tap MAC.  Within each sample block the loops run
    // antenna-major, tap-minor — the per-element accumulation order of the
    // scalar path — so every acc[i] sees the same additions in the same
    // order and the result is bit-identical for any block width.
    auto& acc = scratch.acc;
    acc.assign(n, {0.0, 0.0});
    for (std::size_t i0 = 0; i0 < n; i0 += L) {
      const std::size_t iEnd = std::min(n, i0 + L);
      for (int txa = 0; txa < kNumTx; ++txa) {
        const auto& taps = taps_[static_cast<std::size_t>(rx)][static_cast<std::size_t>(txa)];
        const auto& xw = scratch.txWave[static_cast<std::size_t>(txa)];
        for (std::size_t tap = 0; tap < static_cast<std::size_t>(cfg_.taps); ++tap) {
          const std::complex<double> t = taps[tap];
          for (std::size_t i = std::max(i0, tap); i < iEnd; ++i)
            acc[i] += t * xw[i - tap];
        }
      }
    }

    // Rotate, add noise, quantize — the same expressions as run().
    for (std::size_t i = 0; i < n; ++i) {
      std::complex<double> a = acc[i];
      a *= scratch.rot[i];
      a += std::complex<double>{scratch.noiseRe[i] * noiseStd,
                                scratch.noiseIm[i] * noiseStd};
      o[i] = {sat16(static_cast<i32>(std::lround(a.real() * 32768.0))),
              sat16(static_cast<i32>(std::lround(a.imag() * 32768.0)))};
    }
  }
}

}  // namespace adres::dsp
