#include "dsp/channel.hpp"

#include <cmath>
#include <complex>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "dsp/ofdm.hpp"

namespace adres::dsp {
namespace {

// Rng::fork labels of the channel's independent streams: one tap stream per
// antenna pair, one noise stream per receive antenna.
constexpr u64 kTapStream = 0x100;
constexpr u64 kNoiseStream = 0x200;

}  // namespace

double cfoTurnsPerSample(const ChannelConfig& cfg) {
  // f_carrier = 2.4 GHz, f_sample = 20 MHz: offset per sample in turns.
  const double offsetHz = cfg.cfoPpm * 1e-6 * 2.4e9;
  return offsetHz / 20e6;
}

u64 stableHash(const ChannelConfig& cfg) {
  u64 h = 0x61647265735F6368ull;  // "adres_ch"
  h = hashCombine(h, static_cast<u64>(cfg.taps));
  h = hashCombine(h, doubleBits(cfg.delaySpread));
  h = hashCombine(h, doubleBits(cfg.snrDb));
  h = hashCombine(h, doubleBits(cfg.cfoPpm));
  h = hashCombine(h, cfg.seed);
  h = hashCombine(h, cfg.flat ? 1 : 0);
  return h;
}

MimoChannel::MimoChannel(const ChannelConfig& cfg) : cfg_(cfg) {
  ADRES_CHECK(cfg.taps >= 1 && cfg.taps <= 16, "channel taps");
  const Rng base(cfg.seed);
  for (int rx = 0; rx < kNumRx; ++rx)
    noiseRng_[static_cast<std::size_t>(rx)] =
        base.fork(kNoiseStream + static_cast<u64>(rx));
  for (int rx = 0; rx < kNumRx; ++rx) {
    for (int tx = 0; tx < kNumTx; ++tx) {
      auto& t = taps_[static_cast<std::size_t>(rx)][static_cast<std::size_t>(tx)];
      t.resize(static_cast<std::size_t>(cfg.taps));
      if (cfg.flat) {
        t.assign(static_cast<std::size_t>(cfg.taps), {0.0, 0.0});
        t[0] = rx == tx ? std::complex<double>{1.0, 0.0}
                        : std::complex<double>{0.0, 0.0};
        continue;
      }
      Rng tapRng = base.fork(kTapStream + static_cast<u64>(rx * kNumTx + tx));
      double power = 0.0;
      for (int k = 0; k < cfg.taps; ++k) {
        const double p = std::pow(cfg.delaySpread, k);
        t[static_cast<std::size_t>(k)] = {tapRng.gaussian() * std::sqrt(p / 2.0),
                                          tapRng.gaussian() * std::sqrt(p / 2.0)};
        power += p;
      }
      // Normalize each pair to unit average energy.
      const double norm = 1.0 / std::sqrt(power);
      for (auto& c : t) c *= norm;
    }
  }
}

std::array<std::array<std::complex<double>, kNumTx>, kNumRx>
MimoChannel::gainAt(int k) const {
  std::array<std::array<std::complex<double>, kNumTx>, kNumRx> h{};
  for (int rx = 0; rx < kNumRx; ++rx) {
    for (int tx = 0; tx < kNumTx; ++tx) {
      std::complex<double> g{0.0, 0.0};
      const auto& t = taps_[static_cast<std::size_t>(rx)][static_cast<std::size_t>(tx)];
      for (std::size_t tap = 0; tap < t.size(); ++tap) {
        const double ang = -2.0 * 3.14159265358979323846 * k *
                           static_cast<double>(tap) / kNfft;
        g += t[tap] * std::complex<double>{std::cos(ang), std::sin(ang)};
      }
      h[static_cast<std::size_t>(rx)][static_cast<std::size_t>(tx)] = g;
    }
  }
  return h;
}

std::array<std::vector<cint16>, kNumRx> MimoChannel::run(
    const std::array<std::vector<cint16>, kNumTx>& tx) {
  const std::size_t n = tx[0].size();
  for (const auto& w : tx) ADRES_CHECK(w.size() == n, "tx length mismatch");

  // Reference signal power for the noise scaling: average over inputs.
  double sigPower = 0.0;
  std::size_t cnt = 0;
  for (const auto& w : tx) {
    for (const cint16& s : w) {
      sigPower += (double(s.re) * s.re + double(s.im) * s.im) / (32768.0 * 32768.0);
      ++cnt;
    }
  }
  sigPower = cnt ? sigPower / static_cast<double>(cnt) : 0.0;
  const double noiseStd =
      std::sqrt(sigPower / std::pow(10.0, cfg_.snrDb / 10.0) / 2.0);

  const double cfoStep = cfoTurnsPerSample(cfg_) * 2.0 * 3.14159265358979323846;

  std::array<std::vector<cint16>, kNumRx> out;
  for (int rx = 0; rx < kNumRx; ++rx) {
    auto& o = out[static_cast<std::size_t>(rx)];
    Rng& noise = noiseRng_[static_cast<std::size_t>(rx)];
    o.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::complex<double> acc{0.0, 0.0};
      for (int txa = 0; txa < kNumTx; ++txa) {
        const auto& taps = taps_[static_cast<std::size_t>(rx)][static_cast<std::size_t>(txa)];
        for (std::size_t tap = 0; tap < taps.size(); ++tap) {
          if (i < tap) break;
          const cint16 s = tx[static_cast<std::size_t>(txa)][i - tap];
          acc += taps[tap] *
                 std::complex<double>{s.re / 32768.0, s.im / 32768.0};
        }
      }
      // CFO rotation (common oscillator) and AWGN.
      const double ang = cfoStep * static_cast<double>(i);
      acc *= std::complex<double>{std::cos(ang), std::sin(ang)};
      acc += std::complex<double>{noise.gaussian() * noiseStd,
                                  noise.gaussian() * noiseStd};
      o[i] = {sat16(static_cast<i32>(std::lround(acc.real() * 32768.0))),
              sat16(static_cast<i32>(std::lround(acc.imag() * 32768.0)))};
    }
  }
  return out;
}

}  // namespace adres::dsp
