// 2x2 MIMO channel model: per-pair multipath FIR, carrier frequency
// offset, AWGN, Q15 quantization at the "ADC".
//
// This is the repo's substitute for the authors' RF testbed (DESIGN.md §1):
// it exercises the same receive path (detection, CFO, channel estimation,
// SDM detection) with controlled, reproducible impairments.
#pragma once

#include <array>
#include <complex>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "dsp/preamble.hpp"

namespace adres::dsp {

struct ChannelConfig {
  int taps = 3;                ///< FIR taps per antenna pair
  double delaySpread = 0.45;   ///< exponential tap-power decay factor
  double snrDb = 30.0;         ///< per-receive-antenna SNR
  double cfoPpm = 10.0;        ///< carrier offset in ppm of 2.4 GHz
  u64 seed = 1;
  bool flat = false;           ///< single-tap identity-gain channel (tests)

  bool operator==(const ChannelConfig&) const = default;
};

/// Stable (cross-run, cross-platform) hash over every ChannelConfig field —
/// campaign cells and checkpoint keys derive from it, so two distinct
/// configurations must not silently alias.
u64 stableHash(const ChannelConfig& cfg);

/// Carrier offset in Q16 turns per 20 MHz sample.
double cfoTurnsPerSample(const ChannelConfig& cfg);

/// Default sample-block width of the vectorized tap MAC (runInto): the
/// per-antenna accumulator is processed in blocks of this many samples so
/// the inner tap loops stream over contiguous, cache-resident spans.  Any
/// width >= 1 produces bit-identical output (tested across widths).
inline constexpr int kChannelLanes = 16;

/// Reusable buffers for MimoChannel::runInto — the vectorized frontend's
/// structure-of-arrays working set (DESIGN.md §15).  One instance per
/// producer thread, reused across trials: all vectors retain capacity, and
/// the CFO rotation table persists across trials sharing one cfo step (all
/// trials of a campaign cell), so its per-sample cos/sin pair is paid once
/// per cell instead of once per trial per antenna.
struct ChannelScratch {
  std::array<std::vector<std::complex<double>>, kNumTx> txWave;  ///< SoA tx
  std::vector<std::complex<double>> acc;       ///< per-sample accumulator
  std::vector<double> noiseRe, noiseIm;        ///< pre-drawn Gaussian pairs
  std::vector<std::complex<double>> rot;       ///< CFO phasor table
  double rotStep = 0.0;                        ///< step the table was built at
  bool rotValid = false;
};

class MimoChannel {
 public:
  explicit MimoChannel(const ChannelConfig& cfg);

  /// Applies the channel: kNumTx waveforms in, kNumRx waveforms out
  /// (same length, plus tail clipped).
  std::array<std::vector<cint16>, kNumRx> run(
      const std::array<std::vector<cint16>, kNumTx>& tx);

  /// Vectorized run(): bit-identical output into reused buffers.  The tap
  /// convolution runs as a lane-batched structure-of-arrays MAC (tx samples
  /// converted to doubles once, per-element accumulation order preserved),
  /// the CFO phasors come from the scratch's cached table, and the AWGN is
  /// pre-drawn per receive antenna from the same independent noise
  /// sub-streams the scalar path consumes.  `lanes` is the sample-block
  /// width (>= 1); every width yields the same bytes.  run() is retained
  /// verbatim as the scalar reference and A/B-tested against this path.
  void runInto(const std::array<std::vector<cint16>, kNumTx>& tx,
               std::array<std::vector<cint16>, kNumRx>& out,
               ChannelScratch& scratch, int lanes = kChannelLanes);

  /// True frequency-domain channel gain H[rx][tx] at subcarrier k
  /// (double precision — for test assertions, not available to the modem).
  std::array<std::array<std::complex<double>, kNumTx>, kNumRx> gainAt(int k) const;

  const ChannelConfig& config() const { return cfg_; }

 private:
  ChannelConfig cfg_;
  /// Per-receive-antenna noise streams, forked from the seed independently
  /// of the tap streams: the noise realization for a given seed is the same
  /// whatever the tap count or construction order.
  std::array<Rng, kNumRx> noiseRng_;
  /// taps_[rx][tx][0..cfg_.taps): fixed capacity (taps <= 16, checked at
  /// construction) so building a per-trial channel costs no heap traffic.
  std::array<std::array<std::array<std::complex<double>, 16>, kNumTx>, kNumRx>
      taps_;
};

}  // namespace adres::dsp
