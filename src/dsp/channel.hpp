// 2x2 MIMO channel model: per-pair multipath FIR, carrier frequency
// offset, AWGN, Q15 quantization at the "ADC".
//
// This is the repo's substitute for the authors' RF testbed (DESIGN.md §1):
// it exercises the same receive path (detection, CFO, channel estimation,
// SDM detection) with controlled, reproducible impairments.
#pragma once

#include <array>
#include <complex>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "dsp/preamble.hpp"

namespace adres::dsp {

struct ChannelConfig {
  int taps = 3;                ///< FIR taps per antenna pair
  double delaySpread = 0.45;   ///< exponential tap-power decay factor
  double snrDb = 30.0;         ///< per-receive-antenna SNR
  double cfoPpm = 10.0;        ///< carrier offset in ppm of 2.4 GHz
  u64 seed = 1;
  bool flat = false;           ///< single-tap identity-gain channel (tests)

  bool operator==(const ChannelConfig&) const = default;
};

/// Stable (cross-run, cross-platform) hash over every ChannelConfig field —
/// campaign cells and checkpoint keys derive from it, so two distinct
/// configurations must not silently alias.
u64 stableHash(const ChannelConfig& cfg);

/// Carrier offset in Q16 turns per 20 MHz sample.
double cfoTurnsPerSample(const ChannelConfig& cfg);

class MimoChannel {
 public:
  explicit MimoChannel(const ChannelConfig& cfg);

  /// Applies the channel: kNumTx waveforms in, kNumRx waveforms out
  /// (same length, plus tail clipped).
  std::array<std::vector<cint16>, kNumRx> run(
      const std::array<std::vector<cint16>, kNumTx>& tx);

  /// True frequency-domain channel gain H[rx][tx] at subcarrier k
  /// (double precision — for test assertions, not available to the modem).
  std::array<std::array<std::complex<double>, kNumTx>, kNumRx> gainAt(int k) const;

  const ChannelConfig& config() const { return cfg_; }

 private:
  ChannelConfig cfg_;
  /// Per-receive-antenna noise streams, forked from the seed independently
  /// of the tap streams: the noise realization for a given seed is the same
  /// whatever the tap count or construction order.
  std::array<Rng, kNumRx> noiseRng_;
  /// taps_[rx][tx][tap]
  std::array<std::array<std::vector<std::complex<double>>, kNumTx>, kNumRx> taps_;
};

}  // namespace adres::dsp
