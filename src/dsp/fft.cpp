#include "dsp/fft.hpp"

#include "common/check.hpp"
#include "dsp/trig.hpp"

namespace adres::dsp {

cint16 twiddle(int k, int n) {
  // e^{-j*2*pi*k/n}: negative angle in Q16 turns.
  const u16 turns = static_cast<u16>(
      65536u - (static_cast<u32>(k) * 65536u) / static_cast<u32>(n));
  return phasorQ15(turns);
}

std::vector<int> bitReverseTable(int n) {
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  std::vector<int> t(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    int r = 0;
    for (int b = 0; b < bits; ++b)
      if (i & (1 << b)) r |= 1 << (bits - 1 - b);
    t[static_cast<std::size_t>(i)] = r;
  }
  return t;
}

namespace {

/// Per-thread memo of the last bitReverseTable(n): transforms repeat one
/// length (the 64-point OFDM symbol), and the packet hot path must not
/// allocate per call (alloc_gate).  Thread-local because producer shards
/// and farm workers transform concurrently.
const std::vector<int>& cachedBitReverseTable(int n) {
  thread_local std::vector<int> table;
  thread_local int tableN = 0;
  if (tableN != n) {
    table = bitReverseTable(n);
    tableN = n;
  }
  return table;
}

}  // namespace

void fftScaled(std::vector<cint16>& x) {
  const int n = static_cast<int>(x.size());
  ADRES_CHECK(n >= 2 && (n & (n - 1)) == 0, "FFT length must be a power of two");
  const std::vector<int>& rev = cachedBitReverseTable(n);
  for (int i = 0; i < n; ++i) {
    const int r = rev[static_cast<std::size_t>(i)];
    if (r > i) std::swap(x[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(r)]);
  }
  for (int len = 2; len <= n; len <<= 1) {
    const int half = len / 2;
    const int step = n / len;
    for (int base = 0; base < n; base += len) {
      for (int k = 0; k < half; ++k) {
        butterfly(x[static_cast<std::size_t>(base + k)],
                  x[static_cast<std::size_t>(base + k + half)],
                  twiddle(k * step, n), /*trivial=*/len == 2);
      }
    }
  }
}

void ifftScaled(std::vector<cint16>& x) {
  for (cint16& v : x) v = v.conj();
  fftScaled(x);
  for (cint16& v : x) v = v.conj();
}

}  // namespace adres::dsp
