// Fixed-point FFT (radix-2 DIT, Q15, per-stage /2 scaling).
//
// The butterfly arithmetic is exactly the machine's SIMD recipe —
// mulQ15 products, arithmetic shift right by one, saturating adds — so the
// CGA-mapped fft kernel is bit-exact with this golden model.
// A length-N transform returns FFT(x)/N (the per-stage halving absorbs the
// 1/N); the inverse uses the conjugation identity and is an exact inverse
// up to the same scaling.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace adres::dsp {

/// One scaled butterfly: t = b*w (Q15); a' = a/2 + t/2 ; b' = a/2 - t/2.
/// `trivial` skips the W=1 multiply exactly as the stage-1 hardware kernel
/// does (a Q15 multiply by 32767 is not a perfect identity).
/// Exposed so kernel builders and tests share the exact arithmetic.
inline void butterfly(cint16& a, cint16& b, cint16 w, bool trivial = false) {
  const cint16 t = trivial ? b : b * w;
  const cint16 ah{static_cast<i16>(a.re >> 1), static_cast<i16>(a.im >> 1)};
  const cint16 th{static_cast<i16>(t.re >> 1), static_cast<i16>(t.im >> 1)};
  a = ah + th;
  b = ah - th;
}

/// In-place scaled FFT: x <- FFT(x)/N.  N must be a power of two >= 2.
void fftScaled(std::vector<cint16>& x);

/// In-place scaled inverse FFT: x <- IFFT(x) where IFFT(FFT(y)/N) == y up
/// to quantization (conjugation identity around fftScaled).
void ifftScaled(std::vector<cint16>& x);

/// Twiddle factor W_N^k = e^{-j*2*pi*k/N} in Q15.
cint16 twiddle(int k, int n);

/// Bit-reversal permutation table for length n.
std::vector<int> bitReverseTable(int n);

}  // namespace adres::dsp
