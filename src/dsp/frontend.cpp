#include "dsp/frontend.hpp"

#include <string>
#include <utility>

#include "common/check.hpp"

namespace adres::dsp {

const char* frontendKindName(FrontendKind k) {
  switch (k) {
    case FrontendKind::kScalar: return "scalar";
    case FrontendKind::kVectorized: return "vectorized";
  }
  return "?";
}

FrontendKind parseFrontendKind(std::string_view s) {
  if (s == "scalar") return FrontendKind::kScalar;
  if (s == "vectorized") return FrontendKind::kVectorized;
  throw SimError("unknown frontend kind '" + std::string(s) +
                 "' (expected scalar|vectorized)");
}

void generateTrial(const ModemConfig& modem, const ChannelConfig& chCfg,
                   Rng& txRng, std::vector<u8>& bits,
                   std::array<std::vector<cint16>, kNumRx>& rx,
                   TrialScratch& scratch, const FrontendConfig& fe) {
  if (fe.kind == FrontendKind::kScalar) {
    TxPacket pkt = transmit(modem, txRng);
    bits = std::move(pkt.bits);
    MimoChannel ch(chCfg);
    rx = ch.run(pkt.waveform);
    return;
  }
  transmitInto(modem, txRng, bits, scratch.txWave, scratch.tx);
  MimoChannel ch(chCfg);
  ch.runInto(scratch.txWave, rx, scratch.ch, fe.lanes);
}

}  // namespace adres::dsp
