// Trial-generation frontend: the TX + channel pipeline that produces one
// campaign trial (payload bits + channel-impaired receive waveforms).
//
// Two implementations sit behind one switch, A/B-tested like the exec
// tiers (DESIGN.md §15):
//   kScalar     — the original per-sample reference path
//                 (transmit + MimoChannel::run), allocating per trial
//   kVectorized — lane-batched structure-of-arrays path into reused
//                 buffers (transmitInto + MimoChannel::runInto);
//                 bit-identical to the scalar path for the same seeds and
//                 allocation-free in steady state
// Because both paths draw from the same counter-derived Rng streams in the
// same order, campaign results — and adres.campaign.v1 checkpoint bytes —
// are unchanged by the switch.
#pragma once

#include <array>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "dsp/channel.hpp"
#include "dsp/modem.hpp"

namespace adres::dsp {

enum class FrontendKind : u8 { kScalar, kVectorized };

/// Stable lowercase name ("scalar" / "vectorized").
const char* frontendKindName(FrontendKind k);

/// Parses a frontendKindName; throws SimError on anything else.
FrontendKind parseFrontendKind(std::string_view s);

struct FrontendConfig {
  FrontendKind kind = FrontendKind::kVectorized;
  int lanes = kChannelLanes;  ///< sample-block width of the channel MAC

  bool operator==(const FrontendConfig&) const = default;
};

/// Per-thread working set for generateTrial, reused across trials: all
/// buffers keep their capacity, and the channel scratch's CFO phasor table
/// persists across every trial of a cell.
struct TrialScratch {
  TxScratch tx;
  std::array<std::vector<cint16>, kNumTx> txWave;
  ChannelScratch ch;
};

/// Generates one trial: payload bits drawn from `txRng`, TX waveforms, and
/// the receive waveforms after the channel built from `chCfg` (whose seed
/// carries the trial's counter-derived channel stream).  `bits` and `rx`
/// are written in place (resized, capacity retained).  Output is
/// bit-identical across frontend kinds and lane widths.
void generateTrial(const ModemConfig& modem, const ChannelConfig& chCfg,
                   Rng& txRng, std::vector<u8>& bits,
                   std::array<std::vector<cint16>, kNumRx>& rx,
                   TrialScratch& scratch, const FrontendConfig& fe = {});

}  // namespace adres::dsp
