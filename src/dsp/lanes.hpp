// Lane-word helpers: the canonical SIMD recipes (complex multiply,
// conjugate, shifted MAC, lane fold) expressed through the machine's own
// opcode semantics.  Golden models that must be bit-exact with CGA kernels
// compute through these, so "golden" and "mapped" share one arithmetic.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "isa/semantics.hpp"

namespace adres::dsp::lanes {

/// conj of both complex lanes: C4MIX(y, C4NEG(y)).
inline Word conjPair(Word y) {
  const Word n = evalOp(Opcode::C4NEG, y, 0, 0);
  return evalOp(Opcode::C4MIX, y, n, 0);
}

/// The 5-op complex multiply of two packed pairs.
inline Word cmulPair(Word x, Word y) {
  const Word d = evalOp(Opcode::D4PROD, x, y, 0);
  const Word c = evalOp(Opcode::C4PROD, x, y, 0);
  const Word re = evalOp(Opcode::C4PSUB, d, 0, 0);
  const Word im = evalOp(Opcode::C4PADD, c, 0, 0);
  return evalOp(Opcode::C4MIX, re, im, 0);
}

/// Broadcast lane constant.
inline Word splat(i16 v) { return packLanes(v, v, v, v); }

/// acc += round(x*y / 2^shift), saturating lanes.  The rounded downscale is
/// one D4PROD by 2^(15-shift) (mulQ15 rounds to nearest — a plain
/// arithmetic shift would bias the small components and skew the CFO
/// estimate).
inline Word macShifted(Word acc, Word x, Word y, int shift) {
  const Word p = cmulPair(x, y);
  const Word ps = evalOp(Opcode::D4PROD, p, splat(static_cast<i16>(1 << (15 - shift))), 0);
  return evalOp(Opcode::C4ADD, acc, ps, 0);
}

/// Folds both complex lanes into one: (l0+l2, l1+l3), saturating.
inline cint16 fold(Word acc) {
  const Word sh = evalOp(Opcode::C4SHUF, acc, 0, 0b00001110);  // [l2,l3,l2,l3]
  const Word s = evalOp(Opcode::C4ADD, acc, sh, 0);
  return unpackC(s, 0);
}

/// Packs samples [idx, idx+1] into one lane word.
inline Word loadPair(const std::vector<cint16>& r, int idx) {
  return packC2(r[static_cast<std::size_t>(idx)],
                r[static_cast<std::size_t>(idx + 1)]);
}

}  // namespace adres::dsp::lanes
