#include "dsp/mimo.hpp"

#include <algorithm>
#include <cstdint>

#include "common/check.hpp"
#include "dsp/lanes.hpp"
#include "dsp/trig.hpp"

namespace adres::dsp {

std::vector<ChannelEst> estimateChannel(
    const std::array<std::vector<cint16>, kNumRx>& ltf1,
    const std::array<std::vector<cint16>, kNumRx>& ltf2) {
  for (int rx = 0; rx < kNumRx; ++rx) {
    ADRES_CHECK(ltf1[static_cast<std::size_t>(rx)].size() == kNfft &&
                    ltf2[static_cast<std::size_t>(rx)].size() == kNfft,
                "need 64-bin LTF spectra");
  }
  // Lane-structured exactly like the chest kernel: both rx antennas of a
  // tone share one 64-bit word [rx0, rx1]; P = [1 1; 1 -1] separation is a
  // C4ADD/C4SUB + >>1; the LTF sign applies as a D4PROD by +-32767.
  const auto& uidx = usedCarrierIdx();
  std::vector<ChannelEst> out(kUsedCarriers);
  for (int i = 0; i < kUsedCarriers; ++i) {
    const int k = uidx[static_cast<std::size_t>(i)];
    const int bin = binOf(k);
    const Word signW = lanes::splat(static_cast<i16>(ltfSign(k) * 32767));
    const Word r1 = packC2(ltf1[0][static_cast<std::size_t>(bin)],
                           ltf1[1][static_cast<std::size_t>(bin)]);
    const Word r2 = packC2(ltf2[0][static_cast<std::size_t>(bin)],
                           ltf2[1][static_cast<std::size_t>(bin)]);
    const Word sum = evalOp(Opcode::C4ADD, r1, r2, 0);
    const Word dif = evalOp(Opcode::C4SUB, r1, r2, 0);
    Word h0 = evalOp(Opcode::C4SHIFTR, sum, 1, 0);
    Word h1 = evalOp(Opcode::C4SHIFTR, dif, 1, 0);
    h0 = evalOp(Opcode::D4PROD, h0, signW, 0);
    h1 = evalOp(Opcode::D4PROD, h1, signW, 0);
    ChannelEst& e = out[static_cast<std::size_t>(i)];
    e.h[0][0] = unpackC(h0, 0);
    e.h[1][0] = unpackC(h0, 1);
    e.h[0][1] = unpackC(h1, 0);
    e.h[1][1] = unpackC(h1, 1);
  }
  return out;
}

EqMatrix equalizerCoeffOne(const ChannelEst& est) {
  // The exact 32-bit integer sequence the CGA "equalize coeff calc" kernel
  // runs — every operation below maps 1:1 to a machine op (MUL keeps the
  // low 32 bits; all products here fit), so kernel and golden are
  // bit-identical.  Derivation: W_q13 = adj * amp * 2^13 / det, computed as
  //   detN  = det >> k      (branchless binary normalization, m < 2^10)
  //   m8    = (|detN|^2) >> 8, floored at 1
  //   inv   = (amp << 7) / m8   (24-bit divide), clamped to 4096
  //   W     = ((adj (x) conj(detN)) >> 7) * inv >> max(k - 5, 0),
  // clamped to +-8191 and scaled x4 into Q13.
  const cint16 a = est.h[0][0], b = est.h[0][1];
  const cint16 c = est.h[1][0], d = est.h[1][1];

  // Wrap-around u32 arithmetic throughout: identical to the machine's ADD/
  // SUB/MUL (low 32 bits) and well-defined in C++ even at the +-2^31 edge.
  const auto wmul = [](i32 x, i32 y) {
    return static_cast<i32>(static_cast<u32>(x) * static_cast<u32>(y));
  };
  i32 dr = (wmul(a.re, d.re) - wmul(a.im, d.im)) -
           (wmul(b.re, c.re) - wmul(b.im, c.im));
  i32 di = (wmul(a.re, d.im) + wmul(a.im, d.re)) -
           (wmul(b.re, c.im) + wmul(b.im, c.re));

  // m = |dr| | |di| via sign-mask abs (the kernel's ASR/XOR/SUB idiom).
  const auto iabs = [](i32 x) {
    const i32 s = x >> 31;
    return (x ^ s) - s;
  };
  i32 m = iabs(dr) | iabs(di);
  i32 k = 0;
  for (int s : {16, 8, 4, 2, 1}) {
    const i32 cond = (static_cast<u32>(m) >> (9 + s)) != 0 ? 1 : 0;
    const i32 amt = cond << (s == 16 ? 4 : s == 8 ? 3 : s == 4 ? 2 : s == 2 ? 1 : 0);
    dr >>= amt;
    di >>= amt;
    m = static_cast<i32>(static_cast<u32>(m) >> amt);
    k += amt;
  }
  i32 m8 = static_cast<i32>(
      static_cast<u32>(wmul(dr, dr) + wmul(di, di)) >> 8);
  m8 += (m8 == 0) ? 1 : 0;
  i32 inv = (kLtfAmpQ15 << 7) / m8;
  inv -= (inv > 4096 ? 1 : 0) * (inv - 4096);

  i32 shRaw = k - 5;
  const i32 shNeg = shRaw >> 31;
  const i32 sh = shRaw & ~shNeg;  // max(k-5, 0)

  // adj(H) = [d -b; -c a] as component pairs (re, im).
  const i32 adjRe[4] = {d.re, -b.re, -c.re, a.re};
  const i32 adjIm[4] = {d.im, -b.im, -c.im, a.im};
  EqMatrix w;
  for (int e = 0; e < 4; ++e) {
    const i32 numRe = wmul(adjRe[e], dr) + wmul(adjIm[e], di);
    const i32 numIm = wmul(adjIm[e], dr) - wmul(adjRe[e], di);
    const auto finish = [&](i32 num) -> i16 {
      // t == W in Q13 exactly; clamp into the 16-bit register.
      i32 t = wmul(num >> 7, inv) >> sh;
      t -= (t > 32767 ? 1 : 0) * (t - 32767);
      t -= (t < -32768 ? 1 : 0) * (t + 32768);
      return static_cast<i16>(t);
    };
    w.w[e / 2][e % 2] = {finish(numRe), finish(numIm)};
  }
  return w;
}

std::vector<EqMatrix> equalizerCoeffs(const std::vector<ChannelEst>& est) {
  std::vector<EqMatrix> out(est.size());
  for (std::size_t i = 0; i < est.size(); ++i) out[i] = equalizerCoeffOne(est[i]);
  return out;
}

std::array<std::vector<cint16>, kNumTx> sdmDetect(
    const std::vector<EqMatrix>& w,
    const std::array<std::vector<cint16>, kNumRx>& rxUsed) {
  ADRES_CHECK(w.size() == rxUsed[0].size() && w.size() == rxUsed[1].size(),
              "tone count mismatch");
  std::array<std::vector<cint16>, kNumTx> y;
  for (auto& s : y) s.resize(w.size());
  for (std::size_t t = 0; t < w.size(); ++t) {
    for (int i = 0; i < kNumTx; ++i) {
      const cint16 p0 = w[t].w[i][0] * rxUsed[0][t];
      const cint16 p1 = w[t].w[i][1] * rxUsed[1][t];
      cint16 s = p0 + p1;
      // W is Q13: restore the scale with two saturating doublings.
      s = s + s;
      s = s + s;
      y[static_cast<std::size_t>(i)][t] = s;
    }
  }
  return y;
}

cint16 trackingCpe(const std::array<cint16, kPilotCarriers>& eqPilots,
                   int symbolIndex, i16 pilotAmp) {
  const i16 pol = pilotPolarity(symbolIndex);
  i32 zr = 0, zi = 0;
  for (int p = 0; p < kPilotCarriers; ++p) {
    const i16 expected = static_cast<i16>(
        kPilotBase[static_cast<std::size_t>(p)] * pol * pilotAmp);
    const cint16 prod = eqPilots[static_cast<std::size_t>(p)] *
                        cint16{expected, 0}.conj();
    zr += prod.re;
    zi += prod.im;
  }
  // Derotation phasor = unit phasor at -angle(z).
  const u16 ang = atan2Turns(zi, zr);
  return phasorQ15(static_cast<u16>(65536u - ang));
}

void applyCpe(std::array<std::vector<cint16>, kNumTx>& streams, cint16 derot) {
  for (auto& s : streams)
    for (cint16& v : s) v = v * derot;
}

}  // namespace adres::dsp
