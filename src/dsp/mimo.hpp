// 2x2 MIMO baseband processing golden models (paper Table 2: "SDM
// processing", "equalize coeff. calc.", "tracking", "comp").
//
// Fixed-point recipes (documented field by field so the CGA kernels can be
// written to match bit-exactly):
//  * Channel estimation from the two P-mapped MIMO-LTF symbols:
//      h[rx][0] = sign_k * (r1 + r2) >> 1 ,  h[rx][1] = sign_k * (r1 - r2) >> 1
//    (estimates are the true channel scaled by the LTF tone amplitude).
//  * ZF equalizer per tone: W = adj(H)*conj(det) * inv where
//      det = h00*h11 - h01*h10                       (Q15 complex)
//      m22 = (det.re^2 + det.im^2) >> 8              (Q22 magnitude^2)
//      inv = 2^22 / max(m22, 1)                      (24-bit divide)
//      W_ij = ((adj_ij * conj(det)) * kLtfAmpQ15) >> 15 * inv, saturated
//    which folds the LTF amplitude back in so W*r lands on the QAM grid.
//  * SDM detection (comp): y = W * r per data tone (Q15 complex mat-vec),
//    followed by the common-phase-error derotation from tracking.
//  * Tracking: CPE phasor z = sum_pilots r_eq[p] * conj(expected[p]).
#pragma once

#include <array>
#include <vector>

#include "common/types.hpp"
#include "dsp/ofdm.hpp"
#include "dsp/preamble.hpp"

namespace adres::dsp {

/// Q15 amplitude the preamble generator uses for LTF tones (see
/// preamble.cpp kPreambleAmp); the equalizer folds it back.
inline constexpr i16 kLtfAmpQ15 = 6000;

/// Per-tone 2x2 channel estimate, Q15, scaled by kLtfAmpQ15/32768.
struct ChannelEst {
  cint16 h[kNumRx][kNumTx];
};

/// Per-tone 2x2 equalizer matrix in Q13: ZF gains exceed 1.0 on faded
/// tones, so W keeps 4x headroom and sdmDetect applies the matching x4
/// (two saturating doublings) after the mat-vec.
struct EqMatrix {
  cint16 w[kNumTx][kNumRx];
};

/// MIMO channel estimation over all 52 used tones from the two FFT'd
/// MIMO-LTF symbols (spectra per rx antenna).  ltf1/ltf2: [rx][bin].
std::vector<ChannelEst> estimateChannel(
    const std::array<std::vector<cint16>, kNumRx>& ltf1,
    const std::array<std::vector<cint16>, kNumRx>& ltf2);

/// ZF equalizer coefficients for every used tone.
std::vector<EqMatrix> equalizerCoeffs(const std::vector<ChannelEst>& est);

/// The exact scalar recipe for one tone (exposed for kernel validation).
EqMatrix equalizerCoeffOne(const ChannelEst& est);

/// SDM detection: per used tone, y[tx] = sum_rx W[tx][rx] * r[rx].
/// `rx` holds the 52 used-carrier values per antenna for one OFDM symbol.
std::array<std::vector<cint16>, kNumTx> sdmDetect(
    const std::vector<EqMatrix>& w,
    const std::array<std::vector<cint16>, kNumRx>& rxUsed);

/// Common-phase-error phasor from the equalized pilots of stream 0 vs the
/// expected pilot values for `symbolIndex`.  Returns the *conjugate*
/// derotation phasor (normalized to Q15 unit magnitude via atan2+phasor).
cint16 trackingCpe(const std::array<cint16, kPilotCarriers>& eqPilots,
                   int symbolIndex, i16 pilotAmp);

/// Applies the CPE derotation to both detected streams in place.
void applyCpe(std::array<std::vector<cint16>, kNumTx>& streams, cint16 derot);

}  // namespace adres::dsp
