#include "dsp/modem.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "dsp/fft.hpp"
#include "dsp/sync.hpp"
#include "dsp/trig.hpp"

namespace adres::dsp {

u64 stableHash(const ModemConfig& cfg) {
  u64 h = 0x61647265735F6D64ull;  // "adres_md"
  h = hashCombine(h, static_cast<u64>(cfg.mod));
  h = hashCombine(h, static_cast<u64>(cfg.numSymbols));
  return h;
}

int bitsPerOfdmSymbol(const ModemConfig& cfg) {
  return kDataCarriers * bitsPerSymbol(cfg.mod) * kNumTx;
}

double rawRateMbps(const ModemConfig& cfg) {
  return bitsPerOfdmSymbol(cfg) / kSymbolTimeUs;
}

TxPacket transmit(const ModemConfig& cfg, Rng& rng) {
  TxPacket pkt;
  const int bitsPerSym = bitsPerOfdmSymbol(cfg);
  pkt.bits.resize(static_cast<std::size_t>(cfg.numSymbols * bitsPerSym));
  for (u8& b : pkt.bits) b = rng.bit() ? 1 : 0;

  pkt.waveform = mimoPreamble();
  const int bps = bitsPerSymbol(cfg.mod);
  const i16 pilotAmp = kLtfAmpQ15;

  for (int sym = 0; sym < cfg.numSymbols; ++sym) {
    for (int tx = 0; tx < kNumTx; ++tx) {
      // Stream `tx` takes the tx-th block of 48*bps bits of this symbol.
      std::vector<cint16> data(kDataCarriers);
      const std::size_t base =
          static_cast<std::size_t>(sym * bitsPerSym + tx * kDataCarriers * bps);
      for (int d = 0; d < kDataCarriers; ++d)
        data[static_cast<std::size_t>(d)] =
            qamMap(cfg.mod, pkt.bits, base + static_cast<std::size_t>(d * bps));
      std::vector<cint16> spec = mapSubcarriers(data, sym, pilotAmp);
      ifftScaled(spec);
      for (cint16& v : spec) {
        v.re = satX8(v.re);
        v.im = satX8(v.im);
      }
      const auto withCp = addCyclicPrefix(spec);
      auto& w = pkt.waveform[static_cast<std::size_t>(tx)];
      w.insert(w.end(), withCp.begin(), withCp.end());
    }
  }
  return pkt;
}

void transmitInto(const ModemConfig& cfg, Rng& rng, std::vector<u8>& bits,
                  std::array<std::vector<cint16>, kNumTx>& waveform,
                  TxScratch& scratch) {
  const int bitsPerSym = bitsPerOfdmSymbol(cfg);
  bits.resize(static_cast<std::size_t>(cfg.numSymbols * bitsPerSym));
  for (u8& b : bits) b = rng.bit() ? 1 : 0;

  // The preamble is the same bytes for every packet: build it once per
  // process and memcpy it into place instead of re-running its IFFTs.
  static const std::array<std::vector<cint16>, kNumTx> pre = mimoPreamble();

  const int bps = bitsPerSymbol(cfg.mod);
  const i16 pilotAmp = kLtfAmpQ15;
  const std::size_t total =
      static_cast<std::size_t>(kPreambleLen + cfg.numSymbols * kSymbolLen);
  for (int tx = 0; tx < kNumTx; ++tx) {
    auto& w = waveform[static_cast<std::size_t>(tx)];
    w.resize(total);
    const auto& p = pre[static_cast<std::size_t>(tx)];
    std::copy(p.begin(), p.end(), w.begin());
  }

  std::array<cint16, kDataCarriers> data;
  auto& spec = scratch.spec;
  for (int sym = 0; sym < cfg.numSymbols; ++sym) {
    for (int tx = 0; tx < kNumTx; ++tx) {
      // Stream `tx` takes the tx-th block of 48*bps bits of this symbol.
      const std::size_t base =
          static_cast<std::size_t>(sym * bitsPerSym + tx * kDataCarriers * bps);
      qamMapBlock(cfg.mod, bits.data() + base, kDataCarriers, data.data());
      mapSubcarriersInto(data.data(), sym, pilotAmp, spec);
      ifftScaled(spec);
      for (cint16& v : spec) {
        v.re = satX8(v.re);
        v.im = satX8(v.im);
      }
      // In-place cyclic-prefix append: CP = last kCpLen samples, then body.
      cint16* dst = waveform[static_cast<std::size_t>(tx)].data() +
                    kPreambleLen + sym * kSymbolLen;
      std::copy(spec.end() - kCpLen, spec.end(), dst);
      std::copy(spec.begin(), spec.end(), dst + kCpLen);
    }
  }
}

std::vector<cint16> rxFft(const std::vector<cint16>& time64) {
  std::vector<cint16> spec = time64;
  fftScaled(spec);
  for (cint16& v : spec) {
    v.re = satX8(v.re);
    v.im = satX8(v.im);
  }
  return spec;
}

int bitErrors(const std::vector<u8>& a, const std::vector<u8>& b) {
  ADRES_CHECK(a.size() == b.size(), "payload size mismatch");
  int e = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if ((a[i] & 1) != (b[i] & 1)) ++e;
  return e;
}

RxTrace receive(const ModemConfig& cfg,
                const std::array<std::vector<cint16>, kNumRx>& rx) {
  RxTrace tr;
  const std::vector<cint16>& r0 = rx[0];

  // --- Preamble processing (Table 2 upper half) ---------------------------

  // acorr: packet detection on antenna 0.
  tr.detectIndex = packetDetect(r0);
  if (tr.detectIndex < 0) return tr;

  // Coarse CFO from the STF (freq offset estimation on lag-16 pairs).
  const int stfMid = tr.detectIndex + 32;
  tr.cfoCoarse = cfoEstimateStf(r0, stfMid);

  // fshift the expected LTF region with the coarse estimate, then xcorr
  // for fine timing.  The LTF field begins kStfLen after packet start;
  // search +-8 samples around the nominal first period start.
  const int nominalLtf = tr.detectIndex + (kStfLen - tr.detectIndex % 16) +
                         kLtfCp;  // CP-skipped first period (approx)
  const int searchFrom = nominalLtf - 8;
  const int searchLen = 16 + kNfft;
  if (searchFrom < 0 ||
      searchFrom + searchLen + kNfft > static_cast<int>(r0.size()))
    return tr;
  const std::vector<cint16> shifted =
      fshift(r0, searchFrom, searchLen + kNfft, tr.cfoCoarse,
             static_cast<u16>(tr.cfoCoarse * searchFrom));
  // Bias the timing 2 samples into the cyclic prefix: a window that starts
  // late leaks inter-symbol interference; starting inside the CP only adds
  // a phase ramp that the channel estimate absorbs.
  tr.ltfStart = searchFrom + xcorrPeak(shifted, 0, 16) - 2;

  // Fine CFO from the two LTF periods (freq offset estimation, lag 64).
  {
    const std::vector<cint16> ltfShift =
        fshift(r0, tr.ltfStart, 2 * kNfft, tr.cfoCoarse,
               static_cast<u16>(tr.cfoCoarse * tr.ltfStart));
    tr.cfoFine = cfoEstimateLtf(ltfShift, 0);
  }
  tr.cfoTotal = static_cast<i16>(tr.cfoCoarse + tr.cfoFine);

  // freq offset compensation + fft (2x) over the two MIMO-LTF symbols on
  // both antennas; sample ordering gathers the spectra per antenna.
  const int mimoLtfBase = tr.ltfStart + 2 * kNfft;
  std::array<std::vector<cint16>, kNumRx> ltf1, ltf2;
  for (int a = 0; a < kNumRx; ++a) {
    for (int s = 0; s < 2; ++s) {
      const int start = mimoLtfBase + s * kSymbolLen + kCpLen;
      if (start + kNfft > static_cast<int>(rx[static_cast<std::size_t>(a)].size())) return tr;
      const std::vector<cint16> comp =
          fshift(rx[static_cast<std::size_t>(a)], start, kNfft, tr.cfoTotal,
                 static_cast<u16>(tr.cfoTotal * start));
      auto& dstSpec = s == 0 ? ltf1 : ltf2;
      dstSpec[static_cast<std::size_t>(a)] = rxFft(comp);
    }
  }

  // SDM processing (channel estimation) + equalize coeff calc.
  tr.channel = estimateChannel(ltf1, ltf2);
  tr.eq = equalizerCoeffs(tr.channel);
  tr.detected = true;

  // --- Data processing (Table 2 lower half), per OFDM symbol --------------

  const int dataBase = mimoLtfBase + 2 * kSymbolLen;
  const int bps = bitsPerSymbol(cfg.mod);
  tr.bits.assign(static_cast<std::size_t>(cfg.numSymbols) *
                     static_cast<std::size_t>(bitsPerOfdmSymbol(cfg)),
                 0);
  const auto& uidx = usedCarrierIdx();

  // Used-tone index of each pilot and of each data tone.
  std::array<int, kPilotCarriers> pilotPos{};
  std::vector<int> dataPos;
  {
    int pp = 0;
    for (int i = 0; i < kUsedCarriers; ++i) {
      const int k = uidx[static_cast<std::size_t>(i)];
      bool isPil = false;
      for (int p : kPilotIdx) isPil = isPil || p == k;
      if (isPil)
        pilotPos[static_cast<std::size_t>(pp++)] = i;
      else
        dataPos.push_back(i);
    }
  }

  for (int sym = 0; sym < cfg.numSymbols; ++sym) {
    const int start = dataBase + sym * kSymbolLen + kCpLen;
    if (start + kNfft > static_cast<int>(r0.size())) break;

    // fshift + fft (2x) + data shuffle.
    std::array<std::vector<cint16>, kNumRx> used;
    for (int a = 0; a < kNumRx; ++a) {
      const std::vector<cint16> comp =
          fshift(rx[static_cast<std::size_t>(a)], start, kNfft, tr.cfoTotal,
                 static_cast<u16>(tr.cfoTotal * start));
      used[static_cast<std::size_t>(a)] = gatherUsedCarriers(rxFft(comp));
    }

    // comp: SDM detection across all 52 used tones.
    const auto detected = sdmDetect(tr.eq, used);

    // tracking: CPE from the equalized pilots of stream 0.
    std::array<cint16, kPilotCarriers> eqPilots{};
    for (int p = 0; p < kPilotCarriers; ++p)
      eqPilots[static_cast<std::size_t>(p)] =
          detected[0][static_cast<std::size_t>(pilotPos[static_cast<std::size_t>(p)])];
    const cint16 derot = trackingCpe(eqPilots, sym, kLtfAmpQ15);

    // demod QAM: derotate and slice the 48 data tones per stream.
    for (int tx = 0; tx < kNumTx; ++tx) {
      const std::size_t base = static_cast<std::size_t>(
          sym * bitsPerOfdmSymbol(cfg) + tx * kDataCarriers * bps);
      for (int d = 0; d < kDataCarriers; ++d) {
        const cint16 y =
            detected[static_cast<std::size_t>(tx)]
                    [static_cast<std::size_t>(dataPos[static_cast<std::size_t>(d)])] *
            derot;
        qamDemap(cfg.mod, y, tr.bits, base + static_cast<std::size_t>(d * bps));
      }
    }
  }
  return tr;
}

}  // namespace adres::dsp
