// End-to-end 20 MHz 2x2 MIMO-OFDM modem golden model (paper §4).
//
// TX: payload bits -> QAM -> 48 data tones + pilots -> IFFT -> x8 scaling
// -> CP -> per-antenna preamble prepend.  Two independent spatial streams
// (SDM), 576 bits per OFDM symbol at QAM-64 => 144 Mbps raw over the 4 us
// symbol — the paper's "100 Mbps+" operating point.
//
// RX (golden, mirrors the Table 2 kernel chain): acorr packet detection ->
// coarse CFO (STF) -> fshift -> xcorr fine timing -> fine CFO (LTF) ->
// MIMO-LTF FFTs -> channel estimation (SDM processing) -> equalizer
// coefficients; per data symbol: fshift -> FFT x2 -> data shuffle ->
// pilot tracking -> comp (SDM detection + CPE derotation) -> QAM demap.
//
// Scaling contract: the receive FFT is fftScaled (1/N) followed by three
// saturating doublings (x8), exactly inverting the TX x8 — so with a unit
// channel the data tones land back on the QAM grid and the LTF tones on
// kLtfAmpQ15.
#pragma once

#include <array>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "dsp/channel.hpp"
#include "dsp/mimo.hpp"
#include "dsp/qam.hpp"

namespace adres::dsp {

struct ModemConfig {
  Modulation mod = Modulation::kQam64;
  int numSymbols = 10;  ///< OFDM data symbols per packet

  bool operator==(const ModemConfig&) const = default;
};

/// Stable (cross-run, cross-platform) hash over every ModemConfig field —
/// companion to stableHash(ChannelConfig) for campaign cell keys.
u64 stableHash(const ModemConfig& cfg);

/// Raw (uncoded) bit rate for a configuration, in Mbps.
double rawRateMbps(const ModemConfig& cfg);

/// Bits carried per OFDM symbol across both spatial streams.
int bitsPerOfdmSymbol(const ModemConfig& cfg);

struct TxPacket {
  std::vector<u8> bits;  ///< payload (numSymbols * bitsPerOfdmSymbol)
  std::array<std::vector<cint16>, kNumTx> waveform;
};

/// Builds a packet with random payload bits from `rng`.
TxPacket transmit(const ModemConfig& cfg, Rng& rng);

/// Reused buffers for transmitInto (one per producer thread).
struct TxScratch {
  std::vector<cint16> spec;  ///< 64-bin spectrum, reused per OFDM symbol
};

/// transmit() into reused buffers: payload bits and per-antenna waveforms
/// are resized in place (capacity retained across packets), the MIMO
/// preamble is copied from a process-wide cache instead of being rebuilt,
/// QAM mapping goes through the batched table lookup (qamMapBlock), and the
/// cyclic prefix is appended in place.  Bit-identical to transmit() for the
/// same rng state; transmit() is retained as the scalar reference.
void transmitInto(const ModemConfig& cfg, Rng& rng, std::vector<u8>& bits,
                  std::array<std::vector<cint16>, kNumTx>& waveform,
                  TxScratch& scratch);

/// Saturating x8 (three doublings) — the shared TX/RX scaling primitive.
inline i16 satX8(i16 v) {
  i16 r = satAdd16(v, v);
  r = satAdd16(r, r);
  return satAdd16(r, r);
}

/// Receive FFT: fftScaled followed by the saturating x8.
std::vector<cint16> rxFft(const std::vector<cint16>& time64);

/// Everything the receiver computed — exposed so the processor-mapped
/// kernels can be validated stage by stage against the golden chain.
struct RxTrace {
  bool detected = false;
  int detectIndex = -1;    ///< acorr detection sample
  int ltfStart = -1;       ///< fine-timing result (first LTF period start)
  i16 cfoCoarse = 0;       ///< compensating step, Q16 turns/sample
  i16 cfoFine = 0;
  i16 cfoTotal = 0;
  std::vector<ChannelEst> channel;     ///< 52 used tones
  std::vector<EqMatrix> eq;            ///< 52 used tones
  std::vector<u8> bits;                ///< demodulated payload
};

/// Golden receiver over kNumRx antenna waveforms.
RxTrace receive(const ModemConfig& cfg,
                const std::array<std::vector<cint16>, kNumRx>& rx);

/// Bit error count between payloads (sizes must match).
int bitErrors(const std::vector<u8>& a, const std::vector<u8>& b);

}  // namespace adres::dsp
