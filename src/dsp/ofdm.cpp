#include "dsp/ofdm.hpp"

#include "common/check.hpp"

namespace adres::dsp {
namespace {

bool isPilot(int k) {
  for (int p : kPilotIdx)
    if (p == k) return true;
  return false;
}

}  // namespace

const std::array<int, kDataCarriers>& dataCarrierIdx() {
  static const auto idx = [] {
    std::array<int, kDataCarriers> a{};
    int n = 0;
    for (int k = -26; k <= 26; ++k) {
      if (k == 0 || isPilot(k)) continue;
      a[static_cast<std::size_t>(n++)] = k;
    }
    ADRES_CHECK(n == kDataCarriers, "carrier plan");
    return a;
  }();
  return idx;
}

const std::array<int, kUsedCarriers>& usedCarrierIdx() {
  static const auto idx = [] {
    std::array<int, kUsedCarriers> a{};
    int n = 0;
    for (int k = -26; k <= 26; ++k) {
      if (k == 0) continue;
      a[static_cast<std::size_t>(n++)] = k;
    }
    return a;
  }();
  return idx;
}

i16 pilotPolarity(int symbolIndex) {
  // 127-length PN sequence of 802.11 (first 32 entries suffice for our
  // packet lengths; it repeats beyond).
  static constexpr i16 kPn[32] = {1, 1, 1, 1, -1, -1, -1, 1,  -1, -1, -1,
                                  -1, 1, 1, -1, 1, -1, -1, 1, 1,  -1, 1,
                                  1,  -1, 1, 1, 1, 1,  1,  1, -1, 1};
  return kPn[symbolIndex & 31];
}

std::vector<cint16> mapSubcarriers(const std::vector<cint16>& data,
                                   int symbolIndex, i16 pilotAmp) {
  ADRES_CHECK(data.size() == kDataCarriers, "need 48 data symbols");
  std::vector<cint16> spec;
  mapSubcarriersInto(data.data(), symbolIndex, pilotAmp, spec);
  return spec;
}

void mapSubcarriersInto(const cint16* data, int symbolIndex, i16 pilotAmp,
                        std::vector<cint16>& spec) {
  spec.assign(kNfft, cint16{});
  const auto& didx = dataCarrierIdx();
  for (int i = 0; i < kDataCarriers; ++i)
    spec[static_cast<std::size_t>(binOf(didx[static_cast<std::size_t>(i)]))] =
        data[i];
  const i16 pol = pilotPolarity(symbolIndex);
  for (int p = 0; p < kPilotCarriers; ++p) {
    const i16 v = static_cast<i16>(kPilotBase[static_cast<std::size_t>(p)] * pol * pilotAmp);
    spec[static_cast<std::size_t>(binOf(kPilotIdx[static_cast<std::size_t>(p)]))] = {v, 0};
  }
}

std::vector<cint16> gatherDataCarriers(const std::vector<cint16>& spectrum) {
  ADRES_CHECK(spectrum.size() == kNfft, "need a 64-bin spectrum");
  std::vector<cint16> out(kDataCarriers);
  const auto& didx = dataCarrierIdx();
  for (int i = 0; i < kDataCarriers; ++i)
    out[static_cast<std::size_t>(i)] =
        spectrum[static_cast<std::size_t>(binOf(didx[static_cast<std::size_t>(i)]))];
  return out;
}

std::array<cint16, kPilotCarriers> gatherPilots(
    const std::vector<cint16>& spectrum) {
  ADRES_CHECK(spectrum.size() == kNfft, "need a 64-bin spectrum");
  std::array<cint16, kPilotCarriers> out{};
  for (int p = 0; p < kPilotCarriers; ++p)
    out[static_cast<std::size_t>(p)] =
        spectrum[static_cast<std::size_t>(binOf(kPilotIdx[static_cast<std::size_t>(p)]))];
  return out;
}

std::vector<cint16> gatherUsedCarriers(const std::vector<cint16>& spectrum) {
  ADRES_CHECK(spectrum.size() == kNfft, "need a 64-bin spectrum");
  std::vector<cint16> out(kUsedCarriers);
  const auto& uidx = usedCarrierIdx();
  for (int i = 0; i < kUsedCarriers; ++i)
    out[static_cast<std::size_t>(i)] =
        spectrum[static_cast<std::size_t>(binOf(uidx[static_cast<std::size_t>(i)]))];
  return out;
}

std::vector<cint16> addCyclicPrefix(const std::vector<cint16>& sym) {
  ADRES_CHECK(sym.size() == kNfft, "need a 64-sample symbol");
  std::vector<cint16> out;
  out.reserve(kSymbolLen);
  out.insert(out.end(), sym.end() - kCpLen, sym.end());
  out.insert(out.end(), sym.begin(), sym.end());
  return out;
}

}  // namespace adres::dsp
