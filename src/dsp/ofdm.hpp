// 20 MHz OFDM numerology (IEEE 802.11a/n-like, paper §4 application case).
//
// 64 subcarriers at 20 MHz sampling (312.5 kHz spacing), 16-sample cyclic
// prefix, 48 data + 4 pilot tones, 4 us symbol (80 samples).  The "remove
// zero carriers" / "data shuffle" kernels of Table 2 are the mapping
// utilities below.
#pragma once

#include <array>
#include <vector>

#include "common/types.hpp"

namespace adres::dsp {

inline constexpr int kNfft = 64;
inline constexpr int kCpLen = 16;
inline constexpr int kSymbolLen = kNfft + kCpLen;  // 80 samples = 4 us
inline constexpr int kDataCarriers = 48;
inline constexpr int kPilotCarriers = 4;
inline constexpr int kUsedCarriers = kDataCarriers + kPilotCarriers;  // 52
inline constexpr double kSampleRateMHz = 20.0;
inline constexpr double kSymbolTimeUs = kSymbolLen / kSampleRateMHz;  // 4 us

/// Pilot subcarrier indices (signed, -26..26).
inline constexpr std::array<int, kPilotCarriers> kPilotIdx = {-21, -7, 7, 21};

/// Signed subcarrier index -> FFT bin (0..63).
constexpr int binOf(int k) { return k >= 0 ? k : kNfft + k; }

/// Data subcarrier indices in transmission order (signed -26..26, skipping
/// DC and pilots), 48 entries.
const std::array<int, kDataCarriers>& dataCarrierIdx();

/// Pilot polarity for OFDM symbol `sym` (the 802.11 PN-driven sign).
i16 pilotPolarity(int symbolIndex);

/// Base pilot values at kPilotIdx (before per-symbol polarity).
inline constexpr std::array<i16, kPilotCarriers> kPilotBase = {1, 1, 1, -1};

/// Scatters 48 data symbols + 4 pilots into a 64-bin spectrum
/// (zero carriers cleared).  `amp` scales the unit pilots.
std::vector<cint16> mapSubcarriers(const std::vector<cint16>& data,
                                   int symbolIndex, i16 pilotAmp);

/// mapSubcarriers into a reused buffer (resized to kNfft, capacity kept) —
/// the batched TX path's allocation-free variant.  `data` must point at
/// kDataCarriers symbols.
void mapSubcarriersInto(const cint16* data, int symbolIndex, i16 pilotAmp,
                        std::vector<cint16>& spec);

/// Gathers the 48 data bins out of a 64-bin spectrum in transmission order
/// (the "remove zero carriers" + "data shuffle" operation).
std::vector<cint16> gatherDataCarriers(const std::vector<cint16>& spectrum);

/// Gathers the 4 pilot bins.
std::array<cint16, kPilotCarriers> gatherPilots(const std::vector<cint16>& spectrum);

/// Gathers all 52 used bins (pilots + data interleaved in index order) —
/// what the channel estimator consumes.
std::vector<cint16> gatherUsedCarriers(const std::vector<cint16>& spectrum);

/// Signed indices of all 52 used carriers in ascending order.
const std::array<int, kUsedCarriers>& usedCarrierIdx();

/// Prepends the cyclic prefix to a 64-sample time-domain symbol.
std::vector<cint16> addCyclicPrefix(const std::vector<cint16>& sym);

}  // namespace adres::dsp
