#include "dsp/preamble.hpp"

#include "common/check.hpp"
#include "dsp/fft.hpp"

namespace adres::dsp {
namespace {

// 802.11 L-LTF sequence for k = -26..26 (0 at DC).
constexpr i16 kLtf[53] = {
    1, 1, -1, -1, 1,  1,  -1, 1,  -1, 1,  1,  1,  1,  1, 1, -1, -1, 1,
    1, -1, 1, -1, 1,  1,  1,  1,  0,  1,  -1, -1, 1,  1, -1, 1,  -1, 1,
    -1, -1, -1, -1, -1, 1,  1,  -1, -1, 1,  -1, 1,  -1, 1, 1,  1,  1};

// 802.11 STF tone signs at k = -24, -20, ..., +24 (step 4, skipping 0);
// each tone carries sign*(1+j).
constexpr int kStfTones[12] = {-24, -20, -16, -12, -8, -4, 4, 8, 12, 16, 20, 24};
constexpr i16 kStfSigns[12] = {1, -1, 1, -1, -1, 1, -1, -1, 1, 1, 1, 1};

// Q15 tone amplitude.  Sized so the *sum* of two transmit antennas through
// unit-energy multipath channels stays inside the 16-bit ADC range with
// ~3x peak headroom (must equal mimo.hpp kLtfAmpQ15).
constexpr i16 kPreambleAmp = 6000;

std::vector<cint16> toneSpectrumToTime(const std::vector<cint16>& spec) {
  std::vector<cint16> t = spec;
  ifftScaled(t);
  // ifftScaled includes 1/N; the TX chain rescales by 8 (three saturating
  // doublings — the exact recipe the receive FFT inverts, see modem.hpp).
  for (cint16& v : t) {
    v.re = sat16(i32{v.re} * 8);
    v.im = sat16(i32{v.im} * 8);
  }
  return t;
}

}  // namespace

i16 ltfSign(int k) {
  ADRES_CHECK(k >= -26 && k <= 26, "LTF index");
  return kLtf[k + 26];
}

const std::vector<cint16>& stfTime() {
  static const auto stf = [] {
    std::vector<cint16> spec(kNfft, cint16{});
    for (int i = 0; i < 12; ++i) {
      const int k = kStfTones[i];
      // sign * (1+j) / sqrt(2) * amp
      const i16 v = static_cast<i16>(kStfSigns[i] *
                                     ((kPreambleAmp * 23170) >> 15));
      spec[static_cast<std::size_t>(binOf(k))] = {v, v};
    }
    const std::vector<cint16> period = toneSpectrumToTime(spec);
    // Tones on multiples of 4 => 16-sample periodicity; emit 160 samples.
    std::vector<cint16> out;
    out.reserve(kStfLen);
    for (int n = 0; n < kStfLen; ++n)
      out.push_back(period[static_cast<std::size_t>(n % kNfft)]);
    return out;
  }();
  return stf;
}

const std::vector<cint16>& ltfSymbolTime() {
  static const auto ltf = [] {
    std::vector<cint16> spec(kNfft, cint16{});
    for (int k = -26; k <= 26; ++k) {
      if (k == 0) continue;
      spec[static_cast<std::size_t>(binOf(k))] = {
          static_cast<i16>(ltfSign(k) * kPreambleAmp), 0};
    }
    return toneSpectrumToTime(spec);
  }();
  return ltf;
}

std::vector<cint16> ltfField() {
  const auto& sym = ltfSymbolTime();
  std::vector<cint16> out;
  out.reserve(kLtfLen);
  out.insert(out.end(), sym.end() - kLtfCp, sym.end());
  out.insert(out.end(), sym.begin(), sym.end());
  out.insert(out.end(), sym.begin(), sym.end());
  return out;
}

std::array<std::vector<cint16>, kNumTx> mimoPreamble() {
  std::array<std::vector<cint16>, kNumTx> out;
  const auto& stf = stfTime();
  const auto ltf = ltfField();
  const auto& sym = ltfSymbolTime();
  for (int tx = 0; tx < kNumTx; ++tx) {
    std::vector<cint16>& w = out[static_cast<std::size_t>(tx)];
    w.reserve(kPreambleLen);
    // STF: antenna 1 applies a 8-sample cyclic shift (CSD).
    const int csd = tx == 0 ? 0 : 8;
    for (int n = 0; n < kStfLen; ++n)
      w.push_back(stf[static_cast<std::size_t>((n + csd) % kStfPeriod +
                                               (n / kStfPeriod) * kStfPeriod)]);
    // Legacy LTF only from antenna 0 (antenna 1 silent) so the SISO sync
    // kernels see a clean reference.
    if (tx == 0) {
      w.insert(w.end(), ltf.begin(), ltf.end());
    } else {
      w.insert(w.end(), kLtfLen, cint16{});
    }
    // Two MIMO-LTF symbols with CP, P-mapped.
    for (int s = 0; s < 2; ++s) {
      const i16 p = kPMatrix[static_cast<std::size_t>(tx)][static_cast<std::size_t>(s)];
      std::vector<cint16> mapped(kNfft);
      for (int n = 0; n < kNfft; ++n) {
        const cint16 v = sym[static_cast<std::size_t>(n)];
        mapped[static_cast<std::size_t>(n)] = {static_cast<i16>(p * v.re),
                                               static_cast<i16>(p * v.im)};
      }
      const auto withCp = addCyclicPrefix(mapped);
      w.insert(w.end(), withCp.begin(), withCp.end());
    }
    ADRES_CHECK(static_cast<int>(w.size()) == kPreambleLen, "preamble length");
  }
  return out;
}

}  // namespace adres::dsp
