// 802.11-style preamble generation for the 2x2 MIMO-OFDM modem.
//
// Short training field (STF): 12 tones on multiples of 4 -> 16-sample
// periodic waveform, 160 samples; drives packet detection (acorr kernel)
// and coarse CFO estimation.
// Long training field (LTF): the 52-tone +-1 sequence, 2 x 64 samples + 32
// CP; drives fine timing (xcorr) and fine CFO.
// MIMO LTFs: one extra LTF pair mapped with the orthogonal P = [1 1; 1 -1]
// so the receiver can separate the 2x2 channel per tone.
// Air time: STF(8us) + LTF(8us) + MIMO-LTFs(8us).  The paper's "preamble
// elapsed time (8us)" refers to the STF section during which the detection
// and synchronization kernels must keep up.
#pragma once

#include <array>
#include <vector>

#include "common/types.hpp"
#include "dsp/ofdm.hpp"

namespace adres::dsp {

inline constexpr int kStfLen = 160;       // 10 x 16-sample repetitions
inline constexpr int kStfPeriod = 16;
inline constexpr int kLtfCp = 32;
inline constexpr int kLtfLen = kLtfCp + 2 * kNfft;  // 160
inline constexpr int kNumTx = 2;          // 2x2 MIMO
inline constexpr int kNumRx = 2;

/// Per-antenna preamble length in samples: STF + LTF + 2 MIMO-LTF symbols.
inline constexpr int kPreambleLen = kStfLen + kLtfLen + 2 * kSymbolLen;

/// The L-LTF frequency-domain +-1 sequence for signed carrier k (-26..26).
i16 ltfSign(int k);

/// Time-domain STF (160 samples, Q15, 16-sample periodic).
const std::vector<cint16>& stfTime();

/// One 64-sample LTF period (time domain, Q15).
const std::vector<cint16>& ltfSymbolTime();

/// Full legacy LTF field: 32-sample CP + two LTF periods (160 samples).
std::vector<cint16> ltfField();

/// Orthogonal MIMO-LTF mapping matrix P[txAntenna][ltfSymbol].
inline constexpr std::array<std::array<i16, 2>, 2> kPMatrix = {{{1, 1},
                                                                {1, -1}}};

/// Per-antenna preamble: antenna 0 sends STF+LTF, antenna 1 sends a
/// cyclically-shifted STF (to avoid unintended beamforming) and its
/// orthogonally-mapped MIMO LTFs.  Returns kNumTx waveforms of
/// kPreambleLen samples.
std::array<std::vector<cint16>, kNumTx> mimoPreamble();

}  // namespace adres::dsp
