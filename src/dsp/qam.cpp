#include "dsp/qam.hpp"

#include "common/check.hpp"

namespace adres::dsp {
namespace {

// Gray code per axis, 802.11 convention: for 8 levels, bits b0b1b2 map
// 000 -> -7, 001 -> -5, 011 -> -3, 010 -> -1, 110 -> +1, 111 -> +3,
// 101 -> +5, 100 -> +7 (in units).
constexpr int kGray8[8] = {-7, -5, -3, -1, +1, +3, +5, +7};
// bits -> level index: inverse of the gray sequence {0,1,3,2,6,7,5,4}.
constexpr int kGray8Index[8] = {0, 1, 3, 2, 7, 6, 4, 5};
constexpr int kGray4[4] = {-3, -1, +1, +3};
constexpr int kGray4Index[4] = {0, 1, 3, 2};

int axisBits(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return 1;   // I axis only
    case Modulation::kQpsk: return 1;
    case Modulation::kQam16: return 2;
    case Modulation::kQam64: return 3;
  }
  return 0;
}

int bitsToLevel(Modulation m, u32 bits) {
  switch (axisBits(m)) {
    case 1: return bits ? +1 : -1;
    case 2: return kGray4[kGray4Index[bits & 3]];
    default: return kGray8[kGray8Index[bits & 7]];
  }
}

u32 levelIndexToBits(Modulation m, int levelIdx) {
  switch (axisBits(m)) {
    case 1: return levelIdx > 0 ? 1u : 0u;
    case 2:
      for (u32 b = 0; b < 4; ++b)
        if (kGray4Index[b] == levelIdx) return b;
      return 0;
    default:
      for (u32 b = 0; b < 8; ++b)
        if (kGray8Index[b] == levelIdx) return b;
      return 0;
  }
}

/// Slices a received Q15 amplitude to the nearest level index.
/// Level i has value (2i - (levels-1)) * unit; nearest-level slicing is
/// floor((v + levels*unit) / (2*unit)) with true floor division.
int sliceLevel(Modulation m, i16 v, i16 unit) {
  const int levels = 1 << axisBits(m);
  const i32 num = static_cast<i32>(v) + levels * unit;
  const i32 den = 2 * unit;
  i32 idx = num >= 0 ? num / den : -((-num + den - 1) / den);
  if (idx < 0) idx = 0;
  if (idx >= levels) idx = levels - 1;
  return static_cast<int>(idx);
}

}  // namespace

int bitsPerSymbol(Modulation m) {
  return m == Modulation::kBpsk ? 1 : 2 * axisBits(m);
}

i16 qamUnit(Modulation m) {
  // Units chosen so the average symbol magnitude is ~5200 Q15 for every
  // constellation — matching the preamble tone amplitude (6000) so TX
  // time-domain power is uniform across the packet, with enough headroom
  // for two antennas to superpose through the channel without clipping
  // the 16-bit receive path.
  switch (m) {
    case Modulation::kBpsk: return 5200;
    case Modulation::kQpsk: return 3700;
    case Modulation::kQam16: return 1650;
    case Modulation::kQam64: return 800;
  }
  return 0;
}

cint16 qamMap(Modulation m, const std::vector<u8>& bits, std::size_t offset) {
  const int n = bitsPerSymbol(m);
  ADRES_CHECK(offset + static_cast<std::size_t>(n) <= bits.size(),
              "qamMap: bit vector too short");
  u32 v = 0;
  for (int i = 0; i < n; ++i)
    v |= static_cast<u32>(bits[offset + static_cast<std::size_t>(i)] & 1) << i;
  const i16 unit = qamUnit(m);
  if (m == Modulation::kBpsk) {
    return {static_cast<i16>(bitsToLevel(m, v) * unit), 0};
  }
  const int ab = axisBits(m);
  const int li = bitsToLevel(m, v & ((1u << ab) - 1));
  const int lq = bitsToLevel(m, v >> ab);
  return {static_cast<i16>(li * unit), static_cast<i16>(lq * unit)};
}

void qamDemap(Modulation m, cint16 s, std::vector<u8>& bits,
              std::size_t offset) {
  const int n = bitsPerSymbol(m);
  ADRES_CHECK(offset + static_cast<std::size_t>(n) <= bits.size(),
              "qamDemap: bit vector too short");
  const i16 unit = qamUnit(m);
  u32 v = 0;
  if (m == Modulation::kBpsk) {
    v = s.re > 0 ? 1u : 0u;
  } else {
    const int ab = axisBits(m);
    v = levelIndexToBits(m, sliceLevel(m, s.re, unit));
    v |= levelIndexToBits(m, sliceLevel(m, s.im, unit)) << ab;
  }
  for (int i = 0; i < n; ++i)
    bits[offset + static_cast<std::size_t>(i)] = static_cast<u8>((v >> i) & 1);
}

const QamMapTable& qamMapTable(Modulation m) {
  static const std::array<QamMapTable, 4> tables = [] {
    std::array<QamMapTable, 4> all{};
    for (const Modulation mod : {Modulation::kBpsk, Modulation::kQpsk,
                                 Modulation::kQam16, Modulation::kQam64}) {
      QamMapTable& t = all[static_cast<std::size_t>(mod)];
      t.bps = bitsPerSymbol(mod);
      const i16 unit = qamUnit(mod);
      const int ab = axisBits(mod);
      for (u32 v = 0; v < (1u << t.bps); ++v) {
        if (mod == Modulation::kBpsk) {
          t.point[v] = {static_cast<i16>(bitsToLevel(mod, v) * unit), 0};
        } else {
          const int li = bitsToLevel(mod, v & ((1u << ab) - 1));
          const int lq = bitsToLevel(mod, v >> ab);
          t.point[v] = {static_cast<i16>(li * unit),
                        static_cast<i16>(lq * unit)};
        }
      }
    }
    return all;
  }();
  return tables[static_cast<std::size_t>(m)];
}

void qamMapBlock(Modulation m, const u8* bits, int count, cint16* out) {
  const QamMapTable& tbl = qamMapTable(m);
  const int bps = tbl.bps;
  for (int s = 0; s < count; ++s) {
    u32 v = 0;
    for (int i = 0; i < bps; ++i)
      v |= static_cast<u32>(bits[s * bps + i] & 1) << i;
    out[s] = tbl.point[v];
  }
}

std::vector<cint16> qamModulate(Modulation m, const std::vector<u8>& bits) {
  const int n = bitsPerSymbol(m);
  ADRES_CHECK(bits.size() % static_cast<std::size_t>(n) == 0,
              "bit count not a multiple of bits/symbol");
  std::vector<cint16> out(bits.size() / static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = qamMap(m, bits, i * static_cast<std::size_t>(n));
  return out;
}

std::vector<u8> qamDemodulate(Modulation m, const std::vector<cint16>& syms) {
  const int n = bitsPerSymbol(m);
  std::vector<u8> bits(syms.size() * static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < syms.size(); ++i)
    qamDemap(m, syms[i], bits, i * static_cast<std::size_t>(n));
  return bits;
}

}  // namespace adres::dsp
