// Gray-coded QAM modulation / hard-decision demodulation in Q15.
//
// QAM-64 is the modem's data constellation (paper Table 2: "demod QAM64");
// BPSK/QPSK/16-QAM are provided for the rate-adaptation extension benches.
// Levels are scaled so the largest constellation point keeps ~2.5 dB of
// headroom below full scale, leaving room for channel gain and the
// equalizer on the 16-bit datapath.
#pragma once

#include <array>
#include <vector>

#include "common/types.hpp"

namespace adres::dsp {

enum class Modulation : u8 { kBpsk, kQpsk, kQam16, kQam64 };

/// Bits per complex symbol (1, 2, 4, 6).
int bitsPerSymbol(Modulation m);

/// Per-axis unit spacing in Q15 for each constellation (the distance
/// between adjacent amplitude levels is 2 units).
i16 qamUnit(Modulation m);

/// Maps `bitsPerSymbol` bits (LSB-first in the vector) to one symbol.
cint16 qamMap(Modulation m, const std::vector<u8>& bits, std::size_t offset);

/// Hard-decision demap: writes `bitsPerSymbol` bits at `offset`.
void qamDemap(Modulation m, cint16 symbol, std::vector<u8>& bits,
              std::size_t offset);

/// Precomputed constellation lookup: the symbol for every LSB-first bit
/// word of one modulated symbol.  Entries are the identical integer
/// products qamMap computes, so table-driven mapping is bit-exact.
struct QamMapTable {
  std::array<cint16, 64> point{};  ///< indexed by the LSB-first bit word
  int bps = 0;                     ///< bits per symbol (table occupancy)
};

/// Cached per-modulation table (the batched modulator's inner lookup).
const QamMapTable& qamMapTable(Modulation m);

/// Batched qamMap: maps `count` consecutive symbols starting at bits[0]
/// (count * bitsPerSymbol bits consumed) into out[0..count).  Bit-identical
/// to calling qamMap per symbol.
void qamMapBlock(Modulation m, const u8* bits, int count, cint16* out);

/// Convenience: modulate a whole bit vector (size must divide evenly).
std::vector<cint16> qamModulate(Modulation m, const std::vector<u8>& bits);

/// Convenience: demodulate a whole symbol vector.
std::vector<u8> qamDemodulate(Modulation m, const std::vector<cint16>& syms);

}  // namespace adres::dsp
