// Gray-coded QAM modulation / hard-decision demodulation in Q15.
//
// QAM-64 is the modem's data constellation (paper Table 2: "demod QAM64");
// BPSK/QPSK/16-QAM are provided for the rate-adaptation extension benches.
// Levels are scaled so the largest constellation point keeps ~2.5 dB of
// headroom below full scale, leaving room for channel gain and the
// equalizer on the 16-bit datapath.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace adres::dsp {

enum class Modulation : u8 { kBpsk, kQpsk, kQam16, kQam64 };

/// Bits per complex symbol (1, 2, 4, 6).
int bitsPerSymbol(Modulation m);

/// Per-axis unit spacing in Q15 for each constellation (the distance
/// between adjacent amplitude levels is 2 units).
i16 qamUnit(Modulation m);

/// Maps `bitsPerSymbol` bits (LSB-first in the vector) to one symbol.
cint16 qamMap(Modulation m, const std::vector<u8>& bits, std::size_t offset);

/// Hard-decision demap: writes `bitsPerSymbol` bits at `offset`.
void qamDemap(Modulation m, cint16 symbol, std::vector<u8>& bits,
              std::size_t offset);

/// Convenience: modulate a whole bit vector (size must divide evenly).
std::vector<cint16> qamModulate(Modulation m, const std::vector<u8>& bits);

/// Convenience: demodulate a whole symbol vector.
std::vector<u8> qamDemodulate(Modulation m, const std::vector<cint16>& syms);

}  // namespace adres::dsp
