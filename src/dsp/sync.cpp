#include "dsp/sync.hpp"

#include "common/check.hpp"
#include "dsp/lanes.hpp"
#include "dsp/preamble.hpp"
#include "dsp/trig.hpp"

// The synchronization golden models accumulate in the same SIMD lane
// structure as the CGA kernels (two complex samples per 64-bit word,
// saturating 16-bit lanes, pre-shifted products — see dsp/lanes.hpp), so
// mapped kernels can be validated bit-exactly.

namespace adres::dsp {

bool AcorrResult::detected() const {
  const i16 m = satAdd16(satAbs16(corr.re), satAbs16(corr.im));
  const i16 floor = 64;  // noise floor gate
  const i16 e = energy > energyLag ? energy : energyLag;
  return e > floor && m >= static_cast<i16>((3 * e) >> 2);
}

AcorrResult acorrAt(const std::vector<cint16>& r, int d) {
  ADRES_CHECK(d >= 0 && d + 48 <= static_cast<int>(r.size()),
              "acorr window out of range");
  Word accP = 0, accE1 = 0, accE2 = 0;
  for (int k = 0; k < 32; k += 2) {
    const Word x = lanes::loadPair(r, d + k);
    const Word y = lanes::loadPair(r, d + k + 16);
    accP = lanes::macShifted(accP, x, lanes::conjPair(y), 2);
    accE1 = lanes::macShifted(accE1, x, lanes::conjPair(x), 2);
    accE2 = lanes::macShifted(accE2, y, lanes::conjPair(y), 2);
  }
  AcorrResult out{};
  out.corr = lanes::fold(accP);
  out.energy = lanes::fold(accE1).re;
  out.energyLag = lanes::fold(accE2).re;
  return out;
}

int packetDetect(const std::vector<cint16>& r, int hold) {
  int run = 0;
  for (int d = 0; d + 48 <= static_cast<int>(r.size()); ++d) {
    if (acorrAt(r, d).detected()) {
      if (++run >= hold) return d - hold + 1;
    } else {
      run = 0;
    }
  }
  return -1;
}

cint16 xcorrAt(const std::vector<cint16>& r, int d) {
  ADRES_CHECK(d >= 0 && d + kNfft <= static_cast<int>(r.size()),
              "xcorr window out of range");
  // Per-d accumulation in one lane pair (both lanes carry the same d when
  // called stand-alone); the 16-way kernel packs two d's per accumulator
  // with identical per-d ordering, so results agree lane by lane.
  const auto& ltf = ltfSymbolTime();
  cint16 acc{};
  for (int k = 0; k < kNfft; ++k) {
    const cint16 p = r[static_cast<std::size_t>(d + k)] *
                     ltf[static_cast<std::size_t>(k)].conj();
    // Rounded /16 downscale (D4PROD by 2048 in the kernel).
    acc.re = satAdd16(acc.re, mulQ15(p.re, 2048));
    acc.im = satAdd16(acc.im, mulQ15(p.im, 2048));
  }
  return acc;
}

int xcorrPeak(const std::vector<cint16>& r, int from, int to) {
  int best = from;
  i16 bestMag = -1;
  for (int d = from; d < to; ++d) {
    const cint16 c = xcorrAt(r, d);
    const i16 m = satAdd16(satAbs16(c.re), satAbs16(c.im));
    if (m > bestMag) {
      bestMag = m;
      best = d;
    }
  }
  return best;
}

/// Shared lag-correlation core (lane-structured like the CfoCorr kernel):
/// z = fold( sum_pairs (r[k..k+1] * conj(r[k+lag..])) >> 2 ).
static cint16 lagCorr(const std::vector<cint16>& r, int d, int n, int lag) {
  Word acc = 0;
  for (int k = 0; k < n; k += 2) {
    const Word x = lanes::loadPair(r, d + k);
    const Word y = lanes::loadPair(r, d + k + lag);
    acc = lanes::macShifted(acc, x, lanes::conjPair(y), 2);
  }
  return lanes::fold(acc);
}

i16 cfoEstimateStf(const std::vector<cint16>& r, int d, int n) {
  const cint16 z = lagCorr(r, d, n, 16);
  const i16 signedAng = static_cast<i16>(atan2Turns(z.im, z.re));
  return static_cast<i16>(signedAng / 16);
}

i16 cfoEstimateLtf(const std::vector<cint16>& r, int d) {
  const cint16 z = lagCorr(r, d, kNfft, kNfft);
  const i16 signedAng = static_cast<i16>(atan2Turns(z.im, z.re));
  return static_cast<i16>(signedAng / kNfft);
}

std::vector<cint16> fshift(const std::vector<cint16>& x, int d, int n,
                           i16 stepTurns, u16 startTurns) {
  ADRES_CHECK(d >= 0 && d + n <= static_cast<int>(x.size()),
              "fshift window out of range");
  ADRES_CHECK(n % 4 == 0, "fshift processes blocks of 4 samples");
  // Block-of-4 phasor recurrence, exactly as the fshift kernel runs it:
  // four phase lanes ph[j] advanced by w^4 per block; w^2 and w^4 built by
  // squaring (the VLIW glue's recipe).
  const cint16 w = phasorQ15(static_cast<u16>(stepTurns));
  const cint16 w2 = w * w;
  const cint16 w4 = w2 * w2;
  cint16 ph[4];
  ph[0] = phasorQ15(startTurns);
  ph[1] = ph[0] * w;
  ph[2] = ph[1] * w;
  ph[3] = ph[2] * w;
  std::vector<cint16> out(static_cast<std::size_t>(n));
  for (int k = 0; k < n; k += 4) {
    for (int j = 0; j < 4; ++j)
      out[static_cast<std::size_t>(k + j)] =
          x[static_cast<std::size_t>(d + k + j)] * ph[j];
    for (auto& p : ph) p = p * w4;
  }
  return out;
}

}  // namespace adres::dsp
