// Synchronization golden models (paper Table 2: acorr, xcorr, fshift,
// freq offset estimation / compensation).
//
// Every function is written in exactly the arithmetic the CGA kernels use
// (Q15 products, arithmetic shifts, saturating adds, phasor recurrence), so
// the mapped kernels are validated bit-exactly against these.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace adres::dsp {

/// Lag-16 autocorrelation sum over a 32-sample window starting at `d`:
///   P = sum_k (r[d+k] * conj(r[d+k+16])) >> 2    (saturating accumulate)
/// and the energies of both windows E1 = sum |r[d+k]|^2 >> 2,
/// E2 = sum |r[d+k+16]|^2 >> 2.
struct AcorrResult {
  cint16 corr;
  i16 energy;      ///< E1
  i16 energyLag;   ///< E2
  /// Detection metric: |P.re|+|P.im| >= (3/4) * max(E1,E2), above a floor.
  /// Comparing against the larger window energy rejects the packet edge
  /// where only the lagged window holds signal.
  bool detected() const;
};
AcorrResult acorrAt(const std::vector<cint16>& r, int d);

/// Scans for packet start: first d where acorrAt detects for `hold`
/// consecutive positions.  Returns -1 if none.
int packetDetect(const std::vector<cint16>& r, int hold = 4);

/// Cross-correlation against the 64-sample LTF reference:
///   c(d) = sum_k (r[d+k] * conj(L[k])) >> 4    (saturating accumulate)
cint16 xcorrAt(const std::vector<cint16>& r, int d);

/// Fine timing: argmax of |xcorr| (L1 magnitude) over [from, to).
int xcorrPeak(const std::vector<cint16>& r, int from, int to);

/// Coarse CFO from the STF: correlates lag-16 pairs over `n` samples
/// starting at `d`; returns the per-sample phase step in Q16 turns that
/// *compensates* the offset (i.e. -measured/16).
i16 cfoEstimateStf(const std::vector<cint16>& r, int d, int n = 64);

/// Fine CFO from the two LTF periods (lag 64), same convention (-angle/64).
i16 cfoEstimateLtf(const std::vector<cint16>& r, int d);

/// Frequency shift (fshift kernel): y[k] = x[d+k] * ph, ph *= w, where
/// w = phasor(stepTurns).  The phasor recurrence is what the kernel runs.
std::vector<cint16> fshift(const std::vector<cint16>& x, int d, int n,
                           i16 stepTurns, u16 startTurns = 0);

}  // namespace adres::dsp
