#include "dsp/trig.hpp"
#include "dsp/trig_tables.hpp"

#include <array>
#include <cmath>
#include <vector>

namespace adres::dsp {
namespace {

// Quarter-wave table, 256 entries + endpoint, Q15.
constexpr int kQuarterBits = 8;
constexpr int kQuarterSize = 1 << kQuarterBits;

const std::array<u16, 258>& atan258() {
  static const auto table = [] {
    std::array<u16, 258> t{};
    for (int i = 0; i <= 257; ++i) {
      const double v = std::atan(i / 256.0) / (2.0 * 3.14159265358979323846);
      t[static_cast<std::size_t>(i)] = static_cast<u16>(std::lround(v * 65536.0));
    }
    return t;
  }();
  return table;
}

const std::array<i16, kQuarterSize + 1>& quarterTable() {
  static const auto table = [] {
    std::array<i16, kQuarterSize + 1> t{};
    for (int i = 0; i <= kQuarterSize; ++i) {
      const double a = (3.14159265358979323846 / 2.0) * i / kQuarterSize;
      const double v = std::sin(a) * 32767.0;
      t[static_cast<std::size_t>(i)] = static_cast<i16>(std::lround(v));
    }
    return t;
  }();
  return table;
}

}  // namespace

i16 sinQ15(u16 turns) {
  // Linear interpolation between quarter-wave table entries: without it,
  // small angles snap to the 64-unit table grid, which wrecks the phasor
  // recurrence used for CFO compensation.
  const u16 quadrant = turns >> 14;          // 0..3
  const u16 frac = turns & 0x3FFF;           // position within the quadrant
  const int idx = frac >> (14 - kQuarterBits);
  const int sub = frac & ((1 << (14 - kQuarterBits)) - 1);
  const auto& t = quarterTable();
  const auto interp = [&](int i0, int i1) -> i16 {
    const i32 a = t[static_cast<std::size_t>(i0)];
    const i32 b = t[static_cast<std::size_t>(i1)];
    return static_cast<i16>(a + (((b - a) * sub) >> (14 - kQuarterBits)));
  };
  switch (quadrant) {
    case 0: return interp(idx, idx + 1);
    case 1: return interp(kQuarterSize - idx, kQuarterSize - idx - 1);
    case 2: return static_cast<i16>(-interp(idx, idx + 1));
    default: return static_cast<i16>(-interp(kQuarterSize - idx, kQuarterSize - idx - 1));
  }
}

i16 cosQ15(u16 turns) { return sinQ15(static_cast<u16>(turns + 0x4000)); }

cint16 phasorQ15(u16 turns) { return {cosQ15(turns), sinQ15(turns)}; }

u16 atan2Turns(i32 im, i32 re) {
  if (re == 0 && im == 0) return 0;
  // Octant reduction (conjugate, mirror, swap), then a ratio-indexed
  // arctan table.
  const bool negIm = im < 0;
  if (negIm) im = -im;  // conjugate: angle in [0, 0.5] turns
  const bool negRe = re < 0;
  if (negRe) re = -re;  // angle in [0, 0.25]
  const bool swap = im > re;
  if (swap) {
    const i32 t = im;
    im = re;
    re = t;
  }  // ratio im/re in [0,1]
  // arctan(r) for r in [0,1]: 257-entry table in Q16 turns, linearly
  // interpolated on a 12-bit ratio.  The ratio uses the machine's 24-bit
  // divider after normalizing both operands to 11 bits — the exact recipe
  // the VLIW atan2 glue code runs.
  const auto& atanTable = atan258();
  while (re >= (1 << 11) || im >= (1 << 11)) {
    re >>= 1;
    im >>= 1;
  }
  const i32 ratio12 = re == 0 ? 4096 : static_cast<i32>((im << 12) / re);
  const i32 clamped = ratio12 > 4096 ? 4096 : ratio12;
  const i32 idx = clamped >> 4;
  const i32 frac = clamped & 15;
  const u16 t0 = atanTable[static_cast<std::size_t>(idx)];
  const u16 t1 = atanTable[static_cast<std::size_t>(idx + 1)];
  u32 a = t0 + static_cast<u32>(((static_cast<i32>(t1) - t0) * frac) >> 4);
  if (swap) a = 16384 - a;           // reflect around 1/8 turn
  if (negRe) a = 32768 - a;          // reflect around 1/4 turn
  if (negIm) a = 65536 - a;          // lower half plane
  return static_cast<u16>(a);
}


std::vector<i16> sinQuarterTableDump() {
  const auto& t = quarterTable();
  return {t.begin(), t.end()};
}

std::vector<u16> atanTableDump() {
  const auto& t = atan258();
  return {t.begin(), t.end()};
}

}  // namespace adres::dsp
