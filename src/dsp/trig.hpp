// Fixed-point trigonometry for the baseband library.
//
// All angles are expressed as Q16 turns: a full circle is 65536 units, so
// phase accumulation wraps for free in u16 arithmetic — exactly how the
// kernel implementations generate rotation phasors on the 16-bit datapath.
#pragma once

#include "common/types.hpp"

namespace adres::dsp {

/// Q15 cosine of a Q16-turn angle (one full turn = 65536).
i16 cosQ15(u16 turns);

/// Q15 sine of a Q16-turn angle.
i16 sinQ15(u16 turns);

/// Unit phasor e^{+j*2*pi*turns/65536} as a cint16.
cint16 phasorQ15(u16 turns);

/// Q16-turn angle of (re, im) via a coarse-fine atan2 (CORDIC-style table);
/// accurate to ~1/4096 of a turn — the precision the CFO estimator needs.
u16 atan2Turns(i32 im, i32 re);

}  // namespace adres::dsp
