// Table dumps for the processor-mapped kernels: the VLIW glue and CGA
// kernels read the same quarter-wave sine and arctan tables from L1 that
// the golden models use, guaranteeing bit-exact trigonometry.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace adres::dsp {

/// Quarter-wave sine table: 257 Q15 entries (index i = sin(pi/2 * i/256)).
std::vector<i16> sinQuarterTableDump();

/// Arctan table: 258 Q16-turn entries (index i = atan(i/256) in turns).
std::vector<u16> atanTableDump();

}  // namespace adres::dsp
