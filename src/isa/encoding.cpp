#include "isa/encoding.hpp"

#include "common/bitfield.hpp"
#include "common/check.hpp"

namespace adres {
namespace {

constexpr int kSlotBits = 37;

/// Ops whose immediate field is an unsigned control word rather than a
/// signed operand (keeps encode/decode a strict round trip).
bool immIsUnsigned(Opcode op) {
  return op == Opcode::C4SHUF || op == Opcode::MOVIH;
}

void encodeSlot(BitWriter& w, const Instr& in) {
  w.put(static_cast<u64>(in.op), 8);
  w.put(in.guard, 4);
  // Stores have no destination: the dst field carries the store-data
  // register so the immediate-offset form keeps src3.
  w.put(isStore(in.op) ? in.src3 : in.dst, 6);
  w.put(in.src1, 6);
  w.put(in.useImm ? 1 : 0, 1);
  if (in.useImm) {
    w.put(static_cast<u64>(static_cast<u32>(in.imm) & 0xFFFu), 12);
  } else {
    w.put(in.src2, 6);
    w.put(in.src3, 6);
  }
}

Instr decodeSlot(BitReader& r) {
  Instr in;
  const u64 opRaw = r.get(8);
  ADRES_CHECK(opRaw < static_cast<u64>(kOpcodeCount), "bad opcode field");
  in.op = static_cast<Opcode>(opRaw);
  in.guard = static_cast<u8>(r.get(4));
  const u8 dstField = static_cast<u8>(r.get(6));
  if (isStore(in.op)) {
    in.src3 = dstField;
  } else {
    in.dst = dstField;
  }
  in.src1 = static_cast<u8>(r.get(6));
  in.useImm = r.get(1) != 0;
  if (in.useImm) {
    const u32 raw = static_cast<u32>(r.get(12));
    if (immIsUnsigned(in.op)) {
      in.imm = static_cast<i32>(raw);
    } else {
      in.imm = (static_cast<i32>(raw << 20)) >> 20;  // sign-extend 12 bits
    }
  } else {
    in.src2 = static_cast<u8>(r.get(6));
    in.src3 = static_cast<u8>(r.get(6));
  }
  return in;
}

}  // namespace

std::vector<u8> encodeBundle(const Bundle& b) {
  BitWriter w;
  for (const auto& s : b.slot) encodeSlot(w, s);
  ADRES_CHECK(w.bitCount() == 3 * kSlotBits, "slot width drifted");
  w.alignTo(kBundleBytes * 8);
  return w.bytes();
}

Bundle decodeBundle(const std::vector<u8>& bytes) {
  ADRES_CHECK(bytes.size() == kBundleBytes,
              "bundle must be " << kBundleBytes << " bytes, got "
                                << bytes.size());
  BitReader r(bytes);
  Bundle b;
  for (auto& s : b.slot) s = decodeSlot(r);
  return b;
}

std::vector<u8> encodeProgram(const std::vector<Bundle>& bundles) {
  std::vector<u8> image;
  image.reserve(bundles.size() * kBundleBytes);
  for (const auto& b : bundles) {
    const auto bytes = encodeBundle(b);
    image.insert(image.end(), bytes.begin(), bytes.end());
  }
  return image;
}

std::vector<Bundle> decodeProgram(const std::vector<u8>& image) {
  ADRES_CHECK(image.size() % kBundleBytes == 0,
              "program image not bundle aligned: " << image.size());
  std::vector<Bundle> out;
  out.reserve(image.size() / kBundleBytes);
  for (std::size_t off = 0; off < image.size(); off += kBundleBytes) {
    std::vector<u8> line(image.begin() + static_cast<std::ptrdiff_t>(off),
                         image.begin() + static_cast<std::ptrdiff_t>(off) +
                             kBundleBytes);
    out.push_back(decodeBundle(line));
  }
  return out;
}

}  // namespace adres
