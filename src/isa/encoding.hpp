// Binary encoding of VLIW bundles into 128-bit instruction words.
//
// Three 37-bit slots + 17 spare bits per line (see instruction.hpp for the
// field map).  The encoder is what makes the I$ model meaningful: bundle
// addresses advance by 16 bytes, exactly one line per fetch, as in the
// paper's 128-bit-wide instruction memory interface.
#pragma once

#include <vector>

#include "isa/instruction.hpp"

namespace adres {

/// Encodes a bundle into exactly 16 bytes.
std::vector<u8> encodeBundle(const Bundle& b);

/// Decodes 16 bytes back into a bundle.  Inverse of encodeBundle.
Bundle decodeBundle(const std::vector<u8>& bytes);

/// Encodes a full program image (bundle i at byte offset 16*i).
std::vector<u8> encodeProgram(const std::vector<Bundle>& bundles);

/// Decodes a program image.
std::vector<Bundle> decodeProgram(const std::vector<u8>& image);

}  // namespace adres
