#include "isa/instruction.hpp"

#include <sstream>

#include "common/check.hpp"

namespace adres {

std::string toString(const Instr& in) {
  const OpInfo& info = opInfo(in.op);
  std::ostringstream os;
  if (in.guard != 0) os << "(p" << int{in.guard} << ") ";
  os << info.name;
  if (in.op == Opcode::NOP || in.op == Opcode::HALT) return os.str();
  os << ' ';
  if (isStore(in.op)) {
    os << "[r" << int{in.src1};
    if (in.useImm)
      os << "+#" << in.imm;
    else
      os << "+r" << int{in.src2};
    os << "], r" << int{in.src3};
  } else if (isLoad(in.op)) {
    os << (isPredDef(in.op) ? "p" : "r") << int{in.dst} << ", [r"
       << int{in.src1};
    if (in.useImm)
      os << "+#" << in.imm;
    else
      os << "+r" << int{in.src2};
    os << ']';
  } else if (isBranch(in.op)) {
    if (in.useImm)
      os << '#' << in.imm;
    else
      os << 'r' << int{in.src2};
  } else if (in.op == Opcode::CGA) {
    os << "kernel#" << in.imm << ", trips=r" << int{in.src1};
  } else {
    os << (isPredDef(in.op) ? "p" : "r") << int{in.dst} << ", r"
       << int{in.src1} << ", ";
    if (in.useImm)
      os << '#' << in.imm;
    else
      os << 'r' << int{in.src2};
  }
  return os.str();
}

std::string toString(const Bundle& b) {
  std::ostringstream os;
  os << "{ ";
  for (int i = 0; i < kVliwSlots; ++i) {
    if (i) os << " | ";
    os << toString(b.slot[i]);
  }
  os << " }";
  return os.str();
}

void validate(const Instr& in, int fuIndex) {
  const OpInfo& info = opInfo(in.op);
  ADRES_CHECK(fuIndex >= 0 && fuIndex < kCgaFus, "FU index " << fuIndex);
  ADRES_CHECK((info.fuMask >> fuIndex) & 1,
              info.name << " not implemented on FU" << fuIndex);
  ADRES_CHECK(in.guard <= kMaxGuard, "guard p" << int{in.guard});
  ADRES_CHECK(in.dst < kCdrfRegs && in.src1 < kCdrfRegs &&
                  in.src2 < kCdrfRegs && in.src3 < kCdrfRegs,
              "register index out of range in " << info.name);
  const bool unsignedImm =
      in.op == Opcode::C4SHUF || in.op == Opcode::MOVIH;
  if (in.op == Opcode::MOVI || in.op == Opcode::MOVIH ||
      in.op == Opcode::C4SHUF) {
    ADRES_CHECK(in.useImm, opInfo(in.op).name << " requires useImm");
  }
  if (in.useImm) {
    if (unsignedImm) {
      ADRES_CHECK(in.imm >= 0 && in.imm < (1 << kImmBits),
                  "unsigned immediate " << in.imm << " not encodable");
    } else {
      ADRES_CHECK(in.imm >= -(1 << (kImmBits - 1)) &&
                      in.imm < (1 << (kImmBits - 1)),
                  "immediate " << in.imm << " not encodable in " << kImmBits
                               << " bits");
    }
  }
}

}  // namespace adres
