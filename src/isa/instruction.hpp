// Register-file-operand instruction form, as executed by the VLIW pipeline
// and carried in the 128-bit instruction bundles.
//
// Encoded slot layout (37 bits, three slots + 17 spare bits = one 128-bit
// I$ line / instruction-memory word):
//   [7:0]   opcode
//   [11:8]  guard (0 = unguarded, 1..15 = CPRF index)
//   [17:12] dst
//   [23:18] src1
//   [24]    useImm
//   [36:25] src2/src3 packed (reg form: src2[5:0], src3[11:6])
//           or signed 12-bit immediate (imm form; stores keep src3 in dst)
#pragma once

#include <string>

#include "common/types.hpp"
#include "isa/opcodes.hpp"

namespace adres {

inline constexpr int kVliwSlots = 3;     ///< VLIW issue width (paper §2.B).
inline constexpr int kCgaFus = 16;       ///< CGA functional units.
inline constexpr int kCdrfRegs = 64;     ///< Central data RF entries (64x64).
inline constexpr int kCprfRegs = 64;     ///< Central predicate RF entries.
inline constexpr int kLinkReg = 9;       ///< R9 is the link register (Table 1).
inline constexpr int kImmBits = 12;      ///< Encoded immediate width.
inline constexpr int kMaxGuard = 15;     ///< Guards come from CPRF[1..15].

/// One operation slot.  `dst` indexes CDRF for data-writing ops and CPRF for
/// predicate-defining ops.  When `useImm`, `imm` replaces the src2 operand.
struct Instr {
  Opcode op = Opcode::NOP;
  u8 guard = 0;  ///< 0 = always execute; else squashed when !CPRF[guard].
  u8 dst = 0;
  u8 src1 = 0;
  u8 src2 = 0;
  u8 src3 = 0;   ///< store-data register.
  bool useImm = false;
  i32 imm = 0;

  bool isNop() const { return op == Opcode::NOP; }
};

/// A 128-bit instruction word: one operation per VLIW slot.
struct Bundle {
  Instr slot[kVliwSlots];

  bool isAllNop() const {
    for (const auto& s : slot)
      if (!s.isNop()) return false;
    return true;
  }
};

inline constexpr int kBundleBytes = 16;  ///< 128-bit instruction lines.

/// Human-readable disassembly of one instruction.
std::string toString(const Instr& in);

/// Human-readable disassembly of a bundle.
std::string toString(const Bundle& b);

/// Validates static well-formedness: register indices in range, immediate
/// encodable, opcode legal on the given FU/slot.  Throws SimError otherwise.
void validate(const Instr& in, int fuIndex);

}  // namespace adres
