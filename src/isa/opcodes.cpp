#include "isa/opcodes.hpp"

#include <array>

#include "common/check.hpp"

namespace adres {
namespace {

constexpr std::array<OpInfo, kOpcodeCount> kOpTable = {{
#define ADRES_INFO(name, group, lat, mask) \
  OpInfo{#name, OpGroup::group, lat, mask},
    ADRES_OPCODE_LIST(ADRES_INFO)
#undef ADRES_INFO
}};

}  // namespace

const OpInfo& opInfo(Opcode op) {
  const auto idx = static_cast<std::size_t>(op);
  ADRES_CHECK(idx < kOpTable.size(), "bad opcode " << idx);
  return kOpTable[idx];
}

std::string_view groupName(OpGroup g) {
  switch (g) {
    case OpGroup::kArith: return "Arith";
    case OpGroup::kLogic: return "Logic";
    case OpGroup::kShift: return "Shift";
    case OpGroup::kComp: return "Comp";
    case OpGroup::kPred: return "Pred";
    case OpGroup::kMul: return "Mul";
    case OpGroup::kBranch: return "Branch";
    case OpGroup::kLdmem: return "Ldmem";
    case OpGroup::kStmem: return "Stmem";
    case OpGroup::kControl: return "Control";
    case OpGroup::kSimd1: return "SIMD1";
    case OpGroup::kSimd2: return "SIMD2";
    case OpGroup::kDiv: return "Div";
  }
  return "?";
}

bool isLoad(Opcode op) { return opInfo(op).group == OpGroup::kLdmem; }
bool isStore(Opcode op) { return opInfo(op).group == OpGroup::kStmem; }
bool isMem(Opcode op) { return isLoad(op) || isStore(op); }
bool isBranch(Opcode op) { return opInfo(op).group == OpGroup::kBranch; }
bool isPredDef(Opcode op) { return opInfo(op).group == OpGroup::kPred; }
bool isControl(Opcode op) { return opInfo(op).group == OpGroup::kControl; }

bool isSimd(Opcode op) {
  const OpGroup g = opInfo(op).group;
  return g == OpGroup::kSimd1 || g == OpGroup::kSimd2;
}

bool writesDataReg(Opcode op) {
  switch (opInfo(op).group) {
    case OpGroup::kStmem:
    case OpGroup::kBranch:
    case OpGroup::kControl:
    case OpGroup::kPred:
      return op == Opcode::JMPL || op == Opcode::BRL;  // link into R9
    default:
      return true;
  }
}

bool isPipelined(Opcode op) { return opInfo(op).group != OpGroup::kDiv; }

int ops16PerInstr(Opcode op) { return isSimd(op) ? 4 : 1; }

}  // namespace adres
