// Instruction-set taxonomy of the hybrid CGA-SIMD processor (paper Table 1).
//
// Groups, FU coverage, operating widths and latencies follow Table 1 of the
// paper.  The paper lists only *some* instructions of each group; where the
// MIMO-OFDM kernels need members the table elides (lane shuffles, pairwise
// add/sub for complex arithmetic, high-half load/store for 64-bit registers),
// we add them to the same groups with the group's latency and document them
// here.  See DESIGN.md §3.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/types.hpp"

namespace adres {

/// Instruction groups of Table 1.
enum class OpGroup : u8 {
  kArith,    ///< 32-bit add/sub/moves, 1 cycle, all FUs.
  kLogic,    ///< 32-bit bitwise, 1 cycle, all FUs.
  kShift,    ///< 32-bit shifts, 1 cycle, all FUs.
  kComp,     ///< 32-bit compares to data reg, 1 cycle, all FUs.
  kPred,     ///< compares/constants to predicate reg, 1 cycle, all FUs.
  kMul,      ///< 32-bit multiply, 2 cycles, all FUs.
  kBranch,   ///< control flow, FU0 only (VLIW slot 0), 2-3 cycles.
  kLdmem,    ///< loads, 5 cycles (7 under bank conflict), FUs 0-3.
  kStmem,    ///< stores, 1 cycle, FUs 0-3.
  kControl,  ///< cga / halt / nop.
  kSimd1,    ///< 4x16 SIMD, 1 cycle, 64-bit, all FUs.
  kSimd2,    ///< 4x16 SIMD multiplies, 3 cycles, 64-bit, all FUs.
  kDiv,      ///< 24-bit divide, 8 cycles, FUs 0-1 (the 2 hardwired dividers).
};

// X-macro: name, group, latency[cycles], fuMask (bit i = FU i may execute).
// FU masks: all 16 FUs = 0xFFFF; memory FUs 0-3 = 0x000F (4 L1 crossbar
// channels; +AHB port = the paper's 5-channel crossbar); branch = FU0;
// dividers = FUs 0-1.
#define ADRES_OPCODE_LIST(X)                          \
  /* Arith */                                         \
  X(ADD, kArith, 1, 0xFFFF)                           \
  X(ADD_U, kArith, 1, 0xFFFF)                         \
  X(SUB, kArith, 1, 0xFFFF)                           \
  X(SUB_U, kArith, 1, 0xFFFF)                         \
  X(MOV, kArith, 1, 0xFFFF)   /* dst = src1 (64-bit copy; routing op) */ \
  X(MOVI, kArith, 1, 0xFFFF)  /* dst = sext(imm12) */ \
  X(MOVIH, kArith, 1, 0xFFFF) /* dst = src1 | (imm12 << 12) */ \
  /* Logic */                                         \
  X(OR, kLogic, 1, 0xFFFF)                            \
  X(NOR, kLogic, 1, 0xFFFF)                           \
  X(AND, kLogic, 1, 0xFFFF)                           \
  X(NAND, kLogic, 1, 0xFFFF)                          \
  X(XOR, kLogic, 1, 0xFFFF)                           \
  X(XNOR, kLogic, 1, 0xFFFF)                          \
  /* Shift */                                         \
  X(LSL, kShift, 1, 0xFFFF)                           \
  X(LSR, kShift, 1, 0xFFFF)                           \
  X(ASR, kShift, 1, 0xFFFF)                           \
  /* Comp (result to data register, 0/1) */           \
  X(EQ, kComp, 1, 0xFFFF)                             \
  X(NE, kComp, 1, 0xFFFF)                             \
  X(GT, kComp, 1, 0xFFFF)                             \
  X(GT_U, kComp, 1, 0xFFFF)                           \
  X(LT, kComp, 1, 0xFFFF)                             \
  X(LT_U, kComp, 1, 0xFFFF)                           \
  X(GE, kComp, 1, 0xFFFF)                             \
  X(GE_U, kComp, 1, 0xFFFF)                           \
  X(LE, kComp, 1, 0xFFFF)                             \
  X(LE_U, kComp, 1, 0xFFFF)                           \
  /* Pred (result to predicate register) */           \
  X(PRED_CLEAR, kPred, 1, 0xFFFF)                     \
  X(PRED_SET, kPred, 1, 0xFFFF)                       \
  X(PRED_EQ, kPred, 1, 0xFFFF)                        \
  X(PRED_NE, kPred, 1, 0xFFFF)                        \
  X(PRED_LT, kPred, 1, 0xFFFF)                        \
  X(PRED_LT_U, kPred, 1, 0xFFFF)                      \
  X(PRED_LE, kPred, 1, 0xFFFF)                        \
  X(PRED_LE_U, kPred, 1, 0xFFFF)                      \
  X(PRED_GT, kPred, 1, 0xFFFF)                        \
  X(PRED_GT_U, kPred, 1, 0xFFFF)                      \
  X(PRED_GE, kPred, 1, 0xFFFF)                        \
  X(PRED_GE_U, kPred, 1, 0xFFFF)                      \
  /* Mul */                                           \
  X(MUL, kMul, 2, 0xFFFF)                             \
  X(MUL_U, kMul, 2, 0xFFFF)                           \
  /* Branch (VLIW slot 0 only) */                     \
  X(JMP, kBranch, 2, 0x0001)                          \
  X(JMPL, kBranch, 2, 0x0001)                         \
  X(BR, kBranch, 3, 0x0001)                           \
  X(BRL, kBranch, 3, 0x0001)                          \
  /* Ldmem (latency 5, 7 under bank conflict) */      \
  X(LD_UC, kLdmem, 5, 0x000F)  /* zext8  */           \
  X(LD_C, kLdmem, 5, 0x000F)   /* sext8  */           \
  X(LD_UC2, kLdmem, 5, 0x000F) /* zext16 */           \
  X(LD_C2, kLdmem, 5, 0x000F)  /* sext16 */           \
  X(LD_I, kLdmem, 5, 0x000F)   /* 32-bit into low half, high cleared */ \
  X(LD_IH, kLdmem, 5, 0x000F)  /* 32-bit into high half, low kept (2nd half \
                                  of a 64-bit load; paper §2.B) */       \
  /* Stmem */                                         \
  X(ST_C, kStmem, 1, 0x000F)                          \
  X(ST_C2, kStmem, 1, 0x000F)                         \
  X(ST_I, kStmem, 1, 0x000F)   /* stores low 32 bits of src3 */          \
  X(ST_IH, kStmem, 1, 0x000F)  /* stores high 32 bits of src3 */         \
  /* Control */                                       \
  X(CGA, kControl, 1, 0x0001)  /* enter CGA mode: imm = kernel id */     \
  X(HALT, kControl, 1, 0x0001) /* drop to sleep, wait for resume */      \
  X(NOP, kControl, 1, 0xFFFF)                         \
  /* SIMD1: 4x16 lanes, saturating */                 \
  X(C4ADD, kSimd1, 1, 0xFFFF)                         \
  X(C4SUB, kSimd1, 1, 0xFFFF)                         \
  X(C4SHIFTL, kSimd1, 1, 0xFFFF)                      \
  X(C4SHIFTR, kSimd1, 1, 0xFFFF) /* arithmetic per-lane shift right */   \
  X(C4PADD, kSimd1, 1, 0xFFFF) /* pairwise: |l0+l1|l0+l1|l2+l3|l2+l3| */ \
  X(C4PSUB, kSimd1, 1, 0xFFFF) /* pairwise: |l0-l1|l0-l1|l2-l3|l2-l3| */ \
  X(C4MIX, kSimd1, 1, 0xFFFF)  /* |a0|b1|a2|b3| lane interleave */       \
  X(C4HILO, kSimd1, 1, 0xFFFF) /* |a0|a1|b2|b3| half merge */            \
  X(C4SHUF, kSimd1, 1, 0xFFFF) /* lane shuffle: dst lane i =             \
                                  src1[imm>>(2i) & 3], imm[7:0] */       \
  X(C4MAX, kSimd1, 1, 0xFFFF)                         \
  X(C4MIN, kSimd1, 1, 0xFFFF)                         \
  X(C4ABS, kSimd1, 1, 0xFFFF)                         \
  X(C4NEG, kSimd1, 1, 0xFFFF)                         \
  /* SIMD2: Q15 lane multiplies */                    \
  X(D4PROD, kSimd2, 3, 0xFFFF) /* |a0*b0|a1*b1|a2*b2|a3*b3| */           \
  X(C4PROD, kSimd2, 3, 0xFFFF) /* |a0*b1|a1*b0|a2*b3|a3*b2| */           \
  /* Div: 24-bit, the two hardwired dividers */       \
  X(DIV, kDiv, 8, 0x0003)                             \
  X(DIV_U, kDiv, 8, 0x0003)

/// Every opcode of the machine.
enum class Opcode : u8 {
#define ADRES_ENUM(name, group, lat, mask) name,
  ADRES_OPCODE_LIST(ADRES_ENUM)
#undef ADRES_ENUM
};

inline constexpr int kOpcodeCount = 0
#define ADRES_COUNT(name, group, lat, mask) +1
    ADRES_OPCODE_LIST(ADRES_COUNT)
#undef ADRES_COUNT
    ;

/// Static per-opcode metadata (the machine-readable Table 1).
struct OpInfo {
  std::string_view name;
  OpGroup group;
  int latency;  ///< result latency in cycles (load latency = L1 hit, no conflict)
  u16 fuMask;   ///< bit i set = FU i implements this op
};

/// Metadata lookup; total function over Opcode.
const OpInfo& opInfo(Opcode op);

/// Group name for reporting ("Arith", "SIMD1", ...).
std::string_view groupName(OpGroup g);

// Classification helpers -----------------------------------------------------

bool isLoad(Opcode op);
bool isStore(Opcode op);
bool isMem(Opcode op);
bool isBranch(Opcode op);
bool isPredDef(Opcode op);   ///< writes a predicate register
bool isControl(Opcode op);
bool isSimd(Opcode op);
bool writesDataReg(Opcode op);
/// True if the op is pipelined (a new op can issue on the FU every cycle).
/// Only the iterative divider is non-pipelined.
bool isPipelined(Opcode op);

/// Peak 16-bit operations per instruction for GOPS accounting: SIMD ops
/// count 4, everything else 1 (divide counts 1).
int ops16PerInstr(Opcode op);

}  // namespace adres
