#include "isa/semantics.hpp"

#include "common/check.hpp"

namespace adres {

Word evalOp(Opcode op, Word a, Word b, i32 imm) {
  return evalOpInline(op, a, b, imm);
}

int memAccessBytes(Opcode op) {
  switch (op) {
    case Opcode::LD_UC:
    case Opcode::LD_C:
    case Opcode::ST_C:
      return 1;
    case Opcode::LD_UC2:
    case Opcode::LD_C2:
    case Opcode::ST_C2:
      return 2;
    case Opcode::LD_I:
    case Opcode::LD_IH:
    case Opcode::ST_I:
    case Opcode::ST_IH:
      return 4;
    default:
      throw SimError("memAccessBytes: not a memory op");
  }
}

int memImmScale(Opcode op) {
  switch (memAccessBytes(op)) {
    case 1: return 0;
    case 2: return 1;
    default: return 2;
  }
}

Word applyLoadResult(Opcode op, Word oldDst, u32 raw) {
  switch (op) {
    case Opcode::LD_UC:
      return fromScalar(raw & 0xFFu);
    case Opcode::LD_C:
      return fromScalar(static_cast<u32>((static_cast<i32>(raw << 24)) >> 24));
    case Opcode::LD_UC2:
      return fromScalar(raw & 0xFFFFu);
    case Opcode::LD_C2:
      return fromScalar(static_cast<u32>((static_cast<i32>(raw << 16)) >> 16));
    case Opcode::LD_I:
      return fromScalar(raw);  // high half cleared (32-bit physical storage)
    case Opcode::LD_IH:
      // Second half of a 64-bit load: fill the high 32 bits, keep the low.
      return (oldDst & 0xFFFFFFFFull) | (static_cast<u64>(raw) << 32);
    default:
      throw SimError("applyLoadResult: not a load op");
  }
}

u32 storeData(Opcode op, Word src3) {
  switch (op) {
    case Opcode::ST_C: return lo32u(src3) & 0xFFu;
    case Opcode::ST_C2: return lo32u(src3) & 0xFFFFu;
    case Opcode::ST_I: return lo32u(src3);
    case Opcode::ST_IH: return static_cast<u32>(src3 >> 32);
    default:
      throw SimError("storeData: not a store op");
  }
}

}  // namespace adres
