// Pure functional semantics of every compute opcode (Table 1).
//
// The pipeline models (VLIW and CGA) call evalOp for everything except
// loads/stores (memory system), branches (control unit) and control ops.
// Keeping semantics pure and centralized guarantees both execution modes
// compute identically, and lets tests check each op against closed form.
#pragma once

#include "common/types.hpp"
#include "isa/opcodes.hpp"

namespace adres {

/// Evaluates a compute op.  `a`,`b` are the (already immediate-substituted)
/// source operands; `imm` is the raw immediate for control-field ops
/// (C4PACK lane selectors, MOVI/MOVIH).  Comp-group ops return 0/1 in the
/// low 32 bits; Pred-group ops return 0/1 (the caller routes it to CPRF).
/// Requires: op is not a load, store, branch, or control op.
Word evalOp(Opcode op, Word a, Word b, i32 imm);

/// Returns the number of bytes moved by a memory op (1, 2 or 4).
int memAccessBytes(Opcode op);

/// Effective-address immediate scaling per Table 1: byte ops unscaled,
/// halfword ops imm<<1, word ops imm<<2.
int memImmScale(Opcode op);

/// Applies a load result to the previous destination value (handles the
/// zero/sign extension and the low/high-half merge of LD_IH).
Word applyLoadResult(Opcode op, Word oldDst, u32 memWord);

/// Extracts the 32-bit value a store writes from the src3 register.
u32 storeData(Opcode op, Word src3);

}  // namespace adres
