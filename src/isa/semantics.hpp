// Pure functional semantics of every compute opcode (Table 1).
//
// The pipeline models (VLIW and CGA) call evalOp for everything except
// loads/stores (memory system), branches (control unit) and control ops.
// Keeping semantics pure and centralized guarantees both execution modes
// compute identically, and lets tests check each op against closed form.
//
// The switch body lives here as evalOpInline so the native execution tier
// can instantiate it with a compile-time opcode (template<Opcode Op>
// steady-loop bodies constant-fold the whole switch down to one case);
// evalOp in semantics.cpp stays the single out-of-line entry point for the
// interpreted and reference tiers.
#pragma once

#include "common/check.hpp"
#include "common/types.hpp"
#include "isa/opcodes.hpp"

namespace adres {

namespace detail {

inline Word compareResult(bool v) { return v ? 1u : 0u; }

inline Word evalSimd1Inline(Opcode op, Word a, Word b, i32 imm) {
  const auto la = unpackLanes(a);
  const auto lb = unpackLanes(b);
  switch (op) {
    case Opcode::C4ADD: {
      return packLanes(satAdd16(la[0], lb[0]), satAdd16(la[1], lb[1]),
                       satAdd16(la[2], lb[2]), satAdd16(la[3], lb[3]));
    }
    case Opcode::C4SUB: {
      return packLanes(satSub16(la[0], lb[0]), satSub16(la[1], lb[1]),
                       satSub16(la[2], lb[2]), satSub16(la[3], lb[3]));
    }
    case Opcode::C4SHIFTL: {
      const int sh = static_cast<int>(lo32u(b) & 15u);
      Word r = 0;
      for (int i = 0; i < kLanes; ++i)
        r = withLane(r, i, static_cast<i16>(static_cast<u16>(laneU(a, i) << sh)));
      return r;
    }
    case Opcode::C4SHIFTR: {
      const int sh = static_cast<int>(lo32u(b) & 15u);
      Word r = 0;
      for (int i = 0; i < kLanes; ++i)
        r = withLane(r, i, static_cast<i16>(la[i] >> sh));
      return r;
    }
    case Opcode::C4PADD: {
      const i16 s01 = satAdd16(la[0], la[1]);
      const i16 s23 = satAdd16(la[2], la[3]);
      return packLanes(s01, s01, s23, s23);
    }
    case Opcode::C4PSUB: {
      const i16 d01 = satSub16(la[0], la[1]);
      const i16 d23 = satSub16(la[2], la[3]);
      return packLanes(d01, d01, d23, d23);
    }
    case Opcode::C4MIX:
      return packLanes(la[0], lb[1], la[2], lb[3]);
    case Opcode::C4HILO:
      return packLanes(la[0], la[1], lb[2], lb[3]);
    case Opcode::C4SHUF: {
      const u32 ctl = static_cast<u32>(imm) & 0xFFu;
      Word r = 0;
      for (int i = 0; i < kLanes; ++i) {
        const int sel = static_cast<int>((ctl >> (2 * i)) & 3u);
        r = withLane(r, i, la[sel]);
      }
      return r;
    }
    case Opcode::C4MAX: {
      Word r = 0;
      for (int i = 0; i < kLanes; ++i)
        r = withLane(r, i, la[i] > lb[i] ? la[i] : lb[i]);
      return r;
    }
    case Opcode::C4MIN: {
      Word r = 0;
      for (int i = 0; i < kLanes; ++i)
        r = withLane(r, i, la[i] < lb[i] ? la[i] : lb[i]);
      return r;
    }
    case Opcode::C4ABS: {
      return packLanes(satAbs16(la[0]), satAbs16(la[1]), satAbs16(la[2]),
                       satAbs16(la[3]));
    }
    case Opcode::C4NEG: {
      return packLanes(satNeg16(la[0]), satNeg16(la[1]), satNeg16(la[2]),
                       satNeg16(la[3]));
    }
    default:
      throw SimError("evalSimd1: not a SIMD1 op");
  }
}

}  // namespace detail

/// The evalOp switch body.  Call through evalOp unless `op` is a
/// compile-time constant (the native tier's specialized loop bodies).
inline Word evalOpInline(Opcode op, Word a, Word b, i32 imm) {
  const i32 sa = lo32(a);
  const i32 sb = lo32(b);
  const u32 ua = lo32u(a);
  const u32 ub = lo32u(b);
  using detail::compareResult;
  switch (op) {
    // Arith -- 32-bit wrap-around; _u variants differ only in the C-level
    // type they implement, not in the bit pattern produced.
    case Opcode::ADD:
    case Opcode::ADD_U:
      return fromScalar(static_cast<u32>(ua + ub));
    case Opcode::SUB:
    case Opcode::SUB_U:
      return fromScalar(static_cast<u32>(ua - ub));
    case Opcode::MOV:
      return a;  // full 64-bit copy: the CGA routing op.
    case Opcode::MOVI:
      return fromScalar(imm);  // sign-extended 12-bit immediate.
    case Opcode::MOVIH:
      return fromScalar((ua & 0xFFFu) |
                        ((static_cast<u32>(imm) & 0xFFFu) << 12));
    // Logic.
    case Opcode::OR: return fromScalar(ua | ub);
    case Opcode::NOR: return fromScalar(~(ua | ub));
    case Opcode::AND: return fromScalar(ua & ub);
    case Opcode::NAND: return fromScalar(~(ua & ub));
    case Opcode::XOR: return fromScalar(ua ^ ub);
    case Opcode::XNOR: return fromScalar(~(ua ^ ub));
    // Shift (amount mod 32).
    case Opcode::LSL: return fromScalar(ua << (ub & 31u));
    case Opcode::LSR: return fromScalar(ua >> (ub & 31u));
    case Opcode::ASR: return fromScalar(static_cast<u32>(sa >> (ub & 31u)));
    // Comp: 0/1 into a data register.
    case Opcode::EQ: return compareResult(ua == ub);
    case Opcode::NE: return compareResult(ua != ub);
    case Opcode::GT: return compareResult(sa > sb);
    case Opcode::GT_U: return compareResult(ua > ub);
    case Opcode::LT: return compareResult(sa < sb);
    case Opcode::LT_U: return compareResult(ua < ub);
    case Opcode::GE: return compareResult(sa >= sb);
    case Opcode::GE_U: return compareResult(ua >= ub);
    case Opcode::LE: return compareResult(sa <= sb);
    case Opcode::LE_U: return compareResult(ua <= ub);
    // Pred: 0/1 routed to CPRF by the caller.
    case Opcode::PRED_CLEAR: return 0;
    case Opcode::PRED_SET: return 1;
    case Opcode::PRED_EQ: return compareResult(ua == ub);
    case Opcode::PRED_NE: return compareResult(ua != ub);
    case Opcode::PRED_LT: return compareResult(sa < sb);
    case Opcode::PRED_LT_U: return compareResult(ua < ub);
    case Opcode::PRED_LE: return compareResult(sa <= sb);
    case Opcode::PRED_LE_U: return compareResult(ua <= ub);
    case Opcode::PRED_GT: return compareResult(sa > sb);
    case Opcode::PRED_GT_U: return compareResult(ua > ub);
    case Opcode::PRED_GE: return compareResult(sa >= sb);
    case Opcode::PRED_GE_U: return compareResult(ua >= ub);
    // Mul: low 32 bits of the product.
    case Opcode::MUL:
    case Opcode::MUL_U:
      return fromScalar(static_cast<u32>(ua * ub));
    // SIMD1.
    case Opcode::C4ADD:
    case Opcode::C4SUB:
    case Opcode::C4SHIFTL:
    case Opcode::C4SHIFTR:
    case Opcode::C4PADD:
    case Opcode::C4PSUB:
    case Opcode::C4MIX:
    case Opcode::C4HILO:
    case Opcode::C4SHUF:
    case Opcode::C4MAX:
    case Opcode::C4MIN:
    case Opcode::C4ABS:
    case Opcode::C4NEG:
      return detail::evalSimd1Inline(op, a, b, imm);
    // SIMD2: Q15 rounded-saturated lane products.
    case Opcode::D4PROD: {
      const auto la = unpackLanes(a);
      const auto lb = unpackLanes(b);
      return packLanes(mulQ15(la[0], lb[0]), mulQ15(la[1], lb[1]),
                       mulQ15(la[2], lb[2]), mulQ15(la[3], lb[3]));
    }
    case Opcode::C4PROD: {
      // Cross-paired products for complex arithmetic (Table 1):
      // |a0*b1|a1*b0|a2*b3|a3*b2|.
      const auto la = unpackLanes(a);
      const auto lb = unpackLanes(b);
      return packLanes(mulQ15(la[0], lb[1]), mulQ15(la[1], lb[0]),
                       mulQ15(la[2], lb[3]), mulQ15(la[3], lb[2]));
    }
    // Div: 24-bit operands (paper: dividers operate on the 24 LSB).
    // Division by zero yields 0 (documented model choice; real hardware
    // raises the exception signal, which the core model also asserts).
    case Opcode::DIV: {
      const i32 da = (sa << 8) >> 8;  // sign-extend from bit 23
      const i32 db = (sb << 8) >> 8;
      if (db == 0) return 0;
      if (da == -(1 << 23) && db == -1) return fromScalar(i32{1 << 23} - 1);
      return fromScalar((da / db) & 0x00FFFFFF);
    }
    case Opcode::DIV_U: {
      const u32 da = ua & 0x00FFFFFFu;
      const u32 db = ub & 0x00FFFFFFu;
      if (db == 0) return 0;
      return fromScalar(da / db);
    }
    case Opcode::NOP:
      return 0;
    default:
      throw SimError(std::string("evalOp: opcode ") +
                     std::string(opInfo(op).name) +
                     " must be handled by the pipeline, not evalOp");
  }
}

/// Evaluates a compute op.  `a`,`b` are the (already immediate-substituted)
/// source operands; `imm` is the raw immediate for control-field ops
/// (C4PACK lane selectors, MOVI/MOVIH).  Comp-group ops return 0/1 in the
/// low 32 bits; Pred-group ops return 0/1 (the caller routes it to CPRF).
/// Requires: op is not a load, store, branch, or control op.
Word evalOp(Opcode op, Word a, Word b, i32 imm);

/// Returns the number of bytes moved by a memory op (1, 2 or 4).
int memAccessBytes(Opcode op);

/// Effective-address immediate scaling per Table 1: byte ops unscaled,
/// halfword ops imm<<1, word ops imm<<2.
int memImmScale(Opcode op);

/// Applies a load result to the previous destination value (handles the
/// zero/sign extension and the low/high-half merge of LD_IH).
Word applyLoadResult(Opcode op, Word oldDst, u32 memWord);

/// Extracts the 32-bit value a store writes from the src3 register.
u32 storeData(Opcode op, Word src3);

}  // namespace adres
