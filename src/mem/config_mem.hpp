// CGA configuration memories (paper §2.B).
//
// "The execution of the CGA is controlled by a small size ultra wide
// configuration memory ... one context per scheduled loop cycle", loaded
// through DMA and mapped on the AMBA bus.  This model stores the raw
// configuration image as bytes; the cga module owns the context encoding.
// Capacity and the per-fetch energy event are what the power model needs.
#pragma once

#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace adres {

inline constexpr u32 kConfigMemBytes = 64 * 1024;

struct ConfigMemStats {
  u64 contextFetches = 0;  ///< one per CGA cycle (the ultra-wide word read)
  u64 dmaBytes = 0;        ///< bytes loaded over the bus/DMA
};

class ConfigMemory {
 public:
  ConfigMemory() : mem_(kConfigMemBytes, 0) {}

  void write8(u32 addr, u8 v) {
    ADRES_CHECK(addr < kConfigMemBytes, "config mem write out of range");
    mem_[addr] = v;
  }

  u8 read8(u32 addr) const {
    ADRES_CHECK(addr < kConfigMemBytes, "config mem read out of range");
    return mem_[addr];
  }

  void write32(u32 addr, u32 v) {
    for (int i = 0; i < 4; ++i) write8(addr + static_cast<u32>(i), static_cast<u8>(v >> (8 * i)));
  }

  u32 read32(u32 addr) const {
    u32 v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<u32>(read8(addr + static_cast<u32>(i))) << (8 * i);
    return v;
  }

  /// DMA/bus image load.
  void loadBytes(u32 addr, const std::vector<u8>& bytes) {
    ADRES_CHECK(static_cast<u64>(addr) + bytes.size() <= kConfigMemBytes,
                "config image overruns memory");
    for (std::size_t i = 0; i < bytes.size(); ++i) mem_[addr + i] = bytes[i];
    stats_.dmaBytes += bytes.size();
  }

  std::vector<u8> readBytes(u32 addr, u32 n) const {
    ADRES_CHECK(static_cast<u64>(addr) + n <= kConfigMemBytes,
                "config read overruns memory");
    return {mem_.begin() + addr, mem_.begin() + addr + n};
  }

  /// Books one ultra-wide context fetch (called by the CGA sequencer each
  /// array cycle; drives the configuration-memory share of Fig 6b).
  void noteContextFetch() { ++stats_.contextFetches; }
  /// Batched form for the array fast path (one fetch per logical cycle).
  void noteContextFetches(u64 n) { stats_.contextFetches += n; }

  const ConfigMemStats& stats() const { return stats_; }
  void resetStats() { stats_ = {}; }

 private:
  std::vector<u8> mem_;
  ConfigMemStats stats_;
};

}  // namespace adres
