// DMA engine used to load CGA configuration images and to move sample
// buffers between the platform and the L1 scratchpad (paper §1: CGA
// configurations "are configured through direct memory access").
//
// Transfers run at one 32-bit word per bus cycle (bus clock = core/2), with
// a fixed setup cost; the engine reports the core-cycle cost so callers can
// account it (Table 2's kernel cycles exclude configuration DMA, which the
// paper performs at program load — the bench does the same but reports it).
#pragma once

#include <vector>

#include "bus/ahb.hpp"
#include "common/check.hpp"
#include "common/types.hpp"
#include "mem/config_mem.hpp"
#include "mem/scratchpad.hpp"
#include "trace/trace.hpp"

namespace adres {

struct DmaStats {
  u64 transfers = 0;
  u64 wordsMoved = 0;
  u64 coreCycles = 0;
};

class DmaEngine {
 public:
  static constexpr int kSetupCoreCycles = 12;
  static constexpr int kCoreCyclesPerWord = 2;  // one bus cycle per word

  DmaEngine(Scratchpad& l1, ConfigMemory& cfg) : l1_(l1), cfg_(cfg) {}

  /// Host/external memory -> L1.
  u64 toL1(u32 l1Addr, const std::vector<u8>& bytes) {
    return toL1(l1Addr, bytes.data(), bytes.size());
  }

  /// Raw-buffer variant (identical booking): the packet hot path DMAs
  /// waveforms straight out of the submitter's sample buffers, with no
  /// per-packet staging vector.
  u64 toL1(u32 l1Addr, const u8* data, std::size_t n) {
    ADRES_CHECK(n % 4 == 0, "DMA moves whole words");
    l1_.loadBytes(l1Addr, data, n);
    return book(n / 4, DmaDirection::kHostToL1);
  }

  /// L1 -> host/external memory.
  u64 fromL1(u32 l1Addr, u32 nBytes, std::vector<u8>& out) {
    ADRES_CHECK(nBytes % 4 == 0, "DMA moves whole words");
    out.resize(nBytes);
    for (u32 i = 0; i < nBytes; i += 4) {
      const u32 w = l1_.read32(l1Addr + i);
      for (int b = 0; b < 4; ++b) out[i + static_cast<u32>(b)] = static_cast<u8>(w >> (8 * b));
    }
    return book(nBytes / 4, DmaDirection::kL1ToHost);
  }

  /// Host/external memory -> configuration memory.
  u64 toConfig(u32 cfgAddr, const std::vector<u8>& bytes) {
    ADRES_CHECK(bytes.size() % 4 == 0, "DMA moves whole words");
    cfg_.loadBytes(cfgAddr, bytes);
    return book(bytes.size() / 4, DmaDirection::kHostToConfig);
  }

  const DmaStats& stats() const { return stats_; }
  void resetStats() { stats_ = {}; }
  void setTrace(TraceSink* t) { trace_ = t; }

 private:
  u64 book(std::size_t words, DmaDirection dir) {
    const u64 cost =
        kSetupCoreCycles + kCoreCyclesPerWord * static_cast<u64>(words);
    // DMA runs on the bus clock with no core-cycle alignment; transfers are
    // traced back to back on the engine's own cumulative timeline.
    if (trace_)
      trace_->event({stats_.coreCycles, cost, TraceEventKind::kDmaTransfer, 0,
                     static_cast<u32>(words), static_cast<u32>(dir)});
    ++stats_.transfers;
    stats_.wordsMoved += words;
    stats_.coreCycles += cost;
    return cost;
  }

  Scratchpad& l1_;
  ConfigMemory& cfg_;
  DmaStats stats_;
  TraceSink* trace_ = nullptr;
};

}  // namespace adres
