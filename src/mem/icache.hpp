// Direct-mapped instruction cache, 32 KiB, 128-bit (one-bundle) lines,
// backed by the external instruction-memory interface (paper §2.A).
//
// After reset the cache is cold; the first fetches produce the series of
// misses the paper describes.  The miss penalty models the dedicated
// 128-bit-wide instruction memory port.
#pragma once

#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "trace/trace.hpp"

namespace adres {

inline constexpr u32 kICacheBytes = 32 * 1024;
inline constexpr u32 kICacheLineBytes = 16;  // one 128-bit bundle per line
inline constexpr u32 kICacheLines = kICacheBytes / kICacheLineBytes;  // 2048
inline constexpr int kICacheMissPenalty = 20;  // cycles to external I-mem

struct ICacheStats {
  u64 accesses = 0;
  u64 misses = 0;
};

/// Timing-only model: tags are tracked, data lives in the decoded program
/// image held by the core (the cache never alters instruction bytes).
class ICache {
 public:
  ICache() { reset(); }

  void reset() {
    tags_.assign(kICacheLines, kInvalidTag);
    stats_ = {};
  }

  /// Clears the hit/miss counters without invalidating the tags (used
  /// between measured phases — the cache stays warm).
  void resetStats() { stats_ = {}; }

  /// Fetches the line holding byte address `addr`; returns the stall penalty
  /// in cycles (0 on hit).  `cycle` timestamps the miss event when tracing.
  int fetch(u32 addr, u64 cycle = 0) {
    const u32 line = (addr / kICacheLineBytes) % kICacheLines;
    const u32 tag = addr / kICacheBytes;
    ++stats_.accesses;
    if (tags_[line] == tag) return 0;
    tags_[line] = tag;
    ++stats_.misses;
    if (trace_)
      trace_->event({cycle, kICacheMissPenalty, TraceEventKind::kICacheMiss,
                     0, addr, 0});
    return kICacheMissPenalty;
  }

  const ICacheStats& stats() const { return stats_; }
  void setTrace(TraceSink* t) { trace_ = t; }

 private:
  static constexpr u32 kInvalidTag = 0xFFFFFFFFu;
  std::vector<u32> tags_;
  ICacheStats stats_;
  TraceSink* trace_ = nullptr;
};

}  // namespace adres
