// L1 data scratchpad: 4 banks x 16K x 32-bit, one port per bank,
// word-interleaved, with transparent bank-contention queuing (paper §2.A).
//
// Functional state and timing are separated: read/write methods give
// immediate functional access (used by the pipeline once a request is
// granted, by the AHB slave port, and by tests); the BankArbiter hands out
// grant cycles that model the 1-access-per-bank-per-cycle ports and the
// queuing penalty (+2 cycles per queued slot, producing the paper's 5/7
// load-latency split).
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "trace/trace.hpp"

namespace adres {

inline constexpr int kL1Banks = 4;
inline constexpr u32 kL1WordsPerBank = 16 * 1024;
inline constexpr u32 kL1Bytes = kL1Banks * kL1WordsPerBank * 4;  // 256 KiB

/// Per-access statistics of the scratchpad.
struct ScratchpadStats {
  u64 reads = 0;
  u64 writes = 0;
  u64 conflicts = 0;      ///< granted later than requested
  u64 conflictCycles = 0; ///< total queue wait (in core cycles)
};

/// Functional + timing model of the 4-bank L1.
class Scratchpad {
 public:
  Scratchpad() : mem_(kL1Bytes, 0) {}

  static int bankOf(u32 addr) { return static_cast<int>((addr >> 2) & 3u); }

  // -- Functional access (byte-addressed, little-endian) --------------------

  u32 read32(u32 addr) {
    checkAddr(addr, 4);
    u32 v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<u32>(mem_[addr + static_cast<u32>(i)]) << (8 * i);
    ++stats_.reads;
    return v;
  }

  void write32(u32 addr, u32 v) {
    checkAddr(addr, 4);
    for (int i = 0; i < 4; ++i) mem_[addr + static_cast<u32>(i)] = static_cast<u8>(v >> (8 * i));
    ++stats_.writes;
  }

  u32 read16(u32 addr) {
    checkAddr(addr, 2);
    ++stats_.reads;
    return static_cast<u32>(mem_[addr]) | (static_cast<u32>(mem_[addr + 1]) << 8);
  }

  void write16(u32 addr, u32 v) {
    checkAddr(addr, 2);
    mem_[addr] = static_cast<u8>(v);
    mem_[addr + 1] = static_cast<u8>(v >> 8);
    ++stats_.writes;
  }

  u32 read8(u32 addr) {
    checkAddr(addr, 1);
    ++stats_.reads;
    return mem_[addr];
  }

  void write8(u32 addr, u32 v) {
    checkAddr(addr, 1);
    mem_[addr] = static_cast<u8>(v);
    ++stats_.writes;
  }

  // Raw functional access for the native execution tier: same address
  // checks (ill-formed programs still fail loudly), no per-access stats —
  // the tier adds `loads * trips` / `stores * trips` in one shot per launch.

  u32 peek32(u32 addr) const {
    checkAddr(addr, 4);
    u32 v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<u32>(mem_[addr + static_cast<u32>(i)]) << (8 * i);
    return v;
  }

  void poke32(u32 addr, u32 v) {
    checkAddr(addr, 4);
    for (int i = 0; i < 4; ++i) mem_[addr + static_cast<u32>(i)] = static_cast<u8>(v >> (8 * i));
  }

  u32 peek16(u32 addr) const {
    checkAddr(addr, 2);
    return static_cast<u32>(mem_[addr]) | (static_cast<u32>(mem_[addr + 1]) << 8);
  }

  void poke16(u32 addr, u32 v) {
    checkAddr(addr, 2);
    mem_[addr] = static_cast<u8>(v);
    mem_[addr + 1] = static_cast<u8>(v >> 8);
  }

  u32 peek8(u32 addr) const {
    checkAddr(addr, 1);
    return mem_[addr];
  }

  void poke8(u32 addr, u32 v) {
    checkAddr(addr, 1);
    mem_[addr] = static_cast<u8>(v);
  }

  /// Bulk initialization used by program loaders and the DMA engine.
  void loadBytes(u32 addr, const std::vector<u8>& bytes) {
    loadBytes(addr, bytes.data(), bytes.size());
  }

  /// Raw-buffer variant: lets the DMA engine move payloads straight from a
  /// caller-owned buffer with no staging copy.
  void loadBytes(u32 addr, const u8* data, std::size_t n) {
    ADRES_CHECK(static_cast<u64>(addr) + n <= kL1Bytes,
                "L1 load overruns: addr=" << addr << " n=" << n);
    for (std::size_t i = 0; i < n; ++i) mem_[addr + i] = data[i];
  }

  const ScratchpadStats& stats() const { return stats_; }
  void resetStats() { stats_ = {}; }

  // -- Timing ---------------------------------------------------------------

  /// Bank-port arbiter.  Each bank grants one access per cycle; a request to
  /// a busy bank is queued and granted later.  The extra latency seen by the
  /// requester is 2 cycles per queue slot (handshake through the contention
  /// queue), yielding the paper's 7-cycle conflicted load.
  class BankArbiter {
   public:
    /// Returns the extra latency (0, 2, 4, ...) for a request issued at
    /// `cycle` to the bank containing `addr`, and books the port slot.
    int request(u64 cycle, u32 addr, ScratchpadStats& stats) {
      const int b = bankOf(addr);
      u64 grant = cycle;
      if (nextFree_[b] > grant) grant = nextFree_[b];
      nextFree_[b] = grant + 1;
      const int wait = static_cast<int>(grant - cycle);
      if (wait > 0) {
        ++stats.conflicts;
        stats.conflictCycles += static_cast<u64>(wait);
      }
      return 2 * wait;
    }

    void reset() { nextFree_.fill(0); }

   private:
    std::array<u64, kL1Banks> nextFree_ = {};
  };

  BankArbiter& arbiter() { return arbiter_; }
  ScratchpadStats& mutableStats() { return stats_; }

  /// Books a bank-port slot for a pipeline access at `cycle`, tracing the
  /// queue wait as an L1 bank-conflict event.  Returns the extra latency.
  int requestPort(u64 cycle, u32 addr) {
    const int extra = arbiter_.request(cycle, addr, stats_);
    if (extra > 0 && trace_)
      trace_->event({cycle, static_cast<u64>(extra),
                     TraceEventKind::kL1Conflict,
                     static_cast<u8>(bankOf(addr)), addr,
                     static_cast<u32>(extra)});
    return extra;
  }

  void setTrace(TraceSink* t) { trace_ = t; }

 private:
  static void checkAddr(u32 addr, u32 n) {
    ADRES_CHECK(static_cast<u64>(addr) + n <= kL1Bytes,
                "L1 access out of range: addr=" << addr);
    ADRES_CHECK(addr % n == 0, "unaligned L1 access: addr=" << addr
                                                            << " size=" << n);
  }

  std::vector<u8> mem_;
  ScratchpadStats stats_;
  BankArbiter arbiter_;
  TraceSink* trace_ = nullptr;
};

}  // namespace adres
