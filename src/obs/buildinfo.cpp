#include "obs/buildinfo.hpp"

#ifndef ADRES_VERSION
#define ADRES_VERSION "0.0.0"
#endif
#ifndef ADRES_GIT_DESCRIBE
#define ADRES_GIT_DESCRIBE "unknown"
#endif
#ifndef ADRES_BUILD_TYPE
#define ADRES_BUILD_TYPE ""
#endif
#ifndef ADRES_SANITIZE_FLAGS
#define ADRES_SANITIZE_FLAGS ""
#endif

namespace adres::obs {
namespace {

std::string compilerId() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__);
#else
  return "unknown";
#endif
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
  return out;
}

}  // namespace

const BuildInfo& buildInfo() {
  static const BuildInfo info{ADRES_VERSION, ADRES_GIT_DESCRIBE,
                              ADRES_BUILD_TYPE, ADRES_SANITIZE_FLAGS,
                              compilerId()};
  return info;
}

void writeBuildInfoJson(std::ostream& os) {
  const BuildInfo& b = buildInfo();
  os << "{\n  \"schema\": \"adres.buildinfo.v1\",\n"
     << "  \"version\": \"" << jsonEscape(b.version) << "\",\n"
     << "  \"git_describe\": \"" << jsonEscape(b.gitDescribe) << "\",\n"
     << "  \"build_type\": \"" << jsonEscape(b.buildType) << "\",\n"
     << "  \"sanitize\": \"" << jsonEscape(b.sanitize) << "\",\n"
     << "  \"compiler\": \"" << jsonEscape(b.compiler) << "\"\n}\n";
}

}  // namespace adres::obs
