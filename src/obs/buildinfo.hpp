// Build identity for the /buildinfo endpoint and bench provenance.
//
// Version, git describe, build type and sanitizer flags are baked into
// buildinfo.cpp at configure time (COMPILE_DEFINITIONS on that one source
// file, so only it rebuilds when the git head moves).
#pragma once

#include <ostream>
#include <string>

namespace adres::obs {

struct BuildInfo {
  std::string version;      ///< project version (CMake)
  std::string gitDescribe;  ///< `git describe --always --dirty` at configure
  std::string buildType;    ///< CMAKE_BUILD_TYPE
  std::string sanitize;     ///< sanitizer flags, "" for none
  std::string compiler;     ///< compiler id + version
};

const BuildInfo& buildInfo();

/// Versioned JSON: {"schema":"adres.buildinfo.v1", ...}.
void writeBuildInfoJson(std::ostream& os);

}  // namespace adres::obs
