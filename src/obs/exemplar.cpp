#include "obs/exemplar.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>

#include "trace/export.hpp"

namespace adres::obs {
namespace {

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", std::isfinite(v) ? v : 0.0);
  return buf;
}

void writeExemplarFile(std::ostream& os, const trace::PacketSpans& spans,
                       const std::vector<TraceEvent>& ringEvents,
                       u64 ringAccepted, u64 ringDropped,
                       std::size_t ringCapacity, double latencyUs,
                       double queueWaitUs, u64 simCycles) {
  os << "{\n  \"schema\": \"adres.exemplar.v1\",\n"
     << "  \"trace_id\": \"" << trace::traceIdHex(spans.traceId) << "\",\n"
     << "  \"job_id\": " << spans.jobId << ",\n"
     << "  \"worker\": " << spans.worker << ",\n"
     << "  \"tag\": " << spans.tag << ",\n"
     << "  \"latency_us\": " << fmt(latencyUs) << ",\n"
     << "  \"queue_wait_us\": " << fmt(queueWaitUs) << ",\n"
     << "  \"sim_cycles\": " << simCycles << ",\n  \"spans\": [";
  trace::writeSpanJsonEntries(spans.spans, os, 4);
  os << "\n  ],\n  \"ring\": {\n    \"capacity\": " << ringCapacity
     << ",\n    \"accepted\": " << ringAccepted
     << ",\n    \"dropped\": " << ringDropped << ",\n    \"events\": [";
  trace::writeTraceEventJsonEntries(ringEvents, os, 6);
  os << "\n    ]\n  }\n}\n";
}

}  // namespace

ExemplarStore::ExemplarStore(ExemplarConfig cfg) : cfg_(std::move(cfg)) {
  std::error_code ec;
  std::filesystem::create_directories(cfg_.dir, ec);
}

double ExemplarStore::thresholdUs(const HistogramSnapshot& latencyNs) const {
  if (latencyNs.count < cfg_.minCount)
    return std::numeric_limits<double>::infinity();
  return latencyNs.quantile(cfg_.quantile) * 1e-3;
}

bool ExemplarStore::maybeCapture(const trace::PacketSpans& spans,
                                 const std::vector<TraceEvent>& ringEvents,
                                 u64 ringAccepted, u64 ringDropped,
                                 std::size_t ringCapacity, double latencyUs,
                                 double queueWaitUs, u64 simCycles,
                                 const HistogramSnapshot& latencyNs) {
  if (latencyUs < thresholdUs(latencyNs)) return false;

  std::string path, tmp;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (records_.size() >= cfg_.maxExemplars) {
      // Full: only a packet slower than the fastest retained one qualifies.
      if (latencyUs <= records_.back().latencyUs) return false;
      std::error_code ec;
      std::filesystem::remove(records_.back().path, ec);
      records_.pop_back();
      ++evicted_;
    }
    path = cfg_.dir + "/exemplar_" + trace::traceIdHex(spans.traceId) + "_" +
           std::to_string(fileSeq_) + ".json";
    tmp = path + ".tmp";
    ++fileSeq_;

    ExemplarRecord rec;
    rec.traceId = spans.traceId;
    rec.jobId = spans.jobId;
    rec.worker = spans.worker;
    rec.latencyUs = latencyUs;
    rec.queueWaitUs = queueWaitUs;
    rec.simCycles = simCycles;
    rec.path = path;
    records_.push_back(rec);
    std::sort(records_.begin(), records_.end(),
              [](const ExemplarRecord& a, const ExemplarRecord& b) {
                return a.latencyUs > b.latencyUs;
              });
    ++captured_;
  }

  {
    std::ofstream os(tmp, std::ios::trunc);
    writeExemplarFile(os, spans, ringEvents, ringAccepted, ringDropped,
                      ringCapacity, latencyUs, queueWaitUs, simCycles);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::filesystem::remove(tmp, ec);
  return true;
}

std::vector<ExemplarRecord> ExemplarStore::records() const {
  std::lock_guard<std::mutex> lk(mu_);
  return records_;
}

u64 ExemplarStore::captured() const {
  std::lock_guard<std::mutex> lk(mu_);
  return captured_;
}

u64 ExemplarStore::evicted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return evicted_;
}

}  // namespace adres::obs
