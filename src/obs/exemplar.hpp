// Tail-latency exemplar capture (DESIGN.md §13).
//
// When a packet's decode latency exceeds a configurable quantile of the
// farm's latency histogram, its flight-recorder ring buffer and span tree
// are persisted to a bounded exemplar store (one `adres.exemplar.v1` JSON
// file per packet, written atomically: tmp file + rename).  The store keeps
// the `maxExemplars` slowest packets, evicting the fastest-of-the-slow; its
// records double as the Prometheus exemplars attached to the latency
// histogram buckets on /metrics (trace id + latency).
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/histogram.hpp"
#include "trace/span.hpp"
#include "trace/trace.hpp"

namespace adres::obs {

struct ExemplarConfig {
  bool enabled = false;
  std::string dir = "exemplars";  ///< store directory (created on demand)
  double quantile = 0.99;         ///< capture packets above this quantile
  std::size_t maxExemplars = 8;   ///< bound on retained exemplar files
  u64 minCount = 32;              ///< histogram samples before capture arms
  std::size_t ringCapacity = 4096;  ///< per-worker flight-recorder depth
};

/// One captured exemplar (the in-memory index of a persisted file).
struct ExemplarRecord {
  u64 traceId = 0;
  u64 jobId = 0;
  int worker = -1;
  double latencyUs = 0;
  double queueWaitUs = 0;
  u64 simCycles = 0;
  std::string path;  ///< persisted adres.exemplar.v1 file
};

/// Bounded, thread-safe store of the slowest packets seen by a farm run.
class ExemplarStore {
 public:
  explicit ExemplarStore(ExemplarConfig cfg);

  /// Latency threshold (µs) above which a packet qualifies, derived from the
  /// configured quantile of `latencyNs`; +inf until `minCount` samples.
  double thresholdUs(const HistogramSnapshot& latencyNs) const;

  /// Captures the packet if it qualifies (above threshold and either the
  /// store has room or it is slower than the current fastest exemplar).
  /// Writes the exemplar file atomically; returns true if captured.
  bool maybeCapture(const trace::PacketSpans& spans,
                    const std::vector<TraceEvent>& ringEvents,
                    u64 ringAccepted, u64 ringDropped,
                    std::size_t ringCapacity, double latencyUs,
                    double queueWaitUs, u64 simCycles,
                    const HistogramSnapshot& latencyNs);

  /// Current records, slowest first.
  std::vector<ExemplarRecord> records() const;

  u64 captured() const;  ///< total captures (including later-evicted ones)
  u64 evicted() const;

  const ExemplarConfig& config() const { return cfg_; }

 private:
  ExemplarConfig cfg_;
  mutable std::mutex mu_;
  std::vector<ExemplarRecord> records_;  ///< kept sorted, slowest first
  u64 captured_ = 0;
  u64 evicted_ = 0;
  u64 fileSeq_ = 0;
};

}  // namespace adres::obs
