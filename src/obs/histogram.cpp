#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>

#include "common/check.hpp"

namespace adres::obs {

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (buckets.size() < other.buckets.size()) buckets.resize(other.buckets.size());
  for (std::size_t i = 0; i < other.buckets.size(); ++i)
    buckets[i] += other.buckets[i];
  min = count == 0 ? other.min : std::min(min, other.min);
  max = count == 0 ? other.max : std::max(max, other.max);
  count += other.count;
  sum += other.sum;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const u64 rank =
      static_cast<u64>(q * (static_cast<double>(count) - 1.0));  // 0-based
  // The extreme ranks are known exactly — match the sorted-sample answer.
  if (rank == 0) return static_cast<double>(min);
  if (rank >= count - 1) return static_cast<double>(max);
  u64 cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cum += buckets[i];
    if (cum > rank) {
      const u64 lo = LogLinearHistogram::bucketLo(i);
      const u64 hi = LogLinearHistogram::bucketHi(i);
      const double mid =
          static_cast<double>(lo) + (static_cast<double>(hi - lo) - 1.0) / 2.0;
      return std::clamp(mid, static_cast<double>(min), static_cast<double>(max));
    }
  }
  return static_cast<double>(max);
}

u64 HistogramSnapshot::countAbove(u64 v) const {
  const std::size_t first = LogLinearHistogram::bucketIndex(v) + 1;
  u64 n = 0;
  for (std::size_t i = first; i < buckets.size(); ++i) n += buckets[i];
  return n;
}

std::size_t LogLinearHistogram::bucketIndex(u64 v) {
  if (v < kSubBuckets) return static_cast<std::size_t>(v);
  const int e = 63 - std::countl_zero(v);
  const int shift = e - kSubBits;
  const u64 sub = (v >> shift) - kSubBuckets;
  return static_cast<std::size_t>(e - kSubBits + 1) * kSubBuckets +
         static_cast<std::size_t>(sub);
}

u64 LogLinearHistogram::bucketLo(std::size_t index) {
  if (index < kSubBuckets) return index;
  const std::size_t block = index >> kSubBits;
  const u64 sub = index & (kSubBuckets - 1);
  const int shift = static_cast<int>(block) - 1;
  return (static_cast<u64>(kSubBuckets) + sub) << shift;
}

u64 LogLinearHistogram::bucketHi(std::size_t index) {
  if (index < kSubBuckets) return index + 1;
  const std::size_t block = index >> kSubBits;
  const int shift = static_cast<int>(block) - 1;
  const u64 lo = bucketLo(index);
  const u64 width = u64{1} << shift;
  return lo + width < lo ? ~0ull : lo + width;  // saturate the top bucket
}

LogLinearHistogram::LogLinearHistogram() : buckets_(kNumBuckets) {}

void LogLinearHistogram::record(u64 v) {
  buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  u64 seen = min_.load(std::memory_order_relaxed);
  while (v < seen &&
         !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LogLinearHistogram::snapshot() const {
  HistogramSnapshot s;
  s.buckets.resize(kNumBuckets);
  u64 n = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    n += s.buckets[i];
  }
  s.count = n;  // derived from the buckets so the snapshot is self-consistent
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  const u64 mn = min_.load(std::memory_order_relaxed);
  s.min = n == 0 ? 0 : mn;
  return s;
}

void LogLinearHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

}  // namespace adres::obs
