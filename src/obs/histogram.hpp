// Log-linear ("HDR"-style) histograms for latency and cycle distributions.
//
// Fixed bucket layout over the full u64 range: values below 2^kSubBits get
// one bucket each; every higher power-of-two decade is subdivided into
// 2^kSubBits linear buckets, bounding the relative bucket width at
// 2^-kSubBits (6.25% with the default 4 sub-bits).  Recording is lock-free
// (relaxed atomic adds) and wait-free for the common single-writer-per-
// histogram case (one histogram per farm worker); snapshot() may run on any
// thread concurrently with recording and yields a mergeable, immutable
// `HistogramSnapshot` from which p50/p90/p99/p999 are derived without ever
// storing individual samples — this replaces the sort-every-sample
// percentile code the benches used to carry.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace adres::obs {

/// Immutable point-in-time view of a histogram; mergeable across workers.
struct HistogramSnapshot {
  u64 count = 0;  ///< sum of bucket counts (self-consistent with buckets)
  u64 sum = 0;    ///< sum of recorded values
  u64 min = 0;    ///< smallest recorded value (0 when count == 0)
  u64 max = 0;    ///< largest recorded value
  std::vector<u64> buckets;  ///< dense per-bucket counts (may be empty)

  /// Accumulates another snapshot (bucket-wise add, min/max fold).
  void merge(const HistogramSnapshot& other);

  double mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }

  /// Quantile estimate (q in [0,1]): the midpoint of the bucket holding the
  /// rank-floor(q*(count-1)) sample — within one bucket width of the exact
  /// sorted-sample percentile, clamped to the recorded min/max.
  double quantile(double q) const;

  /// Samples recorded above `v`: the count in every bucket strictly after
  /// the one holding `v`.  Bucketized, so samples sharing v's bucket are
  /// counted as <= v — the estimate errs low by at most one bucket's worth
  /// (<= 6.25% relative bucket width).  The SLO deadline-miss source.
  u64 countAbove(u64 v) const;
};

class LogLinearHistogram {
 public:
  static constexpr int kSubBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBits;
  static constexpr std::size_t kNumBuckets =
      static_cast<std::size_t>((64 - kSubBits) * kSubBuckets) + kSubBuckets;

  /// Bucket index for a value (total order preserved across buckets).
  static std::size_t bucketIndex(u64 v);
  /// Inclusive lower bound of a bucket.
  static u64 bucketLo(std::size_t index);
  /// Exclusive upper bound of a bucket.
  static u64 bucketHi(std::size_t index);

  LogLinearHistogram();
  LogLinearHistogram(const LogLinearHistogram&) = delete;
  LogLinearHistogram& operator=(const LogLinearHistogram&) = delete;

  /// Records one value; lock-free, callable from any thread.
  void record(u64 v);

  /// Point-in-time copy; safe concurrently with record() (relaxed reads:
  /// each bucket value is valid, the view may lag in-flight records).
  HistogramSnapshot snapshot() const;

  /// Clears every bucket.  Not safe concurrently with record().
  void reset();

  u64 count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::vector<std::atomic<u64>> buckets_;
  std::atomic<u64> count_{0};
  std::atomic<u64> sum_{0};
  std::atomic<u64> min_{~0ull};
  std::atomic<u64> max_{0};
};

}  // namespace adres::obs
