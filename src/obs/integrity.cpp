#include "obs/integrity.hpp"

#include <cmath>
#include <sstream>

#include "common/hash.hpp"

namespace adres::obs {

const char* integrityEventKindName(IntegrityEvent::Kind k) {
  switch (k) {
    case IntegrityEvent::Kind::kBits: return "bits";
    case IntegrityEvent::Kind::kResult: return "result";
    case IntegrityEvent::Kind::kCycles: return "cycles";
    case IntegrityEvent::Kind::kCounters: return "counters";
  }
  return "?";
}

namespace {

bool regionProfilesEqual(const RegionProfile& a, const RegionProfile& b) {
  return a.cycles == b.cycles && a.vliwCycles == b.vliwCycles &&
         a.cgaCycles == b.cgaCycles && a.ops == b.ops &&
         a.vliwOps == b.vliwOps && a.cgaOps == b.cgaOps &&
         a.entries == b.entries;
}

}  // namespace

std::optional<IntegrityEvent> compareDecodes(const DecodeSummary& primary,
                                             const DecodeSummary& shadow) {
  IntegrityEvent ev;
  std::ostringstream detail;

  if (primary.bits.size() != shadow.bits.size()) {
    ev.bitsDiverged = true;
    detail << "bit count " << primary.bits.size() << " vs "
           << shadow.bits.size() << "; ";
  } else {
    for (std::size_t i = 0; i < primary.bits.size(); ++i)
      if (primary.bits[i] != shadow.bits[i]) ++ev.bitErrors;
    if (ev.bitErrors) {
      ev.bitsDiverged = true;
      detail << ev.bitErrors << " of " << primary.bits.size()
             << " payload bits differ; ";
    }
  }
  if (primary.detected != shadow.detected ||
      primary.ltfStart != shadow.ltfStart || primary.stop != shadow.stop) {
    ev.resultDiverged = true;
    detail << "result meta (detected " << primary.detected << " vs "
           << shadow.detected << ", ltf " << primary.ltfStart << " vs "
           << shadow.ltfStart << ", stop " << primary.stop << " vs "
           << shadow.stop << "); ";
  }
  if (primary.cycles != shadow.cycles) {
    ev.cyclesDiverged = true;
    detail << "cycles " << primary.cycles << " vs " << shadow.cycles << "; ";
  }
  if (primary.totalOps != shadow.totalOps ||
      primary.regions.size() != shadow.regions.size()) {
    ev.countersDiverged = true;
  } else {
    auto it = shadow.regions.begin();
    for (const auto& [id, prof] : primary.regions) {
      if (it->first != id || !regionProfilesEqual(prof, it->second)) {
        ev.countersDiverged = true;
        break;
      }
      ++it;
    }
  }
  if (ev.countersDiverged)
    detail << "counter partition differs (ops " << primary.totalOps << " vs "
           << shadow.totalOps << ", " << primary.regions.size() << " vs "
           << shadow.regions.size() << " regions); ";

  if (!ev.bitsDiverged && !ev.resultDiverged && !ev.cyclesDiverged &&
      !ev.countersDiverged)
    return std::nullopt;

  ev.kind = ev.bitsDiverged    ? IntegrityEvent::Kind::kBits
            : ev.resultDiverged ? IntegrityEvent::Kind::kResult
            : ev.cyclesDiverged ? IntegrityEvent::Kind::kCycles
                                : IntegrityEvent::Kind::kCounters;
  ev.primaryCycles = primary.cycles;
  ev.shadowCycles = shadow.cycles;
  ev.detail = detail.str();
  if (ev.detail.size() >= 2) ev.detail.resize(ev.detail.size() - 2);
  return ev;
}

DivergenceSentinel::DivergenceSentinel(SentinelConfig cfg, ShadowDecodeFn shadow)
    : cfg_(cfg), shadow_(std::move(shadow)) {
  // hash < rate * 2^64, computed carefully at the rate==1 edge: 1.0 * 2^64
  // overflows u64, so saturate to "always".
  double rate = cfg_.sampleRate;
  if (!(rate > 0.0)) rate = 0.0;
  if (rate >= 1.0) {
    sampleThreshold_ = ~0ull;
  } else {
    sampleThreshold_ =
        static_cast<u64>(std::ldexp(rate, 64) < 1.0 ? 0.0 : std::ldexp(rate, 64));
  }
}

bool DivergenceSentinel::shouldSample(u64 traceId) const {
  if (!cfg_.enabled || sampleThreshold_ == 0) return false;
  if (sampleThreshold_ == ~0ull) return true;
  return mix64(traceId ^ cfg_.seed) < sampleThreshold_;
}

std::optional<IntegrityEvent> DivergenceSentinel::audit(
    u64 jobId, u32 tag, int worker, u64 traceId,
    const std::array<std::vector<cint16>, 2>& rx,
    const DecodeSummary& primary) {
  std::optional<IntegrityEvent> out;
  EventHook hook;
  {
    std::lock_guard<std::mutex> lk(mu_);
    sampled_.fetch_add(1, std::memory_order_relaxed);
    const DecodeSummary shadow = shadow_(rx, nullptr);
    out = compareDecodes(primary, shadow);
    if (!out) return std::nullopt;

    out->jobId = jobId;
    out->tag = tag;
    out->worker = worker;
    out->traceId = traceId;
    out->shadowTier = execTierName(cfg_.shadowTier);
    if (bundleFn_ && cfg_.bundleOnDivergence) {
      // The decode is deterministic, so a second shadow run — this time with
      // the flight recorder attached — reproduces the divergent decode
      // exactly while keeping the common sampled path on the fast loop.
      std::vector<TraceEvent> ring;
      const DecodeSummary shadowTraced = shadow_(rx, &ring);
      out->bundlePath = bundleFn_(*out, rx, primary, shadowTraced, ring);
    }
    divergences_.fetch_add(1, std::memory_order_relaxed);
    events_.push_back(*out);
    hook = hook_;
  }
  if (hook) hook(*out);
  return out;
}

void DivergenceSentinel::setEventHook(EventHook hook) {
  std::lock_guard<std::mutex> lk(mu_);
  hook_ = std::move(hook);
}

void DivergenceSentinel::setBundleFn(BundleFn fn) {
  std::lock_guard<std::mutex> lk(mu_);
  bundleFn_ = std::move(fn);
}

std::vector<IntegrityEvent> DivergenceSentinel::events() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_;
}

}  // namespace adres::obs
