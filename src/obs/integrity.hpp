// DivergenceSentinel: the online correctness auditor of the self-auditing
// runtime (DESIGN.md §16).
//
// A farm serving traffic on the native exec tier is only trustworthy if the
// native tier still matches the reference semantics *under that traffic*.
// The sentinel closes that loop: a deterministic per-packet coin flip
// (hashed off the packet trace id, so the sampled subset is identical
// across runs and worker counts) selects a configurable fraction of decoded
// packets and shadow-decodes their retained rx payload on a held-back
// lower-tier decoder, comparing decoded bits, the simulated cycle count,
// the result metadata and the per-region counter partition.  Any mismatch
// becomes a structured IntegrityEvent — and, through the bundle hook, a
// replayable `adres.postmortem.v1` bundle carrying the exact payload.
//
// Layering: the sentinel owns the sampling math, the comparison and the
// event bookkeeping; the *decoding* is injected as a callback so obs/ never
// depends on the platform/sdr layers (PacketFarm supplies a closure around
// its private shadow RxSession).
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cga/exec_tier.hpp"
#include "common/types.hpp"
#include "core/processor.hpp"
#include "trace/trace.hpp"

namespace adres::obs {

struct SentinelConfig {
  bool enabled = false;
  /// Fraction of packets shadow-decoded, in [0,1].  The decision is a pure
  /// function of (trace id, seed): sampleRate 1.0 audits every packet.
  double sampleRate = 0.01;
  /// Mixed into the sampling hash; changing it selects a different (still
  /// deterministic) packet subset.
  u64 seed = 0x51DE'C0DEull;
  /// Tier of the held-back shadow decoder.  Interpreted by default: it is
  /// an independent execution path from the native tier and ~3.5x cheaper
  /// than reference, which keeps 1% sampling under the farm's 5% overhead
  /// budget.
  ExecTier shadowTier = ExecTier::kInterpreted;
  /// Write an adres.postmortem.v1 bundle (via the bundle hook) per
  /// divergence.
  bool bundleOnDivergence = true;
  /// Flight-recorder depth for the divergence re-decode (bundle artifact).
  std::size_t ringCapacity = 4096;
};

/// Everything of one decode the sentinel compares — a tier-agnostic summary
/// both the primary worker and the shadow decoder can produce.
struct DecodeSummary {
  bool detected = false;
  u32 ltfStart = 0;
  std::string stop;  ///< stopReasonName of the run's stop reason
  u64 cycles = 0;
  u64 totalOps = 0;  ///< ActivityCounters::totalOps of the decode
  std::vector<u8> bits;
  /// Per-region counter partition (region id -> profile), from
  /// Processor::profiles() after the decode.
  std::map<int, RegionProfile> regions;
};

/// One detected primary/shadow mismatch.
struct IntegrityEvent {
  /// Primary dimension of the divergence (bits > result > cycles >
  /// counters when several diverge at once).
  enum class Kind { kBits, kResult, kCycles, kCounters };

  Kind kind = Kind::kBits;
  bool bitsDiverged = false;
  bool resultDiverged = false;    ///< detected / ltfStart / stop mismatch
  bool cyclesDiverged = false;
  bool countersDiverged = false;  ///< region counter partition mismatch
  u64 jobId = 0;
  u32 tag = 0;
  int worker = -1;
  u64 traceId = 0;
  u64 bitErrors = 0;  ///< differing positions (0 when lengths differ)
  u64 primaryCycles = 0;
  u64 shadowCycles = 0;
  std::string shadowTier;
  std::string detail;      ///< human-readable summary
  std::string bundlePath;  ///< persisted postmortem bundle ("" if none)
};

/// Stable lower_snake label for an event kind (metrics, logs).
const char* integrityEventKindName(IntegrityEvent::Kind k);

class DivergenceSentinel {
 public:
  /// Shadow decoder: decodes `rx` on the held-back tier and summarizes the
  /// result.  When `ringOut` is non-null the decode must run with a
  /// flight-recorder sink attached and return its events (used only for
  /// the divergence re-decode, so the common path stays on the fast loop).
  using ShadowDecodeFn = std::function<DecodeSummary(
      const std::array<std::vector<cint16>, 2>& rx,
      std::vector<TraceEvent>* ringOut)>;
  /// Bundle writer hook, called per divergence (after the re-decode) with
  /// the event, both summaries and the shadow flight-recorder ring; returns
  /// the persisted bundle path ("" when not persisted).
  using BundleFn = std::function<std::string(
      const IntegrityEvent& ev, const std::array<std::vector<cint16>, 2>& rx,
      const DecodeSummary& primary, const DecodeSummary& shadow,
      const std::vector<TraceEvent>& ring)>;
  using EventHook = std::function<void(const IntegrityEvent&)>;

  DivergenceSentinel(SentinelConfig cfg, ShadowDecodeFn shadow);

  /// Deterministic sampling decision for a packet trace id.
  bool shouldSample(u64 traceId) const;

  /// Shadow-decodes `rx`, compares against `primary`, and on mismatch
  /// records (and returns) an IntegrityEvent.  Serialized internally: one
  /// shadow decode at a time.  Call only when shouldSample() returned true
  /// and while the rx payload is still alive.
  std::optional<IntegrityEvent> audit(
      u64 jobId, u32 tag, int worker, u64 traceId,
      const std::array<std::vector<cint16>, 2>& rx,
      const DecodeSummary& primary);

  /// Mirrors every divergence to `hook` (called without internal locks
  /// held).  Set before traffic.
  void setEventHook(EventHook hook);
  /// Installs the postmortem bundle writer.  Set before traffic.
  void setBundleFn(BundleFn fn);

  u64 sampled() const { return sampled_.load(std::memory_order_relaxed); }
  u64 divergences() const {
    return divergences_.load(std::memory_order_relaxed);
  }
  std::vector<IntegrityEvent> events() const;

  const SentinelConfig& config() const { return cfg_; }

 private:
  SentinelConfig cfg_;
  u64 sampleThreshold_ = 0;  ///< hash < threshold -> sampled
  ShadowDecodeFn shadow_;
  BundleFn bundleFn_;
  EventHook hook_;
  std::atomic<u64> sampled_{0};
  std::atomic<u64> divergences_{0};
  mutable std::mutex mu_;  ///< serializes shadow decodes, guards events_
  std::vector<IntegrityEvent> events_;
};

/// Compares two decode summaries; returns the populated event (identity
/// fields left to the caller) or nullopt when they match exactly.  Exposed
/// for tests.
std::optional<IntegrityEvent> compareDecodes(const DecodeSummary& primary,
                                             const DecodeSummary& shadow);

}  // namespace adres::obs
