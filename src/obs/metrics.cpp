#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace adres::obs {
namespace {

double finiteOrZero(double v) { return std::isfinite(v) ? v : 0.0; }

/// Shortest round-trippable-enough representation for the exporters.
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", finiteOrZero(v));
  return buf;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
  return out;
}

/// `name` with every non-[a-zA-Z0-9_:] character replaced by '_' (the
/// Prometheus metric-name alphabet; dots in counter names become '_').
std::string promName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string promLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ',';
    out += promName(labels[i].first) + "=\"" + jsonEscape(labels[i].second) +
           '"';
  }
  out += '}';
  return out;
}

std::string promLabelsWith(const Labels& labels, const char* key,
                           const std::string& value) {
  Labels l = labels;
  l.emplace_back(key, value);
  return promLabels(l);
}

void jsonLabels(std::ostream& os, const Labels& labels) {
  os << '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) os << ", ";
    os << '"' << jsonEscape(labels[i].first) << "\": \""
       << jsonEscape(labels[i].second) << '"';
  }
  os << '}';
}

}  // namespace

void MetricsSnapshot::writePrometheus(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::string>>& help) const {
  const auto helpFor = [&](const std::string& name) -> const std::string* {
    for (const auto& [n, h] : help)
      if (n == name) return &h;
    return nullptr;
  };

  std::string family;
  for (const MetricSample& s : samples) {
    const std::string name = promName(s.name);
    if (name != family) {
      family = name;
      if (const std::string* h = helpFor(s.name)) {
        os << "# HELP " << name << ' ' << *h << '\n';
      }
      os << "# TYPE " << name << ' '
         << (s.type == MetricType::kCounter ? "counter" : "gauge") << '\n';
    }
    os << name << promLabels(s.labels) << ' ' << fmt(s.value) << '\n';
  }
  for (const SummarySample& s : summaries) {
    const std::string name = promName(s.name);
    if (const std::string* h = helpFor(s.name)) {
      os << "# HELP " << name << ' ' << *h << '\n';
    }
    os << "# TYPE " << name << " summary\n";
    for (std::size_t q = 0; q < std::size(kSummaryQuantiles); ++q) {
      os << name
         << promLabelsWith(s.labels, "quantile", fmt(kSummaryQuantiles[q]))
         << ' ' << fmt(s.hist.quantile(kSummaryQuantiles[q]) * s.scale) << '\n';
    }
    os << name << "_sum" << promLabels(s.labels) << ' '
       << fmt(static_cast<double>(s.hist.sum) * s.scale) << '\n';
    os << name << "_count" << promLabels(s.labels) << ' '
       << fmt(static_cast<double>(s.hist.count)) << '\n';
  }
}

void MetricsSnapshot::writeJson(std::ostream& os) const {
  os << "{\n  \"schema\": \"adres.metrics.v1\",\n"
     << "  \"sequence\": " << sequence << ",\n"
     << "  \"uptime_ms\": " << fmt(uptimeMs) << ",\n  \"metrics\": [";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& s = samples[i];
    os << (i ? ",\n" : "\n") << "    {\"name\": \"" << jsonEscape(s.name)
       << "\", \"type\": \""
       << (s.type == MetricType::kCounter ? "counter" : "gauge")
       << "\", \"labels\": ";
    jsonLabels(os, s.labels);
    os << ", \"value\": " << fmt(s.value) << '}';
  }
  os << "\n  ],\n  \"summaries\": [";
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const SummarySample& s = summaries[i];
    os << (i ? ",\n" : "\n") << "    {\"name\": \"" << jsonEscape(s.name)
       << "\", \"labels\": ";
    jsonLabels(os, s.labels);
    os << ", \"count\": " << s.hist.count << ", \"sum\": "
       << fmt(static_cast<double>(s.hist.sum) * s.scale)
       << ", \"min\": " << fmt(static_cast<double>(s.hist.min) * s.scale)
       << ", \"max\": " << fmt(static_cast<double>(s.hist.max) * s.scale)
       << ", \"mean\": " << fmt(s.hist.mean() * s.scale);
    for (std::size_t q = 0; q < std::size(kSummaryQuantiles); ++q) {
      os << ", \"" << kSummaryQuantileNames[q] << "\": "
         << fmt(s.hist.quantile(kSummaryQuantiles[q]) * s.scale);
    }
    os << '}';
  }
  os << "\n  ]\n}\n";
}

MetricsRegistry::MetricsRegistry() : start_(std::chrono::steady_clock::now()) {}

void MetricsRegistry::addCounter(std::string name, std::string help,
                                 std::function<double()> fn, Labels labels) {
  std::lock_guard<std::mutex> lk(mu_);
  scalars_.push_back({std::move(name), std::move(help), MetricType::kCounter,
                      std::move(labels), std::move(fn)});
}

void MetricsRegistry::addGauge(std::string name, std::string help,
                               std::function<double()> fn, Labels labels) {
  std::lock_guard<std::mutex> lk(mu_);
  scalars_.push_back({std::move(name), std::move(help), MetricType::kGauge,
                      std::move(labels), std::move(fn)});
}

void MetricsRegistry::addSummary(std::string name, std::string help,
                                 double scale,
                                 std::function<HistogramSnapshot()> fn,
                                 Labels labels) {
  std::lock_guard<std::mutex> lk(mu_);
  summaries_.push_back(
      {std::move(name), std::move(help), std::move(labels), scale, std::move(fn)});
}

void MetricsRegistry::addCounterFamily(std::string name, std::string help,
                                       FamilyFn fn) {
  std::lock_guard<std::mutex> lk(mu_);
  families_.push_back(
      {std::move(name), std::move(help), MetricType::kCounter, std::move(fn)});
}

void MetricsRegistry::addGaugeFamily(std::string name, std::string help,
                                     FamilyFn fn) {
  std::lock_guard<std::mutex> lk(mu_);
  families_.push_back(
      {std::move(name), std::move(help), MetricType::kGauge, std::move(fn)});
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  scalars_.clear();
  summaries_.clear();
  families_.clear();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  MetricsSnapshot out;
  out.sequence = ++sequence_;
  out.uptimeMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start_)
                     .count();
  out.samples.reserve(scalars_.size());
  for (const ScalarDef& d : scalars_)
    out.samples.push_back({d.name, d.type, d.labels, finiteOrZero(d.fn())});
  for (const FamilyDef& d : families_) {
    for (auto& [labels, value] : d.fn())
      out.samples.push_back({d.name, d.type, std::move(labels),
                             finiteOrZero(value)});
  }
  // Name-ordered so Prometheus families are contiguous; stable within a
  // family (registration order).
  std::stable_sort(out.samples.begin(), out.samples.end(),
                   [](const MetricSample& a, const MetricSample& b) {
                     return a.name < b.name;
                   });
  out.summaries.reserve(summaries_.size());
  for (const SummaryDef& d : summaries_)
    out.summaries.push_back({d.name, d.labels, d.scale, d.fn()});
  std::stable_sort(out.summaries.begin(), out.summaries.end(),
                   [](const SummarySample& a, const SummarySample& b) {
                     return a.name < b.name;
                   });
  return out;
}

std::vector<std::pair<std::string, std::string>> MetricsRegistry::helpTexts()
    const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<std::string, std::string>> out;
  const auto addOnce = [&](const std::string& name, const std::string& help) {
    for (const auto& [n, h] : out)
      if (n == name) return;
    out.emplace_back(name, help);
  };
  for (const ScalarDef& d : scalars_) addOnce(d.name, d.help);
  for (const SummaryDef& d : summaries_) addOnce(d.name, d.help);
  for (const FamilyDef& d : families_) addOnce(d.name, d.help);
  return out;
}

void MetricsRegistry::writePrometheus(std::ostream& os) const {
  snapshot().writePrometheus(os, helpTexts());
}

void MetricsRegistry::writeJson(std::ostream& os) const {
  snapshot().writeJson(os);
}

}  // namespace adres::obs
