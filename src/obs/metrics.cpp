#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace adres::obs {
namespace {

double finiteOrZero(double v) { return std::isfinite(v) ? v : 0.0; }

/// Shortest round-trippable-enough representation for the exporters.
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", finiteOrZero(v));
  return buf;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
  return out;
}

/// `name` with every non-[a-zA-Z0-9_:] character replaced by '_' (the
/// Prometheus metric-name alphabet; dots in counter names become '_').
std::string promName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string promLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ',';
    out += promName(labels[i].first) + "=\"" + jsonEscape(labels[i].second) +
           '"';
  }
  out += '}';
  return out;
}

std::string promLabelsWith(const Labels& labels, const char* key,
                           const std::string& value) {
  Labels l = labels;
  l.emplace_back(key, value);
  return promLabels(l);
}

void jsonLabels(std::ostream& os, const Labels& labels) {
  os << '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) os << ", ";
    os << '"' << jsonEscape(labels[i].first) << "\": \""
       << jsonEscape(labels[i].second) << '"';
  }
  os << '}';
}

/// Power-of-two raw-unit bucket bounds covering the snapshot's [min, max];
/// bounds align with the log-linear decade boundaries, so no histogram
/// bucket ever straddles one.  Capped at 24 lines by widening the stride.
std::vector<u64> histBounds(const HistogramSnapshot& h) {
  std::vector<u64> bounds;
  if (!h.count) return bounds;
  int kLo = 0;
  while (kLo < 63 && (1ull << (kLo + 1)) <= std::max<u64>(h.min, 1)) ++kLo;
  int kHi = kLo;
  while (kHi < 63 && (1ull << kHi) <= h.max) ++kHi;
  int stride = 1;
  while ((kHi - kLo) / stride + 1 > 24) ++stride;
  for (int k = kLo; k <= kHi; k += stride) bounds.push_back(1ull << k);
  return bounds;
}

/// Count of recorded values below raw bound `b` (a power of two, so it falls
/// exactly on a bucket edge of the log-linear layout).
u64 histCumBelow(const HistogramSnapshot& h, u64 b) {
  if (h.buckets.empty() || b == 0) return 0;
  const std::size_t last = LogLinearHistogram::bucketIndex(b - 1);
  u64 cum = 0;
  for (std::size_t i = 0; i <= last && i < h.buckets.size(); ++i)
    cum += h.buckets[i];
  return cum;
}

}  // namespace

void MetricsSnapshot::writePrometheus(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::string>>& help) const {
  const auto helpFor = [&](const std::string& name) -> const std::string* {
    for (const auto& [n, h] : help)
      if (n == name) return &h;
    return nullptr;
  };

  std::string family;
  for (const MetricSample& s : samples) {
    const std::string name = promName(s.name);
    if (name != family) {
      family = name;
      if (const std::string* h = helpFor(s.name)) {
        os << "# HELP " << name << ' ' << *h << '\n';
      }
      os << "# TYPE " << name << ' '
         << (s.type == MetricType::kCounter ? "counter" : "gauge") << '\n';
    }
    os << name << promLabels(s.labels) << ' ' << fmt(s.value) << '\n';
  }
  for (const SummarySample& s : summaries) {
    const std::string name = promName(s.name);
    if (const std::string* h = helpFor(s.name)) {
      os << "# HELP " << name << ' ' << *h << '\n';
    }
    os << "# TYPE " << name << " summary\n";
    for (std::size_t q = 0; q < std::size(kSummaryQuantiles); ++q) {
      os << name
         << promLabelsWith(s.labels, "quantile", fmt(kSummaryQuantiles[q]))
         << ' ' << fmt(s.hist.quantile(kSummaryQuantiles[q]) * s.scale) << '\n';
    }
    os << name << "_sum" << promLabels(s.labels) << ' '
       << fmt(static_cast<double>(s.hist.sum) * s.scale) << '\n';
    os << name << "_count" << promLabels(s.labels) << ' '
       << fmt(static_cast<double>(s.hist.count)) << '\n';
  }
  for (const HistogramSample& s : histograms) {
    const std::string name = promName(s.name);
    if (const std::string* h = helpFor(s.name)) {
      os << "# HELP " << name << ' ' << *h << '\n';
    }
    os << "# TYPE " << name << " histogram\n";
    std::vector<bool> used(s.exemplars.size(), false);
    const auto exemplarFor = [&](double leExport,
                                 bool isInf) -> const MetricExemplar* {
      for (std::size_t i = 0; i < s.exemplars.size(); ++i) {
        if (!used[i] && (isInf || s.exemplars[i].value <= leExport)) {
          used[i] = true;
          return &s.exemplars[i];
        }
      }
      return nullptr;
    };
    for (const u64 b : histBounds(s.hist)) {
      const double le = static_cast<double>(b) * s.scale;
      os << name << "_bucket"
         << promLabelsWith(s.labels, "le", fmt(le)) << ' '
         << histCumBelow(s.hist, b);
      if (const MetricExemplar* e = exemplarFor(le, false))
        os << " # {trace_id=\"" << jsonEscape(e->traceId) << "\"} "
           << fmt(e->value);
      os << '\n';
    }
    os << name << "_bucket" << promLabelsWith(s.labels, "le", "+Inf") << ' '
       << s.hist.count;
    if (const MetricExemplar* e = exemplarFor(0, true))
      os << " # {trace_id=\"" << jsonEscape(e->traceId) << "\"} "
         << fmt(e->value);
    os << '\n';
    os << name << "_sum" << promLabels(s.labels) << ' '
       << fmt(static_cast<double>(s.hist.sum) * s.scale) << '\n';
    os << name << "_count" << promLabels(s.labels) << ' '
       << fmt(static_cast<double>(s.hist.count)) << '\n';
  }
}

void MetricsSnapshot::writeJson(std::ostream& os) const {
  os << "{\n  \"schema\": \"adres.metrics.v1\",\n"
     << "  \"sequence\": " << sequence << ",\n"
     << "  \"uptime_ms\": " << fmt(uptimeMs) << ",\n  \"metrics\": [";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& s = samples[i];
    os << (i ? ",\n" : "\n") << "    {\"name\": \"" << jsonEscape(s.name)
       << "\", \"type\": \""
       << (s.type == MetricType::kCounter ? "counter" : "gauge")
       << "\", \"labels\": ";
    jsonLabels(os, s.labels);
    os << ", \"value\": " << fmt(s.value) << '}';
  }
  os << "\n  ],\n  \"summaries\": [";
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const SummarySample& s = summaries[i];
    os << (i ? ",\n" : "\n") << "    {\"name\": \"" << jsonEscape(s.name)
       << "\", \"labels\": ";
    jsonLabels(os, s.labels);
    os << ", \"count\": " << s.hist.count << ", \"sum\": "
       << fmt(static_cast<double>(s.hist.sum) * s.scale)
       << ", \"min\": " << fmt(static_cast<double>(s.hist.min) * s.scale)
       << ", \"max\": " << fmt(static_cast<double>(s.hist.max) * s.scale)
       << ", \"mean\": " << fmt(s.hist.mean() * s.scale);
    for (std::size_t q = 0; q < std::size(kSummaryQuantiles); ++q) {
      os << ", \"" << kSummaryQuantileNames[q] << "\": "
         << fmt(s.hist.quantile(kSummaryQuantiles[q]) * s.scale);
    }
    os << '}';
  }
  os << "\n  ],\n  \"histograms\": [";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSample& s = histograms[i];
    os << (i ? ",\n" : "\n") << "    {\"name\": \"" << jsonEscape(s.name)
       << "\", \"labels\": ";
    jsonLabels(os, s.labels);
    os << ", \"count\": " << s.hist.count << ", \"sum\": "
       << fmt(static_cast<double>(s.hist.sum) * s.scale)
       << ", \"min\": " << fmt(static_cast<double>(s.hist.min) * s.scale)
       << ", \"max\": " << fmt(static_cast<double>(s.hist.max) * s.scale)
       << ", \"mean\": " << fmt(s.hist.mean() * s.scale)
       << ", \"exemplars\": [";
    for (std::size_t e = 0; e < s.exemplars.size(); ++e) {
      os << (e ? ", " : "") << "{\"value\": " << fmt(s.exemplars[e].value)
         << ", \"trace_id\": \"" << jsonEscape(s.exemplars[e].traceId)
         << "\"}";
    }
    os << "]}";
  }
  os << "\n  ]\n}\n";
}

MetricsRegistry::MetricsRegistry() : start_(std::chrono::steady_clock::now()) {}

void MetricsRegistry::addCounter(std::string name, std::string help,
                                 std::function<double()> fn, Labels labels) {
  std::lock_guard<std::mutex> lk(mu_);
  scalars_.push_back({std::move(name), std::move(help), MetricType::kCounter,
                      std::move(labels), std::move(fn)});
}

void MetricsRegistry::addGauge(std::string name, std::string help,
                               std::function<double()> fn, Labels labels) {
  std::lock_guard<std::mutex> lk(mu_);
  scalars_.push_back({std::move(name), std::move(help), MetricType::kGauge,
                      std::move(labels), std::move(fn)});
}

void MetricsRegistry::addSummary(std::string name, std::string help,
                                 double scale,
                                 std::function<HistogramSnapshot()> fn,
                                 Labels labels) {
  std::lock_guard<std::mutex> lk(mu_);
  summaries_.push_back(
      {std::move(name), std::move(help), std::move(labels), scale, std::move(fn)});
}

void MetricsRegistry::addHistogram(std::string name, std::string help,
                                   double scale,
                                   std::function<HistogramSnapshot()> fn,
                                   ExemplarFn exemplarFn, Labels labels) {
  std::lock_guard<std::mutex> lk(mu_);
  histograms_.push_back({std::move(name), std::move(help), std::move(labels),
                         scale, std::move(fn), std::move(exemplarFn)});
}

void MetricsRegistry::addCounterFamily(std::string name, std::string help,
                                       FamilyFn fn) {
  std::lock_guard<std::mutex> lk(mu_);
  families_.push_back(
      {std::move(name), std::move(help), MetricType::kCounter, std::move(fn)});
}

void MetricsRegistry::addGaugeFamily(std::string name, std::string help,
                                     FamilyFn fn) {
  std::lock_guard<std::mutex> lk(mu_);
  families_.push_back(
      {std::move(name), std::move(help), MetricType::kGauge, std::move(fn)});
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  scalars_.clear();
  summaries_.clear();
  histograms_.clear();
  families_.clear();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  MetricsSnapshot out;
  out.sequence = ++sequence_;
  out.uptimeMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start_)
                     .count();
  out.samples.reserve(scalars_.size());
  for (const ScalarDef& d : scalars_)
    out.samples.push_back({d.name, d.type, d.labels, finiteOrZero(d.fn())});
  for (const FamilyDef& d : families_) {
    for (auto& [labels, value] : d.fn())
      out.samples.push_back({d.name, d.type, std::move(labels),
                             finiteOrZero(value)});
  }
  // Name-ordered so Prometheus families are contiguous; stable within a
  // family (registration order).
  std::stable_sort(out.samples.begin(), out.samples.end(),
                   [](const MetricSample& a, const MetricSample& b) {
                     return a.name < b.name;
                   });
  out.summaries.reserve(summaries_.size());
  for (const SummaryDef& d : summaries_)
    out.summaries.push_back({d.name, d.labels, d.scale, d.fn()});
  std::stable_sort(out.summaries.begin(), out.summaries.end(),
                   [](const SummarySample& a, const SummarySample& b) {
                     return a.name < b.name;
                   });
  out.histograms.reserve(histograms_.size());
  for (const HistogramDef& d : histograms_) {
    out.histograms.push_back({d.name, d.labels, d.scale, d.fn(),
                              d.exemplarFn ? d.exemplarFn()
                                           : std::vector<MetricExemplar>{}});
  }
  std::stable_sort(out.histograms.begin(), out.histograms.end(),
                   [](const HistogramSample& a, const HistogramSample& b) {
                     return a.name < b.name;
                   });
  return out;
}

std::vector<std::pair<std::string, std::string>> MetricsRegistry::helpTexts()
    const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<std::string, std::string>> out;
  const auto addOnce = [&](const std::string& name, const std::string& help) {
    for (const auto& [n, h] : out)
      if (n == name) return;
    out.emplace_back(name, help);
  };
  for (const ScalarDef& d : scalars_) addOnce(d.name, d.help);
  for (const SummaryDef& d : summaries_) addOnce(d.name, d.help);
  for (const HistogramDef& d : histograms_) addOnce(d.name, d.help);
  for (const FamilyDef& d : families_) addOnce(d.name, d.help);
  return out;
}

void MetricsRegistry::writePrometheus(std::ostream& os) const {
  snapshot().writePrometheus(os, helpTexts());
}

void MetricsRegistry::writeJson(std::ostream& os) const {
  snapshot().writeJson(os);
}

}  // namespace adres::obs
