// MetricsRegistry: the live-metrics hub of the observability layer.
//
// Components register named series — monotonic counters, point-in-time
// gauges, and histogram-backed summaries — as getter callbacks; each
// snapshot() materializes every series into an immutable `MetricsSnapshot`
// that the exporters render as Prometheus text exposition (scraped from the
// embedded MetricsServer) or as a versioned `adres.metrics.v1` JSON
// document.
//
// Threading: every public method takes the registry mutex, so registration,
// snapshotting and clear() may race freely; the getters themselves run
// under that mutex and must only read thread-safe state (atomics, published
// CounterRegistry snapshots, histogram snapshot()) — never a live
// simulator's unsynchronized statistics (see the CounterRegistry
// single-writer contract in trace/counters.hpp).  clear() is the teardown
// barrier: once it returns, no getter registered before it will run again,
// so the objects they captured may be destroyed.
#pragma once

#include <chrono>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "obs/histogram.hpp"

namespace adres::obs {

/// Pre-rendered label set, e.g. {{"worker","0"}}.  Order is preserved.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge };

/// One scalar series in a snapshot.
struct MetricSample {
  std::string name;
  MetricType type = MetricType::kGauge;
  Labels labels;
  double value = 0.0;
};

/// One histogram-backed summary series in a snapshot (quantiles are derived
/// at export time; `scale` converts recorded raw units into export units,
/// e.g. 1e-3 for nanoseconds recorded / microseconds exported).
struct SummarySample {
  std::string name;
  Labels labels;
  double scale = 1.0;
  HistogramSnapshot hist;
};

/// A Prometheus-style exemplar: one observed value paired with the trace id
/// of the packet that produced it, attached at export time to the first
/// histogram bucket covering the value (OpenMetrics `# {trace_id="..."} v`
/// suffix on the `_bucket` line).
struct MetricExemplar {
  double value = 0.0;   ///< export units (post-scale)
  std::string traceId;  ///< 16-hex-digit packet trace id
};

/// One histogram series rendered as a native Prometheus histogram:
/// cumulative `_bucket{le="..."}` lines at power-of-two bounds (in export
/// units) covering the recorded range, plus `_sum`/`_count`, with optional
/// exemplars.
struct HistogramSample {
  std::string name;
  Labels labels;
  double scale = 1.0;
  HistogramSnapshot hist;
  std::vector<MetricExemplar> exemplars;
};

/// The quantiles every summary exports.
inline constexpr double kSummaryQuantiles[] = {0.5, 0.9, 0.99, 0.999};
inline constexpr const char* kSummaryQuantileNames[] = {"p50", "p90", "p99",
                                                        "p999"};

struct MetricsSnapshot {
  u64 sequence = 0;     ///< snapshot ordinal since registry creation
  double uptimeMs = 0;  ///< host ms since registry creation
  std::vector<MetricSample> samples;
  std::vector<SummarySample> summaries;
  std::vector<HistogramSample> histograms;

  /// Prometheus text exposition format 0.0.4 (counters/gauges as-is,
  /// summaries as quantile series plus _sum/_count).  `help` optionally
  /// supplies per-family HELP lines (family name -> text).
  void writePrometheus(
      std::ostream& os,
      const std::vector<std::pair<std::string, std::string>>& help = {}) const;
  /// Versioned JSON: {"schema":"adres.metrics.v1", ...}.
  void writeJson(std::ostream& os) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry();

  /// Registers a monotonic counter series.  `help` is emitted once per
  /// metric family; the family's help text comes from its first
  /// registration.
  void addCounter(std::string name, std::string help,
                  std::function<double()> fn, Labels labels = {});
  /// Registers a point-in-time gauge series.
  void addGauge(std::string name, std::string help, std::function<double()> fn,
                Labels labels = {});
  /// Registers a histogram-backed summary series.
  void addSummary(std::string name, std::string help, double scale,
                  std::function<HistogramSnapshot()> fn, Labels labels = {});

  /// Registers a native Prometheus histogram series (cumulative buckets at
  /// power-of-two bounds).  `exemplarFn`, when set, yields the exemplars to
  /// attach at each snapshot (e.g. the tail-latency exemplar store records).
  using ExemplarFn = std::function<std::vector<MetricExemplar>()>;
  void addHistogram(std::string name, std::string help, double scale,
                    std::function<HistogramSnapshot()> fn,
                    ExemplarFn exemplarFn = {}, Labels labels = {});

  /// A dynamic family: one getter yields the whole (labels, value) series
  /// set per snapshot — for key sets only known at runtime (e.g. the
  /// farm-wide sim counter totals as `adres_sim_counter{name="cga.cycles"}`).
  using FamilyFn = std::function<std::vector<std::pair<Labels, double>>()>;
  void addCounterFamily(std::string name, std::string help, FamilyFn fn);
  void addGaugeFamily(std::string name, std::string help, FamilyFn fn);

  /// Drops every registered series.  Teardown barrier: returns only when no
  /// snapshot is mid-flight, after which captured objects may be destroyed.
  void clear();

  /// Materializes every series.  Series are ordered by name (families
  /// contiguous), registration order within a family.
  MetricsSnapshot snapshot() const;

  /// Help text per family, for the Prometheus exposition.
  std::vector<std::pair<std::string, std::string>> helpTexts() const;

  /// snapshot() + writePrometheus, with family HELP/TYPE headers.
  void writePrometheus(std::ostream& os) const;
  /// snapshot() + writeJson.
  void writeJson(std::ostream& os) const;

 private:
  struct ScalarDef {
    std::string name, help;
    MetricType type;
    Labels labels;
    std::function<double()> fn;
  };
  struct SummaryDef {
    std::string name, help;
    Labels labels;
    double scale;
    std::function<HistogramSnapshot()> fn;
  };
  struct HistogramDef {
    std::string name, help;
    Labels labels;
    double scale;
    std::function<HistogramSnapshot()> fn;
    ExemplarFn exemplarFn;
  };
  struct FamilyDef {
    std::string name, help;
    MetricType type;
    FamilyFn fn;
  };

  mutable std::mutex mu_;
  std::vector<ScalarDef> scalars_;
  std::vector<SummaryDef> summaries_;
  std::vector<HistogramDef> histograms_;
  std::vector<FamilyDef> families_;
  mutable u64 sequence_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace adres::obs
