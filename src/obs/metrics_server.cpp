#include "obs/metrics_server.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

#include "common/check.hpp"
#include "obs/buildinfo.hpp"
#include "obs/slo.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace adres::obs {
namespace {

void closeFd(int fd) {
  if (fd >= 0) ::close(fd);
}

bool sendAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string httpResponse(const char* status, const char* contentType,
                         const std::string& body) {
  std::ostringstream os;
  os << "HTTP/1.0 " << status << "\r\nContent-Type: " << contentType
     << "\r\nContent-Length: " << body.size() << "\r\nConnection: close\r\n\r\n"
     << body;
  return os.str();
}

in_addr parseAddr(const std::string& host) {
  in_addr a{};
  const std::string h = host == "localhost" ? "127.0.0.1" : host;
  ADRES_CHECK(::inet_pton(AF_INET, h.c_str(), &a) == 1,
              "bad IPv4 address '" << host << '\'');
  return a;
}

}  // namespace

MetricsServer::MetricsServer(const MetricsRegistry& reg, int port,
                             const std::string& bindAddr)
    : reg_(reg) {
  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  ADRES_CHECK(listenFd_ >= 0, "socket(): " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<u16>(port));
  addr.sin_addr = parseAddr(bindAddr);
  if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listenFd_, 16) != 0) {
    const int err = errno;
    closeFd(listenFd_);
    listenFd_ = -1;
    ADRES_CHECK(false, "metrics server bind(" << bindAddr << ':' << port
                                              << "): " << std::strerror(err));
  }
  socklen_t len = sizeof addr;
  ::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread([this] { serveLoop(); });
}

MetricsServer::~MetricsServer() { stop(); }

void MetricsServer::stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (listenFd_ >= 0) ::shutdown(listenFd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  closeFd(listenFd_);
  listenFd_ = -1;
}

void MetricsServer::serveLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or unrecoverable) — exit the loop
    }
    const auto t0 = std::chrono::steady_clock::now();
    handleConnection(fd);
    closeFd(fd);
    scrapeDurationNs_.record(static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
}

void MetricsServer::setReadiness(ReadinessFn fn) {
  std::lock_guard<std::mutex> lk(hookMu_);
  readiness_ = std::move(fn);
}

void MetricsServer::setSloEngine(SloEngine* engine) {
  std::lock_guard<std::mutex> lk(hookMu_);
  slo_ = engine;
}

void MetricsServer::registerSelfMetrics(MetricsRegistry& reg) {
  reg.addCounter("adres_metrics_scrapes_total",
                 "HTTP requests served by the metrics endpoint",
                 [this] { return static_cast<double>(requests()); });
  reg.addSummary("adres_metrics_scrape_duration_us",
                 "Per-request handling time in microseconds", 1e-3,
                 [this] { return scrapeDurationNs_.snapshot(); });
}

void MetricsServer::handleConnection(int fd) {
  // One small request: read until the header terminator (or 4 KiB).
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  std::string req;
  char buf[1024];
  while (req.size() < 4096 && req.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    req.append(buf, static_cast<std::size_t>(n));
  }
  std::istringstream line(req);
  std::string method, path;
  line >> method >> path;
  if (method != "GET") {
    sendAll(fd, httpResponse("405 Method Not Allowed", "text/plain",
                             "only GET is supported\n"));
    return;
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (path == "/metrics") {
    std::ostringstream body;
    reg_.writePrometheus(body);
    sendAll(fd, httpResponse("200 OK", "text/plain; version=0.0.4",
                             body.str()));
  } else if (path == "/metrics.json") {
    std::ostringstream body;
    reg_.writeJson(body);
    sendAll(fd, httpResponse("200 OK", "application/json", body.str()));
  } else if (path == "/buildinfo") {
    std::ostringstream body;
    writeBuildInfoJson(body);
    sendAll(fd, httpResponse("200 OK", "application/json", body.str()));
  } else if (path == "/healthz") {
    sendAll(fd, httpResponse("200 OK", "text/plain", "ok\n"));
  } else if (path == "/readyz") {
    ReadinessFn check;
    {
      std::lock_guard<std::mutex> lk(hookMu_);
      check = readiness_;
    }
    std::string reason;
    if (!check || check(&reason)) {
      sendAll(fd, httpResponse("200 OK", "text/plain", "ready\n"));
    } else {
      if (reason.empty()) reason = "warming up";
      sendAll(fd, httpResponse("503 Service Unavailable", "text/plain",
                               "not ready: " + reason + "\n"));
    }
  } else if (path == "/slo") {
    SloEngine* engine;
    {
      std::lock_guard<std::mutex> lk(hookMu_);
      engine = slo_;
    }
    if (engine) {
      engine->evaluate();
      std::ostringstream body;
      engine->writeJson(body);
      sendAll(fd, httpResponse("200 OK", "application/json", body.str()));
    } else {
      sendAll(fd, httpResponse("404 Not Found", "text/plain",
                               "no SLO engine attached\n"));
    }
  } else if (path == "/" || path == "/index.html") {
    sendAll(fd, httpResponse(
                    "200 OK", "text/html",
                    "<html><body><h1>adres metrics</h1><ul>"
                    "<li><a href=\"/metrics\">/metrics</a> (Prometheus)</li>"
                    "<li><a href=\"/metrics.json\">/metrics.json</a></li>"
                    "<li><a href=\"/buildinfo\">/buildinfo</a></li>"
                    "<li><a href=\"/healthz\">/healthz</a></li>"
                    "<li><a href=\"/readyz\">/readyz</a></li>"
                    "<li><a href=\"/slo\">/slo</a></li>"
                    "</ul></body></html>\n"));
  } else {
    sendAll(fd, httpResponse("404 Not Found", "text/plain", "not found\n"));
  }
}

std::string httpGet(const std::string& host, int port, const std::string& path,
                    std::string* statusOut, int timeoutMs) {
  if (statusOut) statusOut->clear();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  timeval tv{};
  tv.tv_sec = timeoutMs / 1000;
  tv.tv_usec = (timeoutMs % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<u16>(port));
  try {
    addr.sin_addr = parseAddr(host);
  } catch (const SimError&) {
    closeFd(fd);
    return "";
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    closeFd(fd);
    return "";
  }
  const std::string req =
      "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  if (!sendAll(fd, req)) {
    closeFd(fd);
    return "";
  }
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  closeFd(fd);
  const std::size_t eol = resp.find("\r\n");
  if (statusOut && eol != std::string::npos) *statusOut = resp.substr(0, eol);
  const std::size_t split = resp.find("\r\n\r\n");
  return split == std::string::npos ? "" : resp.substr(split + 4);
}

}  // namespace adres::obs

#else  // no POSIX sockets: keep the interface, fail loudly if used.

namespace adres::obs {

MetricsServer::MetricsServer(const MetricsRegistry& reg, int, const std::string&)
    : reg_(reg) {
  ADRES_CHECK(false, "MetricsServer requires POSIX sockets on this platform");
}
MetricsServer::~MetricsServer() = default;
void MetricsServer::stop() {}
void MetricsServer::registerSelfMetrics(MetricsRegistry&) {}
void MetricsServer::setReadiness(ReadinessFn) {}
void MetricsServer::setSloEngine(SloEngine*) {}
void MetricsServer::serveLoop() {}
void MetricsServer::handleConnection(int) {}

std::string httpGet(const std::string&, int, const std::string&, std::string*,
                    int) {
  return "";
}

}  // namespace adres::obs

#endif
