// MetricsServer: a deliberately tiny embedded scrape endpoint so a running
// PacketFarm (or any process holding a MetricsRegistry) can be observed
// mid-flight.  One blocking accept loop on its own thread, one request per
// connection (HTTP/1.0, Connection: close):
//
//   GET /metrics       -> Prometheus text exposition (format 0.0.4)
//   GET /metrics.json  -> adres.metrics.v1 JSON snapshot
//   GET /buildinfo     -> adres.buildinfo.v1 (version, git, build flags)
//   GET /healthz       -> "ok" liveness probe (the process serves requests)
//   GET /readyz        -> readiness probe: 200 once the registered readiness
//                         check passes (farm workers warm, program cache
//                         populated), 503 with the blocking reason before
//   GET /slo           -> adres.slo.v1 burn-rate state (404 with no engine)
//   GET /              -> tiny HTML index
//
// Not a general web server: no keep-alive, no TLS, no request body — a
// scrape endpoint with the smallest possible surface.  Binds 127.0.0.1 by
// default; port 0 picks an ephemeral port (read back via port()).  The
// registry must outlive the server, or be clear()ed first (clear() is the
// teardown barrier).
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace adres::obs {

class SloEngine;

class MetricsServer {
 public:
  /// Binds and starts serving immediately; throws SimError on bind failure.
  explicit MetricsServer(const MetricsRegistry& reg, int port = 0,
                         const std::string& bindAddr = "127.0.0.1");
  ~MetricsServer();

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  /// The actually-bound TCP port (resolves port 0 requests).
  int port() const { return port_; }

  /// Stops accepting and joins the serve thread.  Idempotent.
  void stop();

  /// Scrapes served since start.
  u64 requests() const { return requests_.load(std::memory_order_relaxed); }

  /// Per-request handling durations (ns), recorded by the serve thread.
  HistogramSnapshot scrapeDurations() const { return scrapeDurationNs_.snapshot(); }

  /// Registers the server's own series on `reg` (which must be the registry
  /// this server scrapes): adres_metrics_scrapes_total and the
  /// adres_metrics_scrape_duration_us summary.  The server must outlive the
  /// registrations (clear() the registry before destroying the server).
  void registerSelfMetrics(MetricsRegistry& reg);

  /// Readiness probe for /readyz.  The check runs on the serve thread per
  /// request: return true when the process can take traffic; on false,
  /// optionally describe what is still warming via `reason`.  Liveness
  /// (/healthz) stays unconditional.  Without a check, /readyz mirrors
  /// /healthz.  The callable must stay valid until stop() (or a
  /// setReadiness({}) reset).
  using ReadinessFn = std::function<bool(std::string* reason)>;
  void setReadiness(ReadinessFn fn);

  /// Attaches the SLO engine behind /slo (each request evaluates and
  /// returns adres.slo.v1).  Null detaches; the engine must outlive its
  /// attachment.
  void setSloEngine(SloEngine* engine);

 private:
  void serveLoop();
  void handleConnection(int fd);

  const MetricsRegistry& reg_;
  mutable std::mutex hookMu_;  ///< guards readiness_ / slo_ vs the serve thread
  ReadinessFn readiness_;
  SloEngine* slo_ = nullptr;
  int listenFd_ = -1;
  int port_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<u64> requests_{0};
  LogLinearHistogram scrapeDurationNs_;
  std::thread thread_;
};

/// Minimal blocking HTTP/1.0 GET against a numeric IPv4 host ("localhost"
/// is accepted as 127.0.0.1).  Returns the response body ("" on connect /
/// protocol error); `statusOut`, when set, receives the status line.  Used
/// by examples/farm_dashboard and the tests — not a general client.
std::string httpGet(const std::string& host, int port, const std::string& path,
                    std::string* statusOut = nullptr, int timeoutMs = 5000);

}  // namespace adres::obs
