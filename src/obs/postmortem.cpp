#include "obs/postmortem.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/json_min.hpp"
#include "obs/buildinfo.hpp"
#include "trace/export.hpp"

namespace adres::obs {
namespace {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
  return out;
}

u64 hexToU64(const std::string& s) {
  ADRES_CHECK(!s.empty() && s.size() <= 16, "bad hex u64 '" << s << '\'');
  u64 v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<u64>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<u64>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') v |= static_cast<u64>(c - 'A' + 10);
    else ADRES_CHECK(false, "bad hex digit in '" << s << '\'');
  }
  return v;
}

void writeResultRecord(const ResultRecord& r, std::ostream& os,
                       const char* pad) {
  os << "{\n" << pad << "  \"detected\": " << (r.detected ? "true" : "false")
     << ",\n" << pad << "  \"ltf_start\": " << r.ltfStart << ",\n"
     << pad << "  \"stop\": \"" << jsonEscape(r.stop) << "\",\n"
     << pad << "  \"cycles\": " << r.cycles << ",\n"
     << pad << "  \"total_ops\": " << r.totalOps << ",\n"
     << pad << "  \"bits\": \"";
  for (const u8 b : r.bits) os << (b ? '1' : '0');
  os << "\",\n" << pad << "  \"regions\": [";
  std::size_t i = 0;
  for (const auto& [id, p] : r.regions) {
    os << (i++ ? ",\n" : "\n") << pad << "    {\"id\": " << id
       << ", \"cycles\": " << p.cycles << ", \"vliw_cycles\": " << p.vliwCycles
       << ", \"cga_cycles\": " << p.cgaCycles << ", \"ops\": " << p.ops
       << ", \"vliw_ops\": " << p.vliwOps << ", \"cga_ops\": " << p.cgaOps
       << ", \"entries\": " << p.entries << '}';
  }
  os << "\n" << pad << "  ]\n" << pad << '}';
}

void writeRx(const std::vector<cint16>& rx, std::ostream& os) {
  os << '[';
  for (std::size_t i = 0; i < rx.size(); ++i)
    os << (i ? "," : "") << rx[i].re << ',' << rx[i].im;
  os << ']';
}

ResultRecord parseResultRecord(const json::JsonValue& v) {
  ResultRecord r;
  r.valid = true;
  r.detected = v.at("detected").boolean;
  r.ltfStart = static_cast<u32>(v.at("ltf_start").number);
  r.stop = v.at("stop").str;
  r.cycles = static_cast<u64>(v.at("cycles").number);
  r.totalOps = static_cast<u64>(v.at("total_ops").number);
  const std::string& bits = v.at("bits").str;
  r.bits.reserve(bits.size());
  for (const char c : bits) r.bits.push_back(c == '1' ? 1 : 0);
  for (const json::JsonValue& rv : v.at("regions").array) {
    RegionProfile p;
    p.cycles = static_cast<u64>(rv.at("cycles").number);
    p.vliwCycles = static_cast<u64>(rv.at("vliw_cycles").number);
    p.cgaCycles = static_cast<u64>(rv.at("cga_cycles").number);
    p.ops = static_cast<u64>(rv.at("ops").number);
    p.vliwOps = static_cast<u64>(rv.at("vliw_ops").number);
    p.cgaOps = static_cast<u64>(rv.at("cga_ops").number);
    p.entries = static_cast<u64>(rv.at("entries").number);
    r.regions[static_cast<int>(rv.at("id").number)] = p;
  }
  return r;
}

std::vector<cint16> parseRx(const json::JsonValue& v) {
  ADRES_CHECK(v.array.size() % 2 == 0, "rx sample array length must be even");
  std::vector<cint16> out;
  out.reserve(v.array.size() / 2);
  for (std::size_t i = 0; i < v.array.size(); i += 2) {
    out.push_back({static_cast<i16>(v.array[i].number),
                   static_cast<i16>(v.array[i + 1].number)});
  }
  return out;
}

}  // namespace

void writePostmortemJson(const PostmortemBundle& b, std::ostream& os,
                         const MetricsRegistry* metrics) {
  os << "{\n  \"schema\": \"adres.postmortem.v1\",\n"
     << "  \"trigger\": \"" << jsonEscape(b.trigger) << "\",\n"
     << "  \"reason\": \"" << jsonEscape(b.reason) << "\",\n"
     << "  \"job_id\": " << b.jobId << ",\n  \"tag\": " << b.tag
     << ",\n  \"worker\": " << b.worker << ",\n  \"trace_id\": \""
     << trace::traceIdHex(b.traceId) << "\",\n  \"config\": {\n"
     << "    \"modulation\": " << b.modulation
     << ",\n    \"num_symbols\": " << b.numSymbols
     << ",\n    \"exec_tier\": \"" << jsonEscape(b.execTier)
     << "\",\n    \"shadow_tier\": \"" << jsonEscape(b.shadowTier)
     << "\",\n    \"max_cycles\": " << b.maxCycles
     << ",\n    \"fault_inject_seed\": \"" << trace::traceIdHex(b.faultInjectSeed)
     << "\"\n  },\n  \"rx\": [\n    ";
  writeRx(b.rx[0], os);
  os << ",\n    ";
  writeRx(b.rx[1], os);
  os << "\n  ],\n  \"primary\": ";
  writeResultRecord(b.primary, os, "  ");
  os << ",\n  \"shadow\": ";
  if (b.shadow.valid) {
    writeResultRecord(b.shadow, os, "  ");
  } else {
    os << "null";
  }
  os << ",\n  \"spans\": [";
  trace::writeSpanJsonEntries(b.spans.spans, os, 4);
  os << "\n  ],\n  \"ring\": {\n    \"capacity\": " << b.ringCapacity
     << ",\n    \"accepted\": " << b.ringAccepted
     << ",\n    \"dropped\": " << b.ringDropped << ",\n    \"events\": [";
  trace::writeTraceEventJsonEntries(b.ring, os, 6);
  os << "\n    ]\n  },\n  \"buildinfo\": ";
  {
    std::ostringstream bi;
    writeBuildInfoJson(bi);
    std::string s = bi.str();
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
    os << s;
  }
  if (metrics) {
    os << ",\n  \"metrics\": ";
    std::ostringstream ms;
    metrics->writeJson(ms);
    std::string s = ms.str();
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
    os << s;
  }
  os << "\n}\n";
}

PostmortemBundle loadPostmortemBundle(const std::string& path) {
  std::ifstream in(path);
  ADRES_CHECK(in.good(), "cannot open postmortem bundle '" << path << '\'');
  std::ostringstream buf;
  buf << in.rdbuf();
  json::JsonValue root = json::JsonParser(buf.str()).parse();
  ADRES_CHECK(root.hasKey("schema") &&
                  root.at("schema").str == "adres.postmortem.v1",
              "'" << path << "' is not an adres.postmortem.v1 bundle");

  PostmortemBundle b;
  b.trigger = root.at("trigger").str;
  b.reason = root.at("reason").str;
  b.jobId = static_cast<u64>(root.at("job_id").number);
  b.tag = static_cast<u32>(root.at("tag").number);
  b.worker = static_cast<int>(root.at("worker").number);
  b.traceId = hexToU64(root.at("trace_id").str);

  const json::JsonValue& cfg = root.at("config");
  b.modulation = static_cast<int>(cfg.at("modulation").number);
  b.numSymbols = static_cast<int>(cfg.at("num_symbols").number);
  b.execTier = cfg.at("exec_tier").str;
  b.shadowTier = cfg.at("shadow_tier").str;
  b.maxCycles = static_cast<u64>(cfg.at("max_cycles").number);
  b.faultInjectSeed = hexToU64(cfg.at("fault_inject_seed").str);

  const json::JsonValue& rx = root.at("rx");
  ADRES_CHECK(rx.array.size() == 2, "bundle rx must hold two antenna streams");
  b.rx[0] = parseRx(rx.array[0]);
  b.rx[1] = parseRx(rx.array[1]);

  b.primary = parseResultRecord(root.at("primary"));
  const json::JsonValue& shadow = root.at("shadow");
  if (shadow.type == json::JsonValue::kObject)
    b.shadow = parseResultRecord(shadow);

  b.spans.traceId = b.traceId;
  b.spans.jobId = b.jobId;
  b.spans.worker = b.worker;
  b.spans.tag = b.tag;
  for (const json::JsonValue& sv : root.at("spans").array) {
    trace::Span s;
    s.kind = trace::spanKindFromName(sv.at("kind").str);
    s.name = sv.at("name").str;
    s.startUs = sv.at("start_us").number;
    s.durUs = sv.at("dur_us").number;
    s.startCycle = static_cast<u64>(sv.at("start_cycle").number);
    s.cycles = static_cast<u64>(sv.at("cycles").number);
    s.ops = static_cast<u64>(sv.at("ops").number);
    b.spans.spans.push_back(std::move(s));
  }

  const json::JsonValue& ring = root.at("ring");
  b.ringCapacity = static_cast<std::size_t>(ring.at("capacity").number);
  b.ringAccepted = static_cast<u64>(ring.at("accepted").number);
  b.ringDropped = static_cast<u64>(ring.at("dropped").number);
  for (const json::JsonValue& ev : ring.at("events").array) {
    TraceEvent e;
    e.cycle = static_cast<u64>(ev.at("cycle").number);
    e.dur = static_cast<u64>(ev.at("dur").number);
    e.kind = trace::traceEventKindFromName(ev.at("kind").str);
    e.track = static_cast<u8>(ev.at("track").number);
    e.a = static_cast<u32>(ev.at("a").number);
    e.b = static_cast<u32>(ev.at("b").number);
    b.ring.push_back(e);
  }
  return b;
}

PostmortemWriter::PostmortemWriter(PostmortemConfig cfg) : cfg_(std::move(cfg)) {
  std::error_code ec;
  std::filesystem::create_directories(cfg_.dir, ec);
}

std::string PostmortemWriter::write(const PostmortemBundle& b) {
  std::string path, tmp;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (cfg_.maxBundles && paths_.size() >= cfg_.maxBundles) {
      std::error_code ec;
      std::filesystem::remove(paths_.front(), ec);
      paths_.erase(paths_.begin());
      ++evicted_;
    }
    path = cfg_.dir + "/postmortem_" + trace::traceIdHex(b.traceId) + "_" +
           std::to_string(fileSeq_) + ".json";
    tmp = path + ".tmp";
    ++fileSeq_;
    paths_.push_back(path);
    ++written_;
  }
  {
    std::ofstream os(tmp, std::ios::trunc);
    writePostmortemJson(b, os, cfg_.metrics);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::filesystem::remove(tmp, ec);
  return path;
}

std::vector<std::string> PostmortemWriter::paths() const {
  std::lock_guard<std::mutex> lk(mu_);
  return paths_;
}

u64 PostmortemWriter::written() const {
  std::lock_guard<std::mutex> lk(mu_);
  return written_;
}

u64 PostmortemWriter::evicted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return evicted_;
}

}  // namespace adres::obs
