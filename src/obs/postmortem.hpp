// Replayable postmortem bundles (`adres.postmortem.v1`, DESIGN.md §16).
//
// When the self-auditing runtime trips — a sentinel divergence, a watchdog
// cancellation/budget exhaustion, or an SLO breach — the farm freezes the
// whole incident into one atomic JSON file: the exact rx payload and modem
// configuration needed to re-run the packet (the black box *and* the
// flight), both decode results with their per-region counter partitions,
// the span tree, the shadow decode's flight-recorder ring, a metrics
// snapshot and the build identity.  `tools/postmortem_replay` re-decodes a
// bundle standalone and confirms (or refutes) the recorded failure.
//
// Writes are atomic (tmp file + rename) and the store is bounded
// (oldest-evicted), mirroring the exemplar store's contract.  64-bit values
// that do not survive a double round-trip (trace id, fault seed) are
// serialized as 16-hex-digit strings.
#pragma once

#include <array>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/processor.hpp"
#include "obs/metrics.hpp"
#include "trace/span.hpp"
#include "trace/trace.hpp"

namespace adres::obs {

struct PostmortemConfig {
  bool enabled = false;
  std::string dir = "postmortems";  ///< store directory (created on demand)
  std::size_t maxBundles = 16;      ///< bound on retained bundle files
  /// Registry whose snapshot is embedded in each bundle ("metrics" block);
  /// null skips the block.  Must outlive the writer.
  const MetricsRegistry* metrics = nullptr;
};

/// One decode result as recorded in a bundle.
struct ResultRecord {
  bool valid = false;  ///< false: this side was not recorded (no shadow)
  bool detected = false;
  u32 ltfStart = 0;
  std::string stop;  ///< stopReasonName of the stop reason
  u64 cycles = 0;
  u64 totalOps = 0;
  std::vector<u8> bits;  ///< one 0/1 byte per payload bit
  std::map<int, RegionProfile> regions;  ///< per-region counter partition
};

struct PostmortemBundle {
  std::string trigger;  ///< "divergence" | "watchdog" | "slo_breach" | ...
  std::string reason;   ///< human-readable cause
  u64 jobId = 0;
  u32 tag = 0;
  int worker = -1;
  u64 traceId = 0;

  // The exact re-run recipe: modem config, tiers, budget, fault seed and
  // the raw rx payload.  Everything replayPostmortem needs.
  int modulation = 0;  ///< dsp::Modulation as its underlying integer
  int numSymbols = 0;
  std::string execTier;    ///< primary decode's tier label
  std::string shadowTier;  ///< "" when no shadow decode was recorded
  u64 maxCycles = 0;
  u64 faultInjectSeed = 0;  ///< RxRunOptions::faultInjectBitFlipSeed (0 = off)
  std::array<std::vector<cint16>, 2> rx;

  ResultRecord primary;  ///< the serving-path decode
  ResultRecord shadow;   ///< the sentinel's shadow decode (valid=false if none)

  trace::PacketSpans spans;      ///< span tree (may be empty)
  std::vector<TraceEvent> ring;  ///< flight-recorder ring of the shadow redo
  u64 ringAccepted = 0;
  u64 ringDropped = 0;
  std::size_t ringCapacity = 0;
};

/// Serializes a bundle as adres.postmortem.v1.  `metrics`, when non-null,
/// embeds a fresh registry snapshot; the build identity is always embedded.
void writePostmortemJson(const PostmortemBundle& b, std::ostream& os,
                         const MetricsRegistry* metrics = nullptr);

/// Parses an adres.postmortem.v1 file back into a bundle (via
/// common/json_min).  The embedded "metrics" and "buildinfo" blocks are
/// diagnostic context only and are not re-materialized.  Throws SimError on
/// a missing file, wrong schema, or malformed content.
PostmortemBundle loadPostmortemBundle(const std::string& path);

/// Bounded, thread-safe bundle store with atomic writes.
class PostmortemWriter {
 public:
  explicit PostmortemWriter(PostmortemConfig cfg);

  /// Persists the bundle (tmp + rename); evicts the oldest bundle when the
  /// store is full.  Returns the file path.
  std::string write(const PostmortemBundle& b);

  /// Paths currently retained, oldest first.
  std::vector<std::string> paths() const;
  u64 written() const;  ///< total writes (including later-evicted ones)
  u64 evicted() const;

  const PostmortemConfig& config() const { return cfg_; }

 private:
  PostmortemConfig cfg_;
  mutable std::mutex mu_;
  std::vector<std::string> paths_;  ///< retained files, oldest first
  u64 written_ = 0;
  u64 evicted_ = 0;
  u64 fileSeq_ = 0;
};

}  // namespace adres::obs
