#include "obs/slo.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/check.hpp"

namespace adres::obs {
namespace {

// The registry series each SLO kind reads (registered by
// PacketFarm::registerMetrics).
constexpr const char* kLatencySummary = "adres_farm_latency_host_us";
// Simulated enqueue-to-decode latency from the cell layer (CellScheduler::
// registerMetrics).  deadline_miss_rate prefers it when populated: frame
// deadlines are a simulated-time contract, and the cell summary counts
// dropped packets at their give-up latency, so countAbove sees them too.
constexpr const char* kCellLatencySummary = "adres_cell_latency_us";
constexpr const char* kQueueWaitSummary = "adres_farm_queue_wait_us";
constexpr const char* kHealthEventsCounter = "adres_farm_health_events_total";
constexpr const char* kDivergencesCounter = "adres_farm_divergences_total";

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", std::isfinite(v) ? v : 0.0);
  return buf;
}

const SummarySample* findSummary(const MetricsSnapshot& snap,
                                 const char* name) {
  for (const SummarySample& s : snap.summaries)
    if (s.name == name) return &s;
  return nullptr;
}

bool findScalar(const MetricsSnapshot& snap, const char* name, double* out) {
  for (const MetricSample& s : snap.samples) {
    if (s.name == name) {
      *out = s.value;
      return true;
    }
  }
  return false;
}

struct Cursor {
  const std::string& s;
  std::size_t pos = 0;

  void skipWs() {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos])))
      ++pos;
  }
  bool eof() {
    skipWs();
    return pos >= s.size();
  }
  char peek() {
    skipWs();
    return pos < s.size() ? s[pos] : '\0';
  }
  bool consume(char c) {
    skipWs();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  std::string ident() {
    skipWs();
    std::size_t start = pos;
    while (pos < s.size() && (std::isalnum(static_cast<unsigned char>(s[pos])) ||
                              s[pos] == '_'))
      ++pos;
    return s.substr(start, pos - start);
  }
  double number() {
    skipWs();
    std::size_t start = pos;
    while (pos < s.size() && (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                              s[pos] == '.' || s[pos] == '-' || s[pos] == '+' ||
                              s[pos] == 'e' || s[pos] == 'E'))
      ++pos;
    ADRES_CHECK(pos > start, "SLO spec: expected a number at '"
                                 << s.substr(start) << '\'');
    return std::stod(s.substr(start, pos - start));
  }
};

}  // namespace

const char* sloKindName(SloKind k) {
  switch (k) {
    case SloKind::kP99LatencyUs: return "p99_latency_us";
    case SloKind::kQueueWaitShare: return "queue_wait_share";
    case SloKind::kDeadlineMissRate: return "deadline_miss_rate";
    case SloKind::kWatchdogEvents: return "watchdog_events";
    case SloKind::kDivergences: return "divergences";
  }
  return "?";
}

SloSpec parseSloSpec(const std::string& text) {
  Cursor c{text};
  SloSpec spec;
  spec.name = c.ident();
  ADRES_CHECK(!spec.name.empty(), "SLO spec: missing name in '" << text << '\'');
  ADRES_CHECK(c.consume(':'), "SLO spec: expected ':' after name in '" << text
                                                                       << '\'');
  const std::string metric = c.ident();
  if (metric == "p99_latency_us") {
    spec.kind = SloKind::kP99LatencyUs;
  } else if (metric == "queue_wait_share") {
    spec.kind = SloKind::kQueueWaitShare;
  } else if (metric == "deadline_miss_rate") {
    spec.kind = SloKind::kDeadlineMissRate;
  } else if (metric == "watchdog_events") {
    spec.kind = SloKind::kWatchdogEvents;
  } else if (metric == "divergences") {
    spec.kind = SloKind::kDivergences;
  } else {
    ADRES_CHECK(false, "SLO spec: unknown metric '" << metric << "' in '"
                                                    << text << '\'');
  }
  if (c.consume('(')) {
    const double arg = c.number();
    ADRES_CHECK(c.consume(')'), "SLO spec: missing ')' in '" << text << '\'');
    ADRES_CHECK(spec.kind == SloKind::kDeadlineMissRate,
                "SLO spec: metric '" << metric << "' takes no argument");
    spec.deadlineUs = arg;
  } else {
    ADRES_CHECK(spec.kind != SloKind::kDeadlineMissRate,
                "SLO spec: deadline_miss_rate needs a (deadline_us) argument");
  }
  ADRES_CHECK(c.consume('<'), "SLO spec: expected '<' or '<=' in '" << text
                                                                    << '\'');
  spec.strict = !c.consume('=');
  spec.threshold = c.number();
  if (!c.eof()) {
    const std::string kw = c.ident();
    ADRES_CHECK(kw == "for", "SLO spec: unexpected token '" << kw << "' in '"
                                                            << text << '\'');
    spec.forCount = static_cast<int>(c.number());
    ADRES_CHECK(spec.forCount >= 1, "SLO spec: 'for' count must be >= 1");
  }
  ADRES_CHECK(c.eof(), "SLO spec: trailing characters in '" << text << '\'');
  return spec;
}

std::vector<SloSpec> parseSloSpecList(const std::string& text) {
  std::vector<SloSpec> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(';', start);
    const std::string part =
        text.substr(start, end == std::string::npos ? end : end - start);
    if (part.find_first_not_of(" \t\r\n") != std::string::npos)
      out.push_back(parseSloSpec(part));
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return out;
}

std::string sloSpecToString(const SloSpec& spec) {
  std::ostringstream os;
  os << spec.name << ": " << sloKindName(spec.kind);
  if (spec.kind == SloKind::kDeadlineMissRate)
    os << '(' << fmt(spec.deadlineUs) << ')';
  os << (spec.strict ? " < " : " <= ") << fmt(spec.threshold);
  if (spec.forCount > 1) os << " for " << spec.forCount;
  return os.str();
}

SloEngine::SloEngine(const MetricsRegistry& reg, std::vector<SloSpec> specs)
    : reg_(reg) {
  statuses_.reserve(specs.size());
  for (SloSpec& s : specs) {
    SloStatus st;
    st.spec = std::move(s);
    statuses_.push_back(std::move(st));
  }
}

SloEngine::~SloEngine() { stop(); }

double SloEngine::extractValue(const MetricsSnapshot& snap,
                               const SloSpec& spec, bool* have) const {
  *have = false;
  switch (spec.kind) {
    case SloKind::kP99LatencyUs: {
      const SummarySample* lat = findSummary(snap, kLatencySummary);
      if (!lat || lat->hist.count == 0) return 0.0;
      *have = true;
      return lat->hist.quantile(0.99) * lat->scale;
    }
    case SloKind::kQueueWaitShare: {
      const SummarySample* lat = findSummary(snap, kLatencySummary);
      const SummarySample* qw = findSummary(snap, kQueueWaitSummary);
      if (!lat || !qw || lat->hist.count == 0) return 0.0;
      // Both summaries record host nanoseconds, so the raw sums divide
      // directly: the share of total packet host time spent queued.
      const double total =
          static_cast<double>(lat->hist.sum) + static_cast<double>(qw->hist.sum);
      *have = true;
      return total > 0 ? static_cast<double>(qw->hist.sum) / total : 0.0;
    }
    case SloKind::kDeadlineMissRate: {
      // Prefer the cell layer's simulated-latency summary when it carries
      // samples; fall back to the farm's host-latency summary (the pre-cell
      // behavior) so farm-only setups keep their deadline SLOs.
      const SummarySample* lat = findSummary(snap, kCellLatencySummary);
      if (!lat || lat->hist.count == 0) lat = findSummary(snap, kLatencySummary);
      if (!lat || lat->hist.count == 0) return 0.0;
      // The deadline is in export units (µs); the histogram records raw
      // units (ns), so divide by the export scale.  The bucketized count is
      // within one bucket width (<=6.25%) of the exact rank.
      const double raw = spec.deadlineUs / lat->scale;
      const u64 missed = lat->hist.countAbove(
          raw >= 0 ? static_cast<u64>(raw) : 0);
      *have = true;
      return static_cast<double>(missed) / static_cast<double>(lat->hist.count);
    }
    case SloKind::kWatchdogEvents: {
      double v = 0;
      *have = findScalar(snap, kHealthEventsCounter, &v);
      return v;
    }
    case SloKind::kDivergences: {
      double v = 0;
      *have = findScalar(snap, kDivergencesCounter, &v);
      return v;
    }
  }
  return 0.0;
}

std::vector<SloStatus> SloEngine::evaluate() {
  // Snapshot FIRST: the registry mutex is taken and released here, before
  // the engine mutex — while the registered adres_slo_* getters take them
  // in the opposite nesting (registry getter -> engine cache).  Keeping the
  // two critical sections disjoint on this side avoids the lock cycle.
  const MetricsSnapshot snap = reg_.snapshot();
  std::vector<SloStatus> out;
  std::vector<SloStatus> onsets;
  BreachHook hook;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (SloStatus& st : statuses_) {
      st.value = extractValue(snap, st.spec, &st.haveValue);
      st.breaching =
          st.haveValue && (st.spec.strict ? st.value >= st.spec.threshold
                                          : st.value > st.spec.threshold);
      st.consecutive = st.breaching ? st.consecutive + 1 : 0;
      const bool wasFired = st.fired;
      st.fired = st.consecutive >= st.spec.forCount;
      if (st.fired && !wasFired) {
        ++st.breaches;
        onsets.push_back(st);
      }
      st.burnRate = st.spec.threshold != 0.0
                        ? st.value / st.spec.threshold
                        : (st.value != 0.0 ? std::numeric_limits<double>::max()
                                           : 0.0);
      ++st.evaluations;
    }
    out = statuses_;
    hook = hook_;
  }
  evals_.fetch_add(1, std::memory_order_relaxed);
  if (hook)
    for (const SloStatus& st : onsets) hook(st);
  return out;
}

std::vector<SloStatus> SloEngine::statuses() const {
  std::lock_guard<std::mutex> lk(mu_);
  return statuses_;
}

void SloEngine::setBreachHook(BreachHook hook) {
  std::lock_guard<std::mutex> lk(mu_);
  hook_ = std::move(hook);
}

void SloEngine::registerMetrics(MetricsRegistry& metricsReg) {
  const auto family = [this](double SloStatus::* field) {
    return [this, field] {
      std::vector<std::pair<Labels, double>> out;
      std::lock_guard<std::mutex> lk(mu_);
      for (const SloStatus& st : statuses_)
        out.push_back({Labels{{"slo", st.spec.name}}, st.*field});
      return out;
    };
  };
  metricsReg.addGaugeFamily("adres_slo_value",
                            "last evaluated value of each SLO",
                            family(&SloStatus::value));
  metricsReg.addGaugeFamily("adres_slo_burn_rate",
                            "SLO value / threshold (>=1 means burning)",
                            family(&SloStatus::burnRate));
  metricsReg.addGaugeFamily(
      "adres_slo_breaching", "1 while the SLO is in the fired breach state",
      [this] {
        std::vector<std::pair<Labels, double>> out;
        std::lock_guard<std::mutex> lk(mu_);
        for (const SloStatus& st : statuses_)
          out.push_back({Labels{{"slo", st.spec.name}}, st.fired ? 1.0 : 0.0});
        return out;
      });
  metricsReg.addCounterFamily(
      "adres_slo_breaches_total", "fired-onset transitions per SLO", [this] {
        std::vector<std::pair<Labels, double>> out;
        std::lock_guard<std::mutex> lk(mu_);
        for (const SloStatus& st : statuses_)
          out.push_back({Labels{{"slo", st.spec.name}},
                         static_cast<double>(st.breaches)});
        return out;
      });
}

void SloEngine::startPeriodic(int periodMs) {
  ADRES_CHECK(periodMs > 0, "SLO evaluation period must be positive");
  stop();  // joins any previous monitor and resets the stop flag below
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = false;
  }
  monitor_ = std::thread([this, periodMs] {
    std::unique_lock<std::mutex> lk(mu_);
    while (!stopping_) {
      if (cv_.wait_for(lk, std::chrono::milliseconds(periodMs),
                       [this] { return stopping_; }))
        break;
      lk.unlock();
      evaluate();
      lk.lock();
    }
  });
}

void SloEngine::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
}

void SloEngine::writeJson(std::ostream& os) const {
  std::vector<SloStatus> sts = statuses();
  os << "{\n  \"schema\": \"adres.slo.v1\",\n  \"evaluations\": "
     << totalEvaluations() << ",\n  \"slos\": [";
  for (std::size_t i = 0; i < sts.size(); ++i) {
    const SloStatus& st = sts[i];
    os << (i ? ",\n" : "\n") << "    {\"name\": \"" << st.spec.name
       << "\", \"spec\": \"" << sloSpecToString(st.spec) << "\", \"metric\": \""
       << sloKindName(st.spec.kind) << "\", \"threshold\": "
       << fmt(st.spec.threshold) << ", \"for\": " << st.spec.forCount
       << ", \"value\": " << fmt(st.value)
       << ", \"have_value\": " << (st.haveValue ? "true" : "false")
       << ", \"breaching\": " << (st.breaching ? "true" : "false")
       << ", \"fired\": " << (st.fired ? "true" : "false")
       << ", \"consecutive\": " << st.consecutive
       << ", \"breaches\": " << st.breaches
       << ", \"burn_rate\": " << fmt(st.burnRate) << '}';
  }
  os << "\n  ]\n}\n";
}

}  // namespace adres::obs
