// Declarative service-level objectives over the metrics registry
// (DESIGN.md §16).
//
// An SloSpec names one farm health dimension — p99 decode latency,
// queue-wait share of packet time, deadline-miss rate, watchdog events,
// divergence count — with a threshold; the SloEngine evaluates every spec
// against a MetricsRegistry snapshot (on demand or on its own periodic
// thread), tracks burn-rate and consecutive-breach state, and exposes the
// result as Prometheus gauge families plus the `/slo` JSON endpoint
// (`adres.slo.v1`).  A breach-onset hook turns an SLO violation into a
// postmortem-bundle trigger.
//
// Spec grammar (parseSloSpecList; ';'-separated list):
//
//   spec   := name ':' metric ['(' number ')'] ('<' | '<=') number ['for' N]
//   metric := p99_latency_us | queue_wait_share |
//             deadline_miss_rate(deadline_us) | watchdog_events | divergences
//
// e.g.  "p99: p99_latency_us < 50000; miss: deadline_miss_rate(20000) <= 0.01;
//        integrity: divergences < 1 for 2"
//
// `for N` arms the breach only after N consecutive breaching evaluations
// (burn-rate style de-flapping); default 1.
//
// deadline_miss_rate reads the cell layer's simulated-latency summary
// (adres_cell_latency_us) whenever it has samples — frame budgets are a
// simulated-time contract — and falls back to the farm host-latency summary
// (adres_farm_latency_host_us) for farm-only setups.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "obs/metrics.hpp"

namespace adres::obs {

enum class SloKind : u8 {
  kP99LatencyUs,      ///< p99 of adres_farm_latency_host_us (µs)
  kQueueWaitShare,    ///< queue-wait time / (queue-wait + decode) time
  kDeadlineMissRate,  ///< fraction of decodes slower than `deadlineUs`
  kWatchdogEvents,    ///< adres_farm_health_events_total
  kDivergences,       ///< adres_farm_divergences_total
};

/// Stable metric token for a kind (the spec-grammar name).
const char* sloKindName(SloKind k);

struct SloSpec {
  std::string name;  ///< label value on the exported adres_slo_* series
  SloKind kind = SloKind::kP99LatencyUs;
  double threshold = 0.0;
  bool strict = true;      ///< true: value must stay < threshold; false: <=
  double deadlineUs = 0;   ///< kDeadlineMissRate argument
  int forCount = 1;        ///< consecutive breaching evals before firing
};

/// Parses one spec / a ';'-separated list.  Throws SimError on malformed
/// input (bad metric token, missing threshold, non-positive `for`).
SloSpec parseSloSpec(const std::string& text);
std::vector<SloSpec> parseSloSpecList(const std::string& text);
/// Canonical round-trippable rendering of a spec.
std::string sloSpecToString(const SloSpec& spec);

struct SloStatus {
  SloSpec spec;
  double value = 0.0;    ///< last evaluated value
  bool haveValue = false;  ///< false until the source series has data
  bool breaching = false;  ///< last evaluation violated the threshold
  bool fired = false;      ///< breaching for >= spec.forCount consecutive evals
  int consecutive = 0;     ///< current breaching streak
  u64 breaches = 0;        ///< fired-onset transitions so far
  /// value / threshold: <1 inside budget, >=1 burning.  0 when the
  /// threshold is 0 and the value is too (an exact "never" objective).
  double burnRate = 0.0;
  u64 evaluations = 0;
};

class SloEngine {
 public:
  /// The registry must outlive the engine (or clear() first).  The specs
  /// are fixed at construction.
  SloEngine(const MetricsRegistry& reg, std::vector<SloSpec> specs);
  ~SloEngine();

  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  /// Evaluates every spec against a fresh registry snapshot.  Takes the
  /// registry snapshot BEFORE the engine mutex, so it may be called
  /// concurrently with metric getters that read the engine's cached state.
  /// Returns the updated statuses.
  std::vector<SloStatus> evaluate();

  /// Last evaluated statuses (cached; empty before the first evaluate()).
  std::vector<SloStatus> statuses() const;

  /// Called once per fired-onset (a spec transitioning to fired), outside
  /// the engine mutex — the postmortem trigger.  Set before traffic.
  using BreachHook = std::function<void(const SloStatus&)>;
  void setBreachHook(BreachHook hook);

  /// Registers adres_slo_value / adres_slo_burn_rate / adres_slo_breaching
  /// gauge families and the adres_slo_breaches_total counter family
  /// (label: slo=<name>) on `metricsReg`.  The getters only read the
  /// engine's cached statuses — they never re-evaluate, so registering on
  /// the same registry the engine snapshots cannot deadlock.
  void registerMetrics(MetricsRegistry& metricsReg);

  /// Spawns a monitor thread calling evaluate() every `periodMs`.
  void startPeriodic(int periodMs);
  /// Stops and joins the monitor.  Idempotent; safe without startPeriodic().
  void stop();

  u64 totalEvaluations() const {
    return evals_.load(std::memory_order_relaxed);
  }

  /// adres.slo.v1: the statuses as JSON (the `/slo` endpoint body).
  void writeJson(std::ostream& os) const;

 private:
  double extractValue(const MetricsSnapshot& snap, const SloSpec& spec,
                      bool* have) const;

  const MetricsRegistry& reg_;
  mutable std::mutex mu_;  ///< guards statuses_, hook_, monitor wakeup
  std::condition_variable cv_;
  std::vector<SloStatus> statuses_;
  BreachHook hook_;
  std::atomic<u64> evals_{0};
  bool stopping_ = false;
  std::thread monitor_;
};

}  // namespace adres::obs
