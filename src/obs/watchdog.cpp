#include "obs/watchdog.hpp"

#include <sstream>

#include "common/check.hpp"

namespace adres::obs {

const char* healthEventKindName(HealthEvent::Kind k) {
  switch (k) {
    case HealthEvent::Kind::kStalled: return "stalled";
    case HealthEvent::Kind::kOverBudget: return "over_budget";
    case HealthEvent::Kind::kBudgetExhausted: return "budget_exhausted";
    case HealthEvent::Kind::kCancelled: return "cancelled";
  }
  return "unknown";
}

WorkerWatchdog::WorkerWatchdog(int numWorkers, WatchdogConfig cfg)
    : cfg_(cfg) {
  ADRES_CHECK(numWorkers >= 1, "watchdog needs at least one worker");
  health_.reserve(static_cast<std::size_t>(numWorkers));
  for (int i = 0; i < numWorkers; ++i)
    health_.push_back(std::make_unique<WorkerHealth>());
}

WorkerWatchdog::~WorkerWatchdog() { stop(); }

void WorkerWatchdog::setEventHook(EventHook hook) {
  std::lock_guard<std::mutex> lk(mu_);
  hook_ = std::move(hook);
}

void WorkerWatchdog::start() {
  if (!cfg_.enabled || cfg_.pollMs <= 0 || monitor_.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = false;
  }
  monitor_ = std::thread([this] { monitorLoop(); });
}

void WorkerWatchdog::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
}

void WorkerWatchdog::noteDecodeEnd(int worker, u64 jobId, StopReason stop,
                                   u64 cycles) {
  if (stop != StopReason::kMaxCycles && stop != StopReason::kCancelled) return;
  HealthEvent ev;
  ev.kind = stop == StopReason::kMaxCycles
                ? HealthEvent::Kind::kBudgetExhausted
                : HealthEvent::Kind::kCancelled;
  ev.worker = worker;
  ev.jobId = jobId;
  ev.cycles = cycles;
  std::ostringstream os;
  os << "worker " << worker << " job " << jobId << " stopped ("
     << stopReasonName(stop) << ") after " << cycles << " cycles";
  ev.detail = os.str();
  emit(std::move(ev));
}

std::vector<HealthEvent> WorkerWatchdog::events() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_;
}

void WorkerWatchdog::emit(HealthEvent ev) {
  std::lock_guard<std::mutex> lk(mu_);
  events_.push_back(ev);
  eventCount_.fetch_add(1, std::memory_order_relaxed);
  if (hook_) hook_(events_.back());
}

void WorkerWatchdog::monitorLoop() {
  std::vector<Observed> obs(health_.size());
  const auto start = std::chrono::steady_clock::now();
  for (auto& o : obs) o.lastProgress = start;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (cv_.wait_for(lk, std::chrono::milliseconds(cfg_.pollMs),
                       [&] { return stopping_; }))
        return;
    }
    pollOnce(obs, std::chrono::steady_clock::now());
  }
}

void WorkerWatchdog::pollOnce(std::vector<Observed>& obs,
                              std::chrono::steady_clock::time_point now) {
  for (std::size_t i = 0; i < health_.size(); ++i) {
    WorkerHealth& h = *health_[i];
    Observed& o = obs[i];
    if (h.state.load(std::memory_order_acquire) !=
        static_cast<u32>(WorkerState::kBusy)) {
      // Idle/done workers are never stalled; re-arm for the next job.
      o.lastJob = WorkerHealth::kNoJob;
      o.lastProgress = now;
      o.stallReported = false;
      o.budgetReported = false;
      continue;
    }
    const u64 job = h.currentJob.load(std::memory_order_relaxed);
    const u64 beat = h.heartbeatCycles.load(std::memory_order_relaxed);
    if (job != o.lastJob) {
      o.lastJob = job;
      o.lastBeat = beat;
      o.lastProgress = now;
      o.stallReported = false;
      o.budgetReported = false;
    } else if (beat != o.lastBeat) {
      o.lastBeat = beat;
      o.lastProgress = now;
      o.stallReported = false;
    }
    const double idleMs =
        std::chrono::duration<double, std::milli>(now - o.lastProgress).count();
    if (!o.stallReported && cfg_.stallTimeoutMs > 0 &&
        idleMs >= cfg_.stallTimeoutMs) {
      o.stallReported = true;
      HealthEvent ev;
      ev.kind = HealthEvent::Kind::kStalled;
      ev.worker = static_cast<int>(i);
      ev.jobId = job;
      ev.cycles = beat;
      ev.sinceMs = idleMs;
      std::ostringstream os;
      os << "worker " << i << " job " << job << " made no progress for "
         << static_cast<long>(idleMs) << " ms (heartbeat " << beat
         << " cycles)" << (cfg_.cancelStalled ? "; cancelling" : "");
      ev.detail = os.str();
      emit(std::move(ev));
      if (cfg_.cancelStalled) h.cancel.store(1, std::memory_order_relaxed);
    }
    if (!o.budgetReported && cfg_.softBudgetCycles > 0 &&
        beat > cfg_.softBudgetCycles) {
      o.budgetReported = true;
      HealthEvent ev;
      ev.kind = HealthEvent::Kind::kOverBudget;
      ev.worker = static_cast<int>(i);
      ev.jobId = job;
      ev.cycles = beat;
      std::ostringstream os;
      os << "worker " << i << " job " << job << " passed the soft budget ("
         << beat << " > " << cfg_.softBudgetCycles << " cycles)";
      ev.detail = os.str();
      emit(std::move(ev));
    }
  }
}

}  // namespace adres::obs
