// WorkerWatchdog: health supervision for a pool of simulation workers.
//
// Each worker owns a `WorkerHealth` record of lock-free atomics: the decode
// heartbeat (simulated-cycle counter published by the sliced modem run, see
// RxRunOptions::progressCycles), the current job, a coarse state, and a
// cancel flag the run loop polls.  A monitor thread samples the records
// every pollMs and turns anomalies into structured `HealthEvent`s instead
// of silent hangs:
//
//   kStalled          busy worker whose heartbeat stopped advancing for
//                     stallTimeoutMs (optionally auto-cancelled so the farm
//                     can finish and report the packet with
//                     StopReason::kCancelled)
//   kOverBudget       a decode's cycle count crossed softBudgetCycles while
//                     still running (early warning, decode continues)
//   kBudgetExhausted  a decode ended with StopReason::kMaxCycles
//   kCancelled        a decode ended with StopReason::kCancelled
//
// Events are collected under a mutex (events() copies them out) and
// mirrored to an optional hook; eventCount() is lock-free for metrics.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "core/processor.hpp"

namespace adres::obs {

struct WatchdogConfig {
  bool enabled = true;
  int pollMs = 100;            ///< monitor sampling period
  int stallTimeoutMs = 5000;   ///< busy + no heartbeat advance -> stalled
  u64 softBudgetCycles = 0;    ///< warn when a decode crosses this (0 = off)
  bool cancelStalled = false;  ///< set the stalled worker's cancel flag
};

enum class WorkerState : u32 { kIdle = 0, kBusy = 1, kDone = 2 };

/// Shared per-worker record: written by the worker (and the watchdog's
/// cancel), read by the monitor and the metrics scraper.
struct WorkerHealth {
  static constexpr u64 kNoJob = ~0ull;

  std::atomic<u64> heartbeatCycles{0};  ///< sim cycles of the current decode
  std::atomic<u64> currentJob{kNoJob};
  std::atomic<u32> state{static_cast<u32>(WorkerState::kIdle)};
  std::atomic<u32> cancel{0};  ///< polled by the sliced run; non-zero aborts

  void beginJob(u64 jobId) {
    cancel.store(0, std::memory_order_relaxed);
    heartbeatCycles.store(0, std::memory_order_relaxed);
    currentJob.store(jobId, std::memory_order_relaxed);
    state.store(static_cast<u32>(WorkerState::kBusy),
                std::memory_order_release);
  }
  void endJob() {
    state.store(static_cast<u32>(WorkerState::kIdle),
                std::memory_order_release);
    currentJob.store(kNoJob, std::memory_order_relaxed);
  }
};

struct HealthEvent {
  enum class Kind { kStalled, kOverBudget, kBudgetExhausted, kCancelled };

  Kind kind = Kind::kStalled;
  int worker = -1;
  u64 jobId = WorkerHealth::kNoJob;
  u64 cycles = 0;       ///< heartbeat / final cycle count at detection
  double sinceMs = 0;   ///< ms without progress (kStalled only)
  std::string detail;   ///< human-readable summary
};

/// Stable lower_snake label for an event kind (metrics, logs).
const char* healthEventKindName(HealthEvent::Kind k);

class WorkerWatchdog {
 public:
  using EventHook = std::function<void(const HealthEvent&)>;

  /// Creates the health records; the monitor thread only starts with
  /// start() (and only when cfg.enabled && pollMs > 0).
  WorkerWatchdog(int numWorkers, WatchdogConfig cfg);
  ~WorkerWatchdog();

  WorkerWatchdog(const WorkerWatchdog&) = delete;
  WorkerWatchdog& operator=(const WorkerWatchdog&) = delete;

  WorkerHealth& health(int worker) { return *health_[static_cast<std::size_t>(worker)]; }
  const WorkerHealth& health(int worker) const { return *health_[static_cast<std::size_t>(worker)]; }
  int numWorkers() const { return static_cast<int>(health_.size()); }
  const WatchdogConfig& config() const { return cfg_; }

  /// Mirrors every new event to `hook` (called with the event mutex held —
  /// keep it cheap).  Set before start().
  void setEventHook(EventHook hook);

  void start();
  /// Stops and joins the monitor.  Idempotent; safe without start().
  void stop();

  /// Worker-side classification of a finished decode: emits
  /// kBudgetExhausted / kCancelled events.  Thread-safe.
  void noteDecodeEnd(int worker, u64 jobId, StopReason stop, u64 cycles);

  std::vector<HealthEvent> events() const;
  u64 eventCount() const { return eventCount_.load(std::memory_order_relaxed); }

 private:
  struct Observed {
    u64 lastBeat = 0;
    u64 lastJob = WorkerHealth::kNoJob;
    std::chrono::steady_clock::time_point lastProgress{};
    bool stallReported = false;
    bool budgetReported = false;
  };

  void monitorLoop();
  void pollOnce(std::vector<Observed>& obs,
                std::chrono::steady_clock::time_point now);
  void emit(HealthEvent ev);

  WatchdogConfig cfg_;
  std::vector<std::unique_ptr<WorkerHealth>> health_;

  mutable std::mutex mu_;  ///< guards events_, hook_ and monitor wakeup
  std::condition_variable cv_;
  std::vector<HealthEvent> events_;
  EventHook hook_;
  std::atomic<u64> eventCount_{0};
  bool stopping_ = false;
  std::thread monitor_;
};

}  // namespace adres::obs
