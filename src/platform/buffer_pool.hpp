// BufferPool<T>: a mutex-guarded LIFO of recycled std::vector<T> buffers —
// the farm's antidote to per-packet heap traffic.  Payload buffers (rx
// waveforms, decoded bit vectors) are acquired from the pool (reusing the
// capacity of a previously released buffer when one is available), travel
// through submit → queue → worker → outcome by move, and return via
// release() once the consumer is done.  LIFO order keeps the hottest
// buffer — the one most recently touched, still warm in cache — first out.
//
// The pool never shrinks and never frees until destruction; steady state is
// a closed loop of a bounded number of buffers (queue capacity + workers +
// in-flight outcomes), so sustained operation performs no allocation.
#pragma once

#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace adres::platform {

template <typename T>
class BufferPool {
 public:
  /// A recycled buffer (cleared, capacity kept) or a fresh empty one.
  std::vector<T> acquire() {
    std::lock_guard<std::mutex> lk(mu_);
    if (free_.empty()) return {};
    std::vector<T> out = std::move(free_.back());
    free_.pop_back();
    out.clear();
    return out;
  }

  /// Returns a buffer's storage to the pool.  Empty vectors (moved-from or
  /// never filled) carry no capacity worth keeping and are dropped.
  void release(std::vector<T>&& buf) {
    if (buf.capacity() == 0) return;
    std::lock_guard<std::mutex> lk(mu_);
    free_.push_back(std::move(buf));
  }

  /// Buffers currently resting in the pool (telemetry/tests).
  std::size_t idle() const {
    std::lock_guard<std::mutex> lk(mu_);
    return free_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::vector<T>> free_;
};

}  // namespace adres::platform
