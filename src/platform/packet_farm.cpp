#include "platform/packet_farm.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "cga/exec_tier.hpp"
#include "power/energy_model.hpp"
#include "trace/counters.hpp"

namespace adres::platform {
namespace {

/// A worker's audit call and the sentinel's bundle closure run on the same
/// thread (the closure fires inside audit()), so the span tree of the packet
/// under audit rides across the obs-layer boundary in a thread-local.
thread_local const trace::PacketSpans* tlAuditSpans = nullptr;

obs::ResultRecord toRecord(const obs::DecodeSummary& s) {
  obs::ResultRecord r;
  r.valid = true;
  r.detected = s.detected;
  r.ltfStart = s.ltfStart;
  r.stop = s.stop;
  r.cycles = s.cycles;
  r.totalOps = s.totalOps;
  r.bits = s.bits;
  r.regions = s.regions;
  return r;
}

}  // namespace

void FarmStats::writeJson(std::ostream& os) const {
  trace::writeCountersJson(os, counters, groups, workers);
}

PacketFarm::PacketFarm(FarmConfig cfg)
    : cfg_(std::move(cfg)), queue_(cfg_.queueCapacity) {
  ADRES_CHECK(cfg_.numWorkers >= 1, "farm needs at least one worker");
  // Per-worker sinks would interleave into one file; aggregates come from
  // stats() instead.
  cfg_.run.trace = nullptr;
  cfg_.run.countersJsonPath.clear();
  cfg_.run.progressCycles = nullptr;
  cfg_.run.cancel = nullptr;
  cfg_.run.regionLog = nullptr;  // per-worker logs are wired in workerMain
  if (cfg_.exemplars.enabled)
    exemplars_ = std::make_unique<obs::ExemplarStore>(cfg_.exemplars);
  // The bundle store exists for explicit postmortem capture AND for
  // sentinel-only setups (divergence bundles go through the same store).
  if (cfg_.postmortem.enabled ||
      (cfg_.sentinel.enabled && cfg_.sentinel.bundleOnDivergence)) {
    postmortems_ = std::make_unique<obs::PostmortemWriter>(cfg_.postmortem);
  }
  workerStats_.resize(static_cast<std::size_t>(cfg_.numWorkers));
  watchdog_ = std::make_unique<obs::WorkerWatchdog>(cfg_.numWorkers,
                                                    cfg_.watchdog);
  telemetry_.reserve(static_cast<std::size_t>(cfg_.numWorkers));
  for (int i = 0; i < cfg_.numWorkers; ++i)
    telemetry_.push_back(std::make_unique<WorkerTelemetry>());
  startTime_ = std::chrono::steady_clock::now();
  // Build (or fetch) the shared program before spawning so workers never
  // race on the expensive first build and startup cost is paid once.
  (void)modemProgramFor(cfg_.modem);
  if (cfg_.sentinel.enabled) {
    shadowModem_ = modemProgramFor(cfg_.modem);
    shadowProc_ = std::make_unique<Processor>();
    sentinel_ = std::make_unique<obs::DivergenceSentinel>(
        cfg_.sentinel,
        [this](const std::array<std::vector<cint16>, 2>& rx,
               std::vector<TraceEvent>* ringOut) {
          return shadowDecode(rx, ringOut);
        });
    if (cfg_.sentinel.bundleOnDivergence && postmortems_) {
      sentinel_->setBundleFn(
          [this](const obs::IntegrityEvent& ev,
                 const std::array<std::vector<cint16>, 2>& rx,
                 const obs::DecodeSummary& primary,
                 const obs::DecodeSummary& shadow,
                 const std::vector<TraceEvent>& ring) {
            obs::PostmortemBundle b = bundleSkeleton("divergence", ev.detail);
            b.jobId = ev.jobId;
            b.tag = ev.tag;
            b.worker = ev.worker;
            b.traceId = ev.traceId;
            b.shadowTier = ev.shadowTier;
            b.rx = rx;
            b.primary = toRecord(primary);
            b.shadow = toRecord(shadow);
            if (tlAuditSpans) b.spans = *tlAuditSpans;
            b.ring = ring;
            b.ringAccepted = shadowRingAccepted_;
            b.ringDropped = shadowRingDropped_;
            b.ringCapacity = cfg_.sentinel.ringCapacity;
            return postmortems_->write(b);
          });
    }
  }
  watchdog_->start();
  threads_.reserve(static_cast<std::size_t>(cfg_.numWorkers));
  for (int i = 0; i < cfg_.numWorkers; ++i)
    threads_.emplace_back([this, i] { workerMain(i); });
}

PacketFarm::~PacketFarm() { (void)finish(); }

void PacketFarm::submit(RxJob job) {
  ADRES_CHECK(!finished_, "submit after finish()");
  // Advance the id watermark to max(nextId_, job.id + 1); CAS loop because
  // sharded producers submit concurrently with explicit ids.
  u64 seen = nextId_.load(std::memory_order_relaxed);
  while (seen < job.id + 1 &&
         !nextId_.compare_exchange_weak(seen, job.id + 1,
                                        std::memory_order_relaxed)) {
  }
  job.enqueueUs = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - startTime_)
                      .count();
  const bool accepted = queue_.push(std::move(job));
  ADRES_CHECK(accepted, "queue closed while submitting");
  submitted_.fetch_add(1, std::memory_order_relaxed);
}

u64 PacketFarm::submit(std::array<std::vector<cint16>, 2> rx) {
  RxJob job;
  job.id = nextId_.fetch_add(1, std::memory_order_relaxed);
  job.rx = std::move(rx);
  const u64 id = job.id;
  submit(std::move(job));
  return id;
}

std::vector<RxOutcome> PacketFarm::collect() {
  std::vector<RxOutcome> out;
  collectInto(out);
  return out;
}

void PacketFarm::collectInto(std::vector<RxOutcome>& out) {
  ADRES_CHECK(!finished_, "collect after finish()");
  out.clear();
  // Only the submitting side calls collect, after its submits, so
  // submitted_ is stable here.
  const u64 want = submitted_.load(std::memory_order_relaxed) - collected_;
  std::unique_lock<std::mutex> lk(mu_);
  outcomeCv_.wait(lk, [&] { return outcomes_.size() >= want; });
  collected_ += outcomes_.size();
  // Swap storage instead of moving it away: the caller's previous-round
  // capacity becomes the farm's next outcome buffer (closed loop, no
  // steady-state growth allocations).
  std::swap(out, outcomes_);
  lk.unlock();
  if (cfg_.ordered) {
    std::sort(out.begin(), out.end(),
              [](const RxOutcome& a, const RxOutcome& b) { return a.id < b.id; });
  }
}

void PacketFarm::recycleOutcomes(std::vector<RxOutcome>& outs) {
  for (RxOutcome& o : outs) bitPool_.release(std::move(o.result.bits));
  outs.clear();
}

std::vector<RxOutcome> PacketFarm::finish() {
  if (finished_) return {};
  finished_ = true;
  queue_.close();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  watchdog_->stop();  // after the join: no more heartbeats to observe

  stats_ = FarmStats{};
  stats_.workers = cfg_.numWorkers;
  SessionStats merged;
  for (const SessionStats& s : workerStats_) merged.merge(s);
  stats_.packets = merged.packets;
  stats_.counters = std::move(merged.counters);
  stats_.groups = std::move(merged.groups);
  stats_.latencyNs = latencySnapshot();
  stats_.packetCycles = cycleSnapshot();
  stats_.queueWaitNs = queueWaitSnapshot();
  stats_.submitBackpressureNs = queue_.fullWaitNs();
  stats_.profile = std::move(merged.profile);

  if (cfg_.ordered) {
    std::sort(outcomes_.begin(), outcomes_.end(),
              [](const RxOutcome& a, const RxOutcome& b) { return a.id < b.id; });
  }
  return std::move(outcomes_);
}

u64 PacketFarm::packetsDone() const {
  u64 n = 0;
  for (const auto& t : telemetry_)
    n += t->packetsDone.load(std::memory_order_relaxed);
  return n;
}

obs::HistogramSnapshot PacketFarm::latencySnapshot() const {
  obs::HistogramSnapshot merged;
  for (const auto& t : telemetry_) merged.merge(t->latencyNs.snapshot());
  return merged;
}

obs::HistogramSnapshot PacketFarm::cycleSnapshot() const {
  obs::HistogramSnapshot merged;
  for (const auto& t : telemetry_) merged.merge(t->packetCycles.snapshot());
  return merged;
}

obs::HistogramSnapshot PacketFarm::queueWaitSnapshot() const {
  obs::HistogramSnapshot merged;
  for (const auto& t : telemetry_) merged.merge(t->queueWaitNs.snapshot());
  return merged;
}

PacketFarm::SlowestPacket PacketFarm::slowestPacket() const {
  std::lock_guard<std::mutex> lk(slowMu_);
  return slowest_;
}

obs::DecodeSummary PacketFarm::shadowDecode(
    const std::array<std::vector<cint16>, 2>& rx,
    std::vector<TraceEvent>* ringOut) {
  sdr::RxRunOptions opts;
  opts.maxCycles = cfg_.run.maxCycles;
  opts.exec.tier = cfg_.sentinel.shadowTier;
  opts.exec.plans = shadowModem_->plansFor(cfg_.sentinel.shadowTier);
  opts.exec.warmReload = true;
  std::unique_ptr<RingBufferSink> ring;
  if (ringOut) {
    ring = std::make_unique<RingBufferSink>(cfg_.sentinel.ringCapacity);
    opts.trace = ring.get();
  }
  sdr::ProcessorRxResult res;
  sdr::runModemOnProcessor(*shadowProc_, *shadowModem_, rx, opts, res);
  obs::DecodeSummary s;
  s.detected = res.detected;
  s.ltfStart = res.ltfStart;
  s.stop = stopReasonName(res.stop);
  s.cycles = res.cycles;
  s.totalOps = shadowProc_->activity().totalOps();
  s.bits = std::move(res.bits);
  s.regions = shadowProc_->profiles();
  if (ringOut) {
    *ringOut = ring->events();
    shadowRingAccepted_ = ring->accepted();
    shadowRingDropped_ = ring->dropped();
  }
  return s;
}

obs::PostmortemBundle PacketFarm::bundleSkeleton(
    const std::string& trigger, const std::string& reason) const {
  obs::PostmortemBundle b;
  b.trigger = trigger;
  b.reason = reason;
  b.modulation = static_cast<int>(cfg_.modem.mod);
  b.numSymbols = cfg_.modem.numSymbols;
  b.execTier = execTierName(cfg_.run.exec.tier);
  b.maxCycles = cfg_.run.maxCycles;
  b.faultInjectSeed = cfg_.run.faultInjectBitFlipSeed;
  return b;
}

std::string PacketFarm::capturePostmortem(const std::string& trigger,
                                          const std::string& reason) {
  if (!postmortems_ || !cfg_.postmortem.enabled) return "";
  SlowestPacket slow;
  {
    std::lock_guard<std::mutex> lk(slowMu_);
    slow = slowest_;
  }
  if (slow.rx[0].empty()) return "";  // no packet retained yet
  obs::PostmortemBundle b = bundleSkeleton(trigger, reason);
  b.jobId = slow.id;
  b.tag = slow.tag;
  b.worker = slow.worker;
  b.traceId = slow.traceId;
  b.rx = slow.rx;
  b.primary = toRecord(slow.summary);
  b.spans = slow.spans;
  return postmortems_->write(b);
}

bool PacketFarm::ready(std::string* reason) const {
  const int warm = workersReady_.load(std::memory_order_acquire);
  if (warm >= cfg_.numWorkers) return true;
  if (reason) {
    *reason = std::to_string(warm) + "/" + std::to_string(cfg_.numWorkers) +
              " workers warm";
  }
  return false;
}

std::map<std::string, u64> PacketFarm::liveCounters() const {
  std::map<std::string, u64> out;
  for (const auto& t : telemetry_) {
    if (const std::shared_ptr<const SessionStats> s = t->published()) {
      for (const auto& [name, value] : s->counters) out[name] += value;
    }
  }
  return out;
}

void PacketFarm::registerMetrics(obs::MetricsRegistry& reg) const {
  reg.addGauge("adres_farm_workers", "configured worker count",
               [this] { return static_cast<double>(cfg_.numWorkers); });
  reg.addGauge("adres_farm_queue_depth", "jobs waiting in the bounded queue",
               [this] { return static_cast<double>(queueDepth()); });
  reg.addGauge("adres_farm_queue_capacity", "bounded queue capacity",
               [this] { return static_cast<double>(queue_.capacity()); });
  reg.addCounter("adres_farm_packets_submitted_total", "jobs accepted",
                 [this] { return static_cast<double>(submitted()); });
  reg.addCounter("adres_farm_packets_done_total", "decodes completed",
                 [this] { return static_cast<double>(packetsDone()); });
  reg.addCounter("adres_farm_submit_backpressure_us_total",
                 "host µs submitters spent blocked on a full queue",
                 [this] {
                   return static_cast<double>(submitBackpressureNs()) * 1e-3;
                 });
  reg.addCounter("adres_farm_health_events_total",
                 "watchdog health events (stalls, budget overruns)",
                 [this] { return static_cast<double>(watchdog_->eventCount()); });
  // Self-auditing series.  The sentinel/divergence counters are registered
  // unconditionally (0 with the sentinel off) so SLO specs and dashboards
  // can rely on the series existing.
  reg.addCounter("adres_farm_sentinel_sampled_total",
                 "packets shadow-decoded by the divergence sentinel",
                 [this] {
                   return sentinel_
                              ? static_cast<double>(sentinel_->sampled())
                              : 0.0;
                 });
  reg.addCounter("adres_farm_divergences_total",
                 "primary/shadow decode divergences detected by the sentinel",
                 [this] { return static_cast<double>(divergences()); });
  reg.addCounter("adres_farm_postmortem_bundles_total",
                 "adres.postmortem.v1 bundles written",
                 [this] {
                   return postmortems_
                              ? static_cast<double>(postmortems_->written())
                              : 0.0;
                 });
  reg.addGauge("adres_farm_ready",
               "1 once every worker is warm (the /readyz source)",
               [this] { return ready() ? 1.0 : 0.0; });
  reg.addGauge("adres_farm_uptime_seconds", "host seconds since farm start",
               [this] {
                 return std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - startTime_)
                     .count();
               });
  for (int w = 0; w < cfg_.numWorkers; ++w) {
    const obs::Labels labels{{"worker", std::to_string(w)}};
    const WorkerTelemetry* t = telemetry_[static_cast<std::size_t>(w)].get();
    const obs::WorkerHealth* h = &watchdog_->health(w);
    reg.addCounter("adres_farm_worker_packets_total", "decodes by worker",
                   [t] {
                     return static_cast<double>(
                         t->packetsDone.load(std::memory_order_relaxed));
                   },
                   labels);
    reg.addCounter("adres_farm_worker_sim_cycles_total",
                   "simulated cycles decoded by worker",
                   [t] {
                     return static_cast<double>(
                         t->simCycles.load(std::memory_order_relaxed));
                   },
                   labels);
    reg.addGauge("adres_farm_worker_utilization",
                 "fraction of farm uptime spent decoding",
                 [this, t] {
                   const double up =
                       std::chrono::duration<double, std::nano>(
                           std::chrono::steady_clock::now() - startTime_)
                           .count();
                   return up > 0 ? static_cast<double>(t->busyNs.load(
                                       std::memory_order_relaxed)) /
                                       up
                                 : 0.0;
                 },
                 labels);
    reg.addGauge("adres_farm_worker_ipc",
                 "simulated ops per simulated cycle across worker decodes",
                 [t] {
                   const double cycles = static_cast<double>(
                       t->simCycles.load(std::memory_order_relaxed));
                   return cycles > 0
                              ? static_cast<double>(t->simOps.load(
                                    std::memory_order_relaxed)) /
                                    cycles
                              : 0.0;
                 },
                 labels);
    reg.addGauge("adres_farm_worker_state",
                 "0 = idle, 1 = busy, 2 = done",
                 [h] {
                   return static_cast<double>(
                       h->state.load(std::memory_order_relaxed));
                 },
                 labels);
    reg.addGauge("adres_farm_worker_heartbeat_cycles",
                 "sim cycles of the in-flight decode (watchdog heartbeat)",
                 [h] {
                   return static_cast<double>(
                       h->heartbeatCycles.load(std::memory_order_relaxed));
                 },
                 labels);
  }
  reg.addSummary("adres_farm_latency_host_us",
                 "host wall-clock decode latency (merged across workers)",
                 1e-3 /* ns -> us */, [this] { return latencySnapshot(); });
  reg.addSummary("adres_farm_packet_cycles",
                 "simulated cycles per decoded packet (merged across workers)",
                 1.0, [this] { return cycleSnapshot(); });
  reg.addSummary("adres_farm_queue_wait_us",
                 "host submit-to-dispatch queue wait (merged across workers)",
                 1e-3 /* ns -> us */, [this] { return queueWaitSnapshot(); });
  // Native histogram with tail exemplars: bucket lines carry the trace id of
  // a captured slow packet (OpenMetrics `# {trace_id="..."} v` suffix).
  reg.addHistogram(
      "adres_farm_decode_latency_us",
      "host decode latency histogram with tail-latency exemplars",
      1e-3 /* ns -> us */, [this] { return latencySnapshot(); },
      [this] {
        std::vector<obs::MetricExemplar> out;
        if (exemplars_) {
          for (const obs::ExemplarRecord& r : exemplars_->records())
            out.push_back({r.latencyUs, trace::traceIdHex(r.traceId)});
        }
        return out;
      });
  if (exemplars_) {
    reg.addCounter("adres_farm_exemplars_captured_total",
                   "tail-latency exemplars captured (including evicted)",
                   [this] {
                     return static_cast<double>(exemplars_->captured());
                   });
  }
  reg.addGauge("adres_farm_slowest_packet_id", "job id of the slowest decode",
               [this] { return static_cast<double>(slowestPacket().id); });
  reg.addGauge("adres_farm_slowest_packet_worker",
               "worker index of the slowest decode", [this] {
                 return static_cast<double>(slowestPacket().worker);
               });
  reg.addGauge("adres_farm_slowest_packet_latency_us",
               "host latency of the slowest decode",
               [this] { return slowestPacket().latencyUs; });
  reg.addGauge("adres_farm_slowest_packet_queue_wait_us",
               "queue wait of the slowest decode",
               [this] { return slowestPacket().queueWaitUs; });
  reg.addGauge("adres_farm_slowest_packet_cycles",
               "simulated cycles of the slowest decode", [this] {
                 return static_cast<double>(slowestPacket().cycles);
               });
  // Region-level breakdown of the slowest packet (needs span recording).
  reg.addGaugeFamily(
      "adres_farm_slowest_packet_region_cycles",
      "per-region simulated cycles of the slowest decode", [this] {
        const SlowestPacket slow = slowestPacket();
        std::map<std::string, double> byRegion;  // re-entered regions sum
        for (const trace::Span& s : slow.spans.spans) {
          if (s.kind == trace::SpanKind::kRegion)
            byRegion[s.name] += static_cast<double>(s.cycles);
        }
        std::vector<std::pair<obs::Labels, double>> out;
        for (const auto& [name, cycles] : byRegion)
          out.push_back({obs::Labels{{"region", name}}, cycles});
        return out;
      });
  // Farm-wide sim counter totals (the stable adres.counters.v1 key set) as
  // one labelled family, summed live from each worker's last published
  // session snapshot.
  reg.addCounterFamily(
      "adres_sim_counter", "farm-wide simulator counter totals", [this] {
        std::vector<std::pair<obs::Labels, double>> out;
        for (const auto& [name, value] : liveCounters())
          out.push_back(
              {obs::Labels{{"name", name}}, static_cast<double>(value)});
        return out;
      });
}

void PacketFarm::workerMain(int idx) {
  using Clock = std::chrono::steady_clock;
  obs::WorkerHealth& health = watchdog_->health(idx);
  WorkerTelemetry& tele = *telemetry_[static_cast<std::size_t>(idx)];
  sdr::RxRunOptions opts = cfg_.run;
  if (cfg_.watchdog.enabled) {
    opts.progressCycles = &health.heartbeatCycles;
    opts.cancel = &health.cancel;
  }
  // Observability attachments.  The region log and kernel profiler keep the
  // CGA fast path; the exemplar flight recorder is a real TraceSink and is
  // only attached when exemplar capture was requested.
  const bool wantSpans = cfg_.spans || cfg_.exemplars.enabled;
  std::vector<RegionSpan> regionLog;
  if (wantSpans) opts.regionLog = &regionLog;
  opts.profile = cfg_.kernelProfile;
  std::unique_ptr<RingBufferSink> ring;
  if (cfg_.exemplars.enabled) {
    ring = std::make_unique<RingBufferSink>(cfg_.exemplars.ringCapacity);
    opts.trace = ring.get();
  }
  RxSession session(cfg_.modem, opts);
  // Session built: program fetched from the cache, plans resolved — this
  // worker can take traffic (the /readyz source).
  workersReady_.fetch_add(1, std::memory_order_release);
  const auto epochUs = [this] {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - startTime_)
        .count();
  };
  u64 decoded = 0;
  while (std::optional<RxJob> job = queue_.pop()) {
    health.beginJob(job->id);
    const double dispatchUs = epochUs();
    if (cfg_.preDecodeHook) cfg_.preDecodeHook(idx, *job);
    regionLog.clear();
    if (ring) ring->clear();
    RxOutcome out;
    out.id = job->id;
    out.worker = idx;
    out.result.bits = bitPool_.acquire();  // recycled decoded-bit capacity
    const double decodeStartUs = epochUs();
    const auto t0 = Clock::now();
    session.decodeInto(job->rx, out.result, job->maxCycles);
    const double ns =
        std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
    const double decodeEndUs = decodeStartUs + ns / 1000.0;
    out.hostUs = ns / 1000.0;
    out.avgPowerMw = power::averageActiveMw(session.processor());
    out.traceId = trace::packetTraceId(job->id, job->tag);
    out.queueWaitUs = std::max(0.0, dispatchUs - job->enqueueUs);
    // The rx payloads are dead once the decode's DMA has read them — UNLESS
    // the self-auditing layer still needs them (sentinel shadow decode,
    // failure bundle, slowest-packet retention).  The common path releases
    // here so the producer recycle loop keeps its allocation-free timing.
    const bool failedStop = out.result.stop != StopReason::kHalt;
    const bool auditThis = sentinel_ && sentinel_->shouldSample(out.traceId);
    const bool retainPayload =
        auditThis ||
        (postmortems_ && cfg_.postmortem.enabled) ||
        (postmortems_ && failedStop);
    if (!retainPayload) {
      samplePool_.release(std::move(job->rx[0]));
      samplePool_.release(std::move(job->rx[1]));
    }

    tele.packetsDone.fetch_add(1, std::memory_order_relaxed);
    tele.simCycles.fetch_add(out.result.cycles, std::memory_order_relaxed);
    tele.simOps.fetch_add(session.processor().activity().totalOps(),
                          std::memory_order_relaxed);
    tele.busyNs.fetch_add(static_cast<u64>(ns), std::memory_order_relaxed);
    tele.latencyNs.record(static_cast<u64>(ns));
    tele.packetCycles.record(out.result.cycles);
    tele.queueWaitNs.record(static_cast<u64>(out.queueWaitUs * 1000.0));
    // Publishing copies the session's stat maps — throttled off the
    // per-packet path (final totals merge exactly at finish()).
    ++decoded;
    if (cfg_.statsPublishInterval != 0 &&
        decoded % cfg_.statsPublishInterval == 0) {
      tele.setPublished(std::make_shared<const SessionStats>(session.stats()));
    }

    trace::PacketSpans spans;
    if (wantSpans) {
      spans = trace::buildPacketSpans(
          job->id, job->tag, idx, job->enqueueUs, dispatchUs, decodeStartUs,
          decodeEndUs, out.result.cycles, regionLog,
          session.modem().program.regionNames);
    }
    if (exemplars_) {
      exemplars_->maybeCapture(spans, ring->events(), ring->accepted(),
                               ring->dropped(), ring->capacity(), out.hostUs,
                               out.queueWaitUs, out.result.cycles,
                               latencySnapshot());
    }
    // Self-auditing: summarize the primary decode once for whichever of the
    // sentinel audit / failure bundle / slowest-packet retention needs it.
    obs::DecodeSummary primary;
    if (retainPayload) {
      primary.detected = out.result.detected;
      primary.ltfStart = out.result.ltfStart;
      primary.stop = stopReasonName(out.result.stop);
      primary.cycles = out.result.cycles;
      primary.totalOps = session.processor().activity().totalOps();
      primary.bits = out.result.bits;
      primary.regions = session.processor().profiles();
    }
    if (auditThis) {
      tlAuditSpans = &spans;  // rides into the bundle closure (same thread)
      (void)sentinel_->audit(job->id, job->tag, idx, out.traceId, job->rx,
                             primary);
      tlAuditSpans = nullptr;
    }
    if (postmortems_ && failedStop) {
      obs::PostmortemBundle b = bundleSkeleton(
          "watchdog", std::string("decode stopped without halting (") +
                          primary.stop + ")");
      b.jobId = job->id;
      b.tag = job->tag;
      b.worker = idx;
      b.traceId = out.traceId;
      b.rx = job->rx;
      b.primary = toRecord(primary);
      b.spans = spans;
      (void)postmortems_->write(b);
    }
    {
      std::lock_guard<std::mutex> lk(slowMu_);
      if (out.hostUs > slowest_.latencyUs) {
        slowest_.id = out.id;
        slowest_.tag = job->tag;
        slowest_.traceId = out.traceId;
        slowest_.worker = idx;
        slowest_.latencyUs = out.hostUs;
        slowest_.queueWaitUs = out.queueWaitUs;
        slowest_.cycles = out.result.cycles;
        slowest_.spans = spans;
        if (postmortems_ && cfg_.postmortem.enabled) {
          slowest_.rx = job->rx;  // payload copy for capturePostmortem()
          slowest_.summary = primary;
        } else {
          slowest_.rx = {};
          slowest_.summary = {};
        }
      }
    }
    if (retainPayload) {
      samplePool_.release(std::move(job->rx[0]));
      samplePool_.release(std::move(job->rx[1]));
    }
    if (cfg_.spans) out.spans = std::move(spans);

    watchdog_->noteDecodeEnd(idx, job->id, out.result.stop, out.result.cycles);
    health.endJob();

    {
      std::lock_guard<std::mutex> lk(mu_);
      outcomes_.push_back(std::move(out));
    }
    outcomeCv_.notify_all();
  }
  health.state.store(static_cast<u32>(obs::WorkerState::kDone),
                     std::memory_order_release);
  // Final publish so live readers (metrics scrapes after the drain, the
  // post-run exposition check) converge on the exact totals.
  tele.setPublished(std::make_shared<const SessionStats>(session.stats()));
  std::lock_guard<std::mutex> lk(mu_);
  workerStats_[static_cast<std::size_t>(idx)] = session.stats();
}

}  // namespace adres::platform
