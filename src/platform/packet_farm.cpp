#include "platform/packet_farm.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "power/energy_model.hpp"
#include "trace/counters.hpp"

namespace adres::platform {

void FarmStats::writeJson(std::ostream& os) const {
  trace::writeCountersJson(os, counters, groups, workers);
}

PacketFarm::PacketFarm(FarmConfig cfg)
    : cfg_(std::move(cfg)), queue_(cfg_.queueCapacity) {
  ADRES_CHECK(cfg_.numWorkers >= 1, "farm needs at least one worker");
  // Per-worker sinks would interleave into one file; aggregates come from
  // stats() instead.
  cfg_.run.trace = nullptr;
  cfg_.run.countersJsonPath.clear();
  workerStats_.resize(static_cast<std::size_t>(cfg_.numWorkers));
  // Build (or fetch) the shared program before spawning so workers never
  // race on the expensive first build and startup cost is paid once.
  (void)modemProgramFor(cfg_.modem);
  threads_.reserve(static_cast<std::size_t>(cfg_.numWorkers));
  for (int i = 0; i < cfg_.numWorkers; ++i)
    threads_.emplace_back([this, i] { workerMain(i); });
}

PacketFarm::~PacketFarm() { (void)finish(); }

void PacketFarm::submit(RxJob job) {
  ADRES_CHECK(!finished_, "submit after finish()");
  nextId_ = std::max(nextId_, job.id + 1);
  const bool accepted = queue_.push(std::move(job));
  ADRES_CHECK(accepted, "queue closed while submitting");
}

u64 PacketFarm::submit(std::array<std::vector<cint16>, 2> rx) {
  RxJob job;
  job.id = nextId_;
  job.rx = std::move(rx);
  const u64 id = job.id;
  submit(std::move(job));
  return id;
}

std::vector<RxOutcome> PacketFarm::finish() {
  if (finished_) return {};
  finished_ = true;
  queue_.close();
  for (std::thread& t : threads_) t.join();
  threads_.clear();

  stats_ = FarmStats{};
  stats_.workers = cfg_.numWorkers;
  SessionStats merged;
  for (const SessionStats& s : workerStats_) merged.merge(s);
  stats_.packets = merged.packets;
  stats_.counters = std::move(merged.counters);
  stats_.groups = std::move(merged.groups);

  if (cfg_.ordered) {
    std::sort(outcomes_.begin(), outcomes_.end(),
              [](const RxOutcome& a, const RxOutcome& b) { return a.id < b.id; });
  }
  return std::move(outcomes_);
}

void PacketFarm::workerMain(int idx) {
  using Clock = std::chrono::steady_clock;
  RxSession session(cfg_.modem, cfg_.run);
  while (std::optional<RxJob> job = queue_.pop()) {
    RxOutcome out;
    out.id = job->id;
    out.worker = idx;
    const auto t0 = Clock::now();
    out.result = session.decode(job->rx);
    out.hostUs = std::chrono::duration<double, std::micro>(Clock::now() - t0)
                     .count();
    out.avgPowerMw = power::analyze(session.processor()).averageActiveMw;
    std::lock_guard<std::mutex> lk(mu_);
    outcomes_.push_back(std::move(out));
  }
  std::lock_guard<std::mutex> lk(mu_);
  workerStats_[static_cast<std::size_t>(idx)] = session.stats();
}

}  // namespace adres::platform
