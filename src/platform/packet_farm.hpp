// PacketFarm: N independent simulated ADRES processors decoding a packet
// stream in parallel — the harness that makes the paper's 100 Mbps+
// throughput claim a measurable, scalable axis instead of a single-packet
// anecdote.
//
// Each worker thread owns a private Processor + RxSession (no simulator
// state is shared; the mapped program is shared read-only through the
// program cache), pulls RxJobs from a bounded MPMC queue (backpressure
// toward the submitter) and records RxOutcomes.  finish() closes the queue,
// drains it — accepted jobs are never dropped — joins the workers, and
// merges every worker's counter totals into one adres.counters.v1 aggregate
// dump with a `workers` field.  In ordered mode outcomes are returned
// sorted by job id, which — since each decode is a deterministic function
// of the waveform — makes an N-worker run bit-exact with the sequential
// baseline regardless of scheduling.
//
// Live observability (src/obs): every worker keeps lock-free telemetry
// (packet/cycle/op totals, log-linear latency and cycle histograms, a
// published copy of its counter totals) that registerMetrics() exposes
// through a MetricsRegistry — so a running farm can be scraped mid-flight
// by the embedded MetricsServer with zero effect on decoded output.  A
// WorkerWatchdog supervises decode heartbeats and turns stalls and budget
// overruns into structured HealthEvents (optionally cancelling the decode)
// instead of silent hangs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/exemplar.hpp"
#include "obs/histogram.hpp"
#include "obs/integrity.hpp"
#include "obs/metrics.hpp"
#include "obs/postmortem.hpp"
#include "obs/watchdog.hpp"
#include "platform/buffer_pool.hpp"
#include "platform/packet_queue.hpp"
#include "platform/rx_session.hpp"
#include "trace/span.hpp"

namespace adres::platform {

/// One packet to decode: the per-antenna waveforms plus submitter metadata.
struct RxJob {
  u64 id = 0;  ///< submitter-chosen tag; ordered mode sorts outcomes by it
  u32 tag = 0;  ///< submitter context (campaign cell index), span-labelled
  std::array<std::vector<cint16>, 2> rx;
  double enqueueUs = 0;  ///< host µs on the farm epoch; set by submit()
  /// Per-job simulated-cycle budget; 0 = the farm default (FarmConfig::run).
  /// A decode that exhausts it stops with StopReason::kMaxCycles and flows
  /// through the watchdog's budget-overrun path (kBudgetExhausted health
  /// events) — the cell layer's deadline enforcement: cycles the packet may
  /// not spend are cycles it never simulates.
  u64 maxCycles = 0;
};

struct RxOutcome {
  u64 id = 0;
  int worker = -1;  ///< index of the worker that decoded this packet
  sdr::ProcessorRxResult result;
  double avgPowerMw = 0.0;  ///< activity-model average power of the decode
  double hostUs = 0.0;      ///< host wall-clock latency of the decode
  u64 traceId = 0;          ///< deterministic per-packet trace id
  double queueWaitUs = 0.0;  ///< host µs between submit and worker dispatch
  /// Per-packet span tree; populated only when FarmConfig::spans is set.
  trace::PacketSpans spans;
};

struct FarmConfig {
  dsp::ModemConfig modem;
  int numWorkers = 1;
  std::size_t queueCapacity = 32;
  /// Sort outcomes by job id (deterministic, bit-exactness tests); false
  /// returns completion order.
  bool ordered = true;
  /// Per-packet run options.  trace and countersJsonPath are ignored by the
  /// farm (per-worker sinks would interleave); use stats() for aggregates.
  /// The supervision fields (progressCycles/cancel) are overwritten with
  /// the per-worker health records when the watchdog is enabled.
  sdr::RxRunOptions run;
  /// Worker health supervision (stall detection, budget warnings).
  obs::WatchdogConfig watchdog;
  /// Record a span tree per packet (returned in RxOutcome::spans).  Uses the
  /// region-span log, not a TraceSink, so decodes stay on the fast path and
  /// remain bit- and cycle-exact.
  bool spans = false;
  /// Per-launch cycle attribution, folded into FarmStats::profile.
  bool kernelProfile = false;
  /// Tail-latency exemplar capture (ring buffer + span tree persisted for
  /// packets above the configured latency quantile).  Implies span
  /// recording; attaches a per-worker flight-recorder TraceSink, which
  /// disables the CGA steady-state fast path — decodes stay bit- and
  /// cycle-exact, but host throughput drops, so this is opt-in.
  obs::ExemplarConfig exemplars;
  /// Online divergence sentinel: deterministically sampled packets are
  /// shadow-decoded on a held-back tier and compared bit/cycle/counter-wise
  /// (DESIGN.md §16).  The shadow decoder is farm-private and serialized,
  /// so primary decode results are unaffected; sampled packets pay one
  /// extra (shadow-tier) decode of host time.
  obs::SentinelConfig sentinel;
  /// Postmortem bundle capture: when enabled, the farm retains the slowest
  /// packet's payload and writes adres.postmortem.v1 bundles on watchdog
  /// failures (non-halt stops) and on capturePostmortem() calls (the SLO
  /// breach hook).  Sentinel divergences write bundles through the same
  /// store whenever it exists, i.e. also when only the sentinel is on.
  obs::PostmortemConfig postmortem;
  /// Test/fault-injection hook, run on the worker thread after the worker
  /// marks itself busy with the job and before the decode.  Observation
  /// must stay observation: the hook must not touch simulator state.
  std::function<void(int worker, const RxJob&)> preDecodeHook;
  /// Every how many packets a worker publishes its session-stat totals for
  /// live metrics scrapes (liveCounters / adres_sim_counter).  Publishing
  /// copies the session's counter maps, so the hot path throttles it; 0
  /// publishes only when the worker exits.  Final stats are exact at any
  /// setting — finish() merges the sessions directly.
  u64 statsPublishInterval = 16;
};

/// Aggregate statistics merged from every worker's session after finish().
struct FarmStats {
  int workers = 0;
  u64 packets = 0;
  std::map<std::string, u64> counters;
  std::map<std::string, std::map<std::string, u64>> groups;
  obs::HistogramSnapshot latencyNs;     ///< host decode latency, nanoseconds
  obs::HistogramSnapshot packetCycles;  ///< simulated cycles per packet
  obs::HistogramSnapshot queueWaitNs;   ///< submit-to-dispatch wait
  /// Host ns submitters spent blocked on a full queue (backpressure toward
  /// the traffic source — producer-limited when ~0, decode-limited when
  /// large; bench_farm reports it next to decode throughput).
  u64 submitBackpressureNs = 0;
  /// Merged cycle-attribution summary (empty unless kernelProfile).
  trace::ProfileSummary profile;

  /// adres.counters.v1 dump carrying the `workers` extension field.
  void writeJson(std::ostream& os) const;
};

class PacketFarm {
 public:
  explicit PacketFarm(FarmConfig cfg);
  ~PacketFarm();  // finishes (joining all workers) if the caller did not

  PacketFarm(const PacketFarm&) = delete;
  PacketFarm& operator=(const PacketFarm&) = delete;

  /// Enqueues a job; blocks while the queue is full.  Thread-safe: multiple
  /// producer threads may submit concurrently (sharded trial producers).
  /// Must not be called after finish().
  void submit(RxJob job);

  /// Convenience: submits with the next sequential id; returns that id.
  u64 submit(std::array<std::vector<cint16>, 2> rx);

  /// A recycled waveform buffer (capacity from a previously decoded
  /// packet's rx payload) for producers to fill — submit → decode →
  /// recycle forms a closed, allocation-free loop in steady state.
  std::vector<cint16> acquireSampleBuffer() { return samplePool_.acquire(); }

  /// Blocks until every submitted job has an outcome, then returns and
  /// clears the outcome buffer (sorted by id in ordered mode).  The workers
  /// stay alive, so a submit/collect cycle can repeat — campaign batches
  /// reuse one farm instead of paying construction per batch.
  std::vector<RxOutcome> collect();

  /// Allocation-free collect: swaps the pending outcomes into `out`
  /// (cleared first, capacity kept), so the farm inherits the caller's
  /// storage for the next round.  Pair with recycleOutcomes().
  void collectInto(std::vector<RxOutcome>& out);

  /// Returns collected outcomes' payload buffers (decoded bits) to the
  /// farm's pools and clears `outs`, keeping its storage for the caller's
  /// next collectInto() round.
  void recycleOutcomes(std::vector<RxOutcome>& outs);

  /// Closes the queue, drains and joins the workers, merges their stats,
  /// and returns every outcome not already collect()ed.  A second call
  /// returns an empty vector.
  std::vector<RxOutcome> finish();

  /// Merged per-worker counters; populated by finish().
  const FarmStats& stats() const { return stats_; }
  const FarmConfig& config() const { return cfg_; }

  /// The tail-latency exemplar store; null unless cfg.exemplars.enabled.
  const obs::ExemplarStore* exemplarStore() const { return exemplars_.get(); }

  /// The slowest packet decoded so far (live; id() == 0 with no packets is
  /// indistinguishable from job 0 — check latencyUs > 0).
  struct SlowestPacket {
    u64 id = 0;
    u32 tag = 0;
    u64 traceId = 0;
    int worker = -1;
    double latencyUs = 0;
    double queueWaitUs = 0;
    u64 cycles = 0;
    trace::PacketSpans spans;  ///< populated when span recording is on
    /// Retained only with postmortem capture on: the payload and decode
    /// summary needed to freeze this packet into a bundle after the fact.
    std::array<std::vector<cint16>, 2> rx;
    obs::DecodeSummary summary;
  };
  SlowestPacket slowestPacket() const;

  // -- Self-auditing runtime (DESIGN.md §16) ---------------------------------

  /// The divergence sentinel; null unless cfg.sentinel.enabled.
  const obs::DivergenceSentinel* sentinel() const { return sentinel_.get(); }
  /// Divergences detected so far (0 with the sentinel off) — the source of
  /// adres_farm_divergences_total and the `divergences` SLO metric.
  u64 divergences() const { return sentinel_ ? sentinel_->divergences() : 0; }
  /// Structured divergence events recorded so far (empty with sentinel off).
  std::vector<obs::IntegrityEvent> integrityEvents() const {
    return sentinel_ ? sentinel_->events() : std::vector<obs::IntegrityEvent>{};
  }
  /// The bundle store; null unless postmortem capture or sentinel bundling
  /// is active.
  const obs::PostmortemWriter* postmortemWriter() const {
    return postmortems_.get();
  }

  /// Freezes the current slowest packet into an adres.postmortem.v1 bundle
  /// (the SLO-breach hook calls this).  Returns the bundle path, or "" when
  /// capture is off or no packet has been retained yet.  Safe from any
  /// thread.
  std::string capturePostmortem(const std::string& trigger,
                                const std::string& reason);

  /// Readiness: true once every worker has built its session (program cache
  /// populated, plans resolved) — the /readyz source.  On false, `reason`
  /// (when non-null) describes what is still warming.
  bool ready(std::string* reason = nullptr) const;

  // -- Live telemetry (safe from any thread, mid-flight) ---------------------

  std::size_t queueDepth() const { return queue_.size(); }
  u64 submitted() const { return submitted_.load(std::memory_order_relaxed); }
  /// Host ns submitters have spent blocked on a full queue so far (live).
  u64 submitBackpressureNs() const { return queue_.fullWaitNs(); }
  u64 packetsDone() const;
  /// Merged host-latency histogram (nanoseconds) across workers, live.
  obs::HistogramSnapshot latencySnapshot() const;
  /// Merged per-packet simulated-cycle histogram across workers, live.
  obs::HistogramSnapshot cycleSnapshot() const;
  /// Merged submit-to-dispatch queue-wait histogram (nanoseconds), live.
  obs::HistogramSnapshot queueWaitSnapshot() const;
  /// Farm-wide sim counter totals summed from each worker's last published
  /// session snapshot (live approximation of the post-run merge).
  std::map<std::string, u64> liveCounters() const;

  const obs::WorkerWatchdog& watchdog() const { return *watchdog_; }
  std::vector<obs::HealthEvent> healthEvents() const {
    return watchdog_->events();
  }

  /// Registers every farm series on `reg`: queue depth, submitted/done
  /// packets, per-worker packets/utilization/IPC/state, merged latency and
  /// cycle summaries, health-event count, and the farm-wide sim counters
  /// (as adres_sim_counter{name=...}).  The farm must outlive `reg`, or
  /// reg.clear() must run before the farm is destroyed.
  void registerMetrics(obs::MetricsRegistry& reg) const;

 private:
  /// Per-worker live telemetry; single writer (the worker), lock-free
  /// readers (metrics scrapes).
  struct WorkerTelemetry {
    std::atomic<u64> packetsDone{0};
    std::atomic<u64> simCycles{0};
    std::atomic<u64> simOps{0};
    std::atomic<u64> busyNs{0};
    obs::LogLinearHistogram latencyNs;
    obs::LogLinearHistogram packetCycles;
    obs::LogLinearHistogram queueWaitNs;

    std::shared_ptr<const SessionStats> published() const {
      std::lock_guard<std::mutex> lk(mu);
      return pub;
    }
    void setPublished(std::shared_ptr<const SessionStats> s) {
      std::lock_guard<std::mutex> lk(mu);
      pub = std::move(s);
    }

   private:
    mutable std::mutex mu;
    std::shared_ptr<const SessionStats> pub;
  };

  void workerMain(int idx);
  /// The sentinel's ShadowDecodeFn target: one serialized decode on the
  /// held-back tier (callers hold the sentinel lock).
  obs::DecodeSummary shadowDecode(const std::array<std::vector<cint16>, 2>& rx,
                                  std::vector<TraceEvent>* ringOut);
  /// Builds the non-payload bundle skeleton shared by every trigger path.
  obs::PostmortemBundle bundleSkeleton(const std::string& trigger,
                                       const std::string& reason) const;

  FarmConfig cfg_;
  BoundedQueue<RxJob> queue_;
  /// Recycled payload storage: rx waveforms return here after the decode's
  /// DMA (workers release, producers acquire); decoded-bit buffers cycle
  /// through recycleOutcomes().  Both loops are allocation-free once warm.
  BufferPool<cint16> samplePool_;
  BufferPool<u8> bitPool_;
  std::unique_ptr<obs::WorkerWatchdog> watchdog_;
  std::unique_ptr<obs::ExemplarStore> exemplars_;
  std::unique_ptr<obs::PostmortemWriter> postmortems_;
  /// Held-back shadow decoder (farm-private; calls serialized by the
  /// sentinel).  The ring stats of the last divergence re-decode are stashed
  /// here for the bundle closure — both run under the sentinel's lock.
  std::shared_ptr<const sdr::ModemOnProcessor> shadowModem_;
  std::unique_ptr<Processor> shadowProc_;
  std::unique_ptr<obs::DivergenceSentinel> sentinel_;
  u64 shadowRingAccepted_ = 0;
  u64 shadowRingDropped_ = 0;
  std::atomic<int> workersReady_{0};  ///< workers whose session is built
  std::vector<std::unique_ptr<WorkerTelemetry>> telemetry_;
  std::vector<std::thread> threads_;
  std::chrono::steady_clock::time_point startTime_;
  std::atomic<u64> nextId_{0};  ///< monotone watermark; submit() is MT-safe
  std::atomic<u64> submitted_{0};
  bool finished_ = false;

  std::mutex mu_;  ///< guards outcomes_ and workerStats_ while running
  std::condition_variable outcomeCv_;  ///< signalled per recorded outcome
  u64 collected_ = 0;  ///< outcomes already handed out by collect()
  std::vector<RxOutcome> outcomes_;
  std::vector<SessionStats> workerStats_;
  FarmStats stats_;

  mutable std::mutex slowMu_;  ///< guards slowest_
  SlowestPacket slowest_;
};

}  // namespace adres::platform
