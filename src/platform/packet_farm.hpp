// PacketFarm: N independent simulated ADRES processors decoding a packet
// stream in parallel — the harness that makes the paper's 100 Mbps+
// throughput claim a measurable, scalable axis instead of a single-packet
// anecdote.
//
// Each worker thread owns a private Processor + RxSession (no simulator
// state is shared; the mapped program is shared read-only through the
// program cache), pulls RxJobs from a bounded MPMC queue (backpressure
// toward the submitter) and records RxOutcomes.  finish() closes the queue,
// drains it — accepted jobs are never dropped — joins the workers, and
// merges every worker's counter totals into one adres.counters.v1 aggregate
// dump with a `workers` field.  In ordered mode outcomes are returned
// sorted by job id, which — since each decode is a deterministic function
// of the waveform — makes an N-worker run bit-exact with the sequential
// baseline regardless of scheduling.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <thread>
#include <vector>

#include "platform/packet_queue.hpp"
#include "platform/rx_session.hpp"

namespace adres::platform {

/// One packet to decode: the per-antenna waveforms plus submitter metadata.
struct RxJob {
  u64 id = 0;  ///< submitter-chosen tag; ordered mode sorts outcomes by it
  std::array<std::vector<cint16>, 2> rx;
};

struct RxOutcome {
  u64 id = 0;
  int worker = -1;  ///< index of the worker that decoded this packet
  sdr::ProcessorRxResult result;
  double avgPowerMw = 0.0;  ///< activity-model average power of the decode
  double hostUs = 0.0;      ///< host wall-clock latency of the decode
};

struct FarmConfig {
  dsp::ModemConfig modem;
  int numWorkers = 1;
  std::size_t queueCapacity = 32;
  /// Sort outcomes by job id (deterministic, bit-exactness tests); false
  /// returns completion order.
  bool ordered = true;
  /// Per-packet run options.  trace and countersJsonPath are ignored by the
  /// farm (per-worker sinks would interleave); use stats() for aggregates.
  sdr::RxRunOptions run;
};

/// Aggregate statistics merged from every worker's session after finish().
struct FarmStats {
  int workers = 0;
  u64 packets = 0;
  std::map<std::string, u64> counters;
  std::map<std::string, std::map<std::string, u64>> groups;

  /// adres.counters.v1 dump carrying the `workers` extension field.
  void writeJson(std::ostream& os) const;
};

class PacketFarm {
 public:
  explicit PacketFarm(FarmConfig cfg);
  ~PacketFarm();  // finishes (joining all workers) if the caller did not

  PacketFarm(const PacketFarm&) = delete;
  PacketFarm& operator=(const PacketFarm&) = delete;

  /// Enqueues a job; blocks while the queue is full.  Must not be called
  /// after finish().
  void submit(RxJob job);

  /// Convenience: submits with the next sequential id; returns that id.
  u64 submit(std::array<std::vector<cint16>, 2> rx);

  /// Closes the queue, drains and joins the workers, merges their stats,
  /// and returns every outcome.  A second call returns an empty vector.
  std::vector<RxOutcome> finish();

  /// Merged per-worker counters; populated by finish().
  const FarmStats& stats() const { return stats_; }
  const FarmConfig& config() const { return cfg_; }

 private:
  void workerMain(int idx);

  FarmConfig cfg_;
  BoundedQueue<RxJob> queue_;
  std::vector<std::thread> threads_;
  u64 nextId_ = 0;
  bool finished_ = false;

  std::mutex mu_;  ///< guards outcomes_ and workerStats_ while running
  std::vector<RxOutcome> outcomes_;
  std::vector<SessionStats> workerStats_;
  FarmStats stats_;
};

}  // namespace adres::platform
