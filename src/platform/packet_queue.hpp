// Bounded MPMC queue — the packet-farm's job and backpressure primitive.
//
// Producers block in push() while the queue is full (backpressure toward
// the traffic source); consumers block in pop() while it is empty.  Shutdown
// is close-then-drain: after close() every push is rejected, but pop keeps
// returning queued items until the queue is empty and only then reports
// end-of-stream — so no accepted job is ever lost.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/check.hpp"

namespace adres::platform {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : cap_(capacity) {
    ADRES_CHECK(capacity > 0, "queue capacity must be positive");
  }

  /// Blocks while full; returns false (dropping `item`) once closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lk(mu_);
    notFull_.wait(lk, [&] { return closed_ || q_.size() < cap_; });
    if (closed_) return false;
    q_.push_back(std::move(item));
    notEmpty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool tryPush(T item) {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_ || q_.size() >= cap_) return false;
    q_.push_back(std::move(item));
    notEmpty_.notify_one();
    return true;
  }

  /// Blocks while empty; returns nullopt once closed AND drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lk(mu_);
    notEmpty_.wait(lk, [&] { return closed_ || !q_.empty(); });
    if (q_.empty()) return std::nullopt;
    std::optional<T> out(std::move(q_.front()));
    q_.pop_front();
    notFull_.notify_one();
    return out;
  }

  /// Rejects further pushes; wakes every waiter.  pop() drains the backlog.
  void close() {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
    notFull_.notify_all();
    notEmpty_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return q_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

  std::size_t capacity() const { return cap_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable notFull_, notEmpty_;
  std::deque<T> q_;
  std::size_t cap_;
  bool closed_ = false;
};

}  // namespace adres::platform
