// Bounded MPMC queue — the packet-farm's job and backpressure primitive.
//
// Producers block in push() while the queue is full (backpressure toward
// the traffic source); consumers block in pop() while it is empty.  Shutdown
// is close-then-drain: after close() every push is rejected, but pop keeps
// returning queued items until the queue is empty and only then reports
// end-of-stream — so no accepted job is ever lost.
//
// Storage is a fixed ring of default-constructed slots allocated once at
// construction (T must be default-constructible and move-assignable):
// steady-state push/pop moves items in and out of slots without touching
// the heap, so the farm hot path stays allocation-free.  Time producers
// spend blocked on a full queue accumulates in fullWaitNs() — the
// backpressure signal bench_farm reports separately from decode throughput.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace adres::platform {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : ring_(capacity), cap_(capacity) {
    ADRES_CHECK(capacity > 0, "queue capacity must be positive");
  }

  /// Blocks while full; returns false (dropping `item`) once closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lk(mu_);
    if (!closed_ && count_ == cap_) {
      // Timed only when actually blocked: the uncontended path costs one
      // branch, and fullWaitNs() measures genuine backpressure stalls.
      const auto t0 = std::chrono::steady_clock::now();
      notFull_.wait(lk, [&] { return closed_ || count_ < cap_; });
      fullWaitNs_.fetch_add(
          static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                               std::chrono::steady_clock::now() - t0)
                               .count()),
          std::memory_order_relaxed);
    }
    if (closed_) return false;
    ring_[(head_ + count_) % cap_] = std::move(item);
    ++count_;
    notEmpty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool tryPush(T item) {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_ || count_ >= cap_) return false;
    ring_[(head_ + count_) % cap_] = std::move(item);
    ++count_;
    notEmpty_.notify_one();
    return true;
  }

  /// Blocks while empty; returns nullopt once closed AND drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lk(mu_);
    notEmpty_.wait(lk, [&] { return closed_ || count_ > 0; });
    if (count_ == 0) return std::nullopt;
    std::optional<T> out(std::move(ring_[head_]));
    head_ = (head_ + 1) % cap_;
    --count_;
    notFull_.notify_one();
    return out;
  }

  /// Rejects further pushes; wakes every waiter.  pop() drains the backlog.
  void close() {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
    notFull_.notify_all();
    notEmpty_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return count_;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

  std::size_t capacity() const { return cap_; }

  /// Total nanoseconds producers spent blocked in push() on a full queue
  /// (any thread may read, live).
  u64 fullWaitNs() const { return fullWaitNs_.load(std::memory_order_relaxed); }

 private:
  mutable std::mutex mu_;
  std::condition_variable notFull_, notEmpty_;
  std::vector<T> ring_;  ///< fixed slots; [head_, head_+count_) mod cap_ live
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t cap_;
  bool closed_ = false;
  std::atomic<u64> fullWaitNs_{0};
};

}  // namespace adres::platform
