#include "platform/replay.hpp"

#include <memory>
#include <sstream>

#include "common/check.hpp"
#include "platform/rx_session.hpp"

namespace adres::platform {
namespace {

obs::ResultRecord decodeOnce(const sdr::ModemOnProcessor& modem,
                             const obs::PostmortemBundle& b, ExecTier tier,
                             u64 faultSeed) {
  Processor proc;
  sdr::RxRunOptions opts;
  if (b.maxCycles != 0) opts.maxCycles = b.maxCycles;
  opts.exec.tier = tier;
  opts.exec.plans = modem.plansFor(tier);
  opts.faultInjectBitFlipSeed = faultSeed;
  const sdr::ProcessorRxResult res =
      sdr::runModemOnProcessor(proc, modem, b.rx, opts);
  obs::ResultRecord r;
  r.valid = true;
  r.detected = res.detected;
  r.ltfStart = res.ltfStart;
  r.stop = stopReasonName(res.stop);
  r.cycles = res.cycles;
  r.totalOps = proc.activity().totalOps();
  r.bits = res.bits;
  r.regions = proc.profiles();
  return r;
}

/// Result identity as the sentinel defines it: payload bits, result
/// metadata and the simulated cycle count.
bool sameDecode(const obs::ResultRecord& a, const obs::ResultRecord& b) {
  return a.valid && b.valid && a.detected == b.detected &&
         a.ltfStart == b.ltfStart && a.stop == b.stop &&
         a.cycles == b.cycles && a.bits == b.bits;
}

}  // namespace

ReplayReport replayPostmortem(const obs::PostmortemBundle& b) {
  ADRES_CHECK(!b.rx[0].empty() && !b.rx[1].empty(),
              "bundle carries no rx payload — nothing to replay");
  ADRES_CHECK(b.primary.valid, "bundle records no primary decode");
  dsp::ModemConfig cfg;
  cfg.mod = static_cast<dsp::Modulation>(b.modulation);
  cfg.numSymbols = b.numSymbols;
  const std::shared_ptr<const sdr::ModemOnProcessor> modem =
      modemProgramFor(cfg);
  const ExecTier tier = parseExecTier(b.execTier);

  ReplayReport rep;
  rep.replay = decodeOnce(*modem, b, tier, 0);
  if (b.faultInjectSeed != 0)
    rep.faultReplay = decodeOnce(*modem, b, tier, b.faultInjectSeed);
  rep.matchesPrimary = sameDecode(rep.replay, b.primary);
  rep.matchesShadow = b.shadow.valid && sameDecode(rep.replay, b.shadow);
  rep.faultReproducesPrimary =
      rep.faultReplay.valid && sameDecode(rep.faultReplay, b.primary);

  std::ostringstream v;
  if (b.shadow.valid) {
    // A divergence bundle: the clean replay is the arbiter.  It must side
    // with the shadow decode AND against the recorded primary — and when
    // the incident was a planted fault, the recorded seed must re-corrupt
    // the decode into exactly the recorded primary.
    rep.consistent = rep.matchesShadow && !rep.matchesPrimary;
    if (b.faultInjectSeed != 0)
      rep.consistent = rep.consistent && rep.faultReproducesPrimary;
    if (rep.consistent) {
      v << "divergence CONFIRMED: clean replay matches the shadow decode, "
           "recorded primary diverges";
      if (b.faultInjectSeed != 0)
        v << "; the recorded fault seed reproduces the primary's corruption";
    } else if (rep.matchesPrimary && rep.matchesShadow) {
      v << "divergence REFUTED: primary and shadow records are identical";
    } else if (rep.matchesPrimary) {
      v << "divergence NOT reproduced: clean replay matches the recorded "
           "primary, not the shadow";
    } else if (!rep.matchesShadow) {
      v << "replay INCONSISTENT: clean replay matches neither recorded "
           "decode";
    } else {
      v << "divergence reproduced, but the recorded fault seed does not "
           "re-create the primary's corruption";
    }
  } else {
    // Watchdog / SLO-breach bundles record only the serving-path decode;
    // determinism demands the replay land on it exactly.
    rep.consistent = rep.matchesPrimary;
    v << (rep.consistent
              ? "recorded decode REPRODUCED bit- and cycle-exactly"
              : "replay INCONSISTENT: re-decode differs from the recorded "
                "primary");
  }
  v << " (replay: stop=" << rep.replay.stop << " cycles=" << rep.replay.cycles
    << " bits=" << rep.replay.bits.size() << ")";
  rep.verdict = v.str();
  return rep;
}

}  // namespace adres::platform
