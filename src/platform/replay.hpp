// Postmortem replay: re-decodes an adres.postmortem.v1 bundle standalone —
// fresh Processor, program rebuilt from the recorded modem configuration,
// the recorded rx payload — and checks the result against the bundle's
// recorded decodes (DESIGN.md §16).
//
// Because every decode is a deterministic function of (waveform, config,
// tier), the verdict is sharp:
//  - With a shadow decode recorded (a sentinel divergence bundle), the
//    clean replay must reproduce the SHADOW result bit- and cycle-exactly,
//    and re-running with the recorded fault seed must reproduce the
//    PRIMARY's corrupted bits — i.e. the bundle demonstrably contains a
//    real, reproducible divergence.
//  - Without a shadow (watchdog / SLO-breach bundles), the clean replay
//    must reproduce the recorded primary (or, for a budget-truncated
//    primary, at least decode consistently under the same budget).
//
// tools/postmortem_replay is a thin CLI over replayPostmortem().
#pragma once

#include <string>

#include "obs/postmortem.hpp"

namespace adres::platform {

struct ReplayReport {
  obs::ResultRecord replay;       ///< the clean re-decode of the bundle's rx
  obs::ResultRecord faultReplay;  ///< fault-seeded re-decode (valid when
                                  ///< the bundle carries a fault seed)
  bool matchesPrimary = false;  ///< replay == recorded primary (bits+cycles)
  bool matchesShadow = false;   ///< replay == recorded shadow (bits+cycles)
  bool faultReproducesPrimary = false;  ///< faultReplay == recorded primary
  /// The bundle's failure story holds up under re-execution (see the
  /// per-trigger rules in the header comment).
  bool consistent = false;
  std::string verdict;  ///< one-line human-readable conclusion
};

/// Re-decodes the bundle's packet and renders the verdict.  Throws SimError
/// on an unreplayable bundle (unknown tier label, empty rx payload).
ReplayReport replayPostmortem(const obs::PostmortemBundle& b);

}  // namespace adres::platform
