#include "platform/rx_session.hpp"

#include <mutex>
#include <utility>

#include "trace/telemetry.hpp"

namespace adres::platform {
namespace {

struct ProgramCache {
  std::mutex mu;
  // Key: (modulation, numSymbols) — the full build input.  The cached
  // ModemOnProcessor carries the per-tier plan cache, so every session
  // sharing a program also shares one pre-decoded plan set per exec tier
  // (Processor::load adopts it instead of re-decoding per worker).
  std::map<std::pair<int, int>, std::shared_ptr<const sdr::ModemOnProcessor>>
      byConfig;
};

ProgramCache& cache() {
  static ProgramCache c;
  return c;
}

}  // namespace

std::shared_ptr<const sdr::ModemOnProcessor> modemProgramFor(
    const dsp::ModemConfig& cfg) {
  const auto key = std::make_pair(static_cast<int>(cfg.mod), cfg.numSymbols);
  ProgramCache& c = cache();
  std::lock_guard<std::mutex> lk(c.mu);
  auto it = c.byConfig.find(key);
  if (it == c.byConfig.end()) {
    it = c.byConfig
             .emplace(key, std::make_shared<const sdr::ModemOnProcessor>(
                               sdr::buildModemProgram(cfg)))
             .first;
  }
  return it->second;
}

void clearModemProgramCache() {
  ProgramCache& c = cache();
  std::lock_guard<std::mutex> lk(c.mu);
  c.byConfig.clear();
}

void SessionStats::merge(const SessionStats& other) {
  packets += other.packets;
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [prefix, block] : other.groups) {
    auto& mine = groups[prefix];
    for (const auto& [suffix, value] : block) mine[suffix] += value;
  }
  profile.merge(other.profile);
}

RxSession::RxSession(const dsp::ModemConfig& cfg, sdr::RxRunOptions opts)
    : modem_(modemProgramFor(cfg)), opts_(std::move(opts)) {
  // Resolve the exec policy's plan set once per session: every decode then
  // loads with the shared per-tier plans instead of consulting the cache.
  if (!opts_.exec.plans) opts_.exec.plans = modem_->plansFor(opts_.exec.tier);
  trace::registerProcessorCounters(reg_, proc_);
}

sdr::ProcessorRxResult RxSession::decode(
    const std::array<std::vector<cint16>, 2>& rx) {
  // DMA stats deliberately survive Processor::resetStats() (they account
  // the program-load transfers); clear them here so every decode's stats —
  // and the power model reading them — cover exactly one packet, as on a
  // freshly constructed processor.
  proc_.dma().resetStats();
  sdr::ProcessorRxResult res = sdr::runModemOnProcessor(proc_, *modem_, rx, opts_);
  // Stats reset on the next load; fold this packet's into the session total.
  // publish() doubles as our snapshot: one getter pass fills the fold AND
  // leaves an immutable copy other threads (live metrics) may read.
  ++stats_.packets;
  if (opts_.profile) stats_.profile.addProcessor(proc_);
  const std::shared_ptr<const trace::PublishedCounters> snap = reg_.publish();
  for (const auto& [name, value] : snap->counters) stats_.counters[name] += value;
  for (const auto& [prefix, block] : snap->groups) {
    auto& mine = stats_.groups[prefix];
    for (const auto& [suffix, value] : block) mine[suffix] += value;
  }
  return res;
}

}  // namespace adres::platform
