#include "platform/rx_session.hpp"

#include <mutex>
#include <utility>

#include "trace/telemetry.hpp"

namespace adres::platform {
namespace {

struct ProgramCache {
  std::mutex mu;
  // Key: (modulation, numSymbols) — the full build input.  The cached
  // ModemOnProcessor carries the per-tier plan cache, so every session
  // sharing a program also shares one pre-decoded plan set per exec tier
  // (Processor::load adopts it instead of re-decoding per worker).
  std::map<std::pair<int, int>, std::shared_ptr<const sdr::ModemOnProcessor>>
      byConfig;
};

ProgramCache& cache() {
  static ProgramCache c;
  return c;
}

}  // namespace

std::shared_ptr<const sdr::ModemOnProcessor> modemProgramFor(
    const dsp::ModemConfig& cfg) {
  const auto key = std::make_pair(static_cast<int>(cfg.mod), cfg.numSymbols);
  ProgramCache& c = cache();
  std::lock_guard<std::mutex> lk(c.mu);
  auto it = c.byConfig.find(key);
  if (it == c.byConfig.end()) {
    it = c.byConfig
             .emplace(key, std::make_shared<const sdr::ModemOnProcessor>(
                               sdr::buildModemProgram(cfg)))
             .first;
  }
  return it->second;
}

void clearModemProgramCache() {
  ProgramCache& c = cache();
  std::lock_guard<std::mutex> lk(c.mu);
  c.byConfig.clear();
}

void SessionStats::merge(const SessionStats& other) {
  packets += other.packets;
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [prefix, block] : other.groups) {
    auto& mine = groups[prefix];
    for (const auto& [suffix, value] : block) mine[suffix] += value;
  }
  profile.merge(other.profile);
}

RxSession::RxSession(const dsp::ModemConfig& cfg, sdr::RxRunOptions opts)
    : modem_(modemProgramFor(cfg)), opts_(std::move(opts)) {
  // Resolve the exec policy's plan set once per session: every decode then
  // loads with the shared per-tier plans instead of consulting the cache.
  if (!opts_.exec.plans) opts_.exec.plans = modem_->plansFor(opts_.exec.tier);
  // The resident program is shared-const and never mutates between decodes,
  // so the session satisfies ExecPolicy::warmReload's immutability contract:
  // from the second decode on, load() only replays the DMA and state reset.
  // coldReload is the bench/debug opt-out (bit- and cycle-exact, slower).
  opts_.exec.warmReload = !opts_.coldReload;
  trace::registerProcessorCounters(reg_, proc_);
}

sdr::ProcessorRxResult RxSession::decode(
    const std::array<std::vector<cint16>, 2>& rx) {
  sdr::ProcessorRxResult res;
  decodeInto(rx, res);
  return res;
}

void RxSession::decodeInto(const std::array<std::vector<cint16>, 2>& rx,
                           sdr::ProcessorRxResult& out,
                           u64 maxCyclesOverride) {
  // DMA stats deliberately survive Processor::resetStats() (they account
  // the program-load transfers); clear them here so every decode's stats —
  // and the power model reading them — cover exactly one packet, as on a
  // freshly constructed processor.
  proc_.dma().resetStats();
  // A per-job budget tightens (never loosens) the session budget for this
  // decode only.  Swap-in/swap-out keeps the hot path allocation-free — no
  // RxRunOptions copy, and sessions are single-threaded by contract.
  const u64 sessionBudget = opts_.maxCycles;
  if (maxCyclesOverride != 0 && maxCyclesOverride < sessionBudget)
    opts_.maxCycles = maxCyclesOverride;
  sdr::runModemOnProcessor(proc_, *modem_, rx, opts_, out);
  opts_.maxCycles = sessionBudget;
  // Stats reset on the next load; fold this packet's into the session total.
  // Static counters fold in place (key set stable after the first packet);
  // region profiles fold numerically by id — the registry's "region" group
  // getter builds key strings per call, so it stays out of the hot path and
  // stats() materializes the block on demand.
  ++stats_.packets;
  if (opts_.profile) stats_.profile.addProcessor(proc_);
  reg_.accumulateCountersInto(stats_.counters);
  for (const auto& [id, rp] : proc_.profiles()) {
    RegionProfile& t = regionTotals_[id];
    t.cycles += rp.cycles;
    t.vliwCycles += rp.vliwCycles;
    t.cgaCycles += rp.cgaCycles;
    t.ops += rp.ops;
    t.vliwOps += rp.vliwOps;
    t.cgaOps += rp.cgaOps;
    t.entries += rp.entries;
  }
  groupsDirty_ = true;
}

const SessionStats& RxSession::stats() {
  if (groupsDirty_) {
    // Same keys registerProcessorCounters' "region" group getter yields:
    // <region name>.{cycles,ops,vliw_cycles,cga_cycles,entries}.
    const std::vector<std::string>& names = modem_->program.regionNames;
    std::map<std::string, u64>& block = stats_.groups["region"];
    block.clear();
    for (const auto& [id, rp] : regionTotals_) {
      const std::string base =
          (id >= 0 && static_cast<std::size_t>(id) < names.size())
              ? names[static_cast<std::size_t>(id)]
              : "region" + std::to_string(id);
      block[base + ".cycles"] = rp.cycles;
      block[base + ".ops"] = rp.ops;
      block[base + ".vliw_cycles"] = rp.vliwCycles;
      block[base + ".cga_cycles"] = rp.cgaCycles;
      block[base + ".entries"] = rp.entries;
    }
    groupsDirty_ = false;
  }
  return stats_;
}

}  // namespace adres::platform
