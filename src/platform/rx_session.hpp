// RxSession: a reusable receive context — one Processor plus the modem
// program for its ModemConfig, built and mapped ONCE (the DRESC-style
// kernel scheduling in buildModemProgram dominates setup cost) and shared
// through a process-wide cache keyed by the configuration.  decode() then
// only pays waveform DMA + execution + result decode per packet, which is
// what a deployed platform re-running the resident program would do.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sdr/modem_program.hpp"
#include "trace/counters.hpp"
#include "trace/profile.hpp"

namespace adres::platform {

/// Returns the shared mapped modem program for `cfg`, building it on the
/// first request for that configuration.  Thread-safe; identical configs
/// always yield the same object.
std::shared_ptr<const sdr::ModemOnProcessor> modemProgramFor(
    const dsp::ModemConfig& cfg);

/// Drops every cached program (test hook; outstanding shared_ptrs stay
/// valid).
void clearModemProgramCache();

/// Counter totals accumulated across the packets a session decoded.
/// Processor stats reset on every program load, so the session sums each
/// packet's snapshot; FarmStats merges these across workers.
struct SessionStats {
  u64 packets = 0;
  std::map<std::string, u64> counters;
  std::map<std::string, std::map<std::string, u64>> groups;
  /// Cycle-attribution summary; populated only when the session's run
  /// options enable kernel profiling.
  trace::ProfileSummary profile;

  void merge(const SessionStats& other);
};

class RxSession {
 public:
  explicit RxSession(const dsp::ModemConfig& cfg, sdr::RxRunOptions opts = {});

  /// Decodes one packet with the resident program.
  sdr::ProcessorRxResult decode(const std::array<std::vector<cint16>, 2>& rx);

  /// Allocation-free variant: decodes into `out`, reusing its capacity.
  /// Combined with the session's warm program reload and the lazily
  /// materialized stats fold, a steady-state call performs no heap
  /// allocation (tools/alloc_gate asserts this) — the packet-farm hot path.
  /// `maxCyclesOverride` != 0 caps this one decode at
  /// min(override, session maxCycles) simulated cycles (RxJob::maxCycles,
  /// the cell layer's per-packet deadline budget); the session budget is
  /// restored afterwards.
  void decodeInto(const std::array<std::vector<cint16>, 2>& rx,
                  sdr::ProcessorRxResult& out, u64 maxCyclesOverride = 0);

  const dsp::ModemConfig& config() const { return modem_->config; }
  const sdr::ModemOnProcessor& modem() const { return *modem_; }
  Processor& processor() { return proc_; }
  const Processor& processor() const { return proc_; }
  /// Session totals.  Non-const: the per-packet fold keeps region profiles
  /// numerically (by id) and this call materializes the string-keyed
  /// "region" group block on demand, so the hot path never builds strings.
  const SessionStats& stats();

 private:
  std::shared_ptr<const sdr::ModemOnProcessor> modem_;
  sdr::RxRunOptions opts_;
  Processor proc_;
  trace::CounterRegistry reg_;
  SessionStats stats_;
  /// Numeric per-region totals folded per packet; stats() turns them into
  /// the published `groups["region"]` block (same keys the registry's
  /// group getter would have produced, built once instead of per packet).
  std::map<int, RegionProfile> regionTotals_;
  bool groupsDirty_ = false;
};

}  // namespace adres::platform
