#include "power/area_model.hpp"

namespace adres::power {

AreaReport analyzeArea(const AreaParams& p) {
  AreaReport r;
  r.blocksMm2["memories (L1 + I$ + config)"] =
      (p.l1KB + p.icacheKB + p.configKB) * p.sramMm2PerKB;
  r.blocksMm2["CGA FUs"] = p.cgaFus * p.cgaFuMm2;
  r.blocksMm2["VLIW FUs"] = p.vliwFus * p.vliwFuMm2;
  r.blocksMm2["global RF"] =
      static_cast<double>(p.cdrfWords * p.cdrfBits *
                          (p.cdrfReadPorts + p.cdrfWritePorts)) *
      p.sharedRfMm2PerBitPort;
  r.blocksMm2["distributed RFs"] =
      static_cast<double>(p.lrfFiles * p.lrfWords * p.lrfBits *
                          (p.lrfReadPorts + p.lrfWritePorts)) *
      p.localRfMm2PerBitPort;
  r.blocksMm2["control + other"] = p.controlOtherMm2;
  for (const auto& [k, v] : r.blocksMm2) r.totalMm2 += v;
  for (const auto& [k, v] : r.blocksMm2) r.shares[k] = v / r.totalMm2;
  return r;
}

}  // namespace adres::power
