// Parametric area model (paper Fig 5; TSMC 90G, 9-layer backend).
//
// Block areas are derived from structural parameters (memory bits, FU
// count and datapath width, register-file bits x ports) with per-unit
// constants calibrated to the published 5.79 mm^2 total and its breakdown:
// memories ~50 %, CGA FUs 29 %, VLIW FUs 8 %, global RF 5 %,
// distributed RFs 3 %, control/clock/other the remainder.
#pragma once

#include <map>
#include <string>

namespace adres::power {

struct AreaParams {
  // Structural knobs (defaults = the paper's processor).
  int cgaFus = 16;
  int vliwFus = 3;
  double l1KB = 256.0;
  double icacheKB = 32.0;
  double configKB = 64.0;
  int cdrfWords = 64, cdrfBits = 64, cdrfReadPorts = 6, cdrfWritePorts = 3;
  int lrfFiles = 16, lrfWords = 16, lrfBits = 64, lrfReadPorts = 2,
      lrfWritePorts = 1;

  // Calibrated per-unit constants (mm^2).
  double sramMm2PerKB = 0.008224;     // 2.895 mm^2 / 352 KB of macros
  double cgaFuMm2 = 0.104944;         // 1.679 mm^2 / 16 units
  double vliwFuMm2 = 0.154405;        // 0.463 mm^2 / 3 units (branch+div)
  double sharedRfMm2PerBitPort = 7.858e-6;  // synthesized 6R/3W cells
  double localRfMm2PerBitPort = 3.534e-6;   // cheaper 2R/1W cells
  double controlOtherMm2 = 0.2895;    // CGU, buses, clock tree, test logic
};

struct AreaReport {
  std::map<std::string, double> blocksMm2;
  double totalMm2 = 0;
  std::map<std::string, double> shares;
};

AreaReport analyzeArea(const AreaParams& p = {});

}  // namespace adres::power
