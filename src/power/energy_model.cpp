#include "power/energy_model.hpp"

namespace adres::power {

// Calibration (DESIGN.md §6).  Targets from the paper at 400 MHz, 1 V:
//   VLIW mode: 75 mW  = 187.5 pJ/cycle, shares per Fig 6a
//     (interconnect 28 %, VLIW FUs 22 %, global RF 21 %, L1 13 %, I$ 10 %,
//      idle CGA 2 %, remainder clock/control).
//   CGA mode: 310 mW = 775 pJ/cycle, shares per Fig 6b
//     (interconnect 38 %, CGA FUs 25 %, config memories 13 %, L1 10 %,
//      global RF 8 %, distributed RF 2 %, idle VLIW+I$ 5 %).
// Coefficients are derived by dividing each category budget by its event
// density at the paper's utilization (VLIW IPC 1.94, CGA IPC 10.31, with
// per-op operand/transport ratios measured from the reference MIMO-OFDM
// mapping).  They are intentionally *fixed*: programs with different
// densities produce different (predicted) power.
EnergyCoefficients EnergyCoefficients::defaultCalibration() {
  EnergyCoefficients c{};
  c.vliwClkPj = 11.0;      // idle-CGA clocking + control (~6 %)
  c.cgaClkPj = 39.0;       // idle VLIW + I$ during kernels (~5 %)
  c.vliwOpPj = 21.0;       // 41.25 pJ/cycle / 1.94 ops/cycle
  c.cgaOpPj = 19.0;        // 193.75 pJ/cycle / 10.31 ops/cycle
  c.simdExtraPj = 10.0;    // 4x16 datapath toggling premium
  c.transportPj = 16.0;    // 294.5 pJ/cycle / ~16 transports/cycle (CGA)
  c.cdrfAccessPj = 8.0;    // 39.4 pJ/cycle / ~4.9 port events/cycle
  c.lrfAccessPj = 1.3;     // 15.5 pJ/cycle / ~12 accesses/cycle — the
                           // cheap 2R/1W files the paper's §2.B argues for
  c.l1AccessPj = 50.0;
  c.icacheAccessPj = 18.0; // one 128-bit line read per fetch
  c.icacheMissPj = 150.0;  // external instruction-memory fill
  c.configFetchPj = 100.0; // 100.75 pJ/cycle at one ultra-wide word/cycle
  return c;
}

namespace {

/// Per-mode energy sums in pJ; the per-category maps are filled only when
/// requested (analyze), so the scalar path (averageActiveMw) stays
/// allocation-free.  One body for both keeps the two views from drifting.
struct ModeEnergies {
  double evSum = 0;
  double egSum = 0;
};

ModeEnergies accumulateEnergies(const Processor& proc,
                                const EnergyCoefficients& c,
                                std::map<std::string, double>* ev,
                                std::map<std::string, double>* eg) {
  const ActivityCounters& a = proc.activity();
  const auto lrf = proc.cga().localRfTotals();
  const auto& l1 = proc.l1().stats();
  const auto& crf = proc.regs().stats();
  const auto& prf = proc.regs().predStats();
  const auto& ic = proc.icache().stats();
  const auto& cm = proc.configMem().stats();

  const double l1Total = static_cast<double>(l1.reads + l1.writes);
  const double l1Cga = static_cast<double>(a.l1CgaAccesses);
  const double l1Vliw = l1Total > l1Cga ? l1Total - l1Cga : 0.0;
  const double cdrfTotal =
      static_cast<double>(crf.reads + crf.writes + prf.reads + prf.writes);
  const double cdrfCga = static_cast<double>(a.cdrfCgaAccesses);
  const double cdrfVliw = cdrfTotal > cdrfCga ? cdrfTotal - cdrfCga : 0.0;

  ModeEnergies out;
  const auto addV = [&](const char* k, double v) {
    out.evSum += v;
    if (ev) (*ev)[k] = v;
  };
  const auto addG = [&](const char* k, double v) {
    out.egSum += v;
    if (eg) (*eg)[k] = v;
  };

  // --- VLIW-mode energy (pJ), by Fig 6a category -------------------------
  addV("interconnect", 2.0 * static_cast<double>(a.vliwOps) * c.transportPj);
  addV("vliw FUs", static_cast<double>(a.vliwOps) * c.vliwOpPj);
  addV("global RF", cdrfVliw * c.cdrfAccessPj);
  addV("L1", l1Vliw * c.l1AccessPj);
  addV("I$", static_cast<double>(ic.accesses) * c.icacheAccessPj +
                 static_cast<double>(ic.misses) * c.icacheMissPj);
  addV("idle CGA + clock", static_cast<double>(a.vliwCycles) * c.vliwClkPj);

  // --- CGA-mode energy (pJ), by Fig 6b category ---------------------------
  addG("interconnect", static_cast<double>(a.transports) * c.transportPj);
  addG("CGA FUs", static_cast<double>(a.cgaOps) * c.cgaOpPj +
                      static_cast<double>(a.simdOps) * c.simdExtraPj);
  addG("config memories",
       static_cast<double>(cm.contextFetches) * c.configFetchPj);
  addG("L1", l1Cga * c.l1AccessPj);
  addG("global RF", cdrfCga * c.cdrfAccessPj);
  addG("distributed RF",
       static_cast<double>(lrf.reads + lrf.writes) * c.lrfAccessPj);
  addG("idle VLIW + I$", static_cast<double>(a.cgaCycles) * c.cgaClkPj);
  return out;
}

constexpr double kPeriodNs = 2.5;  // 400 MHz

}  // namespace

PowerReport analyze(const Processor& proc, const EnergyCoefficients& c) {
  const ActivityCounters& a = proc.activity();
  PowerReport r;
  r.vliwCycles = a.vliwCycles;
  r.cgaCycles = a.cgaCycles;
  const ModeEnergies e =
      accumulateEnergies(proc, c, &r.vliwBreakdown, &r.cgaBreakdown);
  if (a.vliwCycles > 0)
    r.vliwActiveMw = e.evSum / (static_cast<double>(a.vliwCycles) * kPeriodNs);
  if (a.cgaCycles > 0)
    r.cgaActiveMw = e.egSum / (static_cast<double>(a.cgaCycles) * kPeriodNs);
  const u64 total = a.vliwCycles + a.cgaCycles;
  if (total > 0)
    r.averageActiveMw =
        (e.evSum + e.egSum) / (static_cast<double>(total) * kPeriodNs);
  for (auto& [k, v] : r.vliwBreakdown) v = e.evSum > 0 ? v / e.evSum : 0;
  for (auto& [k, v] : r.cgaBreakdown) v = e.egSum > 0 ? v / e.egSum : 0;
  return r;
}

double averageActiveMw(const Processor& proc, const EnergyCoefficients& c) {
  const ActivityCounters& a = proc.activity();
  const u64 total = a.vliwCycles + a.cgaCycles;
  if (total == 0) return 0.0;
  const ModeEnergies e = accumulateEnergies(proc, c, nullptr, nullptr);
  return (e.evSum + e.egSum) / (static_cast<double>(total) * kPeriodNs);
}

}  // namespace adres::power
