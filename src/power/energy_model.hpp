// Activity-based power model (paper Table 3, Figs 6a/6b; DESIGN.md §6).
//
// The simulator counts micro-architectural events; this model converts them
// to energy with per-event coefficients and reports per-mode average power
// at the 400 MHz / 1 V typical corner.  Coefficients were calibrated once
// against the published numbers using the reference MIMO-OFDM run (the
// derivation is documented next to each constant in energy_model.cpp) and
// are then fixed — the model *predicts* power for any other program.
#pragma once

#include <map>
#include <string>

#include "core/processor.hpp"

namespace adres::power {

/// Per-event energy coefficients in picojoules.
struct EnergyCoefficients {
  // Mode-cycle overheads (clock tree, idle units).
  double vliwClkPj;      ///< per VLIW-mode cycle (incl. idle CGA ~2%)
  double cgaClkPj;       ///< per CGA-mode cycle (incl. idle VLIW+I$ ~5%)
  // Operations.
  double vliwOpPj;       ///< per VLIW-issued op
  double cgaOpPj;        ///< per array op (routing MOVs included)
  double simdExtraPj;    ///< extra energy of a 4x16 SIMD op
  // Interconnect: per operand/result transport through the inter-FU mesh.
  double transportPj;
  // Storage.
  double cdrfAccessPj;   ///< central RF, per read or write port event
  double lrfAccessPj;    ///< local RF, per access (cheaper: fewer ports)
  double l1AccessPj;     ///< scratchpad bank access
  double icacheAccessPj; ///< I$ line fetch
  double icacheMissPj;   ///< external instruction-memory fill
  double configFetchPj;  ///< ultra-wide configuration word read

  static EnergyCoefficients defaultCalibration();
};

struct PowerReport {
  // Average active power while in each mode (mW, typical corner).
  double vliwActiveMw = 0;
  double cgaActiveMw = 0;
  double averageActiveMw = 0;  ///< whole-program average
  // Leakage (modelled flat, per the paper's corners).
  double leakage25Mw = 12.5;
  double leakage65Mw = 25.0;
  // Component shares per mode (fractions summing to ~1) — Figs 6a/6b.
  std::map<std::string, double> vliwBreakdown;
  std::map<std::string, double> cgaBreakdown;

  u64 vliwCycles = 0, cgaCycles = 0;
};

/// Analyzes a finished run.
PowerReport analyze(const Processor& proc,
                    const EnergyCoefficients& c =
                        EnergyCoefficients::defaultCalibration());

/// The whole-program average active power (mW) analyze() would report,
/// without materializing the per-category breakdown maps — allocation-free,
/// for the packet farm's per-decode call.
double averageActiveMw(const Processor& proc,
                       const EnergyCoefficients& c =
                           EnergyCoefficients::defaultCalibration());

}  // namespace adres::power
