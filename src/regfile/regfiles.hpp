// Register files (paper §2.B):
//  - Central Data RF (CDRF): 64 x 64-bit, 6 read / 3 write ports.
//  - Central Predicate RF (CPRF): 64 x 1-bit.
//  - Local RFs: per-CGA-FU 2-read/1-write 16 x 64-bit files (cheaper than the
//    shared file thanks to reduced size and port count — this asymmetry is
//    what the power model exploits in Fig 6).
// VLIW and CGA operate the central file in mutual exclusion; the shared file
// is the data channel between the two modes.
#pragma once

#include <array>

#include "common/check.hpp"
#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace adres {

struct RegFileStats {
  u64 reads = 0;
  u64 writes = 0;
};

/// Central 64x64 data + 64x1 predicate register file.
class CentralRegFile {
 public:
  Word read(int r) {
    ADRES_CHECK(r >= 0 && r < kCdrfRegs, "CDRF read r" << r);
    ++stats_.reads;
    return data_[static_cast<std::size_t>(r)];
  }

  void write(int r, Word v) {
    ADRES_CHECK(r >= 0 && r < kCdrfRegs, "CDRF write r" << r);
    ++stats_.writes;
    data_[static_cast<std::size_t>(r)] = v;
  }

  bool readPred(int p) {
    ADRES_CHECK(p >= 0 && p < kCprfRegs, "CPRF read p" << p);
    ++predStats_.reads;
    return pred_[static_cast<std::size_t>(p)];
  }

  void writePred(int p, bool v) {
    ADRES_CHECK(p >= 0 && p < kCprfRegs, "CPRF write p" << p);
    ++predStats_.writes;
    pred_[static_cast<std::size_t>(p)] = v;
  }

  /// Debug/test peek without stats side effects.
  Word peek(int r) const { return data_[static_cast<std::size_t>(r)]; }
  bool peekPred(int p) const { return pred_[static_cast<std::size_t>(p)]; }
  void poke(int r, Word v) { data_[static_cast<std::size_t>(r)] = v; }
  void pokePred(int p, bool v) { pred_[static_cast<std::size_t>(p)] = v; }

  /// Range-checked raw storage pointer for the native execution tier: the
  /// access itself carries no stats (the tier batches them per launch).
  Word* slotPtr(int r) {
    ADRES_CHECK(r >= 0 && r < kCdrfRegs, "CDRF slot r" << r);
    return &data_[static_cast<std::size_t>(r)];
  }

  const RegFileStats& stats() const { return stats_; }
  /// Direct stats access for whole-launch batched accounting.
  RegFileStats& mutableStats() { return stats_; }
  const RegFileStats& predStats() const { return predStats_; }
  void resetStats() { stats_ = {}; predStats_ = {}; }

  void clear() {
    data_.fill(0);
    pred_.fill(false);
  }

 private:
  std::array<Word, kCdrfRegs> data_ = {};
  std::array<bool, kCprfRegs> pred_ = {};
  RegFileStats stats_;
  RegFileStats predStats_;
};

inline constexpr int kLocalRfRegs = 16;

/// Per-FU local 2R/1W register file (CGA fabric).
class LocalRegFile {
 public:
  Word read(int r) {
    ADRES_CHECK(r >= 0 && r < kLocalRfRegs, "local RF read r" << r);
    ++stats_.reads;
    return data_[static_cast<std::size_t>(r)];
  }

  void write(int r, Word v) {
    ADRES_CHECK(r >= 0 && r < kLocalRfRegs, "local RF write r" << r);
    ++stats_.writes;
    data_[static_cast<std::size_t>(r)] = v;
  }

  Word peek(int r) const { return data_[static_cast<std::size_t>(r)]; }
  void poke(int r, Word v) { data_[static_cast<std::size_t>(r)] = v; }

  /// Range-checked raw storage pointer for the native execution tier.
  Word* slotPtr(int r) {
    ADRES_CHECK(r >= 0 && r < kLocalRfRegs, "local RF slot r" << r);
    return &data_[static_cast<std::size_t>(r)];
  }

  const RegFileStats& stats() const { return stats_; }
  /// Direct stats access for whole-launch batched accounting.
  RegFileStats& mutableStats() { return stats_; }
  void resetStats() { stats_ = {}; }
  void clear() { data_.fill(0); }

 private:
  std::array<Word, kLocalRfRegs> data_ = {};
  RegFileStats stats_;
};

}  // namespace adres
