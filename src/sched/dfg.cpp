#include "sched/dfg.hpp"

#include <unordered_map>

#include "isa/instruction.hpp"
#include "isa/semantics.hpp"

namespace adres {

int KernelDfg::opNodeCount() const {
  int n = 0;
  for (const DfgNode& nd : nodes)
    if (nd.kind == NodeKind::kOp) ++n;
  return n;
}

void KernelDfg::validate() const {
  for (const DfgNode& nd : nodes) {
    for (int s : nd.src) {
      if (s < 0) continue;
      ADRES_CHECK(s < static_cast<int>(nodes.size()) && s != nd.id,
                  "kernel '" << name << "': bad operand edge");
    }
    if (nd.kind == NodeKind::kPhi) {
      ADRES_CHECK(nd.carriedDef >= 0 &&
                      nd.carriedDef < static_cast<int>(nodes.size()),
                  "kernel '" << name << "': phi " << nd.id
                             << " lacks a carried definition");
      ADRES_CHECK(nd.globalReg < kCdrfRegs, "phi seed register");
    }
    if (nd.kind == NodeKind::kLiveIn || nd.kind == NodeKind::kConst) {
      ADRES_CHECK(nd.globalReg < kCdrfRegs, "live-in register");
    }
    if (nd.kind == NodeKind::kOp) {
      ADRES_CHECK(!isBranch(nd.op) && !isControl(nd.op),
                  "kernel '" << name << "': control flow inside loop body");
    }
  }
  for (const LiveOut& lo : liveOuts) {
    ADRES_CHECK(lo.node >= 0 && lo.node < static_cast<int>(nodes.size()),
                "live-out node");
    ADRES_CHECK(lo.globalReg < kCdrfRegs, "live-out register");
  }
  for (const OrderEdge& e : orderEdges) {
    ADRES_CHECK(e.from >= 0 && e.from < static_cast<int>(nodes.size()) &&
                    e.to >= 0 && e.to < static_cast<int>(nodes.size()),
                "order edge nodes");
  }
}

ValueId KernelBuilder::addNode(DfgNode n) {
  ADRES_CHECK(!built_, "builder already consumed");
  n.id = static_cast<int>(dfg_.nodes.size());
  dfg_.nodes.push_back(n);
  return {n.id};
}

ValueId KernelBuilder::liveIn(int reg) {
  DfgNode n;
  n.kind = NodeKind::kLiveIn;
  n.globalReg = static_cast<u8>(reg);
  return addNode(n);
}

ValueId KernelBuilder::constant(i32 value, int homeReg) {
  DfgNode n;
  n.kind = NodeKind::kConst;
  n.constValue = value;
  n.globalReg = static_cast<u8>(homeReg);
  return addNode(n);
}

ValueId KernelBuilder::carried(int seedReg) {
  DfgNode n;
  n.kind = NodeKind::kPhi;
  n.globalReg = static_cast<u8>(seedReg);
  return addNode(n);
}

void KernelBuilder::defineCarried(ValueId phi, ValueId next) {
  ADRES_CHECK(phi.valid() && next.valid(), "defineCarried on invalid value");
  DfgNode& n = dfg_.nodes[static_cast<std::size_t>(phi.id)];
  ADRES_CHECK(n.kind == NodeKind::kPhi, "defineCarried target is not a phi");
  ADRES_CHECK(n.carriedDef < 0, "phi already defined");
  n.carriedDef = next.id;
}

ValueId KernelBuilder::op(Opcode o, ValueId a, ValueId b) {
  ADRES_CHECK(a.valid() && b.valid(), "op operand invalid");
  DfgNode n;
  n.op = o;
  n.src[0] = a.id;
  n.src[1] = b.id;
  return addNode(n);
}

ValueId KernelBuilder::op(Opcode o, ValueId a) {
  ADRES_CHECK(a.valid(), "op operand invalid");
  DfgNode n;
  n.op = o;
  n.src[0] = a.id;
  return addNode(n);
}

ValueId KernelBuilder::opImm(Opcode o, ValueId a, i32 imm) {
  ADRES_CHECK(a.valid(), "op operand invalid");
  DfgNode n;
  n.op = o;
  n.src[0] = a.id;
  n.imm = imm;
  n.immSrc2 = true;
  return addNode(n);
}

ValueId KernelBuilder::load(Opcode o, ValueId base, ValueId off) {
  ADRES_CHECK(isLoad(o) && o != Opcode::LD_IH, "load: wrong opcode");
  DfgNode n;
  n.op = o;
  n.src[0] = base.id;
  n.src[1] = off.id;
  return addNode(n);
}

ValueId KernelBuilder::loadImm(Opcode o, ValueId base, i32 imm) {
  ADRES_CHECK(isLoad(o) && o != Opcode::LD_IH, "loadImm: wrong opcode");
  DfgNode n;
  n.op = o;
  n.src[0] = base.id;
  n.imm = imm;
  n.immSrc2 = true;
  return addNode(n);
}

ValueId KernelBuilder::loadHigh(ValueId lowHalf, ValueId base, ValueId off) {
  ADRES_CHECK(lowHalf.valid(), "loadHigh needs the low-half load");
  DfgNode n;
  n.op = Opcode::LD_IH;
  n.src[0] = base.id;
  n.src[1] = off.id;
  n.src[2] = lowHalf.id;
  return addNode(n);
}

ValueId KernelBuilder::loadHighImm(ValueId lowHalf, ValueId base, i32 imm) {
  ADRES_CHECK(lowHalf.valid(), "loadHigh needs the low-half load");
  DfgNode n;
  n.op = Opcode::LD_IH;
  n.src[0] = base.id;
  n.src[2] = lowHalf.id;
  n.imm = imm;
  n.immSrc2 = true;
  return addNode(n);
}

void KernelBuilder::store(Opcode o, ValueId base, ValueId off, ValueId data) {
  ADRES_CHECK(isStore(o), "store: wrong opcode");
  DfgNode n;
  n.op = o;
  n.src[0] = base.id;
  n.src[1] = off.id;
  n.src[2] = data.id;
  addNode(n);
}

void KernelBuilder::storeImm(Opcode o, ValueId base, i32 imm, ValueId data) {
  ADRES_CHECK(isStore(o), "store: wrong opcode");
  DfgNode n;
  n.op = o;
  n.src[0] = base.id;
  n.src[2] = data.id;
  n.imm = imm;
  n.immSrc2 = true;
  addNode(n);
}

void KernelBuilder::liveOut(int reg, ValueId v) {
  ADRES_CHECK(v.valid(), "liveOut of invalid value");
  dfg_.liveOuts.push_back({static_cast<u8>(reg), v.id});
}

void KernelBuilder::order(ValueId from, ValueId to, int dist) {
  dfg_.orderEdges.push_back({from.id, to.id, dist});
}

KernelDfg KernelBuilder::build() {
  ADRES_CHECK(!built_, "builder already consumed");
  built_ = true;
  dfg_.validate();
  return std::move(dfg_);
}

// ---------------------------------------------------------------------------
// Reference interpreter.
// ---------------------------------------------------------------------------

RefResult interpretKernel(const KernelDfg& g, u32 trips,
                          const std::vector<std::pair<int, Word>>& liveIns,
                          ByteMemory& mem) {
  g.validate();
  std::unordered_map<int, Word> cdrf;
  for (const auto& [reg, v] : liveIns) cdrf[reg] = v;
  const auto readCdrf = [&](int reg) -> Word {
    const auto it = cdrf.find(reg);
    ADRES_CHECK(it != cdrf.end(), "kernel '" << g.name
                                             << "': live-in CDRF r" << reg
                                             << " not provided");
    return it->second;
  };

  const std::size_t n = g.nodes.size();
  std::vector<Word> val(n, 0);
  std::vector<Word> phiCur(n, 0);

  // Seed phis and bind live-ins/constants.
  for (const DfgNode& nd : g.nodes) {
    const auto idx = static_cast<std::size_t>(nd.id);
    switch (nd.kind) {
      case NodeKind::kLiveIn: val[idx] = readCdrf(nd.globalReg); break;
      case NodeKind::kConst: val[idx] = fromScalar(nd.constValue); break;
      case NodeKind::kPhi: phiCur[idx] = readCdrf(nd.globalReg); break;
      case NodeKind::kOp: break;
    }
  }

  for (u32 it = 0; it < trips; ++it) {
    for (const DfgNode& nd : g.nodes) {
      const auto idx = static_cast<std::size_t>(nd.id);
      if (nd.kind == NodeKind::kPhi) {
        val[idx] = phiCur[idx];
        continue;
      }
      if (nd.kind != NodeKind::kOp) continue;
      const auto opnd = [&](int i) -> Word {
        ADRES_CHECK(nd.src[i] >= 0, "missing operand");
        return val[static_cast<std::size_t>(nd.src[i])];
      };
      if (isStore(nd.op)) {
        const u32 base = lo32u(opnd(0));
        const u32 off = nd.immSrc2
                            ? static_cast<u32>(nd.imm << memImmScale(nd.op))
                            : lo32u(opnd(1));
        mem.store(base + off, memAccessBytes(nd.op), storeData(nd.op, opnd(2)));
        continue;
      }
      if (isLoad(nd.op)) {
        const u32 base = lo32u(opnd(0));
        const u32 off = nd.immSrc2
                            ? static_cast<u32>(nd.imm << memImmScale(nd.op))
                            : lo32u(opnd(1));
        const u32 raw = mem.load(base + off, memAccessBytes(nd.op));
        if (nd.op == Opcode::LD_IH) {
          val[idx] = (opnd(2) & 0xFFFFFFFFull) | (static_cast<u64>(raw) << 32);
        } else {
          val[idx] = applyLoadResult(nd.op, 0, raw);
        }
        continue;
      }
      const Word a = opnd(0);
      const Word b = nd.immSrc2 ? fromScalar(nd.imm)
                                : (nd.src[1] >= 0 ? opnd(1) : Word{0});
      val[idx] = evalOp(nd.op, a, b, nd.imm);
    }
    // Commit the carried definitions at iteration end.
    for (const DfgNode& nd : g.nodes) {
      if (nd.kind == NodeKind::kPhi) {
        phiCur[static_cast<std::size_t>(nd.id)] =
            val[static_cast<std::size_t>(nd.carriedDef)];
      }
    }
  }

  RefResult res;
  for (const LiveOut& lo : g.liveOuts) {
    const DfgNode& nd = g.node(lo.node);
    const Word v = nd.kind == NodeKind::kPhi
                       ? phiCur[static_cast<std::size_t>(nd.id)]
                       : val[static_cast<std::size_t>(nd.id)];
    res.liveOutValues.emplace_back(lo.globalReg, v);
  }
  return res;
}

}  // namespace adres
