// Kernel dataflow-graph IR — the input to the DRESC-style modulo scheduler.
//
// This is the repo's stand-in for "ANSI-C with SIMD intrinsics compiled by
// DRESC": a kernel loop body is expressed as a dataflow graph over the
// machine's own opcodes, with live-ins from the central register file,
// loop-carried values (phi nodes with distance 1) and live-outs back to the
// CDRF.  The builder gives a C-like fluent API; the reference interpreter
// executes the graph directly (golden semantics) so every scheduled kernel
// can be validated against its own dataflow meaning.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "isa/opcodes.hpp"

namespace adres {

/// Opaque handle to a DFG value.
struct ValueId {
  int id = -1;
  bool valid() const { return id >= 0; }
};

enum class NodeKind : u8 {
  kOp,      ///< machine operation
  kLiveIn,  ///< CDRF register read before the loop
  kConst,   ///< compile-time constant (materialized in a CDRF register
            ///< by the VLIW glue, or folded into an immediate)
  kPhi,     ///< loop-carried value: iteration 0 = seed live-in,
            ///< iteration i>0 = the carried definition of iteration i-1
};

struct DfgNode {
  int id = -1;
  NodeKind kind = NodeKind::kOp;
  Opcode op = Opcode::NOP;
  i32 imm = 0;
  /// True when src2 is the immediate (no src2 edge).
  bool immSrc2 = false;
  /// Operand node ids (-1 = unused): [src1, src2, src3(store data)].
  int src[3] = {-1, -1, -1};

  // kLiveIn / kPhi seed / kConst home.
  u8 globalReg = 0;  ///< CDRF register carrying the live-in / seed / constant
  i32 constValue = 0;

  /// kPhi: node id of the carried (next-iteration) definition.
  int carriedDef = -1;
};

struct LiveOut {
  u8 globalReg = 0;
  int node = -1;  ///< value whose final-iteration instance lands in CDRF
};

/// Explicit ordering edge for memory disambiguation (from -> to must keep
/// issue order with the given iteration distance).
struct OrderEdge {
  int from = -1;
  int to = -1;
  int dist = 0;
};

struct KernelDfg {
  std::string name;
  std::vector<DfgNode> nodes;
  std::vector<LiveOut> liveOuts;
  std::vector<OrderEdge> orderEdges;

  const DfgNode& node(int id) const {
    ADRES_CHECK(id >= 0 && id < static_cast<int>(nodes.size()), "bad node id");
    return nodes[static_cast<std::size_t>(id)];
  }

  int opNodeCount() const;

  /// Structural checks (operand arity, phi closure, register ranges).
  void validate() const;
};

/// Fluent builder for kernel graphs.
class KernelBuilder {
 public:
  explicit KernelBuilder(std::string name) { dfg_.name = std::move(name); }

  /// Declares a live-in arriving in CDRF[reg].
  ValueId liveIn(int reg);

  /// A constant; the toolchain materializes it in CDRF[homeReg] via VLIW
  /// glue code, or folds it into an immediate where encodable.
  ValueId constant(i32 value, int homeReg);

  /// A loop-carried value seeded from CDRF[seedReg]; call defineCarried()
  /// with its next-iteration definition before build().
  ValueId carried(int seedReg);
  void defineCarried(ValueId phi, ValueId next);

  /// Generic binary/unary op.
  ValueId op(Opcode o, ValueId a, ValueId b);
  ValueId op(Opcode o, ValueId a);
  /// Op with immediate src2 / control field.
  ValueId opImm(Opcode o, ValueId a, i32 imm);

  /// Loads: base register value + offset (value or immediate, byte units
  /// after scaling per Table 1).
  ValueId load(Opcode o, ValueId base, ValueId off);
  ValueId loadImm(Opcode o, ValueId base, i32 imm);
  /// LD_IH needs the in-flight low half as merge input.
  ValueId loadHigh(ValueId lowHalf, ValueId base, ValueId off);
  ValueId loadHighImm(ValueId lowHalf, ValueId base, i32 imm);

  void store(Opcode o, ValueId base, ValueId off, ValueId data);
  void storeImm(Opcode o, ValueId base, i32 imm, ValueId data);

  /// Declares that the final iteration's `v` must land in CDRF[reg].
  void liveOut(int reg, ValueId v);

  /// Memory-ordering edge (aliasing stores/loads the scheduler must not
  /// reorder).
  void order(ValueId from, ValueId to, int dist = 0);

  KernelDfg build();

 private:
  ValueId addNode(DfgNode n);
  KernelDfg dfg_;
  bool built_ = false;
};

/// Memory interface for the reference interpreter.
class ByteMemory {
 public:
  virtual ~ByteMemory() = default;
  virtual u32 load(u32 addr, int bytes) = 0;
  virtual void store(u32 addr, int bytes, u32 value) = 0;
};

/// Reference execution of the kernel graph: runs `trips` iterations with
/// the given CDRF live-in values against `mem`, returns the live-out CDRF
/// updates.  This is the semantic oracle the scheduler's output is tested
/// against.
struct RefResult {
  std::vector<std::pair<int, Word>> liveOutValues;  ///< (CDRF reg, value)
};
RefResult interpretKernel(const KernelDfg& g, u32 trips,
                          const std::vector<std::pair<int, Word>>& liveIns,
                          ByteMemory& mem);

}  // namespace adres
