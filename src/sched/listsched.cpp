#include "sched/listsched.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace adres {
namespace {

struct Dep {
  int earliestBundle = 0;  ///< first bundle index this instr may occupy
};

bool readsReg(const Instr& in, int reg) {
  const bool s1 = in.src1 == reg &&
                  !(in.op == Opcode::MOVI || in.op == Opcode::PRED_SET ||
                    in.op == Opcode::PRED_CLEAR || in.op == Opcode::NOP);
  const bool s2 = !in.useImm && in.src2 == reg &&
                  !(in.op == Opcode::MOV || in.op == Opcode::MOVI ||
                    in.op == Opcode::MOVIH || in.op == Opcode::NOP ||
                    in.op == Opcode::C4ABS || in.op == Opcode::C4NEG ||
                    in.op == Opcode::C4SHUF);
  const bool s3 = isStore(in.op) && in.src3 == reg;
  const bool merge = in.op == Opcode::LD_IH && in.dst == reg;
  return s1 || s2 || s3 || merge;
}

bool writesReg(const Instr& in, int reg) {
  if (in.isNop() || isStore(in.op) || isPredDef(in.op)) return false;
  if (isBranch(in.op)) return false;
  return writesDataReg(in.op) && in.dst == reg;
}

bool readsPred(const Instr& in, int p) { return in.guard == p && p != 0; }
bool writesPred(const Instr& in, int p) { return isPredDef(in.op) && in.dst == p; }

}  // namespace

std::vector<Bundle> scheduleVliw(const std::vector<Instr>& seq) {
  std::vector<Bundle> bundles;
  std::vector<int> slotsUsed;  // per bundle

  // Per-register availability: bundle index from which a dependent may issue.
  std::array<int, kCdrfRegs> regAvail = {};
  std::array<int, kCdrfRegs> regLastWriteBundle{};
  std::array<int, kCdrfRegs> regLastReadBundle{};
  regLastWriteBundle.fill(-1);
  regLastReadBundle.fill(-1);
  std::array<int, kCprfRegs> predAvail = {};
  std::array<int, kCprfRegs> predLastWriteBundle{};
  std::array<int, kCprfRegs> predLastReadBundle{};
  predLastWriteBundle.fill(-1);
  predLastReadBundle.fill(-1);
  int lastStoreBundle = -1;
  int lastMemBundle = -1;

  for (const Instr& in : seq) {
    ADRES_CHECK(!isBranch(in.op) && !isControl(in.op),
                "scheduleVliw: control op " << opInfo(in.op).name
                                            << " not allowed here");
    // Earliest bundle from data dependences.
    int earliest = 0;
    for (int r = 0; r < kCdrfRegs; ++r) {
      if (readsReg(in, r)) earliest = std::max(earliest, regAvail[static_cast<std::size_t>(r)]);
      if (writesReg(in, r)) {
        // Output dep: don't commit before a prior writer; anti dep: don't
        // land before a prior reader (same bundle is fine — readers see
        // pre-bundle state).
        earliest = std::max(earliest, regLastWriteBundle[static_cast<std::size_t>(r)] + 1);
        earliest = std::max(earliest, regLastReadBundle[static_cast<std::size_t>(r)]);
      }
    }
    if (in.guard != 0)
      earliest = std::max(earliest, predAvail[static_cast<std::size_t>(in.guard)]);
    if (isPredDef(in.op)) {
      earliest = std::max(earliest, predLastWriteBundle[static_cast<std::size_t>(in.dst)] + 1);
      earliest = std::max(earliest, predLastReadBundle[static_cast<std::size_t>(in.dst)]);
    }
    if (isStore(in.op)) {
      earliest = std::max(earliest, lastMemBundle + 1);
    } else if (isLoad(in.op)) {
      earliest = std::max(earliest, lastStoreBundle + 1);
    }

    // Find a bundle >= earliest with a legal free slot.
    int placedBundle = -1;
    int placedSlot = -1;
    const u16 mask = opInfo(in.op).fuMask;
    for (int b = earliest;; ++b) {
      while (b >= static_cast<int>(bundles.size())) {
        bundles.emplace_back();
        slotsUsed.push_back(0);
      }
      for (int s = 0; s < kVliwSlots; ++s) {
        if (!((mask >> s) & 1)) continue;
        if (!bundles[static_cast<std::size_t>(b)].slot[s].isNop()) continue;
        placedBundle = b;
        placedSlot = s;
        break;
      }
      if (placedBundle >= 0) break;
    }
    bundles[static_cast<std::size_t>(placedBundle)].slot[placedSlot] = in;
    ++slotsUsed[static_cast<std::size_t>(placedBundle)];

    // Update availability.
    const int lat = opInfo(in.op).latency;
    for (int r = 0; r < kCdrfRegs; ++r) {
      if (readsReg(in, r))
        regLastReadBundle[static_cast<std::size_t>(r)] =
            std::max(regLastReadBundle[static_cast<std::size_t>(r)], placedBundle);
      if (writesReg(in, r)) {
        regAvail[static_cast<std::size_t>(r)] = placedBundle + lat;
        regLastWriteBundle[static_cast<std::size_t>(r)] = placedBundle;
      }
    }
    if (in.guard != 0)
      predLastReadBundle[in.guard] =
          std::max(predLastReadBundle[in.guard], placedBundle);
    if (isPredDef(in.op)) {
      predAvail[in.dst] = placedBundle + lat;
      predLastWriteBundle[in.dst] = placedBundle;
    }
    if (isStore(in.op)) lastStoreBundle = std::max(lastStoreBundle, placedBundle);
    if (isMem(in.op)) lastMemBundle = std::max(lastMemBundle, placedBundle);
  }
  return bundles;
}

}  // namespace adres
