// VLIW list scheduler: packs straight-line code into 3-slot bundles.
//
// The hardware interlocks (the core stalls on operand hazards), so packing
// is a performance matter, not correctness — but the packer still respects
// true/output dependences across bundles (intra-bundle reads see pre-bundle
// register state) and conservative memory order (stores are barriers
// against other memory ops), and it spaces dependents by producer latency
// to avoid pipeline stalls.
#pragma once

#include <vector>

#include "isa/instruction.hpp"

namespace adres {

/// Packs `seq` (virtual program order) into bundles.  Branch/control ops are
/// not accepted here — the ProgramBuilder places those in dedicated bundles.
std::vector<Bundle> scheduleVliw(const std::vector<Instr>& seq);

}  // namespace adres
