#include "sched/modulo.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include <tuple>

#include "cga/topology.hpp"
#include "isa/instruction.hpp"
#include "regfile/regfiles.hpp"

namespace adres {
namespace {

/// Last rejection reason (diagnostics only).
thread_local const char* g_lastReject = "";
#define REJECT(why)        \
  do {                     \
    g_lastReject = (why);  \
    return false;          \
  } while (0)


int latencyOf(const DfgNode& n) {
  return n.kind == NodeKind::kOp ? opInfo(n.op).latency : 0;
}

bool isDivOp(Opcode op) { return op == Opcode::DIV || op == Opcode::DIV_U; }

/// A routed dataflow edge (after phi redirection).
struct Edge {
  int producer = -1;  ///< op node producing the value
  int consumer = -1;  ///< op node consuming it
  int operandIdx = 0; ///< 0..2 -> src1/src2/src3 of the consumer FuOp
  int dist = 0;       ///< iteration distance (1 for loop-carried)
  int phi = -1;       ///< phi node when the edge carries a loop value
};

struct Placement {
  bool placed = false;
  int fu = -1;
  int t = -1;
  int commit = -1;
  int windowEnd = -1;  ///< end of the local-register validity window
  int localReg = -1;   ///< value's register in fu's local RF (if written)
  int globalReg = -1;  ///< value's CDRF scratch register (if written)
};

struct SchedState {
  int ii = 0;
  std::vector<std::array<bool, kCgaFus>> slotBusy;
  // Commit-phase tracking: several ops on one FU may commit at the same
  // modulo phase (their results all land in register files); the phase
  // becomes exclusive only once some consumer reads the FU *output
  // register* at that exact cycle.
  std::vector<std::array<u8, kCgaFus>> commitCount;
  std::vector<std::array<bool, kCgaFus>> commitExcl;

  bool commitAllowed(int cycle, int fu) const {
    return !commitExcl[static_cast<std::size_t>(cycle % ii)][static_cast<std::size_t>(fu)];
  }
  void bookCommit(int cycle, int fu) {
    ++commitCount[static_cast<std::size_t>(cycle % ii)][static_cast<std::size_t>(fu)];
  }
  /// Claims an exact-cycle output-register read of the op committing at
  /// (fu, cycle).  Fails if another op shares the phase.
  bool claimExactRead(int cycle, int fu) {
    auto& cnt = commitCount[static_cast<std::size_t>(cycle % ii)][static_cast<std::size_t>(fu)];
    if (cnt != 1) return false;
    commitExcl[static_cast<std::size_t>(cycle % ii)][static_cast<std::size_t>(fu)] = true;
    return true;
  }
  std::vector<std::array<FuOp, kCgaFus>> ops;
  std::array<int, kCgaFus> nextLocalReg = {};
  int nextScratchCdrf = 0;
  int scratchCdrfLast = 0;
  std::vector<Placement> place;
  std::vector<Preload> preloads;
  std::vector<Writeback> writebacks;
  /// (liveIn/const node, fu) -> preloaded local register.
  std::map<std::pair<int, int>, int> liveInLocal;
  int moves = 0;
  int maxTimePlusLat = 1;
};

FuOp& fuOpAt(SchedState& st, int fu, int t) {
  return st.ops[static_cast<std::size_t>(t % st.ii)][static_cast<std::size_t>(fu)];
}

SrcSel& operandField(FuOp& f, int operandIdx) {
  switch (operandIdx) {
    case 0: return f.src1;
    case 1: return f.src2;
    default: return f.src3;
  }
}

int allocLocal(SchedState& st, int fu) {
  if (st.nextLocalReg[static_cast<std::size_t>(fu)] >= kLocalRfRegs) return -1;
  return st.nextLocalReg[static_cast<std::size_t>(fu)]++;
}

int allocScratchCdrf(SchedState& st) {
  if (st.nextScratchCdrf > st.scratchCdrfLast) return -1;
  return st.nextScratchCdrf++;
}

/// Ensures the producing op writes its own local RF; returns the register.
int ensureProducerLocal(SchedState& st, int node) {
  Placement& p = st.place[static_cast<std::size_t>(node)];
  if (p.localReg >= 0) return p.localReg;
  const int reg = allocLocal(st, p.fu);
  if (reg < 0) return -1;
  FuOp& f = fuOpAt(st, p.fu, p.t);
  f.dst.toLocalRf = true;
  f.dst.localAddr = static_cast<u8>(reg);
  p.localReg = reg;
  return reg;
}

/// Ensures the producing op also writes a CDRF register (FUs 0-2 only);
/// `fixedReg` >= 0 forces the register (phi seed), else a scratch is taken.
int ensureProducerGlobal(SchedState& st, int node, int fixedReg) {
  Placement& p = st.place[static_cast<std::size_t>(node)];
  if (p.globalReg >= 0) return p.globalReg;
  if (!hasGlobalPort(p.fu)) return -1;
  const int reg = fixedReg >= 0 ? fixedReg : allocScratchCdrf(st);
  if (reg < 0) return -1;
  FuOp& f = fuOpAt(st, p.fu, p.t);
  if (f.dst.toGlobalRf) return -1;  // already writing a different CDRF reg
  f.dst.toGlobalRf = true;
  f.dst.globalAddr = static_cast<u8>(reg);
  p.globalReg = reg;
  return reg;
}

// ---------------------------------------------------------------------------
// Edge routing: breadth-first search over (fu, commit-cycle) states.
// ---------------------------------------------------------------------------

struct RouteNode {
  int f = -1;
  int c = 0;          ///< cycle at which the value is committed at f
  int parent = -1;
  int issue = -1;     ///< issue time of the move that created this state
  bool readsLocal = false;  ///< move read the parent's local register
};

/// Routes producer `prod` (an op node, already placed) to the consumer port
/// (consFu, consTime, operandIdx) with iteration distance `dist`.
/// On success fills the consumer's operand select and books all resources.
bool routeOpEdge(SchedState& st, int prodNode, int consFu, int consTime,
                 FuOp& consOp, int operandIdx, int dist, int phiSeedReg) {
  const Placement& p = st.place[static_cast<std::size_t>(prodNode)];
  const int T = consTime + dist * st.ii;  // producer-relative read instant
  if (T < p.commit) return false;

  // Zero-move terminals straight from the producer.
  // (a) Same FU: read the producer's local register.
  if (consFu == p.fu && T < p.windowEnd) {
    const int reg = ensureProducerLocal(st, prodNode);
    if (reg >= 0) {
      if (phiSeedReg >= 0)
        st.preloads.push_back({static_cast<u8>(consFu), static_cast<u8>(reg),
                               static_cast<u8>(phiSeedReg)});
      operandField(consOp, operandIdx) = SrcSel::localRf(reg);
      return true;
    }
  }
  // (b) Exact-cycle neighbour read of the producer's output register —
  // impossible for carried values (iteration 0 would need a seed).
  // Claims phase exclusivity: no other op may commit on that FU there.
  if (dist == 0 && T == p.commit && canRead(consFu, p.fu) &&
      st.claimExactRead(p.commit, p.fu)) {
    operandField(consOp, operandIdx) = SrcSel::output(p.fu);
    return true;
  }
  // (c) Through the central register file.
  if (hasGlobalPort(p.fu) && hasGlobalPort(consFu) && T >= p.commit &&
      T < p.commit + st.ii) {
    const int reg = ensureProducerGlobal(st, prodNode, phiSeedReg);
    if (reg >= 0) {
      operandField(consOp, operandIdx) = SrcSel::globalRf(reg);
      return true;
    }
  }

  // BFS through routing moves.
  std::vector<RouteNode> nodes;
  nodes.push_back({p.fu, p.commit, -1, -1, false});
  std::deque<int> queue{0};
  std::map<std::pair<int, int>, bool> visited;
  visited[{p.fu, p.commit}] = true;
  int terminal = -1;
  bool terminalLocal = false;  // consumer reads last move's local register

  const auto windowEndOf = [&](const RouteNode& rn) {
    return rn.parent < 0 ? p.windowEnd : rn.c + st.ii;
  };

  constexpr int kMaxRouteMoves = 6;
  std::vector<int> depth{0};

  while (!queue.empty() && terminal < 0) {
    const int cur = queue.front();
    queue.pop_front();
    const RouteNode rn = nodes[static_cast<std::size_t>(cur)];
    if (depth[static_cast<std::size_t>(cur)] >= kMaxRouteMoves) continue;

    // Goal tests for states other than the raw start (start handled above).
    // Expansion: moves.
    // E1: hop to a mesh neighbour reading rn.f's output at exactly rn.c.
    if (rn.c < T) {
      for (int f2 = 0; f2 < kCgaFus; ++f2) {
        if (f2 == rn.f || !canRead(f2, rn.f)) continue;
        if (visited.count({f2, rn.c + 1})) continue;
        if (st.slotBusy[static_cast<std::size_t>(rn.c % st.ii)][static_cast<std::size_t>(f2)]) continue;
        if (!st.commitAllowed(rn.c + 1, f2)) continue;
        // Reading rn's output at exactly rn.c requires a unique committer:
        // the producer (already booked, count 1) at the start state, or an
        // as-yet-unbooked route move (phase must still be empty).
        const int expectCount = rn.parent < 0 ? 1 : 0;
        if (st.commitCount[static_cast<std::size_t>(rn.c % st.ii)][static_cast<std::size_t>(rn.f)] != expectCount)
          continue;
        visited[{f2, rn.c + 1}] = true;
        nodes.push_back({f2, rn.c + 1, cur, rn.c, false});
        depth.push_back(depth[static_cast<std::size_t>(cur)] + 1);
        const int idx = static_cast<int>(nodes.size()) - 1;
        // Terminal checks for the new state.
        const RouteNode& nn = nodes.back();
        if ((nn.f == consFu && nn.c <= T && T < nn.c + st.ii) ) {
          terminal = idx; terminalLocal = true; break;
        }
        if (dist == 0 && nn.c == T && canRead(consFu, nn.f)) {
          terminal = idx; terminalLocal = false; break;
        }
        queue.push_back(idx);
      }
      if (terminal >= 0) break;
    }
    // E2: delay on the same FU — a MOV reading the local register written
    // at rn.c, re-committing later.  Requires a local write at rn.
    {
      const int wEnd = windowEndOf(rn);
      for (int m = rn.c; m < std::min(wEnd, T + 1); ++m) {
        if (visited.count({rn.f, m + 1})) continue;
        if (st.slotBusy[static_cast<std::size_t>(m % st.ii)][static_cast<std::size_t>(rn.f)]) continue;
        if (!st.commitAllowed(m + 1, rn.f)) continue;
        visited[{rn.f, m + 1}] = true;
        nodes.push_back({rn.f, m + 1, cur, m, true});
        depth.push_back(depth[static_cast<std::size_t>(cur)] + 1);
        const int idx = static_cast<int>(nodes.size()) - 1;
        const RouteNode& nn = nodes.back();
        if (nn.f == consFu && nn.c <= T && T < nn.c + st.ii) {
          terminal = idx; terminalLocal = true; break;
        }
        if (dist == 0 && nn.c == T && canRead(consFu, nn.f)) {
          terminal = idx; terminalLocal = false; break;
        }
        queue.push_back(idx);
      }
      if (terminal >= 0) break;
    }
  }

  if (terminal < 0) return false;

  // Materialize the chain from start to terminal.
  std::vector<int> chain;
  for (int i = terminal; i >= 0; i = nodes[static_cast<std::size_t>(i)].parent)
    chain.push_back(i);
  std::reverse(chain.begin(), chain.end());  // chain[0] = start

  // Determine which states need a local register (read by a delay move or
  // by the terminal-local consumer).
  std::vector<bool> needLocal(chain.size(), false);
  for (std::size_t i = 1; i < chain.size(); ++i) {
    if (nodes[static_cast<std::size_t>(chain[i])].readsLocal) needLocal[i - 1] = true;
  }
  if (terminalLocal) needLocal[chain.size() - 1] = true;

  // Start state local register (the producer's own).
  std::vector<int> regOf(chain.size(), -1);
  if (needLocal[0]) {
    const int reg = ensureProducerLocal(st, prodNode);
    if (reg < 0) return false;
    regOf[0] = reg;
  }

  // Place the moves.
  for (std::size_t i = 1; i < chain.size(); ++i) {
    const RouteNode& rn = nodes[static_cast<std::size_t>(chain[i])];
    const RouteNode& prev = nodes[static_cast<std::size_t>(chain[i - 1])];
    const int slot = rn.issue % st.ii;
    if (st.slotBusy[static_cast<std::size_t>(slot)][static_cast<std::size_t>(rn.f)]) return false;
    if (!st.commitAllowed(rn.c, rn.f)) return false;
    if (!rn.readsLocal && !st.claimExactRead(prev.c, prev.f)) return false;
    st.slotBusy[static_cast<std::size_t>(slot)][static_cast<std::size_t>(rn.f)] = true;
    st.bookCommit(rn.c, rn.f);
    FuOp& mv = st.ops[static_cast<std::size_t>(slot)][static_cast<std::size_t>(rn.f)];
    mv.op = Opcode::MOV;
    mv.schedTime = static_cast<u16>(rn.issue);
    mv.src1 = rn.readsLocal ? SrcSel::localRf(regOf[i - 1])
                            : SrcSel::output(prev.f);
    if (needLocal[i]) {
      const int reg = allocLocal(st, rn.f);
      if (reg < 0) return false;
      mv.dst.toLocalRf = true;
      mv.dst.localAddr = static_cast<u8>(reg);
      regOf[i] = reg;
    }
    ++st.moves;
    st.maxTimePlusLat = std::max(st.maxTimePlusLat, rn.c + 1);
  }

  // Hook the consumer's operand.
  const RouteNode& last = nodes[static_cast<std::size_t>(chain.back())];
  if (terminalLocal) {
    operandField(consOp, operandIdx) = SrcSel::localRf(regOf[chain.size() - 1]);
    if (phiSeedReg >= 0)
      st.preloads.push_back({static_cast<u8>(consFu),
                             static_cast<u8>(regOf[chain.size() - 1]),
                             static_cast<u8>(phiSeedReg)});
  } else {
    if (phiSeedReg >= 0) return false;  // carried values need a seeded register
    if (!st.claimExactRead(last.c, last.f)) return false;
    operandField(consOp, operandIdx) = SrcSel::output(last.f);
  }
  return true;
}

/// Routes a live-in or constant operand (no moves ever needed).
bool routeLiveInEdge(SchedState& st, const DfgNode& src, int consFu,
                     FuOp& consOp, int operandIdx) {
  if (hasGlobalPort(consFu)) {
    operandField(consOp, operandIdx) = SrcSel::globalRf(src.globalReg);
    return true;
  }
  const auto key = std::make_pair(src.id, consFu);
  const auto it = st.liveInLocal.find(key);
  int reg;
  if (it != st.liveInLocal.end()) {
    reg = it->second;
  } else {
    reg = allocLocal(st, consFu);
    if (reg < 0) return false;
    st.liveInLocal[key] = reg;
    st.preloads.push_back({static_cast<u8>(consFu), static_cast<u8>(reg),
                           src.globalReg});
  }
  operandField(consOp, operandIdx) = SrcSel::localRf(reg);
  return true;
}

// ---------------------------------------------------------------------------
// The scheduler driver.
// ---------------------------------------------------------------------------

struct EdgeRef {
  Edge e;
};

class Attempt {
 public:
  Attempt(const KernelDfg& g, int ii, const ScheduleOptions& opt,
          const std::vector<int>& boost, int perturb)
      : g_(g), opt_(opt), perturb_(perturb) {
    g_lastReject = "";
    st_.ii = ii;
    st_.slotBusy.assign(static_cast<std::size_t>(ii), {});
    st_.commitCount.assign(static_cast<std::size_t>(ii), {});
    st_.commitExcl.assign(static_cast<std::size_t>(ii), {});
    st_.ops.assign(static_cast<std::size_t>(ii), {});
    st_.place.assign(g.nodes.size(), {});
    st_.nextScratchCdrf = opt.scratchCdrfFirst;
    st_.scratchCdrfLast = opt.scratchCdrfLast;
    buildEdges();
    computeHeights();
    // Cheap backtracking: nodes that blocked a previous attempt are placed
    // first this time round.  An LD_IH drags its paired LD_I along (it can
    // never place before its low half).
    for (auto it = boost.rbegin(); it != boost.rend(); ++it) {
      std::vector<int> group{*it};
      const DfgNode& nd = g.node(*it);
      if (nd.kind == NodeKind::kOp && nd.op == Opcode::LD_IH)
        group.insert(group.begin(), nd.src[2]);
      for (auto git = group.rbegin(); git != group.rend(); ++git) {
        const auto pos = std::find(order_.begin(), order_.end(), *git);
        if (pos != order_.end()) {
          order_.erase(pos);
          order_.insert(order_.begin(), *git);
        }
      }
    }
  }

  std::optional<ScheduledKernel> run();
  int failedNode() const { return failedNode_; }

  // Diagnostic observation of the (possibly partial) attempt state.
  int placementRejects() const { return placementRejects_; }
  int routeFailures() const { return routeFailures_; }
  int routeMoves() const { return st_.moves; }
  int placedCount() const {
    int n = 0;
    for (const Placement& p : st_.place) n += p.placed ? 1 : 0;
    return n;
  }
  const char* lastReject() const { return g_lastReject; }

 private:
  void buildEdges();
  void computeHeights();
  bool placeNode(int v);
  bool tryCandidate(SchedState& st, int v, int fu, int t, bool allowSharedCommit);
  bool routeEdgeInState(SchedState& st, const Edge& e);
  int earliestStart(int v) const;
  int latestStart(int v) const;

  const KernelDfg& g_;
  const ScheduleOptions& opt_;
  SchedState st_;
  std::vector<Edge> edges_;
  std::vector<int> height_;
  std::vector<int> asap_;  ///< earliest feasible issue over dist-0 edges
  std::vector<int> alap_;  ///< latest issue on a critical-path-length schedule
  std::vector<int> order_;
  int failedNode_ = -1;
  int perturb_ = 0;
  int placementRejects_ = 0;
  int routeFailures_ = 0;
};

void Attempt::buildEdges() {
  for (const DfgNode& n : g_.nodes) {
    if (n.kind != NodeKind::kOp) continue;
    const int nOperands = isStore(n.op) || n.op == Opcode::LD_IH ? 3 : 2;
    for (int k = 0; k < nOperands; ++k) {
      const int s = n.src[k];
      if (s < 0) continue;
      if (n.op == Opcode::LD_IH && k == 2) continue;  // pairing, not dataflow
      const DfgNode& sn = g_.node(s);
      Edge e;
      e.consumer = n.id;
      e.operandIdx = k;
      if (sn.kind == NodeKind::kPhi) {
        e.producer = sn.carriedDef;
        e.dist = 1;
        e.phi = sn.id;
        const DfgNode& def = g_.node(sn.carriedDef);
        ADRES_CHECK(def.kind == NodeKind::kOp,
                    "phi carried definition must be an op");
      } else if (sn.kind == NodeKind::kOp) {
        e.producer = sn.id;
      } else {
        e.producer = sn.id;  // liveIn / const; routed specially
      }
      edges_.push_back(e);
    }
  }
}

void Attempt::computeHeights() {
  // Longest latency path to any sink over dist-0 op edges, including the
  // LD_I -> LD_IH pairing relation (the low half must be placed first).
  const std::size_t n = g_.nodes.size();
  height_.assign(n, 0);
  // Repeated relaxation (graphs are tiny).
  bool changed = true;
  int guard = 0;
  while (changed && guard++ < 1000) {
    changed = false;
    for (const Edge& e : edges_) {
      if (e.dist != 0) continue;
      const DfgNode& pn = g_.node(e.producer);
      if (pn.kind != NodeKind::kOp) continue;
      const int h = height_[static_cast<std::size_t>(e.consumer)] + latencyOf(pn);
      if (h > height_[static_cast<std::size_t>(e.producer)]) {
        height_[static_cast<std::size_t>(e.producer)] = h;
        changed = true;
      }
    }
    for (const DfgNode& nd : g_.nodes) {
      if (nd.kind != NodeKind::kOp || nd.op != Opcode::LD_IH) continue;
      const int low = nd.src[2];
      const int h = height_[static_cast<std::size_t>(nd.id)] + 1;
      if (h > height_[static_cast<std::size_t>(low)]) {
        height_[static_cast<std::size_t>(low)] = h;
        changed = true;
      }
    }
  }
  // ASAP depths over the same edge set (direction reversed).
  asap_.assign(n, 0);
  changed = true;
  guard = 0;
  while (changed && guard++ < 1000) {
    changed = false;
    for (const Edge& e : edges_) {
      if (e.dist != 0) continue;
      const DfgNode& pn = g_.node(e.producer);
      if (pn.kind != NodeKind::kOp) continue;
      const int d = asap_[static_cast<std::size_t>(e.producer)] + latencyOf(pn);
      if (d > asap_[static_cast<std::size_t>(e.consumer)]) {
        asap_[static_cast<std::size_t>(e.consumer)] = d;
        changed = true;
      }
    }
    for (const DfgNode& nd : g_.nodes) {
      if (nd.kind != NodeKind::kOp || nd.op != Opcode::LD_IH) continue;
      const int d = asap_[static_cast<std::size_t>(nd.src[2])] + 1;
      if (d > asap_[static_cast<std::size_t>(nd.id)]) {
        asap_[static_cast<std::size_t>(nd.id)] = d;
        changed = true;
      }
    }
  }
  // ALAP on a critical-path-length schedule: ops with slack are biased
  // toward their consumers, keeping routed lifetimes short.
  int critical = 0;
  for (const DfgNode& nd : g_.nodes) {
    if (nd.kind != NodeKind::kOp) continue;
    critical = std::max(critical, asap_[static_cast<std::size_t>(nd.id)] + latencyOf(nd));
  }
  alap_.assign(n, 0);
  for (const DfgNode& nd : g_.nodes) {
    if (nd.kind != NodeKind::kOp) continue;
    alap_[static_cast<std::size_t>(nd.id)] =
        critical - height_[static_cast<std::size_t>(nd.id)] - latencyOf(nd);
  }
  for (const DfgNode& nd : g_.nodes)
    if (nd.kind == NodeKind::kOp) order_.push_back(nd.id);
  std::sort(order_.begin(), order_.end(), [&](int a, int b) {
    if (height_[static_cast<std::size_t>(a)] != height_[static_cast<std::size_t>(b)])
      return height_[static_cast<std::size_t>(a)] > height_[static_cast<std::size_t>(b)];
    return a < b;
  });
  // Keep LD_I/LD_IH pairs adjacent: the high half must grab a same-FU slot
  // within II cycles of the low half, so it places immediately after it
  // before other loads consume those slots.
  std::vector<int> paired;
  paired.reserve(order_.size());
  for (int v : order_) {
    const DfgNode& nd = g_.node(v);
    if (nd.kind == NodeKind::kOp && nd.op == Opcode::LD_IH) continue;
    paired.push_back(v);
    for (const DfgNode& hi : g_.nodes) {
      if (hi.kind == NodeKind::kOp && hi.op == Opcode::LD_IH && hi.src[2] == v)
        paired.push_back(hi.id);
    }
  }
  order_ = std::move(paired);
}

int Attempt::earliestStart(int v) const {
  int est = 0;
  for (const Edge& e : edges_) {
    if (e.consumer != v) continue;
    const DfgNode& pn = g_.node(e.producer);
    if (pn.kind != NodeKind::kOp) continue;
    const Placement& p = st_.place[static_cast<std::size_t>(e.producer)];
    if (!p.placed) continue;
    est = std::max(est, p.commit - e.dist * st_.ii);
  }
  // Order edges (memory discipline).
  for (const OrderEdge& oe : g_.orderEdges) {
    if (oe.to != v) continue;
    const Placement& p = st_.place[static_cast<std::size_t>(oe.from)];
    if (p.placed) est = std::max(est, p.t + 1 - oe.dist * st_.ii);
  }
  // LD_IH issues strictly after its (already-placed) low half.
  const DfgNode& nd = g_.node(v);
  if (nd.kind == NodeKind::kOp && nd.op == Opcode::LD_IH) {
    const Placement& lp = st_.place[static_cast<std::size_t>(nd.src[2])];
    if (lp.placed) est = std::max(est, lp.t + 1);
  }
  return std::max(est, 0);
}

int Attempt::latestStart(int v) const {
  // Upper bound from already-placed consumers of v: v's commit must not be
  // later than the consumer's (dist-shifted) read instant.
  int latest = 1 << 20;
  const int lat = latencyOf(g_.node(v));
  for (const Edge& e : edges_) {
    if (e.producer != v || e.consumer == v) continue;
    const Placement& cp = st_.place[static_cast<std::size_t>(e.consumer)];
    if (!cp.placed) continue;
    latest = std::min(latest, cp.t + e.dist * st_.ii - lat);
  }
  for (const OrderEdge& oe : g_.orderEdges) {
    if (oe.from != v) continue;
    const Placement& p = st_.place[static_cast<std::size_t>(oe.to)];
    if (p.placed) latest = std::min(latest, p.t - 1 + oe.dist * st_.ii);
  }
  // LD_IH must commit within one II of its low half.
  const DfgNode& nd = g_.node(v);
  if (nd.kind == NodeKind::kOp && nd.op == Opcode::LD_IH) {
    const Placement& lp = st_.place[static_cast<std::size_t>(nd.src[2])];
    if (lp.placed) latest = std::min(latest, lp.t + st_.ii - 1);
  }
  return latest;
}

bool Attempt::routeEdgeInState(SchedState& st, const Edge& e) {
  const DfgNode& pn = g_.node(e.producer);
  const Placement& cp = st.place[static_cast<std::size_t>(e.consumer)];
  FuOp& consOp = fuOpAt(st, cp.fu, cp.t);
  if (pn.kind == NodeKind::kLiveIn || pn.kind == NodeKind::kConst) {
    return routeLiveInEdge(st, pn, cp.fu, consOp, e.operandIdx);
  }
  const int seed = e.phi >= 0 ? g_.node(e.phi).globalReg : -1;
  return routeOpEdge(st, e.producer, cp.fu, cp.t, consOp, e.operandIdx,
                     e.dist, seed);
}

bool Attempt::tryCandidate(SchedState& st, int v, int fu, int t,
                           bool allowSharedCommit) {
  const DfgNode& nd = g_.node(v);
  const OpInfo& info = opInfo(nd.op);
  const int ii = st.ii;
  const int slot = t % ii;
  const int lat = info.latency;

  // Issue-slot booking (divider is non-pipelined: 8 consecutive slots).
  if (isDivOp(nd.op)) {
    if (ii < 8) REJECT("div ii<8");
    for (int k = 0; k < 8; ++k)
      if (st.slotBusy[static_cast<std::size_t>((t + k) % ii)][static_cast<std::size_t>(fu)]) REJECT("div slots");
  } else {
    if (st.slotBusy[static_cast<std::size_t>(slot)][static_cast<std::size_t>(fu)]) REJECT("slot busy");
  }
  if (!st.commitAllowed(t + lat, fu)) REJECT("commit excl");
  if (!allowSharedCommit &&
      st.commitCount[static_cast<std::size_t>((t + lat) % ii)][static_cast<std::size_t>(fu)] != 0)
    REJECT("commit shared");

  // LD_IH pairing: same FU as the low half, committing strictly later,
  // within one II so the pair window is non-empty.
  int pairLow = -1;
  if (nd.op == Opcode::LD_IH) {
    pairLow = nd.src[2];
    const Placement& lp = st.place[static_cast<std::size_t>(pairLow)];
    if (!lp.placed || lp.fu != fu) REJECT("pair fu");
    if (t + lat <= lp.commit || t + lat >= lp.commit + ii) REJECT("pair window");
  }

  // Order-edge checks against already-placed partners.
  for (const OrderEdge& oe : g_.orderEdges) {
    if (oe.to == v) {
      const Placement& p = st.place[static_cast<std::size_t>(oe.from)];
      if (p.placed && t + oe.dist * ii < p.t + 1) return false;
    }
    if (oe.from == v) {
      const Placement& p = st.place[static_cast<std::size_t>(oe.to)];
      if (p.placed && p.t + oe.dist * ii < t + 1) return false;
    }
  }

  // Book.
  if (isDivOp(nd.op)) {
    for (int k = 0; k < 8; ++k)
      st.slotBusy[static_cast<std::size_t>((t + k) % ii)][static_cast<std::size_t>(fu)] = true;
  } else {
    st.slotBusy[static_cast<std::size_t>(slot)][static_cast<std::size_t>(fu)] = true;
  }
  st.bookCommit(t + lat, fu);

  Placement& pl = st.place[static_cast<std::size_t>(v)];
  pl.placed = true;
  pl.fu = fu;
  pl.t = t;
  pl.commit = t + lat;
  pl.windowEnd = pl.commit + ii;

  FuOp& f = st.ops[static_cast<std::size_t>(slot)][static_cast<std::size_t>(fu)];
  f.op = nd.op;
  f.schedTime = static_cast<u16>(t);
  f.imm = nd.imm;
  if (nd.immSrc2) f.src2 = SrcSel::imm();
  st.maxTimePlusLat = std::max(st.maxTimePlusLat, t + lat);

  // Pair register for LD_I/LD_IH.
  if (pairLow >= 0) {
    Placement& lp = st.place[static_cast<std::size_t>(pairLow)];
    const int reg = allocLocal(st, fu);
    if (reg < 0) REJECT("pair reg");
    FuOp& lowOp = fuOpAt(st, lp.fu, lp.t);
    lowOp.dst.toLocalRf = true;
    lowOp.dst.localAddr = static_cast<u8>(reg);
    f.dst.toLocalRf = true;
    f.dst.localAddr = static_cast<u8>(reg);
    pl.localReg = reg;
    pl.windowEnd = lp.commit + ii;  // next iteration's low write ends validity
    lp.localReg = reg;
  }

  // Route every edge whose both endpoints are now placed:
  //  - incoming edges into v,
  //  - outgoing edges from v to already-placed consumers (incl. carried).
  for (const Edge& e : edges_) {
    const bool incoming = e.consumer == v;
    const bool outgoing =
        e.producer == v && e.consumer != v &&
        st.place[static_cast<std::size_t>(e.consumer)].placed;
    const bool self = e.producer == v && e.consumer == v;
    if (!incoming && !outgoing && !self) continue;
    if (incoming) {
      const DfgNode& pn = g_.node(e.producer);
      if (pn.kind == NodeKind::kOp &&
          !st.place[static_cast<std::size_t>(e.producer)].placed)
        continue;  // routed when the producer lands
    }
    if (!routeEdgeInState(st, e)) {
      ++routeFailures_;
      REJECT("route");
    }
  }
  return true;
}

bool Attempt::placeNode(int v) {
  const DfgNode& nd = g_.node(v);
  const OpInfo& info = opInfo(nd.op);
  const int est = std::max(earliestStart(v), asap_[static_cast<std::size_t>(v)]);

  // Candidate FU preference: legality, then closeness to placed partners,
  // then pressure heuristics (keep memory FUs for memory ops, central-port
  // FUs for ops that need them).
  std::vector<int> fus;
  for (int fu = 0; fu < kCgaFus; ++fu)
    if ((info.fuMask >> fu) & 1) fus.push_back(fu);
  std::vector<int> score(kCgaFus, 0);
  for (int fu : fus) {
    int s = 0;
    for (const Edge& e : edges_) {
      const bool rel = e.consumer == v || e.producer == v;
      if (!rel) continue;
      const int other = e.consumer == v ? e.producer : e.consumer;
      const DfgNode& on = g_.node(other);
      if (on.kind == NodeKind::kOp) {
        const Placement& p = st_.place[static_cast<std::size_t>(other)];
        if (p.placed) s += 3 * torusHops(fu, p.fu);
      }
    }
    if (!isMem(nd.op) && fu < 4) s += 2;   // keep L1-port FUs free
    if (!isDivOp(nd.op) && fu < 2) s += 1; // keep divider FUs free
    s += st_.nextLocalReg[static_cast<std::size_t>(fu)];  // spread RF pressure
    if (perturb_ > 0) {
      // Deterministic jitter for restart diversity.
      const u32 h = static_cast<u32>(v * 2654435761u) ^
                    static_cast<u32>(fu * 40503u) ^
                    static_cast<u32>(perturb_ * 97u);
      s += static_cast<int>((h >> 13) % 4u);
    }
    score[static_cast<std::size_t>(fu)] = s;
  }
  std::sort(fus.begin(), fus.end(), [&](int a, int b) {
    if (score[static_cast<std::size_t>(a)] != score[static_cast<std::size_t>(b)])
      return score[static_cast<std::size_t>(a)] < score[static_cast<std::size_t>(b)];
    return a < b;
  });

  const int lst = std::min(est + opt_.timeWindow, latestStart(v));
  if (lst < est) return false;
  // Candidate times: start at the ALAP-preferred slot (keeps routed value
  // lifetimes short), then fan out later-first, then earlier.
  const int pref = std::clamp(alap_[static_cast<std::size_t>(v)], est, lst);
  std::vector<int> times;
  for (int t = pref; t <= lst; ++t) times.push_back(t);
  for (int t = pref - 1; t >= est; --t) times.push_back(t);
  // Pass 1 insists on a unique commit phase (keeps output-register
  // forwarding available for consumers); pass 2 allows phase sharing.
  for (const bool shared : {false, true}) {
    for (int t : times) {
      for (int fu : fus) {
        SchedState trial = st_;
        if (tryCandidate(trial, v, fu, t, shared)) {
          st_ = std::move(trial);
          return true;
        }
        ++placementRejects_;
      }
    }
  }
  return false;
}

std::optional<ScheduledKernel> Attempt::run() {
  for (int v : order_) {
    if (!placeNode(v)) {
      failedNode_ = v;
      return std::nullopt;
    }
  }

  // Live-outs: read the final value from the producer's local register.
  for (const LiveOut& lo : g_.liveOuts) {
    const DfgNode& nd = g_.node(lo.node);
    int prod = nd.id;
    if (nd.kind == NodeKind::kPhi) prod = nd.carriedDef;
    ADRES_CHECK(g_.node(prod).kind == NodeKind::kOp,
                "live-out must name an op or phi value");
    const int reg = ensureProducerLocal(st_, prod);
    if (reg < 0) return std::nullopt;
    st_.writebacks.push_back({lo.globalReg,
                              static_cast<u8>(st_.place[static_cast<std::size_t>(prod)].fu),
                              static_cast<u8>(reg)});
  }

  ScheduledKernel out;
  out.ii = st_.ii;
  out.opNodes = g_.opNodeCount();
  out.routeMoves = st_.moves;
  out.schedLength = st_.maxTimePlusLat;
  out.config.name = g_.name;
  out.config.ii = st_.ii;
  out.config.schedLength = st_.maxTimePlusLat;
  out.config.contexts.resize(static_cast<std::size_t>(st_.ii));
  for (int s = 0; s < st_.ii; ++s)
    for (int fu = 0; fu < kCgaFus; ++fu)
      out.config.contexts[static_cast<std::size_t>(s)].fu[fu] =
          st_.ops[static_cast<std::size_t>(s)][static_cast<std::size_t>(fu)];
  // Duplicate preloads can arise when several consumers share a seeded
  // register; they are idempotent — keep one.
  std::sort(st_.preloads.begin(), st_.preloads.end(),
            [](const Preload& a, const Preload& b) {
              return std::tie(a.fu, a.localReg, a.globalReg) <
                     std::tie(b.fu, b.localReg, b.globalReg);
            });
  st_.preloads.erase(
      std::unique(st_.preloads.begin(), st_.preloads.end(),
                  [](const Preload& a, const Preload& b) {
                    return a.fu == b.fu && a.localReg == b.localReg &&
                           a.globalReg == b.globalReg;
                  }),
      st_.preloads.end());
  out.config.preloads = st_.preloads;
  out.config.writebacks = st_.writebacks;
  out.config.validate();
  return out;
}

}  // namespace

int resourceMii(const KernelDfg& g) {
  int nAll = 0, nMem = 0, nDiv = 0;
  for (const DfgNode& n : g.nodes) {
    if (n.kind != NodeKind::kOp) continue;
    ++nAll;
    if (isMem(n.op)) ++nMem;
    if (isDivOp(n.op)) ++nDiv;
  }
  int mii = (nAll + kCgaFus - 1) / kCgaFus;
  mii = std::max(mii, (nMem + 3) / 4);
  if (nDiv > 0) mii = std::max(mii, std::max(8, (8 * nDiv + 1) / 2));
  return std::max(mii, 1);
}

int recurrenceMii(const KernelDfg& g) {
  int rec = 1;
  for (const DfgNode& phi : g.nodes) {
    if (phi.kind != NodeKind::kPhi) continue;
    // Longest latency path phi -> carriedDef over dist-0 edges.
    std::vector<int> depth(g.nodes.size(), -1);
    depth[static_cast<std::size_t>(phi.id)] = 0;
    bool changed = true;
    int guard = 0;
    while (changed && guard++ < 1000) {
      changed = false;
      for (const DfgNode& n : g.nodes) {
        if (n.kind != NodeKind::kOp) continue;
        int best = -1;
        for (int s : n.src) {
          if (s < 0) continue;
          const DfgNode& sn = g.node(s);
          if (depth[static_cast<std::size_t>(s)] < 0) continue;
          const int lat = sn.kind == NodeKind::kOp ? latencyOf(sn) : 0;
          best = std::max(best, depth[static_cast<std::size_t>(s)] + lat);
        }
        if (best > depth[static_cast<std::size_t>(n.id)]) {
          depth[static_cast<std::size_t>(n.id)] = best;
          changed = true;
        }
      }
    }
    const int d = depth[static_cast<std::size_t>(phi.carriedDef)];
    if (d >= 0) rec = std::max(rec, d + latencyOf(g.node(phi.carriedDef)));
  }
  return rec;
}

std::string ScheduleDiagnostics::summary() const {
  std::string out = "kernel '" + kernel + "': MII=max(Res " +
                    std::to_string(miiResource) + ", Rec " +
                    std::to_string(miiRecurrence) + "), " +
                    std::to_string(attempts.size()) + " attempt(s), " +
                    (succeeded ? "II=" + std::to_string(finalII) + ", " +
                                     std::to_string(finalMoves) + " moves"
                               : std::string("FAILED")) +
                    "\n";
  for (const ScheduleAttempt& a : attempts) {
    out += "  II=" + std::to_string(a.ii) + " restart " +
           std::to_string(a.restart) + ": ";
    if (a.success) {
      out += "mapped (" + std::to_string(a.placedNodes) + " ops, " +
             std::to_string(a.routeMoves) + " moves, " +
             std::to_string(a.placementRejects) + " rejects, " +
             std::to_string(a.routeFailures) + " route fails)\n";
    } else {
      out += "blocked at node " + std::to_string(a.failedNode) + " (" +
             (a.failedOp.empty() ? "?" : a.failedOp) + "), last reject '" +
             a.lastReject + "', " + std::to_string(a.placedNodes) +
             " placed, " + std::to_string(a.placementRejects) + " rejects, " +
             std::to_string(a.routeFailures) + " route fails\n";
    }
  }
  return out;
}

namespace {

ScheduleAttempt makeAttemptRecord(const Attempt& a, const KernelDfg& g,
                                  int ii, int restart, bool success) {
  ScheduleAttempt rec;
  rec.ii = ii;
  rec.restart = restart;
  rec.success = success;
  rec.placedNodes = a.placedCount();
  rec.failedNode = success ? -1 : a.failedNode();
  if (!success && rec.failedNode >= 0 &&
      g.node(rec.failedNode).kind == NodeKind::kOp)
    rec.failedOp = opInfo(g.node(rec.failedNode).op).name;
  rec.lastReject = success ? "" : a.lastReject();
  rec.placementRejects = a.placementRejects();
  rec.routeFailures = a.routeFailures();
  rec.routeMoves = a.routeMoves();
  return rec;
}

}  // namespace

ScheduledKernel scheduleKernel(const KernelDfg& g,
                               const ScheduleOptions& options) {
  g.validate();
  const int resMii = resourceMii(g);
  const int recMii = recurrenceMii(g);
  const int mii = std::max(resMii, recMii);
  if (options.diag) {
    *options.diag = {};
    options.diag->kernel = g.name;
    options.diag->miiResource = resMii;
    options.diag->miiRecurrence = recMii;
  }
  for (int ii = mii; ii <= options.maxII; ++ii) {
    std::vector<int> boost;
    for (int restart = 0; restart <= options.restartsPerII; ++restart) {
      Attempt a(g, ii, options, boost, restart);
      const auto r = a.run();
      if (options.diag)
        options.diag->attempts.push_back(
            makeAttemptRecord(a, g, ii, restart, r.has_value()));
      if (r) {
        if (options.diag) {
          options.diag->succeeded = true;
          options.diag->finalII = r->ii;
          options.diag->finalMoves = r->routeMoves;
        }
        return *r;
      }
      const int blocked = a.failedNode();
      if (blocked < 0 ||
          std::find(boost.begin(), boost.end(), blocked) != boost.end())
        break;
      boost.push_back(blocked);
    }
  }
  throw SimError("modulo scheduling failed for kernel '" + g.name +
                 "' up to II=" + std::to_string(options.maxII));
}

}  // namespace adres
