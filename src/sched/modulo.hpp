// DRESC-style modulo scheduler: maps a kernel dataflow graph onto the CGA,
// producing the configuration contexts the array sequencer executes.
//
// Algorithm (see DESIGN.md §1 "DRESC compiler" row):
//   * MII = max(ResMII, RecMII); II is increased until mapping succeeds.
//   * Operations are placed in decreasing height order onto (FU, cycle)
//     slots of the II-modulo reservation table; every dataflow edge is then
//     routed through the fabric: exact-cycle reads of neighbour output
//     registers, waits in local register files (delay moves), hops through
//     intermediate FUs (routing MOVs), or the central register file when
//     both endpoints own global ports.
//   * Values live at most II cycles per register (enforced by the routing
//     windows), so one register per routed value suffices — the classic
//     modulo-variable constraint.  Loop-carried values terminate in a
//     register seeded by a live-in preload.
//
// The resulting utilization (~60-70 % of the 16 FUs, part of it routing
// MOVs) is exactly the regime the paper reports for its MIMO-OFDM kernels.
#pragma once

#include <string>
#include <vector>

#include "cga/context.hpp"
#include "sched/dfg.hpp"

namespace adres {

/// One mapping attempt at a given (II, restart) — the structured scheduler
/// diagnostic record (queryable from tests, dumped by examples/kernel_mapping).
struct ScheduleAttempt {
  int ii = 0;
  int restart = 0;
  bool success = false;
  int placedNodes = 0;        ///< op nodes placed before success/failure
  int failedNode = -1;        ///< blocking DFG node id (-1: none / live-out stage)
  std::string failedOp;       ///< opcode name of the blocking node, "" on success
  std::string lastReject;     ///< most recent candidate-rejection reason
  int placementRejects = 0;   ///< (fu, cycle) candidates rejected
  int routeFailures = 0;      ///< dataflow-edge routing failures
  int routeMoves = 0;         ///< routing MOVs in the (possibly partial) map
};

/// Full diagnostics of a scheduleKernel() call.
struct ScheduleDiagnostics {
  std::string kernel;
  int miiResource = 0;
  int miiRecurrence = 0;
  std::vector<ScheduleAttempt> attempts;  ///< in execution order, incl. the final one
  bool succeeded = false;
  int finalII = 0;     ///< 0 when no mapping was found
  int finalMoves = 0;  ///< routing MOVs in the accepted mapping

  int totalAttempts() const { return static_cast<int>(attempts.size()); }
  /// Human-readable multi-line dump.
  std::string summary() const;
};

struct ScheduleOptions {
  int maxII = 32;
  /// Extra schedule-time slack explored per op beyond its earliest start.
  int timeWindow = 24;
  /// CDRF registers the scheduler may use for fabric-internal transport
  /// (kept disjoint from live-in/live-out registers by the caller).
  int scratchCdrfFirst = 48;
  int scratchCdrfLast = 63;
  /// Restarts per II with rotated placement order (cheap backtracking).
  int restartsPerII = 8;
  /// When non-null, filled with per-attempt records (also on failure, before
  /// scheduleKernel throws).
  ScheduleDiagnostics* diag = nullptr;
};

struct ScheduledKernel {
  KernelConfig config;
  int ii = 0;
  int opNodes = 0;     ///< dataflow ops mapped
  int routeMoves = 0;  ///< routing MOVs inserted
  int schedLength = 0;

  /// Static utilization: mapped ops (incl. moves) per context slot.
  double slotUtilization() const {
    return ii ? static_cast<double>(opNodes + routeMoves) /
                    static_cast<double>(ii * kCgaFus)
              : 0.0;
  }
};

/// Maps `g` onto the array.  Throws SimError if no mapping is found within
/// options.maxII.
ScheduledKernel scheduleKernel(const KernelDfg& g,
                               const ScheduleOptions& options = {});

/// Lower bounds (exposed for tests and the ablation benches).
int resourceMii(const KernelDfg& g);
int recurrenceMii(const KernelDfg& g);

}  // namespace adres
