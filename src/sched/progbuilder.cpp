#include "sched/progbuilder.hpp"

#include "common/check.hpp"
#include "mem/scratchpad.hpp"
#include "sched/listsched.hpp"

namespace adres {

ProgramBuilder::ProgramBuilder(std::string name) {
  prog_.name = std::move(name);
}

void ProgramBuilder::emit(const Instr& in) {
  ADRES_CHECK(!built_, "builder already consumed");
  block_.push_back(in);
}

void ProgramBuilder::li(int reg, i32 value) {
  ADRES_CHECK(value >= -(1 << 23) && value < (1 << 24),
              "li: " << value << " outside the 24-bit constant range");
  if (value >= -(1 << 11) && value < (1 << 11)) {
    Instr mi;
    mi.op = Opcode::MOVI;
    mi.dst = static_cast<u8>(reg);
    mi.useImm = true;
    mi.imm = value;
    emit(mi);
    return;
  }
  const u32 uv = static_cast<u32>(value) & 0x00FFFFFFu;
  Instr lo;
  lo.op = Opcode::MOVI;
  lo.dst = static_cast<u8>(reg);
  lo.useImm = true;
  lo.imm = static_cast<i32>(uv & 0xFFFu);
  if (lo.imm >= (1 << 11)) lo.imm -= (1 << 12);  // will be re-masked by MOVIH
  emit(lo);
  Instr hi;
  hi.op = Opcode::MOVIH;
  hi.dst = static_cast<u8>(reg);
  hi.src1 = static_cast<u8>(reg);
  hi.useImm = true;
  hi.imm = static_cast<i32>((uv >> 12) & 0xFFFu);
  emit(hi);
  if (value < 0) {
    // MOVI/MOVIH build the 24-bit pattern; sign-extend it to 32 bits.
    Instr shl;
    shl.op = Opcode::LSL;
    shl.dst = shl.src1 = static_cast<u8>(reg);
    shl.useImm = true;
    shl.imm = 8;
    emit(shl);
    Instr sar;
    sar.op = Opcode::ASR;
    sar.dst = sar.src1 = static_cast<u8>(reg);
    sar.useImm = true;
    sar.imm = 8;
    emit(sar);
  }
}

void ProgramBuilder::mov(int dst, int src) {
  Instr in;
  in.op = Opcode::MOV;
  in.dst = static_cast<u8>(dst);
  in.src1 = static_cast<u8>(src);
  emit(in);
}

void ProgramBuilder::addi(int dst, int src, i32 imm) {
  Instr in;
  in.op = Opcode::ADD;
  in.dst = static_cast<u8>(dst);
  in.src1 = static_cast<u8>(src);
  in.useImm = true;
  in.imm = imm;
  emit(in);
}

void ProgramBuilder::add(int dst, int a, int b) {
  Instr in;
  in.op = Opcode::ADD;
  in.dst = static_cast<u8>(dst);
  in.src1 = static_cast<u8>(a);
  in.src2 = static_cast<u8>(b);
  emit(in);
}

void ProgramBuilder::sub(int dst, int a, int b) {
  Instr in;
  in.op = Opcode::SUB;
  in.dst = static_cast<u8>(dst);
  in.src1 = static_cast<u8>(a);
  in.src2 = static_cast<u8>(b);
  emit(in);
}

void ProgramBuilder::ld32(int dst, int base, i32 wordOffset) {
  Instr in;
  in.op = Opcode::LD_I;
  in.dst = static_cast<u8>(dst);
  in.src1 = static_cast<u8>(base);
  in.useImm = true;
  in.imm = wordOffset;
  emit(in);
}

void ProgramBuilder::st32(int base, i32 wordOffset, int src) {
  Instr in;
  in.op = Opcode::ST_I;
  in.src1 = static_cast<u8>(base);
  in.useImm = true;
  in.imm = wordOffset;
  in.src3 = static_cast<u8>(src);
  emit(in);
}

void ProgramBuilder::ld64(int dst, int base, i32 firstWordOffset) {
  ld32(dst, base, firstWordOffset);
  Instr in;
  in.op = Opcode::LD_IH;
  in.dst = static_cast<u8>(dst);
  in.src1 = static_cast<u8>(base);
  in.useImm = true;
  in.imm = firstWordOffset + 1;
  emit(in);
}

void ProgramBuilder::st64(int base, i32 firstWordOffset, int src) {
  st32(base, firstWordOffset, src);
  Instr in;
  in.op = Opcode::ST_IH;
  in.src1 = static_cast<u8>(base);
  in.useImm = true;
  in.imm = firstWordOffset + 1;
  in.src3 = static_cast<u8>(src);
  emit(in);
}

ProgramBuilder::Label ProgramBuilder::newLabel() {
  labelBundle_.push_back(-1);
  return {static_cast<int>(labelBundle_.size()) - 1};
}

void ProgramBuilder::bind(Label l) {
  flush();
  ADRES_CHECK(l.id >= 0 && l.id < static_cast<int>(labelBundle_.size()),
              "bind: bad label");
  ADRES_CHECK(labelBundle_[static_cast<std::size_t>(l.id)] < 0,
              "label bound twice");
  labelBundle_[static_cast<std::size_t>(l.id)] =
      static_cast<int>(prog_.bundles.size());
}

void ProgramBuilder::br(Label l) {
  flush();
  Bundle b;
  b.slot[0].op = Opcode::BR;
  b.slot[0].useImm = true;
  b.slot[0].imm = 0;  // patched at build()
  fixups_.push_back({prog_.bundles.size(), l.id});
  prog_.bundles.push_back(b);
}

void ProgramBuilder::brIf(int pred, Label l) {
  flush();
  Bundle b;
  b.slot[0].op = Opcode::BR;
  b.slot[0].guard = static_cast<u8>(pred);
  b.slot[0].useImm = true;
  b.slot[0].imm = 0;
  fixups_.push_back({prog_.bundles.size(), l.id});
  prog_.bundles.push_back(b);
}

void ProgramBuilder::predLt(int pred, int a, int b) {
  Instr in;
  in.op = Opcode::PRED_LT;
  in.dst = static_cast<u8>(pred);
  in.src1 = static_cast<u8>(a);
  in.src2 = static_cast<u8>(b);
  emit(in);
}

void ProgramBuilder::predNe(int pred, int a, int b) {
  Instr in;
  in.op = Opcode::PRED_NE;
  in.dst = static_cast<u8>(pred);
  in.src1 = static_cast<u8>(a);
  in.src2 = static_cast<u8>(b);
  emit(in);
}

int ProgramBuilder::addKernel(const ScheduledKernel& k) {
  return addKernel(k.config);
}

int ProgramBuilder::addKernel(const KernelConfig& k) {
  prog_.kernels.push_back(k);
  return static_cast<int>(prog_.kernels.size()) - 1;
}

void ProgramBuilder::cga(int kernelId, int tripReg, int guard) {
  flush();
  Bundle b;
  b.slot[0].op = Opcode::CGA;
  b.slot[0].src1 = static_cast<u8>(tripReg);
  b.slot[0].guard = static_cast<u8>(guard);
  b.slot[0].useImm = true;
  b.slot[0].imm = kernelId;
  prog_.bundles.push_back(b);
}

void ProgramBuilder::halt() {
  flush();
  Bundle b;
  b.slot[0].op = Opcode::HALT;
  prog_.bundles.push_back(b);
}

void ProgramBuilder::marker(const std::string& regionName) {
  flush();
  int id = -1;
  for (std::size_t i = 0; i < prog_.regionNames.size(); ++i)
    if (prog_.regionNames[i] == regionName) id = static_cast<int>(i);
  if (id < 0) {
    prog_.regionNames.push_back(regionName);
    id = static_cast<int>(prog_.regionNames.size()) - 1;
  }
  prog_.bundles.push_back(regionMarker(id));
}

void ProgramBuilder::markerEnd() {
  flush();
  prog_.bundles.push_back(regionMarker(-1));
}

u32 ProgramBuilder::reserve(u32 bytes, u32 align) {
  ADRES_CHECK(align != 0 && (align & (align - 1)) == 0, "alignment");
  dataTop_ = (dataTop_ + align - 1) & ~(align - 1);
  const u32 addr = dataTop_;
  dataTop_ += bytes;
  ADRES_CHECK(dataTop_ <= kL1Bytes, "L1 data overflow");
  return addr;
}

u32 ProgramBuilder::dataI16(const std::vector<i16>& values, u32 align) {
  const u32 addr = reserve(static_cast<u32>(values.size() * 2), align);
  DataSegment seg;
  seg.addr = addr;
  for (i16 v : values) {
    seg.bytes.push_back(static_cast<u8>(static_cast<u16>(v)));
    seg.bytes.push_back(static_cast<u8>(static_cast<u16>(v) >> 8));
  }
  // DMA moves whole words.
  while (seg.bytes.size() % 4 != 0) seg.bytes.push_back(0);
  prog_.data.push_back(std::move(seg));
  return addr;
}

u32 ProgramBuilder::dataI32(const std::vector<i32>& values, u32 align) {
  std::vector<u32> words;
  words.reserve(values.size());
  for (i32 v : values) words.push_back(static_cast<u32>(v));
  return dataWords(words, align);
}

u32 ProgramBuilder::dataWords(const std::vector<u32>& words, u32 align) {
  const u32 addr = reserve(static_cast<u32>(words.size() * 4), align);
  DataSegment seg;
  seg.addr = addr;
  for (u32 w : words)
    for (int b = 0; b < 4; ++b) seg.bytes.push_back(static_cast<u8>(w >> (8 * b)));
  prog_.data.push_back(std::move(seg));
  return addr;
}

void ProgramBuilder::flush() {
  if (block_.empty()) return;
  const std::vector<Bundle> packed = scheduleVliw(block_);
  prog_.bundles.insert(prog_.bundles.end(), packed.begin(), packed.end());
  block_.clear();
}

Program ProgramBuilder::build() {
  ADRES_CHECK(!built_, "builder already consumed");
  flush();
  built_ = true;
  for (const Fixup& f : fixups_) {
    const int target = labelBundle_[static_cast<std::size_t>(f.label)];
    ADRES_CHECK(target >= 0, "unbound label in program '" << prog_.name << '\'');
    prog_.bundles[f.bundle].slot[0].imm =
        target - static_cast<int>(f.bundle);
  }
  prog_.validate();
  return std::move(prog_);
}

}  // namespace adres
