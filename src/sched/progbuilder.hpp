// Program builder: the assembler-level interface of the toolchain.
//
// Collects straight-line VLIW code (list-scheduled into bundles at block
// boundaries), control flow with label fixups, CGA kernel launches, region
// markers for profiling, and L1 data placement.  This plus KernelBuilder /
// scheduleKernel is the repo's "DRESC compiles a single C source to both
// machines" equivalent (DESIGN.md §1).
#pragma once

#include <string>
#include <vector>

#include "core/program.hpp"
#include "sched/modulo.hpp"

namespace adres {

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name);

  // -- Straight-line code (accumulated, list-scheduled at block ends) -------

  void emit(const Instr& in);

  /// Loads a constant into CDRF[reg] (MOVI, or MOVI+MOVIH pair for values
  /// beyond 12 bits; 24-bit range).
  void li(int reg, i32 value);

  /// Convenience wrappers for common glue code.
  void mov(int dst, int src);
  void addi(int dst, int src, i32 imm);
  void add(int dst, int a, int b);
  void sub(int dst, int a, int b);
  void ld32(int dst, int base, i32 wordOffset);
  void st32(int base, i32 wordOffset, int src);
  void ld64(int dst, int base, i32 firstWordOffset);  ///< LD_I + LD_IH pair
  void st64(int base, i32 firstWordOffset, int src);  ///< ST_I + ST_IH pair

  // -- Control flow -----------------------------------------------------------

  struct Label {
    int id = -1;
  };
  Label newLabel();
  void bind(Label l);
  void br(Label l);
  /// Branch taken when CPRF[pred] is true.
  void brIf(int pred, Label l);
  /// pred_<cmp> helper: p = (a < b) etc.
  void predLt(int pred, int a, int b);
  void predNe(int pred, int a, int b);

  // -- Kernels / control ------------------------------------------------------

  int addKernel(const ScheduledKernel& k);
  int addKernel(const KernelConfig& k);
  /// Launches kernel `kernelId` with the trip count in CDRF[tripReg];
  /// optionally guarded by CPRF[guard] (0 = always).
  void cga(int kernelId, int tripReg, int guard = 0);
  void halt();

  /// Opens profiling region `regionName` (created on first use).
  void marker(const std::string& regionName);
  /// Closes the current profiling region.
  void markerEnd();

  // -- Data -------------------------------------------------------------------

  /// Reserves `bytes` of L1 (aligned), returns the byte address.
  u32 reserve(u32 bytes, u32 align = 8);
  u32 dataI16(const std::vector<i16>& values, u32 align = 8);
  u32 dataI32(const std::vector<i32>& values, u32 align = 8);
  u32 dataWords(const std::vector<u32>& words, u32 align = 8);

  Program build();

 private:
  void flush();  ///< list-schedule the pending block into bundles

  Program prog_;
  std::vector<Instr> block_;
  std::vector<int> labelBundle_;  ///< bundle index per label (-1 unbound)
  struct Fixup {
    std::size_t bundle;
    int label;
  };
  std::vector<Fixup> fixups_;
  u32 dataTop_ = 0;
  bool built_ = false;
};

}  // namespace adres
