#include "sdr/glue.hpp"

namespace adres::sdr {
namespace {

// Register convention: r60 holds 0 and r61 holds 0xFFFF (set by the modem
// program prologue); predicates p1..p4 are glue scratch.
constexpr int kZeroReg = 60;

Instr ins(Opcode op, int dst, int s1, int s2) {
  Instr in;
  in.op = op;
  in.dst = static_cast<u8>(dst);
  in.src1 = static_cast<u8>(s1);
  in.src2 = static_cast<u8>(s2);
  return in;
}

Instr insImm(Opcode op, int dst, int s1, i32 imm) {
  Instr in;
  in.op = op;
  in.dst = static_cast<u8>(dst);
  in.src1 = static_cast<u8>(s1);
  in.useImm = true;
  in.imm = imm;
  return in;
}

Instr pred(Opcode op, int p, int s1, int s2) {
  Instr in;
  in.op = op;
  in.dst = static_cast<u8>(p);
  in.src1 = static_cast<u8>(s1);
  in.src2 = static_cast<u8>(s2);
  return in;
}

Instr predImm(Opcode op, int p, int s1, i32 imm) {
  Instr in;
  in.op = op;
  in.dst = static_cast<u8>(p);
  in.src1 = static_cast<u8>(s1);
  in.useImm = true;
  in.imm = imm;
  return in;
}

Instr guarded(Instr in, int g) {
  in.guard = static_cast<u8>(g);
  return in;
}

}  // namespace

void emitUnpack(ProgramBuilder& pb, int dstRe, int dstIm, int src) {
  pb.emit(insImm(Opcode::ASR, dstIm, src, 16));
  pb.emit(insImm(Opcode::LSL, dstRe, src, 16));
  pb.emit(insImm(Opcode::ASR, dstRe, dstRe, 16));
}

void emitFold(ProgramBuilder& pb, int dstRe, int dstIm, int accReg) {
  using greg::kT0;
  pb.emit(insImm(Opcode::C4SHUF, kT0, accReg, 0b00001110));  // [l2,l3,l2,l3]
  pb.emit(ins(Opcode::C4ADD, kT0, accReg, kT0));
  emitUnpack(pb, dstRe, dstIm, kT0);
}

void emitL1MagLanes(ProgramBuilder& pb, int dstWord, int accReg) {
  using greg::kT0;
  pb.emit(ins(Opcode::C4ABS, kT0, accReg, 0));
  pb.emit(ins(Opcode::C4PADD, dstWord, kT0, 0));
}

void emitAtan2(ProgramBuilder& pb, int dstTurns, int imReg, int reReg) {
  using namespace greg;
  const int re = kT0, im = kT1, a = kT2, t = kT3, t2 = kT4, frac = kT5;
  pb.mov(re, reReg);
  pb.mov(im, imReg);
  // Conjugate to the upper half plane.
  pb.predLt(1, im, kZeroReg);
  pb.emit(guarded(ins(Opcode::SUB, im, kZeroReg, im), 1));
  // Mirror to the right half plane.
  pb.predLt(2, re, kZeroReg);
  pb.emit(guarded(ins(Opcode::SUB, re, kZeroReg, re), 2));
  // Swap into the first octant (im <= re).
  pb.emit(pred(Opcode::PRED_GT, 3, im, re));
  pb.emit(guarded(ins(Opcode::MOV, t, re, 0), 3));
  pb.emit(guarded(ins(Opcode::MOV, re, im, 0), 3));
  pb.emit(guarded(ins(Opcode::MOV, im, t, 0), 3));
  // Normalize below 2^11 (re is the max): binary steps {8,4,2,1}.
  for (int s : {8, 4, 2, 1}) {
    pb.emit(insImm(Opcode::LSR, t, re, 10 + s));
    pb.emit(predImm(Opcode::PRED_NE, 4, t, 0));
    pb.emit(insImm(Opcode::MOVI, t2, 0, 0));
    pb.emit(guarded(insImm(Opcode::MOVI, t2, 0, s), 4));
    pb.emit(ins(Opcode::LSR, re, re, t2));
    pb.emit(ins(Opcode::LSR, im, im, t2));
  }
  // ratio12 = (im << 12) / re, with re == 0 -> 4096; clamp to 4096.
  pb.emit(insImm(Opcode::LSL, t, im, 12));
  pb.emit(ins(Opcode::DIV, a, t, re));
  pb.emit(predImm(Opcode::PRED_EQ, 4, re, 0));
  pb.li(t2, 4096);
  pb.emit(guarded(ins(Opcode::MOV, a, t2, 0), 4));
  pb.emit(pred(Opcode::PRED_GT, 4, a, t2));
  pb.emit(guarded(ins(Opcode::MOV, a, t2, 0), 4));
  // Interpolate the arctan table.
  pb.emit(insImm(Opcode::LSR, t, a, 4));
  pb.emit(insImm(Opcode::AND, frac, a, 15));
  pb.emit(insImm(Opcode::LSL, t, t, 1));
  pb.emit(ins(Opcode::ADD, t, kAtanTab, t));
  pb.emit(insImm(Opcode::LD_UC2, t2, t, 0));
  pb.emit(insImm(Opcode::LD_UC2, t, t, 1));
  pb.emit(ins(Opcode::SUB, t, t, t2));
  pb.emit(ins(Opcode::MUL, t, t, frac));
  pb.emit(insImm(Opcode::ASR, t, t, 4));
  pb.emit(ins(Opcode::ADD, a, t2, t));
  // Octant reflections.
  pb.li(t, 16384);
  pb.emit(guarded(ins(Opcode::SUB, a, t, a), 3));
  pb.li(t, 32768);
  pb.emit(guarded(ins(Opcode::SUB, a, t, a), 2));
  pb.li(t, 65536);
  pb.emit(guarded(ins(Opcode::SUB, a, t, a), 1));
  // (0, 0) input -> 0.
  pb.emit(ins(Opcode::OR, t, reReg, imReg));
  pb.emit(predImm(Opcode::PRED_EQ, 4, t, 0));
  pb.emit(guarded(insImm(Opcode::MOVI, a, 0, 0), 4));
  // Wrap to u16.
  pb.emit(insImm(Opcode::LSL, dstTurns, a, 16));
  pb.emit(insImm(Opcode::LSR, dstTurns, dstTurns, 16));
}

void emitSin(ProgramBuilder& pb, int dst, int turnsReg) {
  using namespace greg;
  const int q = kT0, frac = kT1, idx = kT2, sub = kT3, t0 = kT4;
  pb.emit(insImm(Opcode::LSR, q, turnsReg, 14));  // quadrant 0..3
  pb.li(t0, 0x3FFF);
  pb.emit(ins(Opcode::AND, frac, turnsReg, t0));
  pb.emit(insImm(Opcode::LSR, idx, frac, 6));
  pb.emit(insImm(Opcode::AND, sub, frac, 63));
  // Odd quadrants run the table backwards from 256 - idx.
  pb.emit(insImm(Opcode::AND, t0, q, 1));
  pb.emit(predImm(Opcode::PRED_NE, 1, t0, 0));
  pb.li(t0, 256);
  pb.emit(guarded(ins(Opcode::SUB, idx, t0, idx), 1));
  // Second interpolation point.
  pb.emit(insImm(Opcode::ADD, t0, idx, 1));
  pb.emit(guarded(insImm(Opcode::ADD, t0, idx, -1), 1));
  // a = tab[i0], b = tab[i1] (sign-extending halfword loads).
  pb.emit(insImm(Opcode::LSL, idx, idx, 1));
  pb.emit(ins(Opcode::ADD, idx, kSinTab, idx));
  pb.emit(insImm(Opcode::LD_C2, idx, idx, 0));
  pb.emit(insImm(Opcode::LSL, t0, t0, 1));
  pb.emit(ins(Opcode::ADD, t0, kSinTab, t0));
  pb.emit(insImm(Opcode::LD_C2, t0, t0, 0));
  // dst = a + ((b - a) * sub >> 6).
  pb.emit(ins(Opcode::SUB, t0, t0, idx));
  pb.emit(ins(Opcode::MUL, t0, t0, sub));
  pb.emit(insImm(Opcode::ASR, t0, t0, 6));
  pb.emit(ins(Opcode::ADD, dst, idx, t0));
  // Lower-half quadrants negate.
  pb.emit(insImm(Opcode::AND, t0, q, 2));
  pb.emit(predImm(Opcode::PRED_NE, 1, t0, 0));
  pb.emit(guarded(ins(Opcode::SUB, dst, kZeroReg, dst), 1));
}

void emitPhasor(ProgramBuilder& pb, int dstPacked, int turnsReg) {
  using namespace greg;
  emitSin(pb, kT5, turnsReg);
  pb.mov(kT6, kT5);  // sin
  pb.li(kT5, 0x4000);
  pb.emit(ins(Opcode::ADD, kT5, turnsReg, kT5));
  pb.emit(insImm(Opcode::LSL, kT5, kT5, 16));
  pb.emit(insImm(Opcode::LSR, kT5, kT5, 16));
  emitSin(pb, kT7, kT5);  // cos
  // pack (sin << 16) | (cos & 0xFFFF).
  pb.emit(insImm(Opcode::LSL, kT6, kT6, 16));
  pb.emit(insImm(Opcode::LSL, kT5, kT7, 16));
  pb.emit(insImm(Opcode::LSR, kT5, kT5, 16));
  pb.emit(ins(Opcode::OR, dstPacked, kT6, kT5));
}

void emitBroadcast64(ProgramBuilder& pb, int dst64, int srcPacked) {
  using greg::kScratchAddr;
  pb.st32(kScratchAddr, 0, srcPacked);
  pb.st32(kScratchAddr, 1, srcPacked);
  pb.ld64(dst64, kScratchAddr, 0);
}

void emitCmulPacked(ProgramBuilder& pb, int dstPacked, int aPacked,
                    int bPacked) {
  using namespace greg;
  emitBroadcast64(pb, kT5, aPacked);
  emitBroadcast64(pb, kT6, bPacked);
  pb.emit(ins(Opcode::D4PROD, kT7, kT5, kT6));
  pb.emit(ins(Opcode::C4PROD, kT5, kT5, kT6));
  pb.emit(ins(Opcode::C4PSUB, kT7, kT7, 0));
  pb.emit(ins(Opcode::C4PADD, kT5, kT5, 0));
  pb.emit(ins(Opcode::C4MIX, kT7, kT7, kT5));
  pb.st64(kScratchAddr, 0, kT7);
  pb.ld32(dstPacked, kScratchAddr, 0);
}

void emitArgmaxStep(ProgramBuilder& pb, int bestMag, int bestIdx, int magReg,
                    int idxReg) {
  pb.emit(pred(Opcode::PRED_GT, 1, magReg, bestMag));
  pb.emit(guarded(ins(Opcode::MOV, bestMag, magReg, 0), 1));
  pb.emit(guarded(ins(Opcode::MOV, bestIdx, idxReg, 0), 1));
}

}  // namespace adres::sdr
