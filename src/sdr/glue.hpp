// VLIW glue-code emitters: the non-kernel code of the modem (paper Table 2
// "VLIW" and "mixed" rows).  Accumulator folds, saturating L1 magnitudes,
// table-interpolated atan2 and phasor generation, packed complex multiply,
// and the xcorr arg-max — all emitted as real VLIW instructions through the
// ProgramBuilder, bit-exact with the dsp/ golden routines.
#pragma once

#include "sched/progbuilder.hpp"

namespace adres::sdr {

/// CDRF registers reserved for glue scratch (distinct from kernel live-ins
/// r1..r8, live-outs r16..23, packed constants r32.., scheduler scratch
/// r48..63).
namespace greg {
inline constexpr int kT0 = 24;
inline constexpr int kT1 = 25;
inline constexpr int kT2 = 26;
inline constexpr int kT3 = 27;
inline constexpr int kT4 = 28;
inline constexpr int kT5 = 29;
inline constexpr int kT6 = 30;
inline constexpr int kT7 = 31;
/// Address of an 8-byte L1 scratch slot the glue may clobber.
inline constexpr int kScratchAddr = 43;
/// Base addresses of the sine and atan tables (set once at program start).
inline constexpr int kSinTab = 44;
inline constexpr int kAtanTab = 45;
}  // namespace greg

/// dst.re (sext low 16) and dst.im (high 16) from a packed 32-bit complex.
void emitUnpack(ProgramBuilder& pb, int dstRe, int dstIm, int src);

/// Folds a SIMD accumulator word (two complex lanes) into scalar re/im:
/// (l0+l2, l1+l3) saturating — C4SHUF + C4ADD + sign extraction.
void emitFold(ProgramBuilder& pb, int dstRe, int dstIm, int accReg);

/// Saturating L1 magnitude lanes of an accumulator word:
/// dst = satAdd(|re|,|im|) per complex lane -> [m0, m0, m1, m1].
void emitL1MagLanes(ProgramBuilder& pb, int dstWord, int accReg);

/// Q16-turn atan2 (bit-exact with dsp::atan2Turns); inputs are full i32.
/// Clobbers kT0..kT7.
void emitAtan2(ProgramBuilder& pb, int dstTurns, int imReg, int reReg);

/// Q15 sine of a Q16-turn angle (bit-exact with dsp::sinQ15).
/// Clobbers kT0..kT4.
void emitSin(ProgramBuilder& pb, int dst, int turnsReg);

/// Packed phasor [cos|sin<<16] of a Q16-turn angle (dsp::phasorQ15 packed
/// as a 32-bit complex).  Clobbers kT0..kT6.
void emitPhasor(ProgramBuilder& pb, int dstPacked, int turnsReg);

/// Builds a 64-bit lane word [c, c] in `dst64` from a packed 32-bit complex
/// in `srcPacked` via the L1 scratch slot.
void emitBroadcast64(ProgramBuilder& pb, int dst64, int srcPacked);

/// Packed complex multiply dst = a * b (Q15, the exact cint16 recipe),
/// using SIMD ops on broadcast words.  Clobbers kT5..kT7.
void emitCmulPacked(ProgramBuilder& pb, int dstPacked, int aPacked, int bPacked);

/// Running arg-max update: if magReg > bestMag: bestMag = mag, bestIdx = idx.
/// Branchless (compare + multiply blend).  Clobbers kT0, kT1.
void emitArgmaxStep(ProgramBuilder& pb, int bestMag, int bestIdx, int magReg,
                    int idxReg);

}  // namespace adres::sdr
