#include "sdr/kernels.hpp"

namespace adres::sdr {

ValueId cmulPair(KernelBuilder& b, ValueId x, ValueId y) {
  auto d = b.op(Opcode::D4PROD, x, y);
  auto c = b.op(Opcode::C4PROD, x, y);
  auto re = b.op(Opcode::C4PSUB, d);
  auto im = b.op(Opcode::C4PADD, c);
  return b.op(Opcode::C4MIX, re, im);
}

ValueId conjPair(KernelBuilder& b, ValueId y) {
  auto n = b.op(Opcode::C4NEG, y);
  return b.op(Opcode::C4MIX, y, n);
}

ValueId macShifted2(KernelBuilder& b, ValueId acc, ValueId x, ValueId y,
                    ValueId splat8192) {
  auto p = cmulPair(b, x, y);
  auto pr = b.op(Opcode::D4PROD, p, splat8192);
  return b.op(Opcode::C4ADD, acc, pr);
}

// ---------------------------------------------------------------------------

KernelDfg FshiftKernel::build() {
  KernelBuilder b("fshift");
  auto src = b.liveIn(kSrc);
  auto dst = b.liveIn(kDst);
  auto w4 = b.liveIn(kW4);
  auto i = b.carried(kIdx);
  auto phA = b.carried(kPhA);
  auto phB = b.carried(kPhB);

  auto a = b.op(Opcode::ADD, src, i);
  auto x0lo = b.loadImm(Opcode::LD_I, a, 0);
  auto x0 = b.loadHighImm(x0lo, a, 1);
  auto x1lo = b.loadImm(Opcode::LD_I, a, 2);
  auto x1 = b.loadHighImm(x1lo, a, 3);

  auto y0 = cmulPair(b, x0, phA);
  auto y1 = cmulPair(b, x1, phB);

  auto o = b.op(Opcode::ADD, dst, i);
  b.storeImm(Opcode::ST_I, o, 0, y0);
  b.storeImm(Opcode::ST_IH, o, 1, y0);
  b.storeImm(Opcode::ST_I, o, 2, y1);
  b.storeImm(Opcode::ST_IH, o, 3, y1);

  b.defineCarried(phA, cmulPair(b, phA, w4));
  b.defineCarried(phB, cmulPair(b, phB, w4));
  b.defineCarried(i, b.opImm(Opcode::ADD, i, 16));
  return b.build();
}

KernelDfg AcorrKernel::build() {
  KernelBuilder b("acorr");
  auto src = b.liveIn(kSrc);
  auto srcLag = b.liveIn(kSrcLag);
  auto splat = b.liveIn(kSplat);
  auto i = b.carried(kIdx);
  auto accP = b.carried(kAccP);
  auto accE1 = b.carried(kAccE1);
  auto accE2 = b.carried(kAccE2);

  auto a = b.op(Opcode::ADD, src, i);
  auto xlo = b.loadImm(Opcode::LD_I, a, 0);
  auto x = b.loadHighImm(xlo, a, 1);
  auto al = b.op(Opcode::ADD, srcLag, i);
  auto ylo = b.loadImm(Opcode::LD_I, al, 0);
  auto y = b.loadHighImm(ylo, al, 1);

  auto yc = conjPair(b, y);
  auto xc = conjPair(b, x);
  b.defineCarried(accP, macShifted2(b, accP, x, yc, splat));
  b.defineCarried(accE1, macShifted2(b, accE1, x, xc, splat));
  b.defineCarried(accE2, macShifted2(b, accE2, y, yc, splat));
  b.defineCarried(i, b.opImm(Opcode::ADD, i, 8));

  b.liveOut(kAccP, accP);
  b.liveOut(kAccE1, accE1);
  b.liveOut(kAccE2, accE2);
  return b.build();
}

KernelDfg CfoCorrKernel::build() {
  KernelBuilder b("cfo_corr");
  auto src = b.liveIn(kSrc);
  auto srcLag = b.liveIn(kSrcLag);
  auto splat = b.liveIn(kSplat);
  auto i = b.carried(kIdx);
  auto acc = b.carried(kAcc);

  auto a = b.op(Opcode::ADD, src, i);
  auto xlo = b.loadImm(Opcode::LD_I, a, 0);
  auto x = b.loadHighImm(xlo, a, 1);
  auto al = b.op(Opcode::ADD, srcLag, i);
  auto ylo = b.loadImm(Opcode::LD_I, al, 0);
  auto y = b.loadHighImm(ylo, al, 1);

  auto yc = conjPair(b, y);
  b.defineCarried(acc, macShifted2(b, acc, x, yc, splat));
  b.defineCarried(i, b.opImm(Opcode::ADD, i, 8));
  b.liveOut(kAcc, acc);
  return b.build();
}

KernelDfg XcorrKernel::build() {
  KernelBuilder b("xcorr");
  auto splat = b.liveIn(reg::kConst0);  // [2048 x4] rounding multiplier

  // Per-quadrant carried address counters (all seeded from kSrc, advancing
  // 4 bytes per reference sample): localizes address fan-out so each
  // memory FU owns its own pointer, as DRESC's strength-reduced induction
  // variables would.
  // 8 hypotheses per launch (the full 16-point search runs the kernel
  // twice, the second launch with kSrc advanced by 8 samples).
  // Every load pair owns a private induction pointer (DRESC-style
  // strength-reduced clones): pointer, LD_I and LD_IH then co-locate on
  // one memory FU and their routes collapse to free local-RF reads.
  ValueId srcPtr[4];
  for (auto& p : srcPtr) p = b.carried(kSrc);
  ValueId refPtr[2];
  for (auto& p : refPtr) p = b.carried(kRef);

  // Conjugated broadcast reference sample Lc[k] (8 bytes per k), loaded
  // once per half: replicating the load caps every value's fan-out at
  // ~4 ports, which the mesh routes without move congestion.
  ValueId lcQ[2];
  for (int h = 0; h < 2; ++h) {
    auto lclo = b.loadImm(Opcode::LD_I, refPtr[h], 0);
    lcQ[h] = b.loadHighImm(lclo, refPtr[h], 1);
  }

  for (int j = 0; j < 4; ++j) {
    auto acc = b.carried(kAccBase + j);
    auto xlo = b.loadImm(Opcode::LD_I, srcPtr[j], 2 * j);
    auto x = b.loadHighImm(xlo, srcPtr[j], 2 * j + 1);
    auto p = cmulPair(b, x, lcQ[j / 2]);
    auto pr = b.op(Opcode::D4PROD, p, splat);  // rounded /16
    b.defineCarried(acc, b.op(Opcode::C4ADD, acc, pr));
    b.liveOut(kAccBase + j, acc);
  }
  for (auto& p : srcPtr) b.defineCarried(p, b.opImm(Opcode::ADD, p, 4));
  for (auto& p : refPtr) b.defineCarried(p, b.opImm(Opcode::ADD, p, 8));
  return b.build();
}

// ---------------------------------------------------------------------------
// FFT kernels.
// ---------------------------------------------------------------------------

KernelDfg BitrevKernel::build() {
  KernelBuilder b("fft_bitrev");
  auto inBase = b.liveIn(kIn);
  auto outPtr = b.carried(kOut);
  auto idxPtr = b.carried(kIdxTab);
  auto off = b.loadImm(Opcode::LD_UC2, idxPtr, 0);
  auto x = b.load(Opcode::LD_I, inBase, off);
  b.storeImm(Opcode::ST_I, outPtr, 0, x);
  b.defineCarried(outPtr, b.opImm(Opcode::ADD, outPtr, 4));
  b.defineCarried(idxPtr, b.opImm(Opcode::ADD, idxPtr, 2));
  return b.build();
}

KernelDfg FftStage1Kernel::build() {
  KernelBuilder b("fft_stage1");
  auto ptr = b.carried(kBuf);
  auto xlo = b.loadImm(Opcode::LD_I, ptr, 0);
  auto x = b.loadHighImm(xlo, ptr, 1);
  auto s = b.opImm(Opcode::C4SHUF, x, 0b01001110);  // [b, a]
  auto ah = b.opImm(Opcode::C4SHIFTR, x, 1);
  auto sh = b.opImm(Opcode::C4SHIFTR, s, 1);
  auto add = b.op(Opcode::C4ADD, ah, sh);            // [(a+b)/2, (b+a)/2]
  auto sub = b.op(Opcode::C4SUB, ah, sh);            // [(a-b)/2, (b-a)/2]
  auto subHi = b.opImm(Opcode::C4SHUF, sub, 0b01000000);  // lanes2,3 = sub0,1
  auto out = b.op(Opcode::C4HILO, add, subHi);
  b.storeImm(Opcode::ST_I, ptr, 0, out);
  b.storeImm(Opcode::ST_IH, ptr, 1, out);
  b.defineCarried(ptr, b.opImm(Opcode::ADD, ptr, 8));
  return b.build();
}

KernelDfg FftStageKernel::build(int halfBytes, bool scaleX8) {
  KernelBuilder b("fft_stage");
  auto buf = b.liveIn(kBuf);
  auto offPtr = b.carried(kOffTab);
  auto twPtr = b.carried(kTwTab);

  auto aOff = b.loadImm(Opcode::LD_UC2, offPtr, 0);
  auto aOff4 = b.opImm(Opcode::ADD, aOff, 4);
  auto bOff = b.opImm(Opcode::ADD, aOff, halfBytes);
  auto bOff4 = b.opImm(Opcode::ADD, bOff, 4);

  auto alo = b.load(Opcode::LD_I, buf, aOff);
  auto a = b.loadHigh(alo, buf, aOff4);
  auto blo = b.load(Opcode::LD_I, buf, bOff);
  auto bv = b.loadHigh(blo, buf, bOff4);
  auto wlo = b.loadImm(Opcode::LD_I, twPtr, 0);
  auto w = b.loadHighImm(wlo, twPtr, 1);

  auto t = cmulPair(b, bv, w);
  auto ah = b.opImm(Opcode::C4SHIFTR, a, 1);
  auto th = b.opImm(Opcode::C4SHIFTR, t, 1);
  auto aOut = b.op(Opcode::C4ADD, ah, th);
  auto bOut = b.op(Opcode::C4SUB, ah, th);
  if (scaleX8) {
    for (int i = 0; i < 3; ++i) {
      aOut = b.op(Opcode::C4ADD, aOut, aOut);
      bOut = b.op(Opcode::C4ADD, bOut, bOut);
    }
  }

  b.store(Opcode::ST_I, buf, aOff, aOut);
  b.store(Opcode::ST_IH, buf, aOff4, aOut);
  b.store(Opcode::ST_I, buf, bOff, bOut);
  b.store(Opcode::ST_IH, buf, bOff4, bOut);

  b.defineCarried(offPtr, b.opImm(Opcode::ADD, offPtr, 2));
  b.defineCarried(twPtr, b.opImm(Opcode::ADD, twPtr, 8));
  return b.build();
}

// ---------------------------------------------------------------------------
// Channel estimation / equalization / detection / demodulation kernels.
// ---------------------------------------------------------------------------

KernelDfg InterleaveKernel::build() {
  KernelBuilder b("sample_ordering");
  auto base0 = b.liveIn(kBase0);
  auto base1 = b.liveIn(kBase1);
  auto tab = b.carried(kTab);
  auto out = b.carried(kOut);
  auto off = b.loadImm(Opcode::LD_UC2, tab, 0);
  auto x0 = b.load(Opcode::LD_I, base0, off);
  auto x1 = b.load(Opcode::LD_I, base1, off);
  b.storeImm(Opcode::ST_I, out, 0, x0);
  b.storeImm(Opcode::ST_I, out, 1, x1);
  b.defineCarried(tab, b.opImm(Opcode::ADD, tab, 2));
  b.defineCarried(out, b.opImm(Opcode::ADD, out, 8));
  return b.build();
}

KernelDfg ChestKernel::build() {
  KernelBuilder b("sdm_processing");
  auto p1 = b.carried(kLtf1);
  auto p2 = b.carried(kLtf2);
  auto ps = b.carried(kSign);
  auto po = b.carried(kOut);
  auto r1lo = b.loadImm(Opcode::LD_I, p1, 0);
  auto r1 = b.loadHighImm(r1lo, p1, 1);
  auto r2lo = b.loadImm(Opcode::LD_I, p2, 0);
  auto r2 = b.loadHighImm(r2lo, p2, 1);
  auto slo = b.loadImm(Opcode::LD_I, ps, 0);
  auto sw = b.loadHighImm(slo, ps, 1);
  auto sum = b.op(Opcode::C4ADD, r1, r2);
  auto dif = b.op(Opcode::C4SUB, r1, r2);
  auto h0 = b.op(Opcode::D4PROD, b.opImm(Opcode::C4SHIFTR, sum, 1), sw);
  auto h1 = b.op(Opcode::D4PROD, b.opImm(Opcode::C4SHIFTR, dif, 1), sw);
  b.storeImm(Opcode::ST_I, po, 0, h0);
  b.storeImm(Opcode::ST_IH, po, 1, h0);
  b.storeImm(Opcode::ST_I, po, 2, h1);
  b.storeImm(Opcode::ST_IH, po, 3, h1);
  b.defineCarried(p1, b.opImm(Opcode::ADD, p1, 8));
  b.defineCarried(p2, b.opImm(Opcode::ADD, p2, 8));
  b.defineCarried(ps, b.opImm(Opcode::ADD, ps, 8));
  b.defineCarried(po, b.opImm(Opcode::ADD, po, 16));
  return b.build();
}

namespace {

/// Scalar extraction of the packed complex in the LOW 32 bits of `w`:
/// re = sext16(w & 0xFFFF), im = w >> 16 (arithmetic).
struct ScalarC {
  ValueId re, im;
};
ScalarC extractLow(KernelBuilder& b, ValueId w) {
  auto re = b.opImm(Opcode::ASR, b.opImm(Opcode::LSL, w, 16), 16);
  auto im = b.opImm(Opcode::ASR, w, 16);
  return {re, im};
}
ScalarC extractHigh(KernelBuilder& b, ValueId w) {
  // Shuffle lanes [2,3] down, then extract.
  auto lo = b.opImm(Opcode::C4SHUF, w, 0b00001110);
  return extractLow(b, lo);
}

}  // namespace

KernelDfg EqCoeffKernel::buildNorm() {
  KernelBuilder b("eq_coeff_norm");
  auto ph = b.carried(kH);
  auto pm = b.carried(kMid);
  auto amp128 = b.liveIn(kAmp128);
  auto c4096 = b.liveIn(kC4096);
  auto zero = b.constant(0, 40);

  // Load hcol0 = [h00 (=a), h10 (=c)], hcol1 = [h01 (=b), h11 (=d)].
  auto c0lo = b.loadImm(Opcode::LD_I, ph, 0);
  auto col0 = b.loadHighImm(c0lo, ph, 1);
  auto c1lo = b.loadImm(Opcode::LD_I, ph, 2);
  auto col1 = b.loadHighImm(c1lo, ph, 3);
  ScalarC a = extractLow(b, col0);
  ScalarC c = extractHigh(b, col0);
  ScalarC bb = extractLow(b, col1);
  ScalarC d = extractHigh(b, col1);

  auto mul = [&](ValueId x, ValueId y) { return b.op(Opcode::MUL, x, y); };
  auto sub = [&](ValueId x, ValueId y) { return b.op(Opcode::SUB, x, y); };
  auto add = [&](ValueId x, ValueId y) { return b.op(Opcode::ADD, x, y); };

  auto dr0 = sub(sub(mul(a.re, d.re), mul(a.im, d.im)),
                 sub(mul(bb.re, c.re), mul(bb.im, c.im)));
  auto di0 = sub(add(mul(a.re, d.im), mul(a.im, d.re)),
                 add(mul(bb.re, c.im), mul(bb.im, c.re)));

  // m = |dr| | |di| via sign-mask abs.
  auto iabs = [&](ValueId x) {
    auto sgn = b.opImm(Opcode::ASR, x, 31);
    return sub(b.op(Opcode::XOR, x, sgn), sgn);
  };
  auto m0 = b.op(Opcode::OR, iabs(dr0), iabs(di0));

  // Branchless binary normalization: steps {16, 8, 4, 2, 1}.
  ValueId dr = dr0, di = di0, m = m0;
  ValueId k = zero;
  for (int st : {16, 8, 4, 2, 1}) {
    const int log2s = st == 16 ? 4 : st == 8 ? 3 : st == 4 ? 2 : st == 2 ? 1 : 0;
    auto cond = b.opImm(Opcode::NE, b.opImm(Opcode::LSR, m, 9 + st), 0);
    auto amt = log2s == 0 ? cond : b.opImm(Opcode::LSL, cond, log2s);
    dr = b.op(Opcode::ASR, dr, amt);
    di = b.op(Opcode::ASR, di, amt);
    m = b.op(Opcode::LSR, m, amt);
    k = add(k, amt);
  }

  auto m8a = b.opImm(Opcode::LSR, add(mul(dr, dr), mul(di, di)), 8);
  auto m8 = add(m8a, b.opImm(Opcode::EQ, m8a, 0));
  auto invRaw = b.op(Opcode::DIV, amp128, m8);
  auto over = mul(b.op(Opcode::GT, invRaw, c4096), sub(invRaw, c4096));
  auto inv = sub(invRaw, over);

  // sh = max(k - 5, 0).
  auto shRaw = b.opImm(Opcode::ADD, k, -5);
  auto shNeg = b.opImm(Opcode::ASR, shRaw, 31);
  auto sh = b.op(Opcode::AND, shRaw, b.opImm(Opcode::NOR, shNeg, 0));

  b.storeImm(Opcode::ST_I, pm, 0, dr);
  b.storeImm(Opcode::ST_I, pm, 1, di);
  b.storeImm(Opcode::ST_I, pm, 2, inv);
  b.storeImm(Opcode::ST_I, pm, 3, sh);

  b.defineCarried(ph, b.opImm(Opcode::ADD, ph, 16));
  b.defineCarried(pm, b.opImm(Opcode::ADD, pm, 16));
  return b.build();
}

KernelDfg EqCoeffKernel::buildApply() {
  KernelBuilder b("eq_coeff_apply");
  auto ph = b.carried(kH);
  auto pm = b.carried(kMid);
  auto pw = b.carried(kW);
  auto zero = b.constant(0, 40);
  auto c32767 = b.constant(32767, 41);
  auto cm32768 = b.constant(-32768, 42);

  auto c0lo = b.loadImm(Opcode::LD_I, ph, 0);
  auto col0 = b.loadHighImm(c0lo, ph, 1);
  auto c1lo = b.loadImm(Opcode::LD_I, ph, 2);
  auto col1 = b.loadHighImm(c1lo, ph, 3);
  ScalarC a = extractLow(b, col0);
  ScalarC c = extractHigh(b, col0);
  ScalarC bb = extractLow(b, col1);
  ScalarC d = extractHigh(b, col1);

  auto dr = b.loadImm(Opcode::LD_I, pm, 0);
  auto di = b.loadImm(Opcode::LD_I, pm, 1);
  auto inv = b.loadImm(Opcode::LD_I, pm, 2);
  auto sh = b.loadImm(Opcode::LD_I, pm, 3);

  auto mul = [&](ValueId x, ValueId y) { return b.op(Opcode::MUL, x, y); };
  auto sub = [&](ValueId x, ValueId y) { return b.op(Opcode::SUB, x, y); };
  auto add = [&](ValueId x, ValueId y) { return b.op(Opcode::ADD, x, y); };

  // One W entry from (adjRe, adjIm): clamped ((num>>7)*inv)>>sh in Q13.
  auto finish = [&](ValueId numv) {
    auto t0 = b.op(Opcode::ASR, mul(b.opImm(Opcode::ASR, numv, 7), inv), sh);
    auto overP = mul(b.op(Opcode::GT, t0, c32767), sub(t0, c32767));
    auto t1 = sub(t0, overP);
    auto overN = mul(b.op(Opcode::LT, t1, cm32768), sub(t1, cm32768));
    return sub(t1, overN);
  };
  auto entry = [&](ScalarC adj, bool negate) {
    ScalarC aj = adj;
    if (negate) {
      aj.re = sub(zero, adj.re);
      aj.im = sub(zero, adj.im);
    }
    auto numRe = add(mul(aj.re, dr), mul(aj.im, di));
    auto numIm = sub(mul(aj.im, dr), mul(aj.re, di));
    auto tre = finish(numRe);
    auto tim = finish(numIm);
    // Pack (im << 16) | (re & 0xFFFF).
    auto reMask = b.opImm(Opcode::LSR, b.opImm(Opcode::LSL, tre, 16), 16);
    return b.op(Opcode::OR, b.opImm(Opcode::LSL, tim, 16), reMask);
  };

  auto w00 = entry(d, false);
  auto w01 = entry(bb, true);
  auto w10 = entry(c, true);
  auto w11 = entry(a, false);
  b.storeImm(Opcode::ST_I, pw, 0, w00);
  b.storeImm(Opcode::ST_I, pw, 1, w01);
  b.storeImm(Opcode::ST_I, pw, 2, w10);
  b.storeImm(Opcode::ST_I, pw, 3, w11);

  b.defineCarried(ph, b.opImm(Opcode::ADD, ph, 16));
  b.defineCarried(pm, b.opImm(Opcode::ADD, pm, 16));
  b.defineCarried(pw, b.opImm(Opcode::ADD, pw, 16));
  return b.build();
}

KernelDfg CompKernel::build() {
  KernelBuilder b("comp");
  auto pr = b.carried(kRx);
  auto pwm = b.carried(kWMat);
  auto po0 = b.carried(kOut0);
  auto po1 = b.carried(kOut1);

  auto rlo = b.loadImm(Opcode::LD_I, pr, 0);
  auto rw = b.loadHighImm(rlo, pr, 1);
  auto w0lo = b.loadImm(Opcode::LD_I, pwm, 0);
  auto w0 = b.loadHighImm(w0lo, pwm, 1);
  auto w1lo = b.loadImm(Opcode::LD_I, pwm, 2);
  auto w1 = b.loadHighImm(w1lo, pwm, 3);

  auto detect = [&](ValueId wrow) {
    auto t = cmulPair(b, wrow, rw);              // [w_i0*r0, w_i1*r1]
    auto s = b.opImm(Opcode::C4SHUF, t, 0b01001110);
    auto cs = b.op(Opcode::C4ADD, t, s);          // cross sum in lanes 0,1
    auto d1 = b.op(Opcode::C4ADD, cs, cs);        // x4: W is Q13
    return b.op(Opcode::C4ADD, d1, d1);
  };
  auto y0 = detect(w0);
  auto y1 = detect(w1);
  b.storeImm(Opcode::ST_I, po0, 0, y0);
  b.storeImm(Opcode::ST_I, po1, 0, y1);

  b.defineCarried(pr, b.opImm(Opcode::ADD, pr, 8));
  b.defineCarried(pwm, b.opImm(Opcode::ADD, pwm, 16));
  b.defineCarried(po0, b.opImm(Opcode::ADD, po0, 4));
  b.defineCarried(po1, b.opImm(Opcode::ADD, po1, 4));
  return b.build();
}

KernelDfg DemodKernel::build() {
  KernelBuilder b("demod_qam64");
  auto det = b.liveIn(kDet);
  auto derot = b.liveIn(kDerot);
  auto offW = b.liveIn(kOffW);
  auto c12 = b.liveIn(kC12);
  auto mulW = b.liveIn(kMul);
  auto zeroW = b.liveIn(kZero);
  auto sevenW = b.liveIn(kSeven);
  auto tab = b.carried(kTab);
  auto out = b.carried(kOut);

  auto off = b.loadImm(Opcode::LD_UC2, tab, 0);
  auto y = b.load(Opcode::LD_I, det, off);
  auto yd = cmulPair(b, y, derot);
  // Hard slicing to level indices (exact sliceLevel equivalent):
  auto x1 = b.op(Opcode::C4ADD, yd, offW);
  auto x2 = b.opImm(Opcode::C4SHIFTR, x1, 6);
  auto x3 = b.op(Opcode::C4SUB, x2, c12);
  auto idxRaw = b.op(Opcode::D4PROD, x3, mulW);
  auto idx = b.op(Opcode::C4MIN, b.op(Opcode::C4MAX, idxRaw, zeroW), sevenW);
  // Gray code: g = idx ^ (idx >> 1) (lane shift, bitwise xor).
  auto idxS = b.opImm(Opcode::C4SHIFTR, idx, 1);
  auto gray = b.op(Opcode::XOR, idx, idxS);
  b.storeImm(Opcode::ST_I, out, 0, gray);

  b.defineCarried(tab, b.opImm(Opcode::ADD, tab, 2));
  b.defineCarried(out, b.opImm(Opcode::ADD, out, 4));
  return b.build();
}

KernelDfg DemodKernel::build16() {
  KernelBuilder b("demod_qam16");
  auto det = b.liveIn(kDet);
  auto derot = b.liveIn(kDerot);
  auto thr = b.liveIn(kThr);
  auto three = b.liveIn(kThree);
  auto tab = b.carried(kTab);
  auto out = b.carried(kOut);

  auto off = b.loadImm(Opcode::LD_UC2, tab, 0);
  auto y = b.load(Opcode::LD_I, det, off);
  auto yd = cmulPair(b, y, derot);
  // Level index = #{thresholds <= v} for thresholds {-3300, 0, +3300}:
  // each saturating difference keeps its sign, so the arithmetic >>15
  // yields -1 below threshold / 0 at-or-above, and 3 plus the three
  // indicators is exactly sliceLevel's clamped floor division.
  auto sLo = b.op(Opcode::C4ADD, yd, thr);   // v + 3300
  auto sHi = b.op(Opcode::C4SUB, yd, thr);   // v - 3300
  auto iLo = b.opImm(Opcode::C4SHIFTR, sLo, 15);
  auto iMid = b.opImm(Opcode::C4SHIFTR, yd, 15);
  auto iHi = b.opImm(Opcode::C4SHIFTR, sHi, 15);
  auto sum = b.op(Opcode::C4ADD, iLo, iMid);
  sum = b.op(Opcode::C4ADD, sum, iHi);
  auto idx = b.op(Opcode::C4ADD, sum, three);
  // Gray code: g = idx ^ (idx >> 1) (lane shift, bitwise xor).
  auto idxS = b.opImm(Opcode::C4SHIFTR, idx, 1);
  auto gray = b.op(Opcode::XOR, idx, idxS);
  b.storeImm(Opcode::ST_I, out, 0, gray);

  b.defineCarried(tab, b.opImm(Opcode::ADD, tab, 2));
  b.defineCarried(out, b.opImm(Opcode::ADD, out, 4));
  return b.build();
}

}  // namespace adres::sdr
