// Processor-mapped MIMO-OFDM kernels (one builder per Table 2 kernel).
//
// Each struct documents its CDRF register interface (live-ins the VLIW glue
// must set, live-outs it may read back) and builds the kernel dataflow
// graph in exactly the arithmetic of the golden models (dsp/lanes.hpp), so
// scheduled kernels are bit-exact against dsp/ functions.
//
// Data layout convention: complex samples are 32-bit words (re in the low
// 16 bits, im in the high 16); a 64-bit kernel load pair fetches two
// consecutive samples into the SIMD lane layout [re0, im0, re1, im1].
#pragma once

#include "sched/dfg.hpp"

namespace adres::sdr {

/// Shared CDRF register plan.  Live-ins from r1; live-outs from r16;
/// r32..r39 hold packed 64-bit SIMD constants (loaded from L1 by glue);
/// r48..r63 are scheduler scratch (ScheduleOptions default).
namespace reg {
inline constexpr int kIn0 = 1;
inline constexpr int kIn1 = 2;
inline constexpr int kIn2 = 3;
inline constexpr int kIn3 = 4;
inline constexpr int kIn4 = 5;
inline constexpr int kIn5 = 6;
inline constexpr int kIn6 = 7;
inline constexpr int kIn7 = 8;
inline constexpr int kOut0 = 16;
inline constexpr int kOut1 = 17;
inline constexpr int kOut2 = 18;
inline constexpr int kOut3 = 19;
inline constexpr int kOut4 = 20;
inline constexpr int kOut5 = 21;
inline constexpr int kOut6 = 22;
inline constexpr int kOut7 = 23;
inline constexpr int kConst0 = 32;  ///< packed SIMD constants live here up
}  // namespace reg

/// The 5-op packed complex multiply, as a DFG fragment.
ValueId cmulPair(KernelBuilder& b, ValueId x, ValueId y);
/// conj of both lanes: C4MIX(y, C4NEG(y)).
ValueId conjPair(KernelBuilder& b, ValueId y);
/// acc + round(x*y / 4): D4PROD by 8192 + C4ADD (see dsp/lanes.hpp).
ValueId macShifted2(KernelBuilder& b, ValueId acc, ValueId x, ValueId y,
                    ValueId splat8192);

// ---------------------------------------------------------------------------
// fshift: y[k] = x[k] * ph, block-of-4 phasor recurrence (Table 2 "fshift").
// trips = n/4.
// ---------------------------------------------------------------------------
struct FshiftKernel {
  static constexpr int kSrc = reg::kIn0;     ///< input byte address
  static constexpr int kDst = reg::kIn1;     ///< output byte address
  static constexpr int kPhA = reg::kConst0;      ///< [ph0, ph1]
  static constexpr int kPhB = reg::kConst0 + 1;  ///< [ph2, ph3]
  static constexpr int kW4 = reg::kConst0 + 2;   ///< [w^4, w^4]
  static constexpr int kIdx = reg::kIn2;     ///< loop byte index seed (0)
  static KernelDfg build();
  static u32 trips(int nSamples) { return static_cast<u32>(nSamples / 4); }
};

// ---------------------------------------------------------------------------
// acorr: lag-16 autocorrelation + both window energies over 32 samples
// (Table 2 "acorr", run per candidate position).  trips = 16.
// Live-outs: P accumulator word, E1 word, E2 word (lane-fold in glue).
// ---------------------------------------------------------------------------
struct AcorrKernel {
  static constexpr int kSrc = reg::kIn0;      ///< &r[d]
  static constexpr int kSrcLag = reg::kIn1;   ///< &r[d+16]
  static constexpr int kIdx = reg::kIn2;      ///< 0
  static constexpr int kSplat = reg::kConst0; ///< [8192 x4]
  static constexpr int kAccP = reg::kOut0;
  static constexpr int kAccE1 = reg::kOut1;
  static constexpr int kAccE2 = reg::kOut2;
  static KernelDfg build();
  static constexpr u32 kTrips = 16;
};

// ---------------------------------------------------------------------------
// Lag correlation for CFO estimation (Table 2 "freq offset estimation"):
// acc = sum (r[k..k+1] * conj(r[k+lag..])) rounded >> 2.  trips = n/2.
// ---------------------------------------------------------------------------
struct CfoCorrKernel {
  static constexpr int kSrc = reg::kIn0;      ///< &r[d]
  static constexpr int kSrcLag = reg::kIn1;   ///< &r[d+lag]
  static constexpr int kIdx = reg::kIn2;      ///< 0
  static constexpr int kSplat = reg::kConst0;
  static constexpr int kAcc = reg::kOut0;
  static KernelDfg build();
  static u32 trips(int nSamples) { return static_cast<u32>(nSamples / 2); }
};

// ---------------------------------------------------------------------------
// xcorr: 8 timing hypotheses per launch against the 64-sample LTF
// reference (Table 2 "xcorr"; the full 16-point search launches twice,
// advancing kSrc by 8 samples).  Four carried accumulators, each covering
// two adjacent hypotheses; the conjugated broadcast reference table
// Lc[k] = [L*(k).re, L*(k).im, L*(k).re, L*(k).im] lives in L1.
// trips = 64 (one reference sample per iteration).
// ---------------------------------------------------------------------------
struct XcorrKernel {
  static constexpr int kSrc = reg::kIn0;     ///< &r[from] (seeds 2 pointers)
  static constexpr int kRef = reg::kIn1;     ///< &Lc[0] (broadcast table)
  static constexpr int kAccBase = reg::kOut0;  ///< 4 accumulators out0..out3
  static KernelDfg build();
  static constexpr u32 kTrips = 64;
  static constexpr int kHypothesesPerLaunch = 8;
};

// ---------------------------------------------------------------------------
// FFT kernels (Table 2 "fft (2x)"): bit-reversal gather, the trivial-twiddle
// first stage, and a generic descriptor-driven stage for stages 2..6.
// All operate in place on back-to-back 64-sample (256-byte) buffers so one
// launch covers both antennas — the paper's "(2x)".
// ---------------------------------------------------------------------------

/// out[i] = in[rev[i]] gather (one 32-bit sample per trip).
struct BitrevKernel {
  static constexpr int kIn = reg::kIn0;    ///< input buffer byte address
  static constexpr int kOut = reg::kIn1;   ///< output buffer (seeds pointer)
  static constexpr int kIdxTab = reg::kIn2;///< u16 byte-offset table (seeds)
  static KernelDfg build();
  static u32 trips(int nFfts) { return static_cast<u32>(64 * nFfts); }
};

/// Stage 1 (W=1) butterflies on adjacent samples, one 64-bit word per trip.
struct FftStage1Kernel {
  static constexpr int kBuf = reg::kIn0;  ///< seeds the in-place pointer
  static KernelDfg build();
  static u32 trips(int nFfts) { return static_cast<u32>(32 * nFfts); }
};

/// Stages 2..6: descriptor-driven butterfly pairs.  The final stage of a
/// receive FFT applies the x8 scaling (three saturating doublings) that
/// inverts the transmit-side x8 (dsp::rxFft contract).
struct FftStageKernel {
  static constexpr int kBuf = reg::kIn0;     ///< buffer base address
  static constexpr int kOffTab = reg::kIn1;  ///< seeds aOffsets pointer
  static constexpr int kTwTab = reg::kIn2;   ///< seeds twiddle-pair pointer
  /// `halfBytes` from FftStageTables (compile-time per stage).
  static KernelDfg build(int halfBytes, bool scaleX8 = false);
  static u32 trips(int nFfts) { return static_cast<u32>(16 * nFfts); }
};

// ---------------------------------------------------------------------------
// sample ordering (Table 2): gathers the 52 used tones of two antenna
// spectra into interleaved words used[tone] = [ant0[bin], ant1[bin]].
// trips = 52.
// ---------------------------------------------------------------------------
struct InterleaveKernel {
  static constexpr int kBase0 = reg::kIn0;   ///< antenna-0 spectrum base
  static constexpr int kBase1 = reg::kIn1;   ///< antenna-1 spectrum base
  static constexpr int kTab = reg::kIn2;     ///< seeds used-bin offset table ptr
  static constexpr int kOut = reg::kIn3;     ///< seeds output pointer
  static KernelDfg build();
  static constexpr u32 kTrips = 52;
};

// ---------------------------------------------------------------------------
// SDM processing (Table 2): MIMO channel estimation from the two
// interleaved MIMO-LTF spectra.  Writes per tone two words:
// hcol0 = [h00, h10], hcol1 = [h01, h11] at 16-byte stride.  trips = 52.
// ---------------------------------------------------------------------------
struct ChestKernel {
  static constexpr int kLtf1 = reg::kIn0;  ///< seeds interleaved-LTF1 pointer
  static constexpr int kLtf2 = reg::kIn1;  ///< seeds interleaved-LTF2 pointer
  static constexpr int kSign = reg::kIn2;  ///< seeds sign-splat table pointer
  static constexpr int kOut = reg::kIn3;   ///< seeds H output pointer
  static KernelDfg build();
  static constexpr u32 kTrips = 52;
};

// ---------------------------------------------------------------------------
// equalize coeff calc (Table 2): the branchless 32-bit ZF inversion of
// dsp::equalizerCoeffOne, one tone per trip (uses a hardwired divider, so
// II >= 8).  Reads the chest layout, writes per tone two words
// [w00, w01], [w10, w11] at 16-byte stride.  trips = 52.
// Constant registers (set by glue): see members.
// ---------------------------------------------------------------------------
struct EqCoeffKernel {
  static constexpr int kH = reg::kIn0;       ///< seeds H pointer (chest layout)
  static constexpr int kW = reg::kIn1;       ///< seeds W output pointer
  static constexpr int kMid = reg::kIn2;     ///< seeds intermediate pointer
  static constexpr int kAmp128 = reg::kIn3;  ///< constant kLtfAmpQ15 << 7
  static constexpr int kC4096 = reg::kIn4;   ///< constant 4096
  /// Two launches per symbol set: buildNorm computes the normalized
  /// determinant and its 24-bit reciprocal per tone (writes 16-byte
  /// [dr, di, inv, sh] records at kMid); buildApply forms the four W
  /// entries from those records.
  static KernelDfg buildNorm();
  static KernelDfg buildApply();
  static constexpr u32 kTrips = 52;
};

// ---------------------------------------------------------------------------
// comp (Table 2): SDM detection y = W * r per used tone; stream-separated
// outputs.  trips = 52 (per OFDM symbol).
// ---------------------------------------------------------------------------
struct CompKernel {
  static constexpr int kRx = reg::kIn0;   ///< seeds interleaved-rx pointer
  static constexpr int kWMat = reg::kIn1; ///< seeds W pointer (eqcoeff layout)
  static constexpr int kOut0 = reg::kIn2; ///< seeds stream-0 output pointer
  static constexpr int kOut1 = reg::kIn3; ///< seeds stream-1 output pointer
  static KernelDfg build();
  static constexpr u32 kTrips = 52;
};

// ---------------------------------------------------------------------------
// demod (Table 2): CPE derotation + hard slicing + gray encoding of one
// detected stream; one data tone per trip (gathered past the pilots).
// Output per tone: 32-bit word [grayI (u16), grayQ (u16)].
// trips = 48 per stream per OFDM symbol.
//
// Two variants share the register layout for live-in pointers:
//  - build():   QAM-64 slicing via the shift/multiply level recipe.
//  - build16(): QAM-16 slicing via a saturating comparison network — the
//    QAM-16 unit (1650) admits no exact post-shift multiply recipe (the
//    residual span exceeds Q15), so the level index is the count of
//    thresholds {-2*unit, 0, +2*unit} at or below the sample.
// ---------------------------------------------------------------------------
struct DemodKernel {
  static constexpr int kDet = reg::kIn0;     ///< detected-stream base address
  static constexpr int kTab = reg::kIn1;     ///< seeds data-tone offset table
  static constexpr int kOut = reg::kIn2;     ///< seeds gray output pointer
  static constexpr int kDerot = reg::kConst0;     ///< [derot, derot]
  // QAM-64 constants.
  static constexpr int kOffW = reg::kConst0 + 1;  ///< splat(8*unit = 6400)
  static constexpr int kC12 = reg::kConst0 + 2;   ///< splat(12)
  static constexpr int kMul = reg::kConst0 + 3;   ///< splat(1312)
  static constexpr int kZero = reg::kConst0 + 4;  ///< splat(0)
  static constexpr int kSeven = reg::kConst0 + 5; ///< splat(7)
  // QAM-16 constants (slots overlap the QAM-64 set; one variant per program).
  static constexpr int kThr = reg::kConst0 + 1;   ///< splat(2*unit = 3300)
  static constexpr int kThree = reg::kConst0 + 2; ///< splat(3)
  static KernelDfg build();
  static KernelDfg build16();
  static constexpr u32 kTrips = 48;
};

}  // namespace adres::sdr
