#include "sdr/modem_program.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <fstream>
#include <mutex>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "dsp/lanes.hpp"
#include "dsp/ofdm.hpp"
#include "dsp/preamble.hpp"
#include "dsp/qam.hpp"
#include "dsp/trig_tables.hpp"
#include "sdr/glue.hpp"
#include "sdr/kernels.hpp"
#include "sdr/tables.hpp"
#include "trace/telemetry.hpp"

namespace adres::sdr {

namespace detail {
/// Per-tier pre-decoded plan sets of one built modem program, filled
/// lazily under the mutex (plansFor).
struct ModemPlanCache {
  std::mutex mu;
  std::array<std::shared_ptr<const ProgramPlans>, kExecTierCount> byTier;
};
}  // namespace detail

namespace {

using dsp::kLtfAmpQ15;

// Modem state registers (persist across the whole program).
constexpr int rCoarse = 10;   ///< coarse CFO compensating step
constexpr int rTotal = 11;    ///< total CFO compensating step
constexpr int rLtfStart = 12; ///< fine-timing sample index
constexpr int rPair = 13;     ///< symbol-pair loop counter
constexpr int rTmpA = 14;
constexpr int rTmpB = 15;
constexpr int rDataBase = 46; ///< first data sample index
constexpr int rNumPairs = 47;
constexpr int rZero = 60;

// Fixed receive-side sample positions (packet starts within the first STF
// period; see header).
constexpr int kStfCorrAt = 32;       ///< coarse-CFO correlation start
constexpr int kCompFrom = 176;       ///< coarse-compensated window start
constexpr int kCompLen = 160;        ///< covers the legacy LTF periods
constexpr int kSearchFrom = 184;     ///< xcorr hypothesis 0 (true start 192)

Instr ins(Opcode op, int dst, int s1, int s2) {
  Instr in;
  in.op = op;
  in.dst = static_cast<u8>(dst);
  in.src1 = static_cast<u8>(s1);
  in.src2 = static_cast<u8>(s2);
  return in;
}

Instr insImm(Opcode op, int dst, int s1, i32 imm) {
  Instr in;
  in.op = op;
  in.dst = static_cast<u8>(dst);
  in.src1 = static_cast<u8>(s1);
  in.useImm = true;
  in.imm = imm;
  return in;
}

Instr predOp(Opcode op, int p, int s1, int s2) {
  Instr in;
  in.op = op;
  in.dst = static_cast<u8>(p);
  in.src1 = static_cast<u8>(s1);
  in.src2 = static_cast<u8>(s2);
  return in;
}

Instr guarded(Instr in, int g) {
  in.guard = static_cast<u8>(g);
  return in;
}

std::vector<u32> wordsToU32(const std::vector<Word>& ws) {
  std::vector<u32> out;
  for (Word w : ws) {
    out.push_back(static_cast<u32>(w));
    out.push_back(static_cast<u32>(w >> 32));
  }
  return out;
}

std::vector<i16> u16AsI16(const std::vector<u16>& v) {
  return {reinterpret_cast<const i16*>(v.data()),
          reinterpret_cast<const i16*>(v.data()) + v.size()};
}

/// Everything needed while emitting the program.
struct Emitter {
  ProgramBuilder pb{"mimo_ofdm_rx"};
  ModemLayout L;
  int numSymbols;
  dsp::Modulation mod = dsp::Modulation::kQam64;

  // Kernel ids.
  int kAcorr, kCfo, kFshift, kXcorr, kBitrev, kStage1, kInterleave, kChest,
      kEqNorm, kEqApply, kComp, kDemod;
  int kStage[5];  // stages 2..6
  int stageHalfBytes[5];

  // Table addresses.
  u32 sinTab, atanTab, revTab, usedTab, dataTab, signTab, ltfRef, identTab,
      polTab, pilotExpTab, pilotOffTab, constWords;
  u32 stageOff[5], stageTw[5];

  // Packed 64-bit constant slots (word-pair indices in constWords).
  enum ConstSlot {
    kCSplat8192 = 0,
    kCSplat2048,
    kCSplat6400,
    kCSplat12,
    kCSplat1312,
    kCSplat0,
    kCSplat7,
    kCSplat3300,
    kCSplat3,
    kConstSlotCount
  };

  void liAddr(int reg, u32 addr) { pb.li(reg, static_cast<i32>(addr)); }

  /// Loads packed constant `slot` into CDRF[dstReg].
  void loadConst(int dstReg, int slot) {
    liAddr(rTmpA, constWords);
    pb.ld64(dstReg, rTmpA, slot * 2);
  }

  void emitTablesAndLayout();
  void emitPrologue();
  void emitDetection();
  void emitCoarseCfo();
  void emitCoarseCompensation();
  void emitTiming();
  void emitFineCfo();
  void emitMimoCompensation();
  void emitPreambleFfts();
  void emitOrderingAndChest();
  void emitEqualizer();
  void emitDataLoop();

  /// Emits the phasor setup for an fshift launch: computes [ph0..ph3] and
  /// w^4 from stepReg and the start-sample register, filling the kernel's
  /// packed-constant registers.  Uses kernel-out regs 16..19 as temps.
  void emitFshiftSetup(int stepReg, int startSampleReg);

  /// Runs the mapped FFT over nBuf back-to-back buffers at fftWork.
  void emitFftPipeline(int nBuf);
};

void Emitter::emitTablesAndLayout() {
  const int rxSamples = dsp::kPreambleLen + numSymbols * dsp::kSymbolLen;
  L.rx0 = pb.reserve(static_cast<u32>(4 * rxSamples));
  L.rx1 = pb.reserve(static_cast<u32>(4 * rxSamples));
  L.comp = pb.reserve(4 * (kCompLen + 64));
  L.compMimo0 = pb.reserve(4 * 160);
  L.compMimo1 = pb.reserve(4 * 160);
  L.compData0 = pb.reserve(4 * 160);
  L.compData1 = pb.reserve(4 * 160);
  L.fftWork = pb.reserve(4 * 256);
  L.interleaved0 = pb.reserve(8 * 52);
  L.interleaved1 = pb.reserve(8 * 52);
  L.hBuf = pb.reserve(16 * 52);
  L.hBuf2 = pb.reserve(16 * 52);
  L.midBuf = pb.reserve(16 * 52);
  L.wBuf = pb.reserve(16 * 52);
  L.rxUsed0 = pb.reserve(8 * 52);
  L.rxUsed1 = pb.reserve(8 * 52);
  L.det0 = pb.reserve(4 * 52 * 2);
  L.det1 = pb.reserve(4 * 52 * 2);
  L.gray = pb.reserve(static_cast<u32>(4 * 48 * 2 * numSymbols));
  L.status = pb.reserve(16);
  L.scratch = pb.reserve(16);

  sinTab = pb.dataI16(dsp::sinQuarterTableDump());
  atanTab = pb.dataI16(u16AsI16(dsp::atanTableDump()));
  revTab = pb.dataI16(u16AsI16(bitrevByteOffsets()));
  usedTab = pb.dataI16(u16AsI16(usedBinByteOffsets()));
  dataTab = pb.dataI16(u16AsI16(dataToneByteOffsets()));
  signTab = pb.dataWords(wordsToU32(ltfSignSplats()));
  ltfRef = pb.dataWords(wordsToU32(ltfConjBroadcast()));
  {
    // Identity gather covering the whole chest layout (52 tones x 16 B).
    std::vector<u16> ident(208);
    for (int i = 0; i < 208; ++i) ident[static_cast<std::size_t>(i)] = static_cast<u16>(4 * i);
    identTab = pb.dataI16(u16AsI16(ident));
  }
  {
    std::vector<i16> pol(32);
    for (int i = 0; i < 32; ++i) pol[static_cast<std::size_t>(i)] = dsp::pilotPolarity(i);
    polTab = pb.dataI16(pol);
  }
  {
    std::vector<i16> pe(4);
    for (int i = 0; i < 4; ++i)
      pe[static_cast<std::size_t>(i)] =
          static_cast<i16>(dsp::kPilotBase[static_cast<std::size_t>(i)] * kLtfAmpQ15);
    pilotExpTab = pb.dataI16(pe);
  }
  {
    const auto pos = pilotUsedPositions();
    std::vector<u16> off(4);
    for (int i = 0; i < 4; ++i) off[static_cast<std::size_t>(i)] = static_cast<u16>(4 * pos[static_cast<std::size_t>(i)]);
    pilotOffTab = pb.dataI16(u16AsI16(off));
  }
  {
    std::vector<Word> consts(kConstSlotCount);
    consts[kCSplat8192] = dsp::lanes::splat(8192);
    consts[kCSplat2048] = dsp::lanes::splat(2048);
    consts[kCSplat6400] = dsp::lanes::splat(6400);
    consts[kCSplat12] = dsp::lanes::splat(12);
    consts[kCSplat1312] = dsp::lanes::splat(1312);
    consts[kCSplat0] = dsp::lanes::splat(0);
    consts[kCSplat7] = dsp::lanes::splat(7);
    consts[kCSplat3300] = dsp::lanes::splat(3300);
    consts[kCSplat3] = dsp::lanes::splat(3);
    constWords = pb.dataWords(wordsToU32(consts));
  }
  for (int s = 2; s <= 6; ++s) {
    const FftStageTables t = fftStageTables(s, 4);
    stageOff[s - 2] = pb.dataI16(u16AsI16(t.aOffsets));
    stageTw[s - 2] = pb.dataWords(wordsToU32(t.twiddlePairs));
    stageHalfBytes[s - 2] = t.halfBytes;
  }

  // Kernels.
  kAcorr = pb.addKernel(scheduleKernel(AcorrKernel::build()));
  kCfo = pb.addKernel(scheduleKernel(CfoCorrKernel::build()));
  kFshift = pb.addKernel(scheduleKernel(FshiftKernel::build()));
  kXcorr = pb.addKernel(scheduleKernel(XcorrKernel::build()));
  kBitrev = pb.addKernel(scheduleKernel(BitrevKernel::build()));
  kStage1 = pb.addKernel(scheduleKernel(FftStage1Kernel::build()));
  for (int s = 2; s <= 6; ++s)
    kStage[s - 2] = pb.addKernel(scheduleKernel(
        FftStageKernel::build(stageHalfBytes[s - 2], /*scaleX8=*/s == 6)));
  kInterleave = pb.addKernel(scheduleKernel(InterleaveKernel::build()));
  kChest = pb.addKernel(scheduleKernel(ChestKernel::build()));
  kEqNorm = pb.addKernel(scheduleKernel(EqCoeffKernel::buildNorm()));
  kEqApply = pb.addKernel(scheduleKernel(EqCoeffKernel::buildApply()));
  kComp = pb.addKernel(scheduleKernel(CompKernel::build()));
  kDemod = pb.addKernel(scheduleKernel(mod == dsp::Modulation::kQam16
                                           ? DemodKernel::build16()
                                           : DemodKernel::build()));
}

void Emitter::emitPrologue() {
  pb.li(rZero, 0);
  liAddr(greg::kSinTab, sinTab);
  liAddr(greg::kAtanTab, atanTab);
  liAddr(greg::kScratchAddr, L.scratch);
  pb.li(rPair, 0);
  pb.li(rNumPairs, numSymbols / 2);
}

void Emitter::emitDetection() {
  pb.marker("acorr");
  for (int d : {0, 32}) {
    liAddr(AcorrKernel::kSrc, L.rx0 + 4 * static_cast<u32>(d));
    liAddr(AcorrKernel::kSrcLag, L.rx0 + 4 * static_cast<u32>(d + 16));
    pb.li(AcorrKernel::kIdx, 0);
    pb.li(AcorrKernel::kAccP, 0);
    pb.li(AcorrKernel::kAccE1, 0);
    pb.li(AcorrKernel::kAccE2, 0);
    loadConst(AcorrKernel::kSplat, kCSplat8192);
    pb.li(rTmpB, AcorrKernel::kTrips);
    pb.cga(kAcorr, rTmpB);
    // Detection decision: |P|_L1 >= 3*max(E1,E2)>>2, energy above floor.
    emitL1MagLanes(pb, 16, AcorrKernel::kAccP);
    emitUnpack(pb, 16, 17, 16);  // m in r16
    emitFold(pb, 18, 19, AcorrKernel::kAccE1);
    emitFold(pb, 19, 20, AcorrKernel::kAccE2);
    pb.emit(predOp(Opcode::PRED_GT, 1, 19, 18));
    pb.emit(guarded(ins(Opcode::MOV, 18, 19, 0), 1));  // e = max(E1,E2)
    pb.emit(insImm(Opcode::MUL, 20, 18, 3));
    pb.emit(insImm(Opcode::ASR, 20, 20, 2));  // threshold
    pb.emit(insImm(Opcode::GT, 21, 18, 64));
    pb.emit(ins(Opcode::GE, 22, 16, 20));
    pb.emit(ins(Opcode::AND, 21, 21, 22));
    liAddr(rTmpA, L.status);
    pb.st32(rTmpA, 0, 21);  // sticky-ish: second launch overwrites
  }
  pb.markerEnd();
}

void Emitter::emitCoarseCfo() {
  pb.marker("freq offset estimation");
  liAddr(CfoCorrKernel::kSrc, L.rx0 + 4 * kStfCorrAt);
  liAddr(CfoCorrKernel::kSrcLag, L.rx0 + 4 * (kStfCorrAt + 16));
  pb.li(CfoCorrKernel::kIdx, 0);
  pb.li(CfoCorrKernel::kAcc, 0);
  loadConst(CfoCorrKernel::kSplat, kCSplat8192);
  pb.li(rTmpB, static_cast<i32>(CfoCorrKernel::trips(64)));
  pb.cga(kCfo, rTmpB);
  emitFold(pb, 16, 17, CfoCorrKernel::kAcc);
  emitAtan2(pb, 18, 17, 16);
  // signed angle / 16 (C-truncating divide).
  pb.emit(insImm(Opcode::LSL, 18, 18, 16));
  pb.emit(insImm(Opcode::ASR, 18, 18, 16));
  pb.li(rTmpA, 16);
  pb.emit(ins(Opcode::DIV, rCoarse, 18, rTmpA));
  pb.markerEnd();
}

void Emitter::emitFshiftSetup(int stepReg, int startSampleReg) {
  // turns0 = (step * startSample) & 0xFFFF -> ph0.
  pb.emit(ins(Opcode::MUL, 16, stepReg, startSampleReg));
  pb.emit(insImm(Opcode::LSL, 16, 16, 16));
  pb.emit(insImm(Opcode::LSR, 16, 16, 16));
  emitPhasor(pb, 17, 16);  // ph0 packed in r17
  // w = phasor(step & 0xFFFF).
  pb.emit(insImm(Opcode::LSL, 16, stepReg, 16));
  pb.emit(insImm(Opcode::LSR, 16, 16, 16));
  emitPhasor(pb, 18, 16);  // w packed in r18
  emitCmulPacked(pb, 19, 18, 18);  // w2
  emitCmulPacked(pb, 19, 19, 19);  // w4
  emitCmulPacked(pb, 20, 17, 18);  // ph1
  emitCmulPacked(pb, 21, 20, 18);  // ph2
  emitCmulPacked(pb, 22, 21, 18);  // ph3
  // Pack [ph0, ph1] -> kPhA, [ph2, ph3] -> kPhB, [w4, w4] -> kW4.
  pb.st32(greg::kScratchAddr, 0, 17);
  pb.st32(greg::kScratchAddr, 1, 20);
  pb.ld64(FshiftKernel::kPhA, greg::kScratchAddr, 0);
  pb.st32(greg::kScratchAddr, 0, 21);
  pb.st32(greg::kScratchAddr, 1, 22);
  pb.ld64(FshiftKernel::kPhB, greg::kScratchAddr, 0);
  emitBroadcast64(pb, FshiftKernel::kW4, 19);
  pb.li(FshiftKernel::kIdx, 0);
}

void Emitter::emitCoarseCompensation() {
  pb.marker("fshift");
  pb.li(rTmpA, kCompFrom);
  emitFshiftSetup(rCoarse, rTmpA);
  liAddr(FshiftKernel::kSrc, L.rx0 + 4 * kCompFrom);
  liAddr(FshiftKernel::kDst, L.comp);
  pb.li(rTmpB, static_cast<i32>(FshiftKernel::trips(kCompLen)));
  pb.cga(kFshift, rTmpB);
  pb.markerEnd();
}

void Emitter::emitTiming() {
  pb.marker("xcorr");
  // Best-so-far registers: r23 = best mag, r46 reused later; use r22 idx.
  pb.li(22, 0);
  pb.li(23, -1);
  loadConst(reg::kConst0, kCSplat2048);
  for (int half = 0; half < 2; ++half) {
    liAddr(XcorrKernel::kSrc,
           L.comp + 4 * static_cast<u32>(kSearchFrom - kCompFrom + 8 * half));
    liAddr(XcorrKernel::kRef, ltfRef);
    for (int j = 0; j < 4; ++j) pb.li(XcorrKernel::kAccBase + j, 0);
    pb.li(rTmpB, static_cast<i32>(XcorrKernel::kTrips));
    pb.cga(kXcorr, rTmpB);
    for (int j = 0; j < 4; ++j) {
      emitL1MagLanes(pb, 16, XcorrKernel::kAccBase + j);
      // lane0 -> mag of hypothesis 2j, lane2 -> 2j+1.
      emitUnpack(pb, 17, 18, 16);
      pb.li(19, 8 * half + 2 * j);
      emitArgmaxStep(pb, 23, 22, 17, 19);
      pb.emit(insImm(Opcode::C4SHUF, 16, 16, 0b00001110));
      emitUnpack(pb, 17, 18, 16);
      pb.li(19, 8 * half + 2 * j + 1);
      emitArgmaxStep(pb, 23, 22, 17, 19);
    }
  }
  // ltfStart = kSearchFrom + bestIdx - 2 (CP bias).
  pb.emit(insImm(Opcode::ADD, rLtfStart, 22, kSearchFrom - 2));
  liAddr(rTmpA, L.status);
  pb.st32(rTmpA, 1, rLtfStart);
  pb.markerEnd();
}

void Emitter::emitFineCfo() {
  pb.marker("freq offset estimation");
  // Correlate the two LTF periods in the compensated buffer.
  pb.emit(insImm(Opcode::ADD, rTmpA, rLtfStart, -kCompFrom));
  pb.emit(insImm(Opcode::LSL, rTmpA, rTmpA, 2));
  pb.li(CfoCorrKernel::kSrc, static_cast<i32>(L.comp));
  pb.emit(ins(Opcode::ADD, CfoCorrKernel::kSrc, CfoCorrKernel::kSrc, rTmpA));
  pb.emit(insImm(Opcode::ADD, CfoCorrKernel::kSrcLag, CfoCorrKernel::kSrc, 256));
  pb.li(CfoCorrKernel::kIdx, 0);
  pb.li(CfoCorrKernel::kAcc, 0);
  loadConst(CfoCorrKernel::kSplat, kCSplat8192);
  pb.li(rTmpB, static_cast<i32>(CfoCorrKernel::trips(64)));
  pb.cga(kCfo, rTmpB);
  emitFold(pb, 16, 17, CfoCorrKernel::kAcc);
  emitAtan2(pb, 18, 17, 16);
  pb.emit(insImm(Opcode::LSL, 18, 18, 16));
  pb.emit(insImm(Opcode::ASR, 18, 18, 16));
  pb.li(rTmpA, 64);
  pb.emit(ins(Opcode::DIV, 18, 18, rTmpA));
  pb.emit(ins(Opcode::ADD, rTotal, rCoarse, 18));
  pb.markerEnd();
}

void Emitter::emitMimoCompensation() {
  pb.marker("freq offset compensation");
  // mimoLtfBase = ltfStart + 128 samples; compensate 160 samples/antenna.
  pb.emit(insImm(Opcode::ADD, rTmpA, rLtfStart, 128));
  emitFshiftSetup(rTotal, rTmpA);
  pb.emit(insImm(Opcode::LSL, rTmpB, rTmpA, 2));
  for (int a = 0; a < 2; ++a) {
    pb.li(FshiftKernel::kSrc, static_cast<i32>(a == 0 ? L.rx0 : L.rx1));
    pb.emit(ins(Opcode::ADD, FshiftKernel::kSrc, FshiftKernel::kSrc, rTmpB));
    liAddr(FshiftKernel::kDst, a == 0 ? L.compMimo0 : L.compMimo1);
    pb.li(FshiftKernel::kIdx, 0);
    pb.li(23, static_cast<i32>(FshiftKernel::trips(160)));
    pb.cga(kFshift, 23);
  }
  pb.markerEnd();
}

void Emitter::emitFftPipeline(int nBuf) {
  pb.li(rTmpB, 32 * nBuf);
  liAddr(FftStage1Kernel::kBuf, L.fftWork);
  pb.cga(kStage1, rTmpB);
  pb.li(rTmpB, 16 * nBuf);
  for (int s = 0; s < 5; ++s) {
    liAddr(FftStageKernel::kBuf, L.fftWork);
    liAddr(FftStageKernel::kOffTab, stageOff[s]);
    liAddr(FftStageKernel::kTwTab, stageTw[s]);
    pb.cga(kStage[s], rTmpB);
  }
}

void Emitter::emitPreambleFfts() {
  pb.marker("fft");
  // Gather (bit-reverse) the four MIMO-LTF windows into fftWork.
  for (int s = 0; s < 2; ++s) {
    for (int a = 0; a < 2; ++a) {
      pb.li(BitrevKernel::kIn, static_cast<i32>(a == 0 ? L.compMimo0 : L.compMimo1));
      pb.li(rTmpA, 4 * (s * 80 + 16));
      pb.emit(ins(Opcode::ADD, BitrevKernel::kIn, BitrevKernel::kIn, rTmpA));
      liAddr(BitrevKernel::kOut, L.fftWork + 256 * static_cast<u32>(2 * s + a));
      liAddr(BitrevKernel::kIdxTab, revTab);
      pb.li(rTmpB, 64);
      pb.cga(kBitrev, rTmpB);
    }
  }
  emitFftPipeline(4);
  pb.markerEnd();
}

void Emitter::emitOrderingAndChest() {
  // remove zero carriers + sample ordering: used-tone gather of both
  // MIMO-LTF symbols (spectra s=0: buffers 0,1 / s=1: buffers 2,3).
  pb.marker("remove zero carriers");
  liAddr(InterleaveKernel::kBase0, L.fftWork);
  liAddr(InterleaveKernel::kBase1, L.fftWork + 256);
  liAddr(InterleaveKernel::kTab, usedTab);
  liAddr(InterleaveKernel::kOut, L.interleaved0);
  pb.li(rTmpB, 52);
  pb.cga(kInterleave, rTmpB);
  pb.markerEnd();
  pb.marker("sample ordering");
  liAddr(InterleaveKernel::kBase0, L.fftWork + 512);
  liAddr(InterleaveKernel::kBase1, L.fftWork + 768);
  liAddr(InterleaveKernel::kTab, usedTab);
  liAddr(InterleaveKernel::kOut, L.interleaved1);
  pb.li(rTmpB, 52);
  pb.cga(kInterleave, rTmpB);
  pb.markerEnd();

  pb.marker("SDM processing");
  liAddr(ChestKernel::kLtf1, L.interleaved0);
  liAddr(ChestKernel::kLtf2, L.interleaved1);
  liAddr(ChestKernel::kSign, signTab);
  liAddr(ChestKernel::kOut, L.hBuf);
  pb.li(rTmpB, 52);
  pb.cga(kChest, rTmpB);
  pb.markerEnd();

  // sample reordering: copy the estimate into the equalizer's buffer.
  pb.marker("sample reordering");
  liAddr(BitrevKernel::kIn, L.hBuf);
  liAddr(BitrevKernel::kOut, L.hBuf2);
  liAddr(BitrevKernel::kIdxTab, identTab);
  pb.li(rTmpB, 208);
  pb.cga(kBitrev, rTmpB);
  pb.markerEnd();
}

void Emitter::emitEqualizer() {
  pb.marker("equalize coeff. calc.");
  pb.li(40, 0);
  pb.li(41, 32767);
  pb.li(42, -32768);
  pb.li(EqCoeffKernel::kAmp128, kLtfAmpQ15 << 7);
  pb.li(EqCoeffKernel::kC4096, 4096);
  liAddr(EqCoeffKernel::kH, L.hBuf2);
  liAddr(EqCoeffKernel::kMid, L.midBuf);
  pb.li(rTmpB, 52);
  pb.cga(kEqNorm, rTmpB);
  liAddr(EqCoeffKernel::kH, L.hBuf2);
  liAddr(EqCoeffKernel::kMid, L.midBuf);
  liAddr(EqCoeffKernel::kW, L.wBuf);
  pb.li(rTmpB, 52);
  pb.cga(kEqApply, rTmpB);
  pb.markerEnd();
}

void Emitter::emitDataLoop() {
  // dataBase = ltfStart + 128 + 160.
  pb.marker("non-kernel code");
  pb.emit(insImm(Opcode::ADD, rDataBase, rLtfStart, 288));
  pb.markerEnd();

  auto top = pb.newLabel();
  pb.bind(top);

  // pairStart = dataBase + pair * 160 (samples).
  pb.marker("non-kernel code");
  pb.li(rTmpA, 160);
  pb.emit(ins(Opcode::MUL, rTmpA, rPair, rTmpA));
  pb.emit(ins(Opcode::ADD, rTmpA, rDataBase, rTmpA));
  pb.mov(9, rTmpA);  // r9 = pairStart (link register reused; no calls)
  pb.markerEnd();

  pb.marker("fshift");
  emitFshiftSetup(rTotal, 9);
  pb.emit(insImm(Opcode::LSL, rTmpB, 9, 2));
  for (int a = 0; a < 2; ++a) {
    pb.li(FshiftKernel::kSrc, static_cast<i32>(a == 0 ? L.rx0 : L.rx1));
    pb.emit(ins(Opcode::ADD, FshiftKernel::kSrc, FshiftKernel::kSrc, rTmpB));
    liAddr(FshiftKernel::kDst, a == 0 ? L.compData0 : L.compData1);
    pb.li(FshiftKernel::kIdx, 0);
    pb.li(23, static_cast<i32>(FshiftKernel::trips(160)));
    pb.cga(kFshift, 23);
  }
  pb.markerEnd();

  pb.marker("fft");
  for (int s = 0; s < 2; ++s) {
    for (int a = 0; a < 2; ++a) {
      pb.li(BitrevKernel::kIn, static_cast<i32>(a == 0 ? L.compData0 : L.compData1));
      pb.li(rTmpA, 4 * (s * 80 + 16));
      pb.emit(ins(Opcode::ADD, BitrevKernel::kIn, BitrevKernel::kIn, rTmpA));
      liAddr(BitrevKernel::kOut, L.fftWork + 256 * static_cast<u32>(2 * s + a));
      liAddr(BitrevKernel::kIdxTab, revTab);
      pb.li(rTmpB, 64);
      pb.cga(kBitrev, rTmpB);
    }
  }
  emitFftPipeline(4);
  pb.markerEnd();

  pb.marker("data shuffle");
  for (int s = 0; s < 2; ++s) {
    liAddr(InterleaveKernel::kBase0, L.fftWork + 512 * static_cast<u32>(s));
    liAddr(InterleaveKernel::kBase1, L.fftWork + 512 * static_cast<u32>(s) + 256);
    liAddr(InterleaveKernel::kTab, usedTab);
    liAddr(InterleaveKernel::kOut, s == 0 ? L.rxUsed0 : L.rxUsed1);
    pb.li(rTmpB, 52);
    pb.cga(kInterleave, rTmpB);
  }
  pb.markerEnd();

  pb.marker("comp");
  for (int s = 0; s < 2; ++s) {
    liAddr(CompKernel::kRx, s == 0 ? L.rxUsed0 : L.rxUsed1);
    liAddr(CompKernel::kWMat, L.wBuf);
    liAddr(CompKernel::kOut0, L.det0 + 208 * static_cast<u32>(s));
    liAddr(CompKernel::kOut1, L.det1 + 208 * static_cast<u32>(s));
    pb.li(rTmpB, 52);
    pb.cga(kComp, rTmpB);
  }
  pb.markerEnd();

  for (int s = 0; s < 2; ++s) {
    pb.marker("tracking");
    // symbolIndex = pair*2 + s ; pol = polTab[symbolIndex & 31].
    pb.emit(insImm(Opcode::LSL, rTmpA, rPair, 1));
    pb.emit(insImm(Opcode::ADD, rTmpA, rTmpA, s));
    pb.emit(insImm(Opcode::AND, rTmpA, rTmpA, 31));
    pb.emit(insImm(Opcode::LSL, rTmpA, rTmpA, 1));
    liAddr(rTmpB, polTab);
    pb.emit(ins(Opcode::ADD, rTmpB, rTmpB, rTmpA));
    pb.emit(insImm(Opcode::LD_C2, rTmpB, rTmpB, 0));  // pol in rTmpB
    // z = sum_p pilot_p * (expected_p) with expected = base_p*amp*pol.
    pb.li(16, 0);  // zre
    pb.li(17, 0);  // zim
    for (int p = 0; p < 4; ++p) {
      liAddr(rTmpA, pilotOffTab + 2 * static_cast<u32>(p));
      pb.emit(insImm(Opcode::LD_UC2, rTmpA, rTmpA, 0));  // byte offset
      pb.li(18, static_cast<i32>(L.det0 + 208 * static_cast<u32>(s)));
      pb.emit(ins(Opcode::ADD, 18, 18, rTmpA));
      pb.emit(ins(Opcode::LD_I, 18, 18, rZero));  // pilot packed
      emitUnpack(pb, 19, 20, 18);
      liAddr(rTmpA, pilotExpTab + 2 * static_cast<u32>(p));
      pb.emit(insImm(Opcode::LD_C2, rTmpA, rTmpA, 0));
      pb.emit(ins(Opcode::MUL, rTmpA, rTmpA, rTmpB));  // expected
      // zre += mulQ15(p.re, e) ; zim += mulQ15(p.im, e).
      pb.emit(ins(Opcode::MUL, 19, 19, rTmpA));
      pb.li(21, 16384);
      pb.emit(ins(Opcode::ADD, 19, 19, 21));
      pb.emit(insImm(Opcode::ASR, 19, 19, 15));
      pb.emit(ins(Opcode::ADD, 16, 16, 19));
      pb.emit(ins(Opcode::MUL, 20, 20, rTmpA));
      pb.emit(ins(Opcode::ADD, 20, 20, 21));
      pb.emit(insImm(Opcode::ASR, 20, 20, 15));
      pb.emit(ins(Opcode::ADD, 17, 17, 20));
    }
    emitAtan2(pb, 18, 17, 16);
    pb.li(19, 65536);
    pb.emit(ins(Opcode::SUB, 18, 19, 18));
    pb.emit(insImm(Opcode::LSL, 18, 18, 16));
    pb.emit(insImm(Opcode::LSR, 18, 18, 16));
    emitPhasor(pb, 20, 18);  // derot packed
    emitBroadcast64(pb, DemodKernel::kDerot, 20);
    pb.markerEnd();

    if (mod == dsp::Modulation::kQam16) {
      pb.marker("demod QAM16");
      loadConst(DemodKernel::kThr, kCSplat3300);
      loadConst(DemodKernel::kThree, kCSplat3);
    } else {
      pb.marker("demod QAM64");
      loadConst(DemodKernel::kOffW, kCSplat6400);
      loadConst(DemodKernel::kC12, kCSplat12);
      loadConst(DemodKernel::kMul, kCSplat1312);
      loadConst(DemodKernel::kZero, kCSplat0);
      loadConst(DemodKernel::kSeven, kCSplat7);
    }
    for (int stream = 0; stream < 2; ++stream) {
      pb.li(DemodKernel::kDet,
            static_cast<i32>((stream == 0 ? L.det0 : L.det1) + 208 * static_cast<u32>(s)));
      liAddr(DemodKernel::kTab, dataTab);
      // gray output slot: ((pair*2 + s)*2 + stream) * 192 bytes.
      pb.emit(insImm(Opcode::LSL, rTmpA, rPair, 1));
      pb.emit(insImm(Opcode::ADD, rTmpA, rTmpA, s));
      pb.emit(insImm(Opcode::LSL, rTmpA, rTmpA, 1));
      pb.emit(insImm(Opcode::ADD, rTmpA, rTmpA, stream));
      pb.li(rTmpB, 192);
      pb.emit(ins(Opcode::MUL, rTmpA, rTmpA, rTmpB));
      pb.li(DemodKernel::kOut, static_cast<i32>(L.gray));
      pb.emit(ins(Opcode::ADD, DemodKernel::kOut, DemodKernel::kOut, rTmpA));
      pb.li(rTmpB, 48);
      pb.cga(kDemod, rTmpB);
    }
    pb.markerEnd();
  }

  // Loop control.
  pb.marker("non-kernel code");
  pb.emit(insImm(Opcode::ADD, rPair, rPair, 1));
  pb.predLt(1, rPair, rNumPairs);
  pb.markerEnd();
  pb.brIf(1, top);
}

}  // namespace

ModemOnProcessor buildModemProgram(const dsp::ModemConfig& cfg) {
  ADRES_CHECK(cfg.mod == dsp::Modulation::kQam64 ||
                  cfg.mod == dsp::Modulation::kQam16,
              "the mapped demod kernel implements QAM-16 and QAM-64 only");
  const int numSymbols = cfg.numSymbols;
  ADRES_CHECK(numSymbols >= 2 && numSymbols % 2 == 0,
              "data symbols come in pairs");
  Emitter e;
  e.numSymbols = numSymbols;
  e.mod = cfg.mod;
  e.emitTablesAndLayout();
  e.emitPrologue();
  e.emitDetection();
  e.emitCoarseCfo();
  e.emitCoarseCompensation();
  e.emitTiming();
  e.emitFineCfo();
  e.emitMimoCompensation();
  e.emitPreambleFfts();
  e.emitOrderingAndChest();
  e.emitEqualizer();
  e.emitDataLoop();
  e.pb.halt();

  ModemOnProcessor out;
  out.program = e.pb.build();
  out.layout = e.L;
  out.config = cfg;
  out.numSymbols = numSymbols;
  // The per-tier plan sets are built lazily through plansFor(); the cache
  // is shared by every copy of this struct (the RxSession program cache
  // hands out copies, so all packet-farm workers converge on one set per
  // tier).
  out.planCache = std::make_shared<detail::ModemPlanCache>();
  return out;
}

std::shared_ptr<const ProgramPlans> ModemOnProcessor::plansFor(
    ExecTier tier) const {
  ADRES_CHECK(planCache != nullptr,
              "modem program has no plan cache (not built by "
              "buildModemProgram?)");
  const auto idx = static_cast<std::size_t>(tier);
  ADRES_CHECK(idx < static_cast<std::size_t>(kExecTierCount),
              "unknown exec tier " << static_cast<int>(tier));
  std::lock_guard<std::mutex> lock(planCache->mu);
  std::shared_ptr<const ProgramPlans>& slot = planCache->byTier[idx];
  if (!slot) slot = buildProgramPlans(program.kernels, tier);
  return slot;
}

ProcessorRxResult runModemOnProcessor(
    Processor& proc, const ModemOnProcessor& m,
    const std::array<std::vector<cint16>, 2>& rx, const RxRunOptions& opts) {
  ProcessorRxResult out;
  runModemOnProcessor(proc, m, rx, opts, out);
  return out;
}

void runModemOnProcessor(Processor& proc, const ModemOnProcessor& m,
                         const std::array<std::vector<cint16>, 2>& rx,
                         const RxRunOptions& opts, ProcessorRxResult& out) {
  out.detected = false;
  out.ltfStart = 0;
  out.bits.clear();
  out.cycles = 0;
  out.elapsedUs = 0.0;
  out.stop = StopReason::kHalt;
  // Always-set (not guarded) so a baseline run clears a previous attachment;
  // a sink left dangling from an earlier traced run would otherwise be used.
  proc.setTrace(opts.trace);
  proc.setKernelProfiling(opts.profile);
  proc.setRegionLog(opts.regionLog);
  ExecPolicy pol = opts.exec;
  if (!pol.plans) pol.plans = m.plansFor(pol.tier);
  proc.load(m.program, std::move(pol));
  // DMA the antenna waveforms into L1.  A cint16 is two little-endian i16
  // (re, im) — on a little-endian host its memory image is exactly the
  // byte order the old staging loop produced, so the samples go straight
  // from the submitter's buffer with no per-packet staging vector.
  static_assert(sizeof(cint16) == 4, "cint16 must pack into one DMA word");
  for (int a = 0; a < 2; ++a) {
    const std::vector<cint16>& w = rx[static_cast<std::size_t>(a)];
    const u32 dst = a == 0 ? m.layout.rx0 : m.layout.rx1;
    if constexpr (std::endian::native == std::endian::little) {
      proc.dma().toL1(dst, reinterpret_cast<const u8*>(w.data()),
                      w.size() * sizeof(cint16));
    } else {
      std::vector<u8> bytes;
      bytes.reserve(w.size() * 4);
      for (const cint16& v : w) {
        bytes.push_back(static_cast<u8>(static_cast<u16>(v.re)));
        bytes.push_back(static_cast<u8>(static_cast<u16>(v.re) >> 8));
        bytes.push_back(static_cast<u8>(static_cast<u16>(v.im)));
        bytes.push_back(static_cast<u8>(static_cast<u16>(v.im) >> 8));
      }
      proc.dma().toL1(dst, bytes);
    }
  }
  if (opts.progressCycles == nullptr && opts.cancel == nullptr) {
    out.stop = proc.run(opts.maxCycles);
  } else {
    // Supervised run: slice the budget so a heartbeat is published (and a
    // cancel request honoured) every progressIntervalCycles.  run() resumes
    // from held pipeline state, so the slicing is bit- and cycle-exact.
    const u64 interval = std::max<u64>(1, opts.progressIntervalCycles);
    const u64 startCycle = proc.cycles();
    for (;;) {
      if (opts.cancel != nullptr &&
          opts.cancel->load(std::memory_order_relaxed) != 0) {
        out.stop = StopReason::kCancelled;
        break;
      }
      const u64 used = proc.cycles() - startCycle;
      if (used >= opts.maxCycles) {
        out.stop = StopReason::kMaxCycles;
        break;
      }
      out.stop = proc.run(std::min(interval, opts.maxCycles - used));
      if (opts.progressCycles != nullptr)
        opts.progressCycles->store(proc.cycles(), std::memory_order_relaxed);
      if (out.stop != StopReason::kMaxCycles) break;
    }
  }
  out.cycles = proc.cycles();
  out.elapsedUs = proc.elapsedUs();
  if (!out.halted()) {
    if (!opts.countersJsonPath.empty()) {
      std::ofstream os(opts.countersJsonPath);
      trace::writeCountersJson(proc, os);
    }
    return;
  }
  out.detected = proc.l1().read32(m.layout.status) != 0;
  out.ltfStart = proc.l1().read32(m.layout.status + 4);

  // Decode gray words into payload bits (sym-major, stream, tone,
  // bitsPerSymbol bits: I axis first, then Q — mirroring qamDemap).
  const int ab = dsp::bitsPerSymbol(m.config.mod) / 2;
  const u32 axisMask = (1u << ab) - 1u;
  const int bitsPerSym = 48 * 2 * ab;  // per stream
  out.bits.resize(static_cast<std::size_t>(m.numSymbols) *
                  static_cast<std::size_t>(2 * bitsPerSym));
  for (int sym = 0; sym < m.numSymbols; ++sym) {
    for (int stream = 0; stream < 2; ++stream) {
      const u32 base = m.layout.gray +
                       192u * static_cast<u32>(sym * 2 + stream);
      for (int d = 0; d < 48; ++d) {
        const u32 w = proc.l1().read32(base + 4 * static_cast<u32>(d));
        const u32 gI = w & axisMask;
        const u32 gQ = (w >> 16) & axisMask;
        const std::size_t bit0 = static_cast<std::size_t>(
            (sym * 2 + stream) * bitsPerSym + d * 2 * ab);
        for (int i = 0; i < ab; ++i) {
          out.bits[bit0 + static_cast<std::size_t>(i)] =
              static_cast<u8>((gI >> i) & 1);
          out.bits[bit0 + static_cast<std::size_t>(i + ab)] =
              static_cast<u8>((gQ >> i) & 1);
        }
      }
    }
  }
  if (opts.faultInjectBitFlipSeed != 0 && !out.bits.empty()) {
    // Seeded single-bit corruption of the *decoded* payload: the simulator
    // state, cycle count and counters stay exact, so only a bit-level
    // shadow comparison can notice.
    out.bits[static_cast<std::size_t>(mix64(opts.faultInjectBitFlipSeed) %
                                      out.bits.size())] ^= 1;
  }
  if (!opts.countersJsonPath.empty()) {
    std::ofstream os(opts.countersJsonPath);
    trace::writeCountersJson(proc, os);
  }
}

}  // namespace adres::sdr
