// The complete 2x2 MIMO-OFDM receiver as one processor program
// (paper §4): every Table 2 kernel is a CGA launch under its own profiling
// region, glued by real VLIW code (synchronization decisions, atan2,
// phasor generation, tracking, loop control).
//
// The program assumes the packet starts within the first STF period of the
// receive buffers (the platform's front-end triggers capture), runs
// detection at two fixed offsets, synchronizes, estimates and inverts the
// channel, then loops over symbol pairs (the paper's "two symbols are
// processed in parallel" loop merging).
#pragma once

#include <array>
#include <atomic>
#include <vector>

#include "core/processor.hpp"
#include "dsp/modem.hpp"

namespace adres::sdr {

/// L1 byte-address plan of the receiver.
struct ModemLayout {
  u32 rx0 = 0, rx1 = 0;        ///< received waveforms (per antenna)
  u32 comp = 0;                ///< coarse-compensated LTF window
  u32 compMimo0 = 0, compMimo1 = 0;  ///< compensated MIMO-LTF windows
  u32 compData0 = 0, compData1 = 0;  ///< compensated data-symbol pair
  u32 fftWork = 0;             ///< 4 x 256-byte FFT buffers
  u32 interleaved0 = 0, interleaved1 = 0;  ///< used tones, LTF symbols
  u32 hBuf = 0, hBuf2 = 0, midBuf = 0, wBuf = 0;
  u32 rxUsed0 = 0, rxUsed1 = 0;  ///< used tones, data symbols of a pair
  u32 det0 = 0, det1 = 0;        ///< detected streams (2 symbols each)
  u32 gray = 0;                  ///< demod output words
  u32 status = 0;                ///< word0: detection flag; word1: ltfStart
  u32 scratch = 0;
};

namespace detail {
struct ModemPlanCache;  // modem_program.cpp: per-tier pre-decoded plan sets
}

struct ModemOnProcessor {
  Program program;
  ModemLayout layout;
  dsp::ModemConfig config;  ///< the configuration the program was built for
  int numSymbols = 0;       ///< == config.numSymbols; must be even (pairs)
  /// Per-tier plan cache created by buildModemProgram and shared by copies
  /// of this struct; plansFor() is the only accessor.
  std::shared_ptr<detail::ModemPlanCache> planCache;

  /// The pre-decoded kernel plans for `tier`, built lazily on first use and
  /// then shared read-only by every processor that loads this program
  /// (packet-farm workers share one set per tier; Processor::load skips its
  /// own plan build).  Thread-safe.
  std::shared_ptr<const ProgramPlans> plansFor(ExecTier tier) const;
};

/// Builds the receiver program for a modem configuration (QAM-64 only —
/// the mapped demod kernel implements the paper's 100 Mbps+ operating
/// point).  `cfg.numSymbols` must be even: the receiver merges symbol
/// pairs.
ModemOnProcessor buildModemProgram(const dsp::ModemConfig& cfg);

/// Per-run knobs for runModemOnProcessor, replacing its former hard-coded
/// defaults.  The options are read once at call time; the referenced trace
/// sink must outlive the run.
///
/// `progressCycles`/`cancel` are the supervision hooks (obs::WorkerWatchdog):
/// when either is set the run is sliced into `progressIntervalCycles`-sized
/// budget chunks — bit- and cycle-exact with an unsliced run, since run()
/// resumes from held state — and between slices the processor's cycle count
/// is published to `progressCycles` (a heartbeat another thread may read)
/// and `cancel` is polled (a non-zero value aborts with
/// StopReason::kCancelled).  Both referents must outlive the run.
struct RxRunOptions {
  u64 maxCycles = 200'000'000ull;  ///< simulated-cycle budget
  /// How kernel launches execute (DESIGN.md §14): the tier, plus an
  /// optional pre-built plan set.  When `exec.plans` is unset the modem's
  /// per-tier shared cache supplies it.  All tiers are bit- and cycle-exact;
  /// they differ only in host speed.
  ExecPolicy exec;
  TraceSink* trace = nullptr;      ///< attached to the processor when set
  std::string countersJsonPath;    ///< adres.counters.v1 dump ("" = off)
  std::atomic<u64>* progressCycles = nullptr;  ///< heartbeat: cycles so far
  const std::atomic<u32>* cancel = nullptr;    ///< non-zero aborts the run
  u64 progressIntervalCycles = 32'768;         ///< slice size when supervised
  bool profile = false;  ///< per-launch cycle-attribution (kernelProfiles())
  /// Region-span log for per-packet span trees; entries are appended for
  /// every closed region.  Unlike `trace`, both observability hooks keep the
  /// CGA steady-state fast path engaged.
  std::vector<RegionSpan>* regionLog = nullptr;
  /// Bench/debug A/B reference: force every RxSession decode through the
  /// cold full program load instead of the warm-reload fast path.  Bit- and
  /// cycle-exact either way; only host speed differs (bench_trialgen uses
  /// this to reproduce the pre-warm-reload baseline).
  bool coldReload = false;
  /// Test-only fault injection: when non-zero, one deterministically chosen
  /// payload bit (SplitMix64 of the seed, modulo the bit count) is flipped
  /// AFTER the gray-word decode — the simulated hardware is untouched, only
  /// the returned bits lie.  This is the planted divergence the sentinel
  /// tests (and postmortem replay) must catch; 0 in production.
  u64 faultInjectBitFlipSeed = 0;
};

struct ProcessorRxResult {
  bool detected = false;
  u32 ltfStart = 0;                 ///< sample index chosen by fine timing
  std::vector<u8> bits;             ///< decoded payload (from gray words)
  u64 cycles = 0;
  double elapsedUs = 0.0;
  StopReason stop = StopReason::kHalt;  ///< why the run ended

  /// True when the program ran to its halt; payload fields are only
  /// meaningful in that case.
  bool halted() const { return stop == StopReason::kHalt; }
};

/// Loads the rx waveforms into L1 (DMA), runs the program, decodes the
/// gray output words into payload bits.  On a non-halt stop (budget
/// exhausted, external stall) the result carries the stop reason and
/// cycle counts with `detected == false` and empty bits.
ProcessorRxResult runModemOnProcessor(
    Processor& proc, const ModemOnProcessor& m,
    const std::array<std::vector<cint16>, 2>& rx,
    const RxRunOptions& opts = {});

/// Allocation-free variant: decodes into `out`, reusing its bits buffer's
/// capacity (every field is overwritten).  With warm reload armed in
/// `opts.exec` and sample buffers DMA'd straight from `rx`, a steady-state
/// decode performs no heap allocation.
void runModemOnProcessor(Processor& proc, const ModemOnProcessor& m,
                         const std::array<std::vector<cint16>, 2>& rx,
                         const RxRunOptions& opts, ProcessorRxResult& out);

}  // namespace adres::sdr
