#include "sdr/tables.hpp"

#include "common/check.hpp"
#include "dsp/fft.hpp"
#include "dsp/ofdm.hpp"
#include "dsp/preamble.hpp"

namespace adres::sdr {

std::vector<u16> bitrevByteOffsets() {
  const auto rev = dsp::bitReverseTable(64);
  std::vector<u16> out(64);
  for (int i = 0; i < 64; ++i)
    out[static_cast<std::size_t>(i)] = static_cast<u16>(4 * rev[static_cast<std::size_t>(i)]);
  return out;
}

FftStageTables fftStageTables(int stage, int nFfts) {
  ADRES_CHECK(stage >= 2 && stage <= 6, "generic kernel covers stages 2..6");
  FftStageTables t;
  const int len = 1 << stage;
  const int half = len / 2;
  const int step = 64 / len;
  t.halfBytes = 4 * half;
  for (int f = 0; f < nFfts; ++f) {
    const int fftBase = 256 * f;  // 64 samples * 4 bytes
    for (int base = 0; base < 64; base += len) {
      for (int k = 0; k < half; k += 2) {
        t.aOffsets.push_back(static_cast<u16>(fftBase + 4 * (base + k)));
        t.twiddlePairs.push_back(packC2(dsp::twiddle(k * step, 64),
                                        dsp::twiddle((k + 1) * step, 64)));
      }
    }
  }
  t.pairCount = static_cast<int>(t.aOffsets.size());
  return t;
}

std::vector<Word> ltfConjBroadcast() {
  const auto& ref = dsp::ltfSymbolTime();
  std::vector<Word> out;
  out.reserve(ref.size());
  for (const cint16& v : ref) out.push_back(packC2(v.conj(), v.conj()));
  return out;
}

}  // namespace adres::sdr

namespace adres::sdr {

std::vector<u16> usedBinByteOffsets() {
  const auto& uidx = dsp::usedCarrierIdx();
  std::vector<u16> out(uidx.size());
  for (std::size_t i = 0; i < uidx.size(); ++i)
    out[i] = static_cast<u16>(4 * dsp::binOf(uidx[i]));
  return out;
}

std::vector<Word> ltfSignSplats() {
  const auto& uidx = dsp::usedCarrierIdx();
  std::vector<Word> out(uidx.size());
  for (std::size_t i = 0; i < uidx.size(); ++i) {
    const i16 v = static_cast<i16>(dsp::ltfSign(uidx[i]) * 32767);
    out[i] = packLanes(v, v, v, v);
  }
  return out;
}

std::vector<u16> dataToneByteOffsets() {
  const auto& uidx = dsp::usedCarrierIdx();
  std::vector<u16> out;
  for (std::size_t i = 0; i < uidx.size(); ++i) {
    bool isPilot = false;
    for (int p : dsp::kPilotIdx) isPilot = isPilot || p == uidx[i];
    if (!isPilot) out.push_back(static_cast<u16>(4 * i));
  }
  return out;
}

std::array<int, 4> pilotUsedPositions() {
  const auto& uidx = dsp::usedCarrierIdx();
  std::array<int, 4> out{};
  int n = 0;
  for (std::size_t i = 0; i < uidx.size(); ++i) {
    for (int p : dsp::kPilotIdx)
      if (p == uidx[i]) out[static_cast<std::size_t>(n++)] = static_cast<int>(i);
  }
  return out;
}

}  // namespace adres::sdr
