// L1 lookup tables for the mapped kernels: FFT butterfly descriptors and
// twiddles, bit-reversal gather offsets, broadcast reference sequences.
// Generated from the same dsp/ functions the golden models use.
#pragma once

#include <array>
#include <vector>

#include "common/types.hpp"

namespace adres::sdr {

/// Byte offsets (u16) of sample rev[i] for the bit-reversal gather over a
/// 64-sample buffer.
std::vector<u16> bitrevByteOffsets();

/// Per-stage butterfly descriptors for FFT stages 2..6 over `nFfts`
/// back-to-back 64-sample buffers (256 bytes apart):
///  - aOffsets: u16 byte offset of each butterfly-pair's `a` word,
///  - twiddles: packed [w0, w1] twiddle pair per descriptor.
struct FftStageTables {
  std::vector<u16> aOffsets;
  std::vector<Word> twiddlePairs;
  int halfBytes = 0;   ///< byte distance between a and b words
  int pairCount = 0;   ///< descriptors per launch (= trips)
};
FftStageTables fftStageTables(int stage, int nFfts);

/// Conjugated broadcast LTF reference: Lc[k] = [L*(k), L*(k)], 64 words.
std::vector<Word> ltfConjBroadcast();

/// Byte offsets (u16) of the 52 used-carrier FFT bins, ascending signed
/// index order (the sample-ordering gather).
std::vector<u16> usedBinByteOffsets();

/// Per-used-tone LTF sign splats: [sign*32767 x4] (chest kernel input).
std::vector<Word> ltfSignSplats();

/// Byte offsets (u16) of the 48 data tones within a 52-entry used-tone
/// buffer (4 bytes per tone), transmission order.
std::vector<u16> dataToneByteOffsets();

/// Used-tone positions of the four pilots within the 52-entry layout.
std::array<int, 4> pilotUsedPositions();

}  // namespace adres::sdr
