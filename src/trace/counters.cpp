#include "trace/counters.hpp"

#include "common/check.hpp"

namespace adres::trace {

void CounterRegistry::add(const std::string& name, Getter g) {
  ADRES_CHECK(!name.empty(), "counter name must be non-empty");
  ADRES_CHECK(counters_.find(name) == counters_.end(),
              "duplicate counter '" << name << '\'');
  counters_[name] = std::move(g);
}

void CounterRegistry::addGroup(const std::string& prefix, GroupGetter g) {
  ADRES_CHECK(!prefix.empty(), "group prefix must be non-empty");
  ADRES_CHECK(groups_.find(prefix) == groups_.end(),
              "duplicate group '" << prefix << '\'');
  groups_[prefix] = std::move(g);
}

void CounterRegistry::reset() {
  for (const auto& hook : resetHooks_) hook();
}

void CounterRegistry::checkOwner() const {
  std::lock_guard<std::mutex> lk(pubMu_);
  if (!ownerBound_) {
    owner_ = std::this_thread::get_id();
    ownerBound_ = true;
    return;
  }
  ADRES_CHECK(owner_ == std::this_thread::get_id(),
              "CounterRegistry read from a non-owner thread — getters read "
              "unsynchronized live stats; use publish()/published() for "
              "cross-thread access or rebindOwner() to transfer ownership");
}

void CounterRegistry::rebindOwner() {
  std::lock_guard<std::mutex> lk(pubMu_);
  owner_ = std::this_thread::get_id();
  ownerBound_ = true;
}

std::shared_ptr<const PublishedCounters> CounterRegistry::publish() {
  checkOwner();
  auto snap = std::make_shared<PublishedCounters>();
  for (const auto& [name, g] : counters_) snap->counters[name] = g();
  for (const auto& [prefix, g] : groups_) {
    auto& block = snap->groups[prefix];
    for (const auto& [suffix, value] : g()) block[suffix] += value;
  }
  std::shared_ptr<const PublishedCounters> out = std::move(snap);
  std::lock_guard<std::mutex> lk(pubMu_);
  published_ = out;
  return out;
}

std::shared_ptr<const PublishedCounters> CounterRegistry::published() const {
  std::lock_guard<std::mutex> lk(pubMu_);
  return published_;
}

u64 CounterRegistry::value(const std::string& name) const {
  checkOwner();
  const auto it = counters_.find(name);
  ADRES_CHECK(it != counters_.end(), "unknown counter '" << name << '\'');
  return it->second();
}

std::vector<std::string> CounterRegistry::keys() const {
  std::vector<std::string> out;
  out.reserve(counters_.size());
  for (const auto& [name, g] : counters_) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::map<std::string, u64> CounterRegistry::snapshot() const {
  checkOwner();
  std::map<std::string, u64> out;
  for (const auto& [name, g] : counters_) out[name] = g();
  return out;
}

void CounterRegistry::accumulateCountersInto(
    std::map<std::string, u64>& into) const {
  checkOwner();
  for (const auto& [name, g] : counters_) into[name] += g();
}

std::map<std::string, std::map<std::string, u64>>
CounterRegistry::groupSnapshot() const {
  checkOwner();
  std::map<std::string, std::map<std::string, u64>> out;
  for (const auto& [prefix, g] : groups_) {
    auto& block = out[prefix];
    for (const auto& [suffix, value] : g()) block[suffix] += value;
  }
  return out;
}

void CounterRegistry::writeJson(std::ostream& os) const {
  writeCountersJson(os, snapshot(), groupSnapshot());
}

void writeCountersJson(
    std::ostream& os, const std::map<std::string, u64>& counters,
    const std::map<std::string, std::map<std::string, u64>>& groups,
    int workers) {
  os << "{\n  \"schema\": \"adres.counters.v1\",";
  if (workers > 0) os << "\n  \"workers\": " << workers << ',';
  os << "\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  os << "\n  },\n  \"groups\": {";
  bool firstGroup = true;
  for (const auto& [prefix, block] : groups) {
    os << (firstGroup ? "\n" : ",\n") << "    \"" << prefix << "\": {";
    firstGroup = false;
    bool firstKey = true;
    for (const auto& [suffix, value] : block) {
      os << (firstKey ? "\n" : ",\n") << "      \"" << suffix << "\": " << value;
      firstKey = false;
    }
    os << "\n    }";
  }
  os << "\n  }\n}\n";
}

}  // namespace adres::trace
