#include "trace/counters.hpp"

#include "common/check.hpp"

namespace adres::trace {

void CounterRegistry::add(const std::string& name, Getter g) {
  ADRES_CHECK(!name.empty(), "counter name must be non-empty");
  ADRES_CHECK(counters_.find(name) == counters_.end(),
              "duplicate counter '" << name << '\'');
  counters_[name] = std::move(g);
}

void CounterRegistry::addGroup(const std::string& prefix, GroupGetter g) {
  ADRES_CHECK(!prefix.empty(), "group prefix must be non-empty");
  ADRES_CHECK(groups_.find(prefix) == groups_.end(),
              "duplicate group '" << prefix << '\'');
  groups_[prefix] = std::move(g);
}

void CounterRegistry::reset() {
  for (const auto& hook : resetHooks_) hook();
}

u64 CounterRegistry::value(const std::string& name) const {
  const auto it = counters_.find(name);
  ADRES_CHECK(it != counters_.end(), "unknown counter '" << name << '\'');
  return it->second();
}

std::vector<std::string> CounterRegistry::keys() const {
  std::vector<std::string> out;
  out.reserve(counters_.size());
  for (const auto& [name, g] : counters_) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::map<std::string, u64> CounterRegistry::snapshot() const {
  std::map<std::string, u64> out;
  for (const auto& [name, g] : counters_) out[name] = g();
  return out;
}

void CounterRegistry::writeJson(std::ostream& os) const {
  os << "{\n  \"schema\": \"adres.counters.v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, g] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << g();
    first = false;
  }
  os << "\n  },\n  \"groups\": {";
  bool firstGroup = true;
  for (const auto& [prefix, g] : groups_) {
    os << (firstGroup ? "\n" : ",\n") << "    \"" << prefix << "\": {";
    firstGroup = false;
    bool firstKey = true;
    for (const auto& [suffix, value] : g()) {
      os << (firstKey ? "\n" : ",\n") << "      \"" << suffix << "\": " << value;
      firstKey = false;
    }
    os << "\n    }";
  }
  os << "\n  }\n}\n";
}

}  // namespace adres::trace
