#include "trace/counters.hpp"

#include "common/check.hpp"

namespace adres::trace {

void CounterRegistry::add(const std::string& name, Getter g) {
  ADRES_CHECK(!name.empty(), "counter name must be non-empty");
  ADRES_CHECK(counters_.find(name) == counters_.end(),
              "duplicate counter '" << name << '\'');
  counters_[name] = std::move(g);
}

void CounterRegistry::addGroup(const std::string& prefix, GroupGetter g) {
  ADRES_CHECK(!prefix.empty(), "group prefix must be non-empty");
  ADRES_CHECK(groups_.find(prefix) == groups_.end(),
              "duplicate group '" << prefix << '\'');
  groups_[prefix] = std::move(g);
}

void CounterRegistry::reset() {
  for (const auto& hook : resetHooks_) hook();
}

u64 CounterRegistry::value(const std::string& name) const {
  const auto it = counters_.find(name);
  ADRES_CHECK(it != counters_.end(), "unknown counter '" << name << '\'');
  return it->second();
}

std::vector<std::string> CounterRegistry::keys() const {
  std::vector<std::string> out;
  out.reserve(counters_.size());
  for (const auto& [name, g] : counters_) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::map<std::string, u64> CounterRegistry::snapshot() const {
  std::map<std::string, u64> out;
  for (const auto& [name, g] : counters_) out[name] = g();
  return out;
}

std::map<std::string, std::map<std::string, u64>>
CounterRegistry::groupSnapshot() const {
  std::map<std::string, std::map<std::string, u64>> out;
  for (const auto& [prefix, g] : groups_) {
    auto& block = out[prefix];
    for (const auto& [suffix, value] : g()) block[suffix] += value;
  }
  return out;
}

void CounterRegistry::writeJson(std::ostream& os) const {
  writeCountersJson(os, snapshot(), groupSnapshot());
}

void writeCountersJson(
    std::ostream& os, const std::map<std::string, u64>& counters,
    const std::map<std::string, std::map<std::string, u64>>& groups,
    int workers) {
  os << "{\n  \"schema\": \"adres.counters.v1\",";
  if (workers > 0) os << "\n  \"workers\": " << workers << ',';
  os << "\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  os << "\n  },\n  \"groups\": {";
  bool firstGroup = true;
  for (const auto& [prefix, block] : groups) {
    os << (firstGroup ? "\n" : ",\n") << "    \"" << prefix << "\": {";
    firstGroup = false;
    bool firstKey = true;
    for (const auto& [suffix, value] : block) {
      os << (firstKey ? "\n" : ",\n") << "      \"" << suffix << "\": " << value;
      firstKey = false;
    }
    os << "\n    }";
  }
  os << "\n  }\n}\n";
}

}  // namespace adres::trace
