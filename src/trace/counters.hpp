// Counter registry: federates the simulator's scattered statistics
// (ActivityCounters, per-component stats, region profiles) behind named
// counters with a single stable-schema JSON dump.
//
// Naming scheme (DESIGN.md "Observability"): dot-separated
// `<component>.<metric>` keys, lower_snake metrics — e.g. `cga.cycles`,
// `l1.bank_conflicts`, `cdrf.reads`.  Dynamic key families (per-region
// profiles) register as groups under a prefix; the static key set is stable
// for the lifetime of the registry, so JSON dumps from different runs diff
// cleanly.
// Threading contract (single-writer): the getters read live component
// statistics that the simulating thread mutates with no synchronization, so
// every value-reading call (value(), snapshot(), groupSnapshot(),
// writeJson(), publish()) must run on that thread.  The registry binds its
// owner thread on the first such call and rejects cross-thread reads with a
// SimError (rebindOwner() transfers ownership explicitly, e.g. when a
// registry built on one thread is handed to a worker before any read).
// The supported cross-thread path is publish()/published(): the owner
// publishes an immutable PublishedCounters snapshot which any thread may
// then read — that is what live farm metrics scrape.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace adres::trace {

/// Immutable counter snapshot shared across threads (see publish()).
struct PublishedCounters {
  std::map<std::string, u64> counters;
  std::map<std::string, std::map<std::string, u64>> groups;
};

class CounterRegistry {
 public:
  using Getter = std::function<u64()>;
  /// A group expands to (suffix, value) pairs under its prefix at dump time
  /// (keys may vary run to run — e.g. one block per profiled region).
  using GroupGetter = std::function<std::vector<std::pair<std::string, u64>>()>;

  /// Registers a named counter; the name must be unique.
  void add(const std::string& name, Getter g);

  /// Registers a dynamic key family dumped under `<prefix>.<suffix>`.
  void addGroup(const std::string& prefix, GroupGetter g);

  /// Registers a hook invoked by reset() (e.g. Processor::resetStats).
  void onReset(std::function<void()> hook) { resetHooks_.push_back(std::move(hook)); }

  /// Invokes every reset hook.
  void reset();

  bool has(const std::string& name) const { return counters_.count(name) != 0; }
  u64 value(const std::string& name) const;

  /// Static counter names, sorted (the stable schema).
  std::vector<std::string> keys() const;

  /// Point-in-time read of every static counter.
  std::map<std::string, u64> snapshot() const;

  /// Owner-thread fold: adds every static counter's current value into
  /// `into` (group getters are not invoked — they build strings).  After
  /// the first fold the key set exists, so steady-state calls perform no
  /// heap allocation — the packet farm's per-packet stats path.
  void accumulateCountersInto(std::map<std::string, u64>& into) const;

  /// Point-in-time read of every group: prefix -> (suffix -> value).
  std::map<std::string, std::map<std::string, u64>> groupSnapshot() const;

  /// Stable-schema JSON dump:
  /// {"schema":"adres.counters.v1","counters":{...},"groups":{prefix:{...}}}
  void writeJson(std::ostream& os) const;

  /// Owner-thread call: materializes every counter and group into an
  /// immutable snapshot, stores it for cross-thread readers, and returns
  /// it.  The returned object also serves as the caller's own snapshot
  /// (one getter pass for both uses).
  std::shared_ptr<const PublishedCounters> publish();

  /// Any-thread call: the most recently published snapshot (null before
  /// the first publish()).
  std::shared_ptr<const PublishedCounters> published() const;

  /// Transfers the single-writer ownership to the calling thread (see the
  /// file-top threading contract).
  void rebindOwner();

 private:
  void checkOwner() const;

  std::map<std::string, Getter> counters_;
  std::map<std::string, GroupGetter> groups_;
  std::vector<std::function<void()>> resetHooks_;

  mutable std::mutex pubMu_;  ///< guards published_ and the owner binding
  std::shared_ptr<const PublishedCounters> published_;
  mutable std::thread::id owner_;
  mutable bool ownerBound_ = false;
};

/// Writes the adres.counters.v1 JSON for already-materialized values.  When
/// `workers` > 0 the dump is an aggregate merged across that many parallel
/// workers and carries the schema's `workers` extension field (the counter
/// values are then sums over every worker's registry).
void writeCountersJson(
    std::ostream& os, const std::map<std::string, u64>& counters,
    const std::map<std::string, std::map<std::string, u64>>& groups,
    int workers = 0);

}  // namespace adres::trace
