#include "trace/export.hpp"

#include <cmath>
#include <cstdio>
#include <string>

#include "common/check.hpp"
#include "isa/opcodes.hpp"

namespace adres {

const char* traceEventKindName(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kModeSwitch: return "mode_switch";
    case TraceEventKind::kKernel: return "kernel";
    case TraceEventKind::kFuActive: return "fu_active";
    case TraceEventKind::kVliwOp: return "vliw_op";
    case TraceEventKind::kVliwStall: return "vliw_stall";
    case TraceEventKind::kCgaStall: return "cga_stall";
    case TraceEventKind::kICacheMiss: return "icache_miss";
    case TraceEventKind::kL1Conflict: return "l1_conflict";
    case TraceEventKind::kDmaTransfer: return "dma_transfer";
    case TraceEventKind::kAhbRead: return "ahb_read";
    case TraceEventKind::kAhbWrite: return "ahb_write";
    case TraceEventKind::kRegionEnter: return "region_enter";
    case TraceEventKind::kRegionExit: return "region";
    case TraceEventKind::kHalt: return "halt";
    case TraceEventKind::kResume: return "resume";
  }
  return "?";
}

const char* stallCauseName(StallCause c) {
  switch (c) {
    case StallCause::kHazard: return "hazard";
    case StallCause::kICacheMiss: return "icache_miss";
    case StallCause::kDrain: return "drain";
    case StallCause::kL1Contention: return "l1_contention";
  }
  return "?";
}

}  // namespace adres

namespace adres::trace {
namespace {

/// JSON string escaping for the small label set we emit.
std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string lookup(const std::vector<std::string>& names, u32 idx,
                   const char* fallbackPrefix) {
  if (idx < names.size() && !names[idx].empty()) return names[idx];
  return std::string(fallbackPrefix) + std::to_string(idx);
}

int tidOf(const TraceEvent& e) {
  switch (e.kind) {
    case TraceEventKind::kVliwOp:
    case TraceEventKind::kVliwStall:
      return e.kind == TraceEventKind::kVliwOp ? tid::kVliwSlot0 + e.track
                                               : tid::kCore;
    case TraceEventKind::kFuActive:
      return tid::kCgaFu0 + e.track;
    case TraceEventKind::kL1Conflict:
      return tid::kL1Bank0 + e.track;
    case TraceEventKind::kICacheMiss:
      return tid::kICache;
    case TraceEventKind::kDmaTransfer:
      return tid::kDma;
    case TraceEventKind::kAhbRead:
    case TraceEventKind::kAhbWrite:
      return tid::kAhb;
    default:
      return tid::kCore;
  }
}

std::string nameOf(const TraceEvent& e, const TraceNames& names) {
  switch (e.kind) {
    case TraceEventKind::kModeSwitch:
      return e.a == 0 ? "vliw->cga" : "cga->vliw";
    case TraceEventKind::kKernel:
      return lookup(names.kernels, e.a, "kernel");
    case TraceEventKind::kFuActive:
      return lookup(names.kernels, e.a, "kernel");
    case TraceEventKind::kVliwOp:
      if (e.a < static_cast<u32>(kOpcodeCount))
        return std::string(opInfo(static_cast<Opcode>(e.a)).name);
      return "op" + std::to_string(e.a);
    case TraceEventKind::kVliwStall:
    case TraceEventKind::kCgaStall:
      return std::string("stall:") +
             stallCauseName(static_cast<StallCause>(e.a));
    case TraceEventKind::kICacheMiss:
      return "I$ miss";
    case TraceEventKind::kL1Conflict:
      return "bank conflict";
    case TraceEventKind::kDmaTransfer:
      return "dma";
    case TraceEventKind::kAhbRead:
      return "ahb read";
    case TraceEventKind::kAhbWrite:
      return "ahb write";
    case TraceEventKind::kRegionEnter:
      return "enter " + lookup(names.regions, e.a, "region");
    case TraceEventKind::kRegionExit:
      return lookup(names.regions, e.a, "region");
    case TraceEventKind::kHalt:
      return "halt";
    case TraceEventKind::kResume:
      return "resume";
  }
  return "?";
}

void writeThreadName(std::ostream& os, int tidNum, const std::string& name,
                     bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << R"({"name":"thread_name","ph":"M","pid":1,"tid":)" << tidNum
     << R"(,"args":{"name":")" << jsonEscape(name) << R"("}})";
}

}  // namespace

void writeChromeTrace(const std::vector<TraceEvent>& events, std::ostream& os,
                      const TraceNames& names, double cyclePeriodUs) {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  writeThreadName(os, tid::kCore, "core", first);
  for (int s = 0; s < 3; ++s)
    writeThreadName(os, tid::kVliwSlot0 + s, "vliw.slot" + std::to_string(s),
                    first);
  for (int fu = 0; fu < 16; ++fu)
    writeThreadName(os, tid::kCgaFu0 + fu,
                    "cga.fu" + std::string(fu < 10 ? "0" : "") +
                        std::to_string(fu),
                    first);
  for (int b = 0; b < 4; ++b)
    writeThreadName(os, tid::kL1Bank0 + b, "l1.bank" + std::to_string(b),
                    first);
  writeThreadName(os, tid::kICache, "icache", first);
  writeThreadName(os, tid::kDma, "dma", first);
  writeThreadName(os, tid::kAhb, "ahb", first);

  for (const TraceEvent& e : events) {
    os << ",\n";
    const bool span = e.dur > 0;
    os << "{\"name\":\"" << jsonEscape(nameOf(e, names)) << "\",\"ph\":\""
       << (span ? 'X' : 'i') << "\",\"ts\":"
       << static_cast<double>(e.cycle) * cyclePeriodUs;
    if (span) os << ",\"dur\":" << static_cast<double>(e.dur) * cyclePeriodUs;
    if (!span) os << ",\"s\":\"t\"";  // thread-scoped instant
    os << ",\"pid\":1,\"tid\":" << tidOf(e) << ",\"args\":{\"cycle\":"
       << e.cycle << ",\"dur_cycles\":" << e.dur << ",\"kind\":\""
       << traceEventKindName(e.kind) << "\",\"a\":" << e.a << ",\"b\":" << e.b
       << "}}";
  }
  os << "\n]}\n";
}

void writeJsonl(const std::vector<TraceEvent>& events, std::ostream& os) {
  for (const TraceEvent& e : events) {
    os << "{\"cycle\":" << e.cycle << ",\"dur\":" << e.dur << ",\"kind\":\""
       << traceEventKindName(e.kind) << "\",\"track\":"
       << static_cast<int>(e.track) << ",\"a\":" << e.a << ",\"b\":" << e.b
       << "}\n";
  }
}

void writeSpanJsonEntries(const std::vector<Span>& spans, std::ostream& os,
                          int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  char buf[64];
  const auto fmt = [&buf](double v) {
    std::snprintf(buf, sizeof buf, "%.10g", std::isfinite(v) ? v : 0.0);
    return buf;
  };
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    os << (i ? ",\n" : "\n") << pad << "{\"kind\": \"" << spanKindName(s.kind)
       << "\", \"name\": \"" << jsonEscape(s.name)
       << "\", \"start_us\": " << fmt(s.startUs)
       << ", \"dur_us\": " << fmt(s.durUs)
       << ", \"start_cycle\": " << s.startCycle << ", \"cycles\": " << s.cycles
       << ", \"ops\": " << s.ops << '}';
  }
}

void writeTraceEventJsonEntries(const std::vector<TraceEvent>& events,
                                std::ostream& os, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    os << (i ? ",\n" : "\n") << pad << "{\"cycle\": " << e.cycle
       << ", \"dur\": " << e.dur << ", \"kind\": \""
       << traceEventKindName(e.kind)
       << "\", \"track\": " << static_cast<int>(e.track) << ", \"a\": " << e.a
       << ", \"b\": " << e.b << '}';
  }
}

SpanKind spanKindFromName(std::string_view name) {
  for (int k = 0; k <= static_cast<int>(SpanKind::kRegion); ++k) {
    const SpanKind kind = static_cast<SpanKind>(k);
    if (name == spanKindName(kind)) return kind;
  }
  ADRES_CHECK(false, "unknown span kind '" << std::string(name) << '\'');
}

TraceEventKind traceEventKindFromName(std::string_view name) {
  for (int k = 0; k <= static_cast<int>(TraceEventKind::kResume); ++k) {
    const TraceEventKind kind = static_cast<TraceEventKind>(k);
    if (name == traceEventKindName(kind)) return kind;
  }
  ADRES_CHECK(false, "unknown trace event kind '" << std::string(name) << '\'');
}

}  // namespace adres::trace
