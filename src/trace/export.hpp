// Trace exporters: Chrome trace-event JSON (chrome://tracing / Perfetto)
// and a flat JSONL stream.
//
// The Chrome export maps the simulator onto one process with one named
// track (tid) per VLIW issue slot and per CGA FU, plus tracks for the core
// mode timeline, L1 banks, the DMA engine, the AHB slave and the I$ — so a
// kernel's occupancy renders as a per-FU heatmap.  Timestamps are emitted
// in microseconds at the modelled clock (cycle * cyclePeriodUs).
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "trace/span.hpp"
#include "trace/trace.hpp"

namespace adres::trace {

/// Optional symbol tables used to label events; indices out of range fall
/// back to numeric labels.
struct TraceNames {
  std::vector<std::string> kernels;  ///< kernel index -> name
  std::vector<std::string> regions;  ///< region id -> name
};

/// Stable tid layout of the Chrome export (one process, pid 1).
namespace tid {
inline constexpr int kCore = 0;         ///< mode switches, kernels, regions, halt
inline constexpr int kVliwSlot0 = 1;    ///< .. kVliwSlot0 + slot
inline constexpr int kCgaFu0 = 10;      ///< .. kCgaFu0 + fu
inline constexpr int kL1Bank0 = 40;     ///< .. kL1Bank0 + bank
inline constexpr int kICache = 50;
inline constexpr int kDma = 51;
inline constexpr int kAhb = 52;
}  // namespace tid

/// Writes the full Chrome trace-event JSON object ({"traceEvents": [...]}).
void writeChromeTrace(const std::vector<TraceEvent>& events, std::ostream& os,
                      const TraceNames& names = {},
                      double cyclePeriodUs = 1.0 / 400.0);

/// Writes one JSON object per line, schema-stable:
/// {"cycle":N,"dur":N,"kind":"...","track":N,"a":N,"b":N}
void writeJsonl(const std::vector<TraceEvent>& events, std::ostream& os);

// -- Shared artifact-harvest fragments --------------------------------------
// The span-array and flight-recorder-ring JSON bodies are shared verbatim
// between adres.exemplar.v1 and adres.postmortem.v1: one object per line at
// `indent` spaces, emitted between the caller's '[' and ']' (a leading
// newline before the first entry, nothing after the last).

/// {"kind": "...", "name": "...", "start_us": .., "dur_us": ..,
///  "start_cycle": N, "cycles": N, "ops": N}
void writeSpanJsonEntries(const std::vector<Span>& spans, std::ostream& os,
                          int indent);

/// {"cycle": N, "dur": N, "kind": "...", "track": N, "a": N, "b": N}
void writeTraceEventJsonEntries(const std::vector<TraceEvent>& events,
                                std::ostream& os, int indent);

/// Reverse lookups for the artifact loaders (postmortem_replay); throw
/// SimError on an unknown label.
SpanKind spanKindFromName(std::string_view name);
TraceEventKind traceEventKindFromName(std::string_view name);

}  // namespace adres::trace
