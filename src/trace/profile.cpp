#include "trace/profile.hpp"

#include <algorithm>

#include "core/processor.hpp"

namespace adres::trace {
namespace {

std::string regionName(const Processor& proc, int id) {
  const auto& names = proc.program().regionNames;
  if (id >= 0 && static_cast<std::size_t>(id) < names.size())
    return names[static_cast<std::size_t>(id)];
  return "region" + std::to_string(id);
}

std::string kernelName(const Processor& proc, u32 id) {
  const auto& plans = proc.kernelPlans();
  if (plans && id < plans->kernels.size() && !plans->kernels[id].name.empty())
    return plans->kernels[id].name;
  return "kernel" + std::to_string(id);
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
  return out;
}

/// Folded-stack frames must not contain the separators (';' and ' ').
std::string foldedFrame(const std::string& s) {
  std::string out = s;
  for (char& c : out)
    if (c == ';' || c == ' ') c = '_';
  return out;
}

}  // namespace

std::string planClassName(u8 kind, u8 lat) {
  const char* k = kind == 0 ? "compute" : kind == 1 ? "load" : "store";
  return std::string(k) + ".lat" + std::to_string(static_cast<int>(lat));
}

void ProfileSummary::addProcessor(const Processor& proc) {
  ++runs;
  totalCycles += proc.activity().totalCycles();
  for (const auto& [id, rp] : proc.profiles()) {
    ProfileRegionRow& row = regions[regionName(proc, id)];
    row.cycles += rp.cycles;
    row.vliwCycles += rp.vliwCycles;
    row.cgaCycles += rp.cgaCycles;
    row.vliwOps += rp.vliwOps;
    row.cgaOps += rp.cgaOps;
    row.entries += rp.entries;
  }
  for (const auto& [key, kp] : proc.kernelProfiles()) {
    ProfileKernelRow& row =
        kernels[{regionName(proc, key.first), kernelName(proc, key.second)}];
    row.launches += kp.launches;
    row.trips += kp.trips;
    row.cycles += kp.cycles;
    row.issueCycles += kp.issueCycles;
    row.idleCycles += kp.idleCycles;
    row.stallCycles += kp.stallCycles;
    row.overheadCycles += kp.overheadCycles;
    row.ops += kp.ops;
    row.routeMoves += kp.routeMoves;
    for (const auto& [cls, ops] : kp.opsByClass)
      row.opsByClass[planClassName(cls.first, cls.second)] += ops;
  }
}

void ProfileSummary::merge(const ProfileSummary& other) {
  runs += other.runs;
  totalCycles += other.totalCycles;
  for (const auto& [name, rr] : other.regions) {
    ProfileRegionRow& row = regions[name];
    row.cycles += rr.cycles;
    row.vliwCycles += rr.vliwCycles;
    row.cgaCycles += rr.cgaCycles;
    row.vliwOps += rr.vliwOps;
    row.cgaOps += rr.cgaOps;
    row.entries += rr.entries;
  }
  for (const auto& [key, kr] : other.kernels) {
    ProfileKernelRow& row = kernels[key];
    row.launches += kr.launches;
    row.trips += kr.trips;
    row.cycles += kr.cycles;
    row.issueCycles += kr.issueCycles;
    row.idleCycles += kr.idleCycles;
    row.stallCycles += kr.stallCycles;
    row.overheadCycles += kr.overheadCycles;
    row.ops += kr.ops;
    row.routeMoves += kr.routeMoves;
    for (const auto& [cls, ops] : kr.opsByClass) row.opsByClass[cls] += ops;
  }
}

std::vector<CycleSink> ProfileSummary::topSinks(std::size_t n) const {
  std::vector<CycleSink> sinks;
  for (const auto& [key, kr] : kernels)
    sinks.push_back({key.first + "/" + key.second, kr.cycles, 0.0});
  for (const auto& [name, rr] : regions) {
    if (rr.vliwCycles > 0)
      sinks.push_back({name + " [vliw]", rr.vliwCycles, 0.0});
  }
  std::stable_sort(sinks.begin(), sinks.end(),
                   [](const CycleSink& a, const CycleSink& b) {
                     return a.cycles > b.cycles;
                   });
  if (sinks.size() > n) sinks.resize(n);
  for (CycleSink& s : sinks)
    s.share = totalCycles
                  ? static_cast<double>(s.cycles) /
                        static_cast<double>(totalCycles)
                  : 0.0;
  return sinks;
}

void ProfileSummary::writeJson(std::ostream& os) const {
  os << "{\n  \"schema\": \"adres.profile.v1\",\n"
     << "  \"runs\": " << runs << ",\n"
     << "  \"total_cycles\": " << totalCycles << ",\n  \"regions\": [";
  bool first = true;
  for (const auto& [name, rr] : regions) {
    os << (first ? "\n" : ",\n") << "    {\"name\": \"" << jsonEscape(name)
       << "\", \"cycles\": " << rr.cycles
       << ", \"vliw_cycles\": " << rr.vliwCycles
       << ", \"cga_cycles\": " << rr.cgaCycles
       << ", \"vliw_ops\": " << rr.vliwOps << ", \"cga_ops\": " << rr.cgaOps
       << ", \"entries\": " << rr.entries << '}';
    first = false;
  }
  os << "\n  ],\n  \"kernels\": [";
  first = true;
  for (const auto& [key, kr] : kernels) {
    os << (first ? "\n" : ",\n") << "    {\"region\": \""
       << jsonEscape(key.first) << "\", \"kernel\": \""
       << jsonEscape(key.second) << "\", \"launches\": " << kr.launches
       << ", \"trips\": " << kr.trips << ", \"cycles\": " << kr.cycles
       << ", \"issue_cycles\": " << kr.issueCycles
       << ", \"idle_cycles\": " << kr.idleCycles
       << ", \"stall_cycles\": " << kr.stallCycles
       << ", \"overhead_cycles\": " << kr.overheadCycles
       << ", \"ops\": " << kr.ops << ", \"route_moves\": " << kr.routeMoves
       << ", \"ops_by_class\": {";
    bool firstCls = true;
    for (const auto& [cls, ops] : kr.opsByClass) {
      os << (firstCls ? "" : ", ") << '"' << jsonEscape(cls) << "\": " << ops;
      firstCls = false;
    }
    os << "}}";
    first = false;
  }
  os << "\n  ]\n}\n";
}

void ProfileSummary::writeFolded(std::ostream& os) const {
  for (const auto& [key, kr] : kernels) {
    const std::string base =
        "modem;" + foldedFrame(key.first) + ";" + foldedFrame(key.second);
    if (kr.issueCycles) os << base << ";issue " << kr.issueCycles << '\n';
    if (kr.idleCycles) os << base << ";idle " << kr.idleCycles << '\n';
    if (kr.stallCycles) os << base << ";stall " << kr.stallCycles << '\n';
    if (kr.overheadCycles)
      os << base << ";overhead " << kr.overheadCycles << '\n';
  }
  for (const auto& [name, rr] : regions) {
    if (rr.vliwCycles)
      os << "modem;" << foldedFrame(name) << ";vliw " << rr.vliwCycles << '\n';
  }
}

}  // namespace adres::trace
