// Cycle-attribution profiler output (DESIGN.md §13).
//
// A ProfileSummary folds the per-launch KernelLaunchProfile maps and region
// profiles of one or more Processors (one per decoded packet on a farm
// worker) into a mergeable summary keyed by (region name, kernel name),
// with every booked cycle attributed to issue vs idle vs stall vs overhead
// and op totals broken down per (dispatch kind, latency) class.  Exporters:
// a versioned `adres.profile.v1` JSON document and a flamegraph-compatible
// folded-stacks file (`modem;<region>;<kernel>;issue 1234` lines), plus a
// ranked top-cycle-sink list for reports.
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace adres {
class Processor;
}

namespace adres::trace {

/// Stable class label for a (PlanOpKind, latency) pair, e.g. "compute.lat1",
/// "load.lat3", "store.lat1".
std::string planClassName(u8 kind, u8 lat);

/// Aggregated CGA launches of one (region, kernel) pair.  The four cycle
/// components partition `cycles` exactly (see KernelLaunchProfile).
struct ProfileKernelRow {
  u64 launches = 0;
  u64 trips = 0;
  u64 cycles = 0;
  u64 issueCycles = 0;
  u64 idleCycles = 0;
  u64 stallCycles = 0;
  u64 overheadCycles = 0;
  u64 ops = 0;
  u64 routeMoves = 0;
  std::map<std::string, u64> opsByClass;  ///< planClassName -> ops
};

/// Aggregated region occupancy (the Table 2 view, summed across packets).
struct ProfileRegionRow {
  u64 cycles = 0;
  u64 vliwCycles = 0;
  u64 cgaCycles = 0;
  u64 vliwOps = 0;
  u64 cgaOps = 0;
  u64 entries = 0;
};

/// One ranked cycle sink: a (region, kernel) pair or a region's VLIW-mode
/// residue ("<region> [vliw]").
struct CycleSink {
  std::string name;
  u64 cycles = 0;
  double share = 0.0;  ///< fraction of totalCycles
};

struct ProfileSummary {
  u64 runs = 0;         ///< processors folded in (packets decoded)
  u64 totalCycles = 0;  ///< summed core cycles across folded runs

  std::map<std::string, ProfileRegionRow> regions;
  std::map<std::pair<std::string, std::string>, ProfileKernelRow> kernels;

  bool empty() const { return runs == 0; }

  /// Folds one processor's region profiles and kernel launch profiles,
  /// resolving region names from its program and kernel names from its
  /// decoded plans.  Call after a run, before the next load resets stats.
  void addProcessor(const Processor& proc);

  void merge(const ProfileSummary& other);

  /// Top `n` cycle sinks, descending.
  std::vector<CycleSink> topSinks(std::size_t n) const;

  /// Versioned JSON document: {"schema": "adres.profile.v1", ...}.
  void writeJson(std::ostream& os) const;

  /// Flamegraph folded stacks: `modem;<region>;<kernel>;<component> cycles`
  /// for CGA launches and `modem;<region>;vliw cycles` for VLIW residues.
  void writeFolded(std::ostream& os) const;
};

}  // namespace adres::trace
