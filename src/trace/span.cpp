#include "trace/span.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace adres::trace {

const char* spanKindName(SpanKind k) {
  switch (k) {
    case SpanKind::kPacket: return "packet";
    case SpanKind::kQueueWait: return "queue_wait";
    case SpanKind::kDispatch: return "dispatch";
    case SpanKind::kDecode: return "decode";
    case SpanKind::kRegion: return "region";
  }
  return "?";
}

const Span* PacketSpans::find(SpanKind kind) const {
  for (const Span& s : spans)
    if (s.kind == kind) return &s;
  return nullptr;
}

double PacketSpans::queueWaitUs() const {
  const Span* s = find(SpanKind::kQueueWait);
  return s ? s->durUs : 0.0;
}

double PacketSpans::decodeUs() const {
  const Span* s = find(SpanKind::kDecode);
  return s ? s->durUs : 0.0;
}

u64 packetTraceId(u64 jobId, u32 tag) {
  const u64 id = hashCombine(mix64(jobId + 1), tag);
  return id ? id : 1;
}

std::string traceIdHex(u64 id) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[id & 0xf];
    id >>= 4;
  }
  return out;
}

PacketSpans buildPacketSpans(u64 jobId, u32 tag, int worker, double enqueueUs,
                             double dispatchUs, double decodeStartUs,
                             double decodeEndUs, u64 decodeCycles,
                             const std::vector<RegionSpan>& regionLog,
                             const std::vector<std::string>& regionNames) {
  PacketSpans ps;
  ps.traceId = packetTraceId(jobId, tag);
  ps.jobId = jobId;
  ps.worker = worker;
  ps.tag = tag;

  dispatchUs = std::max(dispatchUs, enqueueUs);
  decodeStartUs = std::max(decodeStartUs, dispatchUs);
  decodeEndUs = std::max(decodeEndUs, decodeStartUs);

  Span packet;
  packet.kind = SpanKind::kPacket;
  packet.name = "packet";
  packet.startUs = enqueueUs;
  packet.durUs = decodeEndUs - enqueueUs;
  packet.cycles = decodeCycles;
  ps.spans.push_back(packet);

  Span wait;
  wait.kind = SpanKind::kQueueWait;
  wait.name = "queue_wait";
  wait.startUs = enqueueUs;
  wait.durUs = dispatchUs - enqueueUs;
  ps.spans.push_back(wait);

  Span dispatch;
  dispatch.kind = SpanKind::kDispatch;
  dispatch.name = "dispatch";
  dispatch.startUs = dispatchUs;
  dispatch.durUs = decodeStartUs - dispatchUs;
  ps.spans.push_back(dispatch);

  Span decode;
  decode.kind = SpanKind::kDecode;
  decode.name = "decode";
  decode.startUs = decodeStartUs;
  decode.durUs = decodeEndUs - decodeStartUs;
  decode.cycles = decodeCycles;
  ps.spans.push_back(decode);

  // Region children: simulated cycle offsets mapped linearly into the decode
  // host window so nested bars render sensibly in the Chrome trace viewer.
  const double usPerCycle =
      decodeCycles ? decode.durUs / static_cast<double>(decodeCycles) : 0.0;
  for (const RegionSpan& r : regionLog) {
    Span s;
    s.kind = SpanKind::kRegion;
    if (r.region >= 0 &&
        static_cast<std::size_t>(r.region) < regionNames.size())
      s.name = regionNames[static_cast<std::size_t>(r.region)];
    else
      s.name = "region" + std::to_string(r.region);
    s.startCycle = r.startCycle;
    s.cycles = r.endCycle - r.startCycle;
    s.ops = r.ops;
    s.startUs =
        decodeStartUs + static_cast<double>(r.startCycle) * usPerCycle;
    s.durUs = static_cast<double>(s.cycles) * usPerCycle;
    ps.spans.push_back(s);
  }
  return ps;
}

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
  return out;
}

}  // namespace

void writeSpansChromeTrace(const std::vector<PacketSpans>& packets,
                           std::ostream& os) {
  constexpr int kPid = 2;  // pid 1 is the cycle-level core trace exporter
  os << "{\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kPid
     << ",\"tid\":0,\"args\":{\"name\":\"adres packet farm\"}}";
  std::vector<int> workers;
  for (const PacketSpans& p : packets)
    if (std::find(workers.begin(), workers.end(), p.worker) == workers.end())
      workers.push_back(p.worker);
  std::sort(workers.begin(), workers.end());
  for (const int w : workers) {
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << kPid
       << ",\"tid\":" << w << ",\"args\":{\"name\":\"worker " << w << "\"}}";
  }
  for (const PacketSpans& p : packets) {
    for (const Span& s : p.spans) {
      os << ",\n{\"name\":\"" << escape(s.name) << "\",\"cat\":\""
         << spanKindName(s.kind) << "\",\"ph\":\"X\",\"pid\":" << kPid
         << ",\"tid\":" << p.worker << ",\"ts\":" << s.startUs
         << ",\"dur\":" << s.durUs << ",\"args\":{\"trace_id\":\""
         << traceIdHex(p.traceId) << "\",\"job\":" << p.jobId
         << ",\"tag\":" << p.tag << ",\"cycles\":" << s.cycles
         << ",\"ops\":" << s.ops << "}}";
    }
  }
  os << "\n]}\n";
}

}  // namespace adres::trace
