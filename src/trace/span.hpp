// Per-packet span trees (DESIGN.md §13).
//
// Every RxJob gets a deterministic trace id; the farm records a span tree
// per packet — enqueue → queue-wait → dispatch → decode, with one child
// span per modem kernel region (from the Processor's region-span log, NOT
// a TraceSink, so the CGA steady-state fast path stays engaged).  Host
// phases carry wall-clock µs on the farm's epoch; region children carry
// simulated cycles and are mapped linearly into the decode window for the
// Chrome export.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/processor.hpp"

namespace adres::trace {

enum class SpanKind : u8 {
  kPacket,     ///< whole lifetime: enqueue -> decode end
  kQueueWait,  ///< enqueue -> worker dispatch
  kDispatch,   ///< dispatch bookkeeping before the decode starts
  kDecode,     ///< the simulated decode itself
  kRegion,     ///< one modem kernel region inside the decode
};

const char* spanKindName(SpanKind k);

struct Span {
  SpanKind kind = SpanKind::kPacket;
  std::string name;     ///< region name for kRegion, phase name otherwise
  double startUs = 0;   ///< host µs on the farm epoch
  double durUs = 0;
  u64 startCycle = 0;   ///< sim cycle offset (kRegion / kDecode)
  u64 cycles = 0;       ///< sim cycles covered (kRegion / kDecode)
  u64 ops = 0;          ///< ops retired (kRegion)
};

/// The span tree of one decoded packet, summarized in its RxOutcome.
struct PacketSpans {
  u64 traceId = 0;
  u64 jobId = 0;
  int worker = -1;
  u32 tag = 0;  ///< submitter tag (campaign cell index)
  std::vector<Span> spans;

  bool empty() const { return spans.empty(); }
  /// First span of `kind`, or nullptr.
  const Span* find(SpanKind kind) const;
  double queueWaitUs() const;
  double decodeUs() const;
};

/// Deterministic, collision-resistant per-packet trace id (SplitMix64 over
/// job id and tag; never 0).
u64 packetTraceId(u64 jobId, u32 tag);

/// 16-hex-digit lowercase rendering (the exported trace_id label).
std::string traceIdHex(u64 id);

/// Builds the span tree for one decoded packet.  Host timestamps are µs on
/// the farm epoch; `regionLog` is the Processor's region-span log for this
/// decode (cycle offsets relative to the decode's cycle 0) and is mapped
/// linearly into [decodeStartUs, decodeEndUs].
PacketSpans buildPacketSpans(u64 jobId, u32 tag, int worker, double enqueueUs,
                             double dispatchUs, double decodeStartUs,
                             double decodeEndUs, u64 decodeCycles,
                             const std::vector<RegionSpan>& regionLog,
                             const std::vector<std::string>& regionNames);

/// Chrome trace-event export of farm packet spans: one process (pid 2), one
/// named track per worker; every event carries the trace id in its args.
void writeSpansChromeTrace(const std::vector<PacketSpans>& packets,
                           std::ostream& os);

}  // namespace adres::trace
