#include "trace/telemetry.hpp"

#include <string>

#include "core/processor.hpp"

namespace adres::trace {
namespace {

std::string regionName(const Processor& proc, int id) {
  const auto& names = proc.program().regionNames;
  if (id >= 0 && static_cast<std::size_t>(id) < names.size())
    return names[static_cast<std::size_t>(id)];
  return "region" + std::to_string(id);
}

}  // namespace

void registerProcessorCounters(CounterRegistry& reg, Processor& proc) {
  const Processor* p = &proc;

  // Mode occupancy and cross-cutting activity.
  reg.add("core.cycles", [p] { return p->activity().totalCycles(); });
  reg.add("vliw.cycles", [p] { return p->activity().vliwCycles; });
  reg.add("vliw.stall_cycles", [p] { return p->activity().vliwStallCycles; });
  reg.add("vliw.ops", [p] { return p->activity().vliwOps; });
  reg.add("cga.cycles", [p] { return p->activity().cgaCycles; });
  reg.add("cga.stall_cycles", [p] { return p->activity().cgaStallCycles; });
  reg.add("cga.ops", [p] { return p->activity().cgaOps; });
  reg.add("cga.route_moves", [p] { return p->activity().cgaRouteMoves; });
  reg.add("sleep.cycles", [p] { return p->activity().sleepCycles; });
  reg.add("mode.switches", [p] { return p->activity().modeSwitches; });
  reg.add("simd.ops", [p] { return p->activity().simdOps; });
  reg.add("ops16", [p] { return p->activity().ops16; });
  reg.add("transports", [p] { return p->activity().transports; });

  // L1 scratchpad banks.
  reg.add("l1.reads", [p] { return p->l1().stats().reads; });
  reg.add("l1.writes", [p] { return p->l1().stats().writes; });
  reg.add("l1.bank_conflicts", [p] { return p->l1().stats().conflicts; });
  reg.add("l1.bank_conflict_cycles",
          [p] { return p->l1().stats().conflictCycles; });
  reg.add("l1.cga_accesses", [p] { return p->activity().l1CgaAccesses; });

  // Instruction cache.
  reg.add("icache.accesses", [p] { return p->icache().stats().accesses; });
  reg.add("icache.misses", [p] { return p->icache().stats().misses; });

  // Register-file ports.
  reg.add("cdrf.reads", [p] { return p->regs().stats().reads; });
  reg.add("cdrf.writes", [p] { return p->regs().stats().writes; });
  reg.add("cdrf.cga_accesses", [p] { return p->activity().cdrfCgaAccesses; });
  reg.add("cprf.reads", [p] { return p->regs().predStats().reads; });
  reg.add("cprf.writes", [p] { return p->regs().predStats().writes; });
  reg.add("lrf.reads", [p] { return p->cga().localRfTotals().reads; });
  reg.add("lrf.writes", [p] { return p->cga().localRfTotals().writes; });

  // Configuration memory and DMA.
  reg.add("cfgmem.context_fetches",
          [p] { return p->configMem().stats().contextFetches; });
  reg.add("cfgmem.dma_bytes", [p] { return p->configMem().stats().dmaBytes; });
  reg.add("dma.transfers", [&proc] { return proc.dma().stats().transfers; });
  reg.add("dma.words", [&proc] { return proc.dma().stats().wordsMoved; });
  reg.add("dma.core_cycles", [&proc] { return proc.dma().stats().coreCycles; });

  // Per-region profiles (dynamic key family: one block per visited region).
  reg.addGroup("region", [p] {
    std::vector<std::pair<std::string, u64>> out;
    for (const auto& [id, prof] : p->profiles()) {
      const std::string base = regionName(*p, id);
      out.emplace_back(base + ".cycles", prof.cycles);
      out.emplace_back(base + ".ops", prof.ops);
      out.emplace_back(base + ".vliw_cycles", prof.vliwCycles);
      out.emplace_back(base + ".cga_cycles", prof.cgaCycles);
      out.emplace_back(base + ".entries", prof.entries);
    }
    return out;
  });

  reg.onReset([&proc] { proc.resetStats(); });
}

void writeCountersJson(Processor& proc, std::ostream& os) {
  CounterRegistry reg;
  registerProcessorCounters(reg, proc);
  reg.writeJson(os);
}

void printRegionTable(const Processor& proc, std::FILE* out) {
  std::fprintf(out, "%-26s %8s %10s %7s %6s  %s\n", "region", "entries",
               "cycles", "ops/e", "IPC", "mode");
  std::fprintf(out,
               "----------------------------------------------------------"
               "--------\n");
  u64 total = 0;
  for (const auto& [id, prof] : proc.profiles()) {
    total += prof.cycles;
    std::fprintf(out, "%-26s %8llu %10llu %7llu %6.2f  %s\n",
                 regionName(proc, id).c_str(),
                 static_cast<unsigned long long>(prof.entries),
                 static_cast<unsigned long long>(prof.cycles),
                 static_cast<unsigned long long>(
                     prof.entries ? prof.ops / prof.entries : 0),
                 prof.ipc(), prof.mode().c_str());
  }
  std::fprintf(out,
               "----------------------------------------------------------"
               "--------\n");
  std::fprintf(out, "%-26s %8s %10llu\n", "total profiled", "",
               static_cast<unsigned long long>(total));
}

}  // namespace adres::trace
