// Processor telemetry: binds a Processor's scattered statistics
// (ActivityCounters, L1/I$/config-memory/RF/DMA stats, region profiles)
// onto a CounterRegistry under the stable `<component>.<metric>` schema,
// plus convenience dump/report helpers shared by the benches and examples.
#pragma once

#include <cstdio>
#include <ostream>

#include "trace/counters.hpp"

namespace adres {
class Processor;
}

namespace adres::trace {

/// Registers every processor counter on `reg` and hooks reset() to
/// Processor::resetStats().  `proc` must outlive the registry — getters
/// read the live component stats at dump time.
void registerProcessorCounters(CounterRegistry& reg, Processor& proc);

/// One-shot stable-schema counters dump for `proc`.
void writeCountersJson(Processor& proc, std::ostream& os);

/// Per-region summary table (name, entries, cycles, mode, IPC) to `out`.
void printRegionTable(const Processor& proc, std::FILE* out = stdout);

}  // namespace adres::trace
