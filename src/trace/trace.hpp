// Cycle-level event tracing (DESIGN.md "Observability").
//
// Components hold a `TraceSink*` that is null by default; every emit site is
// guarded by a single predictable branch (`if (trace_) ...`), so a build
// without an attached sink pays one untaken branch per event site and
// nothing else.  The sink owns all buffering policy; the simulator never
// allocates on the emit path.
//
// Event taxonomy: each TraceEvent is a POD carrying the core-cycle
// timestamp, an optional duration (span events), the event kind, a small
// track id (VLIW slot, CGA FU, L1 bank) and two kind-specific words.  See
// TraceEventKind for the per-kind meaning of `track`/`a`/`b`.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace adres {

enum class TraceEventKind : u8 {
  kModeSwitch = 0,   ///< a: 0 = VLIW->CGA, 1 = CGA->VLIW
  kKernel,           ///< span: CGA kernel launch; a = kernel index, b = ops
  kFuActive,         ///< span: CGA FU occupancy; track = fu, a = kernel index, b = ops on this FU
  kVliwOp,           ///< span (1 cycle): issued VLIW op; track = slot, a = opcode
  kVliwStall,        ///< span: VLIW-mode stall; a = StallCause
  kCgaStall,         ///< span: CGA-mode stall; a = StallCause
  kICacheMiss,       ///< span (miss penalty); a = fetch byte address
  kL1Conflict,       ///< span (queue wait); track = bank, a = byte address
  kDmaTransfer,      ///< span (transfer cost); a = words moved, b = DmaDirection
  kAhbRead,          ///< a = bus byte address
  kAhbWrite,         ///< a = bus byte address
  kRegionEnter,      ///< a = region id
  kRegionExit,       ///< span: whole region occupancy; a = region id, b = ops
  kHalt,             ///< core entered the sleep state
  kResume,           ///< resume input woke the core
};

/// Cause code carried in `a` of stall events.
enum class StallCause : u8 {
  kHazard = 0,       ///< operand/dest not ready (RAW/WAW wait)
  kICacheMiss = 1,   ///< fetch stalled on the external instruction memory
  kDrain = 2,        ///< pipeline drain before a mode switch / halt
  kL1Contention = 3, ///< L1 bank-port queue wait
};

/// Direction code carried in `b` of kDmaTransfer events.
enum class DmaDirection : u8 {
  kHostToL1 = 0,
  kL1ToHost = 1,
  kHostToConfig = 2,
};

struct TraceEvent {
  u64 cycle = 0;  ///< core-cycle timestamp (event start)
  u64 dur = 0;    ///< span length in cycles; 0 = instant
  TraceEventKind kind = TraceEventKind::kModeSwitch;
  u8 track = 0;   ///< kind-specific lane (VLIW slot / CGA FU / L1 bank)
  u32 a = 0;
  u32 b = 0;
};

/// Event consumer.  Implementations must tolerate events arriving with
/// non-monotonic timestamps (components book spans when they *end*).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void event(const TraceEvent& e) = 0;
};

/// Bounded flight-recorder sink: keeps the most recent `capacity` events,
/// overwriting the oldest once full and accounting every overwritten event
/// as dropped.
class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity ? capacity : 1) {
    buf_.reserve(capacity_ < 4096 ? capacity_ : 4096);
  }

  void event(const TraceEvent& e) override {
    ++accepted_;
    if (buf_.size() < capacity_) {
      buf_.push_back(e);
      return;
    }
    ++dropped_;
    buf_[head_] = e;
    head_ = (head_ + 1) % capacity_;
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return buf_.size(); }
  u64 accepted() const { return accepted_; }   ///< total events offered
  u64 dropped() const { return dropped_; }     ///< overwritten (oldest-first)

  /// Retained events, oldest first.
  std::vector<TraceEvent> events() const {
    std::vector<TraceEvent> out;
    out.reserve(buf_.size());
    for (std::size_t i = 0; i < buf_.size(); ++i)
      out.push_back(buf_[(head_ + i) % buf_.size()]);
    return out;
  }

  void clear() {
    buf_.clear();
    head_ = 0;
    accepted_ = 0;
    dropped_ = 0;
  }

  static constexpr std::size_t kDefaultCapacity = 1u << 18;  // 8 MiB of events

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< oldest element once the ring is full
  u64 accepted_ = 0;
  u64 dropped_ = 0;
  std::vector<TraceEvent> buf_;
};

/// Human-readable kind name (JSONL `kind` field, debugging).
const char* traceEventKindName(TraceEventKind k);
const char* stallCauseName(StallCause c);

}  // namespace adres
