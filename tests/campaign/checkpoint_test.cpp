// adres.campaign.v1 checkpoints: lossless round-trip (including doubles),
// deterministic bytes, spec-hash guarding, and the file variants.
#include "campaign/checkpoint.hpp"

#include <cstdio>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace adres::campaign {
namespace {

SweepSpec twoCellSpec() {
  SweepSpec s;
  s.seed = 3;
  s.mods = {dsp::Modulation::kQam64};
  s.numSymbols = {2};
  s.taps = {1};
  s.cfoPpm = {10.0};
  s.snrDb = {18.0, 30.0};
  s.flat = true;
  return s;
}

/// Accumulators with deliberately awkward doubles: %.17g + std::stod must
/// round-trip them bit-exactly.
CellResult fakeResult(u64 salt) {
  CellResult r;
  r.trials = 37 + salt;
  r.bits = (37 + salt) * 384;
  r.bitErrors = 5 * salt;
  r.packetErrors = salt;
  r.lostPackets = salt / 2;
  r.cycles = (37 + salt) * 66977;
  r.energyNj = static_cast<double>(salt + 1) / 3.0 * 1e4;
  r.discardedTrials = salt;
  r.stopReason = salt % 2 ? "ci" : "errorBudget";
  r.done = true;
  return r;
}

TEST(Checkpoint, RoundTripIsLossless) {
  const SweepSpec spec = twoCellSpec();
  const std::vector<CellSpec> cells = expand(spec);
  std::vector<CellResult> results{fakeResult(1), fakeResult(2)};

  std::stringstream ss;
  writeCheckpoint(ss, spec, cells, results);
  const std::map<u64, CellResult> loaded = loadCheckpoint(ss, spec);

  ASSERT_EQ(loaded.size(), 2u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto it = loaded.find(cells[i].key());
    ASSERT_NE(it, loaded.end());
    EXPECT_EQ(it->second, results[i]) << "cell " << i;
  }
}

TEST(Checkpoint, BytesAreDeterministicAndSkipUnfinishedCells) {
  const SweepSpec spec = twoCellSpec();
  const std::vector<CellSpec> cells = expand(spec);
  std::vector<CellResult> results{fakeResult(1), fakeResult(2)};
  results[1].done = false;  // still running: must not be recorded

  std::stringstream a, b;
  writeCheckpoint(a, spec, cells, results);
  writeCheckpoint(b, spec, cells, results);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(loadCheckpoint(a, spec).size(), 1u);
}

TEST(Checkpoint, RefusesADifferentSpec) {
  const SweepSpec spec = twoCellSpec();
  const std::vector<CellSpec> cells = expand(spec);
  std::vector<CellResult> results{fakeResult(1), fakeResult(2)};
  std::stringstream ss;
  writeCheckpoint(ss, spec, cells, results);

  SweepSpec other = spec;
  other.stop.maxTrials += 1;
  EXPECT_THROW(loadCheckpoint(ss, other), SimError)
      << "a checkpoint never silently resumes a different sweep";
}

TEST(Checkpoint, FileVariantRoundTripsAndToleratesMissingFiles) {
  const SweepSpec spec = twoCellSpec();
  const std::vector<CellSpec> cells = expand(spec);
  std::vector<CellResult> results{fakeResult(1), fakeResult(2)};

  const std::string path =
      testing::TempDir() + "adres_checkpoint_test_camp.json";
  std::remove(path.c_str());
  EXPECT_TRUE(loadCheckpointFile(path, spec).empty()) << "missing = fresh";

  writeCheckpointFile(path, spec, cells, results);
  const std::map<u64, CellResult> loaded = loadCheckpointFile(path, spec);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.at(cells[0].key()), results[0]);
  EXPECT_EQ(loaded.at(cells[1].key()), results[1]);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adres::campaign
