// CampaignRunner reproducibility contract (the acceptance criterion):
// a campaign over the same cell set is bit-identical across 1-worker vs
// N-worker runs, and across a kill/resume boundary — including the bytes
// of the checkpoint file it leaves behind.
#include "campaign/runner.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"

namespace adres::campaign {
namespace {

/// A deliberately small two-cell sweep that still exercises both stopping
/// paths: snr 12 dB saturates the error budget, snr 30 dB runs into the
/// trial ceiling with zero errors.  batch 4 < maxTrials forces multi-batch
/// cells and a truncated final batch.
CampaignConfig smallCampaign() {
  CampaignConfig cfg;
  cfg.sweep.seed = 5;
  cfg.sweep.mods = {dsp::Modulation::kQam16};
  cfg.sweep.numSymbols = {2};
  cfg.sweep.taps = {1};
  cfg.sweep.cfoPpm = {10.0};
  cfg.sweep.snrDb = {12.0, 30.0};
  cfg.sweep.flat = true;
  cfg.sweep.batchSize = 4;
  cfg.sweep.stop.minTrials = 4;
  cfg.sweep.stop.maxTrials = 6;
  cfg.sweep.stop.errorBudget = 2;
  return cfg;
}

std::string fileBytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

TEST(CampaignRunner, ResultsAreInvariantAcrossWorkerCounts) {
  CampaignConfig one = smallCampaign();
  one.workers = 1;
  const CampaignResult a = CampaignRunner(one).run();

  CampaignConfig many = smallCampaign();
  many.workers = 3;
  const CampaignResult b = CampaignRunner(many).run();

  ASSERT_EQ(a.cells.size(), 2u);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i)
    EXPECT_EQ(a.results[i], b.results[i]) << "cell " << i;
  EXPECT_TRUE(a.completed);
  EXPECT_TRUE(b.completed);
  EXPECT_EQ(a.trialsRun, b.trialsRun);
  EXPECT_EQ(a.trialsDiscarded, b.trialsDiscarded);

  // The sweep hit both stopping paths (otherwise this test is not
  // exercising what it claims to).
  EXPECT_EQ(a.results[0].stopReason, "errorBudget");
  EXPECT_EQ(a.results[1].stopReason, "maxTrials");
  EXPECT_EQ(a.results[1].packetErrors, 0u) << "30 dB flat QAM-16 is clean";
}

TEST(CampaignRunner, KillAndResumeIsByteIdenticalWithUninterruptedRun) {
  const std::string full = testing::TempDir() + "adres_campaign_full.json";
  const std::string split = testing::TempDir() + "adres_campaign_split.json";
  std::remove(full.c_str());
  std::remove(split.c_str());

  // Uninterrupted reference run.
  CampaignConfig ref = smallCampaign();
  ref.workers = 2;
  ref.checkpointPath = full;
  const CampaignResult whole = CampaignRunner(ref).run();
  EXPECT_TRUE(whole.completed);

  // "Killed" run: stop after the first completed cell...
  CampaignConfig part = smallCampaign();
  part.workers = 2;
  part.checkpointPath = split;
  part.resume = false;
  part.stopAfterCells = 1;
  const CampaignResult partial = CampaignRunner(part).run();
  EXPECT_FALSE(partial.completed);
  EXPECT_TRUE(partial.results[0].done);
  EXPECT_FALSE(partial.results[1].done);

  // ...then resume from its checkpoint.
  CampaignConfig rest = smallCampaign();
  rest.workers = 2;
  rest.checkpointPath = split;
  rest.resume = true;
  const CampaignResult resumed = CampaignRunner(rest).run();
  EXPECT_TRUE(resumed.completed);
  // The resumed run decodes only the second cell's trials.
  EXPECT_EQ(resumed.trialsRun + partial.trialsRun + partial.trialsDiscarded +
                resumed.trialsDiscarded,
            whole.trialsRun + whole.trialsDiscarded);
  EXPECT_LT(resumed.trialsRun, whole.trialsRun);

  // Accumulators and checkpoint bytes must match the uninterrupted run
  // exactly.
  ASSERT_EQ(resumed.results.size(), whole.results.size());
  for (std::size_t i = 0; i < whole.results.size(); ++i)
    EXPECT_EQ(resumed.results[i], whole.results[i]) << "cell " << i;
  const std::string a = fileBytes(full), b = fileBytes(split);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "resume must converge to the uninterrupted bytes";
  std::remove(full.c_str());
  std::remove(split.c_str());
}

TEST(CampaignRunner, CheckpointBytesInvariantAcrossProducersAndFrontend) {
  const std::string ref = testing::TempDir() + "adres_campaign_p1s.json";
  const std::string alt = testing::TempDir() + "adres_campaign_p3v.json";
  std::remove(ref.c_str());
  std::remove(alt.c_str());

  // Reference: inline generation (1 producer) with the scalar frontend.
  CampaignConfig a = smallCampaign();
  a.workers = 2;
  a.producers = 1;
  a.frontend.kind = dsp::FrontendKind::kScalar;
  a.checkpointPath = ref;
  const CampaignResult ra = CampaignRunner(a).run();
  EXPECT_TRUE(ra.completed);

  // Sharded generation with the vectorized frontend: counter-derived trial
  // seeds plus trial-order folding make every accumulator — and the
  // checkpoint bytes — independent of who generated which trial and how.
  CampaignConfig b = smallCampaign();
  b.workers = 2;
  b.producers = 3;
  b.frontend.kind = dsp::FrontendKind::kVectorized;
  b.checkpointPath = alt;
  const CampaignResult rb = CampaignRunner(b).run();
  EXPECT_TRUE(rb.completed);

  ASSERT_EQ(ra.results.size(), rb.results.size());
  for (std::size_t i = 0; i < ra.results.size(); ++i)
    EXPECT_EQ(ra.results[i], rb.results[i]) << "cell " << i;
  EXPECT_EQ(ra.trialsRun, rb.trialsRun);
  const std::string bytesA = fileBytes(ref), bytesB = fileBytes(alt);
  ASSERT_FALSE(bytesA.empty());
  EXPECT_EQ(bytesA, bytesB)
      << "checkpoint bytes must not depend on producers or frontend";
  std::remove(ref.c_str());
  std::remove(alt.c_str());
}

TEST(CampaignRunner, RegistersLiveProgressMetrics) {
  CampaignConfig cfg = smallCampaign();
  cfg.workers = 1;
  CampaignRunner runner(cfg);
  obs::MetricsRegistry reg;
  runner.registerMetrics(reg);
  const CampaignResult res = runner.run();
  EXPECT_TRUE(res.completed);

  std::ostringstream os;
  reg.writePrometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("adres_campaign_cells_total 2\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("adres_campaign_cells_done 2\n"), std::string::npos);
  EXPECT_NE(text.find("adres_campaign_trials_total"), std::string::npos);
  EXPECT_NE(text.find("adres_campaign_cell_per{"), std::string::npos)
      << "per-cell PER gauge family";
  reg.clear();
}

}  // namespace
}  // namespace adres::campaign
