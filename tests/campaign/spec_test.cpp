// SweepSpec expansion and the counter-based seed derivation: cell order,
// key uniqueness, spec-hash sensitivity — the identities the checkpoint
// format and the worker-count-invariance guarantee are built on.
#include "campaign/spec.hpp"

#include <set>

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace adres::campaign {
namespace {

SweepSpec smallSpec() {
  SweepSpec s;
  s.seed = 7;
  s.mods = {dsp::Modulation::kQam16, dsp::Modulation::kQam64};
  s.numSymbols = {2};
  s.taps = {1, 3};
  s.cfoPpm = {10.0};
  s.snrDb = {10.0, 20.0};
  return s;
}

TEST(SweepSpec, ExpandIsRowMajorWithSnrFastest) {
  const SweepSpec s = smallSpec();
  const std::vector<CellSpec> cells = expand(s);
  ASSERT_EQ(cells.size(), 8u);  // 2 mods * 1 sym * 2 taps * 1 cfo * 2 snr
  // snr varies fastest, then taps, then mod.
  EXPECT_EQ(cells[0].modem.mod, dsp::Modulation::kQam16);
  EXPECT_EQ(cells[0].channel.taps, 1);
  EXPECT_EQ(cells[0].channel.snrDb, 10.0);
  EXPECT_EQ(cells[1].channel.snrDb, 20.0);
  EXPECT_EQ(cells[2].channel.taps, 3);
  EXPECT_EQ(cells[2].channel.snrDb, 10.0);
  EXPECT_EQ(cells[4].modem.mod, dsp::Modulation::kQam64);
  for (const CellSpec& c : cells) {
    EXPECT_EQ(c.modem.numSymbols, 2);
    EXPECT_EQ(c.channel.cfoPpm, 10.0);
    EXPECT_EQ(c.channel.seed, 0u) << "trials substitute their own seeds";
    EXPECT_EQ(c.campaignSeed, s.seed);
  }
}

TEST(SweepSpec, CellKeysAreDistinctAndSeedIndependent) {
  const std::vector<CellSpec> cells = expand(smallSpec());
  std::set<u64> keys;
  for (const CellSpec& c : cells) keys.insert(c.key());
  EXPECT_EQ(keys.size(), cells.size());

  // The key identifies the operating point, not the campaign: the same
  // grid under a different master seed maps onto the same checkpoint keys.
  SweepSpec reseeded = smallSpec();
  reseeded.seed = 1234;
  const std::vector<CellSpec> cells2 = expand(reseeded);
  for (std::size_t i = 0; i < cells.size(); ++i)
    EXPECT_EQ(cells[i].key(), cells2[i].key());
}

TEST(SweepSpec, ExpandRejectsAliasedCells) {
  SweepSpec s = smallSpec();
  s.snrDb = {10.0, 10.0};  // duplicate operating point
  EXPECT_THROW(expand(s), SimError);
}

TEST(SweepSpec, TrialSeedIsPureAndSeparatesStreams) {
  const std::vector<CellSpec> cells = expand(smallSpec());
  const CellSpec& c = cells[0];
  // Pure function: no hidden state, so any worker computes the same seed.
  EXPECT_EQ(c.trialSeed(5, CellSpec::kTxStream),
            c.trialSeed(5, CellSpec::kTxStream));
  // Trials, streams, cells and campaign seeds all separate.
  EXPECT_NE(c.trialSeed(5, CellSpec::kTxStream),
            c.trialSeed(6, CellSpec::kTxStream));
  EXPECT_NE(c.trialSeed(5, CellSpec::kTxStream),
            c.trialSeed(5, CellSpec::kChannelStream));
  EXPECT_NE(c.trialSeed(5, CellSpec::kTxStream),
            cells[1].trialSeed(5, CellSpec::kTxStream));
  CellSpec reseeded = c;
  reseeded.campaignSeed = 1234;
  EXPECT_NE(c.trialSeed(5, CellSpec::kTxStream),
            reseeded.trialSeed(5, CellSpec::kTxStream));
}

TEST(SweepSpec, StableHashCoversEveryAxisAndTheStoppingRule) {
  const SweepSpec base = smallSpec();
  const u64 h0 = stableHash(base);
  EXPECT_EQ(stableHash(smallSpec()), h0) << "hash is a pure function";

  SweepSpec s = smallSpec();
  s.seed = 8;
  EXPECT_NE(stableHash(s), h0);
  s = smallSpec();
  s.snrDb.push_back(30.0);
  EXPECT_NE(stableHash(s), h0);
  s = smallSpec();
  s.flat = true;
  EXPECT_NE(stableHash(s), h0);
  s = smallSpec();
  s.batchSize = 8;
  EXPECT_NE(stableHash(s), h0) << "batch size shapes discard accounting";
  s = smallSpec();
  s.stop.maxTrials = 99;
  EXPECT_NE(stableHash(s), h0);
  s = smallSpec();
  s.stop.ciHalfWidth = 0.01;
  EXPECT_NE(stableHash(s), h0);
}

TEST(SweepSpec, CellLabelNamesTheOperatingPoint) {
  const std::vector<CellSpec> cells = expand(smallSpec());
  const std::string l = cellLabel(cells.back());
  EXPECT_NE(l.find("qam64"), std::string::npos) << l;
  EXPECT_NE(l.find("snr20"), std::string::npos) << l;
}

}  // namespace
}  // namespace adres::campaign
