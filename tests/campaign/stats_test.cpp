// Wilson intervals, the inverse-normal quantile behind them, and the
// CellResult derived statistics.
#include "campaign/stats.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace adres::campaign {
namespace {

TEST(NormalQuantile, KnownValuesAndSymmetry) {
  EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normalQuantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(normalQuantile(0.995), 2.575829304, 1e-6);
  EXPECT_NEAR(normalQuantile(0.841344746), 1.0, 1e-6);
  for (double p : {0.01, 0.1, 0.25, 0.4}) {
    EXPECT_NEAR(normalQuantile(p), -normalQuantile(1.0 - p), 1e-9) << p;
  }
}

TEST(Wilson, KnownInterval) {
  // 5 errors in 50 trials at 95%: the textbook Wilson interval.
  const Interval ci = wilson(5, 50, 0.95);
  EXPECT_NEAR(ci.lo, 0.0435, 0.001);
  EXPECT_NEAR(ci.hi, 0.2136, 0.001);
}

TEST(Wilson, BoundaryBehaviour) {
  // Zero errors: lo pinned at 0, hi strictly positive (unlike Wald).
  const Interval zero = wilson(0, 30, 0.95);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  EXPECT_LT(zero.hi, 0.2);
  // All errors: mirror image.
  const Interval all = wilson(30, 30, 0.95);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
  EXPECT_LT(all.lo, 1.0);
  EXPECT_GT(all.lo, 0.8);
  // No data: the vacuous interval.
  const Interval none = wilson(0, 0, 0.95);
  EXPECT_DOUBLE_EQ(none.lo, 0.0);
  EXPECT_DOUBLE_EQ(none.hi, 1.0);
}

TEST(Wilson, ShrinksWithSampleSizeAndContainsPointEstimate) {
  double prev = 1.0;
  for (u64 n : {10u, 100u, 1000u, 10000u}) {
    const Interval ci = wilson(n / 10, n, 0.95);
    const double phat = static_cast<double>(n / 10) / static_cast<double>(n);
    EXPECT_LE(ci.lo, phat);
    EXPECT_GE(ci.hi, phat);
    EXPECT_LT(ci.halfWidth(), prev);
    prev = ci.halfWidth();
  }
}

TEST(CellResult, DerivedStatistics) {
  CellResult r;
  r.trials = 8;
  r.bits = 8 * 384;
  r.bitErrors = 96;
  r.packetErrors = 2;
  r.cycles = 8 * 67000;
  r.energyNj = 8 * 3200.0;
  EXPECT_DOUBLE_EQ(r.per(), 0.25);
  EXPECT_DOUBLE_EQ(r.ber(), 96.0 / (8 * 384));
  EXPECT_DOUBLE_EQ(r.energyPerBitNj(), 8 * 3200.0 / (8 * 384));
  EXPECT_DOUBLE_EQ(r.avgCyclesPerPacket(), 67000.0);

  const CellResult empty;
  EXPECT_DOUBLE_EQ(empty.per(), 0.0);
  EXPECT_DOUBLE_EQ(empty.ber(), 0.0);
  EXPECT_DOUBLE_EQ(empty.energyPerBitNj(), 0.0);
  EXPECT_DOUBLE_EQ(empty.avgCyclesPerPacket(), 0.0);
}

}  // namespace
}  // namespace adres::campaign
