// CellScheduler end-to-end: host-worker-count independence (byte-identical
// adres.cell.v1 summaries), the miss-accounting identities, all three
// deadline-miss classes (late / expired / overrun via the per-job cycle
// budget), and the metrics + SLO integration.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "cell/scheduler.hpp"
#include "common/json_min.hpp"
#include "obs/slo.hpp"
#include "platform/packet_farm.hpp"

namespace adres::cell {
namespace {

CellScenario baseScenario() {
  CellScenario sc;
  sc.seed = 42;
  sc.modem.mod = dsp::Modulation::kQam16;
  sc.modem.numSymbols = 2;
  sc.numServers = 2;
  sc.durationUs = 15'000.0;
  sc.classes[0].users = 3;
  sc.classes[0].packetsPerSec = 300.0;
  sc.classes[0].deadlineUs = 20'000.0;  // generous: nothing misses
  return sc;
}

platform::FarmConfig farmFor(const CellScenario& sc, int workers) {
  platform::FarmConfig fc;
  fc.modem = sc.modem;
  fc.numWorkers = workers;
  fc.queueCapacity = 8;
  fc.ordered = true;
  return fc;
}

/// Runs `sc` on a fresh farm with `workers` host threads; returns the
/// adres.cell.v1 summary bytes (and the totals via `out` when non-null).
std::string runScenario(const CellScenario& sc, int workers,
                        CellTotals* out = nullptr,
                        std::string* checkWhy = nullptr) {
  platform::PacketFarm farm(farmFor(sc, workers));
  CellScheduler sched(sc);
  const CellTotals totals = sched.run(farm);
  (void)farm.finish();
  EXPECT_TRUE(sched.selfCheck(checkWhy)) << (checkWhy ? *checkWhy : "");
  if (out != nullptr) *out = totals;
  std::ostringstream os;
  sched.writeSummary(os);
  return os.str();
}

TEST(CellScheduler, SummaryIsByteIdenticalAcrossHostWorkerCounts) {
  const CellScenario sc = baseScenario();
  CellTotals totals;
  const std::string oneWorker = runScenario(sc, 1, &totals);
  const std::string threeWorkers = runScenario(sc, 3);
  const std::string rerun = runScenario(sc, 1);
  ASSERT_GT(totals.offered, 0u);
  EXPECT_EQ(oneWorker, threeWorkers)
      << "host threads must not leak into simulated results";
  EXPECT_EQ(oneWorker, rerun) << "same seed, same bytes";

  // The summary is parsable adres.cell.v1 and internally consistent.
  json::JsonParser parser(oneWorker);
  const json::JsonValue root = parser.parse();
  EXPECT_EQ(root.at("schema").str, "adres.cell.v1");
  EXPECT_EQ(static_cast<u64>(root.at("offered").number), totals.offered);
  EXPECT_EQ(root.at("perFlow").array.size(), 3u);
}

TEST(CellScheduler, DifferentSeedMovesTheSummary) {
  CellScenario sc = baseScenario();
  const std::string a = runScenario(sc, 1);
  sc.seed += 1;
  const std::string b = runScenario(sc, 1);
  EXPECT_NE(a, b);
}

TEST(CellScheduler, GenerousDeadlineDeliversEverythingOnTime) {
  const CellScenario sc = baseScenario();
  CellTotals totals;
  (void)runScenario(sc, 2, &totals);
  EXPECT_GT(totals.offered, 0u);
  EXPECT_EQ(totals.missed(), 0u);
  EXPECT_EQ(totals.offered, totals.delivered + totals.errors);
  EXPECT_DOUBLE_EQ(totals.missRate(), 0.0);
}

TEST(CellScheduler, TightBudgetOverrunsEveryDecodeViaMaxCycles) {
  // Deadline far below one decode's service time (~142 us for QAM16 x 2):
  // the per-job cycle budget fires inside every served decode, so every
  // packet is a miss through the kMaxCycles/watchdog path — none are
  // delivered however light the load is.
  CellScenario sc = baseScenario();
  sc.classes[0].deadlineUs = 100.0;
  CellTotals totals;
  (void)runScenario(sc, 2, &totals);
  EXPECT_GT(totals.offered, 0u);
  EXPECT_EQ(totals.delivered, 0u);
  EXPECT_EQ(totals.errors, 0u);
  EXPECT_GT(totals.missedOverrun, 0u);
  EXPECT_EQ(totals.missed(), totals.offered);
}

TEST(CellScheduler, OverloadExpiresPacketsUnserved) {
  // 2 users x 10k pkt/s against one ~7k pkt/s server: the backlog outgrows
  // the frame budget and admission control starts dropping unserved.
  CellScenario sc = baseScenario();
  sc.numServers = 1;
  sc.durationUs = 20'000.0;
  sc.classes[0].users = 2;
  sc.classes[0].packetsPerSec = 10'000.0;
  sc.classes[0].deadlineUs = 4'000.0;
  CellTotals totals;
  (void)runScenario(sc, 2, &totals);
  EXPECT_GT(totals.offered, 100u);
  EXPECT_GT(totals.missedExpired, 0u);
  EXPECT_GT(totals.missRate(), 0.3);
}

TEST(CellScheduler, PerJobMaxCyclesStopsTheDecodeAtTheBudget) {
  // The farm-level contract the overrun path rests on: RxJob::maxCycles
  // caps that one decode, independent of the farm default.
  const CellScenario sc = baseScenario();
  platform::PacketFarm farm(farmFor(sc, 1));
  Rng rng(packetSeed(sc, 0, 0, kTxStream));
  const dsp::TxPacket pkt = dsp::transmit(sc.modem, rng);
  dsp::ChannelConfig cc;
  cc.taps = 1;
  cc.snrDb = 40;
  cc.seed = 9;
  dsp::MimoChannel chan(cc);

  platform::RxJob capped;
  capped.id = 0;
  capped.rx = chan.run(pkt.waveform);
  capped.maxCycles = 1000;  // far below a full decode
  farm.submit(std::move(capped));
  platform::RxJob uncapped;
  uncapped.id = 1;
  uncapped.rx = chan.run(pkt.waveform);
  farm.submit(std::move(uncapped));
  const std::vector<platform::RxOutcome> outs = farm.finish();
  ASSERT_EQ(outs.size(), 2u);
  EXPECT_EQ(outs[0].result.stop, StopReason::kMaxCycles);
  EXPECT_FALSE(outs[0].result.halted());
  // The stop lands on a step boundary: at the budget, within one step.
  EXPECT_GE(outs[0].result.cycles, 1000u);
  EXPECT_LT(outs[0].result.cycles, 1200u);
  EXPECT_EQ(outs[1].result.stop, StopReason::kHalt);
  EXPECT_EQ(outs[1].result.bits, pkt.bits);
}

TEST(CellScheduler, MetricsAndSloSeeTheSimulatedLatencies) {
  const CellScenario sc = baseScenario();
  platform::PacketFarm farm(farmFor(sc, 2));
  CellScheduler sched(sc);
  const CellTotals totals = sched.run(farm);
  (void)farm.finish();

  obs::MetricsRegistry reg;
  sched.registerMetrics(reg);
  const obs::MetricsSnapshot snap = reg.snapshot();

  const obs::SummarySample* lat = nullptr;
  for (const obs::SummarySample& s : snap.summaries)
    if (s.name == "adres_cell_latency_us") lat = &s;
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->hist.count, totals.offered)
      << "every offered packet records exactly one latency sample";

  double missRate = -1, offeredFlows = 0;
  for (const obs::MetricSample& s : snap.samples) {
    if (s.name == "adres_cell_deadline_miss_rate") missRate = s.value;
    if (s.name == "adres_cell_flow_offered") offeredFlows += s.value;
  }
  EXPECT_DOUBLE_EQ(missRate, totals.missRate());
  EXPECT_DOUBLE_EQ(offeredFlows, static_cast<double>(totals.offered));

  // The SLO engine's deadline_miss_rate(us) reads the cell summary: with
  // the generous budget every sample sits far below the deadline.
  obs::SloEngine engine(
      reg, obs::parseSloSpecList("miss: deadline_miss_rate(20000) <= 0.5"));
  const std::vector<obs::SloStatus> st = engine.evaluate();
  ASSERT_EQ(st.size(), 1u);
  EXPECT_TRUE(st[0].haveValue);
  EXPECT_DOUBLE_EQ(st[0].value, 0.0);
  EXPECT_FALSE(st[0].fired);
  reg.clear();
}

TEST(CellScheduler, WriteSummaryFileIsAtomicAndIdenticalToStream) {
  const CellScenario sc = baseScenario();
  platform::PacketFarm farm(farmFor(sc, 1));
  CellScheduler sched(sc);
  (void)sched.run(farm);
  (void)farm.finish();

  std::ostringstream os;
  sched.writeSummary(os);
  const std::string path =
      testing::TempDir() + "/adres_cell_summary_test.json";
  sched.writeSummaryFile(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream fileBytes;
  fileBytes << in.rdbuf();
  EXPECT_EQ(fileBytes.str(), os.str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adres::cell
