// Cell scenario model (src/cell/flow): counter-seeded determinism of the
// packet schedule, arrival-process statistics, the distance->SNR map and
// the stable scenario hash.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cell/flow.hpp"

namespace adres::cell {
namespace {

CellScenario smallScenario() {
  CellScenario sc;
  sc.seed = 7;
  sc.modem.mod = dsp::Modulation::kQam16;
  sc.modem.numSymbols = 2;
  sc.numServers = 2;
  sc.durationUs = 100'000.0;
  sc.classes[0].users = 4;
  sc.classes[0].packetsPerSec = 300.0;
  return sc;
}

TEST(CellFlow, ExpandFlowsInstantiatesEveryUserWithDenseIds) {
  CellScenario sc = smallScenario();
  FlowClass voip;
  voip.name = "voip";
  voip.users = 3;
  voip.deadlineUs = 1500.0;
  sc.classes.push_back(voip);

  const std::vector<UserFlow> flows = expandFlows(sc);
  ASSERT_EQ(flows.size(), 7u);
  for (std::size_t i = 0; i < flows.size(); ++i)
    EXPECT_EQ(flows[i].id, static_cast<u32>(i));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(flows[i].classIdx, 0);
  for (std::size_t i = 4; i < 7; ++i) {
    EXPECT_EQ(flows[i].classIdx, 1);
    EXPECT_DOUBLE_EQ(flows[i].deadlineUs, 1500.0);
  }
  // Log-spaced placement: strictly increasing radii within one class,
  // inside the [nearM, farM] band.
  for (std::size_t i = 1; i < 4; ++i)
    EXPECT_GT(flows[i].distanceM, flows[i - 1].distanceM);
  EXPECT_GE(flows[0].distanceM, sc.classes[0].nearM);
  EXPECT_LE(flows[3].distanceM, sc.classes[0].farM);
}

TEST(CellFlow, SnrMapIsMonotoneInDistanceAndClamped) {
  const CellScenario sc = smallScenario();
  UserFlow near, far;
  near.distanceM = sc.refDistanceM;
  far.distanceM = 10'000.0;  // clamped to the class's 2*farM band edge
  EXPECT_DOUBLE_EQ(flowSnrDbAt(sc, near, 0.0), sc.snrAtRefDb);
  UserFlow edge;
  edge.distanceM = 2.0 * sc.classes[0].farM;
  EXPECT_DOUBLE_EQ(flowSnrDbAt(sc, far, 0.0), flowSnrDbAt(sc, edge, 0.0));
  // A raised floor clamps the far user up to it.
  CellScenario floored = sc;
  floored.minSnrDb = 20.0;
  EXPECT_DOUBLE_EQ(flowSnrDbAt(floored, far, 0.0), 20.0);

  double prev = sc.snrAtRefDb + 1;
  for (double d = sc.refDistanceM; d < 2.0 * sc.classes[0].farM; d *= 1.5) {
    UserFlow f;
    f.distanceM = d;
    const double snr = flowSnrDbAt(sc, f, 0.0);
    EXPECT_LE(snr, prev);
    EXPECT_GE(snr, sc.minSnrDb);
    EXPECT_LE(snr, sc.snrAtRefDb);
    prev = snr;
  }
}

TEST(CellFlow, MobilityDriftMovesButStaysInBand) {
  CellScenario sc = smallScenario();
  sc.classes[0].speedMps = 30.0;
  const std::vector<UserFlow> flows = expandFlows(sc);
  bool anyMoved = false;
  for (const UserFlow& f : flows) {
    EXPECT_NE(f.driftMps, 0.0);
    const double d0 = flowDistanceAt(sc, f, 0.0);
    const double d1 = flowDistanceAt(sc, f, 1e6);  // one simulated second
    if (d0 != d1) anyMoved = true;
    EXPECT_GE(d1, sc.classes[0].nearM / 2.0);
    EXPECT_LE(d1, 2.0 * sc.classes[0].farM);
  }
  EXPECT_TRUE(anyMoved);
}

TEST(CellFlow, PacketSeedIsAPureFunctionWithIndependentStreams) {
  const CellScenario sc = smallScenario();
  EXPECT_EQ(packetSeed(sc, 1, 2, kTxStream), packetSeed(sc, 1, 2, kTxStream));
  EXPECT_NE(packetSeed(sc, 1, 2, kTxStream),
            packetSeed(sc, 1, 2, kChannelStream));
  EXPECT_NE(packetSeed(sc, 1, 2, kTxStream), packetSeed(sc, 2, 1, kTxStream));
  EXPECT_NE(packetSeed(sc, 1, 2, kTxStream), packetSeed(sc, 1, 3, kTxStream));
  CellScenario other = sc;
  other.seed = sc.seed + 1;
  EXPECT_NE(packetSeed(sc, 1, 2, kTxStream),
            packetSeed(other, 1, 2, kTxStream));
}

TEST(CellFlow, ScheduleIsDeterministicSortedAndSeedSensitive) {
  const CellScenario sc = smallScenario();
  const std::vector<UserFlow> flows = expandFlows(sc);
  const std::vector<PacketEvent> a = buildSchedule(sc, flows);
  const std::vector<PacketEvent> b = buildSchedule(sc, flows);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 0u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].flowId, b[i].flowId);
    EXPECT_EQ(a[i].seq, b[i].seq);
    EXPECT_DOUBLE_EQ(a[i].arrivalUs, b[i].arrivalUs);
  }
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_GE(a[i].arrivalUs, a[i - 1].arrivalUs);
    EXPECT_LT(a[i].arrivalUs, sc.durationUs);
  }

  CellScenario other = sc;
  other.seed = sc.seed + 1;
  const std::vector<PacketEvent> c = buildSchedule(other, expandFlows(other));
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i)
    differs = a[i].arrivalUs != c[i].arrivalUs;
  EXPECT_TRUE(differs) << "a different seed must move the schedule";
}

TEST(CellFlow, PerFlowStreamsAreIndependentOfThePopulation) {
  // Flow f's arrivals depend only on (scenario seed, flow id) — growing the
  // cell must not disturb the flows that were already there.
  CellScenario small = smallScenario();
  CellScenario big = small;
  big.classes[0].users = 8;
  const std::vector<UserFlow> smallFlows = expandFlows(small);
  const std::vector<UserFlow> bigFlows = expandFlows(big);
  for (u32 f = 0; f < 4; ++f) {
    const std::vector<PacketEvent> a = buildFlowSchedule(small, smallFlows[f]);
    const std::vector<PacketEvent> b = buildFlowSchedule(big, bigFlows[f]);
    ASSERT_EQ(a.size(), b.size()) << "flow " << f;
    for (std::size_t i = 0; i < a.size(); ++i)
      EXPECT_DOUBLE_EQ(a[i].arrivalUs, b[i].arrivalUs);
  }
}

TEST(CellFlow, PoissonArrivalsMatchTheOfferedRate) {
  CellScenario sc = smallScenario();
  sc.durationUs = 2'000'000.0;  // 2 simulated seconds
  sc.classes[0].users = 1;
  sc.classes[0].packetsPerSec = 500.0;
  const std::vector<UserFlow> flows = expandFlows(sc);
  const std::vector<PacketEvent> ev = buildFlowSchedule(sc, flows[0]);
  // ~1000 expected arrivals; the sample rate should land within 10%.
  const double rate = static_cast<double>(ev.size()) / (sc.durationUs / 1e6);
  EXPECT_NEAR(rate, 500.0, 50.0);
  // Exponential gaps: variance of the gap is mean^2 — far from CBR's 0.
  double sum = 0, sum2 = 0;
  for (std::size_t i = 1; i < ev.size(); ++i) {
    const double gap = ev[i].arrivalUs - ev[i - 1].arrivalUs;
    sum += gap;
    sum2 += gap * gap;
  }
  const double n = static_cast<double>(ev.size() - 1);
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_GT(var, 0.25 * mean * mean);
}

TEST(CellFlow, CbrArrivalsAreExactlyPeriodic) {
  CellScenario sc = smallScenario();
  sc.classes[0].users = 2;
  sc.classes[0].arrival = ArrivalKind::kCbr;
  sc.classes[0].packetsPerSec = 1000.0;  // 1 ms period
  const std::vector<UserFlow> flows = expandFlows(sc);
  const std::vector<PacketEvent> a = buildFlowSchedule(sc, flows[0]);
  const std::vector<PacketEvent> b = buildFlowSchedule(sc, flows[1]);
  ASSERT_GT(a.size(), 10u);
  for (std::size_t i = 1; i < a.size(); ++i)
    EXPECT_NEAR(a[i].arrivalUs - a[i - 1].arrivalUs, 1000.0, 1e-6);
  // Per-flow random phase: the two flows must not be synchronized.
  EXPECT_NE(a[0].arrivalUs, b[0].arrivalUs);
}

TEST(CellFlow, StableHashSeparatesScenarios) {
  const CellScenario sc = smallScenario();
  EXPECT_EQ(stableHash(sc), stableHash(sc));
  CellScenario seed = sc;
  seed.seed += 1;
  EXPECT_NE(stableHash(sc), stableHash(seed));
  CellScenario servers = sc;
  servers.numServers += 1;
  EXPECT_NE(stableHash(sc), stableHash(servers));
  CellScenario deadline = sc;
  deadline.classes[0].deadlineUs += 1.0;
  EXPECT_NE(stableHash(sc), stableHash(deadline));
  CellScenario name = sc;
  name.classes[0].name = "eu";  // same chars, different order
  EXPECT_NE(stableHash(sc), stableHash(name));
}

TEST(CellFlow, CycleTimeConversionsRoundTripAtTheClock)
{
  EXPECT_DOUBLE_EQ(cyclesToUs(400), 1.0);  // 400 cycles at 400 MHz = 1 us
  EXPECT_EQ(usToCycles(1.0), 401u);        // rounds up: never under-budget
  EXPECT_GE(cyclesToUs(usToCycles(123.4)), 123.4);
}

}  // namespace
}  // namespace adres::cell
