// CGA array execution: modulo sequencing, forwarding, squashing, stalls.
#include "cga/array.hpp"

#include <gtest/gtest.h>

#include "cga/topology.hpp"
#include "common/activity.hpp"

namespace adres {
namespace {

struct Fabric {
  CentralRegFile crf;
  Scratchpad l1;
  ConfigMemory cfg;
  ActivityCounters act;
  CgaArray array{crf, l1, cfg, act};
};

TEST(Array, CountedAccumulator) {
  // FU5 every cycle: local[0] += 1, seeded from CDRF r10, written to r11.
  Fabric f;
  KernelConfig k;
  k.name = "acc";
  k.ii = 1;
  k.schedLength = 1;
  k.contexts.resize(1);
  FuOp& op = k.contexts[0].fu[5];
  op.op = Opcode::ADD;
  op.src1 = SrcSel::localRf(0);
  op.src2 = SrcSel::imm();
  op.imm = 1;
  op.dst.toLocalRf = true;
  op.dst.localAddr = 0;
  k.preloads.push_back({5, 0, 10});
  k.writebacks.push_back({11, 5, 0});

  f.crf.poke(10, 100);
  const CgaRunResult r = f.array.run(k, 25);
  EXPECT_EQ(f.crf.peek(11), 125u);
  EXPECT_EQ(r.ops, 25u);
  EXPECT_EQ(r.arrayCycles, 25u);
  EXPECT_EQ(r.stallCycles, 0u);
}

TEST(Array, ZeroTripsWritesSeedBack) {
  Fabric f;
  KernelConfig k;
  k.name = "acc0";
  k.ii = 1;
  k.schedLength = 1;
  k.contexts.resize(1);
  FuOp& op = k.contexts[0].fu[5];
  op.op = Opcode::ADD;
  op.src1 = SrcSel::localRf(0);
  op.src2 = SrcSel::imm();
  op.imm = 1;
  op.dst.toLocalRf = true;
  op.dst.localAddr = 0;
  k.preloads.push_back({5, 0, 10});
  k.writebacks.push_back({11, 5, 0});
  f.crf.poke(10, 7);
  (void)f.array.run(k, 0);
  EXPECT_EQ(f.crf.peek(11), 7u);
}

TEST(Array, OutputRegisterForwardingChain) {
  // MOVI on FU0 (t=0) -> MOV on FU4 (t=1, reads FU0 output) ->
  // MOV on FU8 (t=2, reads FU4 output) -> local RF -> writeback.
  Fabric f;
  KernelConfig k;
  k.name = "chain";
  k.ii = 3;
  k.schedLength = 3;
  k.contexts.resize(3);
  {
    FuOp& a = k.contexts[0].fu[0];
    a.op = Opcode::MOVI;
    a.src2 = SrcSel::imm();
    a.imm = 42;
    a.schedTime = 0;
  }
  {
    FuOp& b = k.contexts[1].fu[4];
    b.op = Opcode::MOV;
    b.src1 = SrcSel::output(0);
    b.schedTime = 1;
  }
  {
    FuOp& c = k.contexts[2].fu[8];
    c.op = Opcode::MOV;
    c.src1 = SrcSel::output(4);
    c.dst.toLocalRf = true;
    c.dst.localAddr = 3;
    c.schedTime = 2;
  }
  k.writebacks.push_back({20, 8, 3});
  const CgaRunResult r = f.array.run(k, 1);
  EXPECT_EQ(f.crf.peek(20), 42u);
  EXPECT_EQ(r.ops, 3u);
  EXPECT_EQ(r.routeMoves, 2u);
}

TEST(Array, MultiCycleLatencyRespected) {
  // D4PROD (latency 3) result consumed by a MOV scheduled exactly 3 later.
  Fabric f;
  KernelConfig k;
  k.name = "lat3";
  k.ii = 4;
  k.schedLength = 4;
  k.contexts.resize(4);
  {
    FuOp& a = k.contexts[0].fu[6];
    a.op = Opcode::D4PROD;
    a.src1 = SrcSel::localRf(0);
    a.src2 = SrcSel::localRf(1);
    a.schedTime = 0;
  }
  {
    FuOp& b = k.contexts[3].fu[6];
    b.op = Opcode::MOV;
    b.src1 = SrcSel::output(6);
    b.dst.toLocalRf = true;
    b.dst.localAddr = 2;
    b.schedTime = 3;
  }
  k.preloads.push_back({6, 0, 1});
  k.preloads.push_back({6, 1, 2});
  k.writebacks.push_back({3, 6, 2});
  f.crf.poke(1, packLanes(16384, 16384, 16384, 16384));
  f.crf.poke(2, packLanes(16384, -16384, 8192, 0));
  (void)f.array.run(k, 1);
  EXPECT_EQ(f.crf.peek(3), packLanes(8192, -8192, 4096, 0));
}

TEST(Array, StoreAndLoadThroughL1) {
  // FU0 stores a value; FU1 loads it back 6 cycles later (latency 5).
  Fabric f;
  KernelConfig k;
  k.name = "st_ld";
  k.ii = 7;
  k.schedLength = 7;
  k.contexts.resize(7);
  {
    FuOp& st = k.contexts[0].fu[0];
    st.op = Opcode::ST_I;
    st.src1 = SrcSel::localRf(0);  // base
    st.src2 = SrcSel::imm();
    st.imm = 0;
    st.src3 = SrcSel::localRf(1);  // data
    st.schedTime = 0;
  }
  {
    FuOp& ld = k.contexts[1].fu[1];
    ld.op = Opcode::LD_I;
    ld.src1 = SrcSel::localRf(0);
    ld.src2 = SrcSel::imm();
    ld.imm = 0;
    ld.dst.toLocalRf = true;
    ld.dst.localAddr = 2;
    ld.schedTime = 1;
  }
  k.preloads.push_back({0, 0, 1});
  k.preloads.push_back({0, 1, 2});
  k.preloads.push_back({1, 0, 1});
  k.writebacks.push_back({5, 1, 2});
  f.crf.poke(1, 0x80);          // address
  f.crf.poke(2, 0xCAFE0001ull); // data
  (void)f.array.run(k, 1);
  EXPECT_EQ(f.l1.read32(0x80), 0xCAFE0001u);
  EXPECT_EQ(f.crf.peek(5), 0xCAFE0001u);
}

TEST(Array, Ld64PairMergesAtCommit) {
  // LD_I (t=0) + LD_IH (t=1) into the same local register.
  Fabric f;
  f.l1.write32(0x40, 0x11111111);
  f.l1.write32(0x44, 0x22222222);
  KernelConfig k;
  k.name = "ld64";
  k.ii = 2;
  k.schedLength = 7;
  k.contexts.resize(2);
  {
    FuOp& lo = k.contexts[0].fu[2];
    lo.op = Opcode::LD_I;
    lo.src1 = SrcSel::localRf(0);
    lo.src2 = SrcSel::imm();
    lo.imm = 0;
    lo.dst.toLocalRf = true;
    lo.dst.localAddr = 1;
    lo.schedTime = 0;
  }
  {
    FuOp& hi = k.contexts[1].fu[2];
    hi.op = Opcode::LD_IH;
    hi.src1 = SrcSel::localRf(0);
    hi.src2 = SrcSel::imm();
    hi.imm = 1;
    hi.dst.toLocalRf = true;
    hi.dst.localAddr = 1;
    hi.schedTime = 1;
  }
  k.preloads.push_back({2, 0, 1});
  k.writebacks.push_back({6, 2, 1});
  f.crf.poke(1, 0x40);
  (void)f.array.run(k, 1);
  EXPECT_EQ(f.crf.peek(6), 0x22222222'11111111ull);
}

TEST(Array, BankConflictStallsWholeArray) {
  // Two loads in the same context cycle hitting the same bank.
  Fabric f;
  f.l1.write32(0x00, 1);
  f.l1.write32(0x10, 2);  // same bank 0 (word-interleaved)
  KernelConfig k;
  k.name = "conflict";
  k.ii = 1;
  k.schedLength = 6;
  k.contexts.resize(1);
  for (int fu : {0, 1}) {
    FuOp& ld = k.contexts[0].fu[fu];
    ld.op = Opcode::LD_I;
    ld.src1 = SrcSel::localRf(0);
    ld.src2 = SrcSel::imm();
    ld.imm = fu == 0 ? 0 : 4;
    ld.schedTime = 0;
    k.preloads.push_back({static_cast<u8>(fu), 0, 1});
  }
  f.crf.poke(1, 0x0);
  const CgaRunResult r = f.array.run(k, 3);
  EXPECT_GT(r.stallCycles, 0u) << "same-bank accesses must queue";
  EXPECT_EQ(f.l1.stats().conflicts, 3u);
}

TEST(Array, PrologueEpilogueSquash) {
  // Two-stage pipeline: stage A (t=0) increments, stage B (t=1) copies A's
  // output to a register.  With trips=4 and II=1 both stages execute
  // exactly 4 times (prologue squashes B at g=0; epilogue squashes A at the
  // tail).
  Fabric f;
  KernelConfig k;
  k.name = "squash";
  k.ii = 1;
  k.schedLength = 2;
  k.contexts.resize(1);
  // Only one op per (slot,fu): put A on FU5, B on FU6 (adjacent: 5 east-> 6).
  {
    FuOp& a = k.contexts[0].fu[5];
    a.op = Opcode::ADD;
    a.src1 = SrcSel::localRf(0);
    a.src2 = SrcSel::imm();
    a.imm = 1;
    a.dst.toLocalRf = true;
    a.dst.localAddr = 0;
    a.schedTime = 0;
  }
  {
    FuOp& b = k.contexts[0].fu[6];
    b.op = Opcode::MOV;
    b.src1 = SrcSel::output(5);
    b.dst.toLocalRf = true;
    b.dst.localAddr = 0;
    b.schedTime = 1;  // belongs to slot 1 % 1 == 0: same context, one later
  }
  k.preloads.push_back({5, 0, 1});
  k.writebacks.push_back({2, 5, 0});
  k.writebacks.push_back({3, 6, 0});
  f.crf.poke(1, 0);
  const CgaRunResult r = f.array.run(k, 4);
  EXPECT_EQ(f.crf.peek(2), 4u) << "A ran 4 times";
  EXPECT_EQ(f.crf.peek(3), 4u) << "B copied A's last output";
  EXPECT_EQ(r.ops, 8u) << "4 instances of each stage";
}

TEST(Array, ActivityCountersAdvance) {
  Fabric f;
  KernelConfig k;
  k.name = "act";
  k.ii = 1;
  k.schedLength = 1;
  k.contexts.resize(1);
  FuOp& op = k.contexts[0].fu[4];
  op.op = Opcode::C4ADD;
  op.src1 = SrcSel::localRf(0);
  op.src2 = SrcSel::localRf(1);
  k.preloads.push_back({4, 0, 1});
  k.preloads.push_back({4, 1, 2});
  (void)f.array.run(k, 10);
  EXPECT_EQ(f.act.cgaOps, 10u);
  EXPECT_EQ(f.act.simdOps, 10u);
  EXPECT_EQ(f.act.ops16, 40u);
  EXPECT_GT(f.act.cgaCycles, 0u);
  EXPECT_EQ(f.cfg.stats().contextFetches, 10u);
}

}  // namespace
}  // namespace adres
