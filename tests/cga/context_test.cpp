// KernelConfig validation and configuration-image round trips.
#include "cga/context.hpp"

#include <gtest/gtest.h>

#include "cga/topology.hpp"
#include "common/check.hpp"

namespace adres {
namespace {

KernelConfig makeSimpleKernel() {
  KernelConfig k;
  k.name = "acc";
  k.ii = 1;
  k.schedLength = 1;
  k.contexts.resize(1);
  FuOp& f = k.contexts[0].fu[5];
  f.op = Opcode::ADD;
  f.src1 = SrcSel::localRf(0);
  f.src2 = SrcSel::imm();
  f.imm = 1;
  f.dst.toLocalRf = true;
  f.dst.localAddr = 0;
  f.schedTime = 0;
  k.preloads.push_back({5, 0, 10});
  k.writebacks.push_back({11, 5, 0});
  return k;
}

TEST(Context, ValidKernelPasses) {
  EXPECT_NO_THROW(makeSimpleKernel().validate());
}

TEST(Context, RejectsWrongContextCount) {
  KernelConfig k = makeSimpleKernel();
  k.ii = 2;
  EXPECT_THROW(k.validate(), SimError);
}

TEST(Context, RejectsGlobalAccessWithoutPort) {
  KernelConfig k = makeSimpleKernel();
  k.contexts[0].fu[5].src1 = SrcSel::globalRf(3);
  EXPECT_THROW(k.validate(), SimError) << "FU5 has no CDRF port";
  k = makeSimpleKernel();
  k.contexts[0].fu[5].dst.toGlobalRf = true;
  EXPECT_THROW(k.validate(), SimError);
}

TEST(Context, RejectsNonMeshOutputRead) {
  KernelConfig k = makeSimpleKernel();
  // FU5 (row1,col1) cannot read FU15 (row3,col3).
  k.contexts[0].fu[5].src1 = SrcSel::output(15);
  EXPECT_THROW(k.validate(), SimError);
  // But it can read FU1 (its north neighbour).
  k.contexts[0].fu[5].src1 = SrcSel::output(1);
  EXPECT_NO_THROW(k.validate());
}

TEST(Context, RejectsMisplacedSchedTime) {
  KernelConfig k = makeSimpleKernel();
  k.contexts[0].fu[5].schedTime = 1;  // 1 % 1 == 0 ok; use ii=2 case
  k.ii = 2;
  k.contexts.resize(2);
  EXPECT_THROW(k.validate(), SimError) << "op in wrong context slot";
}

TEST(Context, RejectsOpOnWrongFu) {
  KernelConfig k = makeSimpleKernel();
  k.contexts[0].fu[8].op = Opcode::LD_I;  // loads only on FUs 0-3
  k.contexts[0].fu[8].src1 = SrcSel::localRf(0);
  EXPECT_THROW(k.validate(), SimError);
}

TEST(Context, RejectsControlOpsInArray) {
  KernelConfig k = makeSimpleKernel();
  k.contexts[0].fu[0].op = Opcode::BR;
  EXPECT_THROW(k.validate(), SimError);
}

TEST(Context, EncodeDecodeRoundTrip) {
  const KernelConfig k = makeSimpleKernel();
  const auto img = encodeKernel(k);
  const KernelConfig d = decodeKernel(img);
  EXPECT_EQ(d.name, "acc");
  EXPECT_EQ(d.ii, 1);
  EXPECT_EQ(d.schedLength, 1);
  ASSERT_EQ(d.preloads.size(), 1u);
  EXPECT_EQ(d.preloads[0].globalReg, 10);
  ASSERT_EQ(d.writebacks.size(), 1u);
  EXPECT_EQ(d.writebacks[0].globalReg, 11);
  const FuOp& f = d.contexts[0].fu[5];
  EXPECT_EQ(f.op, Opcode::ADD);
  EXPECT_EQ(f.src1, SrcSel::localRf(0));
  EXPECT_EQ(f.src2, SrcSel::imm());
  EXPECT_EQ(f.imm, 1);
  EXPECT_TRUE(f.dst.toLocalRf);
}

TEST(Context, NegativeImmediatesSurviveEncoding) {
  KernelConfig k = makeSimpleKernel();
  k.contexts[0].fu[5].imm = -1234;
  const KernelConfig d = decodeKernel(encodeKernel(k));
  EXPECT_EQ(d.contexts[0].fu[5].imm, -1234);
}

TEST(Context, UltraWideWordSize) {
  // Sanity: the per-cycle configuration word is in the several-hundred-bit
  // range the paper's "ultra wide" description implies.
  EXPECT_GT(contextWordBits(), 512);
  EXPECT_LT(contextWordBits(), 4096);
}

TEST(Context, OpCount) {
  EXPECT_EQ(makeSimpleKernel().opCount(), 1);
}

}  // namespace
}  // namespace adres
