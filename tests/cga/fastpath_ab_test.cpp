// A/B/C equivalence of the three execution tiers (DESIGN.md §14): for
// every Table 2 fixture kernel, plans built at kReference, kInterpreted
// and kNative must execute identically across trip counts that exercise
// the empty run, prologue/epilogue-only runs (no steady-state window) and
// the canonical steady-state run.  Equivalence means identical
// CgaRunResult, identical activity/memory statistics and an identical
// fabric checksum (output registers, local RFs, CRF, L1 contents).
#include <gtest/gtest.h>

#include "support/kernel_fixture.hpp"

namespace adres::testsupport {
namespace {

struct AbSnapshot {
  CgaRunResult r;
  u64 l1Reads = 0, l1Writes = 0, l1Conflicts = 0, l1ConflictCycles = 0;
  u64 cgaOps = 0, cgaRouteMoves = 0, simdOps = 0, ops16 = 0, transports = 0;
  u64 cdrfCgaAccesses = 0, l1CgaAccesses = 0;
  u64 contextFetches = 0;
  u64 lrfReads = 0, lrfWrites = 0;
  u64 checksum = 0;
};

template <typename RunFn>
AbSnapshot runCase(const KernelCase& c, u32 trips, RunFn&& run) {
  Fabric f;
  prepareFabric(f);
  c.setup(f);
  AbSnapshot s;
  s.r = run(f, trips);
  s.l1Reads = f.l1.stats().reads;
  s.l1Writes = f.l1.stats().writes;
  s.l1Conflicts = f.l1.stats().conflicts;
  s.l1ConflictCycles = f.l1.stats().conflictCycles;
  s.cgaOps = f.act.cgaOps;
  s.cgaRouteMoves = f.act.cgaRouteMoves;
  s.simdOps = f.act.simdOps;
  s.ops16 = f.act.ops16;
  s.transports = f.act.transports;
  s.cdrfCgaAccesses = f.act.cdrfCgaAccesses;
  s.l1CgaAccesses = f.act.l1CgaAccesses;
  s.contextFetches = f.cfg.stats().contextFetches;
  {
    const RegFileStats lrf = f.array.localRfTotals();
    s.lrfReads = lrf.reads;
    s.lrfWrites = lrf.writes;
  }
  s.checksum = fabricChecksum(f);  // bumps stats; keep last
  return s;
}

void expectEqual(const AbSnapshot& ref, const AbSnapshot& fast) {
  EXPECT_EQ(ref.r.cycles, fast.r.cycles);
  EXPECT_EQ(ref.r.arrayCycles, fast.r.arrayCycles);
  EXPECT_EQ(ref.r.stallCycles, fast.r.stallCycles);
  EXPECT_EQ(ref.r.issueCycles, fast.r.issueCycles);
  EXPECT_EQ(ref.r.ops, fast.r.ops);
  EXPECT_EQ(ref.r.routeMoves, fast.r.routeMoves);
  EXPECT_EQ(ref.l1Reads, fast.l1Reads);
  EXPECT_EQ(ref.l1Writes, fast.l1Writes);
  EXPECT_EQ(ref.l1Conflicts, fast.l1Conflicts);
  EXPECT_EQ(ref.l1ConflictCycles, fast.l1ConflictCycles);
  EXPECT_EQ(ref.cgaOps, fast.cgaOps);
  EXPECT_EQ(ref.cgaRouteMoves, fast.cgaRouteMoves);
  EXPECT_EQ(ref.simdOps, fast.simdOps);
  EXPECT_EQ(ref.ops16, fast.ops16);
  EXPECT_EQ(ref.transports, fast.transports);
  EXPECT_EQ(ref.cdrfCgaAccesses, fast.cdrfCgaAccesses);
  EXPECT_EQ(ref.l1CgaAccesses, fast.l1CgaAccesses);
  EXPECT_EQ(ref.contextFetches, fast.contextFetches);
  EXPECT_EQ(ref.lrfReads, fast.lrfReads);
  EXPECT_EQ(ref.lrfWrites, fast.lrfWrites);
  EXPECT_EQ(ref.checksum, fast.checksum);
}

TEST(CgaExecTierAbc, TiersMatchOnEveryFixtureKernel) {
  for (const KernelCase& c : tableTwoKernelCases()) {
    const KernelPlan ref = buildKernelPlan(c.config, ExecTier::kReference);
    const KernelPlan interp = buildKernelPlan(c.config, ExecTier::kInterpreted);
    const KernelPlan native = buildKernelPlan(c.config, ExecTier::kNative);
    ASSERT_EQ(ref.tier, ExecTier::kReference);
    ASSERT_EQ(interp.tier, ExecTier::kInterpreted);
    ASSERT_EQ(native.tier, ExecTier::kNative);
    ASSERT_EQ(ref.native, nullptr);
    ASSERT_NE(native.native, nullptr);
    // 0: nothing runs; 1 and 2: prologue/epilogue overlap, steady-state
    // window empty or tiny; c.trips: the canonical Table 2 launch with a
    // real steady state.
    for (u32 trips : {0u, 1u, 2u, c.trips}) {
      SCOPED_TRACE(std::string(c.name) + " trips=" + std::to_string(trips));
      const AbSnapshot a = runCase(c, trips, [&](Fabric& f, u32 t) {
        return f.array.run(ref, t);
      });
      const AbSnapshot b = runCase(c, trips, [&](Fabric& f, u32 t) {
        return f.array.run(interp, t);
      });
      const AbSnapshot n = runCase(c, trips, [&](Fabric& f, u32 t) {
        return f.array.run(native, t);
      });
      expectEqual(a, b);
      expectEqual(a, n);
    }
  }
}

// The KernelConfig overloads are thin wrappers over buildKernelPlan + the
// plan overload; pin that they really are the same execution, for both the
// explicit-tier and default-tier flavours.
TEST(CgaExecTierAbc, ConfigOverloadDelegatesToPlan) {
  const std::vector<KernelCase> cases = tableTwoKernelCases();
  const KernelCase& c = cases.front();
  const AbSnapshot viaDefault = runCase(c, c.trips, [&](Fabric& f, u32 t) {
    return f.array.run(c.config, t);
  });
  const AbSnapshot viaTier = runCase(c, c.trips, [&](Fabric& f, u32 t) {
    return f.array.run(c.config, t, defaultExecTier());
  });
  const KernelPlan plan = buildKernelPlan(c.config, defaultExecTier());
  const AbSnapshot viaPlan = runCase(c, c.trips, [&](Fabric& f, u32 t) {
    return f.array.run(plan, t);
  });
  expectEqual(viaDefault, viaTier);
  expectEqual(viaDefault, viaPlan);
}

// Tier selection fails loudly at plan build, never silently at launch.
TEST(CgaExecTierAbc, UnknownTierThrowsAtPlanBuild) {
  const std::vector<KernelCase> cases = tableTwoKernelCases();
  EXPECT_THROW(buildKernelPlan(cases.front().config, static_cast<ExecTier>(7)),
               SimError);
  EXPECT_THROW(parseExecTier("turbo"), SimError);
  EXPECT_EQ(parseExecTier("reference"), ExecTier::kReference);
  EXPECT_EQ(parseExecTier("interpreted"), ExecTier::kInterpreted);
  EXPECT_EQ(parseExecTier("native"), ExecTier::kNative);
}

}  // namespace
}  // namespace adres::testsupport
