// 4x4 torus interconnect properties.
#include "cga/topology.hpp"

#include <gtest/gtest.h>

namespace adres {
namespace {

TEST(Topology, NeighboursWrapAround) {
  // FU0 is row 0, col 0.
  EXPECT_EQ(neighbour(0, Dir::kNorth), 12);
  EXPECT_EQ(neighbour(0, Dir::kSouth), 4);
  EXPECT_EQ(neighbour(0, Dir::kEast), 1);
  EXPECT_EQ(neighbour(0, Dir::kWest), 3);
  // FU15 is row 3, col 3.
  EXPECT_EQ(neighbour(15, Dir::kNorth), 11);
  EXPECT_EQ(neighbour(15, Dir::kSouth), 3);
  EXPECT_EQ(neighbour(15, Dir::kEast), 12);
  EXPECT_EQ(neighbour(15, Dir::kWest), 14);
}

TEST(Topology, NeighbourhoodIsSymmetric) {
  for (int f = 0; f < kCgaFus; ++f) {
    for (int g = 0; g < kCgaFus; ++g) {
      EXPECT_EQ(canRead(f, g), canRead(g, f)) << f << "," << g;
    }
  }
}

TEST(Topology, SelfAlwaysReadable) {
  for (int f = 0; f < kCgaFus; ++f) EXPECT_TRUE(canRead(f, f));
}

TEST(Topology, EachFuReadsFiveOutputs) {
  for (int f = 0; f < kCgaFus; ++f) {
    const auto r = readableFrom(f);
    // Self + 4 distinct neighbours on a 4x4 torus.
    std::set<int> s(r.begin(), r.end());
    EXPECT_EQ(s.size(), 5u);
  }
}

TEST(Topology, GlobalPortsOnFirstThreeFus) {
  EXPECT_TRUE(hasGlobalPort(0));
  EXPECT_TRUE(hasGlobalPort(2));
  EXPECT_FALSE(hasGlobalPort(3));
  EXPECT_FALSE(hasGlobalPort(15));
}

TEST(Topology, TorusHopsMetric) {
  EXPECT_EQ(torusHops(0, 0), 0);
  EXPECT_EQ(torusHops(0, 1), 1);
  EXPECT_EQ(torusHops(0, 3), 1) << "wrap-around column";
  EXPECT_EQ(torusHops(0, 12), 1) << "wrap-around row";
  EXPECT_EQ(torusHops(0, 5), 2);
  EXPECT_EQ(torusHops(0, 10), 4) << "diagonal opposite";
  // Symmetry.
  for (int a = 0; a < kCgaFus; ++a)
    for (int b = 0; b < kCgaFus; ++b) EXPECT_EQ(torusHops(a, b), torusHops(b, a));
}

TEST(Topology, HopsMatchAdjacency) {
  for (int a = 0; a < kCgaFus; ++a)
    for (int b = 0; b < kCgaFus; ++b)
      if (a != b && canRead(a, b)) EXPECT_EQ(torusHops(a, b), 1);
}

}  // namespace
}  // namespace adres
