#include "common/bitfield.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace adres {
namespace {

TEST(BitField, WriteReadRoundTrip) {
  BitWriter w;
  w.put(0x5, 3);
  w.put(0x1234, 16);
  w.put(1, 1);
  w.put(0xFFFFFFFFFFFFFFFFull, 64);
  BitReader r(w.bytes());
  EXPECT_EQ(r.get(3), 0x5u);
  EXPECT_EQ(r.get(16), 0x1234u);
  EXPECT_EQ(r.get(1), 1u);
  EXPECT_EQ(r.get(64), 0xFFFFFFFFFFFFFFFFull);
}

TEST(BitField, OverflowingValueThrows) {
  BitWriter w;
  EXPECT_THROW(w.put(0x10, 4), SimError);
}

TEST(BitField, ReadPastEndThrows) {
  BitWriter w;
  w.put(1, 1);
  BitReader r(w.bytes());
  (void)r.get(1);
  // The byte has 7 padding bits; reading a 9th bit overruns.
  (void)r.get(7);
  EXPECT_THROW(r.get(1), SimError);
}

TEST(BitField, AlignPadsWithZeros) {
  BitWriter w;
  w.put(1, 1);
  w.alignTo(32);
  EXPECT_EQ(w.bitCount(), 32u);
  BitReader r(w.bytes());
  EXPECT_EQ(r.get(1), 1u);
  EXPECT_EQ(r.get(31), 0u);
}

TEST(BitField, RandomizedRoundTrip) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::pair<u64, int>> fields;
    BitWriter w;
    for (int i = 0; i < 40; ++i) {
      const int bits = 1 + static_cast<int>(rng.below(64));
      const u64 v = bits == 64 ? rng.next() : (rng.next() & ((u64{1} << bits) - 1));
      fields.emplace_back(v, bits);
      w.put(v, bits);
    }
    BitReader r(w.bytes());
    for (const auto& [v, bits] : fields) EXPECT_EQ(r.get(bits), v);
  }
}

}  // namespace
}  // namespace adres
