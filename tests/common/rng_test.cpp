#include "common/rng.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace adres {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, UniformInRange) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, GaussianMoments) {
  Rng r(5);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = r.gaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

}  // namespace
}  // namespace adres
