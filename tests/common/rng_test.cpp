#include "common/rng.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace adres {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, UniformInRange) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(42), b(42);
  Rng fa = a.fork(7), fb = b.fork(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(fa.next(), fb.next());
}

TEST(Rng, ForkIsDrawIndependent) {
  // fork() derives from the construction seed, not the current state: the
  // campaign engine relies on forked streams being identical no matter how
  // many draws the parent made first.
  Rng fresh(42);
  Rng drained(42);
  for (int i = 0; i < 1000; ++i) (void)drained.next();
  Rng a = fresh.fork(3), b = drained.fork(3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ForkLabelsSeparateStreams) {
  Rng parent(42);
  Rng f1 = parent.fork(1), f2 = parent.fork(2);
  EXPECT_NE(f1.next(), f2.next());
  // A fork must not replay the parent's own stream either.
  Rng p2(42);
  EXPECT_NE(p2.fork(0).next(), p2.next());
}

TEST(Rng, GaussianMoments) {
  Rng r(5);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = r.gaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

}  // namespace
}  // namespace adres
