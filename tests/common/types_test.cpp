// Lane/packing helpers and saturating Q15 arithmetic.
#include "common/types.hpp"

#include <gtest/gtest.h>

namespace adres {
namespace {

TEST(Lanes, PackUnpackRoundTrip) {
  const Word w = packLanes(-1, 2, -32768, 32767);
  EXPECT_EQ(lane(w, 0), -1);
  EXPECT_EQ(lane(w, 1), 2);
  EXPECT_EQ(lane(w, 2), -32768);
  EXPECT_EQ(lane(w, 3), 32767);
  const auto l = unpackLanes(w);
  EXPECT_EQ(packLanes(l[0], l[1], l[2], l[3]), w);
}

TEST(Lanes, WithLaneReplacesOnlyOneLane) {
  Word w = packLanes(10, 20, 30, 40);
  w = withLane(w, 2, -7);
  EXPECT_EQ(lane(w, 0), 10);
  EXPECT_EQ(lane(w, 1), 20);
  EXPECT_EQ(lane(w, 2), -7);
  EXPECT_EQ(lane(w, 3), 40);
}

TEST(Lanes, LaneUMatchesBitPattern) {
  const Word w = packLanes(-1, 0, 1, -2);
  EXPECT_EQ(laneU(w, 0), 0xFFFFu);
  EXPECT_EQ(laneU(w, 3), 0xFFFEu);
}

TEST(Scalar, Lo32IsSigned) {
  EXPECT_EQ(lo32(0xFFFFFFFFull), -1);
  EXPECT_EQ(lo32u(0xFFFFFFFFull), 0xFFFFFFFFu);
  EXPECT_EQ(fromScalar(i32{-1}), 0xFFFFFFFFull) << "high half cleared";
}

TEST(Sat16, AddSaturates) {
  EXPECT_EQ(satAdd16(32000, 1000), 32767);
  EXPECT_EQ(satAdd16(-32000, -1000), -32768);
  EXPECT_EQ(satAdd16(100, -50), 50);
}

TEST(Sat16, SubSaturates) {
  EXPECT_EQ(satSub16(-32000, 1000), -32768);
  EXPECT_EQ(satSub16(32000, -1000), 32767);
}

TEST(Sat16, NegAndAbsHandleIntMin) {
  EXPECT_EQ(satNeg16(-32768), 32767);
  EXPECT_EQ(satAbs16(-32768), 32767);
  EXPECT_EQ(satAbs16(-5), 5);
  EXPECT_EQ(satNeg16(5), -5);
}

TEST(MulQ15, UnitAndRounding) {
  // 0.5 * 0.5 = 0.25.
  EXPECT_EQ(mulQ15(16384, 16384), 8192);
  // -1.0 * -1.0 saturates.
  EXPECT_EQ(mulQ15(-32768, -32768), 32767);
  // Rounding: 1 * 1 (tiny) rounds to 0 but 0x4000-scaled half rounds up.
  EXPECT_EQ(mulQ15(1, 1), 0);
  EXPECT_EQ(mulQ15(32767, 1), 1);
}

TEST(Cint16, ComplexProductMatchesDouble) {
  const cint16 a{8192, -4096};   // 0.25 - 0.125j
  const cint16 b{16384, 16384};  // 0.5 + 0.5j
  const cint16 p = a * b;
  // (0.25 - 0.125j)(0.5+0.5j) = 0.1875 + 0.0625j
  EXPECT_NEAR(p.re / 32768.0, 0.1875, 2e-4);
  EXPECT_NEAR(p.im / 32768.0, 0.0625, 2e-4);
}

TEST(Cint16, ConjAndNorm) {
  const cint16 a{1000, -2000};
  EXPECT_EQ(a.conj().im, 2000);
  EXPECT_GT(a.norm2(), 0);
}

TEST(Cint16, PackC2RoundTrip) {
  const cint16 s0{-3, 4}, s1{5, -6};
  const Word w = packC2(s0, s1);
  EXPECT_EQ(unpackC(w, 0), s0);
  EXPECT_EQ(unpackC(w, 1), s1);
}

}  // namespace
}  // namespace adres
