// Processor-level behaviour: mode switching, sleep/resume, external stall,
// region profiling, program loading through the binary/DMA paths.
#include <gtest/gtest.h>

#include "bus/ahb.hpp"
#include "core/processor.hpp"
#include "sched/progbuilder.hpp"

namespace adres {
namespace {

KernelConfig accumulatorKernel() {
  KernelConfig k;
  k.name = "acc";
  k.ii = 1;
  k.schedLength = 1;
  k.contexts.resize(1);
  FuOp& f = k.contexts[0].fu[5];
  f.op = Opcode::ADD;
  f.src1 = SrcSel::localRf(0);
  f.src2 = SrcSel::imm();
  f.imm = 1;
  f.dst.toLocalRf = true;
  f.dst.localAddr = 0;
  k.preloads.push_back({5, 0, 10});
  k.writebacks.push_back({11, 5, 0});
  return k;
}

TEST(Processor, CgaInstructionRunsKernel) {
  ProgramBuilder b("cga_test");
  const int kid = b.addKernel(accumulatorKernel());
  b.li(10, 1000);  // accumulator seed
  b.li(12, 50);    // trip count
  b.cga(kid, 12);
  b.halt();
  Processor p;
  p.load(b.build());
  EXPECT_EQ(p.run(), StopReason::kHalt);
  EXPECT_EQ(p.regs().peek(11), 1050u);
  EXPECT_EQ(p.activity().modeSwitches, 2u);
  EXPECT_GT(p.activity().cgaCycles, 50u) << "kernel + switch overhead";
  EXPECT_GT(p.activity().vliwCycles, 0u);
}

TEST(Processor, ResetStatsClearsEverySubsystemIncludingICache) {
  ProgramBuilder b("reset");
  const int kid = b.addKernel(accumulatorKernel());
  b.li(10, 0);
  b.li(12, 5);
  b.cga(kid, 12);
  b.halt();
  Processor p;
  p.load(b.build());
  p.run();
  ASSERT_GT(p.icache().stats().accesses, 0u);
  ASSERT_GT(p.activity().vliwCycles, 0u);
  p.resetStats();
  // Regression: resetStats() used to skip the I$, leaving stale
  // access/miss counts behind a fresh activity profile.
  EXPECT_EQ(p.icache().stats().accesses, 0u);
  EXPECT_EQ(p.icache().stats().misses, 0u);
  EXPECT_EQ(p.activity().vliwCycles, 0u);
  EXPECT_EQ(p.l1().stats().reads, 0u);
  // DMA stats deliberately survive: they account program-load transfers.
  EXPECT_GT(p.dma().stats().transfers, 0u);
}

TEST(Processor, KernelSurvivesConfigMemoryRoundTrip) {
  // load() encodes kernels into configuration memory via DMA and decodes
  // them back; a second identical launch must still work.
  ProgramBuilder b("cfg_rt");
  const int kid = b.addKernel(accumulatorKernel());
  b.li(10, 0);
  b.li(12, 3);
  b.cga(kid, 12);
  b.mov(10, 11);
  b.cga(kid, 12);
  b.halt();
  Processor p;
  p.load(b.build());
  p.run();
  EXPECT_EQ(p.regs().peek(11), 6u) << "two launches of 3 trips each";
  EXPECT_GT(p.dma().stats().transfers, 0u) << "config image loaded via DMA";
  EXPECT_GT(p.configMem().stats().contextFetches, 0u);
}

TEST(Processor, HaltSleepsAndResumeContinues) {
  ProgramBuilder b("sleep");
  b.li(1, 1);
  b.halt();
  b.li(1, 2);
  b.halt();
  Processor p;
  p.load(b.build());
  EXPECT_EQ(p.run(), StopReason::kHalt);
  EXPECT_TRUE(p.sleeping());
  EXPECT_EQ(p.regs().peek(1), 1u);
  // While sleeping, run() returns immediately.
  EXPECT_EQ(p.run(), StopReason::kHalt);
  p.resume();
  EXPECT_FALSE(p.sleeping());
  EXPECT_EQ(p.run(), StopReason::kHalt);
  EXPECT_EQ(p.regs().peek(1), 2u);
}

TEST(Processor, SleepStateVisibleOverAhb) {
  ProgramBuilder b("sleep2");
  b.halt();
  Processor p;
  AhbSlave bus;
  p.attachBus(bus);
  p.load(b.build());
  EXPECT_EQ(bus.read32(mmap::kSpecialBase + sreg::kStatus), 0u);
  p.run();
  EXPECT_EQ(bus.read32(mmap::kSpecialBase + sreg::kStatus), 1u);
  // The L1 stays accessible in sleep mode (paper §2.A).
  bus.write32(mmap::kL1Base + 0x100, 0xBEEF);
  EXPECT_EQ(bus.read32(mmap::kL1Base + 0x100), 0xBEEFu);
}

TEST(Processor, ExternalStallHoldsState) {
  ProgramBuilder b("stall");
  b.li(1, 1);
  b.li(2, 2);
  b.halt();
  Processor p;
  p.load(b.build());
  p.setExternalStall(true);
  EXPECT_EQ(p.run(), StopReason::kExternalStall);
  const u64 c = p.cycles();
  EXPECT_EQ(p.run(), StopReason::kExternalStall);
  EXPECT_EQ(p.cycles(), c) << "no progress while stalled";
  p.setExternalStall(false);
  EXPECT_EQ(p.run(), StopReason::kHalt);
  EXPECT_EQ(p.regs().peek(2), 2u);
}

TEST(Processor, MaxCycleBudget) {
  ProgramBuilder b("budget");
  b.li(1, 0);
  auto top = b.newLabel();
  b.bind(top);
  b.addi(1, 1, 1);
  b.br(top);  // infinite loop
  Processor p;
  p.load(b.build());
  EXPECT_EQ(p.run(500), StopReason::kMaxCycles);
  EXPECT_GE(p.cycles(), 500u);
}

TEST(Processor, RegionProfiling) {
  ProgramBuilder b("regions");
  const int kid = b.addKernel(accumulatorKernel());
  b.marker("setup");
  b.li(10, 0);
  b.li(12, 400);
  b.marker("kernel");
  b.cga(kid, 12);
  b.markerEnd();
  b.halt();
  Processor p;
  const Program prog = b.build();
  p.load(prog);
  p.run();
  const auto& profs = p.profiles();
  ASSERT_EQ(profs.size(), 2u);
  const RegionProfile& setup = profs.at(prog.regionId("setup"));
  const RegionProfile& kern = profs.at(prog.regionId("kernel"));
  EXPECT_GT(setup.cycles, 0u);
  EXPECT_EQ(setup.cgaCycles, 0u);
  EXPECT_EQ(setup.mode(), "VLIW");
  EXPECT_GT(kern.cgaCycles, 400u);
  EXPECT_EQ(kern.mode(), "CGA");
  EXPECT_GT(kern.ipc(), 0.5) << "accumulator sustains ~1 op/cycle";
  EXPECT_EQ(kern.entries, 1u);
}

TEST(Processor, ElapsedTimeUses400MHzClock) {
  ProgramBuilder b("clk");
  b.halt();
  Processor p;
  p.load(b.build());
  p.run();
  EXPECT_NEAR(p.elapsedUs(), static_cast<double>(p.cycles()) / 400.0, 1e-12);
}

TEST(Processor, DataSegmentsLoadedThroughDma) {
  ProgramBuilder b("data");
  const u32 tab = b.dataI32({10, 20, 30, 40});
  b.li(1, static_cast<i32>(tab));
  b.ld32(2, 1, 2);
  b.halt();
  Processor p;
  p.load(b.build());
  p.run();
  EXPECT_EQ(p.regs().peek(2), 30u);
  EXPECT_GT(p.dma().stats().wordsMoved, 0u);
}

TEST(Processor, CgaLaunchWaitsForTripCountProducer) {
  // The trip count is the cga instruction's src1 operand, covered by the
  // generic src1 hazard path in operandReadyCycle (the former special-cased
  // CGA re-read of the same register was dead code).  A launch issued right
  // behind the load producing its trip count must stall until the load
  // commits and then read the fresh value.
  // Two programs with identical blocks (so I$-miss stalls cancel), differing
  // only in whether the trip-count load sits right before the launch or
  // behind four filler bundles that cover its latency.  The body loops
  // twice: the first pass warms the I$ (its 20-cycle miss per bundle dwarfs
  // and hides the 5-cycle load latency), the second pass exposes the
  // launch-site data hazard.  Explicit bind() calls split blocks so the
  // list scheduler cannot hoist the load over the fillers.
  auto build = [](bool hazard) {
    ProgramBuilder b(hazard ? "cga_hazard" : "cga_no_hazard");
    const int kid = b.addKernel(accumulatorKernel());
    const u32 tab = b.dataI32({50});
    b.li(10, 1000);  // accumulator seed
    b.li(1, static_cast<i32>(tab));
    b.li(5, 0);   // iteration counter
    b.li(6, 2);   // iteration limit
    const auto top = b.newLabel();
    b.bind(top);
    auto fillers = [&b] {
      b.li(7, 1);  // WAW chain: one bundle each
      b.li(7, 2);
      b.li(7, 3);
      b.li(7, 4);
    };
    if (hazard) {
      fillers();
      b.bind(b.newLabel());  // block boundary: load stays next to the launch
      b.ld32(12, 1, 0);
    } else {
      b.ld32(12, 1, 0);
      b.bind(b.newLabel());  // block boundary: fillers cover the load latency
      fillers();
    }
    b.cga(kid, 12);
    b.addi(5, 5, 1);
    b.predNe(2, 5, 6);
    b.brIf(2, top);
    b.halt();
    return b.build();
  };
  Processor p, p2;
  p.load(build(/*hazard=*/true));
  p2.load(build(/*hazard=*/false));
  EXPECT_EQ(p.run(), StopReason::kHalt);
  EXPECT_EQ(p2.run(), StopReason::kHalt);
  EXPECT_EQ(p.regs().peek(11), 1050u) << "launch read the loaded trip count";
  EXPECT_EQ(p2.regs().peek(11), 1050u);
  EXPECT_GT(p.activity().vliwStallCycles, p2.activity().vliwStallCycles)
      << "warm-I$ pass: back-to-back load->cga stalls at the launch site";
}

TEST(Processor, GuardedCgaSkipsKernel) {
  ProgramBuilder b("guarded_cga");
  const int kid = b.addKernel(accumulatorKernel());
  b.li(10, 7);
  b.li(12, 5);
  Instr pc;
  pc.op = Opcode::PRED_CLEAR;
  pc.dst = 3;
  b.emit(pc);
  // Guarded-off cga: kernel must not run.
  b.cga(kid, 12, /*guard=*/3);
  b.halt();
  Processor p;
  p.load(b.build());
  p.run();
  EXPECT_EQ(p.regs().peek(11), 0u) << "kernel skipped, no writeback";
  EXPECT_EQ(p.activity().modeSwitches, 0u);
}

}  // namespace
}  // namespace adres
