// Golden timing regression: the cycle-accurate model's observable timing —
// per-kernel CgaRunResult rows (cycles/ops/stalls plus a state checksum)
// and the Table 2 modem run (region profiles, total cycles, decoded bits,
// counter hash) — is locked into tests/core/timing_golden.inc.  Hot-loop
// refactors (pre-decode, commit wheel, native tier, ...) must reproduce
// every value bit-for-bit; an intentional timing-model change must
// regenerate the fixture with timing_golden_dump and justify the diff.
//
// The fixture is tier-independent: every ExecTier (DESIGN.md §14) is swept
// against the SAME committed values, so the reference loop, the
// interpreted plan loop and the native specialized loop are all pinned to
// one timing model.
#include <gtest/gtest.h>

#include "support/timing_golden_common.hpp"

namespace adres::testsupport {
namespace {

#include "timing_golden.inc"

constexpr ExecTier kAllTiers[] = {ExecTier::kReference, ExecTier::kInterpreted,
                                  ExecTier::kNative};

TEST(TimingGolden, KernelRowsMatchFixtureOnEveryTier) {
  for (ExecTier tier : kAllTiers) {
    SCOPED_TRACE(std::string("tier: ") + execTierName(tier));
    const std::vector<KernelGoldenRow> rows = collectKernelGolden(tier);
    const std::size_t n = sizeof(kKernelGolden) / sizeof(kKernelGolden[0]);
    ASSERT_EQ(rows.size(), n) << "kernel set changed; regenerate the fixture";
    for (std::size_t i = 0; i < n; ++i) {
      const KernelGoldenRow& got = rows[i];
      const KernelGoldenRow& want = kKernelGolden[i];
      SCOPED_TRACE("kernel: " + want.name);
      EXPECT_EQ(got.name, want.name);
      EXPECT_EQ(got.cycles, want.cycles);
      EXPECT_EQ(got.arrayCycles, want.arrayCycles);
      EXPECT_EQ(got.stallCycles, want.stallCycles);
      EXPECT_EQ(got.ops, want.ops);
      EXPECT_EQ(got.routeMoves, want.routeMoves);
      EXPECT_EQ(got.checksum, want.checksum);
    }
  }
}

void expectModemMatchesFixture(const ModemGolden& m) {
  EXPECT_EQ(m.detected, kModemDetected);
  EXPECT_EQ(m.ltfStart, kModemLtfStart);
  EXPECT_EQ(m.cycles, kModemCycles);
  EXPECT_EQ(m.bitsHash, kModemBitsHash);
  EXPECT_EQ(m.countersHash, kModemCountersHash);

  const std::size_t n = sizeof(kRegionGolden) / sizeof(kRegionGolden[0]);
  ASSERT_EQ(m.regions.size(), n) << "region set changed; regenerate fixture";
  for (std::size_t i = 0; i < n; ++i) {
    const RegionGoldenRow& got = m.regions[i];
    const RegionGoldenRow& want = kRegionGolden[i];
    SCOPED_TRACE("region: " + want.name);
    EXPECT_EQ(got.name, want.name);
    EXPECT_EQ(got.cycles, want.cycles);
    EXPECT_EQ(got.vliwCycles, want.vliwCycles);
    EXPECT_EQ(got.cgaCycles, want.cgaCycles);
    EXPECT_EQ(got.ops, want.ops);
    EXPECT_EQ(got.entries, want.entries);
  }
}

// One test per tier (the modem run dominates suite wall time; keep the
// three sweeps schedulable in parallel by ctest).
TEST(TimingGolden, ModemRunMatchesFixtureReference) {
  expectModemMatchesFixture(collectModemGolden(ExecTier::kReference));
}

TEST(TimingGolden, ModemRunMatchesFixtureInterpreted) {
  expectModemMatchesFixture(collectModemGolden(ExecTier::kInterpreted));
}

TEST(TimingGolden, ModemRunMatchesFixtureNative) {
  expectModemMatchesFixture(collectModemGolden(ExecTier::kNative));
}

}  // namespace
}  // namespace adres::testsupport
