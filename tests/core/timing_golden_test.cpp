// Golden timing regression: the cycle-accurate model's observable timing —
// per-kernel CgaRunResult rows (cycles/ops/stalls plus a state checksum)
// and the Table 2 modem run (region profiles, total cycles, decoded bits,
// counter hash) — is locked into tests/core/timing_golden.inc.  Hot-loop
// refactors (pre-decode, commit wheel, ...) must reproduce every value
// bit-for-bit; an intentional timing-model change must regenerate the
// fixture with timing_golden_dump and justify the diff.
#include <gtest/gtest.h>

#include "support/timing_golden_common.hpp"

namespace adres::testsupport {
namespace {

#include "timing_golden.inc"

TEST(TimingGolden, KernelRowsMatchFixture) {
  const std::vector<KernelGoldenRow> rows = collectKernelGolden();
  const std::size_t n = sizeof(kKernelGolden) / sizeof(kKernelGolden[0]);
  ASSERT_EQ(rows.size(), n) << "kernel set changed; regenerate the fixture";
  for (std::size_t i = 0; i < n; ++i) {
    const KernelGoldenRow& got = rows[i];
    const KernelGoldenRow& want = kKernelGolden[i];
    SCOPED_TRACE("kernel: " + want.name);
    EXPECT_EQ(got.name, want.name);
    EXPECT_EQ(got.cycles, want.cycles);
    EXPECT_EQ(got.arrayCycles, want.arrayCycles);
    EXPECT_EQ(got.stallCycles, want.stallCycles);
    EXPECT_EQ(got.ops, want.ops);
    EXPECT_EQ(got.routeMoves, want.routeMoves);
    EXPECT_EQ(got.checksum, want.checksum);
  }
}

TEST(TimingGolden, ModemRunMatchesFixture) {
  const ModemGolden m = collectModemGolden();
  EXPECT_EQ(m.detected, kModemDetected);
  EXPECT_EQ(m.ltfStart, kModemLtfStart);
  EXPECT_EQ(m.cycles, kModemCycles);
  EXPECT_EQ(m.bitsHash, kModemBitsHash);
  EXPECT_EQ(m.countersHash, kModemCountersHash);

  const std::size_t n = sizeof(kRegionGolden) / sizeof(kRegionGolden[0]);
  ASSERT_EQ(m.regions.size(), n) << "region set changed; regenerate fixture";
  for (std::size_t i = 0; i < n; ++i) {
    const RegionGoldenRow& got = m.regions[i];
    const RegionGoldenRow& want = kRegionGolden[i];
    SCOPED_TRACE("region: " + want.name);
    EXPECT_EQ(got.name, want.name);
    EXPECT_EQ(got.cycles, want.cycles);
    EXPECT_EQ(got.vliwCycles, want.vliwCycles);
    EXPECT_EQ(got.cgaCycles, want.cgaCycles);
    EXPECT_EQ(got.ops, want.ops);
    EXPECT_EQ(got.entries, want.entries);
  }
}

}  // namespace
}  // namespace adres::testsupport
