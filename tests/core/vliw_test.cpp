// VLIW-mode execution: arithmetic, hazards, branches, predication, memory.
#include <gtest/gtest.h>

#include "core/processor.hpp"
#include "sched/progbuilder.hpp"

namespace adres {
namespace {

TEST(Vliw, BasicArithmeticProgram) {
  ProgramBuilder b("arith");
  b.li(1, 100);
  b.li(2, 23);
  b.add(3, 1, 2);
  b.sub(4, 1, 2);
  b.halt();
  Processor p;
  p.load(b.build());
  EXPECT_EQ(p.run(), StopReason::kHalt);
  EXPECT_EQ(p.regs().peek(3), 123u);
  EXPECT_EQ(p.regs().peek(4), 77u);
}

TEST(Vliw, LiBuildsLargeConstants) {
  ProgramBuilder b("li");
  b.li(1, 0x00ABC123);
  b.li(2, -5);
  b.li(3, 2047);
  b.li(4, -2048);
  b.li(5, 0x00FFFFFF);
  b.halt();
  Processor p;
  p.load(b.build());
  p.run();
  EXPECT_EQ(p.regs().peek(1), 0x00ABC123u);
  EXPECT_EQ(p.regs().peek(2), 0xFFFFFFFBu);
  EXPECT_EQ(p.regs().peek(3), 2047u);
  EXPECT_EQ(p.regs().peek(4), 0xFFFFF800u);
  EXPECT_EQ(p.regs().peek(5), 0x00FFFFFFu);
}

TEST(Vliw, StoreLoadRoundTrip) {
  ProgramBuilder b("mem");
  const u32 buf = b.reserve(64);
  b.li(1, static_cast<i32>(buf));
  b.li(2, 0x1234);
  b.st32(1, 0, 2);
  b.st32(1, 1, 2);
  b.ld32(3, 1, 0);
  b.halt();
  Processor p;
  p.load(b.build());
  p.run();
  EXPECT_EQ(p.regs().peek(3), 0x1234u);
  EXPECT_EQ(p.l1().read32(buf + 4), 0x1234u);
}

TEST(Vliw, Load64PairAndStore64Pair) {
  ProgramBuilder b("mem64");
  const u32 buf = b.reserve(32);
  b.li(1, static_cast<i32>(buf));
  b.li(2, 0x1111);
  b.li(3, 0x2222);
  b.st32(1, 0, 2);
  b.st32(1, 1, 3);
  b.ld64(4, 1, 0);       // r4 = {hi: 0x2222, lo: 0x1111}
  b.st64(1, 2, 4);       // words 2,3 = lo,hi
  b.halt();
  Processor p;
  p.load(b.build());
  p.run();
  EXPECT_EQ(p.regs().peek(4), 0x00002222'00001111ull);
  EXPECT_EQ(p.l1().read32(buf + 8), 0x1111u);
  EXPECT_EQ(p.l1().read32(buf + 12), 0x2222u);
}

TEST(Vliw, LoadLatencyStallsDependent) {
  // Dependent add right after a load must wait for the 5-cycle latency.
  ProgramBuilder b("lat");
  const u32 buf = b.reserve(16);
  b.li(1, static_cast<i32>(buf));
  b.li(2, 7);
  b.st32(1, 0, 2);
  b.halt();
  Processor p;
  p.load(b.build());
  p.run();

  ProgramBuilder b2("lat2");
  b2.li(1, static_cast<i32>(buf));
  b2.ld32(3, 1, 0);
  b2.addi(4, 3, 1);
  b2.halt();
  Processor p2;
  p2.load(b2.build());
  // Carry the stored data over.
  p2.l1().write32(buf, 7);
  p2.run();
  EXPECT_EQ(p2.regs().peek(4), 8u);
  EXPECT_GT(p2.activity().vliwStallCycles, 0u) << "load-use stall happened";
}

TEST(Vliw, CountedLoopWithBranch) {
  // r1 = sum 1..10 using a predicated backward branch.
  ProgramBuilder b("loop");
  b.li(1, 0);   // sum
  b.li(2, 1);   // i
  b.li(3, 10);  // limit
  auto top = b.newLabel();
  b.bind(top);
  b.add(1, 1, 2);
  b.addi(2, 2, 1);
  {
    Instr p;
    p.op = Opcode::PRED_LE;
    p.dst = 1;
    p.src1 = 2;
    p.src2 = 3;
    b.emit(p);
  }
  b.brIf(1, top);
  b.halt();
  Processor p;
  p.load(b.build());
  EXPECT_EQ(p.run(), StopReason::kHalt);
  EXPECT_EQ(p.regs().peek(1), 55u);
}

TEST(Vliw, GuardSquashesSideEffects) {
  ProgramBuilder b("guard");
  b.li(1, 5);
  {
    Instr pset;
    pset.op = Opcode::PRED_CLEAR;
    pset.dst = 2;
    b.emit(pset);
  }
  Instr in;
  in.op = Opcode::ADD;
  in.guard = 2;  // false -> squashed
  in.dst = 1;
  in.src1 = 1;
  in.useImm = true;
  in.imm = 100;
  b.emit(in);
  b.halt();
  Processor p;
  p.load(b.build());
  p.run();
  EXPECT_EQ(p.regs().peek(1), 5u) << "guarded-off op must not retire";
}

TEST(Vliw, BrlLinksAndJmpReturns) {
  // Hand-built call/return: brl links PC+1 into R9, jmp r9 returns.
  Program prog;
  prog.name = "call2";
  Bundle b0;  // r2 = 1
  b0.slot[0].op = Opcode::MOVI;
  b0.slot[0].dst = 2;
  b0.slot[0].useImm = true;
  b0.slot[0].imm = 1;
  Bundle b1;  // brl +2 (to bundle 3)
  b1.slot[0].op = Opcode::BRL;
  b1.slot[0].useImm = true;
  b1.slot[0].imm = 2;
  Bundle b2;  // halt (return lands here)
  b2.slot[0].op = Opcode::HALT;
  Bundle b3;  // r2 += 10
  b3.slot[0].op = Opcode::ADD;
  b3.slot[0].dst = 2;
  b3.slot[0].src1 = 2;
  b3.slot[0].useImm = true;
  b3.slot[0].imm = 10;
  Bundle b4;  // jmp r9
  b4.slot[0].op = Opcode::JMP;
  b4.slot[0].src2 = kLinkReg;
  prog.bundles = {b0, b1, b2, b3, b4};
  Processor p;
  p.load(prog);
  EXPECT_EQ(p.run(), StopReason::kHalt);
  EXPECT_EQ(p.regs().peek(2), 11u);
}

TEST(Vliw, DivByZeroSetsException) {
  ProgramBuilder b("div0");
  b.li(1, 5);
  b.li(2, 0);
  Instr d;
  d.op = Opcode::DIV;
  d.dst = 3;
  d.src1 = 1;
  d.src2 = 2;
  b.emit(d);
  b.halt();
  Processor p;
  p.load(b.build());
  p.run();
  EXPECT_TRUE(p.exceptions().divByZero);
  EXPECT_EQ(p.regs().peek(3), 0u);
}

TEST(Vliw, IcacheColdMissesAccounted) {
  ProgramBuilder b("ic");
  b.li(1, 1);
  b.halt();
  Processor p;
  p.load(b.build());
  p.run();
  EXPECT_GT(p.icache().stats().misses, 0u) << "cold start misses";
  EXPECT_GE(p.activity().vliwStallCycles,
            static_cast<u64>(kICacheMissPenalty));
}

TEST(Vliw, OffEndIsReported) {
  Program prog;
  prog.name = "offend";
  Bundle b0;
  b0.slot[0].op = Opcode::MOVI;
  b0.slot[0].dst = 1;
  b0.slot[0].useImm = true;
  b0.slot[0].imm = 1;
  prog.bundles = {b0};
  Processor p;
  p.load(prog);
  EXPECT_EQ(p.run(), StopReason::kOffEnd);
}

}  // namespace
}  // namespace adres
